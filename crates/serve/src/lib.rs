//! # policysmith-serve — the online policy-serving runtime
//!
//! The paper's §3.1 loop ends at "deploy the synthesized policy"; this
//! crate is the deployment. It closes the gap between the offline world
//! (batch simulators, stop-the-world re-synthesis) and the ROADMAP's
//! production-shaped one: **serve decision requests continuously, adapt in
//! the background, and never pause the traffic**.
//!
//! Three layers:
//!
//! * [`swap`] — the lock-free hot-swap handle: a [`PolicyCell`] publishes
//!   a new [`CompiledPolicy`](policysmith_kbpf::CompiledPolicy) with one
//!   atomic pointer swap; in-flight decisions never observe a torn value,
//!   and deposed policies are reclaimed by a small epoch-based scheme
//!   once no reader can still hold them. Every publish lands in the serve
//!   log with generation, provenance, and timestamp.
//! * [`loadgen`] — the deterministic open-loop load generator: the seven
//!   lb scenario presets (single- or multi-phase; a phase boundary is the
//!   drift injection) and cache trace replay via `crates/traces`, sharded
//!   across workers by reseeding so every thread-confined engine replays
//!   its own stream.
//! * [`runtime`] — N serving workers (lb dispatch picks off an
//!   [`LbEngine`](policysmith_lbsim::LbEngine) fleet, cache admit/evict
//!   priority decisions off a [`Cache`](policysmith_cachesim::Cache)),
//!   per-worker SPSC telemetry rings feeding window samples into the
//!   [`ContextMonitor`](policysmith_core::library::ContextMonitor) —
//!   hot-path counters and latency samples go through a sharded
//!   [`MetricsRegistry`](policysmith_obs::MetricsRegistry) instead — and a
//!   background adaptation thread running the
//!   [`AdaptiveController`](policysmith_core::library::AdaptiveController)'s
//!   non-blocking split: consult the heuristic library on drift, fall
//!   back to a full pipelined [`run_search`](policysmith_core::run_search),
//!   publish the winner through the cell.
//!
//! Two more layers make the runtime survive misbehaving inputs:
//!
//! * [`guard`] — guarded publication ([`PolicyGuard`]: every adaptation
//!   candidate is re-scored in the drifted context and shadow-replayed
//!   against the incumbent before `publish`; regressions and
//!   runtime-faulting candidates are rejected with a logged reason) and
//!   the safe-fallback chain ([`guard::resolve_recovery`]: deployed →
//!   best non-poisoned library entry → man-made baseline). A worker whose
//!   host trips its fault latch demotes to the baseline *locally* without
//!   dropping a decision, reports the quarantine, and the offending
//!   policy is poisoned in the library.
//! * [`chaos`] — deterministic fault injection ([`ChaosSpec`]: telemetry
//!   drops/duplicates/reordering, worker stalls, external faulting
//!   publishes; [`FaultPlan`] bundles them with flaky-generator configs
//!   and pre-poisoned libraries) for the `exp_chaos` harness
//!   (`results/chaos.json`), which enforces the fault-tolerance
//!   invariants by exit code.
//!
//! The no-drift contract is differential: a single-worker serve run with
//! no publishes is **decision-for-decision identical** to the equivalent
//! batch simulator run (`tests/differential.rs` pins this, pick sequences
//! included). Throughput, decision-latency percentiles, adoption-pause
//! distribution, and the drift-recovery timeline are measured by the
//! `exp_serve` bench bin (`results/serve.json`).

pub mod chaos;
pub mod guard;
pub mod loadgen;
pub mod runtime;
pub mod swap;
pub mod telemetry;

pub use chaos::{ChaosSpec, ChaosStats, ExternalPublish, FaultPlan, TelemetryChaos, WorkerStall};
pub use guard::{GuardVerdict, PolicyGuard, Recovery, RejectReason};
pub use runtime::{
    serve_cache, serve_lb, AdaptationEvent, QuarantineReport, RejectedAdaptation, Resynth,
    ServeConfig, ServeReport, WorkerStats,
};
pub use swap::{Guard, PolicyCell, ReaderHandle, SwapRecord};
pub use telemetry::{LatencyHistogram, WindowSample};
