//! # policysmith-serve — the online policy-serving runtime
//!
//! The paper's §3.1 loop ends at "deploy the synthesized policy"; this
//! crate is the deployment. It closes the gap between the offline world
//! (batch simulators, stop-the-world re-synthesis) and the ROADMAP's
//! production-shaped one: **serve decision requests continuously, adapt in
//! the background, and never pause the traffic**.
//!
//! Three layers:
//!
//! * [`swap`] — the lock-free hot-swap handle: a [`PolicyCell`] publishes
//!   a new [`CompiledPolicy`](policysmith_kbpf::CompiledPolicy) with one
//!   atomic pointer swap; in-flight decisions never observe a torn value,
//!   and deposed policies are reclaimed by a small epoch-based scheme
//!   once no reader can still hold them. Every publish lands in the serve
//!   log with generation, provenance, and timestamp.
//! * [`loadgen`] — the deterministic open-loop load generator: the seven
//!   lb scenario presets (single- or multi-phase; a phase boundary is the
//!   drift injection) and cache trace replay via `crates/traces`, sharded
//!   across workers by reseeding so every thread-confined engine replays
//!   its own stream.
//! * [`runtime`] — N serving workers (lb dispatch picks off an
//!   [`LbEngine`](policysmith_lbsim::LbEngine) fleet, cache admit/evict
//!   priority decisions off a [`Cache`](policysmith_cachesim::Cache)), a
//!   telemetry channel into the
//!   [`ContextMonitor`](policysmith_core::library::ContextMonitor), and a
//!   background adaptation thread running the
//!   [`AdaptiveController`](policysmith_core::library::AdaptiveController)'s
//!   non-blocking split: consult the heuristic library on drift, fall
//!   back to a full pipelined [`run_search`](policysmith_core::run_search),
//!   publish the winner through the cell.
//!
//! The no-drift contract is differential: a single-worker serve run with
//! no publishes is **decision-for-decision identical** to the equivalent
//! batch simulator run (`tests/differential.rs` pins this, pick sequences
//! included). Throughput, decision-latency percentiles, adoption-pause
//! distribution, and the drift-recovery timeline are measured by the
//! `exp_serve` bench bin (`results/serve.json`).

pub mod loadgen;
pub mod runtime;
pub mod swap;
pub mod telemetry;

pub use runtime::{
    serve_cache, serve_lb, AdaptationEvent, Resynth, ServeConfig, ServeReport, WorkerStats,
};
pub use swap::{Guard, PolicyCell, ReaderHandle, SwapRecord};
pub use telemetry::{LatencyHistogram, WindowSample};
