//! Serving telemetry: the per-window quality samples workers stream to
//! the background controller, plus a re-export of the latency histogram.
//!
//! [`LatencyHistogram`] itself now lives in `policysmith-obs`
//! ([`policysmith_obs::hist`]) so every crate can record and merge
//! latencies through the same sharded registry; this re-export keeps the
//! historical `policysmith_serve::telemetry::LatencyHistogram` path (and
//! the crate-root re-export) compiling unchanged.

pub use policysmith_obs::LatencyHistogram;

/// One serving window's telemetry, streamed from a worker to the
/// background controller (and kept for the report timeline).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Worker that served the window.
    pub worker: usize,
    /// Worker-local window sequence number.
    pub seq: u64,
    /// Load phase the window's arrivals belong to (drift injection = a
    /// phase boundary).
    pub phase: usize,
    /// Decisions served in the window.
    pub decisions: u64,
    /// The window's quality signal, lower = better (lb: resolved mean
    /// slowdown; cache: window miss ratio). This is what flows into
    /// [`ContextMonitor`](policysmith_core::library::ContextMonitor).
    pub signal: f64,
    /// Policy generation that served the window's *last* decision.
    pub generation: u64,
    /// Microseconds since the worker started serving.
    pub at_micros: u64,
}
