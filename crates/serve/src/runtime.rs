//! The serving runtime: N worker threads answering decision requests off
//! thread-confined simulator engines, one hot-swap [`PolicyCell`], and a
//! background adaptation thread running the §3.1 loop continuously.
//!
//! ## Decision path (per worker, lock-free)
//!
//! A worker owns its backing engine (a [`policysmith_lbsim::LbEngine`] fleet or a
//! [`Cache`]) and a host built from the policy generation it last
//! adopted. Per decision it (1) checks [`PolicyCell::generation`] — one
//! relaxed atomic load; (2) on change, pins an epoch guard, clones the
//! new policy out of the cell, rebuilds its host, and records the
//! adoption pause; (3) runs the decision through the host. Decisions are
//! never dropped and never block on a lock: a publish lands *between*
//! two decisions, never inside one.
//!
//! ## Adaptation path (background, never stops serving)
//!
//! Workers stream per-window [`WindowSample`]s (window quality signal,
//! decision counts, serving generation) over a channel. The adaptation
//! thread feeds the signal into the
//! `AdaptiveController`'s
//! [`ContextMonitor`]; on drift it runs the controller's non-blocking
//! split — `try_reuse` against the heuristic library, then a full
//! [`run_search`] (the pipelined executor) when nothing stored fits — and
//! publishes the winner through the cell. Serving continues at full rate
//! throughout; the only cost any worker ever pays is its own adoption
//! pause (microseconds, measured).

use crate::swap::{PolicyCell, ReaderHandle, SwapRecord};
use crate::telemetry::{LatencyHistogram, WindowSample};
use policysmith_cachesim::{Cache, PriorityPolicy, SimResult};
use policysmith_core::library::{Adaptation, AdaptiveController, ContextMonitor};
use policysmith_core::search::{run_search, SearchConfig, Study};
use policysmith_dsl::Mode;
use policysmith_gen::Generator;
use policysmith_kbpf::CompiledPolicy;
use policysmith_lbsim::{
    run_phased_windowed, DispatchView, Dispatcher, ExprDispatcher, LbMetrics, Scenario,
};
use policysmith_traces::Trace;
use std::cell::Cell;
use std::rc::Rc;
use std::sync::mpsc;
use std::time::Instant;

/// Runtime knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker (serving) threads.
    pub workers: usize,
    /// Decisions per telemetry window.
    pub window: usize,
    /// Sample every k-th decision's latency (1 = all; >1 keeps the
    /// clock off the hot path at high decision rates).
    pub latency_sample_every: u64,
    /// Drift monitor: rolling windows per mean.
    pub monitor_window: usize,
    /// Drift monitor: degradation tolerance (e.g. 1.35 = trigger at +35%).
    pub monitor_tolerance: f64,
    /// Reuse bar for stored heuristics on drift (study-score units).
    pub min_reuse_score: f64,
    /// Record every decision (the differential tests; costs memory).
    pub record_decisions: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            window: 500,
            latency_sample_every: 4,
            monitor_window: 6,
            monitor_tolerance: 1.35,
            min_reuse_score: 0.0,
            record_decisions: false,
        }
    }
}

/// The background re-synthesis half of a serve run: the drifted-context
/// study the controller scores against, and the generator + search budget
/// it may spend. `None` disables adaptation (the cell still accepts
/// external publishes).
pub struct Resynth<S: Study> {
    /// Context name recorded in the library (e.g. `lb/slow-node-onset`).
    pub context: String,
    /// Study of the (drifted) context.
    pub study: S,
    /// Generator the background search drives.
    pub generator: Box<dyn Generator + Send>,
    /// Search budget. Use [`SearchConfig::pipelined`] — the search runs on
    /// the adaptation thread and should keep its eval workers busy.
    pub search: SearchConfig,
}

/// What one drift trigger did, for the report.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationEvent {
    /// Generation the answer was published as.
    pub generation: u64,
    /// Context the controller adapted to.
    pub context: String,
    /// Did a fresh search run and win (vs a library reuse)?
    pub resynthesized: bool,
    /// Deployed policy's score in the drifted context.
    pub score: f64,
    /// Deployed policy source.
    pub source: String,
    /// Microseconds from drift trigger to publish (the background
    /// re-synthesis latency — serving continues throughout).
    pub resynthesis_micros: u64,
}

/// One worker's serving outcome.
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Decisions served (every offered request was decided — the runtime
    /// never drops or blocks a decision).
    pub decisions: u64,
    /// Wall-clock seconds spent serving.
    pub wall_seconds: f64,
    /// Sampled decision latencies, ns.
    pub latency: LatencyHistogram,
    /// Policy-adoption pauses, ns (one entry per generation adopted after
    /// the first).
    pub swap_pauses_ns: Vec<u64>,
    /// Final cumulative lb metrics (lb workers).
    pub lb_metrics: Option<LbMetrics>,
    /// Final cache counters (cache workers).
    pub cache_result: Option<SimResult>,
    /// Every decision in order (only when
    /// [`ServeConfig::record_decisions`]): lb = server index picked,
    /// cache = 1 hit / 0 miss.
    pub decisions_log: Option<Vec<u32>>,
}

/// Everything a finished serve run reports.
pub struct ServeReport {
    /// Per-worker outcomes.
    pub workers: Vec<WorkerStats>,
    /// Every telemetry window, in controller-arrival order.
    pub windows: Vec<WindowSample>,
    /// The serve log (one entry per publish).
    pub swaps: Vec<SwapRecord>,
    /// Every background adaptation that changed the live policy, in order.
    pub adaptations: Vec<AdaptationEvent>,
    /// Drift triggers whose adaptation re-selected the already-live
    /// source: answered by the controller, but not published (a no-op
    /// swap would only churn generations). A noisy quality signal under a
    /// tight tolerance shows up here instead of in the swap log.
    pub suppressed_triggers: u64,
    /// The controller after the run (library, monitor, adaptation trail).
    pub controller: AdaptiveController,
    /// Wall-clock seconds from first worker start to last worker finish.
    pub wall_seconds: f64,
}

impl ServeReport {
    /// Total decisions across workers.
    pub fn total_decisions(&self) -> u64 {
        self.workers.iter().map(|w| w.decisions).sum()
    }

    /// Aggregate decisions per second (total decisions over the run's
    /// wall time — the sustained-throughput figure).
    pub fn decisions_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.total_decisions() as f64 / self.wall_seconds
    }

    /// Fleet-wide latency histogram (merged worker samples).
    pub fn latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for w in &self.workers {
            h.merge(&w.latency);
        }
        h
    }

    /// All adoption pauses across workers, ns.
    pub fn swap_pauses_ns(&self) -> Vec<u64> {
        let mut v: Vec<u64> =
            self.workers.iter().flat_map(|w| w.swap_pauses_ns.iter().copied()).collect();
        v.sort_unstable();
        v
    }
}

/// Serve lb dispatch decisions: worker `w` plays `shards[w]` (a phase
/// sequence — phase boundaries are the drift injection) through its own
/// [`policysmith_lbsim::LbEngine`], dispatching every arrival with the currently-published
/// policy. See [`lb_shards`](crate::loadgen::lb_shards) for building the shards.
pub fn serve_lb<S: Study + Send>(
    shards: &[Vec<Scenario>],
    initial: CompiledPolicy,
    cfg: &ServeConfig,
    resynth: Option<Resynth<S>>,
) -> ServeReport {
    assert!(!shards.is_empty() && shards.iter().all(|s| !s.is_empty()), "need phases per worker");
    debug_assert_eq!(initial.mode(), Mode::Lb);
    serve(cfg, initial, resynth, shards, |worker, shard, handle, tx, c| {
        run_lb_worker(worker, shard, handle, tx, c)
    })
}

/// Serve cache decisions: worker `w` replays `shards[w]` through its own
/// [`Cache`] sized at `capacity` bytes, every request priced by the
/// currently-published priority policy. See [`CacheReplay`](crate::loadgen::CacheReplay).
pub fn serve_cache<S: Study + Send>(
    shards: &[Trace],
    capacity: u64,
    initial: CompiledPolicy,
    cfg: &ServeConfig,
    resynth: Option<Resynth<S>>,
) -> ServeReport {
    assert!(!shards.is_empty(), "need a trace per worker");
    debug_assert_eq!(initial.mode(), Mode::Cache);
    serve(cfg, initial, resynth, shards, move |worker, trace, handle, tx, c| {
        run_cache_worker(worker, trace, capacity, handle, tx, c)
    })
}

/// The shared scaffold: spawn one worker per shard plus the adaptation
/// thread, join everything, assemble the report.
fn serve<S: Study + Send, Shard: Sync>(
    cfg: &ServeConfig,
    initial: CompiledPolicy,
    resynth: Option<Resynth<S>>,
    shards: &[Shard],
    worker_fn: impl Fn(
            usize,
            &Shard,
            ReaderHandle<'_, CompiledPolicy>,
            &mpsc::Sender<WindowSample>,
            &ServeConfig,
        ) -> WorkerStats
        + Sync,
) -> ServeReport {
    let mode = initial.mode();
    let initial_expr = initial.expr().clone();
    let cell = PolicyCell::new(initial, shards.len() + 1);
    let (tx, rx) = mpsc::channel::<WindowSample>();
    let monitor = ContextMonitor::new(cfg.monitor_window, cfg.monitor_tolerance);
    let mut controller = AdaptiveController::new(monitor, cfg.min_reuse_score);

    let t0 = Instant::now();
    let (stats, background) = std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(shards.len());
        for (w, shard) in shards.iter().enumerate() {
            let handle = cell.register();
            let tx = tx.clone();
            let cfg = cfg.clone();
            let worker_fn = &worker_fn;
            joins.push(scope.spawn(move || worker_fn(w, shard, handle, &tx, &cfg)));
        }
        drop(tx); // the adaptation loop ends when the last worker hangs up
        let ctrl = &mut controller;
        let cellref = &cell;
        let background =
            scope.spawn(move || adaptation_loop(rx, ctrl, resynth, cellref, mode, initial_expr));
        let stats: Vec<WorkerStats> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        (stats, background.join().unwrap())
    });
    let wall_seconds = t0.elapsed().as_secs_f64();
    let (windows, adaptations, suppressed_triggers) = background;

    ServeReport {
        workers: stats,
        windows,
        swaps: cell.swap_log(),
        adaptations,
        suppressed_triggers,
        controller,
        wall_seconds,
    }
}

/// The background §3.1 loop: drain telemetry, detect drift, answer it
/// without ever pausing the workers.
fn adaptation_loop<S: Study>(
    rx: mpsc::Receiver<WindowSample>,
    controller: &mut AdaptiveController,
    mut resynth: Option<Resynth<S>>,
    cell: &PolicyCell<CompiledPolicy>,
    mode: Mode,
    initial_expr: policysmith_dsl::Expr,
) -> (Vec<WindowSample>, Vec<AdaptationEvent>, u64) {
    let mut windows = Vec::new();
    let mut adaptations = Vec::new();
    let mut live_expr = initial_expr;
    let mut suppressed = 0u64;
    while let Ok(sample) = rx.recv() {
        // Only observe windows served by the live generation: samples that
        // were in flight while a search ran describe the deposed policy,
        // and re-triggering on them would answer drift that is already
        // answered.
        let stale = sample.generation < cell.generation();
        let signal = sample.signal;
        windows.push(sample);
        if stale || !controller.observe(signal) {
            continue;
        }
        let Some(r) = resynth.as_mut() else { continue };
        let t0 = Instant::now();
        let adaptation = match controller.try_reuse(&r.study) {
            Ok(a) => a,
            Err(ticket) => {
                // The blocking part runs HERE, on the adaptation thread —
                // workers keep serving decisions against the old policy
                // until the publish below.
                let outcome = run_search(&r.study, r.generator.as_mut(), &r.search);
                controller.finish_search(&r.context, ticket, outcome.best)
            }
        };
        let source = adaptation.entry().source.clone();
        let expr = policysmith_dsl::parse(&source).expect("library sources parse");
        if expr == live_expr {
            // the controller re-selected what is already serving — the
            // initially-deployed policy included (the comparison is
            // structural, so formatting differences don't defeat it): a
            // noisy signal re-fired the monitor, and publishing again
            // would only churn generations for a policy nobody replaces
            suppressed += 1;
            continue;
        }
        let policy = CompiledPolicy::compile(&expr, mode)
            .expect("adaptation winners survived this study's checker");
        let (verb, score) = match &adaptation {
            Adaptation::FromLibrary { score, .. } => ("reused", *score),
            Adaptation::Resynthesized { entry } => ("resynthesized", entry.score),
        };
        let generation = cell.publish(
            policy,
            format!(
                "adaptation #{}: {verb} for {} ({score:+.4})",
                adaptations.len() + 1,
                r.context
            ),
        );
        adaptations.push(AdaptationEvent {
            generation,
            context: r.context.clone(),
            resynthesized: adaptation.resynthesized(),
            score,
            source: source.clone(),
            resynthesis_micros: t0.elapsed().as_micros() as u64,
        });
        live_expr = expr;
    }
    (windows, adaptations, suppressed)
}

/// The lb worker's serving host, layered over the batch engine's own
/// phased driver: per pick it (1) adopts any newly published generation
/// (pin → clone → rebuild, timed as the adoption pause), (2) scores the
/// fleet with the live compiled policy, sampling decision latency and
/// optionally recording the pick. Because the worker drives
/// [`run_phased_windowed`] with this host, the serve path *is* the batch
/// path plus this wrapper — the decision-identity guarantee is structural,
/// not mirrored code.
struct ServeLbHost<'h, 'c> {
    handle: &'h mut ReaderHandle<'c, CompiledPolicy>,
    inner: ExprDispatcher,
    /// Shared with the window callback so samples can report the
    /// generation that served them (worker-local, single-threaded).
    generation: Rc<Cell<u64>>,
    pauses_ns: Vec<u64>,
    latency: LatencyHistogram,
    sample_every: u64,
    decisions: u64,
    log: Option<Vec<u32>>,
}

impl Dispatcher for ServeLbHost<'_, '_> {
    fn name(&self) -> &str {
        "serve"
    }

    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        let now = self.handle.cell().generation();
        if now != self.generation.get() {
            let t0 = Instant::now();
            let policy = self.handle.pin().clone();
            self.inner = ExprDispatcher::new("serve", policy);
            self.generation.set(now);
            self.pauses_ns.push(t0.elapsed().as_nanos() as u64);
        }
        let sampled = self.sample_every <= 1 || self.decisions.is_multiple_of(self.sample_every);
        let t0 = sampled.then(Instant::now);
        let p = self.inner.pick(view);
        if let Some(t0) = t0 {
            self.latency.record(t0.elapsed().as_nanos() as u64);
        }
        if let Some(log) = self.log.as_mut() {
            log.push(p as u32);
        }
        self.decisions += 1;
        p
    }
}

fn run_lb_worker(
    worker: usize,
    phases: &[Scenario],
    mut handle: ReaderHandle<'_, CompiledPolicy>,
    tx: &mpsc::Sender<WindowSample>,
    cfg: &ServeConfig,
) -> WorkerStats {
    let started = Instant::now();
    // initial adoption is deployment, not a swap: not a recorded pause
    let initial_generation = handle.cell().generation();
    let initial = handle.pin().clone();
    let generation = Rc::new(Cell::new(initial_generation));
    let mut host = ServeLbHost {
        handle: &mut handle,
        inner: ExprDispatcher::new("serve", initial),
        generation: Rc::clone(&generation),
        pauses_ns: Vec::new(),
        latency: LatencyHistogram::new(),
        sample_every: cfg.latency_sample_every,
        decisions: 0,
        log: cfg.record_decisions.then(Vec::new),
    };
    let mut seq = 0u64;
    let phased = run_phased_windowed(phases, &mut host, cfg.window, &mut |phase, interval| {
        let _ = tx.send(WindowSample {
            worker,
            seq,
            phase,
            decisions: interval.offered,
            signal: interval.resolved_slowdown(),
            generation: generation.get(),
            at_micros: started.elapsed().as_micros() as u64,
        });
        seq += 1;
    });

    WorkerStats {
        worker,
        decisions: host.decisions,
        wall_seconds: started.elapsed().as_secs_f64(),
        latency: host.latency,
        swap_pauses_ns: host.pauses_ns,
        lb_metrics: Some(phased.combined),
        cache_result: None,
        decisions_log: host.log,
    }
}

fn run_cache_worker(
    worker: usize,
    trace: &Trace,
    capacity: u64,
    mut handle: ReaderHandle<'_, CompiledPolicy>,
    tx: &mpsc::Sender<WindowSample>,
    cfg: &ServeConfig,
) -> WorkerStats {
    // swap-capable hosts keep every tracker warm (see `track_everything`)
    let initial = handle.pin().clone();
    let mut cache = Cache::new(capacity, PriorityPolicy::new("serve", initial).track_everything());
    let mut generation = handle.cell().generation();
    let mut pauses_ns = Vec::new();
    let mut latency = LatencyHistogram::new();
    let mut log = cfg.record_decisions.then(Vec::new);
    let mut decisions = 0u64;
    let started = Instant::now();

    for (seq, chunk) in trace.requests.chunks(cfg.window).enumerate() {
        let before = cache.result();
        for req in chunk {
            let now = handle.cell().generation();
            if now != generation {
                let t0 = Instant::now();
                let policy = handle.pin().clone();
                cache.policy.swap_policy(policy);
                generation = now;
                pauses_ns.push(t0.elapsed().as_nanos() as u64);
            }
            let sampled =
                cfg.latency_sample_every <= 1 || decisions.is_multiple_of(cfg.latency_sample_every);
            let t0 = sampled.then(Instant::now);
            let hit = cache.request(req);
            if let Some(t0) = t0 {
                latency.record(t0.elapsed().as_nanos() as u64);
            }
            if let Some(log) = log.as_mut() {
                log.push(hit as u32);
            }
            decisions += 1;
        }
        let after = cache.result();
        let window_requests = after.requests - before.requests;
        let window_mr = if window_requests == 0 {
            0.0
        } else {
            (after.misses - before.misses) as f64 / window_requests as f64
        };
        let _ = tx.send(WindowSample {
            worker,
            seq: seq as u64,
            phase: 0,
            decisions: window_requests,
            signal: window_mr,
            generation,
            at_micros: started.elapsed().as_micros() as u64,
        });
    }

    WorkerStats {
        worker,
        decisions,
        wall_seconds: started.elapsed().as_secs_f64(),
        latency,
        swap_pauses_ns: pauses_ns,
        lb_metrics: None,
        cache_result: Some(cache.result()),
        decisions_log: log,
    }
}
