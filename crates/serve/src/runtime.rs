//! The serving runtime: N worker threads answering decision requests off
//! thread-confined simulator engines, one hot-swap [`PolicyCell`], and a
//! background adaptation thread running the §3.1 loop continuously.
//!
//! ## Decision path (per worker, lock-free)
//!
//! A worker owns its backing engine (a [`policysmith_lbsim::LbEngine`] fleet or a
//! [`Cache`]) and a host built from the policy generation it last
//! adopted. Per decision it (1) checks [`PolicyCell::generation`] — one
//! relaxed atomic load; (2) on change, pins an epoch guard, clones the
//! new policy out of the cell, rebuilds its host, and records the
//! adoption pause; (3) runs the decision through the host. Decisions are
//! never dropped and never block on a lock: a publish lands *between*
//! two decisions, never inside one.
//!
//! ## Adaptation path (background, never stops serving)
//!
//! Workers stream per-window [`WindowSample`]s (window quality signal,
//! decision counts, serving generation) over **per-worker lock-free SPSC
//! rings** ([`policysmith_obs::ring`]): a push is two atomic loads and a
//! store into the worker's own lane, never a shared mutex. A momentarily
//! full ring overflows into an unbounded worker-local backlog (flushed on
//! the next window) rather than ever stalling the decision path. The one
//! shared `mpsc` channel that remains carries only control-plane events
//! (quarantine reports). Decision latency, adoption pauses, decision and
//! quarantine counts flow through a sharded
//! [`MetricsRegistry`] — per-worker
//! shards written with plain stores, merged lock-free into
//! [`ServeReport::metrics`]. (`ServeConfig::funnel` keeps the legacy
//! single-mpsc funnel alive for A/B measurement in `exp_serve`.)
//!
//! The adaptation thread drains the rings and feeds each signal into the
//! `AdaptiveController`'s
//! [`ContextMonitor`]; on drift it runs the controller's non-blocking
//! split — `try_reuse` against the heuristic library, then a full
//! retried search ([`run_search_with_retry`]) when nothing stored fits —
//! and publishes the winner through the cell. Serving continues at full
//! rate throughout; the only cost any worker ever pays is its own
//! adoption pause (microseconds, measured).
//!
//! ## Fault path (the part production cares about)
//!
//! Three failure classes are survived, not assumed away:
//!
//! * **Bad candidates.** Every adaptation winner passes the
//!   [`PolicyGuard`] before publication: re-scored in the drifted
//!   context, shadow-replayed against the incumbent. Regressions,
//!   check failures, and runtime-faulting candidates become
//!   [`RejectedAdaptation`] records instead of live policies.
//! * **Faulting live policies.** A worker whose host trips its fault
//!   latch mid-serve demotes *locally* to the domain's man-made baseline
//!   (JSQ / LRU) without dropping a decision, and reports a
//!   [`QuarantineReport`] to the adaptation thread — which poisons the
//!   source in the library and publishes a recovery through the
//!   safe-fallback chain ([`resolve_recovery`]: best non-poisoned
//!   library entry, else the baseline).
//! * **Broken generators.** Background re-synthesis runs under a
//!   [`RetryPolicy`] (bounded exponential backoff + watchdog deadline);
//!   when the generator stays down, the controller falls back to the best
//!   stored entry instead of blocking adaptation forever.
//!
//! A dead telemetry receiver never panics a worker: the worker keeps
//! serving without telemetry and the drops are counted in
//! [`WorkerStats::telemetry_dropped`]. Worker/background panics are
//! reported in [`ServeReport::failures`] rather than propagated.

use crate::chaos::{ChaosSpec, ChaosStats, TelemetryInjector};
use crate::guard::{resolve_recovery, GuardVerdict, PolicyGuard, Recovery, RejectReason};
use crate::swap::{PolicyCell, ReaderHandle, SwapRecord};
use crate::telemetry::{LatencyHistogram, WindowSample};
use policysmith_cachesim::{Cache, PriorityPolicy, SimResult};
use policysmith_core::library::{
    run_search_with_retry, Adaptation, AdaptiveController, ContextMonitor, HeuristicLibrary,
    RetryPolicy,
};
use policysmith_core::search::{SearchConfig, Study};
use policysmith_dsl::{to_source, Mode};
use policysmith_gen::Generator;
use policysmith_kbpf::CompiledPolicy;
use policysmith_lbsim::{
    run_phased_windowed, DispatchView, Dispatcher, ExprDispatcher, LbMetrics, Scenario,
};
use policysmith_obs::ring::{spsc, SpscReceiver, SpscSender};
use policysmith_obs::{CounterId, HistId, MetricsRegistry, MetricsSnapshot, TraceKind};
use policysmith_traces::Trace;
use std::cell::Cell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Per-worker window-sample ring capacity. Windows arrive at
/// decisions/window rate (thousands per second, not millions); 8192 slots
/// absorb multi-second adaptation stalls before the worker-local backlog
/// kicks in.
const WINDOW_RING_CAPACITY: usize = 8192;

/// Runtime knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker (serving) threads.
    pub workers: usize,
    /// Decisions per telemetry window.
    pub window: usize,
    /// Sample every k-th decision's latency (1 = all; >1 keeps the
    /// clock off the hot path at high decision rates).
    pub latency_sample_every: u64,
    /// Drift monitor: rolling windows per mean.
    pub monitor_window: usize,
    /// Drift monitor: degradation tolerance (e.g. 1.35 = trigger at +35%).
    pub monitor_tolerance: f64,
    /// Reuse bar for stored heuristics on drift (study-score units).
    pub min_reuse_score: f64,
    /// Record every decision (the differential tests; costs memory).
    pub record_decisions: bool,
    /// Guarded publication: screen every adaptation candidate against the
    /// incumbent before publishing. `None` disables the guard (candidates
    /// publish as long as they compile).
    pub guard: Option<PolicyGuard>,
    /// Retry/backoff + watchdog for background re-synthesis.
    pub retry: RetryPolicy,
    /// Deterministic fault injection (tests and the chaos harness).
    /// `None` — and equivalently a default all-zero spec — is the plain
    /// serve path.
    pub chaos: Option<ChaosSpec>,
    /// Hot-path instrumentation: decision/latency/pause metrics into the
    /// sharded registry. `false` turns every hot-path metric write (and
    /// latency sampling) off — the `exp_obs` overhead experiment's
    /// control arm. Telemetry *windows* still flow either way: the
    /// adaptation loop needs them.
    pub instrument: bool,
    /// Route window samples through the legacy single-mpsc funnel instead
    /// of the per-worker SPSC rings. Only for A/B throughput comparison
    /// (`exp_serve`) — decisions are identical on both paths.
    pub funnel: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            window: 500,
            latency_sample_every: 4,
            monitor_window: 6,
            monitor_tolerance: 1.35,
            min_reuse_score: 0.0,
            record_decisions: false,
            guard: Some(PolicyGuard::default()),
            retry: RetryPolicy::serving(),
            chaos: None,
            instrument: true,
            funnel: false,
        }
    }
}

/// The background re-synthesis half of a serve run: the drifted-context
/// study the controller scores against, and the generator + search budget
/// it may spend. `None` disables adaptation (the cell still accepts
/// external publishes).
pub struct Resynth<S: Study> {
    /// Context name recorded in the library (e.g. `lb/slow-node-onset`).
    pub context: String,
    /// Study of the (drifted) context.
    pub study: S,
    /// Generator the background search drives.
    pub generator: Box<dyn Generator + Send>,
    /// Search budget. Use [`SearchConfig::pipelined`] — the search runs on
    /// the adaptation thread and should keep its eval workers busy.
    pub search: SearchConfig,
    /// Library entries available before the run starts (earlier
    /// deployments; possibly with poisoned sources carried over).
    pub library: HeuristicLibrary,
}

/// What one drift trigger did, for the report.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationEvent {
    /// Generation the answer was published as.
    pub generation: u64,
    /// Context the controller adapted to.
    pub context: String,
    /// Did a fresh search run and win (vs a library reuse)?
    pub resynthesized: bool,
    /// Deployed policy's score in the drifted context.
    pub score: f64,
    /// Deployed policy source.
    pub source: String,
    /// Microseconds from drift trigger to publish (the background
    /// re-synthesis latency — serving continues throughout).
    pub resynthesis_micros: u64,
    /// Failed search attempts retried before this adaptation landed
    /// (0 = the first attempt won, or no search was needed).
    pub retries: u32,
}

/// [`AdaptationEvent`]'s counterpart for triggers that did **not** change
/// the live policy: guard rejections and abandoned searches, with the
/// reason, instead of vanishing silently.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedAdaptation {
    /// Context the rejected adaptation was answering.
    pub context: String,
    /// Candidate source (empty when the search never produced one).
    pub source: String,
    /// Why it was rejected, rendered for logs.
    pub reason: String,
    /// Candidate's score in the drifted context (`-∞` when unscorable).
    pub candidate_score: f64,
    /// Shadow-replayed incumbent's score (`-∞` when unscorable, NaN when
    /// the comparison never ran).
    pub incumbent_score: f64,
    /// Microseconds from drift trigger to rejection.
    pub rejection_micros: u64,
}

/// A worker tripped its host's fault latch mid-serve and demoted to the
/// safe baseline (the fallback chain's local, zero-drop leg).
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineReport {
    /// Worker that caught the fault.
    pub worker: usize,
    /// Generation of the policy that faulted.
    pub generation: u64,
    /// Source of the offending policy (poisoned in the library on
    /// arrival).
    pub source: String,
    /// The latched runtime fault, rendered.
    pub fault: String,
    /// Microseconds since the worker started when the latch tripped.
    pub at_micros: u64,
}

/// One worker's serving outcome.
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Decisions served (every offered request was decided — the runtime
    /// never drops or blocks a decision).
    pub decisions: u64,
    /// Wall-clock seconds spent serving.
    pub wall_seconds: f64,
    /// Sampled decision latencies, ns.
    pub latency: LatencyHistogram,
    /// Policy-adoption pauses, ns (one entry per generation adopted after
    /// the first).
    pub swap_pauses_ns: Vec<u64>,
    /// Final cumulative lb metrics (lb workers).
    pub lb_metrics: Option<LbMetrics>,
    /// Final cache counters (cache workers).
    pub cache_result: Option<SimResult>,
    /// Every decision in order (only when
    /// [`ServeConfig::record_decisions`]): lb = server index picked,
    /// cache = 1 hit / 0 miss.
    pub decisions_log: Option<Vec<u32>>,
    /// Telemetry messages that could not be delivered (receiver gone).
    /// The worker keeps serving without telemetry — degraded, recorded,
    /// never a panic.
    pub telemetry_dropped: u64,
    /// Fault-latch demotions this worker performed (one per quarantine).
    pub quarantines: u64,
}

/// Everything a finished serve run reports.
pub struct ServeReport {
    /// Per-worker outcomes.
    pub workers: Vec<WorkerStats>,
    /// Every telemetry window, in controller-arrival order (after any
    /// chaos perturbation).
    pub windows: Vec<WindowSample>,
    /// The serve log (one entry per publish).
    pub swaps: Vec<SwapRecord>,
    /// Every background adaptation that changed the live policy, in order.
    pub adaptations: Vec<AdaptationEvent>,
    /// Guard rejections and abandoned searches, in order.
    pub rejections: Vec<RejectedAdaptation>,
    /// Every quarantine reported by a worker, in arrival order.
    pub quarantines: Vec<QuarantineReport>,
    /// Drift triggers whose adaptation re-selected the already-live
    /// source: answered by the controller, but not published (a no-op
    /// swap would only churn generations). A noisy quality signal under a
    /// tight tolerance shows up here instead of in the swap log.
    pub suppressed_triggers: u64,
    /// Worker or background threads that panicked (their results are
    /// missing from the report; everything else is intact).
    pub failures: Vec<String>,
    /// `(generation, source)` of every policy published during the run —
    /// adaptations, quarantine recoveries, and chaos-injected external
    /// publishes alike. The audit trail for "no poisoned policy was ever
    /// re-deployed".
    pub published: Vec<(u64, String)>,
    /// What the chaos layer injected (all zeros without a spec).
    pub chaos: ChaosStats,
    /// The controller after the run (library, monitor, adaptation trail).
    pub controller: AdaptiveController,
    /// Wall-clock seconds from first worker start to last worker finish.
    pub wall_seconds: f64,
    /// The sharded metric set, merged lock-free at the end of the run
    /// (self-describing; embeds into results JSON via
    /// [`MetricsSnapshot::to_value`]). Hot-path counters/histograms are
    /// empty when [`ServeConfig::instrument`] is off.
    pub metrics: MetricsSnapshot,
}

impl ServeReport {
    /// Total decisions across workers.
    pub fn total_decisions(&self) -> u64 {
        self.workers.iter().map(|w| w.decisions).sum()
    }

    /// Aggregate decisions per second (total decisions over the run's
    /// wall time — the sustained-throughput figure).
    pub fn decisions_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.total_decisions() as f64 / self.wall_seconds
    }

    /// Fleet-wide latency histogram (merged worker samples).
    pub fn latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for w in &self.workers {
            h.merge(&w.latency);
        }
        h
    }

    /// All adoption pauses across workers, ns.
    pub fn swap_pauses_ns(&self) -> Vec<u64> {
        let mut v: Vec<u64> =
            self.workers.iter().flat_map(|w| w.swap_pauses_ns.iter().copied()).collect();
        v.sort_unstable();
        v
    }

    /// Batch quantile lookup over the fleet-wide latency histogram (one
    /// merge + one cumulative sweep for all requested quantiles).
    pub fn latency_quantiles(&self, qs: &[f64]) -> Vec<u64> {
        self.latency().quantiles(qs)
    }
}

/// The serve runtime's sharded metric set: one registry, one shard per
/// worker, fixed ids registered before any worker spawns.
struct ServeMetrics {
    registry: MetricsRegistry,
    decisions: CounterId,
    windows: CounterId,
    window_backlogged: CounterId,
    quarantines: CounterId,
    latency: HistId,
    pause: HistId,
}

impl ServeMetrics {
    fn new(shards: usize) -> ServeMetrics {
        let mut registry = MetricsRegistry::new(shards);
        ServeMetrics {
            decisions: registry.counter("serve.decisions"),
            windows: registry.counter("serve.windows"),
            window_backlogged: registry.counter("serve.windows_backlogged"),
            quarantines: registry.counter("serve.quarantines"),
            latency: registry.histogram("serve.decision_latency_ns"),
            pause: registry.histogram("serve.adoption_pause_ns"),
            registry,
        }
    }

    fn shard(&self, worker: usize, instrument: bool) -> ShardMetrics<'_> {
        ShardMetrics { m: self, worker, enabled: instrument }
    }
}

/// One worker's writer half of [`ServeMetrics`]: plain unsynchronized
/// stores into the worker's own shard. `enabled = false` (the `exp_obs`
/// control arm) turns every write into a predictable no-op branch.
#[derive(Clone, Copy)]
struct ShardMetrics<'a> {
    m: &'a ServeMetrics,
    worker: usize,
    enabled: bool,
}

impl ShardMetrics<'_> {
    #[inline]
    fn on_decision(&self) {
        if self.enabled {
            self.m.registry.shard(self.worker).add(self.m.decisions, 1);
        }
    }

    #[inline]
    fn record_latency(&self, ns: u64) {
        if self.enabled {
            self.m.registry.shard(self.worker).record(self.m.latency, ns);
        }
    }

    fn on_window(&self) {
        if self.enabled {
            self.m.registry.shard(self.worker).add(self.m.windows, 1);
        }
    }

    fn on_pause(&self, ns: u64) {
        if self.enabled {
            self.m.registry.shard(self.worker).record(self.m.pause, ns);
        }
    }

    fn on_quarantine(&self) {
        if self.enabled {
            self.m.registry.shard(self.worker).add(self.m.quarantines, 1);
        }
    }

    fn on_backlogged(&self, n: u64) {
        if self.enabled && n > 0 {
            self.m.registry.shard(self.worker).add(self.m.window_backlogged, n);
        }
    }

    /// This worker's decision-latency histogram, snapshotted out of its
    /// shard (empty when instrumentation is off).
    fn latency_hist(&self) -> policysmith_obs::LatencyHistogram {
        self.m.registry.hist_shard(self.m.latency, self.worker)
    }
}

/// A worker's window-sample lane to the adaptation thread.
///
/// Sharded (default): a bounded lock-free SPSC ring plus an unbounded
/// worker-local overflow backlog — `send` never blocks and never loses a
/// sample while the consumer is alive. Funnel (legacy, kept for A/B
/// measurement): the shared mpsc all workers contend on.
enum WindowTx {
    Sharded {
        tx: SpscSender<WindowSample>,
        backlog: VecDeque<WindowSample>,
        /// Samples that transited the backlog (ring momentarily full).
        backlogged: u64,
    },
    Funnel(mpsc::Sender<WindowSample>),
}

impl WindowTx {
    /// Deliver a sample without ever blocking the decision path. Returns
    /// `false` when the receiver is gone (the worker keeps serving
    /// without telemetry; the caller counts the degradation).
    fn send(&mut self, sample: WindowSample) -> bool {
        match self {
            WindowTx::Sharded { tx, backlog, backlogged } => {
                if tx.receiver_closed() {
                    return false;
                }
                // FIFO: older backlogged samples go first
                while let Some(front) = backlog.pop_front() {
                    if let Err(back) = tx.push(front) {
                        backlog.push_front(back);
                        break;
                    }
                }
                if backlog.is_empty() {
                    if let Err(full) = tx.push(sample) {
                        backlog.push_back(full);
                        *backlogged += 1;
                    }
                } else {
                    backlog.push_back(sample);
                    *backlogged += 1;
                }
                true
            }
            WindowTx::Funnel(tx) => tx.send(sample).is_ok(),
        }
    }

    /// End of stream: flush any backlog into the ring (yield-looping while
    /// the consumer drains — the worker is done serving, so this costs no
    /// decisions). Returns `(undelivered, backlogged)`.
    fn finish(self) -> (u64, u64) {
        match self {
            WindowTx::Sharded { mut tx, mut backlog, backlogged } => {
                while let Some(front) = backlog.pop_front() {
                    if tx.receiver_closed() {
                        // consumer died: these samples are undeliverable
                        return (backlog.len() as u64 + 1, backlogged);
                    }
                    if let Err(back) = tx.push(front) {
                        backlog.push_front(back);
                        std::thread::yield_now();
                    }
                }
                (0, backlogged)
            }
            WindowTx::Funnel(_) => (0, 0),
        }
    }
}

/// The adaptation thread's consuming half of the window lanes.
enum WindowRx {
    Sharded {
        rings: Vec<SpscReceiver<WindowSample>>,
        /// Rotating scan start, so no worker's lane is structurally favored.
        next: usize,
    },
    Funnel {
        rx: mpsc::Receiver<WindowSample>,
        disconnected: bool,
    },
}

impl WindowRx {
    fn pop(&mut self) -> Option<WindowSample> {
        match self {
            WindowRx::Sharded { rings, next } => {
                let n = rings.len();
                for i in 0..n {
                    let at = (*next + i) % n;
                    if let Some(s) = rings[at].pop() {
                        *next = (at + 1) % n;
                        return Some(s);
                    }
                }
                None
            }
            WindowRx::Funnel { rx, disconnected } => match rx.try_recv() {
                Ok(s) => Some(s),
                Err(mpsc::TryRecvError::Empty) => None,
                Err(mpsc::TryRecvError::Disconnected) => {
                    *disconnected = true;
                    None
                }
            },
        }
    }

    /// Nothing queued and nothing can ever arrive again.
    fn finished(&self) -> bool {
        match self {
            WindowRx::Sharded { rings, .. } => rings.iter().all(|r| r.finished()),
            WindowRx::Funnel { disconnected, .. } => *disconnected,
        }
    }
}

/// What the adaptation thread hands back when the last worker hangs up.
#[derive(Default)]
struct BackgroundReport {
    windows: Vec<WindowSample>,
    adaptations: Vec<AdaptationEvent>,
    rejections: Vec<RejectedAdaptation>,
    quarantines: Vec<QuarantineReport>,
    suppressed: u64,
    published: Vec<(u64, String)>,
    chaos: ChaosStats,
}

/// Compile the domain's man-made baseline (see
/// [`crate::chaos::baseline_source`]) — static sources, so the expects
/// are unreachable by construction.
fn compile_baseline(mode: Mode) -> CompiledPolicy {
    let src = crate::chaos::baseline_source(mode);
    let expr = policysmith_dsl::parse(src).expect("man-made baselines parse");
    CompiledPolicy::compile(&expr, mode).expect("man-made baselines compile")
}

/// Serve lb dispatch decisions: worker `w` plays `shards[w]` (a phase
/// sequence — phase boundaries are the drift injection) through its own
/// [`policysmith_lbsim::LbEngine`], dispatching every arrival with the currently-published
/// policy. See [`lb_shards`](crate::loadgen::lb_shards) for building the shards.
pub fn serve_lb<S: Study + Send>(
    shards: &[Vec<Scenario>],
    initial: CompiledPolicy,
    cfg: &ServeConfig,
    resynth: Option<Resynth<S>>,
) -> ServeReport {
    assert!(!shards.is_empty() && shards.iter().all(|s| !s.is_empty()), "need phases per worker");
    debug_assert_eq!(initial.mode(), Mode::Lb);
    let baseline = compile_baseline(Mode::Lb);
    serve(cfg, initial, baseline, resynth, shards, |worker, shard, handle, lanes, c, base| {
        run_lb_worker(worker, shard, handle, lanes, c, base)
    })
}

/// Serve cache decisions: worker `w` replays `shards[w]` through its own
/// [`Cache`] sized at `capacity` bytes, every request priced by the
/// currently-published priority policy. See [`CacheReplay`](crate::loadgen::CacheReplay).
pub fn serve_cache<S: Study + Send>(
    shards: &[Trace],
    capacity: u64,
    initial: CompiledPolicy,
    cfg: &ServeConfig,
    resynth: Option<Resynth<S>>,
) -> ServeReport {
    assert!(!shards.is_empty(), "need a trace per worker");
    debug_assert_eq!(initial.mode(), Mode::Cache);
    let baseline = compile_baseline(Mode::Cache);
    serve(cfg, initial, baseline, resynth, shards, move |worker, trace, handle, lanes, c, base| {
        run_cache_worker(worker, trace, capacity, handle, lanes, c, base)
    })
}

/// Render a thread's panic payload for [`ServeReport::failures`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

/// Everything a worker needs to talk to the rest of the runtime: its
/// window-sample lane, the control-plane quarantine sender, and the
/// writer half of its metric shard.
struct WorkerLanes<'a> {
    windows: WindowTx,
    control: mpsc::Sender<QuarantineReport>,
    metrics: ShardMetrics<'a>,
}

/// The shared scaffold: spawn one worker per shard plus the adaptation
/// thread, join everything (a panicking thread degrades the report, it
/// does not take the run down), assemble the report.
fn serve<S: Study + Send, ShardInput: Sync>(
    cfg: &ServeConfig,
    initial: CompiledPolicy,
    baseline: CompiledPolicy,
    resynth: Option<Resynth<S>>,
    shards: &[ShardInput],
    worker_fn: impl Fn(
            usize,
            &ShardInput,
            ReaderHandle<'_, CompiledPolicy>,
            WorkerLanes<'_>,
            &ServeConfig,
            &CompiledPolicy,
        ) -> WorkerStats
        + Sync,
) -> ServeReport {
    let mode = initial.mode();
    debug_assert_eq!(baseline.mode(), mode);
    let initial_expr = initial.expr().clone();
    let cell = PolicyCell::new(initial, shards.len() + 1);
    let metrics = ServeMetrics::new(shards.len());
    // control plane: quarantine reports keep the one shared mpsc
    let (ctl_tx, ctl_rx) = mpsc::channel::<QuarantineReport>();
    // data plane: window samples ride per-worker SPSC rings (or, for A/B
    // measurement only, the legacy shared funnel)
    let (mut window_txs, window_rx) = if cfg.funnel {
        let (wtx, wrx) = mpsc::channel::<WindowSample>();
        let txs = (0..shards.len()).map(|_| WindowTx::Funnel(wtx.clone())).collect::<Vec<_>>();
        (txs, WindowRx::Funnel { rx: wrx, disconnected: false })
    } else {
        let mut txs = Vec::with_capacity(shards.len());
        let mut rings = Vec::with_capacity(shards.len());
        for _ in 0..shards.len() {
            let (tx, rx) = spsc::<WindowSample>(WINDOW_RING_CAPACITY);
            txs.push(WindowTx::Sharded { tx, backlog: VecDeque::new(), backlogged: 0 });
            rings.push(rx);
        }
        (txs, WindowRx::Sharded { rings, next: 0 })
    };
    let monitor = ContextMonitor::new(cfg.monitor_window, cfg.monitor_tolerance);
    let seed_library = resynth.as_ref().map(|r| r.library.clone()).unwrap_or_default();
    let mut controller =
        AdaptiveController::new(monitor, cfg.min_reuse_score).with_library(seed_library);

    let t0 = Instant::now();
    let mut failures = Vec::new();
    let (stats, background) = std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(shards.len());
        for (w, shard) in shards.iter().enumerate() {
            let handle = cell.register();
            let lanes = WorkerLanes {
                windows: window_txs.remove(0),
                control: ctl_tx.clone(),
                metrics: metrics.shard(w, cfg.instrument),
            };
            let cfg = cfg.clone();
            let worker_fn = &worker_fn;
            let baseline = baseline.clone();
            joins.push(scope.spawn(move || worker_fn(w, shard, handle, lanes, &cfg, &baseline)));
        }
        drop(ctl_tx); // the adaptation loop ends when the last worker hangs up
        let ctrl = &mut controller;
        let cellref = &cell;
        let base = &baseline;
        let background = scope.spawn(move || {
            adaptation_loop(
                ctl_rx,
                window_rx,
                ctrl,
                resynth,
                cellref,
                mode,
                initial_expr,
                base,
                cfg,
            )
        });
        // graceful joins: a panicked worker loses its stats, not the run
        let mut stats = Vec::new();
        for (w, join) in joins.into_iter().enumerate() {
            match join.join() {
                Ok(s) => stats.push(s),
                Err(p) => failures.push(format!("worker {w} panicked: {}", panic_message(&*p))),
            }
        }
        let background = match background.join() {
            Ok(b) => b,
            Err(p) => {
                failures.push(format!("adaptation thread panicked: {}", panic_message(&*p)));
                BackgroundReport::default()
            }
        };
        (stats, background)
    });
    let wall_seconds = t0.elapsed().as_secs_f64();

    ServeReport {
        workers: stats,
        windows: background.windows,
        swaps: cell.swap_log(),
        adaptations: background.adaptations,
        rejections: background.rejections,
        quarantines: background.quarantines,
        suppressed_triggers: background.suppressed,
        failures,
        published: background.published,
        chaos: background.chaos,
        controller,
        wall_seconds,
        metrics: metrics.registry.snapshot(),
    }
}

/// The background §3.1 loop: drain telemetry, detect drift, answer it
/// without ever pausing the workers — now with guarded publication,
/// quarantine handling, and a retried/watchdogged search.
///
/// Two lanes feed it: the per-worker window rings (polled, lock-free) and
/// the control-plane quarantine mpsc (blocked on with a short timeout
/// when the rings are idle, so quarantines are answered promptly without
/// busy-spinning). It exits once the control channel has disconnected —
/// every worker returned — and the window lanes are fully drained, so no
/// window a worker delivered is ever lost.
#[allow(clippy::too_many_arguments)]
fn adaptation_loop<S: Study>(
    control: mpsc::Receiver<QuarantineReport>,
    mut windows: WindowRx,
    controller: &mut AdaptiveController,
    mut resynth: Option<Resynth<S>>,
    cell: &PolicyCell<CompiledPolicy>,
    mode: Mode,
    initial_expr: policysmith_dsl::Expr,
    baseline: &CompiledPolicy,
    cfg: &ServeConfig,
) -> BackgroundReport {
    let mut report = BackgroundReport::default();
    let mut live_expr = initial_expr;
    let chaos = cfg.chaos.clone().unwrap_or_default();
    let mut injector = TelemetryInjector::new(chaos.telemetry, chaos.seed);
    let mut pending_external = chaos.external_publish;
    let mut arrivals = 0u64;
    let mut deliveries: Vec<WindowSample> = Vec::new();
    let mut control_done = false;

    loop {
        // window lane: drain everything queued right now
        let mut drained_any = false;
        while let Some(sample) = windows.pop() {
            drained_any = true;
            arrivals += 1;

            // chaos: an operator pushes a policy straight past the guard
            if let Some(ext) = pending_external.as_ref() {
                if arrivals >= ext.after_windows {
                    if let Ok(expr) = policysmith_dsl::parse(&ext.source) {
                        if let Ok(policy) = CompiledPolicy::compile(&expr, mode) {
                            let generation = cell.publish(
                                policy,
                                format!("external publish (chaos): {}", ext.source),
                            );
                            report.published.push((generation, ext.source.clone()));
                            report.chaos.external_publishes += 1;
                            live_expr = expr;
                        }
                    }
                    pending_external = None;
                }
            }

            deliveries.clear();
            injector.apply(sample, &mut deliveries);
            for sample in deliveries.drain(..) {
                process_window(
                    sample,
                    controller,
                    &mut resynth,
                    cell,
                    mode,
                    &mut live_expr,
                    cfg,
                    &mut report,
                );
            }
        }

        // control lane: quarantines (and worker-completion tracking)
        loop {
            match control.try_recv() {
                Ok(q) => handle_quarantine(
                    q,
                    controller,
                    &resynth,
                    cell,
                    mode,
                    baseline,
                    &mut live_expr,
                    &mut report,
                ),
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    control_done = true;
                    break;
                }
            }
        }

        if control_done && windows.finished() {
            break;
        }
        if !drained_any {
            if control_done {
                // workers are gone but a final backlog flush may still be
                // in flight on a ring; yield briefly and re-drain
                std::thread::sleep(Duration::from_micros(50));
            } else {
                match control.recv_timeout(Duration::from_micros(200)) {
                    Ok(q) => handle_quarantine(
                        q,
                        controller,
                        &resynth,
                        cell,
                        mode,
                        baseline,
                        &mut live_expr,
                        &mut report,
                    ),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => control_done = true,
                }
            }
        }
    }
    deliveries.clear();
    injector.flush(&mut deliveries);
    for sample in deliveries.drain(..) {
        process_window(
            sample,
            controller,
            &mut resynth,
            cell,
            mode,
            &mut live_expr,
            cfg,
            &mut report,
        );
    }
    let ext = report.chaos.external_publishes;
    report.chaos = injector.stats();
    report.chaos.external_publishes = ext;
    report
}

/// One quarantine: poison the offender, and if it is still live, publish
/// a recovery through the safe-fallback chain (best non-poisoned library
/// entry → man-made baseline).
#[allow(clippy::too_many_arguments)]
fn handle_quarantine<S: Study>(
    q: QuarantineReport,
    controller: &mut AdaptiveController,
    resynth: &Option<Resynth<S>>,
    cell: &PolicyCell<CompiledPolicy>,
    mode: Mode,
    baseline: &CompiledPolicy,
    live_expr: &mut policysmith_dsl::Expr,
    report: &mut BackgroundReport,
) {
    controller.poison(&q.source);
    let still_live = cell.generation() == q.generation;
    report.quarantines.push(q.clone());
    if !still_live {
        // a newer publish already superseded the faulting policy (another
        // worker's quarantine was answered, or an adaptation landed);
        // poisoning it is all that is left to do
        return;
    }
    let recovery = match resynth.as_ref() {
        Some(r) => resolve_recovery(controller.library(), &r.study),
        None => Recovery::Baseline,
    };
    let (policy, source, kind) = match recovery {
        Recovery::Library { entry, .. } => {
            match policysmith_dsl::parse(&entry.source)
                .ok()
                .and_then(|e| CompiledPolicy::compile(&e, mode).ok().map(|p| (e, p)))
            {
                Some((_, policy)) => (policy, entry.source.clone(), "library entry"),
                // a stored entry that no longer compiles: bottom of the chain
                None => (baseline.clone(), to_source(baseline.expr()), "baseline"),
            }
        }
        Recovery::Baseline => (baseline.clone(), to_source(baseline.expr()), "baseline"),
    };
    let generation = cell.publish(
        policy,
        format!(
            "quarantine recovery ({kind}) after worker {} faulted gen {}: {}",
            q.worker, q.generation, q.fault
        ),
    );
    report.published.push((generation, source.clone()));
    if let Ok(expr) = policysmith_dsl::parse(&source) {
        *live_expr = expr;
    }
}

/// One (possibly chaos-perturbed) telemetry window through the drift →
/// reuse-or-search → guard → publish pipeline.
#[allow(clippy::too_many_arguments)]
fn process_window<S: Study>(
    sample: WindowSample,
    controller: &mut AdaptiveController,
    resynth: &mut Option<Resynth<S>>,
    cell: &PolicyCell<CompiledPolicy>,
    mode: Mode,
    live_expr: &mut policysmith_dsl::Expr,
    cfg: &ServeConfig,
    report: &mut BackgroundReport,
) {
    // Only observe windows served by the live generation: samples that
    // were in flight while a search ran describe the deposed policy,
    // and re-triggering on them would answer drift that is already
    // answered.
    let stale = sample.generation < cell.generation();
    let signal = sample.signal;
    report.windows.push(sample);
    if stale || !controller.observe(signal) {
        return;
    }
    let Some(r) = resynth.as_mut() else { return };
    let t0 = Instant::now();
    let mut retries = 0u32;
    let adaptation = match controller.try_reuse(&r.study) {
        Ok(a) => Some(a),
        Err(ticket) => {
            // The blocking part runs HERE, on the adaptation thread —
            // workers keep serving decisions against the old policy
            // until the publish below. The search itself runs under the
            // retry policy: transient generator failures back off and
            // retry; a persistent outage trips the watchdog.
            let retried =
                run_search_with_retry(&r.study, r.generator.as_mut(), &r.search, &cfg.retry);
            retries = retried.failures.len() as u32;
            match retried.outcome {
                Some(outcome) => Some(controller.finish_search(&r.context, ticket, outcome.best)),
                None => {
                    // the watchdog gave up: fall back to the best stored
                    // entry instead of blocking adaptation forever
                    let why = retried
                        .gave_up
                        .map(|g| g.to_string())
                        .unwrap_or_else(|| "gave up".to_string());
                    let last_err = retried
                        .failures
                        .last()
                        .map(|f| f.error.clone())
                        .unwrap_or_else(|| "no attempts ran".to_string());
                    let fallback = controller.abandon_search(ticket);
                    let note = if fallback.is_some() {
                        "falling back to the best stored entry"
                    } else {
                        "nothing stored is deployable; the incumbent stays live"
                    };
                    report.rejections.push(RejectedAdaptation {
                        context: r.context.clone(),
                        source: String::new(),
                        reason: format!(
                            "re-synthesis gave up after {retries} failed attempts ({why}; last: {last_err}); {note}"
                        ),
                        candidate_score: f64::NEG_INFINITY,
                        incumbent_score: f64::NEG_INFINITY,
                        rejection_micros: t0.elapsed().as_micros() as u64,
                    });
                    fallback
                }
            }
        }
    };
    let Some(adaptation) = adaptation else { return };
    let source = adaptation.entry().source.clone();
    let Ok(expr) = policysmith_dsl::parse(&source) else {
        // a library source that does not parse cannot go live — reject
        // with reason rather than panicking the adaptation thread
        report.rejections.push(RejectedAdaptation {
            context: r.context.clone(),
            source,
            reason: "check failed: stored source does not parse".to_string(),
            candidate_score: f64::NEG_INFINITY,
            incumbent_score: f64::NAN,
            rejection_micros: t0.elapsed().as_micros() as u64,
        });
        return;
    };
    if expr == *live_expr {
        // the controller re-selected what is already serving — the
        // initially-deployed policy included (the comparison is
        // structural, so formatting differences don't defeat it): a
        // noisy signal re-fired the monitor, and publishing again
        // would only churn generations for a policy nobody replaces
        report.suppressed += 1;
        return;
    }
    // guarded publication: re-score the candidate and shadow-replay the
    // incumbent in the drifted context before anything goes live
    if let Some(guard) = cfg.guard {
        match guard.screen(&r.study, &source, &to_source(live_expr)) {
            GuardVerdict::Admit { candidate_score, incumbent_score } => {
                policysmith_obs::emit(TraceKind::GuardAdmit {
                    context: r.context.clone(),
                    candidate_score,
                    incumbent_score,
                });
            }
            GuardVerdict::Reject { reason, candidate_score, incumbent_score } => {
                if matches!(reason, RejectReason::RuntimeFault) {
                    // a candidate that faults in shadow evaluation would
                    // fault in production: quarantine it preemptively
                    controller.poison(&source);
                }
                policysmith_obs::emit(TraceKind::GuardReject {
                    context: r.context.clone(),
                    reason: reason.describe(),
                    candidate_score,
                    incumbent_score,
                });
                report.rejections.push(RejectedAdaptation {
                    context: r.context.clone(),
                    source,
                    reason: reason.describe(),
                    candidate_score,
                    incumbent_score,
                    rejection_micros: t0.elapsed().as_micros() as u64,
                });
                return;
            }
        }
    }
    let Ok(policy) = CompiledPolicy::compile(&expr, mode) else {
        report.rejections.push(RejectedAdaptation {
            context: r.context.clone(),
            source,
            reason: "check failed: does not compile for the serving mode".to_string(),
            candidate_score: f64::NEG_INFINITY,
            incumbent_score: f64::NAN,
            rejection_micros: t0.elapsed().as_micros() as u64,
        });
        return;
    };
    let (verb, score) = match &adaptation {
        Adaptation::FromLibrary { score, .. } => ("reused", *score),
        Adaptation::Resynthesized { entry } => ("resynthesized", entry.score),
    };
    let generation = cell.publish(
        policy,
        format!(
            "adaptation #{}: {verb} for {} ({score:+.4})",
            report.adaptations.len() + 1,
            r.context
        ),
    );
    report.published.push((generation, source.clone()));
    report.adaptations.push(AdaptationEvent {
        generation,
        context: r.context.clone(),
        resynthesized: adaptation.resynthesized(),
        score,
        source,
        resynthesis_micros: t0.elapsed().as_micros() as u64,
        retries,
    });
    *live_expr = expr;
}

/// The lb worker's serving host, layered over the batch engine's own
/// phased driver: per pick it (1) adopts any newly published generation
/// (pin → clone → rebuild, timed as the adoption pause), (2) scores the
/// fleet with the live compiled policy, sampling decision latency and
/// optionally recording the pick, (3) checks the dispatcher's fault
/// latch — a tripped latch demotes this worker to the man-made baseline
/// on the spot (no decision dropped) and reports the quarantine. Because
/// the worker drives [`run_phased_windowed`] with this host, the serve
/// path *is* the batch path plus this wrapper — the decision-identity
/// guarantee is structural, not mirrored code.
///
/// Scoring goes through `ExprDispatcher::new`'s default engine, which is
/// the batched structure-of-arrays scan (one fused `run_batch_argmin`
/// call per pick) — workers adopted the batched dispatcher the moment it
/// became the default, with no serve-side opt-in and no change to the
/// fault-latch contract (the batched argmin latches the same
/// lowest-index fault the scalar loop did).
struct ServeLbHost<'h, 'c, 'm> {
    handle: &'h mut ReaderHandle<'c, CompiledPolicy>,
    inner: ExprDispatcher,
    /// Shared with the window callback so samples can report the
    /// generation that served them (worker-local, single-threaded).
    generation: Rc<Cell<u64>>,
    pauses_ns: Vec<u64>,
    /// Writer half of this worker's metric shard (latency histogram,
    /// decision/pause/quarantine counters — plain stores, merged
    /// lock-free by the reader).
    metrics: ShardMetrics<'m>,
    sample_every: u64,
    decisions: u64,
    log: Option<Vec<u32>>,
    // -- fault path --
    worker: usize,
    started: Instant,
    control: mpsc::Sender<QuarantineReport>,
    baseline: CompiledPolicy,
    /// Source of the policy currently hosted (what a quarantine names).
    current_source: String,
    /// Serving the baseline after a fault latch; cleared on the next
    /// adoption (the recovery publish).
    in_fallback: bool,
    quarantines: u64,
    /// Shared with the window callback (telemetry degradation counter).
    dropped: Rc<Cell<u64>>,
    stall: Option<crate::chaos::WorkerStall>,
}

impl ServeLbHost<'_, '_, '_> {
    /// Chaos: a periodic decision-path stall (deterministic in decision
    /// count, so it needs no rng).
    fn maybe_stall(&self) {
        if let Some(st) = self.stall {
            if st.every_decisions > 0
                && self.decisions > 0
                && self.decisions.is_multiple_of(st.every_decisions)
            {
                std::thread::sleep(Duration::from_micros(st.stall_micros));
            }
        }
    }
}

impl Dispatcher for ServeLbHost<'_, '_, '_> {
    fn name(&self) -> &str {
        "serve"
    }

    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        let now = self.handle.cell().generation();
        if now != self.generation.get() {
            let t0 = Instant::now();
            let policy = self.handle.pin().clone();
            self.current_source = to_source(policy.expr());
            self.inner = ExprDispatcher::new("serve", policy);
            self.in_fallback = false;
            self.generation.set(now);
            let pause = t0.elapsed().as_nanos() as u64;
            self.pauses_ns.push(pause);
            self.metrics.on_pause(pause);
        }
        self.maybe_stall();
        let sampled = self.metrics.enabled
            && (self.sample_every <= 1 || self.decisions.is_multiple_of(self.sample_every));
        let t0 = sampled.then(Instant::now);
        let p = self.inner.pick(view);
        if let Some(t0) = t0 {
            self.metrics.record_latency(t0.elapsed().as_nanos() as u64);
        }
        // safe-fallback chain, local leg: the dispatcher latched a runtime
        // fault (it already degraded this pick internally — nothing was
        // dropped); demote to the baseline and report the quarantine
        if !self.in_fallback {
            let fault = self.inner.first_error().map(|f| f.to_string());
            if let Some(fault) = fault {
                policysmith_obs::emit(TraceKind::Demotion {
                    worker: self.worker,
                    generation: self.generation.get(),
                    fault: fault.clone(),
                });
                let q = QuarantineReport {
                    worker: self.worker,
                    generation: self.generation.get(),
                    source: self.current_source.clone(),
                    fault,
                    at_micros: self.started.elapsed().as_micros() as u64,
                };
                if self.control.send(q).is_err() {
                    self.dropped.set(self.dropped.get() + 1);
                }
                self.inner = ExprDispatcher::new("serve-fallback", self.baseline.clone());
                self.in_fallback = true;
                self.quarantines += 1;
                self.metrics.on_quarantine();
            }
        }
        if let Some(log) = self.log.as_mut() {
            log.push(p as u32);
        }
        self.decisions += 1;
        self.metrics.on_decision();
        p
    }
}

fn run_lb_worker(
    worker: usize,
    phases: &[Scenario],
    mut handle: ReaderHandle<'_, CompiledPolicy>,
    lanes: WorkerLanes<'_>,
    cfg: &ServeConfig,
    baseline: &CompiledPolicy,
) -> WorkerStats {
    let WorkerLanes { windows, control, metrics } = lanes;
    let mut windows = windows;
    let started = Instant::now();
    // initial adoption is deployment, not a swap: not a recorded pause
    let initial_generation = handle.cell().generation();
    let initial = handle.pin().clone();
    let current_source = to_source(initial.expr());
    let generation = Rc::new(Cell::new(initial_generation));
    let dropped = Rc::new(Cell::new(0u64));
    let mut host = ServeLbHost {
        handle: &mut handle,
        inner: ExprDispatcher::new("serve", initial),
        generation: Rc::clone(&generation),
        pauses_ns: Vec::new(),
        metrics,
        sample_every: cfg.latency_sample_every,
        decisions: 0,
        log: cfg.record_decisions.then(Vec::new),
        worker,
        started,
        control,
        baseline: baseline.clone(),
        current_source,
        in_fallback: false,
        quarantines: 0,
        dropped: Rc::clone(&dropped),
        stall: cfg.chaos.as_ref().and_then(|c| c.worker_stall),
    };
    let mut seq = 0u64;
    let phased = run_phased_windowed(phases, &mut host, cfg.window, &mut |phase, interval| {
        let sample = WindowSample {
            worker,
            seq,
            phase,
            decisions: interval.offered,
            signal: interval.resolved_slowdown(),
            generation: generation.get(),
            at_micros: started.elapsed().as_micros() as u64,
        };
        // a dead receiver must not panic a serving worker: keep serving
        // without telemetry, count the degradation
        if windows.send(sample) {
            metrics.on_window();
        } else {
            dropped.set(dropped.get() + 1);
        }
        seq += 1;
    });
    let (undelivered, backlogged) = windows.finish();
    dropped.set(dropped.get() + undelivered);
    metrics.on_backlogged(backlogged);

    WorkerStats {
        worker,
        decisions: host.decisions,
        wall_seconds: started.elapsed().as_secs_f64(),
        latency: metrics.latency_hist(),
        swap_pauses_ns: host.pauses_ns,
        lb_metrics: Some(phased.combined),
        cache_result: None,
        decisions_log: host.log,
        telemetry_dropped: dropped.get(),
        quarantines: host.quarantines,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_cache_worker(
    worker: usize,
    trace: &Trace,
    capacity: u64,
    mut handle: ReaderHandle<'_, CompiledPolicy>,
    lanes: WorkerLanes<'_>,
    cfg: &ServeConfig,
    baseline: &CompiledPolicy,
) -> WorkerStats {
    let WorkerLanes { mut windows, control, metrics } = lanes;
    // swap-capable hosts keep every tracker warm (see `track_everything`)
    let initial = handle.pin().clone();
    let mut current_source = to_source(initial.expr());
    let mut cache = Cache::new(capacity, PriorityPolicy::new("serve", initial).track_everything());
    let mut generation = handle.cell().generation();
    let mut pauses_ns = Vec::new();
    let mut log = cfg.record_decisions.then(Vec::new);
    let mut decisions = 0u64;
    let mut in_fallback = false;
    let mut quarantines = 0u64;
    let mut telemetry_dropped = 0u64;
    let stall = cfg.chaos.as_ref().and_then(|c| c.worker_stall);
    let started = Instant::now();

    for (seq, chunk) in trace.requests.chunks(cfg.window).enumerate() {
        let before = cache.result();
        for req in chunk {
            let now = handle.cell().generation();
            if now != generation {
                let t0 = Instant::now();
                let policy = handle.pin().clone();
                current_source = to_source(policy.expr());
                // swap_policy resets the fault latch along with the policy
                cache.policy.swap_policy(policy);
                in_fallback = false;
                generation = now;
                let pause = t0.elapsed().as_nanos() as u64;
                pauses_ns.push(pause);
                metrics.on_pause(pause);
            }
            if let Some(st) = stall {
                if st.every_decisions > 0
                    && decisions > 0
                    && decisions.is_multiple_of(st.every_decisions)
                {
                    std::thread::sleep(Duration::from_micros(st.stall_micros));
                }
            }
            let sampled = metrics.enabled
                && (cfg.latency_sample_every <= 1
                    || decisions.is_multiple_of(cfg.latency_sample_every));
            let t0 = sampled.then(Instant::now);
            let hit = cache.request(req);
            if let Some(t0) = t0 {
                metrics.record_latency(t0.elapsed().as_nanos() as u64);
            }
            // safe-fallback chain, local leg (see the lb host): demote to
            // LRU on a latched fault, report, keep serving
            if !in_fallback {
                let fault = cache.policy.first_error().map(|f| f.to_string());
                if let Some(fault) = fault {
                    policysmith_obs::emit(TraceKind::Demotion {
                        worker,
                        generation,
                        fault: fault.clone(),
                    });
                    let q = QuarantineReport {
                        worker,
                        generation,
                        source: current_source.clone(),
                        fault,
                        at_micros: started.elapsed().as_micros() as u64,
                    };
                    if control.send(q).is_err() {
                        telemetry_dropped += 1;
                    }
                    cache.policy.swap_policy(baseline.clone());
                    in_fallback = true;
                    quarantines += 1;
                    metrics.on_quarantine();
                }
            }
            if let Some(log) = log.as_mut() {
                log.push(hit as u32);
            }
            decisions += 1;
            metrics.on_decision();
        }
        let after = cache.result();
        let window_requests = after.requests - before.requests;
        let window_mr = if window_requests == 0 {
            0.0
        } else {
            (after.misses - before.misses) as f64 / window_requests as f64
        };
        let sample = WindowSample {
            worker,
            seq: seq as u64,
            phase: 0,
            decisions: window_requests,
            signal: window_mr,
            generation,
            at_micros: started.elapsed().as_micros() as u64,
        };
        if windows.send(sample) {
            metrics.on_window();
        } else {
            telemetry_dropped += 1;
        }
    }
    let (undelivered, backlogged) = windows.finish();
    telemetry_dropped += undelivered;
    metrics.on_backlogged(backlogged);

    WorkerStats {
        worker,
        decisions,
        wall_seconds: started.elapsed().as_secs_f64(),
        latency: metrics.latency_hist(),
        swap_pauses_ns: pauses_ns,
        lb_metrics: None,
        cache_result: Some(cache.result()),
        decisions_log: log,
        telemetry_dropped,
        quarantines,
    }
}
