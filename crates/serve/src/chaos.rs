//! Deterministic chaos: seed-driven fault plans for the serving runtime.
//!
//! Every misbehavior the fault-tolerance layer defends against is
//! injectable from here, keyed off a single plan seed so a failing run
//! reproduces exactly:
//!
//! * **generator failures** — via `policysmith_gen::FlakyGen` wrapped
//!   around the re-synthesis generator (errors, garbage batches, stalls);
//! * **poisoned candidates** slipped into the `HeuristicLibrary` before
//!   the run starts;
//! * **faulting policies published externally** — an operator pushing a
//!   compiled-but-runtime-faulting policy straight past the guard
//!   ([`ExternalPublish`]), which the worker-side fallback chain must
//!   catch;
//! * **telemetry-window drops / duplicates / reordering** on the
//!   worker → adaptation-thread channel ([`TelemetryInjector`]);
//! * **worker stalls** — periodic decision-path pauses ([`WorkerStall`]).
//!
//! The injection points are wired into `runtime::serve` behind
//! `ServeConfig::chaos`; a spec of all-zero probabilities is *exactly* the
//! plain serve path (the chaos bench asserts decision-identity for that
//! configuration). The harness (`exp_chaos`) runs lb and cache serving
//! under every mix and enforces the invariants — zero dropped decisions,
//! quality floor vs. the man-made baseline, bounded time-to-recover,
//! monotonic generations — by exit code.

use crate::telemetry::WindowSample;
use policysmith_core::library::LibraryEntry;
use policysmith_dsl::Mode;
use policysmith_gen::FlakyConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Telemetry-stream perturbation probabilities (per arriving window).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TelemetryChaos {
    /// Window silently lost in transit.
    pub p_drop: f64,
    /// Window delivered twice.
    pub p_duplicate: f64,
    /// Window held back and delivered after a younger one.
    pub p_reorder: f64,
}

impl TelemetryChaos {
    fn is_off(&self) -> bool {
        self.p_drop <= 0.0 && self.p_duplicate <= 0.0 && self.p_reorder <= 0.0
    }
}

/// Periodic decision-path stalls — a worker descheduled by the OS, hit by
/// a GC pause, or blocked on a slow syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStall {
    /// Stall once every this many decisions.
    pub every_decisions: u64,
    /// How long each stall lasts.
    pub stall_micros: u64,
}

/// An out-of-band publish that bypasses the guard — an operator (or a
/// buggy sidecar) pushing a policy straight into the cell. The fault
/// plans use a compiled-but-runtime-faulting source here, so the only
/// thing standing between it and served traffic is the worker-side
/// fallback chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternalPublish {
    /// Publish after this many telemetry windows have arrived.
    pub after_windows: u64,
    /// The source to publish (must compile for the serving mode).
    pub source: String,
}

/// One serve run's worth of injected misbehavior. `ChaosSpec::default()`
/// (zero probabilities, no stalls, no external publish) is
/// decision-identical to running without chaos at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosSpec {
    /// Seed for every probabilistic injection in this spec.
    pub seed: u64,
    pub telemetry: TelemetryChaos,
    pub worker_stall: Option<WorkerStall>,
    pub external_publish: Option<ExternalPublish>,
}

/// What the chaos layer actually did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    pub windows_dropped: u64,
    pub windows_duplicated: u64,
    pub windows_reordered: u64,
    pub external_publishes: u64,
}

/// Stateful telemetry perturber, applied on the adaptation thread as
/// windows arrive. Deterministic per seed and arrival sequence.
#[derive(Debug)]
pub struct TelemetryInjector {
    chaos: TelemetryChaos,
    rng: StdRng,
    /// A reordered window waiting to land after a younger one.
    held: Option<WindowSample>,
    stats: ChaosStats,
}

impl TelemetryInjector {
    pub fn new(chaos: TelemetryChaos, seed: u64) -> TelemetryInjector {
        TelemetryInjector {
            chaos,
            rng: StdRng::seed_from_u64(seed),
            held: None,
            stats: ChaosStats::default(),
        }
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.random_bool(p)
    }

    /// Perturb one arriving window into 0..=3 deliveries appended to
    /// `out`. A held (reordered) window is released after the next
    /// arrival, so it lands behind a younger sample.
    pub fn apply(&mut self, sample: WindowSample, out: &mut Vec<WindowSample>) {
        if self.chaos.is_off() {
            out.push(sample);
            return;
        }
        if self.roll(self.chaos.p_drop) {
            self.stats.windows_dropped += 1;
        } else if self.held.is_none() && self.roll(self.chaos.p_reorder) {
            self.stats.windows_reordered += 1;
            self.held = Some(sample);
            return; // delivered by a later apply/flush, out of order
        } else {
            if self.roll(self.chaos.p_duplicate) {
                self.stats.windows_duplicated += 1;
                out.push(sample.clone());
            }
            out.push(sample);
        }
        if let Some(older) = self.held.take() {
            out.push(older);
        }
    }

    /// Release any still-held window (call when the stream ends).
    pub fn flush(&mut self, out: &mut Vec<WindowSample>) {
        if let Some(older) = self.held.take() {
            out.push(older);
        }
    }

    /// Perturbation counts so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }
}

/// The man-made safety net each serving domain demotes to when the
/// fallback chain bottoms out: JSQ (join-shortest-queue) for load
/// balancing, LRU for caching, a CoDel-style sojourn gate for AQM, AIMD
/// for congestion control. These need no library, no score, and no
/// generator — they are the chain's unconditional terminal link.
pub fn baseline_source(mode: Mode) -> &'static str {
    match mode {
        // JSQ: dispatch to the server with the shortest queue
        Mode::Lb => "server.queue_len",
        // LRU: evict the least-recently-used (priority = last access)
        Mode::Cache => "obj.last_access",
        // CoDel-style: drop once sojourn time exceeds a 5 ms target
        Mode::Aqm => "if(pkt.sojourn > 5000, 2, 0)",
        // AIMD: halve on loss, grow by one otherwise
        Mode::Kernel => "if(loss, max(cwnd >> 1, 2), cwnd + 1)",
    }
}

/// A source that passes the Checker but faults at runtime (division by a
/// feature that is zero early in any run) — the "verified yet deadly"
/// policy the fault latch + quarantine path exists for.
pub fn faulting_source(mode: Mode) -> &'static str {
    match mode {
        // every server starts with an empty queue → ÷0 on the first pick
        Mode::Lb => "1000 / server.queue_len",
        // a just-inserted object has age 0 → ÷0 on the next access
        Mode::Cache => "obj.size / obj.age",
        Mode::Aqm => "q.bytes / q.pkts",
        Mode::Kernel => "cwnd / inflight",
    }
}

/// One named chaos configuration: what misbehaves, where, and what the
/// library looks like at start. Everything downstream of the plan is a
/// deterministic function of `(plan, workload seed)` up to thread timing.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Plan name (keys the results JSON).
    pub name: String,
    /// Runtime-side injections (telemetry, stalls, external publishes).
    pub spec: ChaosSpec,
    /// Wrap the re-synthesis generator in `FlakyGen` with this config.
    pub flaky_gen: Option<FlakyConfig>,
    /// Library entries present before serving starts, with a poisoned
    /// flag (a quarantine verdict carried over from an earlier run).
    pub seed_library: Vec<(LibraryEntry, bool)>,
}

impl FaultPlan {
    /// The control arm: no injections anywhere. Runs through every chaos
    /// code path with zero probabilities — asserted decision-identical to
    /// the plain serve path by the harness.
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            name: "no-fault".into(),
            spec: ChaosSpec { seed, ..ChaosSpec::default() },
            flaky_gen: None,
            seed_library: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> WindowSample {
        WindowSample {
            worker: 0,
            seq,
            phase: 0,
            decisions: 10,
            signal: 0.5,
            generation: 0,
            at_micros: seq * 1000,
        }
    }

    fn run(chaos: TelemetryChaos, seed: u64, n: u64) -> (Vec<u64>, ChaosStats) {
        let mut inj = TelemetryInjector::new(chaos, seed);
        let mut out = Vec::new();
        for seq in 0..n {
            inj.apply(sample(seq), &mut out);
        }
        inj.flush(&mut out);
        (out.iter().map(|s| s.seq).collect(), inj.stats())
    }

    #[test]
    fn zero_probability_injector_is_transparent() {
        let (seqs, stats) = run(TelemetryChaos::default(), 7, 50);
        assert_eq!(seqs, (0..50).collect::<Vec<_>>());
        assert_eq!(stats, ChaosStats::default());
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let chaos = TelemetryChaos { p_drop: 0.2, p_duplicate: 0.2, p_reorder: 0.2 };
        assert_eq!(run(chaos, 3, 200), run(chaos, 3, 200));
        assert_ne!(run(chaos, 3, 200).0, run(chaos, 4, 200).0);
    }

    #[test]
    fn injector_conserves_undropped_windows() {
        let chaos = TelemetryChaos { p_drop: 0.3, p_duplicate: 0.2, p_reorder: 0.2 };
        let (seqs, stats) = run(chaos, 11, 500);
        assert_eq!(seqs.len() as u64, 500 - stats.windows_dropped + stats.windows_duplicated);
        assert!(stats.windows_dropped > 0 && stats.windows_duplicated > 0);
        // every delivered seq is a real one
        assert!(seqs.iter().all(|&s| s < 500));
    }

    #[test]
    fn reordered_windows_land_late_but_land() {
        let chaos = TelemetryChaos { p_drop: 0.0, p_duplicate: 0.0, p_reorder: 0.4 };
        let (seqs, stats) = run(chaos, 5, 300);
        assert!(stats.windows_reordered > 0);
        assert_eq!(seqs.len(), 300, "reordering must not lose windows");
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..300).collect::<Vec<_>>());
        assert_ne!(seqs, sorted, "some window must actually arrive out of order");
    }

    #[test]
    fn baselines_and_faulting_sources_compile_for_their_modes() {
        use policysmith_dsl::{check, parse};
        for mode in [Mode::Lb, Mode::Cache, Mode::Aqm, Mode::Kernel] {
            for src in [baseline_source(mode), faulting_source(mode)] {
                let e = parse(src).unwrap_or_else(|e| panic!("{mode:?} `{src}`: {e}"));
                check(&e, mode).unwrap_or_else(|e| panic!("{mode:?} `{src}`: {e}"));
            }
        }
    }
}
