//! The deterministic open-loop load generator.
//!
//! "Open-loop" in the classical sense: every request stream is generated
//! up front with its own arrival timestamps, independent of how fast the
//! runtime serves — a slow policy builds queues, it does not throttle the
//! offered load. Everything is a pure function of `(spec, seed, worker)`,
//! so a serve run is replayable decision for decision.
//!
//! Serving engines are thread-confined (each worker owns its fleet or its
//! cache), so the generator **shards by reseeding**, not by splitting:
//! worker 0 replays the spec's exact stream (which is what makes the
//! serve-vs-batch differential test possible), workers 1..n replay
//! statistically identical streams from seeds mixed with the worker index.
//!
//! Two built-in sources, matching the runtime's two decision kinds:
//!
//! * the seven lb scenario presets (plus any custom [`Scenario`] phase
//!   sequence — a multi-phase list is the drift-injection mechanism);
//! * cache trace replay via `crates/traces` (the synthetic CloudPhysics /
//!   MSR datasets).

use policysmith_lbsim::{scenario, Scenario};
use policysmith_traces::datasets::{CLOUDPHYSICS, MSR};
use policysmith_traces::{DatasetSpec, Trace};

/// splitmix64-style seed mixer: derive an independent stream seed from a
/// base seed and a salt (worker index, repetition index). Public so
/// experiment binaries deriving their own repetition seeds use the same
/// well-mixed generator instead of hand-rolling a weaker one.
pub fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Look up an lb scenario preset by its short name (`"flash-crowd"`) or
/// full name (`"lb/flash-crowd"`).
pub fn lb_preset(name: &str) -> Option<Scenario> {
    scenario::all_presets()
        .into_iter()
        .find(|s| s.name == name || s.name.trim_start_matches("lb/") == name)
}

/// Names of all lb presets the generator can serve.
pub fn lb_preset_names() -> Vec<String> {
    scenario::all_presets().into_iter().map(|s| s.name).collect()
}

/// The built-in drift injection: the slow-node-onset phase pair (healthy
/// fleet, then the same tier with server 5 degraded to speed 1).
pub fn lb_drift_phases() -> Vec<Scenario> {
    scenario::slow_node_onset_phases()
}

/// Shard a phase sequence across `workers` thread-confined engines:
/// worker 0 gets the phases verbatim, worker `w` gets the same scenarios
/// reseeded with `mix(seed, w)` — same fleets, same workload laws, fresh
/// arrival draws.
pub fn lb_shards(phases: &[Scenario], workers: usize) -> Vec<Vec<Scenario>> {
    assert!(!phases.is_empty(), "need at least one phase");
    (0..workers)
        .map(|w| {
            phases
                .iter()
                .map(
                    |p| {
                        if w == 0 {
                            p.clone()
                        } else {
                            p.clone().with_seed(mix(p.seed, w as u64))
                        }
                    },
                )
                .collect()
        })
        .collect()
}

/// A cache replay source: dataset + trace index + length.
#[derive(Debug, Clone, Copy)]
pub struct CacheReplay {
    ds: DatasetSpec,
    index: usize,
    n: usize,
}

impl CacheReplay {
    /// Replay trace `index` of a dataset by name (`"cloudphysics"` or
    /// `"msr"`), truncated/extended to `n` requests.
    pub fn new(dataset: &str, index: usize, n: usize) -> Option<CacheReplay> {
        let ds = match dataset {
            "cloudphysics" => CLOUDPHYSICS,
            "msr" => MSR,
            _ => return None,
        };
        (index < ds.count).then_some(CacheReplay { ds, index, n })
    }

    /// The trace worker 0 replays (the batch-equivalence reference).
    pub fn trace(&self) -> Trace {
        self.ds.trace(self.index, self.n)
    }

    /// Per-worker replica traces. All workers replay the *same* trace:
    /// a trace is a recorded context, and the runtime's unit of scale is
    /// "how many replicas of this cache tier do we serve" — so each worker
    /// is one thread-confined replica of the tier under the same workload.
    pub fn shards(&self, workers: usize) -> Vec<Trace> {
        let t = self.trace();
        (0..workers).map(|_| t.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_short_and_full_name() {
        assert_eq!(lb_preset_names().len(), 7);
        for name in lb_preset_names() {
            let sc = lb_preset(&name).expect("full name resolves");
            assert_eq!(sc.name, name);
            let short = name.trim_start_matches("lb/");
            assert_eq!(lb_preset(short).expect("short name resolves").name, name);
        }
        assert!(lb_preset("nope").is_none());
    }

    #[test]
    fn shards_are_deterministic_and_worker0_is_verbatim() {
        let phases = lb_drift_phases();
        let a = lb_shards(&phases, 4);
        let b = lb_shards(&phases, 4);
        assert_eq!(a, b, "sharding must be deterministic");
        assert_eq!(a[0], phases, "worker 0 replays the spec exactly");
        // other workers: same fleet + workload, different seeds ⇒
        // different arrival streams
        for shard in &a[1..] {
            assert_eq!(shard[0].servers, phases[0].servers);
            assert_eq!(shard[0].workload, phases[0].workload);
            assert_ne!(shard[0].seed, phases[0].seed);
            assert_ne!(shard[0].requests(), phases[0].requests());
        }
        // distinct workers draw distinct seeds
        assert_ne!(a[1][0].seed, a[2][0].seed);
    }

    #[test]
    fn cache_replay_resolves_datasets() {
        let r = CacheReplay::new("cloudphysics", 10, 2_000).unwrap();
        let t = r.trace();
        assert_eq!(t.requests.len(), 2_000);
        assert!(t.name.contains("w10"));
        let shards = r.shards(3);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[1], t, "replicas replay the same recorded context");
        assert!(CacheReplay::new("msr", 0, 100).is_some());
        assert!(CacheReplay::new("msr", 99, 100).is_none(), "index out of range");
        assert!(CacheReplay::new("unknown", 0, 100).is_none());
    }
}
