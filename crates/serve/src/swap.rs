//! The lock-free hot-swap handle: an arc-swap-style publication cell with
//! epoch-based reclamation.
//!
//! A [`PolicyCell`] owns the live policy. Writer side: the background
//! adaptation thread [`publish`](PolicyCell::publish)es a replacement with
//! one atomic pointer swap — in-flight readers never observe a torn value,
//! because the swap replaces a *pointer*, never mutates the pointee.
//! Reader side: each serving worker [`register`](PolicyCell::register)s
//! once and then [`pin`](ReaderHandle::pin)s an epoch guard around every
//! access; the guard's borrow is valid for as long as it is held, no
//! matter how many publishes land meanwhile.
//!
//! Deposed policies are retired, not freed: a retired value is reclaimed
//! only once every registered reader has advanced past the epoch of its
//! retirement (or is quiescent). The scheme is the classic epoch-based
//! reclamation argument, kept deliberately small:
//!
//! * the cell holds a global epoch counter, bumped **after** each pointer
//!   swap;
//! * a reader pins by loading the global epoch into its own slot *before*
//!   loading the pointer (both `SeqCst`). If the slot holds epoch `e ≥ r`
//!   (the bump of some retirement `r`), the reader's pointer load is after
//!   the swap in the `SeqCst` total order — it cannot hold the value
//!   retired at `r`;
//! * the writer therefore frees a retirement `r` once
//!   `min(active reader epochs) ≥ r`; quiescent readers (slot =
//!   `u64::MAX`) hold nothing and never block reclamation.
//!
//! Every publish is recorded in the serve log ([`SwapRecord`]): generation
//! counter, provenance string, swap timestamp, and the retire backlog at
//! that instant — the audit trail the `exp_serve` drift timeline renders.

use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Metadata of one [`PolicyCell::publish`] — the serve log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapRecord {
    /// Generation installed by this publish (the initial value is
    /// generation 0; the first publish installs generation 1).
    pub generation: u64,
    /// Who/why: e.g. `"adaptation #1: resynthesized for lb/slow-node-onset"`.
    pub provenance: String,
    /// Microseconds since the cell was created.
    pub at_micros: u64,
    /// Retired-but-unreclaimed values immediately after this publish
    /// (readers still pinned in older epochs keep them alive).
    pub retire_backlog: usize,
}

/// A lock-free publication cell for `Send + Sync` values (compiled
/// policies, in this crate), with epoch-based reclamation of deposed
/// values. See the [module docs](self) for the safety argument.
pub struct PolicyCell<T: Send + Sync> {
    /// The live value. Only ever swapped whole; pointees are immutable.
    current: AtomicPtr<T>,
    /// Global epoch == number of publishes so far. Doubles as the cheap
    /// per-decision "did anything change?" generation counter.
    epoch: AtomicU64,
    /// Per-reader pinned epochs; `u64::MAX` = quiescent.
    readers: Box<[AtomicU64]>,
    registered: AtomicUsize,
    /// Retired values: `(retire_epoch, ptr)`, reclaimed on later publishes
    /// and on drop.
    retired: Mutex<Vec<(u64, *mut T)>>,
    log: Mutex<Vec<SwapRecord>>,
    start: Instant,
}

// The raw pointers all came from `Box<T>` with `T: Send + Sync`; the cell
// hands out only `&T` (via guards) and frees under the reclamation
// protocol, so sharing the cell across threads is sound.
unsafe impl<T: Send + Sync> Send for PolicyCell<T> {}
unsafe impl<T: Send + Sync> Sync for PolicyCell<T> {}

impl<T: Send + Sync> PolicyCell<T> {
    /// A cell serving `initial` at generation 0, with capacity for
    /// `max_readers` registered reader handles.
    pub fn new(initial: T, max_readers: usize) -> PolicyCell<T> {
        PolicyCell {
            current: AtomicPtr::new(Box::into_raw(Box::new(initial))),
            epoch: AtomicU64::new(0),
            readers: (0..max_readers).map(|_| AtomicU64::new(u64::MAX)).collect(),
            registered: AtomicUsize::new(0),
            retired: Mutex::new(Vec::new()),
            log: Mutex::new(Vec::new()),
            start: Instant::now(),
        }
    }

    /// Register one reader (typically: one serving worker thread). Panics
    /// once `max_readers` handles exist — reclamation scans exactly the
    /// registered slots, so handles must never be minted ad hoc.
    pub fn register(&self) -> ReaderHandle<'_, T> {
        let slot = self.registered.fetch_add(1, Ordering::SeqCst);
        assert!(slot < self.readers.len(), "reader capacity exhausted ({})", self.readers.len());
        ReaderHandle { cell: self, slot }
    }

    /// The current generation — an atomic load, cheap enough for a
    /// serving worker to check on **every** decision. Workers compare it
    /// against the generation they last adopted and re-pin only on change;
    /// a momentarily stale read just delays adoption by one decision.
    pub fn generation(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Publish a new value: one pointer swap (readers never see a torn
    /// value — they see the old pointee or the new one, both intact),
    /// retire the deposed value, reclaim whatever no reader can still
    /// hold, and append to the serve log. Returns the new generation.
    pub fn publish(&self, value: T, provenance: impl Into<String>) -> u64 {
        let provenance = provenance.into();
        let fresh = Box::into_raw(Box::new(value));
        let old = self.current.swap(fresh, Ordering::SeqCst);
        // Bump AFTER the swap: a reader pinned at `>= generation` is
        // guaranteed to load the fresh pointer (SeqCst total order).
        let generation = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        // Both mutexes guard plain Vecs that stay structurally valid if a
        // publisher panics mid-operation, so a poisoned lock is recovered
        // (`into_inner`) rather than cascading the panic into every other
        // serving thread that touches the cell.
        let backlog = {
            let mut retired = self.retired.lock().unwrap_or_else(|e| e.into_inner());
            retired.push((generation, old));
            self.reclaim_locked(&mut retired);
            retired.len()
        };
        policysmith_obs::emit(policysmith_obs::TraceKind::Publish {
            generation,
            provenance: provenance.clone(),
            retire_backlog: backlog,
        });
        self.log.lock().unwrap_or_else(|e| e.into_inner()).push(SwapRecord {
            generation,
            provenance,
            at_micros: self.start.elapsed().as_micros() as u64,
            retire_backlog: backlog,
        });
        generation
    }

    /// Free every retirement no reader can still hold. Caller holds the
    /// retire lock.
    fn reclaim_locked(&self, retired: &mut Vec<(u64, *mut T)>) {
        let n = self.registered.load(Ordering::SeqCst).min(self.readers.len());
        let min_active =
            self.readers[..n].iter().map(|r| r.load(Ordering::SeqCst)).min().unwrap_or(u64::MAX);
        retired.retain(|&(retire_epoch, ptr)| {
            if retire_epoch <= min_active {
                // Safety: every registered reader is either quiescent or
                // pinned at an epoch ≥ the retire epoch, i.e. it loaded
                // the pointer after this value was deposed.
                drop(unsafe { Box::from_raw(ptr) });
                false
            } else {
                true
            }
        });
    }

    /// Retired values not yet reclaimed (observability; bounded by the
    /// number of publishes that landed while some reader stayed pinned).
    pub fn retire_backlog(&self) -> usize {
        self.retired.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// The serve log: one [`SwapRecord`] per publish, in order.
    pub fn swap_log(&self) -> Vec<SwapRecord> {
        self.log.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl<T: Send + Sync> Drop for PolicyCell<T> {
    fn drop(&mut self) {
        // `&mut self`: no guards can be alive (they borrow the cell).
        drop(unsafe { Box::from_raw(self.current.load(Ordering::SeqCst)) });
        for (_, ptr) in self.retired.lock().unwrap_or_else(|e| e.into_inner()).drain(..) {
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}

/// One registered reader's identity. [`pin`](Self::pin) takes `&mut self`
/// so a handle can hold at most one guard at a time — re-pinning under a
/// live guard would overwrite the slot's epoch and could unpin the value
/// the guard still borrows.
pub struct ReaderHandle<'c, T: Send + Sync> {
    cell: &'c PolicyCell<T>,
    slot: usize,
}

impl<'c, T: Send + Sync> ReaderHandle<'c, T> {
    /// Pin the current epoch and borrow the live value. The borrow stays
    /// valid until the guard drops, regardless of concurrent publishes.
    /// Hold guards briefly (one decision, one clone): a pinned reader
    /// blocks reclamation of everything published since it pinned.
    pub fn pin(&mut self) -> Guard<'_, 'c, T> {
        let epoch = self.cell.epoch.load(Ordering::SeqCst);
        self.cell.readers[self.slot].store(epoch, Ordering::SeqCst);
        let ptr = self.cell.current.load(Ordering::SeqCst);
        // Safety: the slot now advertises `epoch`; the reclamation rule
        // frees only values retired at epochs ≤ every active slot, and the
        // pointer loaded *after* the slot store (SeqCst order) is at least
        // as new as any value retired at `epoch` — so it cannot be freed
        // while this guard lives.
        Guard { handle: self, value: unsafe { &*ptr } }
    }

    /// The cell this handle reads from.
    pub fn cell(&self) -> &'c PolicyCell<T> {
        self.cell
    }
}

/// An epoch-pinned borrow of the live value.
pub struct Guard<'h, 'c, T: Send + Sync> {
    handle: &'h ReaderHandle<'c, T>,
    value: &'h T,
}

impl<T: Send + Sync> Deref for Guard<'_, '_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value
    }
}

impl<T: Send + Sync> Drop for Guard<'_, '_, T> {
    fn drop(&mut self) {
        self.handle.cell.readers[self.handle.slot].store(u64::MAX, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_value_is_served_at_generation_zero() {
        let cell = PolicyCell::new(41u64, 2);
        assert_eq!(cell.generation(), 0);
        let mut h = cell.register();
        assert_eq!(*h.pin(), 41);
        assert!(cell.swap_log().is_empty());
    }

    #[test]
    fn publish_swaps_and_logs() {
        let cell = PolicyCell::new(1u64, 2);
        let mut h = cell.register();
        assert_eq!(cell.publish(2, "first"), 1);
        assert_eq!(cell.publish(3, "second"), 2);
        assert_eq!(*h.pin(), 3);
        let log = cell.swap_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].generation, 1);
        assert_eq!(log[0].provenance, "first");
        assert_eq!(log[1].generation, 2);
        assert!(log[0].at_micros <= log[1].at_micros);
        // no reader was pinned across the publishes: both deposed values
        // were reclaimed immediately
        assert_eq!(cell.retire_backlog(), 0);
    }

    #[test]
    fn pinned_reader_blocks_reclamation_until_unpin() {
        let cell = PolicyCell::new(10u64, 2);
        let mut h = cell.register();
        let guard = h.pin();
        assert_eq!(*guard, 10);
        cell.publish(20, "while pinned");
        // the deposed 10 is retired but must NOT be reclaimed: the guard
        // still borrows it
        assert_eq!(cell.retire_backlog(), 1);
        assert_eq!(*guard, 10, "guard keeps the old value, untorn");
        drop(guard);
        // next publish reclaims the backlog
        cell.publish(30, "after unpin");
        assert_eq!(cell.retire_backlog(), 0);
        assert_eq!(*h.pin(), 30);
    }

    #[test]
    fn reader_pinned_after_a_publish_sees_the_new_value() {
        let cell = PolicyCell::new(1u64, 1);
        let mut h = cell.register();
        for i in 2..50u64 {
            cell.publish(i, format!("gen {}", i - 1));
            assert_eq!(*h.pin(), i);
        }
    }

    #[test]
    #[should_panic(expected = "reader capacity exhausted")]
    fn register_beyond_capacity_panics() {
        let cell = PolicyCell::new(0u64, 1);
        let _a = cell.register();
        let _b = cell.register();
    }

    #[test]
    fn drop_reclaims_everything_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Counted {
            fn new() -> Counted {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Counted
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        {
            let cell = PolicyCell::new(Counted::new(), 3);
            let mut h = cell.register();
            {
                let _g = h.pin();
                for _ in 0..10 {
                    cell.publish(Counted::new(), "pinned");
                }
            }
            for _ in 0..10 {
                cell.publish(Counted::new(), "quiescent");
            }
            assert!(LIVE.load(Ordering::SeqCst) >= 1);
        }
        assert_eq!(LIVE.load(Ordering::SeqCst), 0, "every value dropped exactly once");
    }
}
