//! Guarded publication and the safe-fallback chain.
//!
//! The serving runtime's two safety gates live here:
//!
//! * [`PolicyGuard`] — the *admission* gate. Every adaptation candidate is
//!   re-scored in the drifted context and shadow-replayed against the
//!   incumbent **before** `PolicyCell::publish`: candidates that fail the
//!   study's Checker, fault at runtime during evaluation, or regress
//!   against the incumbent are rejected (and the rejection is logged with
//!   its reason instead of vanishing).
//! * [`resolve_recovery`] — the *demotion* chain. When a worker trips its
//!   host's fault latch mid-serve, the offending policy is poisoned and
//!   the runtime demotes through an explicit chain: deployed policy →
//!   best non-poisoned library entry (re-scored finite in the current
//!   context) → the domain's man-made baseline (JSQ for load balancing,
//!   LRU for caching, CoDel-style for AQM). The chain always terminates:
//!   the baseline needs no library and no score.

use policysmith_core::library::{HeuristicLibrary, LibraryEntry};
use policysmith_core::search::Study;

/// Why the guard refused to publish a candidate.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The candidate failed the study's Checker in the drifted context.
    CheckFailed(String),
    /// The candidate compiled but faulted during shadow evaluation (the
    /// study scored it `-∞`/NaN — the fault-latch contract).
    RuntimeFault,
    /// The candidate scored below the shadow-replayed incumbent by more
    /// than the guard's margin.
    Regression,
}

impl RejectReason {
    /// One-line human rendering for logs and reports.
    pub fn describe(&self) -> String {
        match self {
            RejectReason::CheckFailed(why) => format!("check failed: {why}"),
            RejectReason::RuntimeFault => "runtime fault during shadow evaluation".to_string(),
            RejectReason::Regression => "regression vs shadow-replayed incumbent".to_string(),
        }
    }
}

/// The guard's verdict on one candidate.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardVerdict {
    /// Publish: the candidate is sound and at least as good as the
    /// incumbent (within the margin).
    Admit { candidate_score: f64, incumbent_score: f64 },
    /// Do not publish.
    Reject { reason: RejectReason, candidate_score: f64, incumbent_score: f64 },
}

impl GuardVerdict {
    /// Is this an admission?
    pub fn admitted(&self) -> bool {
        matches!(self, GuardVerdict::Admit { .. })
    }
}

/// Re-scores every adaptation candidate in the drifted context and
/// shadow-replays the incumbent before publication (see module docs).
///
/// `margin` is the slack granted to the candidate in the regression
/// comparison: a candidate is admitted iff
/// `candidate_score + margin ≥ incumbent_score`. A margin of `0.0` means
/// "never publish anything measurably worse than what is live"; a small
/// positive margin tolerates evaluation noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyGuard {
    pub margin: f64,
}

impl Default for PolicyGuard {
    fn default() -> Self {
        PolicyGuard { margin: 0.0 }
    }
}

impl PolicyGuard {
    pub fn new(margin: f64) -> Self {
        PolicyGuard { margin }
    }

    /// Screen `candidate` against `incumbent` under `study` (both are
    /// source text; the study's Checker compiles them). The incumbent is
    /// shadow-replayed in the same drifted context so the comparison is
    /// apples-to-apples; an incumbent that itself fails to score (it is
    /// the very policy that drifted, or it faults) never blocks an
    /// admissible candidate — its score collapses to `-∞`.
    pub fn screen<S: Study>(&self, study: &S, candidate: &str, incumbent: &str) -> GuardVerdict {
        let candidate_score = match study.check(candidate) {
            Ok(artifact) => study.evaluate(&artifact),
            Err(why) => {
                return GuardVerdict::Reject {
                    reason: RejectReason::CheckFailed(why),
                    candidate_score: f64::NEG_INFINITY,
                    incumbent_score: f64::NAN,
                }
            }
        };
        let incumbent_score = shadow_score(study, incumbent);
        // every serving study scores a fault-latched run -∞; NaN is a
        // degenerate metric — both mean "this must never go live"
        if candidate_score == f64::NEG_INFINITY || candidate_score.is_nan() {
            return GuardVerdict::Reject {
                reason: RejectReason::RuntimeFault,
                candidate_score,
                incumbent_score,
            };
        }
        if candidate_score + self.margin < incumbent_score {
            return GuardVerdict::Reject {
                reason: RejectReason::Regression,
                candidate_score,
                incumbent_score,
            };
        }
        GuardVerdict::Admit { candidate_score, incumbent_score }
    }
}

/// Shadow-replay a source under the study; anything that fails to check
/// or score scores `-∞` (it cannot win a comparison).
fn shadow_score<S: Study>(study: &S, source: &str) -> f64 {
    match study.check(source) {
        Ok(artifact) => {
            let s = study.evaluate(&artifact);
            if s.is_nan() {
                f64::NEG_INFINITY
            } else {
                s
            }
        }
        Err(_) => f64::NEG_INFINITY,
    }
}

/// Where a quarantined worker's traffic goes next (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Recovery {
    /// The best non-poisoned library entry, re-scored finite in the
    /// current context.
    Library { entry: LibraryEntry, score: f64 },
    /// Nothing stored survives scrutiny: demote to the domain's man-made
    /// baseline. The chain's unconditional terminal link.
    Baseline,
}

/// Resolve the safe-fallback chain after the deployed policy was
/// quarantined: the best non-poisoned library entry that re-scores to a
/// real (finite, non-NaN) number in the current context, else the
/// man-made baseline. Poisoned sources are invisible (the library skips
/// them in `best_for`), non-finite scorers are refused here — so the
/// function can never select a policy known to fault, and it always
/// terminates with a deployable answer.
pub fn resolve_recovery<S: Study>(library: &HeuristicLibrary, study: &S) -> Recovery {
    let best = library.best_for(|e| match study.check(&e.source) {
        Ok(artifact) => study.evaluate(&artifact),
        Err(_) => f64::NEG_INFINITY,
    });
    match best {
        Some((entry, score)) if score.is_finite() => {
            Recovery::Library { entry: entry.clone(), score }
        }
        _ => Recovery::Baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policysmith_core::library::LibraryEntry;
    use policysmith_dsl::Mode;

    /// Scores by source length; "bad" fails check; "fault" scores -∞;
    /// "nan" scores NaN.
    struct ToyStudy;
    impl Study for ToyStudy {
        type Artifact = String;
        fn mode(&self) -> Mode {
            Mode::Cache
        }
        fn check(&self, source: &str) -> Result<String, String> {
            if source.contains("bad") {
                Err("does not compile".into())
            } else {
                Ok(source.to_string())
            }
        }
        fn evaluate(&self, artifact: &String) -> f64 {
            if artifact.contains("fault") {
                f64::NEG_INFINITY
            } else if artifact.contains("nan") {
                f64::NAN
            } else {
                artifact.len() as f64
            }
        }
    }

    fn entry(source: &str) -> LibraryEntry {
        LibraryEntry { context: "t".into(), source: source.into(), score: 0.0 }
    }

    #[test]
    fn guard_admits_an_improvement() {
        let v = PolicyGuard::default().screen(&ToyStudy, "longer-candidate", "short");
        assert!(v.admitted());
        match v {
            GuardVerdict::Admit { candidate_score, incumbent_score } => {
                assert_eq!(candidate_score, 16.0);
                assert_eq!(incumbent_score, 5.0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn guard_rejects_a_regression_with_reason() {
        let v = PolicyGuard::default().screen(&ToyStudy, "short", "longer-incumbent");
        match v {
            GuardVerdict::Reject { reason: RejectReason::Regression, .. } => {}
            other => panic!("expected a regression rejection, got {other:?}"),
        }
    }

    #[test]
    fn guard_margin_tolerates_small_losses() {
        let g = PolicyGuard::new(2.0);
        assert!(g.screen(&ToyStudy, "1234", "12345").admitted(), "1 below, margin 2");
        assert!(!g.screen(&ToyStudy, "1234", "1234567").admitted(), "3 below, margin 2");
    }

    #[test]
    fn guard_rejects_check_failures_and_faults() {
        match PolicyGuard::default().screen(&ToyStudy, "bad", "x") {
            GuardVerdict::Reject { reason: RejectReason::CheckFailed(why), .. } => {
                assert!(why.contains("compile"))
            }
            other => panic!("{other:?}"),
        }
        for cand in ["fault", "nan"] {
            match PolicyGuard::default().screen(&ToyStudy, cand, "x") {
                GuardVerdict::Reject { reason: RejectReason::RuntimeFault, .. } => {}
                other => panic!("{cand}: {other:?}"),
            }
        }
    }

    #[test]
    fn guard_ignores_an_unscorable_incumbent() {
        // the incumbent faults in the drifted context (that may be *why*
        // we are adapting) — any real-scoring candidate must pass
        let v = PolicyGuard::default().screen(&ToyStudy, "x", "fault");
        assert!(v.admitted());
    }

    #[test]
    fn recovery_prefers_the_best_clean_library_entry() {
        let mut lib = HeuristicLibrary::new();
        lib.add(entry("aaa"));
        lib.add(entry("aaaaaa"));
        match resolve_recovery(&lib, &ToyStudy) {
            Recovery::Library { entry, score } => {
                assert_eq!(entry.source, "aaaaaa");
                assert_eq!(score, 6.0);
            }
            Recovery::Baseline => panic!("clean entries exist"),
        }
    }

    #[test]
    fn recovery_skips_poisoned_and_faulting_entries() {
        let mut lib = HeuristicLibrary::new();
        lib.add(entry("aaaaaaaaaa"));
        lib.add(entry("fault-prone"));
        lib.add(entry("bad-here"));
        lib.poison("aaaaaaaaaa");
        // best clean entry faults (-∞), next fails check (-∞), the only
        // good one is poisoned: the chain must land on the baseline
        match resolve_recovery(&lib, &ToyStudy) {
            Recovery::Baseline => {}
            Recovery::Library { entry, .. } => {
                panic!("must not deploy {} after quarantine", entry.source)
            }
        }
    }

    #[test]
    fn recovery_on_an_empty_library_is_the_baseline() {
        assert_eq!(resolve_recovery(&HeuristicLibrary::new(), &ToyStudy), Recovery::Baseline);
    }
}
