//! Fault-tolerance integration tests: the guard, the safe-fallback chain,
//! the retry/watchdog around background re-synthesis, and the chaos
//! layer's transparency contract — all end-to-end through `serve_lb` /
//! `serve_cache`, not unit mocks.

use policysmith_core::library::{HeuristicLibrary, LibraryEntry, RetryPolicy};
use policysmith_core::search::{SearchConfig, Study};
use policysmith_core::studies::lb::LbStudy;
use policysmith_dsl::Mode;
use policysmith_gen::{FlakyConfig, FlakyGen, GenConfig, Generator, MockLlm, Prompt, TokenLedger};
use policysmith_kbpf::CompiledPolicy;
use policysmith_lbsim::{scenario, Scenario};
use policysmith_serve::chaos::{baseline_source, faulting_source};
use policysmith_serve::guard::resolve_recovery;
use policysmith_serve::runtime::Resynth;
use policysmith_serve::{
    loadgen, serve_cache, serve_lb, ChaosSpec, ExternalPublish, Recovery, ServeConfig, ServeReport,
    TelemetryChaos,
};
use proptest::prelude::*;

fn compiled(src: &str, mode: Mode) -> CompiledPolicy {
    CompiledPolicy::compile(&policysmith_dsl::parse(src).unwrap(), mode).unwrap()
}

fn no_resynth() -> Option<Resynth<LbStudy>> {
    None
}

/// Drift phases with the degraded regime extended, so serving is still in
/// flight while background work (searches, retries, recoveries) runs.
fn long_drift_phases() -> Vec<Scenario> {
    let phases = loadgen::lb_drift_phases();
    let mut spec = phases.clone();
    for (i, extra) in std::iter::repeat_n(&phases[1], 6).enumerate() {
        spec.push(extra.clone().with_seed(extra.seed ^ (0xFA57 + i as u64)));
    }
    spec
}

fn offered(shards: &[Vec<Scenario>]) -> u64 {
    shards.iter().flatten().map(|p| p.workload.n as u64).sum()
}

/// Fault-tolerance invariant shared by every run in this file: no worker
/// ever drops or skips a decision, whatever the injected misbehavior.
fn assert_zero_dropped(report: &ServeReport, offered: u64) {
    assert_eq!(report.total_decisions(), offered, "dropped decisions");
    assert!(report.failures.is_empty(), "thread failures: {:?}", report.failures);
}

/// A generator that only ever proposes one (legal, mediocre) policy —
/// what a confidently-wrong LLM looks like to the serving runtime.
struct FixedGen {
    source: &'static str,
    ledger: TokenLedger,
}

impl Generator for FixedGen {
    fn generate(&mut self, _prompt: &Prompt, n: usize) -> Vec<String> {
        vec![self.source.to_string(); n]
    }
    fn repair(&mut self, _prompt: &Prompt, _source: &str, _stderr: &str) -> Option<String> {
        None
    }
    fn ledger(&self) -> &TokenLedger {
        &self.ledger
    }
}

#[test]
fn guard_rejects_regressing_candidates_and_logs_the_reason() {
    let spec = long_drift_phases();
    let shards = loadgen::lb_shards(&spec, 2);
    let cfg = ServeConfig { workers: 2, window: 500, ..ServeConfig::default() };
    let onset = scenario::slow_node_onset();
    // "req.size" scores every server identically → always picks server 0:
    // legal, compiles, and strictly worse than the JSQ incumbent. The
    // guard must keep it off the serving path — and say why.
    let resynth = Resynth {
        context: onset.name.clone(),
        study: LbStudy::new(&onset),
        generator: Box::new(FixedGen { source: "req.size", ledger: TokenLedger::default() }),
        search: SearchConfig { rounds: 1, candidates_per_round: 4, ..SearchConfig::quick() },
        library: HeuristicLibrary::new(),
    };
    let report = serve_lb(&shards, compiled("server.queue_len", Mode::Lb), &cfg, Some(resynth));

    assert_zero_dropped(&report, offered(&shards));
    assert!(report.adaptations.is_empty(), "a regression went live: {:?}", report.adaptations);
    assert!(report.swaps.is_empty(), "nothing should have been published");
    assert!(!report.rejections.is_empty(), "the drift trigger must surface as a rejection");
    let r = &report.rejections[0];
    assert_eq!(r.source, "req.size");
    assert!(r.reason.contains("regression"), "reason: {}", r.reason);
    assert!(r.candidate_score < r.incumbent_score);
}

#[test]
fn externally_published_faulting_policy_is_quarantined_and_recovered_lb() {
    let spec = long_drift_phases();
    let shards = loadgen::lb_shards(&spec, 2);
    let bad = faulting_source(Mode::Lb);
    let cfg = ServeConfig {
        workers: 2,
        window: 200,
        chaos: Some(ChaosSpec {
            seed: 7,
            external_publish: Some(ExternalPublish { after_windows: 2, source: bad.into() }),
            ..ChaosSpec::default()
        }),
        ..ServeConfig::default()
    };
    let report = serve_lb(&shards, compiled("server.queue_len", Mode::Lb), &cfg, no_resynth());

    assert_zero_dropped(&report, offered(&shards));
    assert_eq!(report.chaos.external_publishes, 1);
    assert!(!report.quarantines.is_empty(), "the faulting policy must be caught mid-serve");
    let q = &report.quarantines[0];
    assert_eq!(q.source, bad);
    assert!(q.fault.contains("div"), "latched fault: {}", q.fault);
    // workers demoted locally (the zero-drop leg of the chain)
    assert!(report.workers.iter().any(|w| w.quarantines > 0));
    // the offender is poisoned; the recovery publish is the baseline
    // (empty library), with provenance naming the quarantine
    assert!(report.controller.library().is_poisoned(bad));
    let recovery = report
        .swaps
        .iter()
        .find(|s| s.provenance.contains("quarantine recovery"))
        .expect("a recovery publish must land");
    assert!(recovery.provenance.contains("baseline"));
    // no poisoned policy is ever re-deployed: after the quarantine, the
    // faulting source never appears in the publish audit trail again
    assert!(
        !report.published.iter().any(|(generation, src)| src == bad && *generation > q.generation),
        "poisoned policy re-deployed: {:?}",
        report.published
    );
}

#[test]
fn externally_published_faulting_policy_is_quarantined_and_recovered_cache() {
    let Some(replay) = loadgen::CacheReplay::new("cloudphysics", 10, 20_000) else {
        eprintln!("cloudphysics trace unavailable; skipping");
        return;
    };
    let trace = replay.trace();
    let capacity = (policysmith_traces::footprint_bytes(&trace) / 10).max(1);
    let bad = faulting_source(Mode::Cache);
    let cfg = ServeConfig {
        workers: 2,
        window: 256,
        chaos: Some(ChaosSpec {
            seed: 11,
            external_publish: Some(ExternalPublish { after_windows: 2, source: bad.into() }),
            ..ChaosSpec::default()
        }),
        ..ServeConfig::default()
    };
    let shards = replay.shards(2);
    let offered: u64 = shards.iter().map(|t| t.requests.len() as u64).sum();
    let report = serve_cache(
        &shards,
        capacity,
        compiled("obj.last_access", Mode::Cache),
        &cfg,
        no_resynth(),
    );

    assert_zero_dropped(&report, offered);
    assert!(!report.quarantines.is_empty());
    assert!(report.controller.library().is_poisoned(bad));
    assert!(report.workers.iter().any(|w| w.quarantines > 0));
    assert!(report.swaps.iter().any(|s| s.provenance.contains("quarantine recovery")));
}

#[test]
fn telemetry_chaos_never_drops_decisions_and_generations_stay_monotonic() {
    let spec = long_drift_phases();
    let shards = loadgen::lb_shards(&spec, 2);
    let cfg = ServeConfig {
        workers: 2,
        window: 200,
        chaos: Some(ChaosSpec {
            seed: 3,
            telemetry: TelemetryChaos { p_drop: 0.25, p_duplicate: 0.25, p_reorder: 0.25 },
            ..ChaosSpec::default()
        }),
        ..ServeConfig::default()
    };
    let onset = scenario::slow_node_onset();
    let resynth = Resynth {
        context: onset.name.clone(),
        study: LbStudy::new(&onset),
        generator: Box::new(MockLlm::new(GenConfig::lb_defaults(77))),
        search: SearchConfig { rounds: 2, candidates_per_round: 6, ..SearchConfig::quick() }
            .pipelined(),
        library: HeuristicLibrary::new(),
    };
    let report = serve_lb(&shards, compiled("server.queue_len", Mode::Lb), &cfg, Some(resynth));

    assert_zero_dropped(&report, offered(&shards));
    let st = report.chaos;
    assert!(
        st.windows_dropped + st.windows_duplicated + st.windows_reordered > 0,
        "the chaos layer must actually have injected something: {st:?}"
    );
    // a worker only ever moves forward through generations, however its
    // telemetry was mangled in transit
    for w in 0..2 {
        let mut windows: Vec<_> = report.windows.iter().filter(|s| s.worker == w).collect();
        windows.sort_by_key(|s| s.seq);
        assert!(
            windows.windows(2).all(|p| p[0].generation <= p[1].generation),
            "worker {w} went backwards in generations"
        );
    }
}

#[test]
fn no_fault_chaos_spec_is_decision_identical_to_plain_serve() {
    let sc = scenario::two_tier_fleet();
    let shards = loadgen::lb_shards(std::slice::from_ref(&sc), 1);
    let src = "server.inflight * 1000 / server.speed + server.queue_len * 50";
    let run = |chaos: Option<ChaosSpec>| {
        let cfg =
            ServeConfig { workers: 1, record_decisions: true, chaos, ..ServeConfig::default() };
        serve_lb(&shards, compiled(src, Mode::Lb), &cfg, no_resynth())
    };
    let plain = run(None);
    let chaotic = run(Some(ChaosSpec { seed: 42, ..ChaosSpec::default() }));
    assert_eq!(
        plain.workers[0].decisions_log, chaotic.workers[0].decisions_log,
        "an all-zero chaos spec must be exactly the plain serve path"
    );
    assert_eq!(plain.workers[0].lb_metrics, chaotic.workers[0].lb_metrics);
    assert_eq!(chaotic.chaos, policysmith_serve::ChaosStats::default());
}

#[test]
fn generator_outage_falls_back_to_the_best_stored_entry() {
    let spec = long_drift_phases();
    let shards = loadgen::lb_shards(&spec, 2);
    let stored = "server.inflight * 1000 / server.speed + server.queue_len * 50";
    let mut library = HeuristicLibrary::new();
    library.add(LibraryEntry { context: "lb/two-tier".into(), source: stored.into(), score: 0.0 });
    let cfg = ServeConfig {
        workers: 2,
        window: 500,
        // the reuse bar is unreachable, so every trigger runs the (dead)
        // generator; only the watchdog's abandon path can answer drift
        min_reuse_score: f64::INFINITY,
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 2,
            deadline_ms: 60_000,
        },
        ..ServeConfig::default()
    };
    let onset = scenario::slow_node_onset();
    let resynth = Resynth {
        context: onset.name.clone(),
        study: LbStudy::new(&onset),
        generator: Box::new(FlakyGen::new(
            MockLlm::new(GenConfig::lb_defaults(77)),
            FlakyConfig::outage(9),
        )),
        search: SearchConfig { rounds: 1, candidates_per_round: 4, ..SearchConfig::quick() },
        library,
    };
    let report = serve_lb(&shards, compiled("server.queue_len", Mode::Lb), &cfg, Some(resynth));

    assert_zero_dropped(&report, offered(&shards));
    // the give-up is logged with its reason...
    let gave_up = report.rejections.iter().find(|r| r.reason.contains("gave up"));
    assert!(gave_up.is_some(), "rejections: {:?}", report.rejections);
    assert!(gave_up.unwrap().reason.contains("unavailable"), "{}", gave_up.unwrap().reason);
    // ...and the stored entry went live instead of the search winner
    assert!(!report.adaptations.is_empty(), "the fallback must still answer the drift");
    let a = &report.adaptations[0];
    assert!(!a.resynthesized);
    assert_eq!(a.source, stored);
    assert!(a.retries >= 3, "all attempts must have been burned, got {}", a.retries);
}

#[test]
fn flaky_generator_retries_through_transient_errors_and_still_adapts() {
    let spec = long_drift_phases();
    let shards = loadgen::lb_shards(&spec, 2);
    let cfg = ServeConfig {
        workers: 2,
        window: 500,
        retry: RetryPolicy {
            max_attempts: 8,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            deadline_ms: 60_000,
        },
        ..ServeConfig::default()
    };
    let onset = scenario::slow_node_onset();
    let resynth = Resynth {
        context: onset.name.clone(),
        study: LbStudy::new(&onset),
        generator: Box::new(FlakyGen::new(
            MockLlm::new(GenConfig::lb_defaults(77)),
            FlakyConfig { p_error: 0.6, p_garbage: 0.0, p_stall: 0.0, ..FlakyConfig::flaky(5) },
        )),
        search: SearchConfig { rounds: 2, candidates_per_round: 6, ..SearchConfig::quick() }
            .pipelined(),
        library: HeuristicLibrary::new(),
    };
    let report = serve_lb(&shards, compiled("server.queue_len", Mode::Lb), &cfg, Some(resynth));

    assert_zero_dropped(&report, offered(&shards));
    assert!(
        !report.adaptations.is_empty(),
        "retries must carry the search through a 60%-error generator (rejections: {:?})",
        report.rejections
    );
}

const CHAIN_SOURCES: &[&str] = &[
    "server.queue_len",
    "server.work_left + req.size * 1000 / server.speed",
    "server.inflight * 1000 / server.speed + server.queue_len * 50",
    "1000 / server.queue_len", // faults at runtime → scores -∞
    "not a ( policy",          // fails the Checker
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The safe-fallback chain always terminates at a deployable policy:
    /// whatever mix of good, faulting, unparseable, and poisoned entries
    /// the library holds, `resolve_recovery` yields either a clean finite-
    /// scoring non-poisoned entry or the man-made baseline — never a
    /// poisoned or faulting policy, and never nothing.
    #[test]
    fn fallback_chain_always_terminates_at_a_safe_policy(
        entries in proptest::collection::vec((0usize..CHAIN_SOURCES.len(), any::<bool>()), 0..10),
    ) {
        let study = LbStudy::new(&scenario::slow_node_onset());
        let mut lib = HeuristicLibrary::new();
        for (ix, poisoned) in &entries {
            let source = CHAIN_SOURCES[*ix];
            lib.add(LibraryEntry { context: "p".into(), source: source.into(), score: 1.0 });
            if *poisoned {
                lib.poison(source);
            }
        }
        match resolve_recovery(&lib, &study) {
            Recovery::Library { entry, score } => {
                prop_assert!(score.is_finite());
                prop_assert!(!lib.is_poisoned(&entry.source));
                prop_assert!(study.check(&entry.source).is_ok());
                prop_assert!(entry.source != CHAIN_SOURCES[3] && entry.source != CHAIN_SOURCES[4]);
            }
            Recovery::Baseline => {
                // the terminal link itself must always be deployable
                let b = baseline_source(Mode::Lb);
                prop_assert!(study.check(b).is_ok());
            }
        }
    }
}
