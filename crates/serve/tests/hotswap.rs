//! Concurrency stress tests for the epoch-reclamation hot-swap cell: many
//! readers hammering `pin` while a writer publishes as fast as it can.
//! These cannot *prove* the memory-ordering argument (that lives in the
//! module docs), but they make the two failure modes a broken cell would
//! exhibit — torn reads and use-after-free — extremely loud under ASAN,
//! MIRI, or plain debug runs.

use policysmith_serve::PolicyCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A value whose two halves must always agree; any torn or stale-freed
/// read breaks the invariant check.
#[derive(Clone)]
struct Canary {
    a: u64,
    b: u64,
    /// Padding that a use-after-free would likely scribble over.
    blob: Vec<u64>,
}

impl Canary {
    fn new(x: u64) -> Canary {
        Canary { a: x, b: !x, blob: vec![x; 32] }
    }
    fn check(&self) {
        assert_eq!(self.b, !self.a, "torn canary");
        assert!(self.blob.iter().all(|&v| v == self.a), "scribbled canary");
    }
}

#[test]
fn readers_never_observe_torn_or_freed_values() {
    const READERS: usize = 4;
    const PUBLISHES: u64 = 20_000;

    let cell = PolicyCell::new(Canary::new(0), READERS);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let mut handle = cell.register();
            let stop = &stop;
            scope.spawn(move || {
                let mut last_gen = 0u64;
                loop {
                    // stop is checked AFTER the read, so every reader
                    // pins at least once even if the writer finishes
                    // before this thread is first scheduled (1-core boxes)
                    let done = stop.load(Ordering::Relaxed);
                    let gen_before = handle.cell().generation();
                    let guard = handle.pin();
                    guard.check();
                    drop(guard);
                    // generations move forward only
                    assert!(gen_before >= last_gen, "generation went backwards");
                    last_gen = gen_before;
                    if done {
                        break;
                    }
                }
            });
        }
        for i in 1..=PUBLISHES {
            cell.publish(Canary::new(i), "stress");
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(cell.generation(), PUBLISHES);
    assert_eq!(cell.swap_log().len() as u64, PUBLISHES);
    // all readers quiescent: the final reclaim (triggered by one more
    // publish) must clear the whole backlog
    cell.publish(Canary::new(PUBLISHES + 1), "final");
    assert_eq!(cell.retire_backlog(), 0);
}

#[test]
fn every_published_value_is_dropped_exactly_once() {
    static LIVE: AtomicUsize = AtomicUsize::new(0);
    static DROPS: AtomicUsize = AtomicUsize::new(0);

    struct Tracked(#[allow(dead_code)] u64);
    impl Tracked {
        fn new(x: u64) -> Tracked {
            LIVE.fetch_add(1, Ordering::SeqCst);
            Tracked(x)
        }
    }
    impl Drop for Tracked {
        fn drop(&mut self) {
            LIVE.fetch_sub(1, Ordering::SeqCst);
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }
    // Tracked must be Sync for the cell; it is (no interior mutability).
    const PUBLISHES: u64 = 5_000;
    {
        let cell = PolicyCell::new(Tracked::new(0), 3);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let mut handle = cell.register();
                let stop = &stop;
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let _g = handle.pin();
                    }
                });
            }
            for i in 1..=PUBLISHES {
                cell.publish(Tracked::new(i), "drop-stress");
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
    assert_eq!(LIVE.load(Ordering::SeqCst), 0, "every value reclaimed");
    assert_eq!(DROPS.load(Ordering::SeqCst) as u64, PUBLISHES + 1, "no double frees");
}
