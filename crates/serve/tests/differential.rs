//! The serving runtime's no-drift contract, proven differentially: a
//! single-worker serve run with no publishes is **decision-for-decision
//! identical** to the equivalent batch simulator run — same pick sequence
//! (lb) / same hit-miss sequence (cache), same final metrics. Plus the
//! end-to-end drift story: a mid-run fleet degradation is detected from
//! streamed telemetry, answered by a background re-synthesis, and swapped
//! in with zero dropped decisions.

use policysmith_core::search::SearchConfig;
use policysmith_core::studies::lb::LbStudy;
use policysmith_dsl::{parse, Mode};
use policysmith_gen::{GenConfig, MockLlm};
use policysmith_kbpf::CompiledPolicy;
use policysmith_lbsim::{scenario, sim, DispatchView, Dispatcher, ExprDispatcher, Scenario};
use policysmith_serve::runtime::Resynth;
use policysmith_serve::{loadgen, serve_cache, serve_lb, ServeConfig};
use proptest::prelude::*;

const POLICIES: &[&str] = &[
    "server.queue_len",
    "server.inflight * 1000 / server.speed + server.queue_len * 50",
    "server.work_left + req.size * 1000 / server.speed",
];

fn compiled(src: &str, mode: Mode) -> CompiledPolicy {
    CompiledPolicy::compile(&parse(src).unwrap(), mode).unwrap()
}

/// Pick-recording wrapper for the batch reference runs.
struct Rec {
    inner: ExprDispatcher,
    picks: Vec<u32>,
}

impl Rec {
    fn new(src: &str) -> Rec {
        Rec { inner: ExprDispatcher::new("batch", compiled(src, Mode::Lb)), picks: Vec::new() }
    }
}

impl Dispatcher for Rec {
    fn name(&self) -> &str {
        "rec"
    }
    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        let p = self.inner.pick(view);
        self.picks.push(p as u32);
        p
    }
}

/// Batch reference: run the scenario through `sim::run`, recording picks.
fn batch_lb(sc: &Scenario, src: &str) -> (Vec<u32>, policysmith_lbsim::LbMetrics) {
    let mut rec = Rec::new(src);
    let m = sim::run(&sc.servers, &sc.requests(), &mut rec);
    (rec.picks, m)
}

fn no_resynth() -> Option<Resynth<LbStudy>> {
    None
}

#[test]
fn lb_serve_is_decision_identical_to_the_batch_simulator() {
    let cfg = ServeConfig { workers: 1, record_decisions: true, ..ServeConfig::default() };
    for sc in [scenario::uniform_fleet(), scenario::two_tier_fleet(), scenario::flash_crowd()] {
        for src in POLICIES {
            let shards = loadgen::lb_shards(std::slice::from_ref(&sc), 1);
            let report = serve_lb(&shards, compiled(src, Mode::Lb), &cfg, no_resynth());
            let (picks, batch) = batch_lb(&sc, src);
            let w = &report.workers[0];
            assert_eq!(
                w.decisions_log.as_ref().unwrap(),
                &picks,
                "pick sequences diverged on {} for `{src}`",
                sc.name
            );
            assert_eq!(
                w.lb_metrics.as_ref().unwrap(),
                &batch,
                "metrics diverged on {} for `{src}`",
                sc.name
            );
            assert_eq!(w.decisions, batch.offered, "every offered request was decided");
            assert!(report.swaps.is_empty() && report.adaptations.is_empty());
        }
    }
}

/// Multi-phase streams (the drift-injection shape) must also be
/// decision-identical: the serve worker literally drives
/// `run_phased_windowed`, so this pins the wrapper (adoption check,
/// latency sampling, recording) against the raw phased driver.
#[test]
fn multi_phase_serve_matches_run_phased() {
    use policysmith_lbsim::run_phased;
    let phases = loadgen::lb_drift_phases();
    let cfg = ServeConfig { workers: 1, record_decisions: true, ..ServeConfig::default() };
    for src in POLICIES {
        let shards = loadgen::lb_shards(&phases, 1);
        let report = serve_lb(&shards, compiled(src, Mode::Lb), &cfg, no_resynth());

        let mut rec = Rec::new(src);
        let batch = run_phased(&phases, &mut rec);

        let w = &report.workers[0];
        assert_eq!(w.decisions_log.as_ref().unwrap(), &rec.picks, "picks diverged for `{src}`");
        assert_eq!(w.lb_metrics.as_ref().unwrap(), &batch.combined, "metrics diverged");
        // window telemetry attributes every arrival to the phase it
        // belongs to, matching the phased driver's per-phase counts
        for (i, phase) in batch.per_phase.iter().enumerate() {
            let windowed: u64 =
                report.windows.iter().filter(|s| s.phase == i).map(|s| s.decisions).sum();
            assert_eq!(windowed, phase.offered, "phase {i} attribution for `{src}`");
        }
    }
}

#[test]
fn multi_worker_shards_each_match_their_own_batch_run() {
    let cfg = ServeConfig { workers: 3, record_decisions: true, ..ServeConfig::default() };
    let sc = scenario::two_tier_fleet();
    let shards = loadgen::lb_shards(std::slice::from_ref(&sc), 3);
    let src = POLICIES[1];
    let report = serve_lb(&shards, compiled(src, Mode::Lb), &cfg, no_resynth());
    assert_eq!(report.workers.len(), 3);
    for w in &report.workers {
        let (picks, batch) = batch_lb(&shards[w.worker][0], src);
        assert_eq!(w.decisions_log.as_ref().unwrap(), &picks, "worker {}", w.worker);
        assert_eq!(w.lb_metrics.as_ref().unwrap(), &batch, "worker {}", w.worker);
    }
    // telemetry covered every window of every worker
    let telemetry_decisions: u64 = report.windows.iter().map(|s| s.decisions).sum();
    assert_eq!(telemetry_decisions, report.total_decisions());
}

/// The sharded metrics registry is an *accounting view* over the same
/// run: its merged counters must agree with the report's ground truth,
/// and the funnel transport must produce the identical decision stream.
#[test]
fn sharded_metrics_account_for_every_decision_and_window() {
    let sc = scenario::two_tier_fleet();
    let src = POLICIES[1];
    let mk = |funnel: bool| {
        let cfg =
            ServeConfig { workers: 3, record_decisions: true, funnel, ..ServeConfig::default() };
        let shards = loadgen::lb_shards(std::slice::from_ref(&sc), 3);
        serve_lb(&shards, compiled(src, Mode::Lb), &cfg, no_resynth())
    };
    let sharded = mk(false);
    let funnel = mk(true);

    // transport never influences decisions
    for (a, b) in sharded.workers.iter().zip(&funnel.workers) {
        assert_eq!(a.decisions_log, b.decisions_log, "worker {}", a.worker);
        assert_eq!(a.lb_metrics, b.lb_metrics, "worker {}", a.worker);
    }

    // merged registry counters agree with the report's ground truth
    let m = &sharded.metrics;
    assert_eq!(m.counter("serve.decisions"), sharded.total_decisions());
    assert_eq!(m.counter("serve.windows"), sharded.windows.len() as u64);
    assert_eq!(m.counter("serve.quarantines"), 0);
    let hist = m.histogram("serve.decision_latency_ns").expect("latency histogram registered");
    assert_eq!(hist.count(), sharded.latency().count());
    assert!(hist.count() > 0, "latency sampling recorded through the registry");

    // instrument = false empties the hot-path metrics but not the windows
    let cfg = ServeConfig { workers: 2, instrument: false, ..ServeConfig::default() };
    let shards = loadgen::lb_shards(std::slice::from_ref(&sc), 2);
    let dark = serve_lb(&shards, compiled(src, Mode::Lb), &cfg, no_resynth());
    assert_eq!(dark.metrics.counter("serve.decisions"), 0);
    assert_eq!(dark.latency().count(), 0);
    let telemetry: u64 = dark.windows.iter().map(|s| s.decisions).sum();
    assert_eq!(telemetry, dark.total_decisions(), "windows flow regardless of the gate");
}

#[test]
fn cache_serve_is_decision_identical_to_the_batch_simulator() {
    use policysmith_cachesim::{Cache, PriorityPolicy};
    let replay = loadgen::CacheReplay::new("cloudphysics", 10, 20_000).unwrap();
    let trace = replay.trace();
    let capacity = (policysmith_traces::footprint_bytes(&trace) / 10).max(1);
    for src in ["obj.last_access", "obj.count * 20 - obj.age / 300 - obj.size / 500"] {
        let cfg = ServeConfig { workers: 1, record_decisions: true, ..ServeConfig::default() };
        let report = serve_cache(
            &replay.shards(1),
            capacity,
            compiled(src, Mode::Cache),
            &cfg,
            no_resynth(),
        );

        // batch reference: same trace, same host, recording hit/miss
        let host = PriorityPolicy::new("batch", compiled(src, Mode::Cache)).track_everything();
        let mut cache = Cache::new(capacity, host);
        let hits: Vec<u32> = trace.requests.iter().map(|r| cache.request(r) as u32).collect();

        let w = &report.workers[0];
        assert_eq!(w.decisions_log.as_ref().unwrap(), &hits, "hit/miss diverged for `{src}`");
        assert_eq!(w.cache_result.as_ref().unwrap(), &cache.result(), "counters diverged");
        assert_eq!(w.decisions, trace.requests.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized no-drift equivalence: any preset × policy × telemetry
    /// window cadence × transport (sharded SPSC rings or the legacy mpsc
    /// funnel) × instrumentation gate serves exactly the batch decisions —
    /// how telemetry is cut, carried, and counted must never influence
    /// decisions.
    #[test]
    fn serve_equals_batch_for_any_preset_policy_and_window(
        preset_ix in 0usize..7,
        policy_ix in 0usize..3,
        window in proptest::sample::select(vec![64usize, 500, 4096]),
        funnel in any::<bool>(),
        instrument in any::<bool>(),
    ) {
        let sc = scenario::all_presets().swap_remove(preset_ix);
        let src = POLICIES[policy_ix];
        let cfg = ServeConfig {
            workers: 1,
            window,
            record_decisions: true,
            funnel,
            instrument,
            ..ServeConfig::default()
        };
        let shards = loadgen::lb_shards(std::slice::from_ref(&sc), 1);
        let report = serve_lb(&shards, compiled(src, Mode::Lb), &cfg, no_resynth());
        let (picks, batch) = batch_lb(&sc, src);
        prop_assert_eq!(report.workers[0].decisions_log.as_ref().unwrap(), &picks);
        prop_assert_eq!(report.workers[0].lb_metrics.as_ref().unwrap(), &batch);
    }
}

/// The end-to-end drift story: phase 0 healthy, then the fleet degrades
/// under a speed-blind policy; the background controller must detect the
/// drift from streamed windows, re-synthesize, and publish — all while
/// every decision request keeps being served.
#[test]
fn drift_is_answered_in_the_background_with_zero_dropped_decisions() {
    let phases = loadgen::lb_drift_phases();
    // extend the degraded regime so serving continues while the
    // background search runs (same scenario, fresh seeds)
    let mut spec = phases.clone();
    for (i, extra) in std::iter::repeat_n(&phases[1], 6).enumerate() {
        spec.push(extra.clone().with_seed(extra.seed ^ (0xD00D + i as u64)));
    }
    let shards = loadgen::lb_shards(&spec, 2);
    let cfg = ServeConfig {
        workers: 2,
        window: 500,
        monitor_window: 6,
        monitor_tolerance: 1.35,
        ..ServeConfig::default()
    };
    let onset = scenario::slow_node_onset();
    let resynth = Resynth {
        context: onset.name.clone(),
        study: LbStudy::new(&onset),
        generator: Box::new(MockLlm::new(GenConfig::lb_defaults(77))),
        search: SearchConfig { rounds: 2, candidates_per_round: 6, ..SearchConfig::quick() }
            .pipelined(),
        library: policysmith_core::library::HeuristicLibrary::new(),
    };
    // "server.queue_len" is JSQ-by-queue: healthy-fleet-fine, speed-blind
    // after the onset — the stale policy the §3.1 story catches limping
    let report = serve_lb(&shards, compiled("server.queue_len", Mode::Lb), &cfg, Some(resynth));

    // zero dropped/blocked decision requests: every offered arrival of
    // every shard was decided
    let offered: u64 = shards.iter().flatten().map(|p| p.workload.n as u64).sum();
    assert_eq!(report.total_decisions(), offered);
    for w in &report.workers {
        let m = w.lb_metrics.as_ref().unwrap();
        assert_eq!(m.offered, w.decisions);
        assert_eq!(m.completed + m.dropped, m.offered, "conservation");
    }

    // the background loop fired: drift detected, answered, published
    assert!(
        !report.adaptations.is_empty() && report.adaptations.len() <= 4,
        "expected a small number of adaptations, got {:?}",
        report.adaptations.len()
    );
    assert_eq!(report.swaps.len(), report.adaptations.len());
    let first = &report.adaptations[0];
    assert_eq!(first.context, onset.name);
    assert_eq!(first.generation, 1);
    assert!(first.score.is_finite());
    let ctrl = &report.controller;
    assert!(!ctrl.library().is_empty());
    // no drift was detected before the injection: every pre-injection
    // window (phase 0) was served at generation 0 and the first swap's
    // provenance names the onset context
    assert!(report.swaps[0].provenance.contains("slow-node-onset"));
    assert!(
        report.windows.iter().filter(|s| s.phase == 0).all(|s| s.generation == 0),
        "phase 0 must be served entirely by the initial policy"
    );
}
