//! DSLVM: the compile-once host boundary, measured — per-decision cost of
//! the DSL tree-walking interpreter vs compiled kbpf execution for all
//! three template modes, plus the lb dispatch hot path (one full argmin
//! pick over a server fleet) under both engines.
//!
//! Writes the interpreter-vs-VM speedup summary to `results/dsl_vm.json`;
//! the `lb_dispatch` entry is the redesign's acceptance metric (compiled
//! host ≥ 5× the interpreter host).
//!
//! Usage: `exp_dsl_vm`

use policysmith_bench::{vm_workloads, write_json, SliceEnv};
use policysmith_dsl::{eval, parse, Mode};
use policysmith_kbpf::{CompiledPolicy, SPILL_SLOTS};
use policysmith_lbsim::dispatch::{DispatchView, Dispatcher, ServerView};
use policysmith_lbsim::{scenario, sim, ExprDispatcher};
use std::hint::black_box;
use std::time::Instant;

/// Best-of-reps mean ns/iter for `f`.
fn bench_ns<R>(iters: u32, reps: u32, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..iters / 10 {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

struct Row {
    name: String,
    interp_ns: f64,
    compiled_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.interp_ns / self.compiled_ns
    }
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    // -- per-evaluation cost, one representative expression per mode
    //    (the table is shared with the dsl_vm criterion bench) --
    for (label, mode, src, values) in vm_workloads() {
        let name = format!("{label}_eval");
        let env = SliceEnv(values);
        let expr = parse(src).unwrap();
        let policy = CompiledPolicy::compile(&expr, mode).unwrap();
        let interp_ns = bench_ns(200_000, 5, || eval(&expr, &env).unwrap());
        let mut ctx = Vec::with_capacity(policy.layout().len());
        let mut map = vec![0i64; SPILL_SLOTS];
        let compiled_ns =
            bench_ns(200_000, 5, || policy.run_with_env(&env, &mut ctx, &mut map).unwrap());
        rows.push(Row { name, interp_ns, compiled_ns });
    }

    // -- the lb dispatch hot path: one argmin pick over a 6-server view --
    let src = "server.inflight * 1000 / server.speed + server.queue_len * 50";
    let expr = parse(src).unwrap();
    let policy = CompiledPolicy::compile(&expr, Mode::Lb).unwrap();
    let servers: Vec<ServerView> = (0..6)
        .map(|i| ServerView {
            queue_len: i,
            inflight: i + 1,
            speed: 1 + (i as u32 % 3) * 3,
            ewma_latency_us: 900 * i as u64,
            work_left_us: 2_000 * i as u64,
        })
        .collect();
    let view = DispatchView { now_us: 1_000, req_size: 7, servers: &servers, dirty: None };
    let mut compiled_host = ExprDispatcher::new("vm", policy.clone());
    let mut interp_host = ExprDispatcher::interpreted("interp", expr.clone());
    rows.push(Row {
        name: "lb_dispatch".to_string(),
        interp_ns: bench_ns(100_000, 5, || interp_host.pick(&view)),
        compiled_ns: bench_ns(100_000, 5, || compiled_host.pick(&view)),
    });

    // -- whole-simulation wall time on the flash crowd (includes the
    //    event loop, so the ratio understates the pure dispatch gain) --
    let sc = scenario::flash_crowd();
    let reqs = sc.requests();
    rows.push(Row {
        name: "lb_flash_crowd_sim".to_string(),
        interp_ns: bench_ns(3, 3, || {
            let mut host = ExprDispatcher::interpreted("interp", expr.clone());
            sim::run(&sc.servers, &reqs, &mut host)
        }),
        compiled_ns: bench_ns(3, 3, || {
            let mut host = ExprDispatcher::new("vm", policy.clone());
            sim::run(&sc.servers, &reqs, &mut host)
        }),
    });

    println!("{:24} {:>14} {:>14} {:>9}", "bench", "interp ns/op", "compiled ns/op", "speedup");
    for r in &rows {
        println!(
            "{:24} {:>14.1} {:>14.1} {:>8.1}x",
            r.name,
            r.interp_ns,
            r.compiled_ns,
            r.speedup()
        );
    }
    let lb = rows.iter().find(|r| r.name == "lb_dispatch").unwrap();
    println!(
        "\nlb dispatch (compiled vs interpreter host): {:.1}x {}",
        lb.speedup(),
        if lb.speedup() >= 5.0 { "— meets the >=5x bar" } else { "— BELOW the 5x bar" }
    );

    write_json(
        "dsl_vm",
        &serde_json::json!({
            "benches": rows
                .iter()
                .map(|r| {
                    serde_json::json!({
                        "name": r.name.clone(),
                        "interp_ns": r.interp_ns,
                        "compiled_ns": r.compiled_ns,
                        "speedup": r.speedup(),
                    })
                })
                .collect::<Vec<_>>(),
            "lb_dispatch_speedup": lb.speedup(),
            "meets_5x_bar": lb.speedup() >= 5.0,
        }),
    );
}
