//! COST: reproduce the §4.2.6 computational-cost accounting — CPU time,
//! input/output tokens and dollar cost of the eight searches (A–D, W–Z).
//!
//! Paper reference points: heuristic A's search took 5.5 CPU-hours of
//! candidate evaluation; the eight runs together used ~800k input / ~300k
//! output tokens ≈ USD $7 on GPT-4o-mini. Our absolute CPU time is not
//! comparable (different simulator, different hardware, shorter traces);
//! the *token* accounting uses the same prompt/completion structure and
//! the same price sheet.
//!
//! Usage: `exp_cost [--fast] [--requests N] [--seed N]`

use policysmith_bench::{synthesize_for_dataset, write_json, ExpOpts};
use policysmith_traces::{cloudphysics, msr};

fn main() {
    let opts = ExpOpts::from_args();
    let mut total_in = 0u64;
    let mut total_out = 0u64;
    let mut total_cpu = 0.0f64;
    let mut total_cost = 0.0f64;
    let mut rows = Vec::new();

    for (ds, contexts, labels) in [
        (cloudphysics(), vec![89usize, 10, 40, 70], ["A", "B", "C", "D"]),
        (msr(), vec![3usize, 0, 7, 11], ["W", "X", "Y", "Z"]),
    ] {
        for ((h, outcome), label) in
            synthesize_for_dataset(&ds, &contexts, &labels, &opts).into_iter().zip(labels)
        {
            let c = outcome.cost;
            println!(
                "search {label} ({}): {} candidates, {:.1} cpu-s eval, \
                 {}k in / {}k out tokens, ${:.4}",
                h.context,
                c.candidates_evaluated,
                c.cpu_seconds(),
                c.tokens.input_tokens / 1_000,
                c.tokens.output_tokens / 1_000,
                c.cost_usd()
            );
            total_in += c.tokens.input_tokens;
            total_out += c.tokens.output_tokens;
            total_cpu += c.cpu_seconds();
            total_cost += c.cost_usd();
            rows.push(serde_json::json!({
                "label": label,
                "context": h.context,
                "candidates": c.candidates_evaluated,
                "cpu_seconds": c.cpu_seconds(),
                "input_tokens": c.tokens.input_tokens,
                "output_tokens": c.tokens.output_tokens,
                "cost_usd": c.cost_usd(),
            }));
        }
    }

    println!(
        "\n=== totals over 8 searches (paper: 800k in / 300k out, ≈$7; 5.5 CPU-h for A alone) ==="
    );
    println!(
        "tokens: {}k input / {}k output   cost ${:.4}   eval cpu {:.1} s",
        total_in / 1_000,
        total_out / 1_000,
        total_cost,
        total_cpu
    );
    write_json(
        "cost",
        &serde_json::json!({
            "searches": rows,
            "total_input_tokens": total_in,
            "total_output_tokens": total_out,
            "total_cost_usd": total_cost,
            "total_eval_cpu_seconds": total_cpu,
        }),
    );
}
