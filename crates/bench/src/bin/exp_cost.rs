//! COST: reproduce the §4.2.6 computational-cost accounting — CPU time,
//! input/output tokens and dollar cost of the eight searches (A–D, W–Z).
//!
//! Paper reference points: heuristic A's search took 5.5 CPU-hours of
//! candidate evaluation; the eight runs together used ~800k input / ~300k
//! output tokens ≈ USD $7 on GPT-4o-mini. Our absolute CPU time is not
//! comparable (different simulator, different hardware, shorter traces);
//! the *token* accounting uses the same prompt/completion structure and
//! the same price sheet.
//!
//! The per-search numbers are read back from the global lifecycle trace
//! log (`search_done` events emitted by `core::search`) rather than from
//! ad-hoc bookkeeping — so this experiment doubles as an end-to-end check
//! that the observability layer's cost accounting agrees with the
//! `CostLedger` the search returns.
//!
//! Usage: `exp_cost [--fast] [--requests N] [--seed N]`

use policysmith_bench::{synthesize_for_dataset, write_json, ExpOpts};
use policysmith_gen::tokens::{INPUT_PRICE_PER_M, OUTPUT_PRICE_PER_M};
use policysmith_obs::TraceKind;
use policysmith_traces::{cloudphysics, msr};

/// One search's cost row, decoded from a `search_done` trace event.
struct CostRow {
    rounds: usize,
    candidates: usize,
    memo_hits: usize,
    tokens_in: u64,
    tokens_out: u64,
    gen_seconds: f64,
    eval_cpu_seconds: f64,
}

impl CostRow {
    fn cpu_seconds(&self) -> f64 {
        self.gen_seconds + self.eval_cpu_seconds
    }

    fn cost_usd(&self) -> f64 {
        self.tokens_in as f64 / 1e6 * INPUT_PRICE_PER_M
            + self.tokens_out as f64 / 1e6 * OUTPUT_PRICE_PER_M
    }
}

fn main() {
    let opts = ExpOpts::from_args();
    let trace = policysmith_obs::trace::global();
    let mut total_in = 0u64;
    let mut total_out = 0u64;
    let mut total_cpu = 0.0f64;
    let mut total_cost = 0.0f64;
    let mut rows = Vec::new();

    for (ds, contexts, labels) in [
        (cloudphysics(), vec![89usize, 10, 40, 70], ["A", "B", "C", "D"]),
        (msr(), vec![3usize, 0, 7, 11], ["W", "X", "Y", "Z"]),
    ] {
        // marker before the batch of searches: the `search_done` events
        // past it are this dataset's four searches, in order
        let mark = trace.seq();
        let synthesized = synthesize_for_dataset(&ds, &contexts, &labels, &opts);
        let done: Vec<CostRow> = trace
            .events_since(mark)
            .into_iter()
            .filter_map(|e| match e.kind {
                TraceKind::SearchDone {
                    rounds,
                    candidates_evaluated,
                    memo_hits,
                    tokens_in,
                    tokens_out,
                    gen_seconds,
                    eval_cpu_seconds,
                    ..
                } => Some(CostRow {
                    rounds,
                    candidates: candidates_evaluated,
                    memo_hits,
                    tokens_in,
                    tokens_out,
                    gen_seconds,
                    eval_cpu_seconds,
                }),
                _ => None,
            })
            .collect();
        assert_eq!(
            done.len(),
            synthesized.len(),
            "one search_done trace event per search (got {} for {} searches)",
            done.len(),
            synthesized.len()
        );

        for (((h, outcome), label), row) in synthesized.into_iter().zip(labels).zip(done) {
            // the trace-decoded row must agree with the search's own ledger
            let c = outcome.cost;
            assert_eq!(row.candidates as u64, c.candidates_evaluated, "{label}: candidates");
            assert_eq!(row.memo_hits as u64, c.memo_hits, "{label}: memo hits");
            assert_eq!(row.tokens_in, c.tokens.input_tokens, "{label}: input tokens");
            assert_eq!(row.tokens_out, c.tokens.output_tokens, "{label}: output tokens");
            assert!((row.cost_usd() - c.cost_usd()).abs() < 1e-9, "{label}: cost");

            println!(
                "search {label} ({}): {} rounds, {} candidates (+{} memo), {:.1} cpu-s, \
                 {}k in / {}k out tokens, ${:.4}",
                h.context,
                row.rounds,
                row.candidates,
                row.memo_hits,
                row.cpu_seconds(),
                row.tokens_in / 1_000,
                row.tokens_out / 1_000,
                row.cost_usd()
            );
            total_in += row.tokens_in;
            total_out += row.tokens_out;
            total_cpu += row.cpu_seconds();
            total_cost += row.cost_usd();
            rows.push(serde_json::json!({
                "label": label,
                "context": h.context,
                "rounds": row.rounds,
                "candidates": row.candidates,
                "memo_hits": row.memo_hits,
                "cpu_seconds": row.cpu_seconds(),
                "input_tokens": row.tokens_in,
                "output_tokens": row.tokens_out,
                "cost_usd": row.cost_usd(),
            }));
        }
    }

    println!(
        "\n=== totals over 8 searches (paper: 800k in / 300k out, ≈$7; 5.5 CPU-h for A alone) ==="
    );
    println!(
        "tokens: {}k input / {}k output   cost ${:.4}   cpu {:.1} s",
        total_in / 1_000,
        total_out / 1_000,
        total_cost,
        total_cpu
    );
    write_json(
        "cost",
        &serde_json::json!({
            "searches": rows,
            "total_input_tokens": total_in,
            "total_output_tokens": total_out,
            "total_cost_usd": total_cost,
            "total_cpu_seconds": total_cpu,
        }),
    );
}
