//! TAB2 standalone: the Table-2 cross-trace generalization statistic only
//! (synthesize on one context per label, sweep the home dataset, report the
//! fraction of traces where the synthesized heuristic beats all fourteen
//! baselines). `exp_fig2` prints this too; this binary is the cheap
//! variant that skips the full figure.
//!
//! Usage: `exp_table2 [--fast] [--requests N] [--seed N]`

use policysmith_bench::{improvement_matrix, synthesize_for_dataset, write_json, ExpOpts};
use policysmith_traces::{cloudphysics, msr};

fn main() {
    let opts = ExpOpts::from_args();
    let paper = [
        ("A", 48.0),
        ("B", 42.0),
        ("C", 14.0),
        ("D", 31.0),
        ("W", 57.0),
        ("X", 64.0),
        ("Y", 57.0),
        ("Z", 21.0),
    ];
    let mut report: Vec<(String, f64, f64)> = Vec::new();

    for (ds, contexts, labels) in [
        (cloudphysics(), vec![89usize, 10, 40, 70], ["A", "B", "C", "D"]),
        (msr(), vec![3usize, 0, 7, 11], ["W", "X", "Y", "Z"]),
    ] {
        let synth = synthesize_for_dataset(&ds, &contexts, &labels, &opts);
        let heuristics: Vec<_> = synth.into_iter().map(|(h, _)| h).collect();
        let m = improvement_matrix(&ds, &heuristics, &opts);
        let n_base = policysmith_cachesim::policies::paper_baseline_names().len();
        let base_ixs: Vec<usize> = (0..n_base).collect();
        for (i, h) in heuristics.iter().enumerate() {
            let frac = m.beats_all_fraction(n_base + i, &base_ixs) * 100.0;
            let paper_pct = paper.iter().find(|(l, _)| *l == h.label).unwrap().1;
            println!("{} ({}): measured {:.0}%   paper {:.0}%", h.label, ds.name, frac, paper_pct);
            report.push((h.label.clone(), frac, paper_pct));
        }
    }
    write_json("table2", &report);
}
