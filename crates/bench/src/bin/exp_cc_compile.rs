//! CC-COMPILE: reproduce the §5.0.3 verifier-pass-rate measurement.
//!
//! "We generated 100 candidate congestion control heuristics and attempted
//! to compile them into eBPF programs. Only 63% of the candidates passed
//! the eBPF verifier on the first try, and an additional 19% successfully
//! compiled after the Generator was provided with the stderr. … This
//! compilation rate for kernel code is substantially lower than what we
//! observed for caching: where 92% of candidates compiled in the first
//! pass itself."
//!
//! Usage: `exp_cc_compile [--seed N]` (generates 100 kernel candidates and
//! 100 cache candidates).

use policysmith_bench::{write_json, ExpOpts};
use policysmith_cc::check_candidate;
use policysmith_dsl::Mode;
use policysmith_gen::{GenConfig, Generator, MockLlm, Prompt};
use std::collections::BTreeMap;

fn main() {
    let opts = ExpOpts::from_args();
    let n = 100;

    // ---- kernel side ----
    let mut llm = MockLlm::new(GenConfig::kernel_defaults(opts.seed));
    let prompt = Prompt::new(Mode::Kernel);
    let batch = llm.generate(&prompt, n);
    let mut first_pass = 0;
    let mut after_repair = 0;
    let mut failures_by_stage: BTreeMap<&'static str, usize> = BTreeMap::new();
    for src in &batch {
        match check_candidate(src) {
            Ok(_) => first_pass += 1,
            Err(e) => {
                *failures_by_stage.entry(e.stage()).or_default() += 1;
                if let Some(fixed) = llm.repair(&prompt, src, &e.to_string()) {
                    if check_candidate(&fixed).is_ok() {
                        after_repair += 1;
                    }
                }
            }
        }
    }
    println!("=== §5.0.3 kernel pipeline, {n} candidates ===");
    println!("first-try verifier pass : {first_pass}%   (paper: 63%)");
    println!("recovered via stderr    : +{after_repair}%   (paper: +19%)");
    println!("total compiled          : {}%   (paper: 82%)", first_pass + after_repair);
    println!("failure stages          : {failures_by_stage:?}");
    println!(
        "  (paper: \"most common causes were floating-point arithmetic and \
              missing checks for division by zero\" — here `check` = float/type \
              errors, `verify` = division-by-zero interval rejections)"
    );

    // ---- cache side for the 92% contrast ----
    let mut cache_llm = MockLlm::new(GenConfig::cache_defaults(opts.seed));
    let cache_prompt = Prompt::new(Mode::Cache);
    let cache_batch = cache_llm.generate(&cache_prompt, n);
    let cache_first = cache_batch
        .iter()
        .filter(|s| {
            policysmith_dsl::parse(s)
                .map(|e| policysmith_dsl::check(&e, Mode::Cache).is_ok())
                .unwrap_or(false)
        })
        .count();
    println!("\ncache-template first-pass compile rate: {cache_first}%   (paper: 92%)");

    write_json(
        "cc_compile",
        &serde_json::json!({
            "n": n,
            "kernel_first_pass_pct": first_pass,
            "kernel_after_repair_pct": after_repair,
            "kernel_total_pct": first_pass + after_repair,
            "kernel_failure_stages": failures_by_stage,
            "cache_first_pass_pct": cache_first,
            "paper": { "kernel_first": 63, "kernel_repair": 19, "cache_first": 92 },
        }),
    );
}
