//! AQM: the fourth-workload experiment — synthesized queue management vs
//! the man-made classics.
//!
//! 1. **Baseline league table** — drop-tail, CoDel and PIE replay every
//!    scenario preset; utilization, mean sojourn and the power score per
//!    cell (the man-made state of the art this domain accumulated over
//!    three decades).
//! 2. **Per-preset search** — one policy synthesized per home context
//!    (`AqmStudy` + `MockLlm`), then every synthesized policy evaluated
//!    on every preset: the cross-scenario improvement matrix.
//! 3. **Generalization slice** — the synthesized policies become a
//!    [`HeuristicLibrary`]; per preset the library re-scores every entry
//!    and deploys the winner (the PS-Oracle row of the cache study's
//!    Table 2, §4.2.4).
//!
//! Exit status doubles as the CI guard: non-zero unless the library's
//! best stored policy beats the best man-made baseline on at least 3
//! presets (1 in `--fast`/`--quick` mode — the short search is weaker).
//!
//! Usage: `exp_aqm [--fast|--quick] [--seed N]`
//!
//! Writes `results/aqm.json` (schema in `results/README.md`).

use policysmith_aqmsim::{aqm_baseline_names, metrics, scenario, ExprAqm};
use policysmith_bench::{write_json, ExpOpts, ImprovementMatrix};
use policysmith_core::library::{HeuristicLibrary, LibraryEntry};
use policysmith_core::search::{run_search, SearchConfig, Study};
use policysmith_core::studies::aqm::AqmStudy;
use policysmith_gen::{GenConfig, MockLlm};

fn main() {
    let opts = ExpOpts::from_args();
    let cfg = if opts.fast {
        SearchConfig { rounds: 5, candidates_per_round: 10, ..SearchConfig::paper_cache() }
    } else {
        SearchConfig { rounds: 12, candidates_per_round: 20, ..SearchConfig::paper_cache() }
    };

    let presets = scenario::all_presets();
    let studies: Vec<AqmStudy> = presets.iter().map(AqmStudy::new).collect();
    let n_base = aqm_baseline_names().len();

    // -- 1: the man-made league table --
    println!("=== man-made baselines: utilization / mean sojourn / power ===");
    let mut league = Vec::new();
    for sc in &presets {
        for name in aqm_baseline_names() {
            let m = metrics::run_baseline(sc, name);
            println!(
                "{:16} {:10}  util {:>5.1}%  sojourn {:>8.1} µs  power {:.4}",
                sc.name,
                name,
                m.agg_utilization * 100.0,
                m.mean_sojourn_us,
                m.power
            );
            league.push(serde_json::json!({
                "scenario": sc.name, "policy": name,
                "utilization": m.agg_utilization,
                "mean_sojourn_us": m.mean_sojourn_us,
                "max_sojourn_us": m.max_sojourn_us,
                "tail_drops": m.tail_drops,
                "aqm_drops": m.aqm_drops,
                "ecn_marks": m.ecn_marks,
                "power": m.power,
            }));
        }
    }

    // -- 2: synthesize one policy per home context --
    let mut synthesized: Vec<(String, String, f64)> = Vec::new(); // (label, source, home score)
    for (i, study) in studies.iter().enumerate() {
        let label = format!("AQM-{}", (b'A' + i as u8) as char);
        let mut llm = MockLlm::new(GenConfig::aqm_defaults(
            opts.seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15),
        ));
        let outcome = run_search(study, &mut llm, &cfg);
        println!(
            "\n{label} (home {}): {:+.4} over drop-tail   act(pkt, q) = {}",
            study.scenario().name,
            outcome.best.score,
            outcome.best.source
        );
        synthesized.push((label, outcome.best.source.clone(), outcome.best.score));
    }

    // -- the scenario × scenario matrix: every policy on every context --
    let mut policy_names: Vec<String> =
        aqm_baseline_names().iter().map(|s| s.to_string()).collect();
    policy_names.extend(synthesized.iter().map(|(l, _, _)| l.clone()));
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for name in aqm_baseline_names() {
        rows.push(studies.iter().map(|s| s.baseline_improvement(name)).collect());
    }
    for (label, source, _) in &synthesized {
        let expr = policysmith_dsl::parse(source).expect("stored source parses");
        rows.push(
            studies
                .iter()
                .map(|s| s.improvement(Box::new(ExprAqm::from_expr(label, &expr))))
                .collect(),
        );
    }

    let matrix = ImprovementMatrix {
        dataset: "aqmsim".into(),
        trace_names: presets.iter().map(|s| s.name.clone()).collect(),
        policies: policy_names.clone(),
        rows,
    };

    println!("\n=== power improvement over drop-tail, policy × scenario ===");
    print!("{:12}", "policy");
    for sc in &presets {
        print!("{:>16}", sc.name.trim_start_matches("aqm/"));
    }
    println!("{:>8}", "mean");
    for (p, name) in matrix.policies.iter().enumerate() {
        print!("{name:12}");
        for v in &matrix.rows[p] {
            print!("{:>15.1}%", v * 100.0);
        }
        println!("{:>7.1}%", matrix.mean(p) * 100.0);
    }

    // -- 3: the library slice — re-score every stored policy per preset,
    //       deploy the winner (the §4.2.4 oracle-adaptation model) --
    let mut library = HeuristicLibrary::new();
    for ((label, source, home), sc) in synthesized.iter().zip(&presets) {
        let _ = label;
        library.add(LibraryEntry {
            context: sc.name.clone(),
            source: source.clone(),
            score: *home,
        });
    }
    let mut oracle: Vec<f64> = Vec::new();
    let mut deployed: Vec<String> = Vec::new();
    for study in &studies {
        let (best, score) = library
            .best_for(|e| match study.check(&e.source) {
                Ok(a) => study.evaluate(&a),
                Err(_) => f64::NEG_INFINITY,
            })
            .expect("library is non-empty");
        oracle.push(score);
        deployed.push(best.context.clone());
    }

    // -- the CI guard: the library must beat the best man-made baseline --
    let need = if opts.fast { 1 } else { 3 };
    let mut beaten = 0usize;
    println!("\n=== library (PS-Oracle) vs best man-made baseline ===");
    for (t, sc) in presets.iter().enumerate() {
        let best_manmade = (0..n_base).map(|b| matrix.rows[b][t]).fold(f64::MIN, f64::max);
        let won = oracle[t] > best_manmade;
        beaten += won as usize;
        println!(
            "{:16} library {:+.1}% (from {})  best man-made {:+.1}%  {}",
            sc.name,
            oracle[t] * 100.0,
            deployed[t],
            best_manmade * 100.0,
            if won { "WIN" } else { "loss" }
        );
    }
    let oracle_mean: f64 = oracle.iter().sum::<f64>() / oracle.len() as f64;
    println!(
        "library wins on {beaten}/{} presets (need ≥ {need}); oracle mean {:+.1}%",
        presets.len(),
        oracle_mean * 100.0
    );

    write_json(
        "aqm",
        &serde_json::json!({
            "scenarios": matrix.trace_names,
            "droptail_power": studies.iter().map(|s| s.droptail_power()).collect::<Vec<_>>(),
            "baseline_league": league,
            "policies": matrix.policies,
            "rows": matrix.rows,
            "synthesized": synthesized,
            "oracle": oracle,
            "oracle_deployed_from": deployed,
            "library_wins": beaten,
            "search": { "rounds": cfg.rounds, "candidates_per_round": cfg.candidates_per_round,
                        "seed": opts.seed, "fast": opts.fast },
        }),
    );

    if beaten < need {
        eprintln!(
            "GUARD FAILED: library beat the best man-made baseline on only \
             {beaten}/{} presets (need ≥ {need})",
            presets.len()
        );
        std::process::exit(2);
    }
}
