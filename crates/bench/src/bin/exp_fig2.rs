//! FIG2 + TAB2: regenerate Figure 2 (miss-ratio improvement over FIFO,
//! both datasets, baselines + synthesized heuristics + oracles) and
//! Table 2 (fraction of traces where each synthesized heuristic beats all
//! fourteen baselines).
//!
//! Usage: `exp_fig2 [--fast] [--requests N] [--seed N]`

use policysmith_bench::{
    improvement_matrix, summarize, synthesize_for_dataset, write_json, ExpOpts,
};
use policysmith_traces::{cloudphysics, msr};
use serde::Serialize;

#[derive(Serialize)]
struct Fig2Output {
    dataset: String,
    requests_per_trace: usize,
    heuristics: Vec<policysmith_bench::SynthesizedHeuristic>,
    policies: Vec<String>,
    means: Vec<f64>,
    table2_beats_all: Vec<(String, f64)>,
    b_oracle_mean: f64,
    ps_oracle_mean: f64,
}

fn main() {
    let opts = ExpOpts::from_args();
    // Contexts per the paper: w89 + three more CloudPhysics traces → A–D;
    // four MSR traces → W–Z.
    let jobs = [
        (cloudphysics(), vec![89usize, 10, 40, 70], ["A", "B", "C", "D"]),
        (msr(), vec![3usize, 0, 7, 11], ["W", "X", "Y", "Z"]),
    ];

    for (ds, contexts, labels) in jobs {
        println!(
            "=== Figure 2: {} ({} traces, {} requests each) ===",
            ds.name, ds.count, opts.requests
        );
        println!("-- synthesizing heuristics {labels:?} on contexts {contexts:?} --");
        let synth = synthesize_for_dataset(&ds, &contexts, &labels, &opts);
        for (h, o) in &synth {
            println!(
                "  {} ({}): home improvement {:+.4}  [{} candidates, {:.0}s eval]",
                h.label, h.context, h.home_score, o.cost.candidates_evaluated, o.cost.eval_seconds,
            );
            println!("     {}", h.source);
        }
        let heuristics: Vec<_> = synth.iter().map(|(h, _)| h.clone()).collect();

        println!("-- sweeping all {} traces --", ds.count);
        let m = improvement_matrix(&ds, &heuristics, &opts);

        let n_base = policysmith_cachesim::policies::paper_baseline_names().len();
        let base_ixs: Vec<usize> = (0..n_base).collect();
        let all_ixs: Vec<usize> = (0..m.policies.len()).collect();

        // Figure 2 rendering: per-policy distribution, sorted by mean.
        let mut order: Vec<usize> = all_ixs.clone();
        order.sort_by(|&a, &b| m.mean(a).partial_cmp(&m.mean(b)).unwrap());
        println!("\npolicy        min      q1      mean    q3      max   (improvement over FIFO)");
        for &p in &order {
            let (min, q1, mean, q3, max) = summarize(&m.rows[p]);
            println!(
                "{:10} {:+.4} {:+.4}  {:+.4} {:+.4} {:+.4}",
                m.policies[p], min, q1, mean, q3, max
            );
        }
        let b_oracle = m.oracle(&base_ixs);
        let ps_oracle = m.oracle(&all_ixs);
        let (_, _, b_mean, _, _) = summarize(&b_oracle);
        let (_, _, ps_mean, _, _) = summarize(&ps_oracle);
        println!(
            "{:10}                 {:+.4}        (best baseline per trace)",
            "B-Oracle", b_mean
        );
        println!(
            "{:10}                 {:+.4}        (baselines + PolicySmith)",
            "PS-Oracle", ps_mean
        );
        println!(
            "PS-Oracle gain over B-Oracle: {:+.4} (paper: ≈ +0.02 over FIFO-relative improvement)",
            ps_mean - b_mean
        );

        // Table 2.
        println!(
            "\n=== Table 2: % of {} traces where heuristic beats ALL 14 baselines ===",
            ds.name
        );
        let mut table2 = Vec::new();
        for (i, h) in heuristics.iter().enumerate() {
            let frac = m.beats_all_fraction(n_base + i, &base_ixs);
            println!("  {}: {:.0}%", h.label, frac * 100.0);
            table2.push((h.label.clone(), frac));
        }

        write_json(
            &format!("fig2_{}", ds.name),
            &Fig2Output {
                dataset: ds.name.to_string(),
                requests_per_trace: opts.requests,
                heuristics,
                policies: m.policies.clone(),
                means: all_ixs.iter().map(|&p| m.mean(p)).collect(),
                table2_beats_all: table2,
                b_oracle_mean: b_mean,
                ps_oracle_mean: ps_mean,
            },
        );
        println!();
    }
}
