//! SEARCH THROUGHPUT: whole-search wall-clock, measured layer by layer —
//! the §4.2.6 "search is cheap enough to re-run constantly" claim, pushed
//! as fast as the hardware allows.
//!
//! Four configurations run the *same* search (same seed, same candidate
//! stream, `exemplar_lag = 1` everywhere so the pipelined and sequential
//! executors do identical work and their outcomes are asserted equal):
//!
//! 1. `pr2_baseline`   — sequential rounds, the reference cache host
//!    (`BTreeSet` ranking, unconditional tracker maintenance), no score
//!    memo: the evaluator exactly as PR 2 left it. The engine-level
//!    fast-hash improvement cannot be toggled per run and speeds this
//!    config up too, so the recorded speedup is a *lower bound* on the
//!    true improvement over the PR 2 tree.
//! 2. `heap_host`      — + slab + lazy-deletion heap in the evaluator.
//! 3. `heap_memo`      — + cross-candidate score memo.
//! 4. `pipelined`      — + round N+1 generation/checking overlapped with
//!    round N evaluation.
//!
//! A fifth pair repeats sequential-vs-pipelined with a simulated LLM
//! round-trip latency (the mock generator answers in microseconds; a real
//! deployment waits tens of milliseconds per batch), showing the overlap
//! gain the paper's setting would actually see.
//!
//! Exit status doubles as the CI regression guard: non-zero if the
//! pipelined executor fails to keep up with the sequential one (generous
//! slack for noisy runners).
//!
//! Usage: `exp_search_throughput [--fast] [--requests N] [--seed N]`

use policysmith_bench::{write_json, ExpOpts};
use policysmith_core::search::{run_search, SearchConfig, SearchOutcome};
use policysmith_core::studies::cache::CacheStudy;
use policysmith_gen::{GenConfig, Generator, MockLlm, Prompt, TokenLedger};
use policysmith_traces::cloudphysics;
use std::time::{Duration, Instant};

/// Wraps the mock generator with a per-batch round-trip latency — the
/// candidate stream is unchanged, only wall time is affected.
struct SlowGen {
    inner: MockLlm,
    latency: Duration,
}

impl Generator for SlowGen {
    fn generate(&mut self, prompt: &Prompt, n: usize) -> Vec<String> {
        std::thread::sleep(self.latency);
        self.inner.generate(prompt, n)
    }
    fn repair(&mut self, prompt: &Prompt, source: &str, stderr: &str) -> Option<String> {
        self.inner.repair(prompt, source, stderr)
    }
    fn ledger(&self) -> &TokenLedger {
        self.inner.ledger()
    }
}

struct Row {
    name: &'static str,
    wall_seconds: f64,
    outcome: SearchOutcome,
}

impl Row {
    fn candidates_per_sec(&self) -> f64 {
        self.outcome.all.len() as f64 / self.wall_seconds
    }
}

fn main() {
    let opts = ExpOpts::from_args();
    // --fast caps the trace; an explicit smaller --requests still wins
    let requests = if opts.fast { opts.requests.min(12_000) } else { opts.requests };
    let (rounds, cpr) = if opts.fast { (8, 12) } else { (12, 20) };
    let reps = if opts.fast { 2 } else { 3 };

    let trace = cloudphysics().trace(89, requests);
    let heap_study = CacheStudy::new(&trace);
    let btree_study = CacheStudy::new(&trace).with_btree_host();

    let base = SearchConfig {
        rounds,
        candidates_per_round: cpr,
        exemplar_lag: 1,
        score_memo: false,
        threads: opts.threads,
        ..SearchConfig::quick()
    };
    let memo = SearchConfig { score_memo: true, ..base };
    let piped = memo.pipelined();

    let run_once = |study: &CacheStudy, cfg: &SearchConfig, latency_ms: u64| {
        let inner = MockLlm::new(GenConfig::cache_defaults(opts.seed));
        let t0 = Instant::now();
        let outcome = if latency_ms == 0 {
            let mut llm = inner;
            run_search(study, &mut llm, cfg)
        } else {
            let mut llm = SlowGen { inner, latency: Duration::from_millis(latency_ms) };
            run_search(study, &mut llm, cfg)
        };
        (t0.elapsed().as_secs_f64(), outcome)
    };

    // Interleave repetitions across configurations (A B C … A B C …) so a
    // load spike on a shared runner penalizes every config alike; keep the
    // best rep per config.
    let configs: Vec<(&'static str, &CacheStudy, &SearchConfig, u64)> = vec![
        ("pr2_baseline", &btree_study, &base, 0),
        ("heap_host", &heap_study, &base, 0),
        ("heap_memo", &heap_study, &memo, 0),
        ("pipelined", &heap_study, &piped, 0),
        ("seq_llm_latency", &heap_study, &memo, 30),
        ("pipe_llm_latency", &heap_study, &piped, 30),
    ];
    let mut rows: Vec<Row> = Vec::new();
    for rep in 0..reps {
        for (i, &(name, study, cfg, latency)) in configs.iter().enumerate() {
            let (wall, outcome) = run_once(study, cfg, latency);
            if rep == 0 {
                rows.push(Row { name, wall_seconds: wall, outcome });
            } else if wall < rows[i].wall_seconds {
                rows[i].wall_seconds = wall;
            }
        }
    }

    // Every configuration ran the same search: the optimizations must not
    // change what the search finds, only how fast it finds it.
    for r in &rows[1..] {
        assert_eq!(
            rows[0].outcome.best, r.outcome.best,
            "`{}` changed the search outcome — optimization is unsound",
            r.name
        );
    }

    println!(
        "search throughput ({requests} requests, {rounds} rounds x {cpr} candidates, {} threads)",
        opts.threads
    );
    println!(
        "{:18} {:>9} {:>12} {:>7} {:>10}",
        "config", "wall s", "cands/s", "evals", "memo hits"
    );
    for r in &rows {
        println!(
            "{:18} {:>9.3} {:>12.1} {:>7} {:>10}",
            r.name,
            r.wall_seconds,
            r.candidates_per_sec(),
            r.outcome.cost.candidates_evaluated,
            r.outcome.cost.memo_hits
        );
    }

    let wall = |name: &str| rows.iter().find(|r| r.name == name).unwrap().wall_seconds;
    let speedup_total = wall("pr2_baseline") / wall("pipelined");
    let pipe_vs_seq = wall("heap_memo") / wall("pipelined");
    let pipe_vs_seq_llm = wall("seq_llm_latency") / wall("pipe_llm_latency");
    println!(
        "\npipelined+heap+memo vs PR 2 baseline: {speedup_total:.2}x {}",
        if speedup_total >= 1.5 { "— meets the >=1.5x bar" } else { "— BELOW the 1.5x bar" }
    );
    println!("pipelined vs sequential (same host+memo): {pipe_vs_seq:.2}x");
    println!("pipelined vs sequential at 30 ms LLM latency: {pipe_vs_seq_llm:.2}x");

    write_json(
        "search_throughput",
        &serde_json::json!({
            "requests": requests,
            "rounds": rounds,
            "candidates_per_round": cpr,
            "threads": opts.threads,
            "configs": rows
                .iter()
                .map(|r| {
                    serde_json::json!({
                        "name": r.name,
                        "wall_seconds": r.wall_seconds,
                        "candidates_per_sec": r.candidates_per_sec(),
                        "candidates_evaluated": r.outcome.cost.candidates_evaluated,
                        "memo_hits": r.outcome.cost.memo_hits,
                        "gen_seconds": r.outcome.cost.gen_seconds,
                        "eval_cpu_seconds": r.outcome.cost.eval_cpu_seconds,
                    })
                })
                .collect::<Vec<_>>(),
            "speedup_vs_pr2_baseline": speedup_total,
            "meets_1_5x_bar": speedup_total >= 1.5,
            "pipelined_vs_sequential": pipe_vs_seq,
            "pipelined_vs_sequential_llm_latency": pipe_vs_seq_llm,
        }),
    );

    // CI regression guard: the pipelined executor must at least keep pace
    // with the sequential one on the same host + memo configuration. The
    // 1.10 slack absorbs noisy shared runners; a real scheduling
    // regression shows up far above it.
    if wall("pipelined") > wall("heap_memo") * 1.10 {
        eprintln!(
            "REGRESSION: pipelined search slower than sequential ({:.3}s vs {:.3}s)",
            wall("pipelined"),
            wall("heap_memo")
        );
        std::process::exit(2);
    }
}
