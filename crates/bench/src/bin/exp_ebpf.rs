//! KERNEL OFFLOAD: every policy the search produces, carried all the way
//! to an eBPF artifact and held to the kbpf VM's decisions.
//!
//! The paper deploys synthesized congestion control as a `struct_ops`
//! eBPF program; this experiment regenerates that pipeline end to end in
//! userspace and records what it proves:
//!
//! 1. Run a small kernel-mode search (`CcStudy` + `MockLlm`) and collect
//!    the distinct verified policies it scored — the *searched library* —
//!    plus hand-written reno-style and bpf_cubic-style baselines.
//! 2. For each policy: emit raw eBPF (`policysmith_ebpf::emit_policy`),
//!    re-prove the artifact with the model verifier, and record emit
//!    sizes (kbpf vs eBPF instruction counts, image bytes, stack frame)
//!    and verifier statistics (reachable insns, branches, proved r0
//!    bounds).
//! 3. Drive the kbpf VM host and the emulated-eBPF host side by side on
//!    three netsim link configurations and demand decision-for-decision
//!    equality with zero faults.
//! 4. Render the best searched policy as a compilable struct_ops C
//!    translation unit (`results/ebpf_best_policy.c`) — CI build-checks
//!    it with the container's C compiler when one is present.
//!
//! Exit status doubles as the CI guard: non-zero if any library policy
//! fails to emit, fails the model verifier, or ever disagrees with the
//! VM.
//!
//! Usage: `exp_ebpf [--fast|--quick] [--seed N]`

use policysmith_bench::{write_json, ExpOpts};
use policysmith_cc::{
    check_candidate, evaluate_with, CcView, CongestionControl, EbpfCc, KbpfCc, LinkCfg, SimConfig,
};
use policysmith_core::search::{run_search, SearchConfig};
use policysmith_core::studies::cc::CcStudy;
use policysmith_ebpf::render_struct_ops;
use policysmith_gen::{GenConfig, MockLlm};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Hand-written kernel baselines, in the DSL: reno-style halving and a
/// bpf_cubic-style multiplicative backoff (beta = 717/1024).
const BASELINES: &[(&str, &str)] = &[
    ("reno_style", "if(loss, max(cwnd >> 1, 2), cwnd + max(acked / max(mss, 1), 1))"),
    ("cubic_style", "if(loss, max(cwnd * 717 / 1024, 2), cwnd + max(acked / max(mss, 1), 1))"),
];

/// The three link shapes the decision-equality claim is checked on.
fn link_configs() -> Vec<(&'static str, LinkCfg)> {
    vec![
        ("paper-12mbps-20ms", LinkCfg::paper_link()),
        ("fat-48mbps-5ms", LinkCfg { rate_bps: 48_000_000, delay_us: 5_000, queue_bytes: 30_000 }),
        (
            "thin-4mbps-50ms",
            LinkCfg { rate_bps: 4_000_000, delay_us: 50_000, queue_bytes: 100_000 },
        ),
    ]
}

/// `(decisions, divergences, faults)` — shared with `main` because
/// `evaluate_with` consumes its controller.
type DiffCounters = Rc<RefCell<(u64, u64, u64)>>;

/// Both hosts on one simulated sender; counts decisions, divergences,
/// and faults into shared counters.
struct DiffCc {
    vm: KbpfCc,
    ebpf: EbpfCc,
    counters: DiffCounters,
}

impl DiffCc {
    fn step(&mut self, view: &CcView<'_>, loss: bool) -> u64 {
        let (a, b) = if loss {
            (self.vm.on_loss(view), self.ebpf.on_loss(view))
        } else {
            (self.vm.on_ack(view), self.ebpf.on_ack(view))
        };
        let mut c = self.counters.borrow_mut();
        c.0 += 1;
        c.1 += (a != b) as u64;
        c.2 = self.vm.faults + self.ebpf.faults;
        a
    }
}

impl CongestionControl for DiffCc {
    fn name(&self) -> &str {
        "diff:kbpf-vs-ebpf"
    }
    fn on_ack(&mut self, view: &CcView<'_>) -> u64 {
        self.step(view, false)
    }
    fn on_loss(&mut self, view: &CcView<'_>) -> u64 {
        self.step(view, true)
    }
}

struct Row {
    label: String,
    source: String,
    kbpf_insns: usize,
    ebpf_insns: usize,
    ebpf_bytes: usize,
    stack_bytes: usize,
    check_reachable: usize,
    check_branches: usize,
    r0_lo: i64,
    r0_hi: i64,
    decisions: u64,
    divergences: u64,
    faults: u64,
}

fn main() {
    let opts = ExpOpts::from_args();
    let (rounds, cpr, sim_us) = if opts.fast { (3, 6, 3_000_000) } else { (6, 10, 8_000_000) };

    // 1. The searched library: one small kernel-mode search; every
    //    distinct policy it verified and scored is a deployment candidate.
    let study = CcStudy::with_duration(if opts.fast { 2_000_000 } else { 5_000_000 });
    let mut llm = MockLlm::new(GenConfig::kernel_defaults(opts.seed));
    let cfg = SearchConfig { rounds, candidates_per_round: cpr, ..SearchConfig::quick() };
    let outcome = run_search(&study, &mut llm, &cfg);

    let mut seen = BTreeSet::new();
    let mut library: Vec<(String, String)> = Vec::new();
    for s in &outcome.all {
        if seen.insert(s.source.clone()) {
            library.push((format!("searched_{}", library.len()), s.source.clone()));
        }
    }
    let searched = library.len();
    for (label, src) in BASELINES {
        library.push((label.to_string(), src.to_string()));
    }
    println!(
        "offloading {} policies ({} searched + {} baselines) across {} link configs",
        library.len(),
        searched,
        BASELINES.len(),
        link_configs().len()
    );

    // 2+3. Emit, model-check, and differentially execute every policy.
    let mut rows: Vec<Row> = Vec::new();
    let mut failures = 0usize;
    for (label, src) in &library {
        let candidate = match check_candidate(src) {
            Ok(c) => c,
            Err(e) => {
                // outcome.all only contains checker-approved sources
                eprintln!("FAIL {label}: searched policy no longer verifies: {e}");
                failures += 1;
                continue;
            }
        };
        let kbpf_insns = candidate.program().insns.len();
        let ebpf = match EbpfCc::new(candidate.clone()) {
            Ok(cc) => cc,
            Err(e) => {
                eprintln!("FAIL {label}: offload refused: {e}  [{src}]");
                failures += 1;
                continue;
            }
        };
        let prog = ebpf.program();
        let stats = ebpf.check_stats();
        let (ebpf_insns, ebpf_bytes, stack_bytes) = (prog.len(), prog.byte_len(), prog.stack_bytes);
        drop(ebpf);

        let (mut decisions, mut divergences, mut faults) = (0u64, 0u64, 0u64);
        for (_link_label, link) in link_configs() {
            let mut sim = SimConfig::paper_scenario();
            sim.link = link;
            sim.duration_us = sim_us;
            // fresh hosts and counters per link so fault latches can't
            // carry over between configurations
            let counters: DiffCounters = Rc::new(RefCell::new((0, 0, 0)));
            let diff = DiffCc {
                vm: KbpfCc::new(candidate.clone()),
                ebpf: EbpfCc::new(candidate.clone()).expect("emitted once already"),
                counters: counters.clone(),
            };
            evaluate_with(sim, Box::new(diff));
            let c = counters.borrow();
            decisions += c.0;
            divergences += c.1;
            faults += c.2;
        }
        if divergences > 0 || faults > 0 {
            eprintln!(
                "FAIL {label}: {divergences}/{decisions} divergences, {faults} faults  [{src}]"
            );
            failures += 1;
        }
        rows.push(Row {
            label: label.clone(),
            source: src.clone(),
            kbpf_insns,
            ebpf_insns,
            ebpf_bytes,
            stack_bytes,
            check_reachable: stats.reachable,
            check_branches: stats.branches,
            r0_lo: stats.r0.0,
            r0_hi: stats.r0.1,
            decisions,
            divergences,
            faults,
        });
    }

    println!(
        "{:13} {:>5} {:>5} {:>6} {:>5} {:>8} {:>9} {:>5}",
        "policy", "kbpf", "ebpf", "bytes", "stack", "decisions", "diverged", "fault"
    );
    for r in &rows {
        println!(
            "{:13} {:>5} {:>5} {:>6} {:>5} {:>8} {:>9} {:>5}",
            r.label,
            r.kbpf_insns,
            r.ebpf_insns,
            r.ebpf_bytes,
            r.stack_bytes,
            r.decisions,
            r.divergences,
            r.faults
        );
    }

    // 4. The best searched policy as a struct_ops C translation unit.
    let best = check_candidate(&outcome.best.source).expect("winner verifies");
    let c_src =
        render_struct_ops(best.program(), best.policy.layout().features(), "policysmith_best");
    let c_path = "results/ebpf_best_policy.c";
    std::fs::write(c_path, &c_src).expect("write C artifact");
    println!("[struct_ops C artifact written to {c_path}]");

    write_json(
        "ebpf",
        &serde_json::json!({
            "search": { "rounds": rounds, "candidates_per_round": cpr, "seed": opts.seed },
            "searched_policies": searched,
            "baseline_policies": BASELINES.len(),
            "link_configs": link_configs().iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            "sim_duration_us": sim_us,
            "policies": rows.iter().map(|r| serde_json::json!({
                "label": r.label,
                "source": r.source,
                "kbpf_insns": r.kbpf_insns,
                "ebpf_insns": r.ebpf_insns,
                "ebpf_bytes": r.ebpf_bytes,
                "stack_bytes": r.stack_bytes,
                "model_check": {
                    "reachable": r.check_reachable,
                    "branches": r.check_branches,
                    "r0_bounds": [r.r0_lo, r.r0_hi],
                },
                "decisions": r.decisions,
                "divergences": r.divergences,
                "faults": r.faults,
            })).collect::<Vec<_>>(),
            "best": { "source": outcome.best.source, "score": outcome.best.score },
            "c_artifact": c_path,
            "all_agree": failures == 0,
        }),
    );

    if failures > 0 {
        eprintln!("REGRESSION: {failures} policies failed offload or diverged from the VM");
        std::process::exit(2);
    }
    println!(
        "\nall {} policies emit, model-check, and agree with the kbpf VM decision-for-decision",
        rows.len()
    );
}
