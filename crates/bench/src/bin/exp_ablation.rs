//! ABL: ablations of the search-design choices DESIGN.md calls out (not in
//! the paper — §6 poses them as open questions):
//!
//! * exemplar feedback on/off (is the evolutionary loop earning its keep?)
//! * stderr repair on/off (how much does the +19%-style recovery matter?)
//! * round-count sweep (search-budget scaling)
//!
//! All on the w89 context.
//!
//! Usage: `exp_ablation [--fast] [--requests N] [--seed N]`

use policysmith_bench::{write_json, ExpOpts};
use policysmith_core::search::{run_search, SearchConfig};
use policysmith_core::studies::cache::CacheStudy;
use policysmith_gen::{GenConfig, MockLlm};
use policysmith_traces::cloudphysics;

fn main() {
    let opts = ExpOpts::from_args();
    let trace = cloudphysics().trace(89, opts.requests);
    let study = CacheStudy::new(&trace);
    let base = if opts.fast {
        SearchConfig { rounds: 6, candidates_per_round: 10, ..SearchConfig::paper_cache() }
    } else {
        SearchConfig { rounds: 12, candidates_per_round: 20, ..SearchConfig::paper_cache() }
    };

    let mut results = Vec::new();
    let mut run = |name: &str, cfg: SearchConfig, seed: u64| {
        let mut llm = MockLlm::new(GenConfig::cache_defaults(seed));
        let o = run_search(&study, &mut llm, &cfg);
        let repaired: usize = o.rounds.iter().map(|r| r.passed_after_repair).sum();
        println!(
            "{name:28} best {:+.4}  ({} rounds × {} cand, {} repaired)",
            o.best.score, cfg.rounds, cfg.candidates_per_round, repaired
        );
        results.push(serde_json::json!({
            "variant": name,
            "best": o.best.score,
            "rounds": cfg.rounds,
            "candidates_per_round": cfg.candidates_per_round,
            "repaired": repaired,
        }));
        o.best.score
    };

    println!("=== ablations on {} ===", trace.name);
    let full = run("full (exemplars + repair)", base, opts.seed);
    let no_exemplars =
        run("no exemplar feedback", SearchConfig { exemplars: 0, ..base }, opts.seed);
    let no_repair = run("no stderr repair", SearchConfig { repair: false, ..base }, opts.seed);
    for rounds in [2, 4, 8] {
        run(&format!("budget sweep: {rounds} rounds"), SearchConfig { rounds, ..base }, opts.seed);
    }

    println!("\nexemplar feedback contribution: {:+.4}", full - no_exemplars);
    println!("repair contribution:            {:+.4}", full - no_repair);
    write_json("ablation", &results);
}
