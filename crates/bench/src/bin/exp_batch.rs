//! Batch: head-to-head of the four `ExprDispatcher` scan engines — the
//! legacy scalar loop, the batched structure-of-arrays full scan, and the
//! two sublinear modes (power-of-d sampling, incremental argmin tree) —
//! across fleet sizes from 16 to 4096 servers, on the same uniform-fleet
//! workload shape as `exp_lb`'s fleet sweep.
//!
//! Beyond the latency table, this binary is a **regression guard** and
//! exits non-zero when any engine contract breaks:
//! * the batched scan must make exactly the decisions of the scalar loop
//!   (whole-simulation pick logs compared) and must not be slower;
//! * the argmin tree must replay all seven scenario presets
//!   decision-for-decision against the batched full scan;
//! * power-of-d must be bit-for-bit seed-deterministic;
//! * in full mode, the batched scan must be at least 2× faster per pick
//!   than the scalar loop at 256 servers (the tentpole acceptance bar).
//!
//! Usage: `exp_batch [--fast|--quick] [--requests N] [--seed N]`

use policysmith_bench::{write_json, ExpOpts};
use policysmith_dsl::{parse, Mode};
use policysmith_kbpf::CompiledPolicy;
use policysmith_lbsim::workload::{ArrivalProcess, BoundedPareto, WorkloadCfg};
use policysmith_lbsim::{
    scenario, sim, simulate, DispatchView, Dispatcher, ExprDispatcher, Scenario, ServerCfg,
};
use policysmith_serve::LatencyHistogram;
use std::time::Instant;

/// The canonical tree-eligible scoring rule (same mix the VM benchmarks
/// use): speed-normalized inflight plus queue pressure — event-driven
/// features only, so every engine including the argmin tree can run it.
const MIX: &str = "server.inflight * 1000 / server.speed + server.queue_len * 50";

/// Per-pick timing + decision log wrapper.
struct Instrumented<D> {
    inner: D,
    hist: LatencyHistogram,
    picks: Vec<usize>,
}

impl<D> Instrumented<D> {
    fn new(inner: D) -> Self {
        Instrumented { inner, hist: LatencyHistogram::new(), picks: Vec::new() }
    }
}

impl<D: Dispatcher> Dispatcher for Instrumented<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        let t0 = Instant::now();
        let p = self.inner.pick(view);
        self.hist.record(t0.elapsed().as_nanos() as u64);
        self.picks.push(p);
        p
    }
}

fn mix_policy() -> CompiledPolicy {
    CompiledPolicy::compile(&parse(MIX).unwrap(), Mode::Lb).expect("MIX compiles")
}

/// Same workload shape as `exp_lb::fleet_size_sweep`: uniform speed-4
/// fleet at ~72% offered load, seeded per size.
fn sweep_scenario(n_servers: usize, n_requests: usize) -> Scenario {
    Scenario {
        name: format!("lb/uniform-{n_servers}"),
        servers: (0..n_servers).map(|_| ServerCfg::new(4, 32)).collect(),
        workload: WorkloadCfg {
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 488.0 * n_servers as f64 },
            sizes: BoundedPareto::web_default(),
            n: n_requests,
        },
        seed: 0xF1EE7 ^ n_servers as u64,
    }
}

fn main() {
    let opts = ExpOpts::from_args();
    let fleets: &[usize] = if opts.fast { &[16, 64, 256] } else { &[16, 64, 256, 1024, 4096] };
    let n_requests = if opts.fast { 10_000 } else { 30_000 };
    let mut violations: Vec<String> = Vec::new();

    // -- fleet-size sweep: four engines on the same workload --
    println!("=== scan engines across fleet sizes (expr: {MIX}) ===");
    let mut fleet_rows = Vec::new();
    for &n in fleets {
        let sc = sweep_scenario(n, n_requests);
        let requests = sc.requests();
        println!("  {n} servers:");

        let engines: Vec<(&str, ExprDispatcher)> = vec![
            ("scalar", ExprDispatcher::scalar("ps-scalar", mix_policy())),
            ("batched", ExprDispatcher::new("ps-batched", mix_policy())),
            ("power-of-d", ExprDispatcher::power_of_d("ps-d4", mix_policy(), 4, opts.seed)),
            ("argmin-tree", ExprDispatcher::argmin_tree("ps-tree", mix_policy())),
        ];
        let mut rows = Vec::new();
        let mut logs: Vec<(&str, Vec<usize>)> = Vec::new();
        let mut mean_ns_of = std::collections::HashMap::new();
        for (label, engine) in engines {
            let mut w = Instrumented::new(engine);
            let m = sim::run(&sc.servers, &requests, &mut w);
            let h = &w.hist;
            let scored = w.inner.score_calls() as f64 / w.inner.picks().max(1) as f64;
            println!(
                "    {label:>12}: mean {:>7.0} ns  p50 {:>6} ns  p99 {:>7} ns  \
                 {:>7.2} score-calls/pick  slowdown {:.3}",
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                scored,
                m.mean_slowdown(),
            );
            if w.inner.first_error().is_some() {
                violations.push(format!("{label} latched a runtime fault at fleet {n}"));
            }
            mean_ns_of.insert(label, h.mean());
            rows.push(serde_json::json!({
                "name": label,
                "scan_kind": w.inner.scan_kind(),
                "mean_slowdown": m.mean_slowdown(),
                "picks": h.count(),
                "mean_ns": h.mean(),
                "p50_ns": h.quantile(0.50),
                "p99_ns": h.quantile(0.99),
                "p999_ns": h.quantile(0.999),
                "picks_per_sec": if h.mean() > 0.0 { 1e9 / h.mean() } else { 0.0 },
                "score_calls_per_pick": scored,
            }));
            logs.push((label, w.picks));
        }

        // guard: the batched scan is a pure reformulation of the scalar
        // loop — same decisions, and never slower
        let scalar_log = &logs.iter().find(|(l, _)| *l == "scalar").unwrap().1;
        let batched_log = &logs.iter().find(|(l, _)| *l == "batched").unwrap().1;
        if scalar_log != batched_log {
            violations.push(format!("batched and scalar engines diverged at fleet {n}"));
        }
        let (scalar_ns, batched_ns) = (mean_ns_of["scalar"], mean_ns_of["batched"]);
        if batched_ns > scalar_ns {
            violations.push(format!(
                "batched scan slower than scalar at fleet {n}: {batched_ns:.0} ns vs {scalar_ns:.0} ns"
            ));
        }
        if !opts.fast && n == 256 && batched_ns * 2.0 > scalar_ns {
            violations.push(format!(
                "batched scan under 2x speedup at 256 servers: {batched_ns:.0} ns vs {scalar_ns:.0} ns"
            ));
        }

        fleet_rows.push(serde_json::json!({
            "servers": n,
            "requests": n_requests,
            "offered_load": sc.offered_load(),
            "speedup_batched_over_scalar": if batched_ns > 0.0 { scalar_ns / batched_ns } else { 0.0 },
            "engines": rows,
        }));
    }

    // -- guard: argmin tree replays every preset decision-for-decision --
    println!("\n=== argmin-tree decision identity across presets ===");
    let mut preset_rows = Vec::new();
    for sc in scenario::all_presets() {
        let mut full = Instrumented::new(ExprDispatcher::new("ps-batched", mix_policy()));
        let mut tree = Instrumented::new(ExprDispatcher::argmin_tree("ps-tree", mix_policy()));
        let mf = simulate(&sc, &mut full);
        let mt = simulate(&sc, &mut tree);
        let identical = full.picks == tree.picks
            && mf.mean_slowdown().to_bits() == mt.mean_slowdown().to_bits();
        println!("  {:28} {:>7} decisions  identical: {identical}", sc.name, full.picks.len());
        if !identical {
            violations.push(format!("argmin tree diverged from the full scan on {}", sc.name));
        }
        preset_rows.push(serde_json::json!({
            "preset": sc.name,
            "decisions": full.picks.len(),
            "identical": identical,
        }));
    }

    // -- guard: power-of-d sampling is seed-deterministic --
    let sc = sweep_scenario(64, n_requests.min(10_000));
    let mut a = Instrumented::new(ExprDispatcher::power_of_d("ps-d4", mix_policy(), 4, opts.seed));
    let mut b = Instrumented::new(ExprDispatcher::power_of_d("ps-d4", mix_policy(), 4, opts.seed));
    simulate(&sc, &mut a);
    simulate(&sc, &mut b);
    if a.picks != b.picks {
        violations.push("power-of-d is not seed-deterministic".to_string());
    }

    write_json(
        "batch",
        &serde_json::json!({
            "expr": MIX,
            "fleet_sweep": fleet_rows,
            "argmin_tree_preset_identity": preset_rows,
            "power_of_d_seed_deterministic": a.picks == b.picks,
            "violations": violations,
        }),
    );

    if !violations.is_empty() {
        eprintln!("\nREGRESSION GUARD FAILED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("\nall engine contracts hold");
}
