//! LB-GEN: the load-balancing analogue of the cache study's Table 2 —
//! cross-scenario generalization. One policy is synthesized per scenario
//! preset (its *home* context), then every synthesized policy is evaluated
//! on every other scenario against the classical baselines (JSQ,
//! round-robin, least-loaded, …). The output matrix answers the §3.1
//! question for this domain: how far does a context-specialized heuristic
//! travel, and how much does the library of all of them (the PS-Oracle
//! row) buy an adaptation system?
//!
//! Usage: `exp_lb_generalization [--fast|--quick] [--seed N]`
//!
//! Writes `results/lb_generalization.json` (schema in `results/README.md`).

use policysmith_bench::{write_json, ExpOpts, ImprovementMatrix};
use policysmith_core::search::{run_search, SearchConfig};
use policysmith_core::studies::lb::LbStudy;
use policysmith_gen::{GenConfig, MockLlm};
use policysmith_lbsim::{lb_baseline_names, scenario, ExprDispatcher};

fn main() {
    let opts = ExpOpts::from_args();
    let cfg = if opts.fast {
        SearchConfig { rounds: 5, candidates_per_round: 10, ..SearchConfig::paper_cache() }
    } else {
        SearchConfig { rounds: 12, candidates_per_round: 20, ..SearchConfig::paper_cache() }
    };

    let presets = scenario::all_presets();
    let studies: Vec<LbStudy> = presets.iter().map(LbStudy::new).collect();
    let n_base = lb_baseline_names().len();

    // -- synthesize one policy per home context --
    let mut synthesized: Vec<(String, String, f64)> = Vec::new(); // (label, source, home score)
    for (i, study) in studies.iter().enumerate() {
        let label = format!("LB-{}", (b'A' + i as u8) as char);
        let mut llm = MockLlm::new(GenConfig::lb_defaults(
            opts.seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15),
        ));
        let outcome = run_search(study, &mut llm, &cfg);
        println!(
            "{label} (home {}): {:+.4} over RR   score(server, req) = {}",
            study.scenario().name,
            outcome.best.score,
            outcome.best.source
        );
        synthesized.push((label, outcome.best.source.clone(), outcome.best.score));
    }

    // -- the scenario × scenario matrix: every policy on every context --
    let mut policy_names: Vec<String> = lb_baseline_names().iter().map(|s| s.to_string()).collect();
    policy_names.extend(synthesized.iter().map(|(l, _, _)| l.clone()));
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for name in lb_baseline_names() {
        rows.push(studies.iter().map(|s| s.baseline_improvement(name)).collect());
    }
    for (label, source, _) in &synthesized {
        let expr = policysmith_dsl::parse(source).expect("stored source parses");
        rows.push(
            studies
                .iter()
                .map(|s| s.improvement(&mut ExprDispatcher::from_expr(label, &expr)))
                .collect(),
        );
    }

    let matrix = ImprovementMatrix {
        dataset: "lbsim".into(),
        trace_names: presets.iter().map(|s| s.name.clone()).collect(),
        policies: policy_names.clone(),
        rows,
    };

    println!("\n=== improvement over round-robin, policy × scenario ===");
    print!("{:16}", "policy");
    for sc in &presets {
        print!("{:>20}", sc.name.trim_start_matches("lb/"));
    }
    println!("{:>8}", "mean");
    for (p, name) in matrix.policies.iter().enumerate() {
        print!("{name:16}");
        for v in &matrix.rows[p] {
            print!("{:>19.1}%", v * 100.0);
        }
        println!("{:>7.1}%", matrix.mean(p) * 100.0);
    }

    // -- Table-2 statistics --
    let base_ixs: Vec<usize> = (0..n_base).collect();
    let synth_ixs: Vec<usize> = (n_base..matrix.policies.len()).collect();
    println!("\n=== generalization (Table-2 statistic) ===");
    let mut beats_all: Vec<(String, f64)> = Vec::new();
    for (i, (label, _, home)) in synthesized.iter().enumerate() {
        let p = n_base + i;
        let frac = matrix.beats_all_fraction(p, &base_ixs);
        let away: f64 =
            matrix.rows[p].iter().enumerate().filter(|&(t, _)| t != i).map(|(_, v)| v).sum::<f64>()
                / (presets.len() - 1) as f64;
        println!(
            "{label}: home {:+.1}%  mean-away {:+.1}%  beats all {} baselines on {:.0}% of scenarios",
            home * 100.0,
            away * 100.0,
            n_base,
            frac * 100.0
        );
        beats_all.push((label.clone(), frac));
    }
    let oracle = matrix.oracle(&synth_ixs);
    let oracle_mean: f64 = oracle.iter().sum::<f64>() / oracle.len() as f64;
    println!(
        "PS-Oracle (best stored policy per scenario — the library's value): mean {:+.1}%",
        oracle_mean * 100.0
    );

    write_json(
        "lb_generalization",
        &serde_json::json!({
            "scenarios": matrix.trace_names,
            "rr_mean_slowdown": studies.iter().map(|s| s.rr_slowdown()).collect::<Vec<_>>(),
            "policies": matrix.policies,
            "rows": matrix.rows,
            "synthesized": synthesized,
            "beats_all_fraction": beats_all,
            "oracle": oracle,
            "search": { "rounds": cfg.rounds, "candidates_per_round": cfg.candidates_per_round,
                        "seed": opts.seed, "fast": opts.fast },
        }),
    );
}
