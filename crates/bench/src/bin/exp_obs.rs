//! OBS: the observability layer's two proof obligations.
//!
//! 1. **Overhead** — the sharded telemetry must be cheap enough to leave
//!    on. The serve hot path is run with instrumentation enabled and
//!    disabled (`ServeConfig::instrument`), interleaved best-of-N so both
//!    arms see the same machine state, and the binary **fails by exit
//!    code** if the enabled arm's decision throughput falls below a bound
//!    relative to the disabled arm. Lands in `results/obs_overhead.json`.
//!
//! 2. **Lifecycle timeline** — a drift-injection serve run with a
//!    background re-synthesis is traced end to end: search round spans
//!    with their `CostLedger` deltas, the guard verdict, the publish, all
//!    sliced from the global trace log and dumped as a structured
//!    `policysmith.obs.timeline.v1` artifact (`results/obs_timeline.json`).
//!
//! Usage: `exp_obs [--quick] [--seed N]`

use policysmith_bench::{write_json, ExpOpts};
use policysmith_core::library::HeuristicLibrary;
use policysmith_core::search::SearchConfig;
use policysmith_core::studies::lb::LbStudy;
use policysmith_dsl::{parse, Mode};
use policysmith_gen::{GenConfig, MockLlm};
use policysmith_kbpf::CompiledPolicy;
use policysmith_lbsim::scenario;
use policysmith_obs::export::timeline_value;
use policysmith_obs::TraceKind;
use policysmith_serve::runtime::Resynth;
use policysmith_serve::{loadgen, serve_lb, ServeConfig};

const SERVE_POLICY: &str = "server.work_left + req.size * 1000 / server.speed";

fn compiled(src: &str) -> CompiledPolicy {
    CompiledPolicy::compile(&parse(src).unwrap(), Mode::Lb).unwrap()
}

fn main() {
    let opts = ExpOpts::from_args();
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let workers = hw.clamp(2, 4);

    // ---- part 1: instrumentation overhead on the serve hot path ---------
    let reps = if opts.fast { 4 } else { 20 };
    let rounds = if opts.fast { 3 } else { 7 };
    // quick mode runs on noisy shared CI runners; the full-run bound is
    // the honest one the acceptance gate uses
    let bound = if opts.fast { 0.75 } else { 0.90 };
    let base = scenario::uniform_fleet();
    let policy = compiled(SERVE_POLICY);

    println!("== obs overhead: {workers} workers, best of {rounds} interleaved rounds ==");
    let run = |instrument: bool, salt: u64| {
        let phases: Vec<_> = (0..reps)
            .map(|i| {
                if i == 0 {
                    base.clone()
                } else {
                    base.clone().with_seed(loadgen::mix(base.seed, salt.wrapping_add(i as u64)))
                }
            })
            .collect();
        let shards = loadgen::lb_shards(&phases, workers);
        let cfg = ServeConfig {
            workers,
            window: 1_000,
            latency_sample_every: 8,
            instrument,
            ..ServeConfig::default()
        };
        serve_lb(&shards, policy.clone(), &cfg, None::<Resynth<LbStudy>>)
    };

    let mut enabled_best = 0.0f64;
    let mut disabled_best = 0.0f64;
    let mut enabled_metrics = None;
    for round in 0..rounds {
        let on = run(true, opts.seed ^ round);
        let off = run(false, opts.seed ^ round);
        let (on_dps, off_dps) = (on.decisions_per_sec(), off.decisions_per_sec());
        println!("  round {round}: enabled {on_dps:>10.0} decisions/s, disabled {off_dps:>10.0}");
        if on_dps > enabled_best {
            enabled_best = on_dps;
            enabled_metrics = Some(on.metrics);
        }
        disabled_best = disabled_best.max(off_dps);
    }
    let ratio = enabled_best / disabled_best;
    let enabled_metrics = enabled_metrics.unwrap();
    println!(
        "  best: enabled {enabled_best:.0} vs disabled {disabled_best:.0} \
         → ratio {ratio:.4} (bound {bound})"
    );
    assert!(
        enabled_metrics.counter("serve.decisions") > 0,
        "the enabled arm must actually account decisions through the registry"
    );
    let lat = enabled_metrics.histogram("serve.decision_latency_ns").expect("latency hist");
    assert!(lat.count() > 0, "the enabled arm must sample latencies");

    // ---- part 2: policy-lifecycle timeline -------------------------------
    println!("\n== obs timeline: traced drift run (search spans → guard → publish) ==");
    let trace = policysmith_obs::trace::global();
    let mark = trace.seq();

    let drift_phases = loadgen::lb_drift_phases();
    let (healthy, onset) = (&drift_phases[0], &drift_phases[1]);
    let onset_reps = if opts.fast { 120 } else { 200 };
    let mut spec = vec![healthy.clone()];
    spec.extend((0..onset_reps).map(|i| {
        onset.clone().with_seed(loadgen::mix(onset.seed, 0xB0B0u64.wrapping_add(i as u64)))
    }));
    let drift_workers = workers.min(2);
    let shards = loadgen::lb_shards(&spec, drift_workers);
    let cfg = ServeConfig {
        workers: drift_workers,
        window: 500,
        latency_sample_every: 8,
        monitor_window: 12,
        monitor_tolerance: 2.0,
        ..ServeConfig::default()
    };
    let resynth = Resynth {
        context: onset.name.clone(),
        study: LbStudy::new(onset),
        generator: Box::new(MockLlm::new(GenConfig::lb_defaults(opts.seed ^ 0xF00D))),
        search: SearchConfig { rounds: 4, candidates_per_round: 10, ..SearchConfig::quick() }
            .pipelined(),
        library: HeuristicLibrary::new(),
    };
    let report = serve_lb(&shards, compiled("server.queue_len"), &cfg, Some(resynth));
    assert!(!report.adaptations.is_empty(), "the drift run must adapt so the timeline has a story");

    let events = trace.events_since(mark);
    let count = |pred: fn(&TraceKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count();
    let round_starts = count(|k| matches!(k, TraceKind::SearchRoundStart { .. }));
    let round_ends = count(|k| matches!(k, TraceKind::SearchRoundEnd { .. }));
    let dones = count(|k| matches!(k, TraceKind::SearchDone { .. }));
    let admits = count(|k| matches!(k, TraceKind::GuardAdmit { .. }));
    let publishes = count(|k| matches!(k, TraceKind::Publish { .. }));
    println!(
        "  {} events: {round_starts} round starts, {round_ends} round ends, {dones} searches, \
         {admits} guard admits, {publishes} publishes",
        events.len()
    );
    assert!(round_starts >= 1 && round_ends >= 1, "search rounds must be traced");
    assert_eq!(round_starts, round_ends, "every traced round start has an end");
    assert!(dones >= 1, "the finished search must be traced");
    assert!(admits >= 1, "the adapting guard verdict must be traced");
    assert_eq!(publishes, report.swaps.len(), "one publish event per swap record");

    write_json("obs_timeline", &timeline_value(&events));
    write_json(
        "obs_overhead",
        &serde_json::json!({
            "quick": opts.fast,
            "workers": workers,
            "reps_per_round": reps,
            "rounds": rounds,
            "enabled_decisions_per_sec": enabled_best,
            "disabled_decisions_per_sec": disabled_best,
            "overhead_ratio": ratio,
            "bound": bound,
            "metrics": enabled_metrics,
        }),
    );

    // the exit-code guard: instrumentation must stay within the bound
    assert!(
        ratio >= bound,
        "acceptance: instrumented serve throughput regressed beyond the bound \
         (enabled/disabled = {ratio:.4} < {bound})"
    );
    println!("\nobs overhead within bound; timeline artifact written.");
}
