//! CC-RANGE: reproduce the §5.0.3 behaviour-range measurement.
//!
//! "We evaluated the heuristics that compiled successfully on a 12 Mbps,
//! 20 ms delay emulated link. The resulting behaviors varied widely:
//! bandwidth utilizations ranged from 23% to 98%, and average queuing
//! delays spanned from 2 ms to 40 ms."
//!
//! Usage: `exp_cc_range [--fast] [--seed N]` — generates candidates,
//! verifies them, runs each verified program for 30 s (5 s with `--fast`)
//! on the paper link, and reports the utilization / queuing-delay spans
//! plus the classical baselines for reference.

use policysmith_bench::{write_json, ExpOpts};
use policysmith_cc::{baselines, check_candidate, evaluate, KbpfCc};
use policysmith_dsl::Mode;
use policysmith_gen::{GenConfig, Generator, MockLlm, Prompt};

fn main() {
    let opts = ExpOpts::from_args();
    let duration_us: u64 = if opts.fast { 5_000_000 } else { 30_000_000 };
    let n = 100;

    let mut llm = MockLlm::new(GenConfig::kernel_defaults(opts.seed));
    let prompt = Prompt::new(Mode::Kernel);
    let verified: Vec<_> =
        llm.generate(&prompt, n).iter().filter_map(|src| check_candidate(src).ok()).collect();
    println!(
        "=== §5.0.3 behaviour range: {} verified candidates, {}s runs ===",
        verified.len(),
        duration_us / 1_000_000
    );

    let mut rows = Vec::new();
    let mut utils = Vec::new();
    let mut qdelays = Vec::new();
    for c in &verified {
        let m = evaluate(Box::new(KbpfCc::new(c.clone())), duration_us);
        utils.push(m.utilization);
        qdelays.push(m.mean_qdelay_us / 1_000.0);
        rows.push(serde_json::json!({
            "source": c.source,
            "utilization": m.utilization,
            "mean_qdelay_ms": m.mean_qdelay_us / 1_000.0,
            "loss_events": m.loss_events,
        }));
    }
    let fmin = |v: &[f64]| v.iter().cloned().fold(f64::MAX, f64::min);
    let fmax = |v: &[f64]| v.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "bandwidth utilization : {:.0}% .. {:.0}%   (paper: 23% .. 98%)",
        fmin(&utils) * 100.0,
        fmax(&utils) * 100.0
    );
    println!(
        "avg queuing delay     : {:.1} ms .. {:.1} ms   (paper: 2 ms .. 40 ms)",
        fmin(&qdelays),
        fmax(&qdelays)
    );

    println!("\n-- classical baselines on the same link --");
    for cc in baselines::all_baselines() {
        let name = cc.name().to_string();
        let m = evaluate(cc, duration_us);
        println!(
            "{name:10} util {:5.1}%  qdelay {:5.1} ms  losses {}",
            m.utilization * 100.0,
            m.mean_qdelay_us / 1_000.0,
            m.loss_events
        );
    }

    write_json(
        "cc_range",
        &serde_json::json!({
            "verified": verified.len(),
            "duration_us": duration_us,
            "utilization_min": fmin(&utils),
            "utilization_max": fmax(&utils),
            "qdelay_ms_min": fmin(&qdelays),
            "qdelay_ms_max": fmax(&qdelays),
            "candidates": rows,
            "paper": { "util": [0.23, 0.98], "qdelay_ms": [2.0, 40.0] },
        }),
    );
}
