//! LB: the third-workload experiment — synthesize a dispatch policy per
//! scenario preset, sweep every preset with every baseline and every
//! synthesized policy, and report the cross-scenario improvement matrix
//! (the load-balancing analogue of Figure 2 / Table 2).
//!
//! Usage: `exp_lb [--fast] [--seed N]`

use policysmith_bench::{write_json, ExpOpts};
use policysmith_core::search::{run_search, SearchConfig};
use policysmith_core::studies::lb::LbStudy;
use policysmith_gen::{GenConfig, MockLlm};
use policysmith_lbsim::{lb_baseline_names, scenario, ExprDispatcher};

fn main() {
    let opts = ExpOpts::from_args();
    let cfg = if opts.fast {
        SearchConfig { rounds: 5, candidates_per_round: 10, ..SearchConfig::paper_cache() }
    } else {
        SearchConfig { rounds: 12, candidates_per_round: 20, ..SearchConfig::paper_cache() }
    };

    let presets = scenario::all_presets();
    let studies: Vec<LbStudy> = presets.iter().map(LbStudy::new).collect();

    // -- synthesize one policy per context --
    let mut synthesized: Vec<(String, String, f64)> = Vec::new(); // (label, source, home score)
    for (i, study) in studies.iter().enumerate() {
        let label = format!("LB-{}", (b'A' + i as u8) as char);
        let mut llm = MockLlm::new(GenConfig::lb_defaults(
            opts.seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15),
        ));
        let outcome = run_search(study, &mut llm, &cfg);
        println!(
            "{label} ({}): home improvement {:+.4}  [{} candidates]",
            study.scenario().name,
            outcome.best.score,
            outcome.all.len()
        );
        println!("     score(server, req) = {}", outcome.best.source);
        synthesized.push((label, outcome.best.source.clone(), outcome.best.score));
    }

    // -- improvement matrix: policies × scenarios --
    let mut policy_names: Vec<String> = lb_baseline_names().iter().map(|s| s.to_string()).collect();
    policy_names.extend(synthesized.iter().map(|(l, _, _)| l.clone()));

    let mut rows: Vec<Vec<f64>> = Vec::new();
    for name in lb_baseline_names() {
        rows.push(studies.iter().map(|s| s.baseline_improvement(name)).collect());
    }
    for (label, source, _) in &synthesized {
        let expr = policysmith_dsl::parse(source).expect("stored source parses");
        rows.push(
            studies
                .iter()
                .map(|s| {
                    let mut host = ExprDispatcher::from_expr(label, &expr);
                    s.improvement(&mut host)
                })
                .collect(),
        );
    }

    println!("\n=== improvement over round-robin, per scenario ===");
    print!("{:16}", "policy");
    for sc in &presets {
        print!("{:>18}", sc.name.trim_start_matches("lb/"));
    }
    println!();
    for (p, name) in policy_names.iter().enumerate() {
        print!("{name:16}");
        for v in &rows[p] {
            print!("{:>17.1}%", v * 100.0);
        }
        println!();
    }

    write_json(
        "lb",
        &serde_json::json!({
            "scenarios": presets.iter().map(|s| s.name.clone()).collect::<Vec<_>>(),
            "rr_mean_slowdown": studies.iter().map(|s| s.rr_slowdown()).collect::<Vec<_>>(),
            "policies": policy_names,
            "rows": rows,
            "synthesized": synthesized,
        }),
    );
}
