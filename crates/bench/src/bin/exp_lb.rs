//! LB: the third-workload experiment — synthesize a dispatch policy per
//! scenario preset, sweep every preset with every baseline and every
//! synthesized policy, and report the cross-scenario improvement matrix
//! (the load-balancing analogue of Figure 2 / Table 2). A second section
//! sweeps fleet sizes into the hundreds of servers and records
//! per-dispatch decision latency alongside quality — the scaling axis the
//! serving runtime (`exp_serve`) builds on.
//!
//! Usage: `exp_lb [--fast] [--seed N]`

use policysmith_bench::{write_json, ExpOpts};
use policysmith_core::search::{run_search, SearchConfig};
use policysmith_core::studies::lb::LbStudy;
use policysmith_gen::{GenConfig, MockLlm};
use policysmith_lbsim::workload::{ArrivalProcess, BoundedPareto, WorkloadCfg};
use policysmith_lbsim::{
    lb_baseline_names, scenario, sim, DispatchView, Dispatcher, ExprDispatcher, Scenario, ServerCfg,
};
use policysmith_serve::LatencyHistogram;
use std::time::Instant;

fn main() {
    let opts = ExpOpts::from_args();
    let cfg = if opts.fast {
        SearchConfig { rounds: 5, candidates_per_round: 10, ..SearchConfig::paper_cache() }
    } else {
        SearchConfig { rounds: 12, candidates_per_round: 20, ..SearchConfig::paper_cache() }
    };

    let presets = scenario::all_presets();
    let studies: Vec<LbStudy> = presets.iter().map(LbStudy::new).collect();

    // -- synthesize one policy per context --
    let mut synthesized: Vec<(String, String, f64)> = Vec::new(); // (label, source, home score)
    for (i, study) in studies.iter().enumerate() {
        let label = format!("LB-{}", (b'A' + i as u8) as char);
        let mut llm = MockLlm::new(GenConfig::lb_defaults(
            opts.seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15),
        ));
        let outcome = run_search(study, &mut llm, &cfg);
        println!(
            "{label} ({}): home improvement {:+.4}  [{} candidates]",
            study.scenario().name,
            outcome.best.score,
            outcome.all.len()
        );
        println!("     score(server, req) = {}", outcome.best.source);
        synthesized.push((label, outcome.best.source.clone(), outcome.best.score));
    }

    // -- improvement matrix: policies × scenarios --
    let mut policy_names: Vec<String> = lb_baseline_names().iter().map(|s| s.to_string()).collect();
    policy_names.extend(synthesized.iter().map(|(l, _, _)| l.clone()));

    let mut rows: Vec<Vec<f64>> = Vec::new();
    for name in lb_baseline_names() {
        rows.push(studies.iter().map(|s| s.baseline_improvement(name)).collect());
    }
    for (label, source, _) in &synthesized {
        let expr = policysmith_dsl::parse(source).expect("stored source parses");
        rows.push(
            studies
                .iter()
                .map(|s| {
                    let mut host = ExprDispatcher::from_expr(label, &expr);
                    s.improvement(&mut host)
                })
                .collect(),
        );
    }

    println!("\n=== improvement over round-robin, per scenario ===");
    print!("{:16}", "policy");
    for sc in &presets {
        print!("{:>18}", sc.name.trim_start_matches("lb/"));
    }
    println!();
    for (p, name) in policy_names.iter().enumerate() {
        print!("{name:16}");
        for v in &rows[p] {
            print!("{:>17.1}%", v * 100.0);
        }
        println!();
    }

    let fleet_sweep = fleet_size_sweep(&opts);

    write_json(
        "lb",
        &serde_json::json!({
            "scenarios": presets.iter().map(|s| s.name.clone()).collect::<Vec<_>>(),
            "rr_mean_slowdown": studies.iter().map(|s| s.rr_slowdown()).collect::<Vec<_>>(),
            "policies": policy_names,
            "rows": rows,
            "synthesized": synthesized,
            "fleet_sweep": fleet_sweep,
        }),
    );
}

/// Per-pick timing wrapper: the per-dispatch decision latency includes
/// everything a policy does per decision (for scoring policies, one VM
/// execution per server — O(fleet) by construction).
struct Timed<D> {
    inner: D,
    hist: LatencyHistogram,
}

impl<D: Dispatcher> Dispatcher for Timed<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        let t0 = Instant::now();
        let p = self.inner.pick(view);
        self.hist.record(t0.elapsed().as_nanos() as u64);
        p
    }
}

/// Sweep uniform fleets of 16/64/256 servers at ~72% offered load and
/// measure both quality (mean slowdown vs round-robin) and per-dispatch
/// decision latency for every classical baseline plus the canonical
/// compiled scoring policy. Closes the ROADMAP's "fleet sizes into the
/// hundreds of servers" bullet and gives `exp_serve` its baseline column.
fn fleet_size_sweep(opts: &ExpOpts) -> Vec<serde_json::Value> {
    const WORK_LEFT: &str = "server.work_left + req.size * 1000 / server.speed";
    let n_requests = if opts.fast { 10_000 } else { 30_000 };
    let mut out = Vec::new();
    println!("\n=== fleet-size sweep: per-dispatch latency at scale ===");
    for &n_servers in &[16usize, 64, 256] {
        // ~72% load: rate = 0.72 × (n × speed 4 × 1000 work-units/s) /
        // mean request size (≈ 5.9, bounded-Pareto web default)
        let sc = Scenario {
            name: format!("lb/uniform-{n_servers}"),
            servers: (0..n_servers).map(|_| ServerCfg::new(4, 32)).collect(),
            workload: WorkloadCfg {
                arrivals: ArrivalProcess::Poisson { rate_per_sec: 488.0 * n_servers as f64 },
                sizes: BoundedPareto::web_default(),
                n: n_requests,
            },
            seed: 0xF1EE7 ^ n_servers as u64,
        };
        let requests = sc.requests();
        let rr =
            sim::run(&sc.servers, &requests, &mut policysmith_lbsim::dispatch::RoundRobin::new());
        let rr_slowdown = rr.mean_slowdown();
        println!("  {n_servers} servers (rr mean slowdown {rr_slowdown:.3}):");

        let mut policies = Vec::new();
        let mut measure = |name: &str, d: &mut dyn Dispatcher, score_calls_per_pick: f64| {
            let mut timed = Timed { inner: d, hist: LatencyHistogram::new() };
            let m = sim::run(&sc.servers, &requests, &mut timed);
            let h = &timed.hist;
            println!(
                "    {name:>14}: slowdown {:>8.3}  mean {:>6.0} ns  p50 {:>6} ns  p99 {:>7} ns",
                m.mean_slowdown(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99)
            );
            policies.push(serde_json::json!({
                "name": name,
                "mean_slowdown": m.mean_slowdown(),
                "improvement_over_rr": (rr_slowdown - m.mean_slowdown()) / rr_slowdown.max(1e-9),
                "picks": h.count(),
                "mean_ns": h.mean(),
                "p50_ns": h.quantile(0.50),
                "p99_ns": h.quantile(0.99),
                "p999_ns": h.quantile(0.999),
                "picks_per_sec": if h.mean() > 0.0 { 1e9 / h.mean() } else { 0.0 },
                "score_calls_per_pick": score_calls_per_pick,
            }));
        };
        for name in lb_baseline_names() {
            // analytic scoring cost: state-blind policies score nothing,
            // power-of-two scores its two samples, full scans score n
            let scored = match *name {
                "round-robin" | "random" => 0.0,
                "power-of-two" => 2.0,
                _ => n_servers as f64,
            };
            let mut d = policysmith_lbsim::by_name(name).unwrap();
            measure(name, &mut d, scored);
        }
        let expr = policysmith_dsl::parse(WORK_LEFT).unwrap();
        let mut compiled = ExprDispatcher::from_expr("PS-work-left", &expr);
        measure("PS-work-left", &mut compiled, 0.0);
        // the expression host counts its actual VM executions — overwrite
        // the placeholder with the measured ratio
        let measured = compiled.score_calls() as f64 / compiled.picks().max(1) as f64;
        if let Some(serde_json::Value::Object(row)) = policies.last_mut() {
            if let Some(slot) = row.iter_mut().find(|(k, _)| k == "score_calls_per_pick") {
                slot.1 = serde_json::json!(measured);
            }
        }

        out.push(serde_json::json!({
            "servers": n_servers,
            "requests": n_requests,
            "offered_load": sc.offered_load(),
            "rr_mean_slowdown": rr_slowdown,
            "policies": policies,
        }));
    }
    out
}
