//! Serve: the online-serving experiment — sustained decision throughput
//! vs worker count, decision-latency percentiles, policy-adoption pause
//! distribution, and the drift-injection timeline showing a background
//! re-synthesis swapping a better policy in **without stopping serving**.
//!
//! Three sections land in `results/serve.json`:
//!
//! * `throughput` — open-loop lb dispatch decisions/sec at 1..=N workers
//!   (thread-confined fleets, one shared hot-swap cell), with p50/p99/p999
//!   decision latency from the HDR-style histogram. Each worker count is
//!   run twice — sharded SPSC telemetry (the default) and the legacy
//!   single-mpsc funnel (`ServeConfig::funnel`) — so the aggregation
//!   rewiring's throughput delta is measured in-run, not across commits;
//! * `drift` — a mid-run slow-node onset under a stale, speed-blind
//!   deployed policy (JSQ): the telemetry → monitor → library →
//!   `run_search` → guard → publish loop answers it in the background; the
//!   section records the full window timeline, the swap log, guard
//!   rejections, the adoption pauses, and the post-swap quality vs a
//!   freshly-searched offline policy;
//! * `no_drift_differential` — the serve-equals-batch check re-run in the
//!   bench harness (the proptest version lives in `crates/serve/tests`).
//!
//! Usage: `exp_serve [--quick] [--seed N]`

use policysmith_bench::{write_json, ExpOpts};
use policysmith_core::library::HeuristicLibrary;
use policysmith_core::search::{run_search, SearchConfig};
use policysmith_core::studies::lb::LbStudy;
use policysmith_dsl::{parse, Mode};
use policysmith_gen::{GenConfig, MockLlm};
use policysmith_kbpf::CompiledPolicy;
use policysmith_lbsim::{scenario, sim, ExprDispatcher, Scenario};
use policysmith_serve::runtime::Resynth;
use policysmith_serve::{loadgen, serve_lb, LatencyHistogram, ServeConfig, ServeReport};

/// The canonical compiled dispatch policy (exact least-work-left plus the
/// request's own demand) — a realistic hosted candidate for throughput
/// numbers.
const SERVE_POLICY: &str = "server.work_left + req.size * 1000 / server.speed";

fn compiled(src: &str) -> CompiledPolicy {
    CompiledPolicy::compile(&parse(src).unwrap(), Mode::Lb).unwrap()
}

fn no_resynth() -> Option<Resynth<LbStudy>> {
    None
}

/// Repeat a scenario `k` times with derived seeds: an arbitrarily long
/// open-loop stream of the same statistical context.
fn repeated(sc: &Scenario, k: usize, salt: u64) -> Vec<Scenario> {
    (0..k)
        .map(|i| {
            if i == 0 {
                sc.clone()
            } else {
                sc.clone().with_seed(loadgen::mix(sc.seed, salt.wrapping_add(i as u64)))
            }
        })
        .collect()
}

fn hist_json(h: &LatencyHistogram) -> serde_json::Value {
    let qs = h.quantiles(&[0.50, 0.99, 0.999]);
    serde_json::json!({
        "samples": h.count(),
        "mean_ns": h.mean(),
        "p50_ns": qs[0],
        "p99_ns": qs[1],
        "p999_ns": qs[2],
        "max_ns": h.max(),
    })
}

fn main() {
    let opts = ExpOpts::from_args();
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    // ---- section 1: throughput vs worker count --------------------------
    // sweep past the hardware threads a bit: oversubscription is part of
    // the scaling story (flat or declining there is the expected shape)
    let mut worker_counts: Vec<usize> =
        [1usize, 2, 4, 8, 16].into_iter().filter(|&w| w <= hw.max(4)).collect();
    if opts.fast {
        worker_counts = vec![1, worker_counts.into_iter().max().unwrap_or(1).min(4)];
        worker_counts.dedup();
    }
    // per-worker stream length: enough to dominate thread start/stop costs
    let reps = if opts.fast { 4 } else { 40 };
    let base = scenario::uniform_fleet();
    let policy = compiled(SERVE_POLICY);

    // interleaved best-of-N per arm: these runs are short enough that
    // scheduler noise swamps a single sample, so each worker count runs
    // (funnel, sharded) × rounds and keeps the best of each
    let ab_rounds = if opts.fast { 2 } else { 3 };
    println!(
        "== serve throughput ({} × 30k decisions per worker, sharded vs funnel, best of {ab_rounds}) ==",
        reps
    );
    let mut throughput = Vec::new();
    let mut best: Option<(usize, f64)> = None;
    let mut best_metrics: Option<serde_json::Value> = None;
    let mut funnel_best = 0.0f64;
    for &workers in &worker_counts {
        let run = |funnel: bool| {
            let phases = repeated(&base, reps, opts.seed);
            let shards = loadgen::lb_shards(&phases, workers);
            let cfg = ServeConfig {
                workers,
                window: 1_000,
                latency_sample_every: 8,
                funnel,
                ..ServeConfig::default()
            };
            serve_lb(&shards, policy.clone(), &cfg, no_resynth())
        };
        let mut report = None;
        let mut dps = 0.0f64;
        let mut funnel_dps = 0.0f64;
        for _ in 0..ab_rounds {
            funnel_dps = funnel_dps.max(run(true).decisions_per_sec());
            let r = run(false);
            if report.is_none() || r.decisions_per_sec() > dps {
                dps = r.decisions_per_sec();
                report = Some(r);
            }
        }
        let report = report.unwrap();
        funnel_best = funnel_best.max(funnel_dps);
        let lat = report.latency();
        let lq = report.latency_quantiles(&[0.50, 0.99, 0.999]);
        println!(
            "  {workers:>2} workers: {:>10.0} decisions/s (funnel {:>10.0}, {:+5.1}%)  \
             p50 {:>6} ns  p99 {:>6} ns  p999 {:>7} ns",
            dps,
            funnel_dps,
            (dps / funnel_dps - 1.0) * 100.0,
            lq[0],
            lq[1],
            lq[2]
        );
        if best.is_none_or(|(_, b)| dps > b) {
            best = Some((workers, dps));
            best_metrics = Some(serde_json::to_value(&report.metrics));
        }
        throughput.push(serde_json::json!({
            "workers": workers,
            "decisions": report.total_decisions(),
            "wall_seconds": report.wall_seconds,
            "decisions_per_sec": dps,
            "funnel_decisions_per_sec": funnel_dps,
            "latency": hist_json(&lat),
        }));
    }
    let (best_workers, best_dps) = best.unwrap();
    println!(
        "  best: {best_workers} workers at {best_dps:.0} decisions/s \
         (funnel best {funnel_best:.0}, sharded {:+.1}%)",
        (best_dps / funnel_best - 1.0) * 100.0
    );

    // ---- section 2: drift injection + background re-synthesis ----------
    println!("\n== drift injection (slow-node onset under a healthy-fleet policy) ==");
    let drift_phases = loadgen::lb_drift_phases();
    let (healthy, onset) = (&drift_phases[0], &drift_phases[1]);
    let search_cfg = if opts.fast {
        SearchConfig { rounds: 4, candidates_per_round: 10, ..SearchConfig::paper_cache() }
    } else {
        SearchConfig { rounds: 6, candidates_per_round: 12, ..SearchConfig::paper_cache() }
    }
    .pipelined();

    // deploy a policy that is fine on the healthy fleet but genuinely
    // stale after the onset: JSQ dispatches by queue length alone, so a
    // slowed node keeps receiving its full share — the §3.1 story of a
    // deployed heuristic limping when the context shifts. (A policy
    // synthesized for the healthy fleet turns out to transfer too well
    // here: the guard would — correctly — refuse to replace it.)
    let deployed_src = "server.queue_len";
    println!("  deployed for {}: JSQ (`{deployed_src}`) — speed-blind", healthy.name);

    // the offline yardstick: a fresh search for the drifted context with
    // the same budget the background controller gets, but a DIFFERENT
    // generator seed — recovery is compared against an independent
    // offline deployment, not against the controller's own answer
    let onset_study = LbStudy::new(onset);
    let mut offline_llm = MockLlm::new(GenConfig::lb_defaults(opts.seed ^ 0x0FF1));
    let offline = run_search(&onset_study, &mut offline_llm, &search_cfg).best;
    let offline_expr = parse(&offline.source).unwrap();
    let offline_batch_slowdown = {
        let m = sim::run(
            &onset.servers,
            &onset.requests(),
            &mut ExprDispatcher::from_expr("offline", &offline_expr),
        );
        m.mean_slowdown()
    };
    println!(
        "  offline fresh search for {}: {:+.2}% over RR (batch mean slowdown {:.4})",
        onset.name,
        offline.score * 100.0,
        offline_batch_slowdown
    );

    // serve: healthy phase, then an extended degraded regime so the
    // background search has traffic to swap under — the stream must
    // OUTLAST the search (open-loop serving runs at millions of
    // decisions/sec; the search needs O(seconds) of background CPU)
    let onset_reps = if opts.fast { 120 } else { 250 };
    let mut spec = vec![healthy.clone()];
    spec.extend(repeated(onset, onset_reps, opts.seed ^ 0xD41F7));
    let drift_workers = if opts.fast { 2 } else { best_workers.clamp(2, 8) };
    let shards = loadgen::lb_shards(&spec, drift_workers);
    let cfg = ServeConfig {
        workers: drift_workers,
        window: 500,
        latency_sample_every: 8,
        // wider + calmer than the detection minimum: the post-swap signal
        // of a hot scenario is noisy (occasional drop-penalty spikes), and
        // the stale policy's degradation is an order of magnitude anyway
        monitor_window: 12,
        monitor_tolerance: 2.0,
        ..ServeConfig::default()
    };
    let resynth = Resynth {
        context: onset.name.clone(),
        study: LbStudy::new(onset),
        generator: Box::new(MockLlm::new(GenConfig::lb_defaults(opts.seed ^ 0xF00D))),
        search: search_cfg,
        library: HeuristicLibrary::new(),
    };
    let report = serve_lb(&shards, compiled(deployed_src), &cfg, Some(resynth));

    // the like-for-like yardstick: the offline policy serving the SAME
    // sharded streams from the start (no drift response needed), scored
    // with the same tail statistic
    let offline_report = serve_lb(&shards, compiled(&offline.source), &cfg, no_resynth());
    let offline_tail = tail_quality(&offline_report, 0);
    summarize_drift(&report, offline_tail, offline_batch_slowdown, offline.score, opts.fast);

    // ---- section 3: serve-equals-batch (bench-side re-check) -----------
    let diff_ok = no_drift_differential(&base);
    println!(
        "\n== no-drift differential: serve == batch → {} ==",
        if diff_ok { "ok" } else { "MISMATCH" }
    );
    assert!(diff_ok, "no-drift serve run must equal the batch simulator");

    let drift_json =
        drift_section_json(&report, offline_tail, offline_batch_slowdown, offline.score);
    write_json(
        "serve",
        &serde_json::json!({
            "policy": SERVE_POLICY,
            "scenario": base.name,
            "hardware_threads": hw,
            "quick": opts.fast,
            "throughput": throughput,
            "best": { "workers": best_workers, "decisions_per_sec": best_dps },
            "telemetry": {
                "transport": "sharded-spsc",
                "sharded_best_decisions_per_sec": best_dps,
                "funnel_best_decisions_per_sec": funnel_best,
                "metrics": best_metrics.unwrap(),
            },
            "drift": drift_json,
            "no_drift_differential": { "ok": diff_ok },
        }),
    );

    if !opts.fast {
        assert!(
            best_dps >= 1_000_000.0,
            "acceptance: sustained aggregate throughput must reach 1M decisions/s (got {best_dps:.0})"
        );
        assert!(
            best_dps >= funnel_best * 0.95,
            "acceptance: sharded telemetry must not trail the mpsc funnel \
             (sharded {best_dps:.0} vs funnel {funnel_best:.0})"
        );
    }
}

fn summarize_drift(
    report: &ServeReport,
    offline_tail: f64,
    offline_batch_slowdown: f64,
    offline_score: f64,
    quick: bool,
) {
    let offered: u64 = report.workers.iter().map(|w| w.lb_metrics.as_ref().unwrap().offered).sum();
    assert_eq!(report.total_decisions(), offered, "zero dropped/blocked decision requests");
    println!(
        "  served {} decisions across {} workers; {} swaps, {} adaptations, {} rejections, {} suppressed re-triggers",
        report.total_decisions(),
        report.workers.len(),
        report.swaps.len(),
        report.adaptations.len(),
        report.rejections.len(),
        report.suppressed_triggers
    );
    for r in &report.rejections {
        println!(
            "    rejected for {}: {} [candidate {:+.4} vs incumbent {:+.4}] (`{}`)",
            r.context, r.reason, r.candidate_score, r.incumbent_score, r.source
        );
    }
    assert!(!report.adaptations.is_empty(), "the background controller must answer the drift");
    for a in &report.adaptations {
        println!(
            "    gen {}: {} for {} ({:+.2}% over RR) after {:.2}s of background work",
            a.generation,
            if a.resynthesized { "re-synthesized" } else { "library reuse" },
            a.context,
            a.score * 100.0,
            a.resynthesis_micros as f64 / 1e6
        );
    }
    let pauses = report.swap_pauses_ns();
    if !pauses.is_empty() {
        println!(
            "  adoption pauses: {} events, median {} ns, max {} ns",
            pauses.len(),
            pauses[pauses.len() / 2],
            pauses.last().unwrap()
        );
    }
    let last_gen = report.swaps.last().map(|s| s.generation).unwrap_or(0);
    let tail = tail_quality(report, last_gen);
    println!(
        "  post-swap tail slowdown {:.4} vs offline policy on the same streams {:.4} ({:+.1}%)",
        tail,
        offline_tail,
        (tail / offline_tail - 1.0) * 100.0
    );
    println!(
        "  (offline fresh search: {:+.2}% over RR, batch mean slowdown {:.4})",
        offline_score * 100.0,
        offline_batch_slowdown
    );
    if !quick {
        assert!(
            tail <= offline_tail * 1.05,
            "acceptance: post-swap quality within 5% of a freshly-searched offline policy \
             (serve tail {tail:.4} vs offline tail {offline_tail:.4})"
        );
    }
}

/// Mean quality signal over the settled tail: post-injection windows
/// served at generation `min_gen` or later, skipping the first half of
/// them (backlog from the stale-policy era drains through the early
/// post-swap windows).
fn tail_quality(report: &ServeReport, min_gen: u64) -> f64 {
    let post: Vec<&policysmith_serve::WindowSample> = report
        .windows
        .iter()
        .filter(|w| w.generation >= min_gen && w.phase > 0 && w.decisions > 0)
        .collect();
    if post.is_empty() {
        return f64::NAN; // the swap landed after serving ended
    }
    let tail = &post[post.len() / 2..];
    let weight: u64 = tail.iter().map(|w| w.decisions).sum();
    tail.iter().map(|w| w.signal * w.decisions as f64).sum::<f64>() / weight.max(1) as f64
}

fn drift_section_json(
    report: &ServeReport,
    offline_tail: f64,
    offline_batch_slowdown: f64,
    offline_score: f64,
) -> serde_json::Value {
    let pauses = report.swap_pauses_ns();
    // thin the timeline to a committable size, but always keep the
    // windows where a worker's serving generation changes (the swap
    // moments) and the early drift-detection region
    let stride = (report.windows.len() / 1200).max(1);
    let mut last_gen_by_worker: Vec<u64> = vec![u64::MAX; report.workers.len()];
    let timeline: Vec<serde_json::Value> = report
        .windows
        .iter()
        .enumerate()
        .filter(|(i, w)| {
            let swap_moment = last_gen_by_worker[w.worker] != w.generation;
            last_gen_by_worker[w.worker] = w.generation;
            swap_moment || i % stride == 0 || w.seq < 40
        })
        .map(|(_, w)| {
            // row-packed per `timeline_fields` to keep the artifact small
            serde_json::Value::Array(vec![
                serde_json::to_value(&w.worker),
                serde_json::to_value(&w.seq),
                serde_json::to_value(&w.phase),
                serde_json::to_value(&w.decisions),
                serde_json::to_value(&((w.signal * 1e4).round() / 1e4)),
                serde_json::to_value(&w.generation),
                serde_json::to_value(&w.at_micros),
            ])
        })
        .collect();
    serde_json::json!({
        "workers": report.workers.len(),
        "decisions": report.total_decisions(),
        "swaps": report.swaps.iter().map(|s| serde_json::json!({
            "generation": s.generation,
            "provenance": s.provenance,
            "at_micros": s.at_micros,
            "retire_backlog": s.retire_backlog,
        })).collect::<Vec<_>>(),
        "adaptations": report.adaptations.iter().map(|a| serde_json::json!({
            "generation": a.generation,
            "context": a.context,
            "resynthesized": a.resynthesized,
            "score": a.score,
            "source": a.source,
            "resynthesis_micros": a.resynthesis_micros,
            "retries": a.retries,
        })).collect::<Vec<_>>(),
        "rejections": report.rejections.iter().map(|r| serde_json::json!({
            "context": r.context,
            "source": r.source,
            "reason": r.reason,
            "candidate_score": r.candidate_score,
            "incumbent_score": r.incumbent_score,
            "rejection_micros": r.rejection_micros,
        })).collect::<Vec<_>>(),
        "quarantines": report.quarantines.iter().map(|q| serde_json::json!({
            "worker": q.worker,
            "generation": q.generation,
            "source": q.source,
            "fault": q.fault,
            "at_micros": q.at_micros,
        })).collect::<Vec<_>>(),
        "adoption_pauses_ns": {
            "count": pauses.len(),
            "median": pauses.get(pauses.len() / 2).copied().unwrap_or(0),
            "max": pauses.last().copied().unwrap_or(0),
        },
        "suppressed_triggers": report.suppressed_triggers,
        "post_swap_tail_slowdown": tail_quality(report, report.swaps.last().map(|s| s.generation).unwrap_or(0)),
        "offline_tail_slowdown": offline_tail,
        "offline_fresh_batch_slowdown": offline_batch_slowdown,
        "offline_fresh_score": offline_score,
        "timeline_fields": ["worker", "seq", "phase", "decisions", "signal", "generation", "at_micros"],
        "timeline": timeline,
    })
}

/// Single worker, no publishes: serve must equal the batch simulator.
fn no_drift_differential(sc: &Scenario) -> bool {
    let cfg = ServeConfig { workers: 1, record_decisions: true, ..ServeConfig::default() };
    let shards = loadgen::lb_shards(std::slice::from_ref(sc), 1);
    let report = serve_lb(&shards, compiled(SERVE_POLICY), &cfg, no_resynth());
    let batch = sim::run(
        &sc.servers,
        &sc.requests(),
        &mut ExprDispatcher::new("batch", compiled(SERVE_POLICY)),
    );
    report.workers[0].lb_metrics.as_ref().unwrap() == &batch
        && report.workers[0].decisions == batch.offered
}
