//! LST1: regenerate Listing 1 — run the w89-context search and print the
//! best evolved heuristic alongside the paper's literal Listing 1
//! (embedded as `PS-A(paper)`), comparing both on the home context.
//!
//! Usage: `exp_listing1 [--fast] [--requests N] [--seed N]`

use policysmith_bench::{write_json, ExpOpts};
use policysmith_cachesim::{paper_heuristic_a, LISTING1_SOURCE};
use policysmith_core::search::{run_search, Study};
use policysmith_core::studies::cache::CacheStudy;
use policysmith_gen::{GenConfig, MockLlm};
use policysmith_traces::cloudphysics;

fn main() {
    let opts = ExpOpts::from_args();
    let trace = cloudphysics().trace(89, opts.requests);
    let study = CacheStudy::new(&trace);

    println!("=== Listing 1 reproduction: context {} ===", trace.name);
    let mut llm = MockLlm::new(GenConfig::cache_defaults(opts.seed));
    let outcome = run_search(&study, &mut llm, &opts.search_cfg());

    println!("\n-- our evolved Heuristic A (best of {} candidates) --", outcome.all.len());
    println!("priority() = {}", outcome.best.source);
    println!("improvement over FIFO on {}: {:+.4}", trace.name, outcome.best.score);

    println!("\n-- the paper's literal Listing 1 (typed translation) --");
    println!("priority() = {LISTING1_SOURCE}");
    let paper_score = study.improvement(paper_heuristic_a());
    println!("improvement over FIFO on {}: {:+.4}", trace.name, paper_score);

    println!("\n-- seeds for reference --");
    for (name, src) in [("LRU seed", "obj.last_access"), ("LFU seed", "obj.count")] {
        let s = study.evaluate(&study.check(src).expect("seed compiles"));
        println!("{name}: {s:+.4}");
    }

    write_json(
        "listing1",
        &serde_json::json!({
            "context": trace.name,
            "evolved_source": outcome.best.source,
            "evolved_improvement": outcome.best.score,
            "paper_listing1_improvement": paper_score,
            "candidates": outcome.all.len(),
        }),
    );
}
