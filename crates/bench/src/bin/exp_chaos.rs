//! Chaos: the fault-tolerance harness — lb and cache serving run under a
//! battery of deterministic fault plans (flaky/dead generators, poisoned
//! library entries, externally-published faulting policies, telemetry
//! drops/duplicates/reordering, worker stalls, and all of it at once),
//! with the fault-tolerance invariants enforced **by exit code**:
//!
//! * **zero dropped decisions** — every offered request is decided under
//!   every fault mix, and no serving/background thread dies;
//! * **monotonic generations** — the swap log climbs strictly, and no
//!   worker ever serves a window at an older generation than it already
//!   reported;
//! * **no poisoned policy is ever (re-)deployed** — pre-poisoned library
//!   entries never reach the cell, and a quarantined source never appears
//!   in the publish audit trail after its quarantine;
//! * **bounded time-to-recover** — an externally-published faulting
//!   policy is quarantined and replaced through the safe-fallback chain
//!   within the recovery budget;
//! * **quality floor** — the settled tail of every plan stays within 15%
//!   of a run serving nothing but the domain's man-made baseline
//!   (JSQ / LRU): misbehavior may cost polish, never safety;
//! * **no-fault transparency** — an all-zero chaos spec is
//!   decision-for-decision identical to the plain serve path.
//!
//! Everything lands in `results/chaos.json`.
//!
//! Usage: `exp_chaos [--quick] [--seed N]`

use policysmith_bench::{write_json, ExpOpts};
use policysmith_core::library::{HeuristicLibrary, LibraryEntry, RetryPolicy};
use policysmith_core::search::SearchConfig;
use policysmith_core::studies::lb::LbStudy;
use policysmith_dsl::{parse, Mode};
use policysmith_gen::{FlakyConfig, FlakyGen, GenConfig, MockLlm};
use policysmith_kbpf::CompiledPolicy;
use policysmith_lbsim::scenario;
use policysmith_serve::chaos::{baseline_source, faulting_source};
use policysmith_serve::runtime::Resynth;
use policysmith_serve::{
    loadgen, serve_cache, serve_lb, ChaosSpec, ExternalPublish, FaultPlan, ServeConfig,
    ServeReport, TelemetryChaos, WorkerStall,
};

/// Recovery budget: external faulting publish → quarantine → fallback
/// publish, measured on the cell's clock.
const RECOVERY_BUDGET_MICROS: u64 = 2_000_000;
/// Quality floor: a plan's settled tail may be at most this factor worse
/// than the all-baseline reference run.
const QUALITY_FLOOR: f64 = 1.15;

/// A speed-aware stored heuristic (known-good in the onset context) the
/// outage plans fall back to.
const STORED_GOOD: &str = "server.inflight * 1000 / server.speed + server.queue_len * 50";

/// One plan = the chaos-layer fault mix plus the serving knobs that make
/// the mix bite (reuse bar, retry budget).
struct Plan {
    fault: FaultPlan,
    min_reuse_score: f64,
    retry: RetryPolicy,
}

impl Plan {
    fn new(fault: FaultPlan) -> Plan {
        Plan {
            fault,
            min_reuse_score: 0.0,
            retry: RetryPolicy {
                max_attempts: 6,
                backoff_base_ms: 1,
                backoff_cap_ms: 4,
                deadline_ms: 60_000,
            },
        }
    }
}

fn compiled(src: &str, mode: Mode) -> CompiledPolicy {
    CompiledPolicy::compile(&parse(src).unwrap(), mode).unwrap()
}

fn no_resynth() -> Option<Resynth<LbStudy>> {
    None
}

fn entry(context: &str, source: &str) -> LibraryEntry {
    LibraryEntry { context: context.into(), source: source.into(), score: 0.5 }
}

/// The lb plan battery: every fault class alone, then all at once.
fn lb_plans(seed: u64) -> Vec<Plan> {
    let bad = faulting_source(Mode::Lb);
    let mut plans = vec![Plan::new(FaultPlan::none(seed))];

    let mut p = Plan::new(FaultPlan {
        name: "flaky-generator".into(),
        spec: ChaosSpec { seed, ..ChaosSpec::default() },
        flaky_gen: Some(FlakyConfig {
            p_error: 0.5,
            p_garbage: 0.2,
            p_stall: 0.0,
            ..FlakyConfig::flaky(seed ^ 0xF1A)
        }),
        seed_library: Vec::new(),
    });
    p.retry.max_attempts = 8;
    plans.push(p);

    let mut p = Plan::new(FaultPlan {
        name: "generator-outage".into(),
        spec: ChaosSpec { seed, ..ChaosSpec::default() },
        flaky_gen: Some(FlakyConfig::outage(seed ^ 0xDEAD)),
        seed_library: vec![(entry("lb/earlier", STORED_GOOD), false)],
    });
    // the dead generator must not be bailed out by cheap reuse: force the
    // search (and therefore the watchdog + abandon fallback) to run
    p.min_reuse_score = f64::INFINITY;
    p.retry =
        RetryPolicy { max_attempts: 2, backoff_base_ms: 1, backoff_cap_ms: 2, deadline_ms: 60_000 };
    plans.push(p);

    plans.push(Plan::new(FaultPlan {
        name: "poisoned-library".into(),
        spec: ChaosSpec { seed, ..ChaosSpec::default() },
        flaky_gen: None,
        // a quarantine verdict carried over from an earlier run: the
        // poisoned entry must stay invisible however good its score looks
        seed_library: vec![
            (entry("lb/poisoned", bad), true),
            (entry("lb/earlier", STORED_GOOD), false),
        ],
    }));

    plans.push(Plan::new(FaultPlan {
        name: "external-fault".into(),
        spec: ChaosSpec {
            seed,
            external_publish: Some(ExternalPublish { after_windows: 2, source: bad.into() }),
            ..ChaosSpec::default()
        },
        flaky_gen: None,
        seed_library: Vec::new(),
    }));

    plans.push(Plan::new(FaultPlan {
        name: "telemetry-chaos".into(),
        spec: ChaosSpec {
            seed,
            telemetry: TelemetryChaos { p_drop: 0.25, p_duplicate: 0.25, p_reorder: 0.25 },
            ..ChaosSpec::default()
        },
        flaky_gen: None,
        seed_library: Vec::new(),
    }));

    plans.push(Plan::new(FaultPlan {
        name: "worker-stall".into(),
        spec: ChaosSpec {
            seed,
            worker_stall: Some(WorkerStall { every_decisions: 50_000, stall_micros: 200 }),
            ..ChaosSpec::default()
        },
        flaky_gen: None,
        seed_library: Vec::new(),
    }));

    let mut p = Plan::new(FaultPlan {
        name: "everything".into(),
        spec: ChaosSpec {
            seed,
            telemetry: TelemetryChaos { p_drop: 0.2, p_duplicate: 0.2, p_reorder: 0.2 },
            worker_stall: Some(WorkerStall { every_decisions: 50_000, stall_micros: 200 }),
            external_publish: Some(ExternalPublish { after_windows: 3, source: bad.into() }),
        },
        flaky_gen: Some(FlakyConfig {
            p_error: 0.4,
            p_garbage: 0.2,
            p_stall: 0.0,
            ..FlakyConfig::flaky(seed ^ 0xA11)
        }),
        seed_library: vec![
            (entry("lb/poisoned", bad), true),
            (entry("lb/earlier", STORED_GOOD), false),
        ],
    });
    p.retry.max_attempts = 8;
    plans.push(p);

    plans
}

fn library_from(seeds: &[(LibraryEntry, bool)]) -> HeuristicLibrary {
    let mut lib = HeuristicLibrary::new();
    for (e, poisoned) in seeds {
        lib.add(e.clone());
        if *poisoned {
            lib.poison(&e.source);
        }
    }
    lib
}

/// Settled-tail quality: weighted mean signal over the last half of the
/// non-empty windows (lb: mean slowdown, cache: miss ratio; lower is
/// better for both). `phase_min` restricts to post-onset windows for lb.
fn tail_signal(report: &ServeReport, phase_min: usize) -> f64 {
    let mut post: Vec<_> =
        report.windows.iter().filter(|w| w.phase >= phase_min && w.decisions > 0).collect();
    post.sort_by_key(|w| (w.worker, w.seq));
    if post.is_empty() {
        return f64::NAN;
    }
    let tail = &post[post.len() / 2..];
    let weight: u64 = tail.iter().map(|w| w.decisions).sum();
    tail.iter().map(|w| w.signal * w.decisions as f64).sum::<f64>() / weight.max(1) as f64
}

/// Swap log climbs strictly; no worker's window stream ever steps back a
/// generation.
fn generations_monotonic(report: &ServeReport) -> bool {
    if !report.swaps.windows(2).all(|p| p[0].generation < p[1].generation) {
        return false;
    }
    for w in 0..report.workers.len() {
        let mut windows: Vec<_> = report.windows.iter().filter(|s| s.worker == w).collect();
        windows.sort_by_key(|s| s.seq);
        if !windows.windows(2).all(|p| p[0].generation <= p[1].generation) {
            return false;
        }
    }
    true
}

/// The runtime never (re-)deploys a poisoned policy: pre-poisoned sources
/// never reach the cell, and quarantined sources never appear in the
/// publish trail after their first quarantine. Chaos-injected external
/// publishes are excluded — they ARE the injected fault (an operator
/// bypassing the guard), not a runtime decision; what matters is that the
/// runtime only ever answers them, never repeats them.
fn no_poisoned_redeploy(report: &ServeReport, preseeded: &[String]) -> bool {
    let injected: std::collections::BTreeSet<u64> = report
        .swaps
        .iter()
        .filter(|s| s.provenance.starts_with("external publish"))
        .map(|s| s.generation)
        .collect();
    let runtime_pubs: Vec<&(u64, String)> =
        report.published.iter().filter(|(g, _)| !injected.contains(g)).collect();
    if runtime_pubs.iter().any(|(_, s)| preseeded.iter().any(|p| p == s)) {
        return false;
    }
    for q in &report.quarantines {
        let first = report
            .quarantines
            .iter()
            .filter(|x| x.source == q.source)
            .map(|x| x.generation)
            .min()
            .unwrap_or(q.generation);
        if runtime_pubs.iter().any(|(g, s)| *s == q.source && *g > first) {
            return false;
        }
    }
    true
}

/// Micros from the external faulting publish to the quarantine-recovery
/// publish, on the cell's clock. `None` when the plan had no external
/// publish, or when a newer generation superseded the fault before the
/// quarantine was processed (nothing left to recover).
fn recovery_micros(report: &ServeReport) -> Option<u64> {
    let ext = report.swaps.iter().find(|s| s.provenance.starts_with("external publish"))?;
    let rec = report
        .swaps
        .iter()
        .find(|s| s.generation > ext.generation && s.provenance.contains("quarantine recovery"))?;
    Some(rec.at_micros.saturating_sub(ext.at_micros))
}

struct PlanOutcome {
    json: serde_json::Value,
}

/// Run one plan and enforce every invariant; returns the results row.
#[allow(clippy::too_many_arguments)]
fn check_plan(
    workload: &str,
    plan: &Plan,
    report: &ServeReport,
    offered: u64,
    baseline_tail: f64,
    phase_min: usize,
    expect_external_catch: bool,
) -> PlanOutcome {
    let name = &plan.fault.name;
    let preseeded: Vec<String> = plan
        .fault
        .seed_library
        .iter()
        .filter(|(_, poisoned)| *poisoned)
        .map(|(e, _)| e.source.clone())
        .collect();

    // 1. zero dropped decisions, no dead threads
    assert_eq!(
        report.total_decisions(),
        offered,
        "[{workload}/{name}] dropped decisions: served {} of {offered}",
        report.total_decisions()
    );
    assert!(
        report.failures.is_empty(),
        "[{workload}/{name}] thread failures: {:?}",
        report.failures
    );

    // 2. monotonic generations
    assert!(generations_monotonic(report), "[{workload}/{name}] generations went backwards");

    // 3. no poisoned policy ever (re-)deployed
    assert!(
        no_poisoned_redeploy(report, &preseeded),
        "[{workload}/{name}] a poisoned policy reached the cell: {:?}",
        report.published
    );

    // 4. bounded recovery (only judged when the plan injects a live fault)
    let rec = recovery_micros(report);
    if expect_external_catch {
        assert!(
            !report.quarantines.is_empty(),
            "[{workload}/{name}] the faulting policy was never caught"
        );
        match rec {
            Some(us) => assert!(
                us <= RECOVERY_BUDGET_MICROS,
                "[{workload}/{name}] recovery took {us} µs (budget {RECOVERY_BUDGET_MICROS})"
            ),
            None => {
                // acceptable only if some newer publish superseded the fault
                let ext_gen = report
                    .swaps
                    .iter()
                    .find(|s| s.provenance.starts_with("external publish"))
                    .map(|s| s.generation)
                    .unwrap_or(0);
                assert!(
                    report.swaps.last().map(|s| s.generation).unwrap_or(0) > ext_gen,
                    "[{workload}/{name}] faulting policy stayed live with no recovery"
                );
            }
        }
    }

    // 5. quality floor vs the all-baseline reference
    let tail = tail_signal(report, phase_min);
    assert!(
        tail.is_finite() && baseline_tail.is_finite(),
        "[{workload}/{name}] no settled tail to judge"
    );
    assert!(
        tail <= baseline_tail * QUALITY_FLOOR,
        "[{workload}/{name}] quality floor broken: tail {tail:.4} vs baseline {baseline_tail:.4}"
    );

    println!(
        "  [{workload}/{name}] ok: {} decisions, {} swaps, {} adaptations, {} rejections, {} quarantines, tail {:.4} (baseline {:.4}){}",
        report.total_decisions(),
        report.swaps.len(),
        report.adaptations.len(),
        report.rejections.len(),
        report.quarantines.len(),
        tail,
        baseline_tail,
        rec.map(|us| format!(", recovered in {} µs", us)).unwrap_or_default()
    );

    let st = report.chaos;
    PlanOutcome {
        json: serde_json::json!({
            "name": name,
            "workload": workload,
            "decisions": report.total_decisions(),
            "offered": offered,
            "swaps": report.swaps.iter().map(|s| serde_json::json!({
                "generation": s.generation,
                "provenance": s.provenance,
                "at_micros": s.at_micros,
            })).collect::<Vec<_>>(),
            "adaptations": report.adaptations.len(),
            "retries": report.adaptations.iter().map(|a| a.retries).sum::<u32>(),
            "rejections": report.rejections.iter().map(|r| serde_json::json!({
                "reason": r.reason,
                "source": r.source,
            })).collect::<Vec<_>>(),
            "quarantines": report.quarantines.iter().map(|q| serde_json::json!({
                "worker": q.worker,
                "generation": q.generation,
                "source": q.source,
                "fault": q.fault,
            })).collect::<Vec<_>>(),
            "published": report.published,
            "suppressed_triggers": report.suppressed_triggers,
            "telemetry_dropped": report.workers.iter().map(|w| w.telemetry_dropped).sum::<u64>(),
            "worker_quarantines": report.workers.iter().map(|w| w.quarantines).sum::<u64>(),
            "chaos": {
                "windows_dropped": st.windows_dropped,
                "windows_duplicated": st.windows_duplicated,
                "windows_reordered": st.windows_reordered,
                "external_publishes": st.external_publishes,
            },
            "tail_signal": tail,
            "baseline_tail_signal": baseline_tail,
            "recovery_micros": rec,
            "invariants": {
                "zero_dropped_decisions": true,
                "monotonic_generations": true,
                "no_poisoned_redeploy": true,
                "bounded_recovery": rec.map(|us| us <= RECOVERY_BUDGET_MICROS),
                "quality_floor": true,
            },
        }),
    }
}

/// All-zero chaos spec == the plain serve path, decision for decision.
fn decision_identity(seed: u64) -> bool {
    let sc = scenario::two_tier_fleet();
    let shards = loadgen::lb_shards(std::slice::from_ref(&sc), 1);
    let src = STORED_GOOD;
    let run = |chaos: Option<ChaosSpec>| {
        let cfg =
            ServeConfig { workers: 1, record_decisions: true, chaos, ..ServeConfig::default() };
        serve_lb(&shards, compiled(src, Mode::Lb), &cfg, no_resynth())
    };
    let plain = run(None);
    let chaotic = run(Some(ChaosSpec { seed, ..ChaosSpec::default() }));
    plain.workers[0].decisions_log == chaotic.workers[0].decisions_log
        && plain.workers[0].lb_metrics == chaotic.workers[0].lb_metrics
}

fn main() {
    let opts = ExpOpts::from_args();
    let workers = 2usize;

    // ---- no-fault transparency --------------------------------------
    let identity_ok = decision_identity(opts.seed ^ 0x1D);
    println!(
        "== no-fault chaos spec == plain serve path → {} ==",
        if identity_ok { "ok" } else { "MISMATCH" }
    );
    assert!(identity_ok, "an all-zero chaos spec must serve identical decisions");

    // ---- lb battery --------------------------------------------------
    println!("\n== lb serving under fault plans ==");
    let drift = loadgen::lb_drift_phases();
    let (healthy, onset) = (&drift[0], &drift[1]);
    let onset_reps = if opts.fast { 10 } else { 30 };
    let mut spec = vec![healthy.clone()];
    for i in 0..onset_reps {
        spec.push(
            onset.clone().with_seed(loadgen::mix(onset.seed, opts.seed ^ (0xCA05 + i as u64))),
        );
    }
    let shards = loadgen::lb_shards(&spec, workers);
    let lb_offered: u64 = shards.iter().flatten().map(|p| p.workload.n as u64).sum();
    let search_cfg =
        SearchConfig { rounds: 2, candidates_per_round: 6, ..SearchConfig::quick() }.pipelined();

    // the reference: the man-made baseline serving the same streams with
    // no adaptation and no chaos (JSQ is also the initial policy, so every
    // plan starts from the reference and may only climb or recover)
    let base_cfg = ServeConfig { workers, window: 500, ..ServeConfig::default() };
    let lb_baseline =
        serve_lb(&shards, compiled(baseline_source(Mode::Lb), Mode::Lb), &base_cfg, no_resynth());
    let lb_baseline_tail = tail_signal(&lb_baseline, 1);
    println!("  baseline (JSQ, no faults): tail slowdown {lb_baseline_tail:.4}");

    let mut rows = Vec::new();
    for plan in lb_plans(opts.seed) {
        let cfg = ServeConfig {
            workers,
            window: 500,
            min_reuse_score: plan.min_reuse_score,
            retry: plan.retry,
            chaos: Some(plan.fault.spec.clone()),
            ..ServeConfig::default()
        };
        let generator: Box<dyn policysmith_gen::Generator + Send> = match &plan.fault.flaky_gen {
            Some(fc) => Box::new(FlakyGen::new(
                MockLlm::new(GenConfig::lb_defaults(opts.seed ^ 0xF00D)),
                *fc,
            )),
            None => Box::new(MockLlm::new(GenConfig::lb_defaults(opts.seed ^ 0xF00D))),
        };
        let resynth = Resynth {
            context: onset.name.clone(),
            study: LbStudy::new(onset),
            generator,
            search: search_cfg,
            library: library_from(&plan.fault.seed_library),
        };
        let report =
            serve_lb(&shards, compiled(baseline_source(Mode::Lb), Mode::Lb), &cfg, Some(resynth));
        let expect_catch = plan.fault.spec.external_publish.is_some();
        rows.push(
            check_plan("lb", &plan, &report, lb_offered, lb_baseline_tail, 1, expect_catch).json,
        );
    }

    // ---- cache battery ----------------------------------------------
    println!("\n== cache serving under fault plans ==");
    let n = if opts.fast { 20_000 } else { 60_000 };
    if let Some(replay) = loadgen::CacheReplay::new("cloudphysics", 10, n) {
        let trace = replay.trace();
        let capacity = (policysmith_traces::footprint_bytes(&trace) / 10).max(1);
        let cache_shards = replay.shards(workers);
        let cache_offered: u64 = cache_shards.iter().map(|t| t.requests.len() as u64).sum();
        let good = "obj.count * 20 - obj.age / 300 - obj.size / 500";

        let cache_baseline = serve_cache(
            &cache_shards,
            capacity,
            compiled(baseline_source(Mode::Cache), Mode::Cache),
            &base_cfg,
            no_resynth(),
        );
        let cache_baseline_tail = tail_signal(&cache_baseline, 0);
        println!("  baseline (LRU, no faults): tail miss ratio {cache_baseline_tail:.4}");

        let cache_plans = vec![
            Plan::new(FaultPlan::none(opts.seed ^ 0xCC)),
            Plan::new(FaultPlan {
                name: "external-fault".into(),
                spec: ChaosSpec {
                    seed: opts.seed ^ 0xCC,
                    external_publish: Some(ExternalPublish {
                        after_windows: 2,
                        source: faulting_source(Mode::Cache).into(),
                    }),
                    ..ChaosSpec::default()
                },
                flaky_gen: None,
                seed_library: Vec::new(),
            }),
        ];
        for plan in cache_plans {
            let cfg = ServeConfig {
                workers,
                window: 256,
                chaos: Some(plan.fault.spec.clone()),
                ..ServeConfig::default()
            };
            let report = serve_cache(
                &cache_shards,
                capacity,
                compiled(good, Mode::Cache),
                &cfg,
                no_resynth(),
            );
            let expect_catch = plan.fault.spec.external_publish.is_some();
            rows.push(
                check_plan(
                    "cache",
                    &plan,
                    &report,
                    cache_offered,
                    cache_baseline_tail,
                    0,
                    expect_catch,
                )
                .json,
            );
        }
    } else {
        println!("  cloudphysics trace unavailable; cache battery skipped");
    }

    write_json(
        "chaos",
        &serde_json::json!({
            "quick": opts.fast,
            "seed": opts.seed,
            "recovery_budget_micros": RECOVERY_BUDGET_MICROS,
            "quality_floor": QUALITY_FLOOR,
            "no_fault_decision_identity": { "ok": identity_ok },
            "plans": rows,
        }),
    );
    println!("\nall fault plans passed every invariant");
}
