//! Shared machinery for the experiment binaries that regenerate every
//! table and figure of the paper (see DESIGN.md §3 for the index).

use policysmith_cachesim::policies;
use policysmith_core::search::{run_search, SearchConfig, SearchOutcome};
use policysmith_core::studies::cache::CacheStudy;
use policysmith_gen::{GenConfig, MockLlm};
use policysmith_traces::DatasetSpec;
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default requests per trace in experiments (CLI-overridable).
pub const DEFAULT_REQUESTS: usize = 60_000;

/// A tiny slice-backed [`FeatureEnv`](policysmith_dsl::FeatureEnv) for the
/// interpreter-vs-VM benchmarks: feature reads cost one short linear scan,
/// matching how the real hosts resolve features (a `match`, not a
/// hash map), so neither engine is handicapped by the test harness.
pub struct SliceEnv<'a>(pub &'a [(policysmith_dsl::Feature, i64)]);

impl policysmith_dsl::FeatureEnv for SliceEnv<'_> {
    fn feature(&self, f: policysmith_dsl::Feature) -> i64 {
        self.0.iter().find(|(g, _)| *g == f).map(|(_, v)| *v).unwrap_or(0)
    }
}

/// One interpreter-vs-VM benchmark workload: `(name, mode, source,
/// feature values)`.
pub type VmWorkload =
    (&'static str, policysmith_dsl::Mode, &'static str, &'static [(policysmith_dsl::Feature, i64)]);

/// The per-mode workloads shared by the `dsl_vm` criterion bench and the
/// `exp_dsl_vm` summary binary — ONE table so the two never measure
/// different expressions.
pub fn vm_workloads() -> [VmWorkload; 3] {
    use policysmith_dsl::{Feature, Mode};
    [
        (
            "cc",
            Mode::Kernel,
            "if(loss, max(cwnd >> 1, 2), \
             if(srtt > min_rtt + 10000, max(cwnd - 1, 2), \
                cwnd + max(acked / max(mss, 1), 1)))",
            &[
                (Feature::Cwnd, 40),
                (Feature::SrttUs, 50_000),
                (Feature::MinRttUs, 40_000),
                (Feature::AckedBytes, 1_500),
                (Feature::Mss, 1_500),
                (Feature::LossEvent, 0),
            ],
        ),
        (
            "cache",
            Mode::Cache,
            "if(hist.contains, hist.count * 20 + 100, 0) \
             + obj.count * 30 - obj.age / 300 - obj.size / 500 \
             + if(obj.size > sizes.p75, 0 - 50, 10)",
            &[
                (Feature::HistContains, 1),
                (Feature::HistCount, 4),
                (Feature::ObjCount, 7),
                (Feature::ObjAge, 12_000),
                (Feature::ObjSize, 900),
                (Feature::SizesPct(75), 700),
            ],
        ),
        (
            "lb",
            Mode::Lb,
            "server.inflight * 1000 / server.speed + server.queue_len * 50 \
             + server.work_left / 100 + req.size * 1000 / server.speed",
            &[
                (Feature::ServerInflight, 5),
                (Feature::ServerSpeed, 4),
                (Feature::ServerQueueLen, 3),
                (Feature::ServerWorkLeft, 12_000),
                (Feature::ReqSize, 7),
            ],
        ),
    ]
}

/// Common CLI flags shared by the experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct ExpOpts {
    pub requests: usize,
    pub fast: bool,
    pub threads: usize,
    pub seed: u64,
}

impl ExpOpts {
    /// Parse from `std::env::args` (supports `--fast` / its `--quick`
    /// alias, `--requests N`, `--seed N`).
    pub fn from_args() -> ExpOpts {
        let args: Vec<String> = std::env::args().collect();
        let mut opts = ExpOpts {
            requests: DEFAULT_REQUESTS,
            fast: false,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            seed: 42,
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--fast" | "--quick" => {
                    opts.fast = true;
                    opts.requests = opts.requests.min(20_000);
                }
                "--requests" => {
                    i += 1;
                    opts.requests = args[i].parse().expect("--requests N");
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args[i].parse().expect("--seed N");
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// Search configuration scaled to the opts.
    pub fn search_cfg(&self) -> SearchConfig {
        if self.fast {
            SearchConfig { rounds: 6, candidates_per_round: 12, ..SearchConfig::paper_cache() }
        } else {
            SearchConfig::paper_cache()
        }
    }
}

/// A synthesized heuristic with provenance (one per search context).
#[derive(Debug, Clone, Serialize)]
pub struct SynthesizedHeuristic {
    /// Label in the paper's convention (A–D for CloudPhysics, W–Z for MSR).
    pub label: String,
    /// Context trace name (e.g. `cloudphysics/w89`).
    pub context: String,
    pub source: String,
    /// Score (improvement over FIFO) in the home context.
    pub home_score: f64,
}

/// Run the §4.2.1 search on `contexts` of a dataset, producing labelled
/// heuristics (A–D / W–Z).
pub fn synthesize_for_dataset(
    ds: &DatasetSpec,
    contexts: &[usize],
    labels: &[&str],
    opts: &ExpOpts,
) -> Vec<(SynthesizedHeuristic, SearchOutcome)> {
    assert_eq!(contexts.len(), labels.len());
    contexts
        .iter()
        .zip(labels)
        .map(|(&idx, &label)| {
            let trace = ds.trace(idx, opts.requests);
            let study = CacheStudy::new(&trace);
            let mut llm = MockLlm::new(GenConfig::cache_defaults(
                opts.seed ^ (idx as u64).wrapping_mul(0x9e3779b97f4a7c15),
            ));
            let outcome = run_search(&study, &mut llm, &opts.search_cfg());
            (
                SynthesizedHeuristic {
                    label: label.to_string(),
                    context: trace.name.clone(),
                    source: outcome.best.source.clone(),
                    home_score: outcome.best.score,
                },
                outcome,
            )
        })
        .collect()
}

/// Improvement matrix: for every trace of the dataset, the miss-ratio
/// improvement over FIFO of each named policy (baselines + synthesized).
#[derive(Debug, Clone, Serialize)]
pub struct ImprovementMatrix {
    pub dataset: String,
    pub trace_names: Vec<String>,
    pub policies: Vec<String>,
    /// `rows[p][t]` = improvement of policy `p` on trace `t`.
    pub rows: Vec<Vec<f64>>,
}

impl ImprovementMatrix {
    /// Mean improvement of policy `p`.
    pub fn mean(&self, p: usize) -> f64 {
        self.rows[p].iter().sum::<f64>() / self.rows[p].len() as f64
    }

    /// Fraction of traces where policy `p` beats every policy in
    /// `baseline_ixs` (the Table-2 statistic).
    pub fn beats_all_fraction(&self, p: usize, baseline_ixs: &[usize]) -> f64 {
        let n = self.trace_names.len();
        let wins = (0..n)
            .filter(|&t| baseline_ixs.iter().all(|&b| self.rows[p][t] >= self.rows[b][t]))
            .count();
        wins as f64 / n as f64
    }

    /// Per-trace oracle over the given policy indices (§4.2.4's B-Oracle /
    /// PS-Oracle construction); returns its improvement vector.
    pub fn oracle(&self, ixs: &[usize]) -> Vec<f64> {
        (0..self.trace_names.len())
            .map(|t| ixs.iter().map(|&p| self.rows[p][t]).fold(f64::MIN, f64::max))
            .collect()
    }
}

/// Compute the improvement matrix for a dataset: the paper's 14 baselines
/// plus every synthesized heuristic. Parallel over traces.
pub fn improvement_matrix(
    ds: &DatasetSpec,
    synthesized: &[SynthesizedHeuristic],
    opts: &ExpOpts,
) -> ImprovementMatrix {
    let baseline_names: Vec<String> =
        policies::paper_baseline_names().iter().map(|s| s.to_string()).collect();
    let mut policy_names = baseline_names.clone();
    for h in synthesized {
        policy_names.push(h.label.clone());
    }

    let trace_ixs: Vec<usize> = ds.indices().collect();
    let n_traces = trace_ixs.len();
    let results = Mutex::new(vec![vec![0.0f64; n_traces]; policy_names.len()]);
    let names = Mutex::new(vec![String::new(); n_traces]);
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..opts.threads.clamp(1, n_traces) {
            scope.spawn(|| loop {
                let t = cursor.fetch_add(1, Ordering::Relaxed);
                if t >= n_traces {
                    break;
                }
                let trace = ds.trace(trace_ixs[t], opts.requests);
                let study = CacheStudy::new(&trace);
                let mut col = Vec::with_capacity(policy_names.len());
                for name in &baseline_names {
                    let p = policies::by_name(name).expect("known baseline");
                    col.push(study.improvement(p));
                }
                for h in synthesized {
                    let expr = policysmith_dsl::parse(&h.source).expect("stored source parses");
                    col.push(study.improvement(policysmith_cachesim::PriorityPolicy::from_expr(
                        &h.label, &expr,
                    )));
                }
                let mut rows = results.lock().unwrap();
                for (p, v) in col.into_iter().enumerate() {
                    rows[p][t] = v;
                }
                names.lock().unwrap()[t] = trace.name;
            });
        }
    });

    ImprovementMatrix {
        dataset: ds.name.to_string(),
        trace_names: names.into_inner().unwrap(),
        policies: policy_names,
        rows: results.into_inner().unwrap(),
    }
}

/// Write a JSON result artifact under `results/`.
///
/// Object-shaped artifacts get a self-describing `"obs"` key appended:
/// the ambient observability state (`policysmith.obs.ambient.v1` — trace
/// log counts, never wall-clock), so every result records what
/// instrumentation was live when it was produced without perturbing the
/// artifact's reproducible fields.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let _ = std::fs::create_dir_all("results");
    let path = format!("results/{name}.json");
    let mut tree = serde_json::to_value(value);
    if let serde::Value::Object(pairs) = &mut tree {
        if pairs.iter().all(|(k, _)| k != "obs") {
            pairs.push(("obs".to_string(), policysmith_obs::export::ambient_value()));
        }
    }
    match serde_json::to_string_pretty(&tree) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warn: could not write {path}: {e}");
            } else {
                println!("[results written to {path}]");
            }
        }
        Err(e) => eprintln!("warn: could not serialize {name}: {e}"),
    }
}

/// Five-number summary used by the Fig. 2 text rendering.
pub fn summarize(xs: &[f64]) -> (f64, f64, f64, f64, f64) {
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| v[((v.len() - 1) as f64 * p) as usize];
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    (q(0.0), q(0.25), mean, q(0.75), q(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_statistics() {
        let m = ImprovementMatrix {
            dataset: "test".into(),
            trace_names: vec!["t0".into(), "t1".into()],
            policies: vec!["base".into(), "synth".into()],
            rows: vec![vec![0.1, 0.3], vec![0.2, 0.25]],
        };
        assert!((m.mean(0) - 0.2).abs() < 1e-12);
        // synth beats base on trace 0 only → 50%
        assert!((m.beats_all_fraction(1, &[0]) - 0.5).abs() < 1e-12);
        assert_eq!(m.oracle(&[0, 1]), vec![0.2, 0.3]);
    }

    #[test]
    fn summary_is_ordered() {
        let (min, q1, mean, q3, max) = summarize(&[0.3, 0.1, 0.2, 0.5, 0.4]);
        assert!(min <= q1 && q1 <= q3 && q3 <= max);
        assert!((mean - 0.3).abs() < 1e-12);
    }
}
