//! Criterion: cache-policy throughput (requests/second), including the
//! PolicySmith template host vs. native baselines — the §4.1.2 overhead
//! question in numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use policysmith_cachesim::{paper_heuristic_a, policies, simulate};
use policysmith_traces::{generate, WorkloadParams};

fn bench_policies(c: &mut Criterion) {
    let trace = generate("bench", &WorkloadParams::default(), 7, 50_000);
    let cap = (policysmith_traces::footprint_bytes(&trace) / 10).max(1);
    let mut g = c.benchmark_group("cachesim");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for name in ["FIFO", "LRU", "GDSF", "SIEVE", "S3-FIFO", "LIRS", "LHD"] {
        g.bench_with_input(BenchmarkId::new("baseline", name), &name, |b, name| {
            b.iter(|| simulate(&trace, cap, policies::by_name(name).unwrap()));
        });
    }
    g.bench_function("template-host/listing1", |b| {
        b.iter(|| {
            let mut cache = policysmith_cachesim::Cache::new(cap, paper_heuristic_a());
            cache.run(&trace)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_policies
}
criterion_main!(benches);
