//! Criterion: one PolicySmith search round on a small cache context — the
//! end-to-end generate → check → evaluate cost.

use criterion::{criterion_group, criterion_main, Criterion};
use policysmith_core::search::{run_search, SearchConfig};
use policysmith_core::studies::cache::CacheStudy;
use policysmith_gen::{GenConfig, MockLlm};
use policysmith_traces::cloudphysics;

fn bench_search(c: &mut Criterion) {
    let trace = cloudphysics().trace(89, 10_000);
    let study = CacheStudy::new(&trace);
    c.bench_function("search/1-round-8-candidates-10k-trace", |b| {
        b.iter(|| {
            let mut llm = MockLlm::new(GenConfig::cache_defaults(1));
            let cfg = SearchConfig { rounds: 1, candidates_per_round: 8, ..SearchConfig::quick() };
            run_search(&study, &mut llm, &cfg)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_search
}
criterion_main!(benches);
