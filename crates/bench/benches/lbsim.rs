//! Criterion: load-balancer dispatch throughput — native baselines vs the
//! DSL scoring host, on the flash-crowd scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use policysmith_lbsim::{by_name, lb_baseline_names, scenario, sim, ExprDispatcher};

fn bench_dispatch(c: &mut Criterion) {
    let sc = scenario::flash_crowd();
    let reqs = sc.requests();
    let mut g = c.benchmark_group("lbsim");
    g.throughput(Throughput::Elements(reqs.len() as u64));
    for name in lb_baseline_names() {
        g.bench_with_input(BenchmarkId::new("baseline", name), name, |b, name| {
            b.iter(|| {
                let mut d = by_name(name).unwrap();
                sim::run(&sc.servers, &reqs, &mut d)
            });
        });
    }
    let expr =
        policysmith_dsl::parse("server.inflight * 1000 / server.speed + server.queue_len * 50")
            .unwrap();
    g.bench_function("template-host/normalized-load", |b| {
        b.iter(|| {
            let mut host = ExprDispatcher::new("bench", expr.clone());
            sim::run(&sc.servers, &reqs, &mut host)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dispatch
}
criterion_main!(benches);
