//! Criterion: load-balancer dispatch throughput — native baselines vs the
//! template host (compiled kbpf vs the interpreter oracle), on the
//! flash-crowd scenario, plus the isolated per-pick dispatch cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use policysmith_dsl::Mode;
use policysmith_kbpf::CompiledPolicy;
use policysmith_lbsim::dispatch::{DispatchView, Dispatcher, ServerView};
use policysmith_lbsim::{by_name, lb_baseline_names, scenario, sim, ExprDispatcher};

const SCORE_SRC: &str = "server.inflight * 1000 / server.speed + server.queue_len * 50";

fn bench_dispatch(c: &mut Criterion) {
    let sc = scenario::flash_crowd();
    let reqs = sc.requests();
    let expr = policysmith_dsl::parse(SCORE_SRC).unwrap();
    let policy = CompiledPolicy::compile(&expr, Mode::Lb).unwrap();

    let mut g = c.benchmark_group("lbsim");
    g.throughput(Throughput::Elements(reqs.len() as u64));
    for name in lb_baseline_names() {
        g.bench_with_input(BenchmarkId::new("baseline", name), name, |b, name| {
            b.iter(|| {
                let mut d = by_name(name).unwrap();
                sim::run(&sc.servers, &reqs, &mut d)
            });
        });
    }
    g.bench_function("template-host/compiled", |b| {
        b.iter(|| {
            let mut host = ExprDispatcher::new("bench", policy.clone());
            sim::run(&sc.servers, &reqs, &mut host)
        });
    });
    g.bench_function("template-host/interpreted", |b| {
        b.iter(|| {
            let mut host = ExprDispatcher::interpreted("bench", expr.clone());
            sim::run(&sc.servers, &reqs, &mut host)
        });
    });
    g.finish();

    // The isolated dispatch decision (the redesign's acceptance metric):
    // one pick over a 6-server view, compiled vs interpreted.
    let servers: Vec<ServerView> = (0..6)
        .map(|i| ServerView {
            queue_len: i,
            inflight: i + 1,
            speed: 1 + (i as u32 % 3) * 3,
            ewma_latency_us: 900 * i as u64,
            work_left_us: 2_000 * i as u64,
        })
        .collect();
    let view = DispatchView { now_us: 1_000, req_size: 7, servers: &servers, dirty: None };
    let mut g = c.benchmark_group("lb-dispatch");
    g.bench_function("pick/compiled", |b| {
        let mut host = ExprDispatcher::new("bench", policy.clone());
        b.iter(|| host.pick(&view))
    });
    g.bench_function("pick/interpreted", |b| {
        let mut host = ExprDispatcher::interpreted("bench", expr.clone());
        b.iter(|| host.pick(&view))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dispatch
}
criterion_main!(benches);
