//! Criterion: emulated-link event throughput (simulated seconds per
//! wall-second under a Reno flow on the paper link).

use criterion::{criterion_group, criterion_main, Criterion};
use policysmith_cc::{baselines::Reno, evaluate};

fn bench_netsim(c: &mut Criterion) {
    c.bench_function("netsim/reno-5s-paper-link", |b| {
        b.iter(|| evaluate(Box::new(Reno::new()), 5_000_000))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_netsim
}
criterion_main!(benches);
