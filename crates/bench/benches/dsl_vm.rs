//! Criterion: DSL interpreter vs compiled kbpf execution for all three
//! template modes (the per-decision cost every host pays), plus verifier
//! and compiler cost (the per-candidate Checker overhead).
//!
//! The workload table is shared with the `exp_dsl_vm` summary binary
//! (`policysmith_bench::vm_workloads`), so both measure the same thing.

use criterion::{criterion_group, criterion_main, Criterion};
use policysmith_bench::{vm_workloads, SliceEnv};
use policysmith_dsl::{eval, parse};
use policysmith_kbpf::{CompiledPolicy, SPILL_SLOTS};

fn bench_dsl_vm(c: &mut Criterion) {
    for (label, mode, src, values) in vm_workloads() {
        let env = SliceEnv(values);
        let expr = parse(src).unwrap();
        let policy = CompiledPolicy::compile(&expr, mode).unwrap();

        c.bench_function(&format!("dsl/interpret/{label}"), |b| {
            b.iter(|| eval(&expr, &env).unwrap())
        });
        c.bench_function(&format!("kbpf/execute/{label}"), |b| {
            // steady-state host shape: refill the reusable slab, run the VM
            let mut ctx = Vec::with_capacity(policy.layout().len());
            let mut map = vec![0i64; SPILL_SLOTS];
            b.iter(|| policy.run_with_env(&env, &mut ctx, &mut map).unwrap())
        });
    }

    // per-candidate Checker overhead on the cc expression
    let (_, mode, src, _) = vm_workloads()[0];
    let expr = parse(src).unwrap();
    c.bench_function("kbpf/compile+verify", |b| {
        b.iter(|| CompiledPolicy::compile(&expr, mode).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_dsl_vm
}
criterion_main!(benches);
