//! Criterion: DSL interpreter vs kbpf VM dispatch cost on a Listing-1-sized
//! expression, plus verifier cost (the per-candidate Checker overhead).

use criterion::{criterion_group, criterion_main, Criterion};
use policysmith_dsl::{env::MapEnv, eval, parse, Feature};
use policysmith_kbpf::{build_ctx, cc_verify_env, compile, execute, verify, SPILL_SLOTS};

fn bench_dsl_vm(c: &mut Criterion) {
    let src = "if(loss, max(cwnd >> 1, 2), \
               if(srtt > min_rtt + 10000, max(cwnd - 1, 2), \
                  cwnd + max(acked / max(mss, 1), 1)))";
    let expr = parse(src).unwrap();
    let env = MapEnv::new()
        .with(Feature::Cwnd, 40)
        .with(Feature::SrttUs, 50_000)
        .with(Feature::MinRttUs, 40_000)
        .with(Feature::AckedBytes, 1_500)
        .with(Feature::Mss, 1_500);
    let prog = compile(&expr).unwrap();
    let ctx = build_ctx(&env);

    c.bench_function("dsl/interpret", |b| b.iter(|| eval(&expr, &env).unwrap()));
    c.bench_function("kbpf/execute", |b| {
        let mut map = vec![0i64; SPILL_SLOTS];
        b.iter(|| execute(&prog, &ctx, &mut map).unwrap())
    });
    c.bench_function("kbpf/verify", |b| {
        let venv = cc_verify_env();
        b.iter(|| verify(&prog, &venv).unwrap())
    });
    c.bench_function("kbpf/compile", |b| b.iter(|| compile(&expr).unwrap()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_dsl_vm
}
criterion_main!(benches);
