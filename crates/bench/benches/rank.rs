//! Criterion: the cache host's rescore/evict cost in isolation — the
//! slab-plus-lazy-deletion heap vs the reference `BTreeSet` index, on the
//! op mix the priority host actually issues (mostly rescores of resident
//! objects, with an evict-min and a fresh insert every few accesses).
//! Future ranking changes get compared against this baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use policysmith_cachesim::rank::{BTreeRank, EvictionRank, HeapRank};

const RESIDENTS: u64 = 2_048;
const OPS: usize = 50_000;

/// Deterministic (id, score) op stream: multiplicative-hash ids over a
/// bounded universe (so rescores hit resident objects), varied scores.
fn op_stream() -> Vec<(u64, i64)> {
    (0..OPS)
        .map(|i| {
            let id = (i as u64).wrapping_mul(2654435761) % (RESIDENTS * 2);
            let score = ((i as i64).wrapping_mul(6364136223846793005) >> 13) % 100_000;
            (id, score)
        })
        .collect()
}

/// Replay the host's op mix: rescore; every 8th op also evict the minimum
/// and insert a fresh id — the miss path.
fn drive<R: EvictionRank>(mut rank: R, ops: &[(u64, i64)]) -> usize {
    for id in 0..RESIDENTS {
        rank.set(id, id as i64);
    }
    let mut next_id = RESIDENTS * 2;
    for (i, &(id, score)) in ops.iter().enumerate() {
        rank.set(id, score);
        if i % 8 == 7 {
            let (_, victim) = rank.peek_min().expect("non-empty");
            rank.remove(victim);
            rank.set(next_id, score ^ 0x5555);
            next_id += 1;
        }
    }
    rank.len()
}

fn bench_rank(c: &mut Criterion) {
    let ops = op_stream();
    let mut g = c.benchmark_group("rank");
    g.throughput(Throughput::Elements(OPS as u64));
    g.bench_with_input(BenchmarkId::new("host-ops", "heap"), &ops, |b, ops| {
        b.iter(|| drive(HeapRank::new(), ops));
    });
    g.bench_with_input(BenchmarkId::new("host-ops", "btree"), &ops, |b, ops| {
        b.iter(|| drive(BTreeRank::new(), ops));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rank
}
criterion_main!(benches);
