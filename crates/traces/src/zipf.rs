//! Zipfian rank sampler.
//!
//! Popularity skew is the single most policy-discriminating property of a
//! cache workload (high skew → frequency-biased policies win; flat →
//! recency wins), so the generator needs an exact, fast Zipf sampler.
//! Implementation: precomputed CDF with binary search — O(n) setup, O(log
//! n) per sample, deterministic for a given RNG stream.

use rand::RngExt;

/// Samples ranks `0..n` with probability proportional to `1 / (rank+1)^alpha`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `alpha >= 0`.
    ///
    /// `alpha = 0` degenerates to uniform; typical cache workloads fall in
    /// `0.6..1.3`.
    ///
    /// # Panics
    /// If `n == 0` or `alpha` is not finite and non-negative.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // guard against fp rounding at the tail
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Is the rank space empty? (Never true: `new` requires `n > 0`.)
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl RngExt) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 0.9);
        let total: f64 = (0..1000).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(100, 1.0);
        for k in 1..100 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
        // rank 0 gets 1/H_100 ≈ 0.192
        assert!((z.pmf(0) - 0.1927).abs() < 0.01);
    }

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(50, 0.0);
        for k in 0..50 {
            assert!((z.pmf(k) - 0.02).abs() < 1e-9);
        }
    }

    #[test]
    fn empirical_frequency_matches_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 20];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: empirical {emp:.4} vs pmf {:.4}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let z = Zipf::new(1000, 0.8);
        let a: Vec<usize> = (0..100).map(|_| z.sample(&mut StdRng::seed_from_u64(42))).collect();
        let b: Vec<usize> = (0..100).map(|_| z.sample(&mut StdRng::seed_from_u64(42))).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(5, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
