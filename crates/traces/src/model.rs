//! Trace data model: requests, traces, and object identity.
//!
//! A trace is a time-ordered request sequence, each naming an object, its
//! size in bytes, and the operation kind. The cache simulator treats reads
//! and writes identically (both reference the object); the kind is kept so
//! real MSR-style traces — which are write-heavy — import losslessly.

/// Operation kind of a block-I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    Read,
    Write,
}

/// One cache request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Virtual timestamp in microseconds since trace start (monotone
    /// non-decreasing).
    pub time_us: u64,
    /// Object identifier (block / LBA group).
    pub obj: u64,
    /// Object size in bytes (stable per object within a trace).
    pub size: u32,
    /// Read or write.
    pub op: OpKind,
}

/// A complete, ordered request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Human-readable identifier, e.g. `cloudphysics/w89`.
    pub name: String,
    /// Requests in time order.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Build a trace, asserting time-ordering in debug builds.
    pub fn new(name: impl Into<String>, requests: Vec<Request>) -> Self {
        debug_assert!(
            requests.windows(2).all(|w| w[0].time_us <= w[1].time_us),
            "trace must be time-ordered"
        );
        Trace { name: name.into(), requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Wall-clock span of the trace in microseconds.
    pub fn duration_us(&self) -> u64 {
        match (self.requests.first(), self.requests.last()) {
            (Some(a), Some(b)) => b.time_us - a.time_us,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: u64, obj: u64) -> Request {
        Request { time_us: t, obj, size: 4096, op: OpKind::Read }
    }

    #[test]
    fn trace_basics() {
        let t = Trace::new("t", vec![req(0, 1), req(10, 2), req(25, 1)]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.duration_us(), 25);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("e", vec![]);
        assert!(t.is_empty());
        assert_eq!(t.duration_us(), 0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    #[cfg(debug_assertions)]
    fn unordered_trace_asserts() {
        Trace::new("bad", vec![req(10, 1), req(5, 2)]);
    }
}
