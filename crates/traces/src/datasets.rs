//! The two synthetic datasets standing in for the paper's evaluation data
//! (substitution S2): a 105-trace **CloudPhysics-like** collection and a
//! 14-trace **MSR-like** collection.
//!
//! Each trace's [`WorkloadParams`] are drawn from a per-dataset
//! *meta-distribution*, deterministic in the trace index. This mirrors the
//! real datasets' key property for the paper's Table 2: traces within a
//! dataset share structure (so a heuristic tuned on one stays competitive
//! on many), while differing enough that no single baseline dominates.
//!
//! CloudPhysics \[61\] collected week-long traces from diverse customer VMs:
//! our meta-distribution spans skew-heavy database-ish volumes, scan-heavy
//! backup-ish volumes, and loop-heavy analytics-ish volumes. MSR \[40\] is 14
//! production servers with higher write fractions, stronger skew, and
//! larger working sets.

use crate::model::Trace;
use crate::synth::{generate, WorkloadParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A named family of synthetic traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Dataset name, used in trace names and seeds.
    pub name: &'static str,
    /// Number of traces in the dataset.
    pub count: usize,
    /// Seed namespace separating datasets.
    pub seed_base: u64,
}

/// CloudPhysics-like: 105 week-long VM block-I/O traces (paper §4.1.4).
pub const CLOUDPHYSICS: DatasetSpec =
    DatasetSpec { name: "cloudphysics", count: 105, seed_base: 0xC10D };

/// MSR-like: 14 production-server traces (paper §4.1.4).
pub const MSR: DatasetSpec = DatasetSpec { name: "msr", count: 14, seed_base: 0x035F };

impl DatasetSpec {
    /// Stable per-trace seed.
    fn seed(&self, idx: usize) -> u64 {
        self.seed_base
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(idx as u64)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9)
    }

    /// Parameters of trace `idx`, drawn from this dataset's
    /// meta-distribution.
    pub fn params(&self, idx: usize) -> WorkloadParams {
        assert!(idx < self.count, "{} has only {} traces", self.name, self.count);
        let mut rng = StdRng::seed_from_u64(self.seed(idx));
        match self.name {
            "cloudphysics" => cloudphysics_params(&mut rng),
            "msr" => msr_params(&mut rng),
            other => unreachable!("unknown dataset {other}"),
        }
    }

    /// Generate trace `idx` with `n` requests. Deterministic in
    /// `(self, idx, n)`.
    pub fn trace(&self, idx: usize, n: usize) -> Trace {
        let params = self.params(idx);
        let name = format!("{}/{}", self.name, self.trace_name(idx));
        generate(&name, &params, self.seed(idx) ^ 0x7ace, n)
    }

    /// Short name of trace `idx` (CloudPhysics traces are named `w00`…,
    /// matching the paper's `w89` convention; MSR traces use the real
    /// dataset's volume names).
    pub fn trace_name(&self, idx: usize) -> String {
        match self.name {
            "cloudphysics" => format!("w{idx:02}"),
            "msr" => MSR_NAMES[idx % MSR_NAMES.len()].to_string(),
            other => unreachable!("unknown dataset {other}"),
        }
    }

    /// All trace indices.
    pub fn indices(&self) -> std::ops::Range<usize> {
        0..self.count
    }
}

/// Volume names of the real MSR Cambridge dataset, for familiar output.
const MSR_NAMES: [&str; 14] = [
    "hm", "mds", "prn", "proj", "prxy", "rsrch", "src1", "src2", "stg", "ts", "usr", "wdev", "web",
    "mix",
];

/// Convenience accessor for the CloudPhysics-like dataset.
pub fn cloudphysics() -> DatasetSpec {
    CLOUDPHYSICS
}

/// Convenience accessor for the MSR-like dataset.
pub fn msr() -> DatasetSpec {
    MSR
}

fn cloudphysics_params(rng: &mut StdRng) -> WorkloadParams {
    // Four broad VM archetypes, then jitter within each. The mix is tuned
    // so that *different* baselines win on different traces (the paper's
    // premise) and frequency-aware policies (GDSF, S3-FIFO, SIEVE) lead on
    // a sizable share, matching Fig. 2a where GDSF has the best average.
    let archetype = rng.random_range(0..4u8);
    let mut p = WorkloadParams {
        objects: rng.random_range(8_000..35_000),
        zipf_alpha: rng.random_range(0.75..1.15),
        p_stack: rng.random_range(0.1..0.4),
        stack_geom_p: rng.random_range(0.02..0.1),
        p_scan_start: rng.random_range(0.0001..0.001),
        scan_len: (200, 2_000),
        p_loop_start: rng.random_range(0.00005..0.0005),
        loop_len: (100, 1_000),
        loop_laps: (2, 6),
        churn_interval: rng.random_range(30_000..100_000),
        churn_frac: rng.random_range(0.02..0.08),
        size_log_mu: rng.random_range(9.0..10.5), // 8 KiB .. 36 KiB
        size_log_sigma: rng.random_range(0.5..1.2),
        write_frac: rng.random_range(0.1..0.4),
        mean_iat_us: rng.random_range(1_000..5_000),
        diurnal: rng.random_range(0.2..0.7),
    };
    match archetype {
        0 => {
            // database-ish: heavy skew over a compact hot set, little
            // recency beyond what popularity induces — frequency wins.
            p.zipf_alpha = rng.random_range(1.0..1.3);
            p.objects = rng.random_range(6_000..20_000);
            p.p_stack = rng.random_range(0.02..0.12);
            p.p_scan_start *= 0.3;
            p.churn_frac = rng.random_range(0.01..0.04);
        }
        1 => {
            // backup/batch-ish: scan-heavy, shallow locality — scan
            // resistance wins.
            p.p_scan_start *= 4.0;
            p.scan_len = (1_000, 5_000);
            p.p_stack *= 0.5;
        }
        2 => {
            // analytics-ish: loop-heavy — LIRS-style reuse wins.
            p.p_loop_start *= 5.0;
            p.loop_len = (300, 2_000);
        }
        _ => {
            // interactive VM: strong short-term locality — recency wins.
            p.p_stack = rng.random_range(0.45..0.65);
            p.zipf_alpha = rng.random_range(0.7..0.95);
        }
    }
    p
}

fn msr_params(rng: &mut StdRng) -> WorkloadParams {
    // Production servers: stronger skew over compact hot sets, heavier
    // writes, more churn than the VM traces.
    WorkloadParams {
        objects: rng.random_range(10_000..45_000),
        zipf_alpha: rng.random_range(0.9..1.3),
        p_stack: rng.random_range(0.05..0.35),
        stack_geom_p: rng.random_range(0.03..0.12),
        p_scan_start: rng.random_range(0.0002..0.002),
        scan_len: (500, 4_000),
        p_loop_start: rng.random_range(0.00002..0.0002),
        loop_len: (200, 1_500),
        loop_laps: (2, 4),
        churn_interval: rng.random_range(20_000..60_000),
        churn_frac: rng.random_range(0.03..0.12),
        size_log_mu: rng.random_range(8.5..10.0),
        size_log_sigma: rng.random_range(0.6..1.4),
        write_frac: rng.random_range(0.3..0.7), // MSR is write-heavy
        mean_iat_us: rng.random_range(500..3_000),
        diurnal: rng.random_range(0.1..0.5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper() {
        assert_eq!(CLOUDPHYSICS.count, 105);
        assert_eq!(MSR.count, 14);
    }

    #[test]
    fn traces_deterministic_and_distinct() {
        let a = CLOUDPHYSICS.trace(89, 2_000);
        let b = CLOUDPHYSICS.trace(89, 2_000);
        assert_eq!(a, b);
        let c = CLOUDPHYSICS.trace(90, 2_000);
        assert_ne!(a.requests, c.requests);
        let d = MSR.trace(0, 2_000);
        assert_ne!(a.requests, d.requests);
    }

    #[test]
    fn names_follow_convention() {
        assert_eq!(CLOUDPHYSICS.trace_name(89), "w89");
        assert_eq!(CLOUDPHYSICS.trace(89, 10).name, "cloudphysics/w89");
        assert_eq!(MSR.trace_name(0), "hm");
        assert_eq!(MSR.trace(3, 10).name, "msr/proj");
    }

    #[test]
    #[should_panic(expected = "only 14 traces")]
    fn index_bounds_enforced() {
        MSR.params(14);
    }

    #[test]
    fn meta_distribution_varies_across_traces() {
        let alphas: Vec<f64> = (0..20).map(|i| CLOUDPHYSICS.params(i).zipf_alpha).collect();
        let min = alphas.iter().cloned().fold(f64::MAX, f64::min);
        let max = alphas.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.1, "alphas too uniform: {alphas:?}");
    }

    #[test]
    fn msr_is_write_heavier_than_cloudphysics() {
        let avg = |spec: &DatasetSpec, n: usize| -> f64 {
            (0..n).map(|i| spec.params(i).write_frac).sum::<f64>() / n as f64
        };
        assert!(avg(&MSR, 14) > avg(&CLOUDPHYSICS, 30));
    }
}
