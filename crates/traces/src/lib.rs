//! # policysmith-traces — workload substrate for the caching case study
//!
//! The paper evaluates on two real block-I/O datasets: **CloudPhysics**
//! (105 week-long VM traces, \[61\]) and **MSR Cambridge** (14 production
//! server traces, \[40\]). Neither ships with this repository, so this crate
//! provides (substitution S2 in DESIGN.md):
//!
//! * [`synth`] — a parameterized workload generator reproducing the
//!   structural axes that discriminate between eviction policies: Zipfian
//!   popularity, LRU-stack temporal locality, sequential scans, looping
//!   re-reads, popularity churn, object-size dispersion and diurnal arrival
//!   modulation;
//! * [`datasets`] — a 105-trace "CloudPhysics-like" and a 14-trace
//!   "MSR-like" dataset, each trace drawn deterministically from a
//!   per-dataset meta-distribution (traces within a dataset share
//!   structure, which is what makes the paper's Table 2 cross-trace
//!   generalization meaningful);
//! * [`analysis`] — footprint and working-set measurement (the evaluator
//!   sizes each cache at 10% of the trace footprint, §4.1.4);
//! * [`io`] — CSV import/export so users can run the framework on real
//!   traces.
//!
//! Everything is deterministic: the same `(dataset, index, request count)`
//! triple always yields the identical trace, bit for bit.

pub mod analysis;
pub mod datasets;
pub mod io;
pub mod model;
pub mod synth;
pub mod zipf;

pub use analysis::{footprint_bytes, unique_objects, TraceStats};
pub use datasets::{cloudphysics, msr, DatasetSpec};
pub use model::{OpKind, Request, Trace};
pub use synth::{generate, WorkloadParams};
pub use zipf::Zipf;
