//! Trace import/export in a simple CSV format.
//!
//! Format (one request per line, header required):
//!
//! ```csv
//! time_us,obj,size,op
//! 1000,42,4096,r
//! 1250,17,8192,w
//! ```
//!
//! This is the bridge to the *real* CloudPhysics/MSR datasets: users who
//! have them can convert to this CSV and point every experiment binary at a
//! directory of files instead of the synthetic datasets.

use crate::model::{OpKind, Request, Trace};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors arising from trace parsing.
#[derive(Debug)]
pub enum TraceIoError {
    Io(std::io::Error),
    /// Malformed line with its 1-based line number.
    Parse {
        line: usize,
        reason: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace io error: {e}"),
            TraceIoError::Parse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Serialize a trace as CSV.
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 24 + 32);
    out.push_str("time_us,obj,size,op\n");
    for r in &trace.requests {
        let op = match r.op {
            OpKind::Read => 'r',
            OpKind::Write => 'w',
        };
        let _ = writeln!(out, "{},{},{},{}", r.time_us, r.obj, r.size, op);
    }
    out
}

/// Write a trace to `path` as CSV.
pub fn write_csv(trace: &Trace, path: &Path) -> Result<(), TraceIoError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_csv(trace).as_bytes())?;
    Ok(())
}

/// Parse a trace from any reader. `name` becomes the trace name.
pub fn read_csv(name: &str, reader: impl Read) -> Result<Trace, TraceIoError> {
    let reader = BufReader::new(reader);
    let mut requests = Vec::new();
    let mut lines = reader.lines().enumerate();

    // header
    match lines.next() {
        Some((_, Ok(h))) if h.trim() == "time_us,obj,size,op" => {}
        Some((_, Ok(h))) => {
            return Err(TraceIoError::Parse {
                line: 1,
                reason: format!("bad header `{h}`, expected `time_us,obj,size,op`"),
            })
        }
        Some((_, Err(e))) => return Err(e.into()),
        None => return Err(TraceIoError::Parse { line: 1, reason: "empty file".into() }),
    }

    let mut prev_time = 0u64;
    for (i, line) in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let parse = |s: Option<&str>, what: &str| -> Result<String, TraceIoError> {
            s.map(str::to_owned).ok_or_else(|| TraceIoError::Parse {
                line: i + 1,
                reason: format!("missing field `{what}`"),
            })
        };
        let time_us: u64 = parse(parts.next(), "time_us")?
            .parse()
            .map_err(|e| TraceIoError::Parse { line: i + 1, reason: format!("time_us: {e}") })?;
        let obj: u64 = parse(parts.next(), "obj")?
            .parse()
            .map_err(|e| TraceIoError::Parse { line: i + 1, reason: format!("obj: {e}") })?;
        let size: u32 = parse(parts.next(), "size")?
            .parse()
            .map_err(|e| TraceIoError::Parse { line: i + 1, reason: format!("size: {e}") })?;
        let op = match parse(parts.next(), "op")?.as_str() {
            "r" | "R" => OpKind::Read,
            "w" | "W" => OpKind::Write,
            other => {
                return Err(TraceIoError::Parse {
                    line: i + 1,
                    reason: format!("op must be r/w, got `{other}`"),
                })
            }
        };
        if time_us < prev_time {
            return Err(TraceIoError::Parse {
                line: i + 1,
                reason: format!("time goes backwards ({time_us} < {prev_time})"),
            });
        }
        prev_time = time_us;
        requests.push(Request { time_us, obj, size, op });
    }
    Ok(Trace::new(name, requests))
}

/// Read a trace from a CSV file; the file stem becomes the trace name.
pub fn read_csv_file(path: &Path) -> Result<Trace, TraceIoError> {
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace").to_string();
    let f = std::fs::File::open(path)?;
    read_csv(&name, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, WorkloadParams};

    #[test]
    fn roundtrip() {
        let t = generate("rt", &WorkloadParams::default(), 9, 2_000);
        let csv = to_csv(&t);
        let back = read_csv("rt", csv.as_bytes()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_csv("x", "time,obj\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn rejects_bad_fields() {
        let err = read_csv("x", "time_us,obj,size,op\nabc,1,2,r\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("time_us"));
        let err = read_csv("x", "time_us,obj,size,op\n1,1,2,x\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("op must be r/w"));
        let err = read_csv("x", "time_us,obj,size,op\n1,1,2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }

    #[test]
    fn rejects_time_regression() {
        let err = read_csv("x", "time_us,obj,size,op\n10,1,2,r\n5,1,2,r\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("backwards"));
    }

    #[test]
    fn skips_blank_lines_and_empty_file_is_error() {
        let t = read_csv("x", "time_us,obj,size,op\n\n1,2,3,r\n\n".as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
        assert!(read_csv("x", "".as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("policysmith_trace_io_test.csv");
        let t = generate("policysmith_trace_io_test", &WorkloadParams::default(), 10, 500);
        write_csv(&t, &path).unwrap();
        let back = read_csv_file(&path).unwrap();
        assert_eq!(t, back);
        let _ = std::fs::remove_file(&path);
    }
}
