//! The synthetic workload generator.
//!
//! A single request stream is produced by a small state machine mixing the
//! access motifs the caching literature uses to characterize block-I/O
//! workloads (and which the paper's §2 cites as the reason "no single
//! heuristic performs well across all contexts"):
//!
//! * **Popularity draws** — Zipfian over a rotating popular set. High
//!   `zipf_alpha` favors frequency-biased policies (LFU, GDSF).
//! * **Stack draws** — re-reference a recently-touched object at a
//!   geometric stack depth. High `p_stack` favors recency (LRU, LIRS).
//! * **Scans** — long sequential runs over fresh, never-to-be-reused
//!   objects ("scan workloads" in CACHEUS terms). Punish plain LRU,
//!   reward scan-resistant designs (SIEVE, S3-FIFO, SR-LFU).
//! * **Loops** — bounded ranges re-read for several laps, the classic
//!   LIRS-friendly pattern.
//! * **Churn** — periodic replacement of a fraction of the popular set with
//!   fresh objects ("churn workloads"), rewarding fast-adapting policies.
//! * **Sizes** — lognormal per object, deterministic in the object id, so
//!   size-aware policies (GDSF) have signal to exploit.
//! * **Diurnal arrival modulation** — sinusoidal inter-arrival scaling;
//!   affects timestamps (and thus age-based features), not the reference
//!   string.
//!
//! The generator is pure: `(params, seed, n)` fully determines the output.

use crate::model::{OpKind, Request, Trace};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// Knobs for one synthetic trace. See module docs for the effect of each.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Size of the popular object universe.
    pub objects: usize,
    /// Zipf exponent over the popular universe.
    pub zipf_alpha: f64,
    /// Probability that a request re-references a recent object.
    pub p_stack: f64,
    /// Geometric parameter for the stack-depth draw (higher = shallower).
    pub stack_geom_p: f64,
    /// Per-request probability of starting a sequential scan.
    pub p_scan_start: f64,
    /// Scan length range (requests).
    pub scan_len: (usize, usize),
    /// Per-request probability of starting a looping re-read phase.
    pub p_loop_start: f64,
    /// Loop range length (objects).
    pub loop_len: (usize, usize),
    /// Number of laps over the loop range.
    pub loop_laps: (usize, usize),
    /// Rotate part of the popular set every this many requests (0 = never).
    pub churn_interval: usize,
    /// Fraction of the popular set replaced per churn event.
    pub churn_frac: f64,
    /// ln(mean object size in bytes).
    pub size_log_mu: f64,
    /// Lognormal sigma of object sizes.
    pub size_log_sigma: f64,
    /// Fraction of write requests.
    pub write_frac: f64,
    /// Mean inter-arrival time, µs.
    pub mean_iat_us: u64,
    /// Amplitude (0..1) of the diurnal arrival-rate modulation.
    pub diurnal: f64,
}

impl Default for WorkloadParams {
    /// A mixed workload with moderate skew and locality — a reasonable
    /// stand-in for a "typical" VM volume.
    fn default() -> Self {
        WorkloadParams {
            objects: 10_000,
            zipf_alpha: 1.0,
            p_stack: 0.45,
            stack_geom_p: 0.05,
            p_scan_start: 0.0003,
            scan_len: (150, 1_200),
            p_loop_start: 0.0002,
            loop_len: (100, 800),
            loop_laps: (2, 5),
            churn_interval: 50_000,
            churn_frac: 0.05,
            size_log_mu: 9.6, // ≈ 15 KiB
            size_log_sigma: 0.8,
            write_frac: 0.2,
            mean_iat_us: 2_000,
            diurnal: 0.4,
        }
    }
}

/// Bound on generated object sizes.
const MIN_SIZE: u32 = 512;
const MAX_SIZE: u32 = 4 << 20;

/// Deterministic per-object size: lognormal driven by a hash of the id.
/// Stable across traces so that re-appearing ids keep their size.
pub fn object_size(obj: u64, log_mu: f64, log_sigma: f64) -> u32 {
    // SplitMix64 twice for two independent uniforms.
    let u1 = splitmix(obj ^ 0x9e37_79b9_7f4a_7c15) as f64 / u64::MAX as f64;
    let u2 = splitmix(obj.wrapping_mul(0xbf58_476d_1ce4_e5b9)) as f64 / u64::MAX as f64;
    // Box–Muller; clamp u1 away from 0.
    let u1 = u1.max(1e-12);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let bytes = (log_mu + log_sigma * z).exp();
    (bytes as u64).clamp(MIN_SIZE as u64, MAX_SIZE as u64) as u32
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Phase of the generator state machine.
enum Phase {
    Normal,
    Scan { next_obj: u64, remaining: usize },
    Loop { start: u64, len: u64, pos: u64, laps_left: usize },
}

/// Generate `n` requests with the given parameters and seed.
pub fn generate(name: &str, params: &WorkloadParams, seed: u64, n: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(params.objects.max(1), params.zipf_alpha);

    // rank -> object id mapping; churn replaces entries with fresh ids.
    let mut id_of_rank: Vec<u64> = (0..params.objects as u64).collect();
    let mut next_fresh: u64 = params.objects as u64;

    // approximate LRU stack of recently referenced objects
    let mut recent: VecDeque<u64> = VecDeque::with_capacity(512);

    let mut phase = Phase::Normal;
    let mut now_us: u64 = 0;
    let day_us = 86_400_000_000.0f64;
    let mut requests = Vec::with_capacity(n);

    for i in 0..n {
        // -- churn: rotate part of the popular set --
        if params.churn_interval > 0
            && i > 0
            && i % params.churn_interval == 0
            && params.churn_frac > 0.0
        {
            let k = ((params.objects as f64) * params.churn_frac) as usize;
            for _ in 0..k {
                let r = rng.random_range(0..id_of_rank.len());
                id_of_rank[r] = next_fresh;
                next_fresh += 1;
            }
        }

        // -- pick the object --
        let obj = match &mut phase {
            Phase::Normal => {
                if rng.random_bool(params.p_scan_start) {
                    let len = rng.random_range(params.scan_len.0..=params.scan_len.1);
                    let start = next_fresh;
                    next_fresh += len as u64;
                    phase = Phase::Scan { next_obj: start, remaining: len };
                    start
                } else if rng.random_bool(params.p_loop_start) {
                    let len = rng.random_range(params.loop_len.0..=params.loop_len.1) as u64;
                    let laps = rng.random_range(params.loop_laps.0..=params.loop_laps.1);
                    let start = next_fresh;
                    next_fresh += len;
                    phase = Phase::Loop { start, len, pos: 0, laps_left: laps };
                    start
                } else if !recent.is_empty() && rng.random_bool(params.p_stack) {
                    // geometric stack distance, clamped to the stack
                    let mut d = 0usize;
                    while d + 1 < recent.len() && !rng.random_bool(params.stack_geom_p) {
                        d += 1;
                    }
                    recent[d]
                } else {
                    id_of_rank[zipf.sample(&mut rng)]
                }
            }
            Phase::Scan { next_obj, remaining } => {
                let o = *next_obj;
                *next_obj += 1;
                *remaining -= 1;
                if *remaining == 0 {
                    phase = Phase::Normal;
                }
                o
            }
            Phase::Loop { start, len, pos, laps_left } => {
                let o = *start + *pos;
                *pos += 1;
                if *pos == *len {
                    *pos = 0;
                    *laps_left -= 1;
                    if *laps_left == 0 {
                        phase = Phase::Normal;
                    }
                }
                o
            }
        };

        // -- maintain the recency stack (dedup head) --
        if recent.front() != Some(&obj) {
            if let Some(ix) = recent.iter().position(|&o| o == obj) {
                recent.remove(ix);
            }
            recent.push_front(obj);
            if recent.len() > 512 {
                recent.pop_back();
            }
        }

        // -- timestamp with diurnal modulation --
        let tod = (now_us as f64 / day_us) * 2.0 * std::f64::consts::PI;
        let rate_mult = 1.0 + params.diurnal * tod.sin();
        let iat = (params.mean_iat_us as f64 / rate_mult.max(0.1)) as u64;
        // exponential-ish jitter: uniform in [0.5, 1.5] of the mean
        let jitter = rng.random_range(500..=1500) as u64;
        now_us += (iat * jitter / 1000).max(1);

        let op = if rng.random_bool(params.write_frac) { OpKind::Write } else { OpKind::Read };
        requests.push(Request {
            time_us: now_us,
            obj,
            size: object_size(obj, params.size_log_mu, params.size_log_sigma),
            op,
        });
    }

    Trace::new(name, requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic() {
        let p = WorkloadParams::default();
        let a = generate("t", &p, 42, 5_000);
        let b = generate("t", &p, 42, 5_000);
        assert_eq!(a, b);
        let c = generate("t", &p, 43, 5_000);
        assert_ne!(a, c);
    }

    #[test]
    fn time_is_monotone() {
        let t = generate("t", &WorkloadParams::default(), 1, 10_000);
        assert!(t.requests.windows(2).all(|w| w[0].time_us <= w[1].time_us));
    }

    #[test]
    fn sizes_stable_per_object() {
        let t = generate("t", &WorkloadParams::default(), 2, 20_000);
        let mut seen: HashMap<u64, u32> = HashMap::new();
        for r in &t.requests {
            let e = seen.entry(r.obj).or_insert(r.size);
            assert_eq!(*e, r.size, "object {} changed size", r.obj);
            assert!(r.size >= MIN_SIZE && r.size <= MAX_SIZE);
        }
    }

    #[test]
    fn skew_produces_hot_objects() {
        let p = WorkloadParams {
            p_stack: 0.0,
            p_scan_start: 0.0,
            p_loop_start: 0.0,
            churn_interval: 0,
            zipf_alpha: 1.1,
            ..WorkloadParams::default()
        };
        let t = generate("t", &p, 3, 50_000);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for r in &t.requests {
            *counts.entry(r.obj).or_default() += 1;
        }
        let mut freq: Vec<usize> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        // top-10 objects should carry a large share under alpha=1.1
        let top10: usize = freq.iter().take(10).sum();
        assert!(top10 as f64 > 0.15 * t.len() as f64, "top10 carried only {top10} of {}", t.len());
    }

    #[test]
    fn scans_introduce_fresh_objects() {
        let mut p = WorkloadParams {
            p_scan_start: 0.01,
            scan_len: (100, 200),
            ..WorkloadParams::default()
        };
        let with_scans = generate("t", &p, 4, 30_000);
        p.p_scan_start = 0.0;
        let without = generate("t", &p, 4, 30_000);
        let uniq_with: std::collections::HashSet<u64> =
            with_scans.requests.iter().map(|r| r.obj).collect();
        let uniq_without: std::collections::HashSet<u64> =
            without.requests.iter().map(|r| r.obj).collect();
        assert!(uniq_with.len() > uniq_without.len());
    }

    #[test]
    fn churn_rotates_popular_set() {
        let p = WorkloadParams {
            churn_interval: 5_000,
            churn_frac: 0.2,
            p_stack: 0.0,
            p_scan_start: 0.0,
            p_loop_start: 0.0,
            ..WorkloadParams::default()
        };
        let t = generate("t", &p, 5, 40_000);
        // objects beyond the initial universe must appear
        assert!(t.requests.iter().any(|r| r.obj >= p.objects as u64));
    }

    #[test]
    fn write_fraction_respected() {
        let p = WorkloadParams { write_frac: 0.5, ..WorkloadParams::default() };
        let t = generate("t", &p, 6, 20_000);
        let writes = t.requests.iter().filter(|r| r.op == OpKind::Write).count();
        let frac = writes as f64 / t.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "write frac {frac}");
    }

    #[test]
    fn stack_draws_increase_short_reuse() {
        let hi = WorkloadParams {
            p_stack: 0.8,
            p_scan_start: 0.0,
            p_loop_start: 0.0,
            ..WorkloadParams::default()
        };
        let mut lo = hi.clone();
        lo.p_stack = 0.0;
        let reuse_within = |t: &Trace, w: usize| {
            let mut last: HashMap<u64, usize> = HashMap::new();
            let mut hits = 0usize;
            for (i, r) in t.requests.iter().enumerate() {
                if let Some(&j) = last.get(&r.obj) {
                    if i - j <= w {
                        hits += 1;
                    }
                }
                last.insert(r.obj, i);
            }
            hits
        };
        let t_hi = generate("hi", &hi, 7, 30_000);
        let t_lo = generate("lo", &lo, 7, 30_000);
        assert!(reuse_within(&t_hi, 64) > reuse_within(&t_lo, 64) * 2);
    }
}
