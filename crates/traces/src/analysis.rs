//! Trace analysis: footprint, working set, reuse behaviour.
//!
//! The paper's evaluator fixes the cache size at **10% of the trace
//! footprint** (§4.1.4); [`footprint_bytes`] is the measurement that
//! definition depends on. The rest of this module provides the summary
//! statistics the experiment binaries print alongside results and that
//! tests use to validate the generators.

use crate::model::Trace;
use std::collections::{HashMap, HashSet};

/// Total bytes of all *distinct* objects in the trace — the cache size that
/// would make every request after first touch a hit.
pub fn footprint_bytes(trace: &Trace) -> u64 {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut total = 0u64;
    for r in &trace.requests {
        if seen.insert(r.obj) {
            total += r.size as u64;
        }
    }
    total
}

/// Number of distinct objects referenced.
pub fn unique_objects(trace: &Trace) -> usize {
    trace.requests.iter().map(|r| r.obj).collect::<HashSet<_>>().len()
}

/// Summary statistics for reporting and generator validation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    pub requests: usize,
    pub unique_objects: usize,
    pub footprint_bytes: u64,
    /// Fraction of requests that re-reference an already-seen object.
    pub reuse_fraction: f64,
    /// Fraction of requests whose previous access to the same object was
    /// within the last 256 requests (short-range locality).
    pub short_reuse_fraction: f64,
    /// Mean object size over distinct objects, bytes.
    pub mean_object_bytes: f64,
    /// Duration in microseconds.
    pub duration_us: u64,
}

impl TraceStats {
    /// Compute all statistics in one pass.
    pub fn compute(trace: &Trace) -> TraceStats {
        let mut last_seen: HashMap<u64, usize> = HashMap::new();
        let mut reuses = 0usize;
        let mut short_reuses = 0usize;
        let mut footprint = 0u64;
        for (i, r) in trace.requests.iter().enumerate() {
            match last_seen.get(&r.obj) {
                Some(&j) => {
                    reuses += 1;
                    if i - j <= 256 {
                        short_reuses += 1;
                    }
                }
                None => footprint += r.size as u64,
            }
            last_seen.insert(r.obj, i);
        }
        let n = trace.len().max(1);
        let uniq = last_seen.len().max(1);
        TraceStats {
            requests: trace.len(),
            unique_objects: last_seen.len(),
            footprint_bytes: footprint,
            reuse_fraction: reuses as f64 / n as f64,
            short_reuse_fraction: short_reuses as f64 / n as f64,
            mean_object_bytes: footprint as f64 / uniq as f64,
            duration_us: trace.duration_us(),
        }
    }
}

/// Distinct objects per fixed-size request window ("working set" curve).
/// Returns one sample per full window.
pub fn working_set_curve(trace: &Trace, window: usize) -> Vec<usize> {
    assert!(window > 0, "window must be positive");
    trace
        .requests
        .chunks(window)
        .filter(|c| c.len() == window)
        .map(|c| c.iter().map(|r| r.obj).collect::<HashSet<_>>().len())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OpKind, Request, Trace};
    use crate::synth::{generate, WorkloadParams};

    fn req(t: u64, obj: u64, size: u32) -> Request {
        Request { time_us: t, obj, size, op: OpKind::Read }
    }

    #[test]
    fn footprint_counts_distinct_only() {
        let t = Trace::new("t", vec![req(0, 1, 100), req(1, 2, 200), req(2, 1, 100)]);
        assert_eq!(footprint_bytes(&t), 300);
        assert_eq!(unique_objects(&t), 2);
    }

    #[test]
    fn stats_reuse_fractions() {
        let t = Trace::new(
            "t",
            vec![req(0, 1, 10), req(1, 2, 10), req(2, 1, 10), req(3, 3, 10), req(4, 1, 10)],
        );
        let s = TraceStats::compute(&t);
        assert_eq!(s.requests, 5);
        assert_eq!(s.unique_objects, 3);
        assert_eq!(s.footprint_bytes, 30);
        assert!((s.reuse_fraction - 0.4).abs() < 1e-9);
        assert!((s.short_reuse_fraction - 0.4).abs() < 1e-9);
    }

    #[test]
    fn working_set_curve_shape() {
        let t = generate("t", &WorkloadParams::default(), 11, 10_000);
        let ws = working_set_curve(&t, 1_000);
        assert_eq!(ws.len(), 10);
        for &w in &ws {
            assert!(w > 10 && w <= 1_000);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn working_set_zero_window_panics() {
        working_set_curve(&Trace::new("t", vec![]), 0);
    }

    #[test]
    fn synthetic_traces_have_meaningful_reuse() {
        // The evaluator's 10%-of-footprint cache only makes sense if traces
        // actually re-reference objects.
        let t = generate("t", &WorkloadParams::default(), 12, 30_000);
        let s = TraceStats::compute(&t);
        assert!(s.reuse_fraction > 0.5, "reuse fraction {}", s.reuse_fraction);
        assert!(s.footprint_bytes > 0);
        assert!(s.mean_object_bytes >= 512.0);
    }
}
