//! The §5.0.3 evaluation harness: one flow on the paper's emulated link
//! (12 Mbps, 20 ms one-way delay, 1-BDP drop-tail buffer), reporting the
//! two quantities the paper quotes — **bandwidth utilization** and
//! **average queuing delay** — plus supporting counters.

use policysmith_netsim::{CongestionControl, SimConfig, Simulation};

/// Outcome of one emulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcMetrics {
    /// Goodput / link capacity, 0..1.
    pub utilization: f64,
    /// Mean bottleneck queuing delay, µs.
    pub mean_qdelay_us: f64,
    /// Maximum bottleneck queuing delay, µs.
    pub max_qdelay_us: u64,
    /// Congestion events detected by the sender.
    pub loss_events: u64,
    /// Retransmitted packets.
    pub retransmits: u64,
    /// Tail drops at the bottleneck.
    pub drops: u64,
    /// Final smoothed RTT, µs.
    pub srtt_us: u64,
}

/// Evaluate `cc` on the paper scenario for `duration_us`.
pub fn evaluate(cc: Box<dyn CongestionControl>, duration_us: u64) -> CcMetrics {
    let mut cfg = SimConfig::paper_scenario();
    cfg.duration_us = duration_us;
    evaluate_with(cfg, cc)
}

/// Evaluate `cc` under an explicit scenario.
pub fn evaluate_with(cfg: SimConfig, cc: Box<dyn CongestionControl>) -> CcMetrics {
    let mut sim = Simulation::new(cfg, vec![cc]);
    let m = sim.run().remove(0);
    CcMetrics {
        utilization: m.utilization,
        mean_qdelay_us: sim.mean_qdelay_us(),
        max_qdelay_us: sim.max_qdelay_us(),
        loss_events: m.loss_events,
        retransmits: m.retransmits,
        drops: sim.drops(),
        srtt_us: m.srtt_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policysmith_netsim::CcView;

    struct FixedCc(u64);
    impl CongestionControl for FixedCc {
        fn name(&self) -> &str {
            "fixed"
        }
        fn on_ack(&mut self, _v: &CcView<'_>) -> u64 {
            self.0
        }
        fn on_loss(&mut self, _v: &CcView<'_>) -> u64 {
            self.0
        }
    }

    #[test]
    fn metrics_scale_with_window() {
        let small = evaluate(Box::new(FixedCc(4)), 5_000_000);
        let big = evaluate(Box::new(FixedCc(60)), 5_000_000);
        assert!(big.utilization > small.utilization * 3.0);
        assert!(big.mean_qdelay_us > small.mean_qdelay_us);
    }

    #[test]
    fn qdelay_bounded_by_buffer() {
        // 1-BDP buffer at 12 Mbps drains in 40 ms: queuing delay can never
        // exceed buffer/rate + one serialization slot.
        let m = evaluate(Box::new(FixedCc(500)), 5_000_000);
        assert!(m.max_qdelay_us <= 41_100, "max qdelay {}", m.max_qdelay_us);
        assert!(m.drops > 0);
    }
}
