//! The synthesized-policy pipeline: the §5.0.2 "kernel module + eBPF probe"
//! pattern in miniature.
//!
//! A candidate arrives as `cong_control` source text. It must survive four
//! stages before it ever touches the (simulated) kernel datapath:
//!
//! 1. **Parse** — syntax + identifier resolution;
//! 2. **Check** — kernel-mode template rules (no floats, kernel features
//!    only, size budgets);
//! 3. **Lower** — compilation to kbpf bytecode;
//! 4. **Verify** — the kbpf verifier (interval analysis; rejects possible
//!    division-by-zero etc.). *This* is the stage the paper's §5.0.3
//!    compile-rate numbers measure.
//!
//! Stages 2–4 are the shared compile-once pipeline
//! ([`CompiledPolicy::compile`] in `Mode::Kernel`, where verification is
//! strict) — the same plumbing the cache and lb hosts consume. A
//! [`VerifiedCandidate`] then runs as a [`KbpfCc`]: each `cong_control`
//! invocation fills the policy's flat feature context (§5.0.1) from the
//! live [`CcView`] into a reusable slab and executes the program in the
//! VM; `r0` is the new cwnd.

use policysmith_dsl::{parse, Expr, Feature, FeatureEnv, Mode};
use policysmith_kbpf::{
    CompileError, CompiledPolicy, Interval, LowerError, Program, VerifyError, SPILL_SLOTS,
};
use policysmith_netsim::{CcView, CongestionControl, HIST_LEN};
use std::fmt;

pub use policysmith_kbpf::{KERNEL_MAX_DEPTH, KERNEL_MAX_SIZE};

/// Where in the pipeline a candidate died.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    Parse(policysmith_dsl::ParseError),
    Check(Vec<policysmith_dsl::CheckError>),
    Lower(LowerError),
    Verify(VerifyError),
}

impl PipelineError {
    /// Stage name for compile-rate accounting (exp_cc_compile).
    pub fn stage(&self) -> &'static str {
        match self {
            PipelineError::Parse(_) => "parse",
            PipelineError::Check(_) => "check",
            PipelineError::Lower(_) => "lower",
            PipelineError::Verify(_) => "verify",
        }
    }
}

impl From<CompileError> for PipelineError {
    fn from(e: CompileError) -> Self {
        match e {
            CompileError::Check(report) => PipelineError::Check(report.errors),
            CompileError::Lower(e) => PipelineError::Lower(e),
            CompileError::Verify(e) => PipelineError::Verify(e),
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "{e}"),
            PipelineError::Check(es) => {
                for e in es {
                    writeln!(f, "{e}")?;
                }
                Ok(())
            }
            PipelineError::Lower(e) => write!(f, "{e}"),
            PipelineError::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// A candidate that passed all four stages: the source plus its compiled,
/// fully verified policy.
#[derive(Debug, Clone)]
pub struct VerifiedCandidate {
    pub source: String,
    pub policy: CompiledPolicy,
}

impl VerifiedCandidate {
    /// The checked expression.
    pub fn expr(&self) -> &Expr {
        self.policy.expr()
    }

    /// The lowered bytecode.
    pub fn program(&self) -> &Program {
        self.policy.program()
    }

    /// Provable bounds on the returned cwnd. Kernel-mode compilation is
    /// strict, so verification bounds always exist.
    pub fn r0_bounds(&self) -> Interval {
        self.policy.r0_bounds().expect("kernel candidates are fully verified")
    }
}

/// Run the full pipeline on candidate source.
pub fn check_candidate(src: &str) -> Result<VerifiedCandidate, PipelineError> {
    let expr = parse(src).map_err(PipelineError::Parse)?;
    let policy = CompiledPolicy::compile(&expr, Mode::Kernel)?;
    debug_assert!(!policy.may_fault(), "kernel mode never defers faults");
    Ok(VerifiedCandidate { source: src.to_string(), policy })
}

/// Adapter exposing a live [`CcView`] (plus the loss flag) as the DSL
/// feature environment, from which the policy's flat context is filled.
/// Shared with the eBPF host (`ebpf_host`), so both engines see
/// bit-identical, range-clamped feature values.
pub(crate) struct CcEnv<'a> {
    pub(crate) view: &'a CcView<'a>,
    pub(crate) loss: bool,
}

impl FeatureEnv for CcEnv<'_> {
    fn feature(&self, f: Feature) -> i64 {
        use Feature::*;
        let v = self.view;
        let h = |arr: &[i64; HIST_LEN], i: u8| arr[(i as usize).min(HIST_LEN - 1)];
        let val: i64 = match f {
            Now => v.now_us as i64,
            Cwnd => v.cwnd as i64,
            PrevCwnd => v.prev_cwnd as i64,
            MinRttUs => v.min_rtt_us.max(1) as i64,
            SrttUs => v.srtt_us.max(1) as i64,
            LastRttUs => v.last_rtt_us.max(1) as i64,
            InflightBytes => v.inflight_bytes as i64,
            InflightPkts => v.inflight_pkts as i64,
            Mss => v.mss as i64,
            DeliveredBytes => v.delivered_bytes as i64,
            DeliveryRateBps => v.delivery_rate_bps as i64,
            LossEvent => self.loss as i64,
            AckedBytes => v.acked_bytes as i64,
            Ssthresh => v.ssthresh.min(1 << 24) as i64,
            HistRtt(i) => h(&v.history.rtt_us, i).max(1),
            HistDelivered(i) => h(&v.history.delivered, i),
            HistLoss(i) => h(&v.history.losses, i),
            HistCwnd(i) => h(&v.history.cwnd, i).max(1),
            HistQdelay(i) => h(&v.history.qdelay_us, i),
            // cache-template features never appear in verified kernel
            // programs; be total anyway
            _ => 0,
        };
        // clamp into the declared verifier range so the interval analysis'
        // assumptions hold at runtime by construction
        let (lo, hi) = f.range();
        val.clamp(lo, hi)
    }
}

/// A verified program running as the congestion controller — the analogue
/// of the paper's eBPF probe attached to `cong_control`.
pub struct KbpfCc {
    candidate: VerifiedCandidate,
    /// Reusable flat feature context (refilled each invocation).
    ctx: Vec<i64>,
    /// Persistent scratch map (spills; would be the BPF map in the paper).
    map: Vec<i64>,
    name: String,
    /// VM faults observed (must stay 0 for verified programs).
    pub faults: u64,
}

impl KbpfCc {
    /// Wrap a verified candidate.
    pub fn new(candidate: VerifiedCandidate) -> Self {
        KbpfCc {
            name: format!("kbpf:{}", &candidate.source[..candidate.source.len().min(24)]),
            ctx: Vec::with_capacity(candidate.policy.layout().len()),
            map: vec![0; SPILL_SLOTS],
            candidate,
            faults: 0,
        }
    }

    /// Pipeline + wrap in one step.
    pub fn from_source(src: &str) -> Result<Self, PipelineError> {
        Ok(Self::new(check_candidate(src)?))
    }

    /// The verified candidate.
    pub fn candidate(&self) -> &VerifiedCandidate {
        &self.candidate
    }

    fn invoke(&mut self, view: &CcView<'_>, loss: bool) -> u64 {
        let env = CcEnv { view, loss };
        match self.candidate.policy.run_with_env(&env, &mut self.ctx, &mut self.map) {
            Ok(r0) => r0.clamp(2, 1 << 20) as u64,
            Err(_) => {
                // Unreachable for verified programs; fail safe.
                self.faults += 1;
                view.cwnd
            }
        }
    }
}

impl CongestionControl for KbpfCc {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_ack(&mut self, view: &CcView<'_>) -> u64 {
        self.invoke(view, false)
    }

    fn on_loss(&mut self, view: &CcView<'_>) -> u64 {
        self.invoke(view, true)
    }
}

/// A reasonable synthesized-looking AIMD candidate used in tests and docs.
pub const EXAMPLE_AIMD: &str = "if(loss, max(cwnd >> 1, 2), cwnd + max(acked / max(mss, 1), 1))";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::evaluate;

    #[test]
    fn pipeline_stages_attribute_errors() {
        // parse: hallucinated identifier
        assert_eq!(check_candidate("cwnd + frobnicate").unwrap_err().stage(), "parse");
        // check: float arithmetic (the paper's most common kernel fault)
        assert_eq!(check_candidate("cwnd * 1.5").unwrap_err().stage(), "check");
        // check: cache-only feature in kernel mode
        assert_eq!(check_candidate("cwnd + obj.count").unwrap_err().stage(), "check");
        // verify: unguarded division (the paper's second most common fault)
        assert_eq!(check_candidate("delivered / inflight").unwrap_err().stage(), "verify");
        // all clear
        assert!(check_candidate(EXAMPLE_AIMD).is_ok());
    }

    #[test]
    fn stderr_is_informative() {
        let err = check_candidate("cwnd / inflight").unwrap_err();
        assert!(err.to_string().contains("divisor"), "{err}");
        let err = check_candidate("cwnd * 0.5").unwrap_err();
        assert!(err.to_string().to_lowercase().contains("float"), "{err}");
    }

    #[test]
    fn verified_aimd_behaves_like_a_congestion_controller() {
        let cc = KbpfCc::from_source(EXAMPLE_AIMD).unwrap();
        let m = evaluate(Box::new(cc), 20_000_000);
        assert!(m.utilization > 0.7, "synthesized AIMD util {}", m.utilization);
        assert!(m.loss_events > 0);
    }

    #[test]
    fn no_faults_in_verified_programs() {
        let cc =
            KbpfCc::from_source("if(srtt - min_rtt > 15000, max(cwnd - 1, 4), cwnd + 1)").unwrap();
        let m = evaluate(Box::new(cc), 10_000_000);
        assert!(m.utilization > 0.0);
        // the box was moved above, so drive a fresh instance through a
        // manual invocation loop and check the fault counter directly
        let mut cc2 =
            KbpfCc::from_source("if(srtt - min_rtt > 15000, max(cwnd - 1, 4), cwnd + 1)").unwrap();
        let history = policysmith_netsim::History::default();
        let mut cwnd = 10u64;
        for i in 0..1_000u64 {
            let view = policysmith_netsim::CcView {
                now_us: i * 1_000,
                cwnd,
                prev_cwnd: cwnd,
                min_rtt_us: 20_000,
                srtt_us: 20_000 + (i % 40) * 1_000, // sweeps across the gate
                last_rtt_us: 21_000,
                inflight_bytes: cwnd * 1_500,
                inflight_pkts: cwnd,
                mss: 1_500,
                delivered_bytes: i * 1_500,
                delivery_rate_bps: 10_000_000,
                acked_bytes: 1_500,
                ssthresh: 64,
                history: &history,
            };
            cwnd = if i % 50 == 49 {
                policysmith_netsim::CongestionControl::on_loss(&mut cc2, &view)
            } else {
                policysmith_netsim::CongestionControl::on_ack(&mut cc2, &view)
            };
            assert!(cwnd >= 1, "controller returned a degenerate window");
        }
        assert_eq!(cc2.faults, 0, "verified program faulted during execution");
    }

    #[test]
    fn r0_bounds_reported() {
        let c = check_candidate("clamp(cwnd * 2, 4, 256)").unwrap();
        let r0 = c.r0_bounds();
        assert!(r0.lo >= 4 && r0.hi <= 256);
    }

    #[test]
    fn delay_based_candidate_trades_throughput_for_delay() {
        // A naively aggressive delay-backoff policy (per-ACK decrease
        // against a laggy EWMA): exactly the kind of behaviourally-extreme
        // candidate §5.0.3 reports (utilizations down to 23%). It must sit
        // in the low-delay/low-throughput corner, not collapse entirely.
        let cc = KbpfCc::from_source(
            "if(loss, max(cwnd >> 1, 2), \
               if(srtt > min_rtt + 10000, max(cwnd - 1, 2), cwnd + 1))",
        )
        .unwrap();
        let m = evaluate(Box::new(cc), 20_000_000);
        let reno = evaluate(Box::new(crate::baselines::Reno::new()), 20_000_000);
        assert!(
            m.mean_qdelay_us < reno.mean_qdelay_us,
            "{} vs {}",
            m.mean_qdelay_us,
            reno.mean_qdelay_us
        );
        assert!(m.utilization > 0.15, "util {}", m.utilization);
        assert!(m.utilization < reno.utilization);
    }
}
