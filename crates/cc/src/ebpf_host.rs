//! The emulated struct_ops harness: a verified candidate running as
//! *emitted eBPF* on the congestion-control datapath.
//!
//! [`EbpfCc`] is the deployment-shaped twin of [`KbpfCc`](crate::KbpfCc).
//! Where `KbpfCc` executes kbpf bytecode in the kbpf VM, `EbpfCc` takes
//! the same [`VerifiedCandidate`] through the full kernel-offload
//! pipeline at construction — emit to raw eBPF (saturation gate and
//! all), re-prove the artifact with the model verifier — and then
//! interprets the *emitted* instructions per invocation with kernel
//! semantics (wrapping ALU, fresh stack frame). Both hosts fill the
//! context through the same `CcEnv` adapter (shared with `synth`) and
//! apply the same cwnd clamp and fault latch, so on any netsim trace the
//! two must agree decision for decision — the differential suite in
//! `tests/ebpf_differential.rs` holds them to exactly that.

use crate::synth::{check_candidate, CcEnv, PipelineError, VerifiedCandidate};
use policysmith_ebpf::{emit_policy, model_check, CheckError, CheckStats, EbpfProgram, EmitError};
use policysmith_netsim::{CcView, CongestionControl};
use std::fmt;

/// Why a verified candidate could not be offloaded to eBPF.
#[derive(Debug, Clone, PartialEq)]
pub enum OffloadError {
    /// The candidate never passed the kbpf pipeline.
    Pipeline(PipelineError),
    /// Emission refused (e.g. the saturation gate could not prove
    /// wrap/saturate equivalence).
    Emit(EmitError),
    /// The emitted artifact failed the model verifier — an emitter bug by
    /// definition, surfaced rather than deployed.
    Check(CheckError),
}

impl fmt::Display for OffloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffloadError::Pipeline(e) => write!(f, "offload: {e}"),
            OffloadError::Emit(e) => write!(f, "offload: {e}"),
            OffloadError::Check(e) => write!(f, "offload: {e}"),
        }
    }
}

impl std::error::Error for OffloadError {}

/// A verified policy deployed as emitted eBPF on the (simulated) kernel
/// datapath — the paper's `tcp_congestion_ops` struct_ops registration,
/// with the interpreter standing in for the kernel.
pub struct EbpfCc {
    candidate: VerifiedCandidate,
    prog: EbpfProgram,
    stats: CheckStats,
    /// Reusable flat feature context (refilled each invocation).
    ctx: Vec<i64>,
    name: String,
    /// Interpreter faults observed (must stay 0 for model-checked
    /// programs driven through the clamping `CcEnv`).
    pub faults: u64,
}

impl EbpfCc {
    /// Offload a verified candidate: emit, model-check, wrap.
    pub fn new(candidate: VerifiedCandidate) -> Result<Self, OffloadError> {
        let prog = emit_policy(&candidate.policy).map_err(OffloadError::Emit)?;
        let stats = model_check(&prog).map_err(OffloadError::Check)?;
        Ok(EbpfCc {
            name: format!("ebpf:{}", &candidate.source[..candidate.source.len().min(24)]),
            ctx: Vec::with_capacity(candidate.policy.layout().len()),
            candidate,
            prog,
            stats,
            faults: 0,
        })
    }

    /// Pipeline + offload in one step.
    pub fn from_source(src: &str) -> Result<Self, OffloadError> {
        Self::new(check_candidate(src).map_err(OffloadError::Pipeline)?)
    }

    /// The verified candidate.
    pub fn candidate(&self) -> &VerifiedCandidate {
        &self.candidate
    }

    /// The emitted artifact this host executes.
    pub fn program(&self) -> &EbpfProgram {
        &self.prog
    }

    /// What the model verifier proved about the artifact.
    pub fn check_stats(&self) -> CheckStats {
        self.stats
    }

    fn invoke(&mut self, view: &CcView<'_>, loss: bool) -> u64 {
        let env = CcEnv { view, loss };
        self.candidate.policy.layout().fill(&env, &mut self.ctx);
        match policysmith_ebpf::run(&self.prog, &self.ctx) {
            // identical post-processing to KbpfCc::invoke — the clamp is
            // part of the decision being compared differentially
            Ok(r0) => r0.clamp(2, 1 << 20) as u64,
            Err(_) => {
                // Unreachable for model-checked programs; fail safe the
                // same way the kbpf host does.
                self.faults += 1;
                view.cwnd
            }
        }
    }
}

impl CongestionControl for EbpfCc {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_ack(&mut self, view: &CcView<'_>) -> u64 {
        self.invoke(view, false)
    }

    fn on_loss(&mut self, view: &CcView<'_>) -> u64 {
        self.invoke(view, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::evaluate;
    use crate::synth::EXAMPLE_AIMD;

    #[test]
    fn offloaded_aimd_behaves_like_a_congestion_controller() {
        let cc = EbpfCc::from_source(EXAMPLE_AIMD).unwrap();
        assert!(cc.check_stats().branches > 0);
        let m = evaluate(Box::new(cc), 20_000_000);
        assert!(m.utilization > 0.7, "offloaded AIMD util {}", m.utilization);
        assert!(m.loss_events > 0);
    }

    #[test]
    fn fault_latch_mirrors_the_kbpf_host() {
        // Swap in a hand-built program whose division faults at runtime —
        // unreachable for model-checked artifacts, but the latch must
        // behave identically to KbpfCc's when it does fire.
        use policysmith_ebpf::EbpfInsn;
        let mut cc = EbpfCc::from_source(EXAMPLE_AIMD).unwrap();
        let mut insns = vec![
            EbpfInsn::mov_x(6, 1),
            EbpfInsn::ldx_dw(0, 6, 0), // loss slot: 0 on ack
            EbpfInsn::mov_k(2, 7),
            EbpfInsn::alu_x(policysmith_ebpf::isa::BPF_DIV, 2, 0),
            EbpfInsn::mov_x(0, 2),
            EbpfInsn::exit(),
        ];
        insns[3].off = policysmith_ebpf::isa::SIGNED_DIV_OFF;
        cc.prog = EbpfProgram { insns, ctx_ranges: cc.prog.ctx_ranges.clone(), stack_bytes: 0 };

        let history = policysmith_netsim::History::default();
        let view = policysmith_netsim::CcView {
            now_us: 0,
            cwnd: 37,
            prev_cwnd: 37,
            min_rtt_us: 20_000,
            srtt_us: 20_000,
            last_rtt_us: 20_000,
            inflight_bytes: 0,
            inflight_pkts: 0,
            mss: 1_500,
            delivered_bytes: 0,
            delivery_rate_bps: 0,
            acked_bytes: 1_500,
            ssthresh: 64,
            history: &history,
        };
        // on_ack: loss = 0 → 7 s/ 0 faults → latched fallback to view.cwnd
        assert_eq!(cc.on_ack(&view), 37);
        assert_eq!(cc.faults, 1);
        // on_loss: loss = 1 → 7 s/ 1 = 7, no new fault
        assert_eq!(cc.on_loss(&view), 7);
        assert_eq!(cc.faults, 1);
    }

    #[test]
    fn offload_errors_attribute_the_failing_stage() {
        assert!(matches!(EbpfCc::from_source("cwnd * 1.5"), Err(OffloadError::Pipeline(_))));
    }
}
