//! Classical congestion-control baselines.
//!
//! These are the hand-written kernel heuristics the paper's §5 motivates
//! replacing: Reno (AIMD), CUBIC \[25\] (the Linux default), a simplified
//! model-based BBR \[11\], and delay-based Vegas. Each implements
//! [`CongestionControl`] against the netsim transport.

use policysmith_netsim::{CcView, CongestionControl};

/// TCP Reno: slow start + additive increase, multiplicative decrease.
#[derive(Debug, Default)]
pub struct Reno {
    ack_credit: u64,
}

impl Reno {
    pub fn new() -> Self {
        Self::default()
    }
}

impl CongestionControl for Reno {
    fn name(&self) -> &str {
        "reno"
    }

    fn on_ack(&mut self, v: &CcView<'_>) -> u64 {
        if v.cwnd < v.ssthresh {
            return v.cwnd + 1; // slow start: +1 per ACK
        }
        self.ack_credit += 1;
        if self.ack_credit >= v.cwnd {
            self.ack_credit = 0;
            v.cwnd + 1 // congestion avoidance: +1 per RTT
        } else {
            v.cwnd
        }
    }

    fn on_loss(&mut self, v: &CcView<'_>) -> u64 {
        self.ack_credit = 0;
        (v.cwnd / 2).max(2)
    }
}

/// CUBIC \[25\]: the window grows along a cubic curve anchored at the last
/// loss (`w_max`), giving fast recovery toward the old operating point and
/// slow probing around it. `C = 0.4`, `β = 0.7` as in the kernel.
#[derive(Debug)]
pub struct Cubic {
    w_max: f64,
    epoch_start_us: Option<u64>,
    k: f64,
}

impl Cubic {
    const C: f64 = 0.4;
    const BETA: f64 = 0.7;

    pub fn new() -> Self {
        Cubic { w_max: 0.0, epoch_start_us: None, k: 0.0 }
    }

    /// The RFC 8312 TCP-friendly window estimate: CUBIC never does worse
    /// than a Reno flow that halved at the same loss.
    fn w_est(&self, t_sec: f64, rtt_sec: f64) -> f64 {
        let b = Self::BETA;
        self.w_max * b + 3.0 * (1.0 - b) / (1.0 + b) * (t_sec / rtt_sec.max(1e-3))
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &str {
        "cubic"
    }

    fn on_ack(&mut self, v: &CcView<'_>) -> u64 {
        if v.cwnd < v.ssthresh {
            return v.cwnd + 1; // slow start
        }
        let epoch = *self.epoch_start_us.get_or_insert_with(|| {
            // fresh epoch without a preceding loss: anchor at current cwnd
            if self.w_max <= 0.0 {
                self.w_max = v.cwnd as f64;
                self.k = 0.0;
            }
            v.now_us
        });
        let t = (v.now_us - epoch) as f64 / 1e6;
        let cubic = self.w_max + Self::C * (t - self.k).powi(3);
        let friendly = self.w_est(t, v.srtt_us.max(1) as f64 / 1e6);
        let target = cubic.max(friendly);
        // clamp growth to at most one packet per ACK (kernel-style pacing
        // of the cubic curve)
        let next = target.max(2.0).min(v.cwnd as f64 + 1.0);
        next as u64
    }

    fn on_loss(&mut self, v: &CcView<'_>) -> u64 {
        self.w_max = v.cwnd as f64;
        self.k = (self.w_max * (1.0 - Self::BETA) / Self::C).cbrt();
        self.epoch_start_us = Some(v.now_us);
        ((v.cwnd as f64 * Self::BETA) as u64).max(2)
    }
}

/// BBR-lite: a two-phase model-based controller. Startup doubles the window
/// until the delivery-rate model stops improving, then the window tracks
/// `gain × BDP` (delivery rate × min RTT) with a 1.25/0.75/1.0… probe
/// cycle. A deliberate simplification of BBR \[11\] — no pacing, no
/// PROBE_RTT — but the same model-driven character (and the same
/// insensitivity to isolated losses).
#[derive(Debug)]
pub struct BbrLite {
    startup: bool,
    best_rate_bps: u64,
    stall_count: u32,
    cycle: usize,
    last_cycle_us: u64,
    /// Windowed-max filter over recent delivery-rate samples: the model
    /// must not collapse just because one window under-delivered (real BBR
    /// uses a max filter for exactly this reason).
    rate_samples: [u64; 16],
    sample_ix: usize,
    last_sample_seen: u64,
}

impl BbrLite {
    const GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

    pub fn new() -> Self {
        BbrLite {
            startup: true,
            best_rate_bps: 0,
            stall_count: 0,
            cycle: 0,
            last_cycle_us: 0,
            rate_samples: [0; 16],
            sample_ix: 0,
            last_sample_seen: 0,
        }
    }

    fn observe_rate(&mut self, rate_bps: u64) {
        if rate_bps > 0 && rate_bps != self.last_sample_seen {
            self.last_sample_seen = rate_bps;
            self.rate_samples[self.sample_ix] = rate_bps;
            self.sample_ix = (self.sample_ix + 1) % self.rate_samples.len();
        }
    }

    fn max_rate_bps(&self) -> u64 {
        *self.rate_samples.iter().max().unwrap_or(&0)
    }

    fn bdp_pkts(&self, v: &CcView<'_>) -> u64 {
        let rate = self.max_rate_bps();
        if rate == 0 || v.min_rtt_us == 0 {
            return 4;
        }
        (rate * v.min_rtt_us / 8 / 1_000_000 / v.mss as u64).max(4)
    }
}

impl Default for BbrLite {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for BbrLite {
    fn name(&self) -> &str {
        "bbr-lite"
    }

    fn on_ack(&mut self, v: &CcView<'_>) -> u64 {
        self.observe_rate(v.delivery_rate_bps);
        if self.startup {
            if v.delivery_rate_bps > self.best_rate_bps * 5 / 4 {
                self.best_rate_bps = v.delivery_rate_bps;
                self.stall_count = 0;
            } else {
                self.stall_count += 1;
            }
            if self.stall_count >= 3 * v.cwnd as u32 {
                self.startup = false; // rate plateaued for ~3 RTTs
            }
            return v.cwnd + 1;
        }
        // steady state: rotate the gain cycle once per min RTT
        if v.now_us.saturating_sub(self.last_cycle_us) >= v.min_rtt_us.max(1_000) {
            self.cycle = (self.cycle + 1) % Self::GAIN_CYCLE.len();
            self.last_cycle_us = v.now_us;
        }
        let gain = Self::GAIN_CYCLE[self.cycle];
        ((self.bdp_pkts(v) as f64 * gain) as u64).max(4)
    }

    fn on_loss(&mut self, v: &CcView<'_>) -> u64 {
        self.observe_rate(v.delivery_rate_bps);
        // model-based: isolated losses do not collapse the window
        if self.startup {
            self.startup = false;
        }
        self.bdp_pkts(v).max(4).min(v.cwnd.max(4))
    }
}

/// TCP Vegas: delay-based. Keeps `diff = cwnd × (1 − minRTT/RTT)` — the
/// number of packets parked in the queue — between `ALPHA` and `BETA`.
#[derive(Debug, Default)]
pub struct Vegas {
    ack_credit: u64,
}

impl Vegas {
    const ALPHA: f64 = 2.0;
    const BETA: f64 = 4.0;

    pub fn new() -> Self {
        Self::default()
    }
}

impl CongestionControl for Vegas {
    fn name(&self) -> &str {
        "vegas"
    }

    fn on_ack(&mut self, v: &CcView<'_>) -> u64 {
        if v.srtt_us == 0 || v.min_rtt_us == 0 {
            return v.cwnd + 1;
        }
        if v.cwnd < v.ssthresh && v.srtt_us < v.min_rtt_us * 11 / 10 {
            return v.cwnd + 1; // slow start while queue is empty
        }
        // adjust once per RTT
        self.ack_credit += 1;
        if self.ack_credit < v.cwnd {
            return v.cwnd;
        }
        self.ack_credit = 0;
        let diff = v.cwnd as f64 * (1.0 - v.min_rtt_us as f64 / v.srtt_us as f64);
        if diff < Self::ALPHA {
            v.cwnd + 1
        } else if diff > Self::BETA {
            (v.cwnd - 1).max(2)
        } else {
            v.cwnd
        }
    }

    fn on_loss(&mut self, v: &CcView<'_>) -> u64 {
        self.ack_credit = 0;
        (v.cwnd * 3 / 4).max(2)
    }
}

/// All four baselines, boxed, for sweep harnesses.
pub fn all_baselines() -> Vec<Box<dyn CongestionControl>> {
    vec![
        Box::new(Reno::new()),
        Box::new(Cubic::new()),
        Box::new(BbrLite::new()),
        Box::new(Vegas::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::evaluate;

    #[test]
    fn reno_fills_the_paper_link() {
        let m = evaluate(Box::new(Reno::new()), 20_000_000);
        assert!(m.utilization > 0.8, "reno util {}", m.utilization);
        assert!(m.loss_events > 0, "reno probes until loss");
    }

    #[test]
    fn cubic_fills_the_paper_link() {
        let m = evaluate(Box::new(Cubic::new()), 20_000_000);
        assert!(m.utilization > 0.8, "cubic util {}", m.utilization);
    }

    #[test]
    fn bbr_keeps_queue_short() {
        let m = evaluate(Box::new(BbrLite::new()), 20_000_000);
        assert!(m.utilization > 0.6, "bbr util {}", m.utilization);
        let reno = evaluate(Box::new(Reno::new()), 20_000_000);
        assert!(
            m.mean_qdelay_us < reno.mean_qdelay_us,
            "bbr qdelay {} vs reno {}",
            m.mean_qdelay_us,
            reno.mean_qdelay_us
        );
    }

    #[test]
    fn vegas_keeps_queue_very_short() {
        let m = evaluate(Box::new(Vegas::new()), 20_000_000);
        assert!(m.utilization > 0.5, "vegas util {}", m.utilization);
        assert!(m.mean_qdelay_us < 15_000.0, "vegas qdelay {}", m.mean_qdelay_us);
    }

    #[test]
    fn baselines_are_deterministic() {
        let a = evaluate(Box::new(Cubic::new()), 5_000_000);
        let b = evaluate(Box::new(Cubic::new()), 5_000_000);
        assert_eq!(a, b);
    }
}
