//! # policysmith-cc — the congestion-control case study substrate (§5)
//!
//! Everything the paper's kernel experiment needs, rebuilt in userspace
//! around the kbpf verifier and the netsim emulated link:
//!
//! * [`baselines`] — Reno, CUBIC, BBR-lite and Vegas as native
//!   [`CongestionControl`] implementations (the manual heuristics §5 says
//!   kernels accumulated over decades);
//! * [`synth`] — the synthesized-policy path: parse → mode-check → lower to
//!   kbpf → **verify** (the paper's Checker, §5.0.2) → execute in the VM on
//!   every `cong_control` invocation, reading the §5.0.1 feature context;
//! * [`harness`] — the 12 Mbps / 20 ms / 1-BDP evaluation scenario and the
//!   metrics §5.0.3 reports (bandwidth utilization, mean queuing delay);
//! * [`ebpf_host`] — the kernel-offload twin of [`synth`]'s VM host: the
//!   same verified candidate emitted to raw eBPF (`crates/ebpf`),
//!   model-checked, and interpreted with kernel semantics per invocation
//!   — the paper's struct_ops deployment, emulated end to end.
//!
//! ```
//! use policysmith_cc::{baselines::Reno, harness::evaluate};
//!
//! let m = evaluate(Box::new(Reno::new()), 5_000_000);
//! assert!(m.utilization > 0.5);
//! ```

pub mod baselines;
pub mod ebpf_host;
pub mod harness;
pub mod synth;

pub use ebpf_host::{EbpfCc, OffloadError};
pub use harness::{evaluate, evaluate_with, CcMetrics};
pub use netsim_reexport::*;
pub use synth::{check_candidate, KbpfCc, PipelineError, VerifiedCandidate};

mod netsim_reexport {
    // SimConfig/LinkCfg ride along because `evaluate_with` takes them:
    // callers parameterizing the scenario (a drifted link as a new search
    // context) should not need a direct netsim dependency.
    pub use policysmith_netsim::{CcView, CongestionControl, LinkCfg, SimConfig};
}
