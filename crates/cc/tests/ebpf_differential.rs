//! Differential test: the emulated-eBPF host vs the kbpf VM host,
//! decision for decision, on live netsim traces.
//!
//! Both hosts wrap the *same* [`VerifiedCandidate`], fill the context
//! through the same clamping adapter, and apply the same cwnd clamp and
//! fault latch — so every `cong_control` invocation must produce the
//! same window. [`DiffCc`] runs the two engines side by side inside one
//! simulated sender (the kbpf decision drives the trace, so any
//! divergence would also be caught before it could skew the stimulus)
//! and counts disagreements; the suite demands zero across a library of
//! searched-style policies, bpf_cubic/reno-style baselines, and three
//! different link configurations, then property-tests the same claim
//! over random verified expressions.

use policysmith_cc::{
    check_candidate, evaluate_with, CcView, CongestionControl, EbpfCc, KbpfCc, LinkCfg, SimConfig,
};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Default)]
struct DiffStats {
    decisions: u64,
    divergences: u64,
}

/// One simulated sender, two engines: kbpf VM (authoritative) and
/// emulated eBPF (checked against it on every invocation).
struct DiffCc {
    vm: KbpfCc,
    ebpf: EbpfCc,
    stats: Rc<RefCell<DiffStats>>,
}

impl DiffCc {
    fn from_source(src: &str) -> (Self, Rc<RefCell<DiffStats>>) {
        let candidate = check_candidate(src).expect("library policies verify");
        let vm = KbpfCc::new(candidate.clone());
        let ebpf = EbpfCc::new(candidate).expect("library policies emit + model-check");
        let stats = Rc::new(RefCell::new(DiffStats::default()));
        (DiffCc { vm, ebpf, stats: stats.clone() }, stats)
    }

    fn step(&mut self, view: &CcView<'_>, loss: bool) -> u64 {
        let (a, b) = if loss {
            (self.vm.on_loss(view), self.ebpf.on_loss(view))
        } else {
            (self.vm.on_ack(view), self.ebpf.on_ack(view))
        };
        let mut s = self.stats.borrow_mut();
        s.decisions += 1;
        if a != b {
            s.divergences += 1;
        }
        a
    }
}

impl CongestionControl for DiffCc {
    fn name(&self) -> &str {
        "diff:kbpf-vs-ebpf"
    }

    fn on_ack(&mut self, view: &CcView<'_>) -> u64 {
        self.step(view, false)
    }

    fn on_loss(&mut self, view: &CcView<'_>) -> u64 {
        self.step(view, true)
    }
}

/// Searched-style policies (the shapes the synthesis loop produces) plus
/// hand-written kernel-baseline renditions: reno-style AIMD and a
/// bpf_cubic-style multiplicative backoff (beta = 717/1024).
const POLICY_LIBRARY: &[&str] = &[
    "if(loss, max(cwnd >> 1, 2), cwnd + max(acked / max(mss, 1), 1))",
    "clamp(cwnd * srtt / max(min_rtt, 1), 2, 1024)",
    "if(srtt - min_rtt > 15000, max(cwnd - 1, 4), cwnd + 1)",
    "min(cwnd + acked / max(mss, 1), 4096)",
    "if(loss, max(cwnd >> 1, 2), cwnd + 1)",
    "if(loss, max(cwnd * 717 / 1024, 2), cwnd + max(acked / max(mss, 1), 1))",
];

/// Three link shapes: the paper's evaluation link, a short-fat LAN-ish
/// link with a shallow buffer, and a long-thin link with a deep buffer.
fn link_configs() -> Vec<(&'static str, LinkCfg)> {
    vec![
        ("paper-12mbps-20ms", LinkCfg::paper_link()),
        ("fat-48mbps-5ms", LinkCfg { rate_bps: 48_000_000, delay_us: 5_000, queue_bytes: 30_000 }),
        (
            "thin-4mbps-50ms",
            LinkCfg { rate_bps: 4_000_000, delay_us: 50_000, queue_bytes: 100_000 },
        ),
    ]
}

fn run_diff(src: &str, link: LinkCfg, duration_us: u64) -> (DiffStats, u64, u64) {
    let (cc, stats) = DiffCc::from_source(src);
    let vm_faults_ptr = Rc::new(RefCell::new((0u64, 0u64)));
    // evaluate_with consumes the box; smuggle the fault counters out the
    // same way as the stats
    struct Faults(Rc<RefCell<(u64, u64)>>, DiffCc);
    impl CongestionControl for Faults {
        fn name(&self) -> &str {
            self.1.name()
        }
        fn on_ack(&mut self, view: &CcView<'_>) -> u64 {
            let w = self.1.on_ack(view);
            *self.0.borrow_mut() = (self.1.vm.faults, self.1.ebpf.faults);
            w
        }
        fn on_loss(&mut self, view: &CcView<'_>) -> u64 {
            let w = self.1.on_loss(view);
            *self.0.borrow_mut() = (self.1.vm.faults, self.1.ebpf.faults);
            w
        }
    }
    let mut cfg = SimConfig::paper_scenario();
    cfg.link = link;
    cfg.duration_us = duration_us;
    evaluate_with(cfg, Box::new(Faults(vm_faults_ptr.clone(), cc)));
    let (vm_faults, ebpf_faults) = *vm_faults_ptr.borrow();
    let s = stats.borrow();
    (DiffStats { decisions: s.decisions, divergences: s.divergences }, vm_faults, ebpf_faults)
}

#[test]
fn library_policies_agree_on_every_decision_across_link_configs() {
    for src in POLICY_LIBRARY {
        for (label, link) in link_configs() {
            let (stats, vm_faults, ebpf_faults) = run_diff(src, link, 8_000_000);
            assert!(
                stats.decisions > 100,
                "{src} on {label}: only {} decisions — trace too short to mean anything",
                stats.decisions
            );
            assert_eq!(
                stats.divergences, 0,
                "{src} on {label}: {}/{} decisions diverged",
                stats.divergences, stats.decisions
            );
            assert_eq!(vm_faults, 0, "{src} on {label}: kbpf VM faulted");
            assert_eq!(ebpf_faults, 0, "{src} on {label}: emulated eBPF faulted");
        }
    }
}

mod proptest_differential {
    use super::*;
    use policysmith_dsl::{to_source, BinOp, CmpOp, Expr, Feature, Mode};
    use policysmith_kbpf::CompiledPolicy;
    use proptest::prelude::*;

    fn kernel_features() -> Vec<Feature> {
        vec![
            Feature::Cwnd,
            Feature::PrevCwnd,
            Feature::MinRttUs,
            Feature::SrttUs,
            Feature::LastRttUs,
            Feature::InflightPkts,
            Feature::Mss,
            Feature::LossEvent,
            Feature::AckedBytes,
            Feature::Ssthresh,
            Feature::HistRtt(0),
            Feature::HistLoss(1),
        ]
    }

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (-1_000i64..1_000).prop_map(Expr::Int),
            proptest::sample::select(kernel_features()).prop_map(Expr::Feat),
        ];
        leaf.prop_recursive(4, 32, 3, |inner| {
            prop_oneof![
                (
                    prop_oneof![
                        Just(BinOp::Add),
                        Just(BinOp::Sub),
                        Just(BinOp::Mul),
                        Just(BinOp::Div),
                        Just(BinOp::Rem),
                        Just(BinOp::Min),
                        Just(BinOp::Max),
                        Just(BinOp::Shl),
                        Just(BinOp::Shr),
                    ],
                    inner.clone(),
                    inner.clone()
                )
                    .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
                (
                    prop_oneof![
                        Just(CmpOp::Lt),
                        Just(CmpOp::Le),
                        Just(CmpOp::Gt),
                        Just(CmpOp::Ge),
                        Just(CmpOp::Eq),
                        Just(CmpOp::Ne),
                    ],
                    inner.clone(),
                    inner.clone()
                )
                    .prop_map(|(op, a, b)| Expr::cmp(op, a, b)),
                (inner.clone(), inner.clone(), inner.clone())
                    .prop_map(|(a, b, c)| Expr::ite(a, b, c)),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random verified kernel policies, emitted and driven through a
        /// real netsim trace against the kbpf VM — zero divergence, zero
        /// faults (the latched-fault path stays dark for verified
        /// programs; its firing behavior is unit-tested in `ebpf_host`).
        #[test]
        fn random_verified_policies_agree_on_netsim_traces(e in arb_expr()) {
            let src = to_source(&e);
            let Ok(candidate) = check_candidate(&src) else { return Ok(()) };
            // re-verify printing round-trips (to_string is the search
            // loop's interchange format)
            prop_assert_eq!(
                CompiledPolicy::compile(&e, Mode::Kernel).is_ok(),
                true
            );
            let vm = KbpfCc::new(candidate.clone());
            let ebpf = match EbpfCc::new(candidate) {
                Ok(cc) => cc,
                // the saturation gate may legitimately refuse genuinely
                // saturating random policies — nothing to compare
                Err(policysmith_cc::OffloadError::Emit(_)) => return Ok(()),
                Err(err) => return Err(TestCaseError::fail(format!("offload failed: {err}"))),
            };
            let stats = Rc::new(RefCell::new(DiffStats::default()));
            let cc = DiffCc { vm, ebpf, stats: stats.clone() };
            let mut cfg = SimConfig::paper_scenario();
            cfg.duration_us = 1_500_000;
            evaluate_with(cfg, Box::new(cc));
            let s = stats.borrow();
            prop_assert!(s.decisions > 0, "trace produced no decisions for {src}");
            prop_assert_eq!(
                s.divergences, 0,
                "{}/{} decisions diverged for {}", s.divergences, s.decisions, src
            );
        }
    }
}
