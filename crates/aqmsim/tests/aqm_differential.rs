//! Differential test: the compiled kbpf verdict host vs the DSL
//! interpreter oracle, decision for decision, on live netsim scenarios.
//!
//! Both engines host the *same* `Mode::Aqm` expression; both manage a
//! bottleneck through whole scenario replays with decision recording on.
//! Any divergence would steer the two simulations apart, so the suite
//! checks the strongest observable first — the packet-for-packet decision
//! log — and then the downstream metrics, across the full preset matrix
//! for a library of searched-style policies (including one that exercises
//! the fault-latch path), then property-tests the same claim over random
//! verified expressions.

use policysmith_aqmsim::{metrics, scenario, AqmMetrics, AqmScenario, ExprAqm, LoggedDecision};
use policysmith_dsl::parse;

/// Searched-style verdict policies: sojourn gates (CoDel-flavoured),
/// occupancy gates (RED-flavoured), delay-estimate gates (PIE-flavoured),
/// ECN markers, spacing guards — the shapes the synthesis loop produces.
const POLICY_LIBRARY: &[&str] = &[
    "0",
    "if(pkt.sojourn > 8000, 2, 0)",
    "if(q.ewma_sojourn > 6000, 1, 0)",
    "if(q.bytes * 100 > q.capacity * 60, 2, 0)",
    "if(q.bytes * 8000000 / q.drain_rate > 15000, 1, 0)",
    "if(pkt.sojourn > 5000, if(aqm.since_drop < 20000, 0, 2), 0 - 1)",
    "if(q.pkts > 40, 2, if(q.ewma_sojourn > 10000, 1, 0))",
];

/// This one divides by `aqm.drops`, which is 0 until the first drop — it
/// must latch identically in both engines and degrade to drop-tail.
const FAULTING_POLICY: &str = "if(pkt.sojourn > 2000, 1000 / aqm.drops, 0)";

fn run_engine(
    sc: &AqmScenario,
    src: &str,
    compiled: bool,
) -> (AqmMetrics, Vec<LoggedDecision>, bool) {
    run_engine_expr(sc, &parse(src).unwrap(), compiled)
}

fn run_engine_expr(
    sc: &AqmScenario,
    e: &policysmith_dsl::Expr,
    compiled: bool,
) -> (AqmMetrics, Vec<LoggedDecision>, bool) {
    let host = if compiled {
        let h = ExprAqm::from_expr("vm", e);
        assert!(h.is_compiled(), "expr must compile for the differential to mean anything");
        h
    } else {
        ExprAqm::interpreted("interp", e.clone())
    };
    let host = host.record_decisions();
    let probe = host.probe();
    let m = metrics::run(sc, Box::new(host));
    (m, probe.decisions(), probe.faulted())
}

/// Preset matrix shortened so the full library × preset product stays
/// fast; the decision streams are still thousands of packets long.
fn short_presets() -> Vec<AqmScenario> {
    scenario::all_presets()
        .into_iter()
        .map(|mut sc| {
            sc.sim.duration_us = 3_000_000;
            sc
        })
        .collect()
}

#[test]
fn library_policies_agree_on_every_decision_across_presets() {
    for src in POLICY_LIBRARY {
        for sc in short_presets() {
            let (vm_m, vm_log, vm_fault) = run_engine(&sc, src, true);
            let (or_m, or_log, or_fault) = run_engine(&sc, src, false);
            assert!(
                vm_log.len() > 100,
                "{}/{src}: only {} decisions — scenario too short to mean anything",
                sc.name,
                vm_log.len()
            );
            assert_eq!(vm_log, or_log, "{}/{src}: decision streams diverged", sc.name);
            assert_eq!(vm_m, or_m, "{}/{src}: metrics diverged", sc.name);
            assert!(!vm_fault && !or_fault, "{}/{src}: verified policy faulted", sc.name);
        }
    }
}

#[test]
fn faulting_policy_latches_identically_in_both_engines() {
    for sc in short_presets() {
        let (vm_m, vm_log, vm_fault) = run_engine(&sc, FAULTING_POLICY, true);
        let (or_m, or_log, or_fault) = run_engine(&sc, FAULTING_POLICY, false);
        assert!(vm_fault, "{}: the zero divisor must be hit", sc.name);
        assert!(or_fault, "{}: the oracle must fault too", sc.name);
        assert_eq!(vm_log, or_log, "{}: latched fallback must be engine-independent", sc.name);
        assert_eq!(vm_m, or_m, "{}: post-latch metrics diverged", sc.name);
        // after the latch the host is drop-tail: same outcome as inert "0"
        let (dt_m, _, _) = run_engine(&sc, "0", true);
        assert_eq!(vm_m, dt_m, "{}: latched host must equal drop-tail", sc.name);
    }
}

mod proptest_differential {
    use super::*;
    use policysmith_dsl::{BinOp, CmpOp, Expr, Feature, Mode};
    use policysmith_kbpf::CompiledPolicy;
    use proptest::prelude::*;

    fn aqm_features() -> Vec<Feature> {
        vec![
            Feature::Now,
            Feature::PktSojournUs,
            Feature::PktSize,
            Feature::QueueBytes,
            Feature::QueuePkts,
            Feature::QueueCapacityBytes,
            Feature::DrainRateBps,
            Feature::SojournEwmaUs,
            Feature::SinceLastDropUs,
            Feature::AqmDrops,
        ]
    }

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (-4i64..8).prop_map(Expr::Int),
            (0i64..40_000).prop_map(Expr::Int),
            proptest::sample::select(aqm_features()).prop_map(Expr::Feat),
        ];
        leaf.prop_recursive(4, 24, 3, |inner| {
            prop_oneof![
                (
                    prop_oneof![
                        Just(BinOp::Add),
                        Just(BinOp::Sub),
                        Just(BinOp::Mul),
                        Just(BinOp::Div),
                        Just(BinOp::Rem),
                        Just(BinOp::Min),
                        Just(BinOp::Max),
                        Just(BinOp::Shr),
                    ],
                    inner.clone(),
                    inner.clone()
                )
                    .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
                (
                    prop_oneof![
                        Just(CmpOp::Lt),
                        Just(CmpOp::Le),
                        Just(CmpOp::Gt),
                        Just(CmpOp::Ge),
                        Just(CmpOp::Eq),
                        Just(CmpOp::Ne),
                    ],
                    inner.clone(),
                    inner.clone()
                )
                    .prop_map(|(op, a, b)| Expr::cmp(op, a, b)),
                (inner.clone(), inner.clone(), inner.clone())
                    .prop_map(|(a, b, c)| Expr::ite(a, b, c)),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random verified verdict policies replayed through both engines
        /// on the steady preset — identical decision streams, identical
        /// metrics, identical fault latching (random expressions *do* hit
        /// the runtime-fault path via unguarded divisions, so this also
        /// exercises the latch differentially).
        #[test]
        fn random_verified_policies_agree_on_whole_scenarios(e in arb_expr()) {
            if CompiledPolicy::compile(&e, Mode::Aqm).is_err() {
                // the pipeline rejects it (e.g. budget) — nothing to host
                return Ok(());
            }
            let mut sc = scenario::steady();
            sc.sim.duration_us = 1_000_000;
            let src = policysmith_dsl::to_source(&e);
            let (vm_m, vm_log, vm_fault) = run_engine_expr(&sc, &e, true);
            let (or_m, or_log, or_fault) = run_engine_expr(&sc, &e, false);
            prop_assert!(!vm_log.is_empty(), "no decisions for `{}`", src);
            prop_assert_eq!(vm_fault, or_fault, "fault latch diverged for `{}`", src);
            prop_assert_eq!(vm_log, or_log, "decision streams diverged for `{}`", src);
            prop_assert_eq!(vm_m, or_m, "metrics diverged for `{}`", src);
        }
    }
}
