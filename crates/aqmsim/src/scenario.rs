//! Scenario presets — the "contexts" of the AQM study.
//!
//! Each preset fixes a bottleneck configuration and a flow population, so
//! a scenario names a reproducible context exactly the way a fleet +
//! workload does in the load-balancing study. Six presets ship
//! ([`all_presets`]), spanning the stress axes an AQM cares about: the
//! standing-queue baseline ([`steady`]), traffic burstiness ([`bursty`]),
//! flow-count shift ([`many_flows`]), capacity loss ([`rate_drop`]), the
//! RTT regime where CoDel's 5 ms target is *larger* than the path RTT
//! ([`low_rtt`]), and congestion-controller heterogeneity ([`heavy_mix`]).
//!
//! Every preset uses a buffer several bandwidth-delay products deep — the
//! bufferbloat regime the AQM literature targets: drop-tail fills the
//! buffer and serves every packet tens of milliseconds late, so there is
//! real delay for a policy to win back.

use policysmith_cc::baselines::{BbrLite, Cubic, Reno};
use policysmith_netsim::{CcView, CongestionControl, SimConfig};

/// One flow in a scenario, by congestion-controller kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowSpec {
    /// TCP Reno (AIMD).
    Reno,
    /// CUBIC, the Linux default.
    Cubic,
    /// Simplified model-based BBR.
    BbrLite,
    /// Reno gated by a deterministic on/off square wave: the flow runs
    /// Reno during `on_us` of every `period_us` and pins its window to one
    /// segment otherwise. The classic bursty-load shape that punishes
    /// AQMs tuned only for long-lived flows.
    OnOffReno { period_us: u64, on_us: u64, phase_us: u64 },
}

impl FlowSpec {
    /// Instantiate the congestion controller for this flow. `seed` rotates
    /// the phase of on/off flows (presets with only long-lived flows are
    /// seed-invariant), so [`AqmScenario::with_seed`] reshards the bursty
    /// contexts the way workload seeds reshard the lb presets.
    pub fn build(&self, seed: u64) -> Box<dyn CongestionControl> {
        match *self {
            FlowSpec::Reno => Box::new(Reno::new()),
            FlowSpec::Cubic => Box::new(Cubic::new()),
            FlowSpec::BbrLite => Box::new(BbrLite::new()),
            FlowSpec::OnOffReno { period_us, on_us, phase_us } => {
                let rotated =
                    (phase_us + seed.wrapping_mul(0x9e3779b97f4a7c15) % period_us) % period_us;
                Box::new(OnOffReno::new(period_us, on_us, rotated))
            }
        }
    }
}

/// Reno behind a deterministic duty cycle: active during the first
/// `on_us` of each `period_us` (shifted by `phase_us`), window pinned to
/// one segment otherwise. Reno's internal state persists across off
/// windows, so each on window re-ramps from a single segment — a square
/// wave of demand against the bottleneck.
#[derive(Debug)]
pub struct OnOffReno {
    inner: Reno,
    period_us: u64,
    on_us: u64,
    phase_us: u64,
}

impl OnOffReno {
    pub fn new(period_us: u64, on_us: u64, phase_us: u64) -> Self {
        assert!(period_us > 0 && on_us > 0 && on_us <= period_us, "degenerate duty cycle");
        OnOffReno { inner: Reno::new(), period_us, on_us, phase_us }
    }

    /// Is the flow in an on window at `now_us`?
    pub fn active(&self, now_us: u64) -> bool {
        (now_us + self.phase_us) % self.period_us < self.on_us
    }
}

impl CongestionControl for OnOffReno {
    fn name(&self) -> &str {
        "on-off-reno"
    }

    fn on_ack(&mut self, v: &CcView<'_>) -> u64 {
        if self.active(v.now_us) {
            self.inner.on_ack(v)
        } else {
            1
        }
    }

    fn on_loss(&mut self, v: &CcView<'_>) -> u64 {
        if self.active(v.now_us) {
            self.inner.on_loss(v)
        } else {
            1
        }
    }
}

/// A named, reproducible AQM context: bottleneck + flow population + seed.
#[derive(Debug, Clone)]
pub struct AqmScenario {
    /// Context identifier (e.g. `aqm/bursty`).
    pub name: String,
    /// Link, duration, MSS, timer period.
    pub sim: SimConfig,
    /// The flows sharing the bottleneck.
    pub flows: Vec<FlowSpec>,
    /// Phase seed for on/off flows (long-lived flows ignore it).
    pub seed: u64,
}

impl AqmScenario {
    /// Instantiate this scenario's congestion controllers.
    pub fn build_flows(&self) -> Vec<Box<dyn CongestionControl>> {
        self.flows.iter().map(|f| f.build(self.seed)).collect()
    }

    /// The same context with a different phase seed — statistically the
    /// same burst pattern, differently aligned against the AQM's clocks.
    pub fn with_seed(mut self, seed: u64) -> AqmScenario {
        self.seed = seed;
        self
    }

    /// One-way propagation delay of the bottleneck, µs.
    pub fn prop_delay_us(&self) -> u64 {
        self.sim.link.delay_us
    }
}

/// Paper link (12 Mbps / 20 ms) with an `n`-BDP buffer over `dur_us`.
fn deep_paper(n: u64, dur_us: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_scenario();
    cfg.link.queue_bytes = n * cfg.link.bdp_bytes();
    cfg.duration_us = dur_us;
    cfg
}

/// Two long-lived Reno flows on the paper link with a 4-BDP buffer: the
/// canonical bufferbloat context. Drop-tail builds a standing queue tens
/// of milliseconds deep; any sane AQM wins most of it back.
pub fn steady() -> AqmScenario {
    AqmScenario {
        name: "aqm/steady".into(),
        sim: deep_paper(4, 10_000_000),
        flows: vec![FlowSpec::Reno, FlowSpec::Reno],
        seed: 0xA1,
    }
}

/// Two long-lived Reno flows plus two on/off square-wave flows in
/// anti-phase (1 s on in every 2 s): bursts repeatedly slam the queue and
/// drain away, stressing burst tolerance vs standing-queue control.
pub fn bursty() -> AqmScenario {
    AqmScenario {
        name: "aqm/bursty".into(),
        sim: deep_paper(4, 10_000_000),
        flows: vec![
            FlowSpec::Reno,
            FlowSpec::Reno,
            FlowSpec::OnOffReno { period_us: 2_000_000, on_us: 1_000_000, phase_us: 0 },
            FlowSpec::OnOffReno { period_us: 2_000_000, on_us: 1_000_000, phase_us: 1_000_000 },
        ],
        seed: 0xB2,
    }
}

/// Eight Reno flows on the same bottleneck: the flow-count shift. Each
/// flow's fair share is a fifth of a BDP, so per-flow sawtooths are
/// shallow but their sum keeps the buffer pressurized continuously.
pub fn many_flows() -> AqmScenario {
    AqmScenario {
        name: "aqm/many-flows".into(),
        sim: deep_paper(4, 10_000_000),
        flows: vec![FlowSpec::Reno; 8],
        seed: 0xC3,
    }
}

/// Capacity loss: the same buffer provisioned for the 12 Mbps paper link,
/// but the link now runs at 3 Mbps (a rate-limited cellular dip). The
/// buffer is suddenly ~16 BDP deep, so uncontrolled queues cost hundreds
/// of milliseconds.
pub fn rate_drop() -> AqmScenario {
    let mut sim = deep_paper(4, 10_000_000);
    sim.link.rate_bps = 3_000_000;
    AqmScenario {
        name: "aqm/rate-drop".into(),
        sim,
        flows: vec![FlowSpec::Reno, FlowSpec::Reno],
        seed: 0xD4,
    }
}

/// Datacenter-ish RTT: 12 Mbps at 2 ms one-way delay with a buffer deep
/// relative to the tiny BDP. The path RTT (4 ms) sits *below* CoDel's
/// 5 ms sojourn target, the regime where man-made wide-area defaults are
/// mistuned and a searched policy can specialize.
pub fn low_rtt() -> AqmScenario {
    let mut sim = SimConfig::paper_scenario();
    sim.link.delay_us = 2_000;
    sim.link.queue_bytes = 8 * sim.link.bdp_bytes();
    sim.duration_us = 10_000_000;
    AqmScenario {
        name: "aqm/low-rtt".into(),
        sim,
        flows: vec![FlowSpec::Reno, FlowSpec::Reno],
        seed: 0xE5,
    }
}

/// Heterogeneous congestion controllers — Reno, CUBIC and BBR-lite share
/// the bottleneck. Loss-based and model-based flows respond differently
/// to the same drop/mark signal, so per-policy aggressiveness assumptions
/// break.
pub fn heavy_mix() -> AqmScenario {
    AqmScenario {
        name: "aqm/heavy-mix".into(),
        sim: deep_paper(4, 10_000_000),
        flows: vec![FlowSpec::Reno, FlowSpec::Cubic, FlowSpec::BbrLite],
        seed: 0xF6,
    }
}

/// All scenario presets, benign first. These double as the drift contexts
/// of the adaptive-controller story: a policy synthesized on one preset
/// meets the others as distribution shift.
pub fn all_presets() -> Vec<AqmScenario> {
    vec![steady(), bursty(), many_flows(), rate_drop(), low_rtt(), heavy_mix()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_buffer_is_deep() {
        let presets = all_presets();
        let names: std::collections::HashSet<String> =
            presets.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), 6);
        for sc in &presets {
            assert!(!sc.flows.is_empty(), "{}", sc.name);
            assert!(
                sc.sim.link.queue_bytes >= 4 * sc.sim.link.bdp_bytes(),
                "{} must be a bufferbloat context",
                sc.name
            );
        }
    }

    #[test]
    fn on_off_wave_has_the_documented_duty_cycle() {
        let w = OnOffReno::new(2_000_000, 1_000_000, 0);
        assert!(w.active(0) && w.active(999_999));
        assert!(!w.active(1_000_000) && !w.active(1_999_999));
        assert!(w.active(2_000_000));
        let anti = OnOffReno::new(2_000_000, 1_000_000, 1_000_000);
        assert!(!anti.active(0) && anti.active(1_000_000), "anti-phase flow is shifted");
    }

    #[test]
    fn seed_rotates_only_on_off_phases() {
        // long-lived presets are seed-invariant by construction
        let s = steady().with_seed(99);
        assert_eq!(s.seed, 99);
        assert_eq!(s.build_flows().len(), 2);
        // bursty phases move with the seed but stay inside the period
        let b = bursty();
        for seed in [0u64, 1, 7, 0xFFFF] {
            for f in b.clone().with_seed(seed).build_flows() {
                assert!(f.name() == "reno" || f.name() == "on-off-reno");
            }
        }
    }
}
