//! The man-made AQM baseline registry.
//!
//! Mirrors `lbsim::dispatch::by_name`: the league table, the study's
//! reference points, and the CLI all name baselines by these strings.
//! The algorithms themselves live in `netsim::aqm` next to the bottleneck
//! they manage; this registry just constructs them with their canonical
//! (RFC-default) parameters. `drop-tail` — the do-nothing policy the
//! byte-bounded queue already implements — is the natural denominator:
//! it is what a bottleneck does before anyone writes an AQM at all.

use policysmith_netsim::{AqmPolicy, CoDel, DropTail, Pie};

/// Every registered man-made baseline, denominator first.
pub fn aqm_baseline_names() -> &'static [&'static str] {
    &["drop-tail", "codel", "pie"]
}

/// Construct a baseline by name with canonical parameters.
pub fn by_name(name: &str) -> Option<Box<dyn AqmPolicy>> {
    Some(match name {
        "drop-tail" => Box::new(DropTail),
        "codel" => Box::new(CoDel::new()),
        "pie" => Box::new(Pie::new()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_match_policy_names() {
        for name in aqm_baseline_names() {
            let p = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(p.name(), *name);
        }
        assert!(by_name("red").is_none());
    }
}
