//! Scenario runner and the **power** score.
//!
//! AQM is a two-objective problem: keep the link busy *and* the queue
//! short. Following the classic network-power framing (Kleinrock), we
//! collapse the trade-off into one number:
//!
//! ```text
//! power = aggregate_utilization × RTT_min / (RTT_min + mean_sojourn)
//! ```
//!
//! where `RTT_min = 2 × one-way propagation delay`. A policy that fills
//! the link with an empty queue scores its utilization; every microsecond
//! of standing queue discounts it by the induced RTT inflation. Drop-tail
//! in a bufferbloat context scores poorly despite full utilization; an
//! over-aggressive dropper scores poorly despite an empty queue. Higher
//! is better, 1.0 is the unreachable ideal.

use crate::scenario::AqmScenario;
use policysmith_netsim::{AqmPolicy, FlowMetrics, Simulation};

/// Outcome of one `(scenario, aqm)` run.
#[derive(Debug, Clone, PartialEq)]
pub struct AqmMetrics {
    /// Per-flow transport metrics, flow order as in the scenario.
    pub flows: Vec<FlowMetrics>,
    /// Sum of per-flow goodput fractions, capped at 1.
    pub agg_utilization: f64,
    /// Mean bottleneck sojourn over forwarded packets, µs.
    pub mean_sojourn_us: f64,
    /// Worst single-packet sojourn, µs.
    pub max_sojourn_us: u64,
    /// Packets refused by the queue's byte bound (tail drops).
    pub tail_drops: u64,
    /// Packets dropped or CE-marked by the AQM policy.
    pub aqm_drops: u64,
    /// Packets CE-marked (subset of `aqm_drops`).
    pub ecn_marks: u64,
    /// The combined utilization-vs-delay score (higher is better).
    pub power: f64,
}

/// The power score for an arbitrary `(utilization, sojourn)` point on a
/// path with one-way propagation delay `prop_delay_us`.
pub fn power(agg_utilization: f64, mean_sojourn_us: f64, prop_delay_us: u64) -> f64 {
    let rtt_min = 2.0 * prop_delay_us as f64;
    agg_utilization * rtt_min / (rtt_min + mean_sojourn_us.max(0.0))
}

/// Replay `scenario` with `aqm` managing the bottleneck. Pure function of
/// its inputs — runs are bit-for-bit reproducible.
pub fn run(scenario: &AqmScenario, aqm: Box<dyn AqmPolicy>) -> AqmMetrics {
    let mut sim = Simulation::with_aqm(scenario.sim, scenario.build_flows(), aqm);
    let flows = sim.run();
    let agg_utilization = flows.iter().map(|m| m.utilization).sum::<f64>().min(1.0);
    let mean_sojourn_us = sim.mean_qdelay_us();
    AqmMetrics {
        agg_utilization,
        mean_sojourn_us,
        max_sojourn_us: sim.max_qdelay_us(),
        tail_drops: sim.drops(),
        aqm_drops: sim.aqm_drops(),
        ecn_marks: sim.ecn_marks(),
        power: power(agg_utilization, mean_sojourn_us, scenario.prop_delay_us()),
        flows,
    }
}

/// Replay `scenario` with a named baseline (panics on unknown name).
pub fn run_baseline(scenario: &AqmScenario, name: &str) -> AqmMetrics {
    let aqm =
        crate::baselines::by_name(name).unwrap_or_else(|| panic!("unknown aqm baseline `{name}`"));
    run(scenario, aqm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn power_rewards_busy_links_and_short_queues() {
        assert!(power(1.0, 0.0, 20_000) > 0.999);
        // a 40 ms standing queue on a 40 ms path halves the score
        let bloated = power(1.0, 40_000.0, 20_000);
        assert!((bloated - 0.5).abs() < 1e-9, "{bloated}");
        // idle link scores zero no matter how short the queue
        assert_eq!(power(0.0, 0.0, 20_000), 0.0);
        // at equal delay, utilization orders the score
        assert!(power(0.9, 5_000.0, 20_000) > power(0.7, 5_000.0, 20_000));
    }

    #[test]
    fn codel_out_powers_droptail_on_the_steady_preset() {
        let sc = scenario::steady();
        let dt = run_baseline(&sc, "drop-tail");
        let cd = run_baseline(&sc, "codel");
        assert!(dt.mean_sojourn_us > 30_000.0, "drop-tail must bloat: {}", dt.mean_sojourn_us);
        assert!(cd.mean_sojourn_us < 15_000.0, "codel must control: {}", cd.mean_sojourn_us);
        assert!(cd.power > dt.power, "codel {} vs drop-tail {}", cd.power, dt.power);
        assert_eq!(dt.aqm_drops, 0);
        assert!(cd.aqm_drops > 0);
    }

    #[test]
    fn every_baseline_completes_every_preset() {
        for sc in scenario::all_presets() {
            for name in crate::baselines::aqm_baseline_names() {
                let m = run_baseline(&sc, name);
                assert!(m.agg_utilization > 0.2, "{}/{name}: util {}", sc.name, m.agg_utilization);
                assert!(m.mean_sojourn_us.is_finite(), "{}/{name}", sc.name);
                assert!(m.power > 0.0 && m.power <= 1.0, "{}/{name}: {}", sc.name, m.power);
                assert_eq!(m.flows.len(), sc.flows.len());
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let sc = scenario::bursty();
        assert_eq!(run_baseline(&sc, "pie"), run_baseline(&sc, "pie"));
    }
}
