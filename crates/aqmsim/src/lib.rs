//! # policysmith-aqmsim — AQM / packet-scheduling simulation substrate
//!
//! The **fourth** PolicySmith workload: active queue management at a
//! shared bottleneck — the setting where three decades of man-made
//! heuristics (RED, CoDel, PIE, ...) fight bufferbloat with hand-tuned
//! targets and intervals, and exactly the kind of per-packet "systems
//! controller" §2 of the paper argues should be searched for rather than
//! hand-written.
//!
//! Built directly on `policysmith-netsim`'s bottleneck (which owns the
//! [`AqmPolicy`] decision hook and the
//! CoDel / PIE / drop-tail implementations) and `policysmith-cc`'s
//! congestion-control baselines:
//!
//! * [`scenario`] — six named presets ([`scenario::all_presets`]) spanning
//!   standing queues, bursty on/off traffic, flow-count shift, capacity
//!   loss, low-RTT regimes, and heterogeneous congestion controllers,
//!   plus the [`OnOffReno`] square-wave flow wrapper;
//! * [`baselines`] — the registry of man-made policies by name
//!   (`drop-tail`, `codel`, `pie`);
//! * [`policy`] — the PolicySmith **template host**: a synthesized
//!   `Mode::Aqm` verdict expression decides Pass / Mark / Drop per
//!   head-of-line packet (runtime faults are latched and the bottleneck
//!   degrades to drop-tail), observable through an [`AqmProbe`] after the
//!   simulation consumes the host;
//! * [`metrics`] — the scenario runner and the **power** score
//!   (utilization discounted by RTT inflation), the study's objective.
//!
//! Everything is integer-microsecond virtual time; a run is a pure
//! function of `(scenario, policy)` — bit-for-bit reproducible.
//!
//! ```
//! use policysmith_aqmsim::{run_baseline, scenario};
//!
//! let sc = scenario::steady();
//! let dt = run_baseline(&sc, "drop-tail");
//! let cd = run_baseline(&sc, "codel");
//! assert!(cd.power > dt.power, "CoDel beats bufferbloat on power");
//! ```

pub mod baselines;
pub mod metrics;
pub mod policy;
pub mod scenario;

pub use baselines::{aqm_baseline_names, by_name};
// The hook trait and the man-made implementations ride along because the
// runner and registry traffic in them: callers hosting a policy should
// not need a direct netsim dependency.
pub use metrics::{power, run, run_baseline, AqmMetrics};
pub use policy::{AqmProbe, ExprAqm, LoggedDecision};
pub use policysmith_netsim::{AqmDecision, AqmPolicy, AqmView, CoDel, DropTail, Pie};
pub use scenario::{AqmScenario, FlowSpec, OnOffReno};
