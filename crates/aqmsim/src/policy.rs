//! The PolicySmith template host for active queue management.
//!
//! A synthesized candidate arrives as a verified [`CompiledPolicy`] in
//! [`Mode::Aqm`]; the host executes its kbpf program once per head-of-line
//! packet at the bottleneck's dequeue hook — filling a flat, reusable
//! context slab from the [`AqmView`] snapshot, no allocation, no
//! tree-walking — and maps the returned **verdict** onto the decision:
//! `<= 0` forwards the packet, `== 1` ECN-marks it, `>= 2` drops it.
//!
//! The DSL interpreter is *not* on this hot path. It survives behind
//! [`ExprAqm::interpreted`] as the differential oracle: the integration
//! suite replays whole scenarios through both engines and demands
//! decision-for-decision equality.
//!
//! Runtime faults (division by zero despite the checker's warning; the
//! compile pipeline marks such candidates `may_fault`) follow the
//! userspace-template contract: the first error is **latched**, every
//! later decision is `Pass` — the bottleneck degrades to plain drop-tail
//! so the simulation still completes with exact accounting — and the
//! study scores the candidate as a hard failure.
//!
//! Because [`Simulation::with_aqm`](policysmith_netsim::Simulation)
//! consumes the policy box, post-run observables (the latched fault, the
//! optional decision log) are read through a shared [`AqmProbe`] handle
//! cloned off the host before it is boxed.

use policysmith_dsl::{eval, Expr, Feature, FeatureEnv, Mode};
use policysmith_kbpf::{CompiledPolicy, RuntimeFault, SPILL_SLOTS};
use policysmith_netsim::{AqmDecision, AqmPolicy, AqmView};
use std::cell::RefCell;
use std::rc::Rc;

/// One logged dequeue decision: `(now_us, pkt_size, decision)` — enough
/// to compare two engines packet-for-packet.
pub type LoggedDecision = (u64, u32, AqmDecision);

#[derive(Default)]
struct ProbeState {
    first_error: Option<RuntimeFault>,
    record: bool,
    decisions: Vec<LoggedDecision>,
}

/// Shared observation handle onto a (possibly consumed) [`ExprAqm`].
#[derive(Clone, Default)]
pub struct AqmProbe {
    state: Rc<RefCell<ProbeState>>,
}

impl AqmProbe {
    /// Did a runtime fault latch? The study's hard-failure signal.
    pub fn faulted(&self) -> bool {
        self.state.borrow().first_error.is_some()
    }

    /// The latched fault, rendered (faults carry VM/interp error detail).
    pub fn first_error(&self) -> Option<String> {
        self.state.borrow().first_error.as_ref().map(|e| e.to_string())
    }

    /// The recorded dequeue decisions (empty unless recording was enabled
    /// via [`ExprAqm::record_decisions`]).
    pub fn decisions(&self) -> Vec<LoggedDecision> {
        self.state.borrow().decisions.clone()
    }
}

/// AQM policy backed by a `Mode::Aqm` verdict expression.
pub struct ExprAqm {
    name: String,
    engine: Engine,
    probe: AqmProbe,
}

enum Engine {
    /// The production path: compiled bytecode + reusable ctx slab/map,
    /// with the layout pre-split into a fill plan (which slot gets which
    /// [`AqmView`] field) so the hot path does no feature matching.
    Compiled { policy: CompiledPolicy, ctx: Vec<i64>, map: Vec<i64>, slots: FillPlan },
    /// The reference oracle: `dsl::eval` over a flat field-read
    /// environment, kept for differential testing only.
    Interpreted { expr: Expr },
}

/// `(ctx slot, view field to write there)` pairs, precomputed per layout.
type FillPlan = Vec<(usize, ViewField)>;

#[derive(Clone, Copy)]
enum ViewField {
    Now,
    Sojourn,
    PktSize,
    QueueBytes,
    QueuePkts,
    Capacity,
    DrainRate,
    EwmaSojourn,
    SinceDrop,
    Drops,
}

fn fill_plan(policy: &CompiledPolicy) -> FillPlan {
    policy
        .layout()
        .features()
        .iter()
        .enumerate()
        .map(|(slot, f)| {
            let field = match f {
                Feature::Now => ViewField::Now,
                Feature::PktSojournUs => ViewField::Sojourn,
                Feature::PktSize => ViewField::PktSize,
                Feature::QueueBytes => ViewField::QueueBytes,
                Feature::QueuePkts => ViewField::QueuePkts,
                Feature::QueueCapacityBytes => ViewField::Capacity,
                Feature::DrainRateBps => ViewField::DrainRate,
                Feature::SojournEwmaUs => ViewField::EwmaSojourn,
                Feature::SinceLastDropUs => ViewField::SinceDrop,
                Feature::AqmDrops => ViewField::Drops,
                // non-aqm features cannot survive the Mode::Aqm check
                _ => unreachable!("non-aqm feature in a Mode::Aqm layout"),
            };
            (slot, field)
        })
        .collect()
}

fn read_field(view: &AqmView, field: ViewField) -> i64 {
    match field {
        ViewField::Now => view.now_us as i64,
        ViewField::Sojourn => view.sojourn_us as i64,
        ViewField::PktSize => view.pkt_size as i64,
        ViewField::QueueBytes => view.backlog_bytes as i64,
        ViewField::QueuePkts => view.backlog_pkts as i64,
        ViewField::Capacity => view.capacity_bytes as i64,
        ViewField::DrainRate => view.drain_rate_bps as i64,
        ViewField::EwmaSojourn => view.ewma_sojourn_us as i64,
        ViewField::SinceDrop => view.since_drop_us as i64,
        ViewField::Drops => view.drops as i64,
    }
}

/// Map a template verdict onto the bottleneck decision.
fn verdict_to_decision(v: i64) -> AqmDecision {
    match v {
        i64::MIN..=0 => AqmDecision::Pass,
        1 => AqmDecision::Mark,
        _ => AqmDecision::Drop,
    }
}

impl ExprAqm {
    /// Host a compiled (checked, lowered, verified) verdict policy.
    pub fn new(name: &str, policy: CompiledPolicy) -> Self {
        debug_assert_eq!(policy.mode(), Mode::Aqm, "aqm host needs a Mode::Aqm policy");
        let slots = fill_plan(&policy);
        ExprAqm {
            name: name.to_string(),
            engine: Engine::Compiled {
                ctx: vec![0; policy.layout().len()],
                map: vec![0; SPILL_SLOTS],
                policy,
                slots,
            },
            probe: AqmProbe::default(),
        }
    }

    /// Compile `expr` for `Mode::Aqm` and host it. Expressions the compile
    /// pipeline rejects outright (float literals; every other rejection is
    /// impossible for checked aqm source) fall back to the interpreter so
    /// hosting stays total.
    pub fn from_expr(name: &str, expr: &Expr) -> Self {
        match CompiledPolicy::compile(expr, Mode::Aqm) {
            Ok(policy) => Self::new(name, policy),
            Err(_) => Self::interpreted(name, expr.clone()),
        }
    }

    /// Host via the reference interpreter — the differential oracle.
    pub fn interpreted(name: &str, expr: Expr) -> Self {
        ExprAqm {
            name: name.to_string(),
            engine: Engine::Interpreted { expr },
            probe: AqmProbe::default(),
        }
    }

    /// A shared handle onto this host's fault latch and decision log —
    /// clone it before boxing the host into the simulation.
    pub fn probe(&self) -> AqmProbe {
        self.probe.clone()
    }

    /// Record every dequeue decision into the probe (differential tests).
    pub fn record_decisions(self) -> Self {
        self.probe.state.borrow_mut().record = true;
        self
    }

    /// Is this host running compiled bytecode (vs the interpreter oracle)?
    pub fn is_compiled(&self) -> bool {
        matches!(self.engine, Engine::Compiled { .. })
    }

    /// The first runtime fault, if any occurred.
    pub fn first_error(&self) -> Option<String> {
        self.probe.first_error()
    }

    fn decide(&mut self, view: &AqmView) -> AqmDecision {
        if self.probe.faulted() {
            // latched failure: degrade to drop-tail, keep the run exact
            return AqmDecision::Pass;
        }
        let verdict = match &mut self.engine {
            Engine::Compiled { policy, ctx, map, slots } => {
                for &(slot, field) in slots.iter() {
                    ctx[slot] = read_field(view, field);
                }
                policy.run(ctx, map).map_err(RuntimeFault::Vm)
            }
            Engine::Interpreted { expr } => {
                eval(expr, &OracleEnv { view }).map_err(RuntimeFault::Interp)
            }
        };
        match verdict {
            Ok(v) => verdict_to_decision(v),
            Err(e) => {
                self.probe.state.borrow_mut().first_error = Some(e);
                AqmDecision::Pass
            }
        }
    }
}

impl AqmPolicy for ExprAqm {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_enqueue(&mut self, _view: &AqmView) -> AqmDecision {
        // the template acts at the dequeue hook (the prompt's contract);
        // admission control stays with the queue's byte bound
        AqmDecision::Pass
    }

    fn on_dequeue(&mut self, view: &AqmView) -> AqmDecision {
        let d = self.decide(view);
        let mut st = self.probe.state.borrow_mut();
        if st.record {
            st.decisions.push((view.now_us, view.pkt_size, d));
        }
        d
    }
}

/// The oracle's per-decision feature environment: plain field reads off
/// the borrowed view — the same dense treatment the compiled engine's
/// fill plan gets.
struct OracleEnv<'a> {
    view: &'a AqmView,
}

impl FeatureEnv for OracleEnv<'_> {
    fn feature(&self, f: Feature) -> i64 {
        match f {
            Feature::Now => self.view.now_us as i64,
            Feature::PktSojournUs => self.view.sojourn_us as i64,
            Feature::PktSize => self.view.pkt_size as i64,
            Feature::QueueBytes => self.view.backlog_bytes as i64,
            Feature::QueuePkts => self.view.backlog_pkts as i64,
            Feature::QueueCapacityBytes => self.view.capacity_bytes as i64,
            Feature::DrainRateBps => self.view.drain_rate_bps as i64,
            Feature::SojournEwmaUs => self.view.ewma_sojourn_us as i64,
            Feature::SinceLastDropUs => self.view.since_drop_us as i64,
            Feature::AqmDrops => self.view.drops as i64,
            // non-aqm features cannot survive the Mode::Aqm check; be total
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policysmith_dsl::parse;

    fn view(sojourn_us: u64, backlog_pkts: u64) -> AqmView {
        AqmView {
            now_us: 1_000_000,
            pkt_size: 1500,
            sojourn_us,
            backlog_bytes: backlog_pkts * 1500,
            backlog_pkts,
            capacity_bytes: 240_000,
            drain_rate_bps: 12_000_000,
            ewma_sojourn_us: sojourn_us,
            since_drop_us: 1_000_000,
            drops: 0,
        }
    }

    fn host(src: &str) -> ExprAqm {
        let e = parse(src).unwrap();
        let policy = CompiledPolicy::compile(&e, Mode::Aqm).unwrap();
        ExprAqm::new("test", policy)
    }

    #[test]
    fn verdict_bands_map_to_decisions() {
        // a sojourn gate: 2 (drop) above 10 ms, 1 (mark) above 5 ms, else 0
        let mut h = host("if(pkt.sojourn > 10000, 2, if(pkt.sojourn > 5000, 1, 0))");
        assert!(h.is_compiled(), "study candidates must run compiled");
        assert_eq!(h.on_dequeue(&view(1_000, 4)), AqmDecision::Pass);
        assert_eq!(h.on_dequeue(&view(7_000, 4)), AqmDecision::Mark);
        assert_eq!(h.on_dequeue(&view(20_000, 4)), AqmDecision::Drop);
    }

    #[test]
    fn negative_verdicts_pass() {
        let mut h = host("0 - aqm.drops");
        assert_eq!(h.on_dequeue(&view(9_000, 4)), AqmDecision::Pass);
    }

    #[test]
    fn large_verdicts_drop() {
        let mut h = host("q.pkts * 100");
        assert_eq!(h.on_dequeue(&view(0, 3)), AqmDecision::Drop);
    }

    #[test]
    fn enqueue_hook_is_inert() {
        let mut h = host("2");
        assert_eq!(h.on_enqueue(&view(0, 0)), AqmDecision::Pass);
        assert_eq!(h.on_dequeue(&view(0, 0)), AqmDecision::Drop);
    }

    #[test]
    fn runtime_fault_latches_and_degrades_to_droptail() {
        // aqm.drops is 0 before any drop → division by zero at runtime
        let mut h = host("1000 / aqm.drops");
        let probe = h.probe();
        assert!(!probe.faulted());
        assert_eq!(h.on_dequeue(&view(50_000, 40)), AqmDecision::Pass);
        assert!(probe.faulted(), "fault must latch");
        assert!(probe.first_error().is_some());
        // every later decision passes, whatever the queue looks like
        assert_eq!(h.on_dequeue(&view(500_000, 100)), AqmDecision::Pass);
    }

    #[test]
    fn probe_survives_the_host_being_boxed() {
        let h = host("1000 / aqm.drops");
        let probe = h.probe();
        let mut boxed: Box<dyn AqmPolicy> = Box::new(h);
        boxed.on_dequeue(&view(10_000, 8));
        assert!(probe.faulted(), "probe must observe the consumed host");
    }

    #[test]
    fn decision_log_records_the_dequeue_stream() {
        let h = host("if(pkt.sojourn > 5000, 2, 0)").record_decisions();
        let probe = h.probe();
        let mut boxed: Box<dyn AqmPolicy> = Box::new(h);
        boxed.on_dequeue(&view(1_000, 2));
        boxed.on_dequeue(&view(9_000, 2));
        let log = probe.decisions();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].2, AqmDecision::Pass);
        assert_eq!(log[1].2, AqmDecision::Drop);
    }

    #[test]
    fn compiled_and_interpreted_agree_per_decision() {
        let srcs = [
            "if(pkt.sojourn > 5000, 2, 0)",
            "if(q.bytes * 100 > q.capacity * 60, 1, 0)",
            "if(q.bytes * 8000000 / q.drain_rate > 15000, 2, 0 - 1)",
        ];
        for src in srcs {
            let e = parse(src).unwrap();
            let mut vm = ExprAqm::from_expr("vm", &e);
            let mut oracle = ExprAqm::interpreted("interp", e.clone());
            assert!(vm.is_compiled());
            for (s, b) in [(0u64, 0u64), (3_000, 2), (8_000, 10), (40_000, 60), (200_000, 150)] {
                let v = view(s, b);
                assert_eq!(vm.on_dequeue(&v), oracle.on_dequeue(&v), "diverged on `{src}`");
            }
        }
    }
}
