//! The shard-merge contract, proven property-style: recording samples
//! into per-shard histograms and merging equals recording everything into
//! one histogram — same count, same every-quantile, same mean/max — both
//! for plain `LatencyHistogram::merge` and for the registry's lock-free
//! reader-side merge of `AtomicHistogram` shards.

use policysmith_obs::{LatencyHistogram, MetricsRegistry};
use proptest::prelude::*;

/// Quantile ladder dense enough to cross every occupied bucket boundary
/// for the sample counts proptest generates.
fn ladder() -> Vec<f64> {
    let mut qs: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
    qs.extend([0.001, 0.999, 0.9999]);
    qs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-shard recording + merge ≡ one histogram, counts and every
    /// quantile.
    #[test]
    fn merging_shard_histograms_equals_recording_into_one(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..2_000_000, 0..60),
            1..6,
        ),
    ) {
        let mut one = LatencyHistogram::new();
        let mut merged = LatencyHistogram::new();
        for samples in &shards {
            let mut h = LatencyHistogram::new();
            for &v in samples {
                h.record(v);
                one.record(v);
            }
            merged.merge(&h);
        }
        prop_assert_eq!(merged.count(), one.count());
        prop_assert_eq!(merged.max(), one.max());
        prop_assert_eq!(merged.mean(), one.mean());
        let qs = ladder();
        prop_assert_eq!(merged.quantiles(&qs), one.quantiles(&qs));
        for &q in &qs {
            prop_assert_eq!(merged.quantile(q), one.quantile(q));
        }
    }

    /// The registry's reader-side merge over atomic shards obeys the same
    /// identity (and each shard snapshot matches its own samples).
    #[test]
    fn registry_hist_merge_equals_single_histogram(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..10_000_000, 0..40),
            1..5,
        ),
    ) {
        let mut reg = MetricsRegistry::new(shards.len());
        let hid = reg.histogram("t_ns");
        let mut one = LatencyHistogram::new();
        for (w, samples) in shards.iter().enumerate() {
            let shard = reg.shard(w);
            for &v in samples {
                shard.record(hid, v);
                one.record(v);
            }
        }
        let merged = reg.hist_merged(hid);
        prop_assert_eq!(merged.count(), one.count());
        let qs = ladder();
        prop_assert_eq!(merged.quantiles(&qs), one.quantiles(&qs));
        for (w, samples) in shards.iter().enumerate() {
            prop_assert_eq!(reg.hist_shard(hid, w).count(), samples.len() as u64);
        }
    }

    /// Quantiles are monotone in q on any histogram, and batch lookup
    /// agrees with single lookups.
    #[test]
    fn quantiles_are_monotone_and_batch_consistent(
        samples in proptest::collection::vec(0u64..u64::MAX, 0..80),
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let qs = ladder();
        let batch = h.quantiles(&qs);
        let mut last = 0u64;
        // ladder() is ascending over 0..=1.0 for the first 101 entries
        for (q, &got) in qs.iter().zip(&batch).take(101) {
            prop_assert!(got >= last, "quantile({q}) = {got} < {last}");
            prop_assert_eq!(got, h.quantile(*q));
            last = got;
        }
    }
}
