//! Policy-lifecycle tracing: a bounded ring-buffer event log with spans
//! over the whole §3.1 loop — search rounds with their `CostLedger`
//! deltas, guard verdicts, `PolicyCell` publishes, fault-latch demotions,
//! retry/backoff attempts.
//!
//! Events are control-plane rate (per round / per publish / per window,
//! never per decision), so the log is a mutex-guarded ring: overwrite-
//! oldest on overflow, a monotone sequence number to slice by, and an
//! `enabled` gate whose disabled path is one relaxed atomic load.
//!
//! Emission sites (`core::search`, `core::library`, `serve::guard` via
//! `serve::runtime`, `serve::swap`) write to the process-global log
//! ([`global`]) because `SearchConfig` is `Copy` and threaded through
//! executors — the same shape as the `log` crate's global logger.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// What happened, with the numbers that matter for that lifecycle stage.
///
/// Fields are plain numbers/strings so obs depends on no other workspace
/// crate: emitters translate their own types at the call site.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A search round began generating candidates (pipelined executors
    /// may open round `n+1` before round `n`'s end event).
    SearchRoundStart {
        /// Round index within its search.
        round: usize,
    },
    /// A search round folded its results: the per-round `CostLedger`
    /// deltas plus where the search stands.
    SearchRoundEnd {
        /// Round index within its search.
        round: usize,
        /// Candidates the generator produced this round.
        generated: usize,
        /// Candidates that passed checking (memo hits included).
        accepted: usize,
        /// Candidates actually evaluated (memo misses).
        evaluated: usize,
        /// Candidates answered from the score memo.
        memo_hits: usize,
        /// Generator wall seconds spent on this round.
        gen_seconds: f64,
        /// Best score found in this round (higher is better; -inf if none).
        round_best: f64,
        /// Best score so far across rounds.
        best_so_far: f64,
    },
    /// A search completed; the final `CostLedger` totals.
    SearchDone {
        /// Rounds run.
        rounds: usize,
        /// Total candidates evaluated (memo misses).
        candidates_evaluated: usize,
        /// Total memo hits.
        memo_hits: usize,
        /// LLM input (prompt) tokens consumed.
        tokens_in: u64,
        /// LLM output (completion) tokens consumed.
        tokens_out: u64,
        /// Generator wall seconds.
        gen_seconds: f64,
        /// Evaluation wall seconds.
        eval_seconds: f64,
        /// Evaluation CPU seconds (summed across eval workers).
        eval_cpu_seconds: f64,
        /// Winning score (higher is better).
        best_score: f64,
    },
    /// The publication guard admitted a candidate.
    GuardAdmit {
        /// Drifted context label the candidate was screened in.
        context: String,
        /// Candidate score in that context.
        candidate_score: f64,
        /// Incumbent's shadow score in the same context.
        incumbent_score: f64,
    },
    /// The publication guard rejected a candidate.
    GuardReject {
        /// Drifted context label the candidate was screened in.
        context: String,
        /// Human-readable rejection reason (`RejectReason::describe`).
        reason: String,
        /// Candidate score (NaN when the candidate faulted).
        candidate_score: f64,
        /// Incumbent's shadow score.
        incumbent_score: f64,
    },
    /// A `PolicyCell` publish: the moment a policy generation went live.
    Publish {
        /// Generation number the cell moved to.
        generation: u64,
        /// Provenance string recorded in the swap log.
        provenance: String,
        /// Deposed policies awaiting epoch reclamation at publish time.
        retire_backlog: usize,
    },
    /// A worker's fault latch tripped: local demotion to the baseline.
    Demotion {
        /// Worker that demoted itself.
        worker: usize,
        /// Generation of the policy that faulted.
        generation: u64,
        /// What the host observed (e.g. "non-finite score").
        fault: String,
    },
    /// One failed attempt inside the retry/backoff loop.
    RetryAttempt {
        /// 1-based attempt index.
        attempt: u32,
        /// The generator/search error for this attempt.
        error: String,
        /// Backoff before the next attempt, milliseconds.
        backoff_ms: u64,
    },
    /// The retry loop gave up.
    RetryGaveUp {
        /// Attempts consumed.
        attempts: u32,
        /// Why ("attempts exhausted" / "deadline exceeded").
        why: String,
    },
}

impl TraceKind {
    /// Stable label for export and filtering.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::SearchRoundStart { .. } => "search_round_start",
            TraceKind::SearchRoundEnd { .. } => "search_round_end",
            TraceKind::SearchDone { .. } => "search_done",
            TraceKind::GuardAdmit { .. } => "guard_admit",
            TraceKind::GuardReject { .. } => "guard_reject",
            TraceKind::Publish { .. } => "publish",
            TraceKind::Demotion { .. } => "demotion",
            TraceKind::RetryAttempt { .. } => "retry_attempt",
            TraceKind::RetryGaveUp { .. } => "retry_gave_up",
        }
    }
}

/// One event in the lifecycle log.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotone per-log sequence number (never reused, survives
    /// overwrites — `seq` gaps reveal dropped history).
    pub seq: u64,
    /// Microseconds since the log was created.
    pub at_micros: u64,
    /// What happened.
    pub kind: TraceKind,
}

struct LogInner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded ring-buffer trace log (overwrite-oldest).
pub struct TraceLog {
    inner: Mutex<LogInner>,
    capacity: usize,
    enabled: AtomicBool,
    next_seq: AtomicU64,
    start: Instant,
}

impl TraceLog {
    /// A log holding at most `capacity` events.
    pub fn new(capacity: usize) -> TraceLog {
        TraceLog {
            inner: Mutex::new(LogInner { events: VecDeque::new(), dropped: 0 }),
            capacity: capacity.max(1),
            enabled: AtomicBool::new(true),
            next_seq: AtomicU64::new(0),
            start: Instant::now(),
        }
    }

    /// Gate emission. Disabled emit is one relaxed load.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is emission enabled?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Append an event (dropped silently while disabled).
    pub fn emit(&self, kind: TraceKind) {
        if !self.enabled() {
            return;
        }
        let at_micros = self.start.elapsed().as_micros() as u64;
        let mut inner = self.inner.lock().unwrap();
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(TraceEvent { seq, at_micros, kind });
    }

    /// The sequence number the *next* event will get. Record it before a
    /// phase, then [`events_since`](Self::events_since) to slice that
    /// phase's events out of the shared log.
    pub fn seq(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Events with `seq >= since` still in the ring, in order.
    pub fn events_since(&self, since: u64) -> Vec<TraceEvent> {
        let inner = self.inner.lock().unwrap();
        inner.events.iter().filter(|e| e.seq >= since).cloned().collect()
    }

    /// Everything still in the ring, in order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events_since(0)
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten by the bounded ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }
}

/// The process-global lifecycle log (capacity 65 536 events).
pub fn global() -> &'static TraceLog {
    static GLOBAL: OnceLock<TraceLog> = OnceLock::new();
    GLOBAL.get_or_init(|| TraceLog::new(65_536))
}

/// Emit to the global log. The one-liner every instrumentation site uses.
#[inline]
pub fn emit(kind: TraceKind) {
    global().emit(kind);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_keeps_seq_monotone() {
        let log = TraceLog::new(3);
        for round in 0..5 {
            log.emit(TraceKind::SearchRoundStart { round });
        }
        let events = log.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(log.dropped(), 2);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest two overwritten, seq preserved");
    }

    #[test]
    fn events_since_slices_a_phase() {
        let log = TraceLog::new(16);
        log.emit(TraceKind::SearchRoundStart { round: 0 });
        let mark = log.seq();
        log.emit(TraceKind::Publish { generation: 1, provenance: "p".into(), retire_backlog: 0 });
        log.emit(TraceKind::RetryGaveUp { attempts: 4, why: "attempts exhausted".into() });
        let slice = log.events_since(mark);
        assert_eq!(slice.len(), 2);
        assert_eq!(slice[0].kind.label(), "publish");
        assert_eq!(slice[1].kind.label(), "retry_gave_up");
    }

    #[test]
    fn disabled_log_drops_events_cheaply() {
        let log = TraceLog::new(4);
        log.set_enabled(false);
        log.emit(TraceKind::SearchRoundStart { round: 0 });
        assert!(log.is_empty());
        log.set_enabled(true);
        log.emit(TraceKind::SearchRoundStart { round: 1 });
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn global_log_accepts_marked_events() {
        // other tests share the global log (tests run in parallel), so
        // only assert on events this test emitted, found by marker.
        let mark = global().seq();
        emit(TraceKind::Demotion { worker: 123_456, generation: 9, fault: "marker".into() });
        let mine: Vec<_> = global()
            .events_since(mark)
            .into_iter()
            .filter(|e| matches!(&e.kind, TraceKind::Demotion { worker, .. } if *worker == 123_456))
            .collect();
        assert_eq!(mine.len(), 1);
    }
}
