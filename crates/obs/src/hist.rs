//! The fixed-footprint log-linear latency histogram (moved here from
//! `serve::telemetry` so every crate can record/merge latencies), plus an
//! atomic single-writer variant that backs a
//! [`MetricsRegistry`](crate::MetricsRegistry) shard.
//!
//! The histogram is HDR-style log-linear: 16 linear sub-buckets per
//! power-of-two octave (≈ 6% relative resolution), values below 16 ns
//! exact. Recording is one shift/mask — cheap enough for the decision hot
//! path — and the whole structure is a flat `u64` array, so per-worker
//! histograms merge into the fleet view without locks or allocation
//! during serving.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave (16 ⇒ ≈ 6% worst-case relative error).
const SUBS: usize = 16;
const SUB_BITS: u32 = 4;
/// Buckets: 16 exact small values + 60 octaves × 16 sub-buckets.
pub(crate) const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// A log-linear histogram of nanosecond latencies.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(nanos: u64) -> usize {
    if nanos < SUBS as u64 {
        nanos as usize
    } else {
        let exp = 63 - nanos.leading_zeros(); // ≥ SUB_BITS
        let sub = ((nanos >> (exp - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        SUBS + (exp - SUB_BITS) as usize * SUBS + sub
    }
}

/// Lower bound of a bucket (the value reported for quantiles in it).
fn value_of(bucket: usize) -> u64 {
    if bucket < SUBS {
        bucket as u64
    } else {
        let exp = (bucket - SUBS) as u32 / SUBS as u32 + SUB_BITS;
        let sub = ((bucket - SUBS) % SUBS) as u64;
        (1u64 << exp) + (sub << (exp - SUB_BITS))
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram { counts: Box::new([0; BUCKETS]), total: 0 }
    }

    /// Record one latency sample.
    pub fn record(&mut self, nanos: u64) {
        self.counts[bucket_of(nanos)] += 1;
        self.total += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Fold another histogram in (worker → fleet aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) in nanoseconds: the lower bound of the
    /// bucket where the cumulative count crosses `q · total` (≈ 6%
    /// resolution). 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return value_of(b);
            }
        }
        value_of(BUCKETS - 1)
    }

    /// Batch quantile lookup: one cumulative sweep for all requested
    /// quantiles, returned in the same order as `qs`. Equivalent to
    /// calling [`quantile`](Self::quantile) per element.
    pub fn quantiles(&self, qs: &[f64]) -> Vec<u64> {
        if self.total == 0 {
            return vec![0; qs.len()];
        }
        // Rank order lets one sweep serve every quantile; results are
        // scattered back to the caller's order.
        let mut order: Vec<usize> = (0..qs.len()).collect();
        order.sort_by(|&a, &b| qs[a].partial_cmp(&qs[b]).unwrap_or(std::cmp::Ordering::Equal));
        let mut out = vec![0u64; qs.len()];
        // `seen` = cumulative count through `bucket`, inclusive.
        let mut seen = self.counts[0];
        let mut bucket = 0usize;
        for &i in &order {
            let q = qs[i];
            let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
            while seen < rank && bucket < BUCKETS - 1 {
                bucket += 1;
                seen += self.counts[bucket];
            }
            out[i] = value_of(bucket);
        }
        out
    }

    /// Mean of the recorded samples, using bucket lower bounds (ns).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| value_of(b) as f64 * c as f64)
            .sum();
        sum / self.total as f64
    }

    /// Maximum recorded value's bucket lower bound (ns).
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &c)| c > 0)
            .map(|(b, _)| value_of(b))
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LatencyHistogram {{ n: {}, p50: {}ns, p99: {}ns, p999: {}ns }}",
            self.total,
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999)
        )
    }
}

/// The shard-resident histogram: same buckets, atomic counts.
///
/// Writer contract: **one writer per `AtomicHistogram`** (the owning
/// worker). Under that discipline `record` compiles to a plain load +
/// store on the worker's own cache line — no RMW, no fence — while a
/// reader on another thread can [`snapshot`](Self::snapshot) mid-run and
/// see a consistent (if slightly stale) view: counts are word-atomic, so
/// no torn values, and the merged total is recomputed from the counts.
pub struct AtomicHistogram {
    counts: Box<[AtomicU64; BUCKETS]>,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty atomic histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram { counts: Box::new([0u64; BUCKETS].map(AtomicU64::new)) }
    }

    /// Record one sample. Single-writer: plain unsynchronized store.
    pub fn record(&self, nanos: u64) {
        let c = &self.counts[bucket_of(nanos)];
        c.store(c.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// Copy the current counts into an owned [`LatencyHistogram`].
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for (dst, src) in h.counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.total = h.counts.iter().sum();
        h
    }

    /// Fold the current counts into `into` (reader-side shard merge).
    pub fn merge_into(&self, into: &mut LatencyHistogram) {
        for (dst, src) in into.counts.iter_mut().zip(self.counts.iter()) {
            let c = src.load(Ordering::Relaxed);
            *dst += c;
            into.total += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_round_trip_and_are_monotone() {
        let mut last = 0;
        for b in 0..BUCKETS {
            let v = value_of(b);
            assert_eq!(bucket_of(v), b, "lower bound must map to its own bucket");
            assert!(b == 0 || v > last, "bucket {b}: {v} <= {last}");
            last = v;
        }
        // a value inside a bucket maps to that bucket (the 32..64 octave
        // has two-wide sub-buckets; 16..32 is still exact)
        assert_eq!(bucket_of(33), bucket_of(32));
        assert_ne!(bucket_of(17), bucket_of(16));
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 1_000, 50_000, 1_000_000, 123_456_789] {
            let lo = value_of(bucket_of(v));
            assert!(lo <= v);
            assert!(((v - lo) as f64 / v as f64) < 1.0 / SUBS as f64, "{v} vs {lo}");
        }
    }

    #[test]
    fn quantiles_order_and_mean() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 100); // 100ns .. 100µs
        }
        assert_eq!(h.count(), 1000);
        let (p50, p99, p999) = (h.quantile(0.5), h.quantile(0.99), h.quantile(0.999));
        assert!(p50 <= p99 && p99 <= p999 && p999 <= h.max());
        // p50 of uniform 100..100_000 is ~50_000: within bucket resolution
        assert!((45_000..=50_000).contains(&p50), "{p50}");
        assert!((93_000..=99_000).contains(&p99), "{p99}");
        assert!(h.mean() > 0.9 * 47_000.0 && h.mean() < 50_050.0);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in 0..500u64 {
            a.record(v);
            b.record(v + 10_000);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 1000);
        assert_eq!(m.quantile(0.25), a.quantile(0.5));
        assert_eq!(m.quantile(1.0), b.quantile(1.0));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantiles(&[0.0, 0.5, 1.0]), vec![0, 0, 0]);
    }

    #[test]
    fn u64_max_saturates_into_the_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        let top = value_of(BUCKETS - 1);
        assert_eq!(h.max(), top);
        assert_eq!(h.quantile(1.0), top);
        assert_eq!(h.quantile(0.0), top, "all mass is in the saturation bucket");
    }

    #[test]
    fn batch_quantiles_match_individual_lookups() {
        let mut h = LatencyHistogram::new();
        for v in [3u64, 17, 40, 999, 12_345, 12_346, 1_000_000, u64::MAX] {
            h.record(v);
        }
        // deliberately unsorted, with duplicates and extremes
        let qs = [0.99, 0.0, 0.5, 1.0, 0.5, 0.25, 0.999];
        let batch = h.quantiles(&qs);
        for (q, got) in qs.iter().zip(&batch) {
            assert_eq!(*got, h.quantile(*q), "q={q}");
        }
    }

    #[test]
    fn atomic_histogram_matches_plain_recording() {
        let a = AtomicHistogram::new();
        let mut p = LatencyHistogram::new();
        for v in [0u64, 1, 15, 16, 17, 1000, 65_535, 1 << 40, u64::MAX] {
            a.record(v);
            p.record(v);
        }
        let s = a.snapshot();
        assert_eq!(s.count(), p.count());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), p.quantile(q));
        }
        let mut merged = LatencyHistogram::new();
        a.merge_into(&mut merged);
        assert_eq!(merged.count(), p.count());
        assert_eq!(merged.max(), p.max());
    }
}
