//! The sharded metrics registry: per-worker shards of counters, gauges,
//! and [`AtomicHistogram`]s.
//!
//! Layout and contract:
//!
//! * Metrics are registered up front (`&mut self`, before workers spawn)
//!   and addressed by copyable ids — no name hashing on the hot path.
//! * Every metric has one slot **per shard**, cache-line padded so
//!   workers never bounce lines. A worker writes only its own shard, with
//!   plain unsynchronized (`Relaxed` load + store) operations — under the
//!   single-writer-per-shard discipline these compile to ordinary loads
//!   and stores.
//! * A reader merges shards lock-free on demand: word-atomic `Relaxed`
//!   loads summed across shards. The view is slightly stale but never
//!   torn, and taking it never stalls a writer.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::{AtomicHistogram, LatencyHistogram};
use crate::MetricsSnapshot;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge (an `f64` stored as bits; last write per
/// shard wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// One cache line per shard per metric: no false sharing between workers.
#[repr(align(64))]
struct Padded(AtomicU64);

impl Padded {
    fn new(v: u64) -> Padded {
        Padded(AtomicU64::new(v))
    }
}

fn shard_row(shards: usize) -> Box<[Padded]> {
    (0..shards).map(|_| Padded::new(0)).collect()
}

/// The registry: named metrics × per-worker shards.
pub struct MetricsRegistry {
    shards: usize,
    counter_names: Vec<String>,
    counters: Vec<Box<[Padded]>>,
    gauge_names: Vec<String>,
    gauges: Vec<Box<[Padded]>>,
    hist_names: Vec<String>,
    hists: Vec<Box<[AtomicHistogram]>>,
}

impl MetricsRegistry {
    /// A registry with `shards` per-worker shards (≥ 1).
    pub fn new(shards: usize) -> MetricsRegistry {
        MetricsRegistry {
            shards: shards.max(1),
            counter_names: Vec::new(),
            counters: Vec::new(),
            gauge_names: Vec::new(),
            gauges: Vec::new(),
            hist_names: Vec::new(),
            hists: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Register a monotonic counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.counter_names.push(name.to_string());
        self.counters.push(shard_row(self.shards));
        CounterId(self.counters.len() - 1)
    }

    /// Register a gauge.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        self.gauge_names.push(name.to_string());
        self.gauges.push(shard_row(self.shards));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register a latency histogram.
    pub fn histogram(&mut self, name: &str) -> HistId {
        self.hist_names.push(name.to_string());
        self.hists.push((0..self.shards).map(|_| AtomicHistogram::new()).collect());
        HistId(self.hists.len() - 1)
    }

    /// A writer handle bound to one shard. Cheap and `Copy`; the
    /// single-writer contract is the caller's (one worker per shard).
    pub fn shard(&self, shard: usize) -> Shard<'_> {
        debug_assert!(shard < self.shards);
        Shard { reg: self, shard }
    }

    // ---- reader-side merge (lock-free, any thread, any time) ----

    /// Sum of a counter across shards.
    pub fn counter_total(&self, id: CounterId) -> u64 {
        self.counters[id.0].iter().map(|p| p.0.load(Ordering::Relaxed)).sum()
    }

    /// Per-shard counter values.
    pub fn counter_shards(&self, id: CounterId) -> Vec<u64> {
        self.counters[id.0].iter().map(|p| p.0.load(Ordering::Relaxed)).collect()
    }

    /// Per-shard gauge values.
    pub fn gauge_shards(&self, id: GaugeId) -> Vec<f64> {
        self.gauges[id.0].iter().map(|p| f64::from_bits(p.0.load(Ordering::Relaxed))).collect()
    }

    /// All shards of a histogram merged into one owned histogram.
    pub fn hist_merged(&self, id: HistId) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for shard in self.hists[id.0].iter() {
            shard.merge_into(&mut h);
        }
        h
    }

    /// One shard of a histogram as an owned histogram.
    pub fn hist_shard(&self, id: HistId, shard: usize) -> LatencyHistogram {
        self.hists[id.0][shard].snapshot()
    }

    /// A self-describing snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::capture(self)
    }

    pub(crate) fn counter_entries(&self) -> impl Iterator<Item = (&str, u64, Vec<u64>)> {
        self.counter_names.iter().enumerate().map(|(i, n)| {
            (n.as_str(), self.counter_total(CounterId(i)), self.counter_shards(CounterId(i)))
        })
    }

    pub(crate) fn gauge_entries(&self) -> impl Iterator<Item = (&str, Vec<f64>)> {
        self.gauge_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), self.gauge_shards(GaugeId(i))))
    }

    pub(crate) fn hist_entries(&self) -> impl Iterator<Item = (&str, LatencyHistogram)> {
        self.hist_names.iter().enumerate().map(|(i, n)| (n.as_str(), self.hist_merged(HistId(i))))
    }
}

/// Writer handle: one worker, one shard, plain stores.
#[derive(Clone, Copy)]
pub struct Shard<'a> {
    reg: &'a MetricsRegistry,
    shard: usize,
}

impl Shard<'_> {
    /// Shard index this handle writes.
    pub fn index(&self) -> usize {
        self.shard
    }

    /// Add to a counter (single-writer: load + store, no RMW).
    #[inline]
    pub fn add(&self, id: CounterId, delta: u64) {
        let c = &self.reg.counters[id.0][self.shard].0;
        c.store(c.load(Ordering::Relaxed).wrapping_add(delta), Ordering::Relaxed);
    }

    /// Set a gauge.
    #[inline]
    pub fn set(&self, id: GaugeId, value: f64) {
        self.reg.gauges[id.0][self.shard].0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Record into a histogram.
    #[inline]
    pub fn record(&self, id: HistId, nanos: u64) {
        self.reg.hists[id.0][self.shard].record(nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_shards() {
        let mut reg = MetricsRegistry::new(4);
        let c = reg.counter("decisions");
        for w in 0..4 {
            let s = reg.shard(w);
            for _ in 0..=w {
                s.add(c, 10);
            }
        }
        assert_eq!(reg.counter_total(c), 10 + 20 + 30 + 40);
        assert_eq!(reg.counter_shards(c), vec![10, 20, 30, 40]);
    }

    #[test]
    fn gauges_are_per_shard_last_write_wins() {
        let mut reg = MetricsRegistry::new(2);
        let g = reg.gauge("signal");
        reg.shard(0).set(g, 1.5);
        reg.shard(0).set(g, 2.5);
        reg.shard(1).set(g, -1.0);
        assert_eq!(reg.gauge_shards(g), vec![2.5, -1.0]);
    }

    #[test]
    fn histogram_shards_merge_into_fleet_view() {
        let mut reg = MetricsRegistry::new(3);
        let h = reg.histogram("latency_ns");
        for w in 0..3usize {
            let s = reg.shard(w);
            for v in 0..100u64 {
                s.record(h, v + 1000 * w as u64);
            }
        }
        let merged = reg.hist_merged(h);
        assert_eq!(merged.count(), 300);
        assert_eq!(reg.hist_shard(h, 1).count(), 100);
        // per-shard merge equals recording everything into one histogram
        let mut one = LatencyHistogram::new();
        for w in 0..3usize {
            for v in 0..100u64 {
                one.record(v + 1000 * w as u64);
            }
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), one.quantile(q));
        }
    }

    #[test]
    fn concurrent_writers_one_shard_each_never_tear() {
        let mut reg = MetricsRegistry::new(8);
        let c = reg.counter("ops");
        let h = reg.histogram("ns");
        std::thread::scope(|scope| {
            for w in 0..8 {
                let shard = reg.shard(w);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        shard.add(c, 1);
                        shard.record(h, i & 1023);
                    }
                });
            }
            // reader merges mid-run: totals are monotone and never torn
            let mut last = 0;
            for _ in 0..100 {
                let t = reg.counter_total(c);
                assert!(t >= last && t <= 80_000);
                last = t;
            }
        });
        assert_eq!(reg.counter_total(c), 80_000);
        assert_eq!(reg.hist_merged(h).count(), 80_000);
    }
}
