//! Self-describing export: metrics snapshots and trace timelines as JSON
//! `Value` trees any `exp_*` binary can embed in its results artifact.
//!
//! Every exported object carries a `schema` tag
//! (`policysmith.obs.metrics.v1` / `policysmith.obs.timeline.v1` /
//! `policysmith.obs.ambient.v1`) so a consumer can identify the shape
//! without out-of-band knowledge. Histograms export their count, mean,
//! max, and the standard quantile ladder; counters export the merged
//! total *and* the per-shard values (the shard breakdown is the
//! observability story — per-worker skew is visible, not averaged away).

use serde::Value;

use crate::hist::LatencyHistogram;
use crate::metrics::MetricsRegistry;
use crate::trace::{TraceEvent, TraceKind};

/// Schema tag on [`MetricsSnapshot`] exports.
pub const METRICS_SCHEMA: &str = "policysmith.obs.metrics.v1";
/// Schema tag on [`timeline_value`] exports.
pub const TIMELINE_SCHEMA: &str = "policysmith.obs.timeline.v1";
/// Schema tag on [`ambient_value`] exports.
pub const AMBIENT_SCHEMA: &str = "policysmith.obs.ambient.v1";

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn num(n: f64) -> Value {
    Value::Number(n)
}

fn s(v: &str) -> Value {
    Value::String(v.to_string())
}

/// A point-in-time, owned copy of everything in a [`MetricsRegistry`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Shards the registry was created with.
    pub shards: usize,
    /// `(name, merged_total, per_shard)` per counter.
    pub counters: Vec<(String, u64, Vec<u64>)>,
    /// `(name, per_shard)` per gauge.
    pub gauges: Vec<(String, Vec<f64>)>,
    /// `(name, merged_histogram)` per histogram.
    pub histograms: Vec<(String, LatencyHistogram)>,
}

impl MetricsSnapshot {
    pub(crate) fn capture(reg: &MetricsRegistry) -> MetricsSnapshot {
        MetricsSnapshot {
            shards: reg.shards(),
            counters: reg.counter_entries().map(|(n, t, v)| (n.to_string(), t, v)).collect(),
            gauges: reg.gauge_entries().map(|(n, v)| (n.to_string(), v)).collect(),
            histograms: reg.hist_entries().map(|(n, h)| (n.to_string(), h)).collect(),
        }
    }

    /// Merged total of a counter by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _, _)| n == name).map(|(_, t, _)| *t).unwrap_or(0)
    }

    /// Merged histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// The self-describing JSON tree.
    pub fn to_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(name, total, per_shard)| {
                obj(vec![
                    ("name", s(name)),
                    ("total", num(*total as f64)),
                    ("per_shard", Value::Array(per_shard.iter().map(|&v| num(v as f64)).collect())),
                ])
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(name, per_shard)| {
                obj(vec![
                    ("name", s(name)),
                    ("per_shard", Value::Array(per_shard.iter().map(|&v| num(v)).collect())),
                ])
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let mut pairs = vec![("name", s(name))];
                pairs.extend(hist_fields(h));
                obj(pairs)
            })
            .collect();
        obj(vec![
            ("schema", s(METRICS_SCHEMA)),
            ("shards", num(self.shards as f64)),
            ("counters", Value::Array(counters)),
            ("gauges", Value::Array(gauges)),
            ("histograms", Value::Array(histograms)),
        ])
    }
}

impl serde::Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        MetricsSnapshot::to_value(self)
    }
}

/// The standard histogram summary fields (count/mean/quantile ladder).
fn hist_fields(h: &LatencyHistogram) -> Vec<(&'static str, Value)> {
    let qs = h.quantiles(&[0.5, 0.9, 0.99, 0.999]);
    vec![
        ("count", num(h.count() as f64)),
        ("mean_ns", num(h.mean())),
        ("p50_ns", num(qs[0] as f64)),
        ("p90_ns", num(qs[1] as f64)),
        ("p99_ns", num(qs[2] as f64)),
        ("p999_ns", num(qs[3] as f64)),
        ("max_ns", num(h.max() as f64)),
    ]
}

/// Render one trace event as a flat JSON object (`seq`, `at_micros`,
/// `kind`, then the kind's fields).
pub fn event_value(e: &TraceEvent) -> Value {
    let mut pairs = vec![
        ("seq", num(e.seq as f64)),
        ("at_micros", num(e.at_micros as f64)),
        ("kind", s(e.kind.label())),
    ];
    match &e.kind {
        TraceKind::SearchRoundStart { round } => pairs.push(("round", num(*round as f64))),
        TraceKind::SearchRoundEnd {
            round,
            generated,
            accepted,
            evaluated,
            memo_hits,
            gen_seconds,
            round_best,
            best_so_far,
        } => pairs.extend([
            ("round", num(*round as f64)),
            ("generated", num(*generated as f64)),
            ("accepted", num(*accepted as f64)),
            ("evaluated", num(*evaluated as f64)),
            ("memo_hits", num(*memo_hits as f64)),
            ("gen_seconds", num(*gen_seconds)),
            ("round_best", num(*round_best)),
            ("best_so_far", num(*best_so_far)),
        ]),
        TraceKind::SearchDone {
            rounds,
            candidates_evaluated,
            memo_hits,
            tokens_in,
            tokens_out,
            gen_seconds,
            eval_seconds,
            eval_cpu_seconds,
            best_score,
        } => pairs.extend([
            ("rounds", num(*rounds as f64)),
            ("candidates_evaluated", num(*candidates_evaluated as f64)),
            ("memo_hits", num(*memo_hits as f64)),
            ("tokens_in", num(*tokens_in as f64)),
            ("tokens_out", num(*tokens_out as f64)),
            ("gen_seconds", num(*gen_seconds)),
            ("eval_seconds", num(*eval_seconds)),
            ("eval_cpu_seconds", num(*eval_cpu_seconds)),
            ("best_score", num(*best_score)),
        ]),
        TraceKind::GuardAdmit { context, candidate_score, incumbent_score } => pairs.extend([
            ("context", s(context)),
            ("candidate_score", num(*candidate_score)),
            ("incumbent_score", num(*incumbent_score)),
        ]),
        TraceKind::GuardReject { context, reason, candidate_score, incumbent_score } => pairs
            .extend([
                ("context", s(context)),
                ("reason", s(reason)),
                ("candidate_score", num(*candidate_score)),
                ("incumbent_score", num(*incumbent_score)),
            ]),
        TraceKind::Publish { generation, provenance, retire_backlog } => pairs.extend([
            ("generation", num(*generation as f64)),
            ("provenance", s(provenance)),
            ("retire_backlog", num(*retire_backlog as f64)),
        ]),
        TraceKind::Demotion { worker, generation, fault } => pairs.extend([
            ("worker", num(*worker as f64)),
            ("generation", num(*generation as f64)),
            ("fault", s(fault)),
        ]),
        TraceKind::RetryAttempt { attempt, error, backoff_ms } => pairs.extend([
            ("attempt", num(*attempt as f64)),
            ("error", s(error)),
            ("backoff_ms", num(*backoff_ms as f64)),
        ]),
        TraceKind::RetryGaveUp { attempts, why } => {
            pairs.extend([("attempts", num(*attempts as f64)), ("why", s(why))])
        }
    }
    obj(pairs)
}

/// Render a slice of trace events as a self-describing timeline document:
/// schema tag, per-kind counts, then the events in order.
pub fn timeline_value(events: &[TraceEvent]) -> Value {
    let mut by_kind: Vec<(String, u64)> = Vec::new();
    for e in events {
        let label = e.kind.label();
        match by_kind.iter_mut().find(|(k, _)| k == label) {
            Some((_, c)) => *c += 1,
            None => by_kind.push((label.to_string(), 1)),
        }
    }
    by_kind.sort();
    obj(vec![
        ("schema", s(TIMELINE_SCHEMA)),
        ("events_total", num(events.len() as f64)),
        (
            "events_by_kind",
            Value::Object(by_kind.into_iter().map(|(k, c)| (k, num(c as f64))).collect()),
        ),
        ("events", Value::Array(events.iter().map(event_value).collect())),
    ])
}

/// A tiny ambient stamp of the global trace log's state — embedded into
/// every results artifact by `policysmith_bench::write_json` under the
/// `"obs"` key. Counts only (no wall-clock data), so artifacts that are
/// otherwise pure functions of their flags stay reproducible.
pub fn ambient_value() -> Value {
    let log = crate::trace::global();
    obj(vec![
        ("schema", s(AMBIENT_SCHEMA)),
        ("trace_enabled", Value::Bool(log.enabled())),
        ("trace_events", num(log.seq() as f64)),
        ("trace_overwritten", num(log.dropped() as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceLog;

    #[test]
    fn snapshot_export_is_self_describing() {
        let mut reg = MetricsRegistry::new(2);
        let c = reg.counter("decisions");
        let h = reg.histogram("latency_ns");
        reg.shard(0).add(c, 5);
        reg.shard(1).add(c, 7);
        reg.shard(0).record(h, 100);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("decisions"), 12);
        assert_eq!(snap.histogram("latency_ns").unwrap().count(), 1);
        let text = serde_json::to_string(&snap.to_value()).unwrap();
        assert!(text.contains(METRICS_SCHEMA));
        assert!(text.contains("\"per_shard\":[5,7]"));
    }

    #[test]
    fn timeline_counts_kinds_and_keeps_order() {
        let log = TraceLog::new(8);
        log.emit(TraceKind::SearchRoundStart { round: 0 });
        log.emit(TraceKind::Publish { generation: 1, provenance: "x".into(), retire_backlog: 2 });
        log.emit(TraceKind::SearchRoundStart { round: 1 });
        let v = timeline_value(&log.snapshot());
        let text = serde_json::to_string(&v).unwrap();
        assert!(text.contains(TIMELINE_SCHEMA));
        assert!(text.contains("\"search_round_start\":2"));
        assert!(text.contains("\"publish\":1"));
        assert!(text.contains("\"retire_backlog\":2"));
    }
}
