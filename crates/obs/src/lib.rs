//! # policysmith-obs — the workspace observability layer
//!
//! The paper's pitch is that generated policies can be *trusted in
//! production*; trust needs continuous observable evidence, not one-shot
//! validation. This crate is that evidence layer, in three pillars:
//!
//! * [`metrics`] — a sharded [`MetricsRegistry`]: counters, gauges, and
//!   the log-linear [`LatencyHistogram`] (moved here from
//!   `serve::telemetry`), one cache-line-padded slot per worker shard.
//!   Workers write their own shard with plain unsynchronized stores; a
//!   reader merges shards lock-free on demand. [`ring`] adds the bounded
//!   SPSC lane that carries per-window samples to the adaptation thread
//!   without funneling every worker through one mpsc.
//! * [`trace`] — policy-lifecycle tracing: a bounded ring-buffer event
//!   log ([`TraceLog`], process-global via [`trace::global`]) with spans
//!   over the whole §3.1 loop: search rounds with `CostLedger` deltas,
//!   guard verdicts, `PolicyCell` publishes, fault-latch demotions,
//!   retry/backoff attempts.
//! * [`export`] — self-describing JSON: [`MetricsSnapshot`] and trace
//!   timelines carry `schema` tags so any `exp_*` results artifact can
//!   embed them (`policysmith_bench::write_json` stamps every artifact
//!   with [`export::ambient_value`]).
//!
//! obs deliberately depends on no other workspace crate — `core`,
//! `serve`, and `bench` all sit above it.

pub mod export;
pub mod hist;
pub mod metrics;
pub mod ring;
pub mod trace;

pub use export::MetricsSnapshot;
pub use hist::{AtomicHistogram, LatencyHistogram};
pub use metrics::{CounterId, GaugeId, HistId, MetricsRegistry, Shard};
pub use trace::{emit, TraceEvent, TraceKind, TraceLog};
