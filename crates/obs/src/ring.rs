//! A bounded lock-free SPSC ring: the per-worker window-sample lane into
//! the adaptation thread, replacing the shared mpsc funnel.
//!
//! One producer (the serving worker), one consumer (the adaptation
//! thread). `push` is two `Relaxed`/`Acquire` loads and a `Release` store
//! on success — no locks, no allocation, no syscalls — and reports a full
//! ring by returning the value, so the caller decides the backpressure
//! policy (serving workers keep an unbounded local backlog rather than
//! ever stalling the decision path; see `serve::runtime`).
//!
//! Both endpoints raise a `closed` flag on drop, so the consumer can
//! distinguish "empty for now" from "producer finished", and a producer
//! flushing its backlog can bail out if the consumer died.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next index to pop (owned by the consumer).
    head: AtomicUsize,
    /// Next index to push (owned by the producer).
    tail: AtomicUsize,
    tx_closed: AtomicBool,
    rx_closed: AtomicBool,
}

// The UnsafeCell slots are only touched by the single producer (writes at
// tail) and single consumer (reads at head), never concurrently on the
// same index thanks to the head/tail protocol below.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Drop any items still in flight.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let cap = self.buf.len();
        for i in head..tail {
            unsafe { (*self.buf[i % cap].get()).assume_init_drop() };
        }
    }
}

/// Create a bounded SPSC ring with room for `capacity` items.
pub fn spsc<T: Send>(capacity: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    let cap = capacity.max(1);
    let inner = Arc::new(Inner {
        buf: (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        tx_closed: AtomicBool::new(false),
        rx_closed: AtomicBool::new(false),
    });
    (SpscSender { inner: inner.clone() }, SpscReceiver { inner })
}

/// The producing endpoint. `!Clone`: exactly one producer.
pub struct SpscSender<T: Send> {
    inner: Arc<Inner<T>>,
}

impl<T: Send> SpscSender<T> {
    /// Try to push; returns the value back if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let inner = &*self.inner;
        let tail = inner.tail.load(Ordering::Relaxed);
        let head = inner.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == inner.buf.len() {
            return Err(value);
        }
        unsafe { (*inner.buf[tail % inner.buf.len()].get()).write(value) };
        inner.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// True once the consumer endpoint has been dropped (flushing a
    /// backlog into a dead ring is pointless).
    pub fn receiver_closed(&self) -> bool {
        self.inner.rx_closed.load(Ordering::Acquire)
    }
}

impl<T: Send> Drop for SpscSender<T> {
    fn drop(&mut self) {
        self.inner.tx_closed.store(true, Ordering::Release);
    }
}

/// The consuming endpoint. `!Clone`: exactly one consumer.
pub struct SpscReceiver<T: Send> {
    inner: Arc<Inner<T>>,
}

impl<T: Send> SpscReceiver<T> {
    /// Pop the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.load(Ordering::Relaxed);
        let tail = inner.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let value = unsafe { (*inner.buf[head % inner.buf.len()].get()).assume_init_read() };
        inner.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// True once the producer has been dropped **and** the ring is
    /// drained — nothing more will ever arrive.
    pub fn finished(&self) -> bool {
        // Order matters: check closed before empty, so a push racing the
        // producer's final drop is never missed.
        let closed = self.inner.tx_closed.load(Ordering::Acquire);
        let head = self.inner.head.load(Ordering::Relaxed);
        let tail = self.inner.tail.load(Ordering::Acquire);
        closed && head == tail
    }
}

impl<T: Send> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        self.inner.rx_closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_full_signal() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        for i in 0..4 {
            assert!(tx.push(i).is_ok());
        }
        assert_eq!(tx.push(99), Err(99));
        assert_eq!(rx.pop(), Some(0));
        assert!(tx.push(99).is_ok(), "pop frees a slot");
        assert_eq!((1..4).map(|_| rx.pop().unwrap()).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(rx.pop(), Some(99));
        assert_eq!(rx.pop(), None);
        assert!(!rx.finished());
        drop(tx);
        assert!(rx.finished());
    }

    #[test]
    fn close_flags_propagate_both_ways() {
        let (tx, rx) = spsc::<u8>(2);
        assert!(!tx.receiver_closed());
        drop(rx);
        assert!(tx.receiver_closed());
    }

    #[test]
    fn cross_thread_stream_arrives_intact() {
        let (mut tx, mut rx) = spsc::<u64>(8);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..10_000u64 {
                    let mut v = i;
                    loop {
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
            let mut expect = 0u64;
            while expect < 10_000 {
                match rx.pop() {
                    Some(v) => {
                        assert_eq!(v, expect);
                        expect += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
            assert!(rx.pop().is_none());
        });
    }

    #[test]
    fn dropping_a_nonempty_ring_drops_in_flight_items() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = spsc::<D>(4);
        tx.push(D).ok();
        tx.push(D).ok();
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }
}
