//! C source renderer: verified kbpf bytecode → a self-contained
//! `tcp_congestion_ops` struct_ops skeleton.
//!
//! The emitted file has two faces:
//!
//! * **Host-compilable C** (default): typedefs, the `psm_ctx` context
//!   struct, clamping/guarded arithmetic helpers, and the policy function
//!   itself — `static s64 <name>_policy(const struct psm_ctx *c, s64 *m)`
//!   — a direct transliteration of the kbpf bytecode (locals for
//!   registers, `goto` for jumps). Any `cc -c` can build-check it, which
//!   CI does when a compiler is present.
//! * **Kernel scaffolding** (`-DPOLICYSMITH_KERN`): `SEC(".struct_ops")`
//!   registration of a `tcp_congestion_ops`, `ssthresh`/`cong_avoid`
//!   hooks that fill `psm_ctx` from `tcp_sock` fields, and a per-socket
//!   `sk_storage` map holding the scratch slots and history features.
//!   This half targets `clang -target bpf` against `vmlinux.h` and is
//!   `#ifdef`-gated out of the host build.
//!
//! All arithmetic is rendered UB-free: add/sub/mul/neg go through `u64`
//! casts (two's-complement wrap, matching the eBPF target the emitter
//! gated), shifts clamp their amount to `[0, 63]` like the kbpf VM, and
//! division guards zero and `LLONG_MIN / -1` (both unreachable for
//! verified policies — the guards are defense in depth, not semantics).

use policysmith_dsl::Feature;
use policysmith_kbpf::{Insn, Op, Program};
use std::collections::BTreeSet;
use std::fmt::Write;

/// Render a complete struct_ops C file for a verified kbpf program.
///
/// `features` is the context ABI in slot order (from
/// `CtxLayout::features()`); `name` becomes the C identifier prefix and
/// the congestion-control algorithm name (sanitized).
pub fn render_struct_ops(prog: &Program, features: &[Feature], name: &str) -> String {
    let ident = sanitize(name);
    let nslots = features.len().max(1);

    // jump targets need labels; everything else must not get one (dead
    // labels would fail -Werror host builds)
    let mut targets: BTreeSet<usize> = BTreeSet::new();
    for (pc, insn) in prog.insns.iter().enumerate() {
        if insn.op.is_jump() {
            targets.insert(pc + 1 + insn.off as usize);
        }
    }

    // declare only the registers the program touches
    let mut regs: BTreeSet<u8> = BTreeSet::new();
    regs.insert(0);
    let mut uses_map = false;
    for insn in &prog.insns {
        if insn.op.reads_dst() || insn.op.writes_dst() {
            regs.insert(insn.dst);
        }
        if insn.op.reads_src() {
            regs.insert(insn.src);
        }
        uses_map |= matches!(insn.op, Op::LdMap | Op::StMap);
    }

    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "/* SPDX-License-Identifier: GPL-2.0 */");
    let _ = writeln!(w, "/*");
    let _ = writeln!(w, " * {ident} — congestion-control policy emitted by policysmith-ebpf.");
    let _ = writeln!(w, " *");
    let _ = writeln!(w, " * Generated from verified kbpf bytecode; do not edit by hand.");
    let _ = writeln!(w, " * Plain `cc -c` build-checks the policy function; define");
    let _ = writeln!(w, " * POLICYSMITH_KERN for the BPF struct_ops scaffolding");
    let _ = writeln!(w, " * (clang -O2 -target bpf against vmlinux.h).");
    let _ = writeln!(w, " */");
    let _ = writeln!(w);
    let _ = writeln!(w, "#ifdef POLICYSMITH_KERN");
    let _ = writeln!(w, "#include \"vmlinux.h\"");
    let _ = writeln!(w, "#include <bpf/bpf_helpers.h>");
    let _ = writeln!(w, "#include <bpf/bpf_tracing.h>");
    let _ = writeln!(w, "#else");
    let _ = writeln!(w, "typedef long long s64;");
    let _ = writeln!(w, "typedef unsigned long long u64;");
    let _ = writeln!(w, "#endif");
    let _ = writeln!(w);
    let _ = writeln!(w, "/* context ABI: one s64 per slot, in first-use order */");
    let _ = writeln!(w, "struct psm_ctx {{");
    let _ = writeln!(w, "\ts64 f[{nslots}];");
    for (slot, f) in features.iter().enumerate() {
        let _ =
            writeln!(w, "\t/* f[{slot}] = {} in [{}, {}] */", f.name(), f.range().0, f.range().1);
    }
    let _ = writeln!(w, "}};");
    let _ = writeln!(w);
    let _ = writeln!(w, "/* kbpf shift semantics: amount clamps to [0, 63] */");
    let _ = writeln!(w, "static inline s64 psm_shl(s64 v, s64 a)");
    let _ = writeln!(w, "{{");
    let _ = writeln!(w, "\tif (a < 0) a = 0;");
    let _ = writeln!(w, "\tif (a > 63) a = 63;");
    let _ = writeln!(w, "\treturn (s64)((u64)v << (u64)a);");
    let _ = writeln!(w, "}}");
    let _ = writeln!(w);
    let _ = writeln!(w, "static inline s64 psm_shr(s64 v, s64 a)");
    let _ = writeln!(w, "{{");
    let _ = writeln!(w, "\tif (a < 0) a = 0;");
    let _ = writeln!(w, "\tif (a > 63) a = 63;");
    let _ = writeln!(w, "\treturn v >> a;");
    let _ = writeln!(w, "}}");
    let _ = writeln!(w);
    let _ = writeln!(w, "/* guarded division: the zero and MIN/-1 branches are unreachable");
    let _ = writeln!(w, " * for verified policies but keep the C free of undefined behavior */");
    let _ = writeln!(w, "static inline s64 psm_div(s64 a, s64 b)");
    let _ = writeln!(w, "{{");
    let _ = writeln!(w, "\tif (b == 0) return 0;");
    let _ = writeln!(w, "\tif (b == -1) return (s64)(0ULL - (u64)a);");
    let _ = writeln!(w, "\treturn a / b;");
    let _ = writeln!(w, "}}");
    let _ = writeln!(w);
    let _ = writeln!(w, "static inline s64 psm_rem(s64 a, s64 b)");
    let _ = writeln!(w, "{{");
    let _ = writeln!(w, "\tif (b == 0 || b == -1) return 0;");
    let _ = writeln!(w, "\treturn a % b;");
    let _ = writeln!(w, "}}");
    let _ = writeln!(w);
    let _ = writeln!(w, "/* the policy: a direct transliteration of the verified bytecode */");
    let _ = writeln!(w, "static s64 {ident}_policy(const struct psm_ctx *c, s64 *m)");
    let _ = writeln!(w, "{{");
    let decls: Vec<String> = regs.iter().map(|r| format!("r{r} = 0")).collect();
    let _ = writeln!(w, "\ts64 {};", decls.join(", "));
    if features.is_empty() {
        let _ = writeln!(w, "\t(void)c;");
    }
    if !uses_map {
        let _ = writeln!(w, "\t(void)m;");
    }
    let _ = writeln!(w);
    for (pc, insn) in prog.insns.iter().enumerate() {
        if targets.contains(&pc) {
            let _ = writeln!(w, "L{pc}:");
        }
        let _ = writeln!(w, "\t{}", render_insn(insn, pc));
    }
    let _ = writeln!(w, "}}");
    let _ = writeln!(w);
    let _ = writeln!(w, "#ifndef POLICYSMITH_KERN");
    let _ = writeln!(w, "/* userspace entry point: lets a plain `cc -c` build-check reference");
    let _ = writeln!(w, " * the policy and gives host-side tests a callable symbol */");
    let _ = writeln!(w, "s64 {ident}_decide(const struct psm_ctx *c, s64 *m)");
    let _ = writeln!(w, "{{");
    let _ = writeln!(w, "\treturn {ident}_policy(c, m);");
    let _ = writeln!(w, "}}");
    let _ = writeln!(w, "#endif /* !POLICYSMITH_KERN */");
    let _ = writeln!(w);
    render_kern_section(w, features, &ident);
    out
}

fn render_insn(insn: &Insn, pc: usize) -> String {
    use Op::*;
    let d = insn.dst;
    let s = insn.src;
    let target = pc + 1 + insn.off as usize;
    // immediate vs register second operand, as C text
    let o = match insn.op {
        AddImm | SubImm | MulImm | DivImm | RemImm | LshImm | RshImm | JeqImm | JneImm | JltImm
        | JleImm | JgtImm | JgeImm | MovImm => c_imm(insn.imm),
        _ => format!("r{s}"),
    };
    let wrap = |op: char| format!("r{d} = (s64)((u64)r{d} {op} (u64)({o}));");
    match insn.op {
        MovImm => format!("r{d} = {o};"),
        MovReg => format!("r{d} = r{s};"),
        AddImm | AddReg => wrap('+'),
        SubImm | SubReg => wrap('-'),
        MulImm | MulReg => wrap('*'),
        DivImm | DivReg => format!("r{d} = psm_div(r{d}, {o});"),
        RemImm | RemReg => format!("r{d} = psm_rem(r{d}, {o});"),
        Neg => format!("r{d} = (s64)(0ULL - (u64)r{d});"),
        LshImm | LshReg => format!("r{d} = psm_shl(r{d}, {o});"),
        RshImm | RshReg => format!("r{d} = psm_shr(r{d}, {o});"),
        Ja => format!("goto L{target};"),
        JeqImm | JeqReg => format!("if (r{d} == {o}) goto L{target};"),
        JneImm | JneReg => format!("if (r{d} != {o}) goto L{target};"),
        JltImm | JltReg => format!("if (r{d} < {o}) goto L{target};"),
        JleImm | JleReg => format!("if (r{d} <= {o}) goto L{target};"),
        JgtImm | JgtReg => format!("if (r{d} > {o}) goto L{target};"),
        JgeImm | JgeReg => format!("if (r{d} >= {o}) goto L{target};"),
        LdCtx => format!("r{d} = c->f[{}];", insn.imm),
        LdMap => format!("r{d} = m[{}];", insn.imm),
        StMap => format!("m[{}] = r{s};", insn.imm),
        Exit => "return r0;".into(),
    }
}

/// A C integer literal for any `i64` (`i64::MIN` has no direct literal).
fn c_imm(v: i64) -> String {
    if v == i64::MIN {
        "(-9223372036854775807LL - 1)".into()
    } else {
        format!("{v}LL")
    }
}

fn sanitize(name: &str) -> String {
    let mut s: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if s.is_empty() || s.chars().next().unwrap().is_ascii_digit() {
        s.insert(0, 'p');
    }
    s
}

/// How a feature is sourced inside the kernel hooks: an expression over
/// `tp`/`acked`/`loss`, or a slot in the per-socket state for history
/// features the hooks maintain.
fn kern_feature_expr(f: Feature) -> String {
    use Feature::*;
    match f {
        Cwnd => "(s64)tp->snd_cwnd".into(),
        PrevCwnd => "st->prev_cwnd".into(),
        Ssthresh => "(s64)tp->snd_ssthresh".into(),
        Mss => "(s64)tp->mss_cache".into(),
        SrttUs => "(s64)(tp->srtt_us >> 3)".into(),
        MinRttUs => "(s64)minmax_get(&tp->rtt_min)".into(),
        LastRttUs => "(s64)tp->rack.rtt_us".into(),
        InflightPkts => "(s64)tp->packets_out".into(),
        InflightBytes => "(s64)tp->packets_out * (s64)tp->mss_cache".into(),
        DeliveredBytes => "(s64)tp->delivered * (s64)tp->mss_cache".into(),
        DeliveryRateBps => "(s64)tp->rate_delivered".into(),
        LossEvent => "loss".into(),
        AckedBytes => "(s64)acked * (s64)tp->mss_cache".into(),
        Now => "(s64)(bpf_ktime_get_ns() / 1000)".into(),
        HistCwnd(i) => format!("st->hist_cwnd[{i}]"),
        HistRtt(i) => format!("st->hist_rtt[{i}]"),
        HistQdelay(i) => format!("st->hist_qdelay[{i}]"),
        HistDelivered(i) => format!("st->hist_delivered[{i}]"),
        HistLoss(i) => format!("st->hist_loss[{i}]"),
        // non-cc features never reach Mode::Kernel compilation
        other => format!("0 /* unmapped feature: {} */", other.name()),
    }
}

fn render_kern_section(w: &mut String, features: &[Feature], ident: &str) {
    let hist = features.iter().any(|f| {
        matches!(
            f,
            Feature::HistCwnd(_)
                | Feature::HistRtt(_)
                | Feature::HistQdelay(_)
                | Feature::HistDelivered(_)
                | Feature::HistLoss(_)
                | Feature::PrevCwnd
        )
    });
    // keep the algorithm name within the kernel's 16-byte limit
    let algname: String = ident.chars().take(15).collect();
    let _ = writeln!(w, "#ifdef POLICYSMITH_KERN");
    let _ = writeln!(w);
    let _ = writeln!(w, "char _license[] SEC(\"license\") = \"GPL\";");
    let _ = writeln!(w);
    let _ = writeln!(w, "/* per-socket scratch: kbpf map slots + history features */");
    let _ = writeln!(w, "struct psm_state {{");
    let _ = writeln!(w, "\ts64 m[{}];", policysmith_kbpf::SPILL_SLOTS);
    if hist {
        let _ = writeln!(w, "\ts64 prev_cwnd;");
        let _ = writeln!(w, "\ts64 hist_cwnd[8];");
        let _ = writeln!(w, "\ts64 hist_rtt[8];");
        let _ = writeln!(w, "\ts64 hist_qdelay[8];");
        let _ = writeln!(w, "\ts64 hist_delivered[8];");
        let _ = writeln!(w, "\ts64 hist_loss[8];");
    }
    let _ = writeln!(w, "}};");
    let _ = writeln!(w);
    let _ = writeln!(w, "struct {{");
    let _ = writeln!(w, "\t__uint(type, BPF_MAP_TYPE_SK_STORAGE);");
    let _ = writeln!(w, "\t__uint(map_flags, BPF_F_NO_PREALLOC);");
    let _ = writeln!(w, "\t__type(key, int);");
    let _ = writeln!(w, "\t__type(value, struct psm_state);");
    let _ = writeln!(w, "}} psm_sk_state SEC(\".maps\");");
    let _ = writeln!(w);
    let _ = writeln!(w, "static void psm_fill_ctx(struct psm_ctx *c, const struct tcp_sock *tp,");
    let _ = writeln!(w, "\t\t\t struct psm_state *st, __u32 acked, s64 loss)");
    let _ = writeln!(w, "{{");
    if features.is_empty() {
        let _ = writeln!(w, "\t(void)c; (void)tp; (void)st; (void)acked; (void)loss;");
    }
    for (slot, f) in features.iter().enumerate() {
        let _ = writeln!(w, "\tc->f[{slot}] = {};", kern_feature_expr(*f));
    }
    let _ = writeln!(w, "}}");
    let _ = writeln!(w);
    let _ = writeln!(w, "static s64 psm_decide(struct sock *sk, __u32 acked, s64 loss)");
    let _ = writeln!(w, "{{");
    let _ = writeln!(w, "\tstruct tcp_sock *tp = (struct tcp_sock *)sk;");
    let _ = writeln!(w, "\tstruct psm_state *st;");
    let _ = writeln!(w, "\tstruct psm_ctx c = {{}};");
    let _ = writeln!(w, "\ts64 cwnd;");
    let _ = writeln!(w);
    let _ = writeln!(w, "\tst = bpf_sk_storage_get(&psm_sk_state, sk, 0,");
    let _ = writeln!(w, "\t\t\t\tBPF_SK_STORAGE_GET_F_CREATE);");
    let _ = writeln!(w, "\tif (!st)");
    let _ = writeln!(w, "\t\treturn (s64)tp->snd_cwnd;");
    let _ = writeln!(w, "\tpsm_fill_ctx(&c, tp, st, acked, loss);");
    let _ = writeln!(w, "\tcwnd = {ident}_policy(&c, st->m);");
    let _ = writeln!(w, "\t/* host-side clamp, mirrored in the kernel */");
    let _ = writeln!(w, "\tif (cwnd < 2) cwnd = 2;");
    let _ = writeln!(w, "\tif (cwnd > (1 << 20)) cwnd = 1 << 20;");
    if hist {
        let _ = writeln!(w, "\tst->prev_cwnd = (s64)tp->snd_cwnd;");
    }
    let _ = writeln!(w, "\treturn cwnd;");
    let _ = writeln!(w, "}}");
    let _ = writeln!(w);
    let _ = writeln!(w, "SEC(\"struct_ops\")");
    let _ =
        writeln!(w, "void BPF_PROG({ident}_cong_avoid, struct sock *sk, __u32 ack, __u32 acked)");
    let _ = writeln!(w, "{{");
    let _ = writeln!(w, "\tstruct tcp_sock *tp = (struct tcp_sock *)sk;");
    let _ = writeln!(w);
    let _ = writeln!(w, "\ttp->snd_cwnd = (__u32)psm_decide(sk, acked, 0);");
    let _ = writeln!(w, "}}");
    let _ = writeln!(w);
    let _ = writeln!(w, "SEC(\"struct_ops\")");
    let _ = writeln!(w, "__u32 BPF_PROG({ident}_ssthresh, struct sock *sk)");
    let _ = writeln!(w, "{{");
    let _ = writeln!(w, "\treturn (__u32)psm_decide(sk, 0, 1);");
    let _ = writeln!(w, "}}");
    let _ = writeln!(w);
    let _ = writeln!(w, "SEC(\"struct_ops\")");
    let _ = writeln!(w, "__u32 BPF_PROG({ident}_undo_cwnd, struct sock *sk)");
    let _ = writeln!(w, "{{");
    let _ = writeln!(w, "\tstruct tcp_sock *tp = (struct tcp_sock *)sk;");
    let _ = writeln!(w);
    let _ = writeln!(w, "\treturn tp->snd_cwnd;");
    let _ = writeln!(w, "}}");
    let _ = writeln!(w);
    let _ = writeln!(w, "SEC(\".struct_ops\")");
    let _ = writeln!(w, "struct tcp_congestion_ops {ident}_ops = {{");
    let _ = writeln!(w, "\t.cong_avoid\t= (void *){ident}_cong_avoid,");
    let _ = writeln!(w, "\t.ssthresh\t= (void *){ident}_ssthresh,");
    let _ = writeln!(w, "\t.undo_cwnd\t= (void *){ident}_undo_cwnd,");
    let _ = writeln!(w, "\t.name\t\t= \"{algname}\",");
    let _ = writeln!(w, "}};");
    let _ = writeln!(w);
    let _ = writeln!(w, "#endif /* POLICYSMITH_KERN */");
}

#[cfg(test)]
mod tests {
    use super::*;
    use policysmith_dsl::{parse, Mode};
    use policysmith_kbpf::CompiledPolicy;

    fn render(src: &str, name: &str) -> String {
        let e = parse(src).unwrap();
        let p = CompiledPolicy::compile(&e, Mode::Kernel).unwrap();
        render_struct_ops(p.program(), p.layout().features(), name)
    }

    #[test]
    fn renders_a_complete_translation_unit() {
        let c = render("if(loss, max(cwnd >> 1, 2), cwnd + 1)", "aimd");
        assert!(c.contains("static s64 aimd_policy(const struct psm_ctx *c, s64 *m)"));
        assert!(c.contains("struct psm_ctx"));
        assert!(c.contains("return r0;"));
        assert!(c.contains("SEC(\".struct_ops\")"));
        assert!(c.contains(".name\t\t= \"aimd\""));
        // host half must not leak kernel-only identifiers
        let host: String = c.split("#ifdef POLICYSMITH_KERN").take(2).collect();
        assert!(!host.contains("bpf_sk_storage_get"));
    }

    #[test]
    fn labels_only_where_jumps_land() {
        let c = render("if(loss, max(cwnd >> 1, 2), cwnd + 1)", "aimd");
        for line in c.lines() {
            if let Some(rest) = line.strip_prefix('L') {
                let label: usize = rest.trim_end_matches(':').parse().unwrap();
                assert!(c.contains(&format!("goto L{label};")), "dead label L{label}");
            }
        }
    }

    #[test]
    fn division_renders_guarded() {
        let c = render("cwnd + acked / max(mss, 1)", "r8");
        // the policy body itself never emits a bare `/` — only the
        // guarded helper does
        let body = c.split("r8_policy(").nth(1).unwrap();
        let body = &body[..body.find("\n}").unwrap()];
        assert!(body.contains("psm_div("));
        assert!(!body.lines().any(|l| l.contains(" / ") && !l.contains("psm_div")));
    }

    #[test]
    fn identifier_sanitization() {
        let c = render("cwnd + 1", "8-weird name!");
        assert!(c.contains("p8_weird_name__policy"));
    }

    #[test]
    fn min_imm_renders_without_overflow_literal() {
        assert_eq!(c_imm(i64::MIN), "(-9223372036854775807LL - 1)");
        assert_eq!(c_imm(-5), "-5LL");
    }
}
