//! Raw eBPF instruction representation and encoding.
//!
//! The emitted subset is classic 64-bit eBPF: `BPF_ALU64` arithmetic,
//! `BPF_JMP` signed conditional jumps, `BPF_LDX`/`BPF_STX` double-word
//! memory access, the two-slot `LDDW` 64-bit immediate load, and `EXIT`.
//! Opcode values follow `linux/bpf.h`; [`EbpfInsn::encode`] produces the
//! 8-byte wire format a loader would feed to `bpf(BPF_PROG_LOAD, …)`.
//!
//! Division and remainder are emitted in their *signed* forms (`off = 1`,
//! the cpu-v4 `sdiv`/`smod` encoding) because the kbpf ISA is signed
//! throughout; comparisons likewise use the `JSLT`-family signed jumps.

use std::fmt;

// ---- instruction classes (low 3 bits of the code byte) ------------------
pub const BPF_LD: u8 = 0x00;
pub const BPF_LDX: u8 = 0x01;
pub const BPF_STX: u8 = 0x03;
pub const BPF_ALU64: u8 = 0x07;
pub const BPF_JMP: u8 = 0x05;

// ---- source modifier ----------------------------------------------------
pub const BPF_K: u8 = 0x00;
pub const BPF_X: u8 = 0x08;

// ---- ALU operations (high 4 bits) ---------------------------------------
pub const BPF_ADD: u8 = 0x00;
pub const BPF_SUB: u8 = 0x10;
pub const BPF_MUL: u8 = 0x20;
pub const BPF_DIV: u8 = 0x30;
pub const BPF_LSH: u8 = 0x60;
pub const BPF_NEG: u8 = 0x80;
pub const BPF_MOD: u8 = 0x90;
pub const BPF_MOV: u8 = 0xb0;
pub const BPF_ARSH: u8 = 0xc0;

// ---- JMP operations ------------------------------------------------------
pub const BPF_JA: u8 = 0x00;
pub const BPF_JEQ: u8 = 0x10;
pub const BPF_JNE: u8 = 0x50;
pub const BPF_JSGT: u8 = 0x60;
pub const BPF_JSGE: u8 = 0x70;
pub const BPF_EXIT: u8 = 0x90;
pub const BPF_JSLT: u8 = 0xc0;
pub const BPF_JSLE: u8 = 0xd0;

// ---- memory size / mode --------------------------------------------------
pub const BPF_DW: u8 = 0x18;
pub const BPF_IMM: u8 = 0x00;
pub const BPF_MEM: u8 = 0x60;

/// `sdiv`/`smod`: signed division is selected by `off = 1` on
/// `BPF_DIV`/`BPF_MOD` (the cpu-v4 encoding).
pub const SIGNED_DIV_OFF: i16 = 1;

/// One 8-byte eBPF instruction slot. A `LDDW` occupies two consecutive
/// slots; the second carries the upper 32 immediate bits and `code = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EbpfInsn {
    pub code: u8,
    pub dst: u8,
    pub src: u8,
    pub off: i16,
    pub imm: i32,
}

impl EbpfInsn {
    pub const fn new(code: u8, dst: u8, src: u8, off: i16, imm: i32) -> EbpfInsn {
        EbpfInsn { code, dst, src, off, imm }
    }

    /// ALU64 register-form: `dst = dst <op> src`.
    pub fn alu_x(op: u8, dst: u8, src: u8) -> EbpfInsn {
        EbpfInsn::new(BPF_ALU64 | BPF_X | op, dst, src, 0, 0)
    }

    /// ALU64 immediate-form: `dst = dst <op> imm`.
    pub fn alu_k(op: u8, dst: u8, imm: i32) -> EbpfInsn {
        EbpfInsn::new(BPF_ALU64 | BPF_K | op, dst, 0, 0, imm)
    }

    /// `dst = src` (64-bit register move).
    pub fn mov_x(dst: u8, src: u8) -> EbpfInsn {
        Self::alu_x(BPF_MOV, dst, src)
    }

    /// `dst = imm` (sign-extended 32-bit immediate).
    pub fn mov_k(dst: u8, imm: i32) -> EbpfInsn {
        Self::alu_k(BPF_MOV, dst, imm)
    }

    /// Two-slot `LDDW`: `dst = imm` for a full 64-bit immediate.
    pub fn lddw(dst: u8, imm: i64) -> [EbpfInsn; 2] {
        [
            EbpfInsn::new(BPF_LD | BPF_IMM | BPF_DW, dst, 0, 0, imm as i32),
            EbpfInsn::new(0, 0, 0, 0, (imm >> 32) as i32),
        ]
    }

    /// `dst = *(u64 *)(base + off)`.
    pub fn ldx_dw(dst: u8, base: u8, off: i16) -> EbpfInsn {
        EbpfInsn::new(BPF_LDX | BPF_MEM | BPF_DW, dst, base, off, 0)
    }

    /// `*(u64 *)(base + off) = src`.
    pub fn stx_dw(base: u8, off: i16, src: u8) -> EbpfInsn {
        EbpfInsn::new(BPF_STX | BPF_MEM | BPF_DW, base, src, off, 0)
    }

    /// Conditional jump, register-form.
    pub fn jmp_x(op: u8, dst: u8, src: u8, off: i16) -> EbpfInsn {
        EbpfInsn::new(BPF_JMP | BPF_X | op, dst, src, off, 0)
    }

    /// Conditional jump, immediate-form.
    pub fn jmp_k(op: u8, dst: u8, imm: i32, off: i16) -> EbpfInsn {
        EbpfInsn::new(BPF_JMP | BPF_K | op, dst, 0, off, imm)
    }

    /// Unconditional jump.
    pub fn ja(off: i16) -> EbpfInsn {
        EbpfInsn::new(BPF_JMP | BPF_JA, 0, 0, off, 0)
    }

    /// Return `r0`.
    pub fn exit() -> EbpfInsn {
        EbpfInsn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0)
    }

    /// Instruction class (low 3 bits).
    pub fn class(self) -> u8 {
        self.code & 0x07
    }

    /// Kernel wire format: code, regs (dst in low nibble), off, imm —
    /// little-endian, 8 bytes per slot.
    pub fn encode(self) -> [u8; 8] {
        let mut b = [0u8; 8];
        b[0] = self.code;
        b[1] = (self.src << 4) | (self.dst & 0x0f);
        b[2..4].copy_from_slice(&self.off.to_le_bytes());
        b[4..8].copy_from_slice(&self.imm.to_le_bytes());
        b
    }
}

impl fmt::Display for EbpfInsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (d, s, off, imm) = (self.dst, self.src, self.off, self.imm);
        if self.code == 0 {
            return write!(f, ".imm64 hi={imm:#x}");
        }
        match self.class() {
            BPF_ALU64 => {
                let name = match self.code & 0xf0 {
                    BPF_ADD => "+=",
                    BPF_SUB => "-=",
                    BPF_MUL => "*=",
                    BPF_DIV => "s/=",
                    BPF_MOD => "s%=",
                    BPF_LSH => "<<=",
                    BPF_ARSH => "s>>=",
                    BPF_MOV => "=",
                    BPF_NEG => return write!(f, "r{d} = -r{d}"),
                    other => return write!(f, "alu64 {other:#x} r{d}"),
                };
                if self.code & BPF_X != 0 {
                    write!(f, "r{d} {name} r{s}")
                } else {
                    write!(f, "r{d} {name} {imm}")
                }
            }
            BPF_JMP => {
                let name = match self.code & 0xf0 {
                    BPF_JA => return write!(f, "goto +{off}"),
                    BPF_EXIT => return write!(f, "exit"),
                    BPF_JEQ => "==",
                    BPF_JNE => "!=",
                    BPF_JSGT => "s>",
                    BPF_JSGE => "s>=",
                    BPF_JSLT => "s<",
                    BPF_JSLE => "s<=",
                    other => return write!(f, "jmp {other:#x}"),
                };
                if self.code & BPF_X != 0 {
                    write!(f, "if r{d} {name} r{s} goto +{off}")
                } else {
                    write!(f, "if r{d} {name} {imm} goto +{off}")
                }
            }
            BPF_LDX => write!(f, "r{d} = *(u64 *)(r{s} {off:+})"),
            BPF_STX => write!(f, "*(u64 *)(r{d} {off:+}) = r{s}"),
            BPF_LD => write!(f, "r{d} = {imm} ll"),
            other => write!(f, "<class {other:#x}>"),
        }
    }
}

/// The emitted artifact: eBPF instruction slots plus the metadata the model
/// verifier, interpreter, and C renderer need (the context ABI's declared
/// slot ranges and the frame size the register allocator reserved).
#[derive(Debug, Clone, PartialEq)]
pub struct EbpfProgram {
    /// Instruction slots (a `LDDW` spans two).
    pub insns: Vec<EbpfInsn>,
    /// Declared `[lo, hi]` range of each 8-byte context slot, in slot
    /// order — `ctx + 8*k` reads a value within `ctx_ranges[k]`.
    pub ctx_ranges: Vec<(i64, i64)>,
    /// Bytes of the r10 frame the program uses (≤ 512).
    pub stack_bytes: usize,
}

impl EbpfProgram {
    /// Number of instruction slots.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Encoded size in bytes (8 per slot) — what `results/ebpf.json`
    /// reports as the loadable artifact size.
    pub fn byte_len(&self) -> usize {
        self.insns.len() * 8
    }

    /// Kernel wire format for the whole program.
    pub fn encode(&self) -> Vec<u8> {
        self.insns.iter().flat_map(|i| i.encode()).collect()
    }
}

impl fmt::Display for EbpfProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, insn) in self.insns.iter().enumerate() {
            writeln!(f, "{pc:4}: {insn}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_matches_kernel_layout() {
        // r2 += r3  →  code 0x0f, regs 0x32
        let i = EbpfInsn::alu_x(BPF_ADD, 2, 3);
        assert_eq!(i.encode(), [0x0f, 0x32, 0, 0, 0, 0, 0, 0]);
        // r1 = 7  →  code 0xb7
        let i = EbpfInsn::mov_k(1, 7);
        assert_eq!(i.encode(), [0xb7, 0x01, 0, 0, 7, 0, 0, 0]);
        // exit  →  0x95
        assert_eq!(EbpfInsn::exit().encode()[0], 0x95);
        // r1 = *(u64 *)(r6 + 16)  →  0x79
        let i = EbpfInsn::ldx_dw(1, 6, 16);
        assert_eq!(i.encode(), [0x79, 0x61, 16, 0, 0, 0, 0, 0]);
        // *(u64 *)(r10 - 8) = r1  →  0x7b
        let i = EbpfInsn::stx_dw(10, -8, 1);
        assert_eq!(i.encode()[0], 0x7b);
        assert_eq!(i.encode()[1], 0x1a);
        assert_eq!(i16::from_le_bytes([i.encode()[2], i.encode()[3]]), -8);
    }

    #[test]
    fn lddw_splits_the_immediate() {
        let v: i64 = 0x1234_5678_9abc_def0u64 as i64;
        let [a, b] = EbpfInsn::lddw(3, v);
        assert_eq!(a.code, 0x18);
        assert_eq!(b.code, 0);
        let recombined = (a.imm as u32 as u64) | ((b.imm as u32 as u64) << 32);
        assert_eq!(recombined as i64, v);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(EbpfInsn::alu_x(BPF_ADD, 2, 3).to_string(), "r2 += r3");
        assert_eq!(EbpfInsn::jmp_k(BPF_JSGE, 1, 0, 4).to_string(), "if r1 s>= 0 goto +4");
        assert_eq!(EbpfInsn::ldx_dw(1, 6, 16).to_string(), "r1 = *(u64 *)(r6 +16)");
        assert_eq!(EbpfInsn::stx_dw(10, -8, 2).to_string(), "*(u64 *)(r10 -8) = r2");
        assert_eq!(EbpfInsn::exit().to_string(), "exit");
    }

    #[test]
    fn signed_div_uses_the_offset_encoding() {
        let mut i = EbpfInsn::alu_x(BPF_DIV, 1, 2);
        i.off = SIGNED_DIV_OFF;
        assert_eq!(i.off, 1);
        assert_eq!(i.to_string(), "r1 s/= r2");
    }
}
