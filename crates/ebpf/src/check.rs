//! Model verifier for emitted eBPF — a faithful miniature of the checks
//! the in-kernel verifier would run at `BPF_PROG_LOAD` time.
//!
//! [`model_check`] abstractly interprets the emitted instruction slots
//! with a small type-and-range domain ([`AbsVal`]): every register is
//! uninitialized, a scalar interval, the context pointer, or the frame
//! pointer. It proves, independently of the emitter that produced the
//! program:
//!
//! * **termination** — every jump is forward, so the CFG is a DAG and no
//!   loop bound is even needed;
//! * **memory safety** — loads go through the context pointer (aligned,
//!   in `ctx_ranges` bounds) or the frame pointer (aligned, within the
//!   reserved frame, and *never before a store on some path* — the check
//!   that licenses translating kbpf's persistent scratch map to a
//!   fresh-per-call stack frame);
//! * **arithmetic safety** — division/modulus only by provably non-zero
//!   divisors, no `i64::MIN s/ -1`, shift amounts provably in `[0, 63]`
//!   (the emitter's clamp sequences are re-proved here via branch
//!   refinement, not trusted);
//! * **a typed return** — `r0` holds a scalar at every reachable `exit`.
//!
//! Unlike the kbpf verifier the scalar transfer functions here model
//! *wrapping* arithmetic: the saturating interval transfer is computed,
//! and any result touching a rail is widened to ⊤ (if wrap-around is
//! possible, nothing tighter is sound). Programs produced by
//! [`crate::emit()`] pass with precise ranges because the emitter's
//! saturation gate already excluded the rails.

use crate::isa::{
    EbpfProgram, BPF_ADD, BPF_ALU64, BPF_ARSH, BPF_DIV, BPF_DW, BPF_EXIT, BPF_JA, BPF_JEQ, BPF_JMP,
    BPF_JNE, BPF_JSGE, BPF_JSGT, BPF_JSLE, BPF_JSLT, BPF_LD, BPF_LDX, BPF_LSH, BPF_MEM, BPF_MOD,
    BPF_MOV, BPF_MUL, BPF_NEG, BPF_STX, BPF_SUB, BPF_X, SIGNED_DIV_OFF,
};
use policysmith_kbpf::range::{refine_eq, refine_ge, refine_gt, refine_le, refine_lt, refine_ne};
use policysmith_kbpf::Interval;
use std::fmt;

/// Abstract value of one register or frame slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Never written on some path — reading is an error.
    Uninit,
    /// A scalar within the interval.
    Scalar(Interval),
    /// The context pointer (`r1` on entry).
    CtxPtr,
    /// The read-only frame pointer (`r10`).
    FramePtr,
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Scalar(a), AbsVal::Scalar(b)) => AbsVal::Scalar(a.join(b)),
            (a, b) if a == b => a,
            // pointer/scalar or init/uninit disagreement poisons the slot
            _ => AbsVal::Uninit,
        }
    }
}

/// Why the model verifier rejected the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// Jump lands outside the program or into the middle of a `LDDW`.
    BadJumpTarget { pc: usize, target: i64 },
    /// Backward jump — would make termination non-obvious.
    BackwardJump { pc: usize },
    /// Read of a register not initialized on every path.
    UninitRead { pc: usize, reg: u8 },
    /// Load from a frame slot not stored on every path to this load.
    UninitStackRead { pc: usize, off: i16 },
    /// Misaligned / out-of-bounds / wrong-base memory access.
    BadMemAccess { pc: usize, detail: &'static str },
    /// A pointer where a scalar is required (ALU, store, compare, exit).
    NotScalar { pc: usize, reg: u8 },
    /// Write to the read-only frame pointer.
    WriteToFramePtr { pc: usize },
    /// Divisor interval contains zero.
    DivByZero { pc: usize },
    /// `i64::MIN s/ -1` not ruled out.
    SdivOverflow { pc: usize },
    /// Shift amount not provably within `[0, 63]`.
    ShiftOutOfRange { pc: usize, lo: i64, hi: i64 },
    /// `LDDW` without its second slot, or a stray second slot.
    MalformedLddw { pc: usize },
    /// Opcode outside the emitted subset.
    UnsupportedInsn { pc: usize, code: u8 },
    /// Control flow can fall off the end of the program.
    FallsOffEnd,
    /// No reachable `exit` — the program never returns.
    NoReachableExit,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::BadJumpTarget { pc, target } => {
                write!(f, "model-check: insn {pc}: jump to invalid slot {target}")
            }
            CheckError::BackwardJump { pc } => {
                write!(f, "model-check: insn {pc}: backward jump")
            }
            CheckError::UninitRead { pc, reg } => {
                write!(f, "model-check: insn {pc}: r{reg} read before initialized")
            }
            CheckError::UninitStackRead { pc, off } => {
                write!(f, "model-check: insn {pc}: frame slot [r10{off:+}] read before stored")
            }
            CheckError::BadMemAccess { pc, detail } => {
                write!(f, "model-check: insn {pc}: bad memory access ({detail})")
            }
            CheckError::NotScalar { pc, reg } => {
                write!(f, "model-check: insn {pc}: r{reg} is a pointer, scalar required")
            }
            CheckError::WriteToFramePtr { pc } => {
                write!(f, "model-check: insn {pc}: write to read-only r10")
            }
            CheckError::DivByZero { pc } => {
                write!(f, "model-check: insn {pc}: divisor may be zero")
            }
            CheckError::SdivOverflow { pc } => {
                write!(f, "model-check: insn {pc}: i64::MIN s/ -1 not ruled out")
            }
            CheckError::ShiftOutOfRange { pc, lo, hi } => {
                write!(f, "model-check: insn {pc}: shift amount in [{lo}, {hi}], need [0, 63]")
            }
            CheckError::MalformedLddw { pc } => {
                write!(f, "model-check: insn {pc}: malformed two-slot immediate load")
            }
            CheckError::UnsupportedInsn { pc, code } => {
                write!(f, "model-check: insn {pc}: unsupported opcode {code:#04x}")
            }
            CheckError::FallsOffEnd => write!(f, "model-check: control flow falls off the end"),
            CheckError::NoReachableExit => write!(f, "model-check: no reachable exit"),
        }
    }
}

impl std::error::Error for CheckError {}

/// What the model verifier proved, for `results/ebpf.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckStats {
    /// Total instruction slots.
    pub insns: usize,
    /// Slots reachable under the abstract semantics.
    pub reachable: usize,
    /// Conditional branches analyzed.
    pub branches: usize,
    /// 8-byte frame slots the program may touch.
    pub stack_slots: usize,
    /// Proven bounds on the return value.
    pub r0: (i64, i64),
}

#[derive(Clone, PartialEq, Eq)]
struct State {
    regs: [AbsVal; 11],
    stack: Vec<AbsVal>,
}

impl State {
    fn entry(stack_slots: usize) -> State {
        let mut regs = [AbsVal::Uninit; 11];
        regs[1] = AbsVal::CtxPtr;
        regs[10] = AbsVal::FramePtr;
        State { regs, stack: vec![AbsVal::Uninit; stack_slots] }
    }

    fn join_with(&mut self, other: &State) {
        for (a, b) in self.regs.iter_mut().zip(other.regs.iter()) {
            *a = a.join(*b);
        }
        for (a, b) in self.stack.iter_mut().zip(other.stack.iter()) {
            *a = a.join(*b);
        }
    }
}

/// Wrapping-aware scalar transfer: the saturating interval transfer is
/// sound for the exact result whenever it avoids the rails; if it touches
/// them, wrap-around is possible and only ⊤ is sound.
fn wrap_widen(iv: Interval) -> Interval {
    if iv.touches_rails() {
        Interval::TOP
    } else {
        iv
    }
}

/// Abstractly interpret an emitted program, returning the proof stats.
pub fn model_check(prog: &EbpfProgram) -> Result<CheckStats, CheckError> {
    let n = prog.insns.len();
    if n == 0 {
        return Err(CheckError::NoReachableExit);
    }
    let stack_slots = prog.stack_bytes / 8;

    // Mark LDDW second slots: jumps may not land on them and stray
    // `code == 0` slots are malformed.
    let mut is_cont = vec![false; n];
    let mut pc = 0;
    while pc < n {
        if prog.insns[pc].code == BPF_LD | BPF_DW {
            if pc + 1 >= n || prog.insns[pc + 1].code != 0 {
                return Err(CheckError::MalformedLddw { pc });
            }
            is_cont[pc + 1] = true;
            pc += 2;
        } else {
            if prog.insns[pc].code == 0 && !is_cont[pc] {
                return Err(CheckError::MalformedLddw { pc });
            }
            pc += 1;
        }
    }

    let mut in_states: Vec<Option<State>> = vec![None; n];
    in_states[0] = Some(State::entry(stack_slots));
    let mut branches = 0usize;
    let mut reachable = 0usize;
    let mut r0_out: Option<Interval> = None;

    for pc in 0..n {
        let Some(st) = in_states[pc].clone() else { continue };
        if is_cont[pc] {
            // only reachable by a jump into the middle of a LDDW, which
            // `target()` below rejects before propagating
            return Err(CheckError::MalformedLddw { pc });
        }
        reachable += 1;
        let insn = prog.insns[pc];
        if insn.dst > 10 || insn.src > 10 {
            return Err(CheckError::UnsupportedInsn { pc, code: insn.code });
        }

        let read_scalar = |st: &State, reg: u8| -> Result<Interval, CheckError> {
            match st.regs[reg as usize] {
                AbsVal::Scalar(iv) => Ok(iv),
                AbsVal::Uninit => Err(CheckError::UninitRead { pc, reg }),
                _ => Err(CheckError::NotScalar { pc, reg }),
            }
        };
        let target = |off: i16| -> Result<usize, CheckError> {
            if off < 0 {
                return Err(CheckError::BackwardJump { pc });
            }
            let t = pc as i64 + 1 + off as i64;
            if t as usize >= n || is_cont[t as usize] {
                return Err(CheckError::BadJumpTarget { pc, target: t });
            }
            Ok(t as usize)
        };

        // Next-states to propagate: (slot, state).
        let mut succs: Vec<(usize, State)> = Vec::with_capacity(2);
        let fallthrough = |st: State, succs: &mut Vec<(usize, State)>, skip: usize| {
            let next = pc + skip;
            if next >= n {
                // handled after the loop via the reachability of `exit`
                return Err(CheckError::FallsOffEnd);
            }
            succs.push((next, st));
            Ok(())
        };

        match insn.class() {
            BPF_ALU64 => {
                let op = insn.code & 0xf0;
                let x_form = insn.code & BPF_X != 0;
                if insn.dst >= 10 {
                    return Err(CheckError::WriteToFramePtr { pc });
                }
                let mut next = st.clone();
                if op == BPF_MOV {
                    let val = if x_form {
                        match st.regs[insn.src as usize] {
                            AbsVal::Uninit => {
                                return Err(CheckError::UninitRead { pc, reg: insn.src })
                            }
                            v => v,
                        }
                    } else {
                        AbsVal::Scalar(Interval::exact(insn.imm as i64))
                    };
                    next.regs[insn.dst as usize] = val;
                    fallthrough(next, &mut succs, 1)?;
                } else if op == BPF_NEG {
                    let d = read_scalar(&st, insn.dst)?;
                    next.regs[insn.dst as usize] = AbsVal::Scalar(wrap_widen(d.neg()));
                    fallthrough(next, &mut succs, 1)?;
                } else {
                    let d = read_scalar(&st, insn.dst)?;
                    let s = if x_form {
                        read_scalar(&st, insn.src)?
                    } else {
                        Interval::exact(insn.imm as i64)
                    };
                    let result = match op {
                        BPF_ADD => wrap_widen(d.add(s)),
                        BPF_SUB => wrap_widen(d.sub(s)),
                        BPF_MUL => wrap_widen(d.mul(s)),
                        BPF_DIV | BPF_MOD => {
                            if insn.off != SIGNED_DIV_OFF {
                                return Err(CheckError::UnsupportedInsn { pc, code: insn.code });
                            }
                            if s.contains(0) {
                                return Err(CheckError::DivByZero { pc });
                            }
                            if op == BPF_DIV {
                                if d.contains(i64::MIN) && s.contains(-1) {
                                    return Err(CheckError::SdivOverflow { pc });
                                }
                                // overflow excluded: sdiv is exact, no widening
                                d.div(s)
                            } else {
                                // smod never overflows (MIN % -1 == 0)
                                d.rem(s)
                            }
                        }
                        BPF_LSH | BPF_ARSH => {
                            if s.lo < 0 || s.hi > 63 {
                                return Err(CheckError::ShiftOutOfRange { pc, lo: s.lo, hi: s.hi });
                            }
                            if op == BPF_LSH {
                                wrap_widen(d.shl(s))
                            } else {
                                d.shr(s) // arithmetic shift right cannot overflow
                            }
                        }
                        _ => return Err(CheckError::UnsupportedInsn { pc, code: insn.code }),
                    };
                    next.regs[insn.dst as usize] = AbsVal::Scalar(result);
                    fallthrough(next, &mut succs, 1)?;
                }
            }
            BPF_JMP => {
                let op = insn.code & 0xf0;
                match op {
                    BPF_JA => {
                        let t = target(insn.off)?;
                        succs.push((t, st.clone()));
                    }
                    BPF_EXIT => {
                        let r0 = read_scalar(&st, 0)?;
                        r0_out = Some(match r0_out {
                            Some(prev) => prev.join(r0),
                            None => r0,
                        });
                    }
                    _ => {
                        branches += 1;
                        let d = read_scalar(&st, insn.dst)?;
                        let s = if insn.code & BPF_X != 0 {
                            read_scalar(&st, insn.src)?
                        } else {
                            Interval::exact(insn.imm as i64)
                        };
                        let (taken, fall) = match op {
                            BPF_JEQ => (refine_eq(d, s), refine_ne(d, s)),
                            BPF_JNE => (refine_ne(d, s), refine_eq(d, s)),
                            BPF_JSLT => (refine_lt(d, s), refine_ge(d, s)),
                            BPF_JSLE => (refine_le(d, s), refine_gt(d, s)),
                            BPF_JSGT => (refine_gt(d, s), refine_le(d, s)),
                            BPF_JSGE => (refine_ge(d, s), refine_lt(d, s)),
                            _ => return Err(CheckError::UnsupportedInsn { pc, code: insn.code }),
                        };
                        let t = target(insn.off)?;
                        if let Some((rd, rs)) = taken {
                            let mut next = st.clone();
                            next.regs[insn.dst as usize] = AbsVal::Scalar(rd);
                            if insn.code & BPF_X != 0 {
                                next.regs[insn.src as usize] = AbsVal::Scalar(rs);
                            }
                            succs.push((t, next));
                        }
                        if let Some((rd, rs)) = fall {
                            let mut next = st.clone();
                            next.regs[insn.dst as usize] = AbsVal::Scalar(rd);
                            if insn.code & BPF_X != 0 {
                                next.regs[insn.src as usize] = AbsVal::Scalar(rs);
                            }
                            fallthrough(next, &mut succs, 1)?;
                        }
                    }
                }
            }
            BPF_LDX => {
                if insn.code != BPF_LDX | BPF_MEM | BPF_DW {
                    return Err(CheckError::UnsupportedInsn { pc, code: insn.code });
                }
                if insn.dst >= 10 {
                    return Err(CheckError::WriteToFramePtr { pc });
                }
                let mut next = st.clone();
                let loaded = match st.regs[insn.src as usize] {
                    AbsVal::CtxPtr => {
                        let off = insn.off as i64;
                        if off < 0 || off % 8 != 0 {
                            return Err(CheckError::BadMemAccess { pc, detail: "ctx alignment" });
                        }
                        let slot = (off / 8) as usize;
                        match prog.ctx_ranges.get(slot) {
                            Some(&(lo, hi)) => AbsVal::Scalar(Interval::new(lo, hi)),
                            None => {
                                return Err(CheckError::BadMemAccess { pc, detail: "ctx bounds" })
                            }
                        }
                    }
                    AbsVal::FramePtr => {
                        let slot = frame_slot(insn.off, stack_slots)
                            .ok_or(CheckError::BadMemAccess { pc, detail: "frame bounds" })?;
                        match st.stack[slot] {
                            AbsVal::Scalar(iv) => AbsVal::Scalar(iv),
                            _ => return Err(CheckError::UninitStackRead { pc, off: insn.off }),
                        }
                    }
                    AbsVal::Uninit => return Err(CheckError::UninitRead { pc, reg: insn.src }),
                    AbsVal::Scalar(_) => {
                        return Err(CheckError::BadMemAccess { pc, detail: "load via scalar" })
                    }
                };
                next.regs[insn.dst as usize] = loaded;
                fallthrough(next, &mut succs, 1)?;
            }
            BPF_STX => {
                if insn.code != BPF_STX | BPF_MEM | BPF_DW {
                    return Err(CheckError::UnsupportedInsn { pc, code: insn.code });
                }
                match st.regs[insn.dst as usize] {
                    AbsVal::FramePtr => {}
                    AbsVal::CtxPtr => {
                        return Err(CheckError::BadMemAccess { pc, detail: "store to ctx" })
                    }
                    _ => return Err(CheckError::BadMemAccess { pc, detail: "store via scalar" }),
                }
                let val = read_scalar(&st, insn.src)?;
                let slot = frame_slot(insn.off, stack_slots)
                    .ok_or(CheckError::BadMemAccess { pc, detail: "frame bounds" })?;
                let mut next = st.clone();
                next.stack[slot] = AbsVal::Scalar(val);
                fallthrough(next, &mut succs, 1)?;
            }
            BPF_LD => {
                // two-slot LDDW (validated in the pre-scan)
                if insn.dst >= 10 {
                    return Err(CheckError::WriteToFramePtr { pc });
                }
                let hi = prog.insns[pc + 1].imm;
                let v = (insn.imm as u32 as u64 | ((hi as u32 as u64) << 32)) as i64;
                let mut next = st.clone();
                next.regs[insn.dst as usize] = AbsVal::Scalar(Interval::exact(v));
                fallthrough(next, &mut succs, 2)?;
            }
            _ => return Err(CheckError::UnsupportedInsn { pc, code: insn.code }),
        }

        for (t, s) in succs {
            match &mut in_states[t] {
                Some(existing) => existing.join_with(&s),
                slot => *slot = Some(s),
            }
        }
    }

    match r0_out {
        Some(r0) => {
            Ok(CheckStats { insns: n, reachable, branches, stack_slots, r0: (r0.lo, r0.hi) })
        }
        None => Err(CheckError::NoReachableExit),
    }
}

/// Frame offset → slot index: must be `-stack_bytes ≤ off ≤ -8`, 8-aligned.
/// Slot 0 is `[r10 - 8]`.
fn frame_slot(off: i16, stack_slots: usize) -> Option<usize> {
    let off = off as i64;
    if off >= -8 * stack_slots as i64 && off <= -8 && off % 8 == 0 {
        Some((-off / 8 - 1) as usize)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::emit;
    use crate::isa::EbpfInsn;
    use policysmith_dsl::{parse, Mode};
    use policysmith_kbpf::CompiledPolicy;

    fn checked(src: &str) -> CheckStats {
        let e = parse(src).unwrap();
        let p = CompiledPolicy::compile(&e, Mode::Kernel).unwrap();
        let prog = emit(p.program(), &p.layout().verify_env()).unwrap();
        model_check(&prog).unwrap_or_else(|err| panic!("{src}: {err}\n{prog}"))
    }

    #[test]
    fn emitted_policies_pass_with_bounded_r0() {
        let stats = checked("if(loss, max(cwnd >> 1, 2), cwnd + max(acked / max(mss, 1), 1))");
        assert!(stats.reachable > 0 && stats.reachable <= stats.insns);
        assert!(stats.branches >= 2);
        assert!(stats.r0.0 > i64::MIN && stats.r0.1 < i64::MAX);
    }

    #[test]
    fn spilled_policies_pass_the_uninit_stack_check() {
        let stats = checked(
            "cwnd + (srtt + (min_rtt + (mss + (acked + (ssthresh + \
             (inflight + (last_rtt + (prev_cwnd + (loss + 1)))))))))",
        );
        assert!(stats.stack_slots > 0, "expected frame usage: {stats:?}");
    }

    #[test]
    fn uninit_frame_read_is_rejected() {
        let prog = EbpfProgram {
            insns: vec![
                EbpfInsn::ldx_dw(0, 10, -8), // load before any store
                EbpfInsn::exit(),
            ],
            ctx_ranges: vec![],
            stack_bytes: 8,
        };
        assert!(matches!(model_check(&prog), Err(CheckError::UninitStackRead { pc: 0, off: -8 })));
    }

    #[test]
    fn backward_jumps_are_rejected() {
        let prog = EbpfProgram {
            insns: vec![EbpfInsn::mov_k(0, 0), EbpfInsn::ja(-2), EbpfInsn::exit()],
            ctx_ranges: vec![],
            stack_bytes: 0,
        };
        assert!(matches!(model_check(&prog), Err(CheckError::BackwardJump { pc: 1 })));
    }

    #[test]
    fn unbounded_divisor_is_rejected() {
        let mut prog = EbpfProgram {
            insns: vec![
                EbpfInsn::mov_x(6, 1),
                EbpfInsn::ldx_dw(0, 6, 0),
                EbpfInsn::ldx_dw(2, 6, 8),
                EbpfInsn::alu_x(BPF_DIV, 0, 2),
                EbpfInsn::exit(),
            ],
            ctx_ranges: vec![(0, 100), (0, 10)], // divisor range includes 0
            stack_bytes: 0,
        };
        prog.insns[3].off = SIGNED_DIV_OFF;
        assert!(matches!(model_check(&prog), Err(CheckError::DivByZero { pc: 3 })));
        // tightening the declared range clears it
        prog.ctx_ranges[1] = (1, 10);
        model_check(&prog).unwrap();
    }

    #[test]
    fn clamp_sequence_proves_the_shift_amount() {
        // Mirrors the emitter's clamp: an unbounded amount in r2 is
        // clamped to [0, 63] purely via branch refinement.
        let prog = EbpfProgram {
            insns: vec![
                EbpfInsn::mov_x(6, 1),
                EbpfInsn::ldx_dw(0, 6, 0),
                EbpfInsn::ldx_dw(2, 6, 8),
                EbpfInsn::jmp_k(BPF_JSGE, 2, 0, 1),
                EbpfInsn::mov_k(2, 0),
                EbpfInsn::jmp_k(BPF_JSLE, 2, 63, 1),
                EbpfInsn::mov_k(2, 63),
                EbpfInsn::alu_x(BPF_ARSH, 0, 2),
                EbpfInsn::exit(),
            ],
            ctx_ranges: vec![(0, 100), (i64::MIN, i64::MAX)],
            stack_bytes: 0,
        };
        model_check(&prog).unwrap();

        // Without the clamp the same shift is rejected.
        let bare = EbpfProgram {
            insns: vec![
                EbpfInsn::mov_x(6, 1),
                EbpfInsn::ldx_dw(0, 6, 0),
                EbpfInsn::ldx_dw(2, 6, 8),
                EbpfInsn::alu_x(BPF_ARSH, 0, 2),
                EbpfInsn::exit(),
            ],
            ctx_ranges: vec![(0, 100), (i64::MIN, i64::MAX)],
            stack_bytes: 0,
        };
        assert!(matches!(model_check(&bare), Err(CheckError::ShiftOutOfRange { pc: 3, .. })));
    }

    #[test]
    fn pointer_arithmetic_is_rejected() {
        let prog = EbpfProgram {
            insns: vec![
                EbpfInsn::alu_k(BPF_ADD, 1, 8), // r1 is CtxPtr
                EbpfInsn::mov_k(0, 0),
                EbpfInsn::exit(),
            ],
            ctx_ranges: vec![],
            stack_bytes: 0,
        };
        assert!(matches!(model_check(&prog), Err(CheckError::NotScalar { pc: 0, reg: 1 })));
    }

    #[test]
    fn exit_requires_a_scalar_r0() {
        let prog =
            EbpfProgram { insns: vec![EbpfInsn::exit()], ctx_ranges: vec![], stack_bytes: 0 };
        assert!(matches!(model_check(&prog), Err(CheckError::UninitRead { pc: 0, reg: 0 })));
    }

    #[test]
    fn falling_off_the_end_is_rejected() {
        let prog =
            EbpfProgram { insns: vec![EbpfInsn::mov_k(0, 1)], ctx_ranges: vec![], stack_bytes: 0 };
        assert!(matches!(model_check(&prog), Err(CheckError::FallsOffEnd)));
    }

    #[test]
    fn errors_render_via_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(CheckError::DivByZero { pc: 7 });
        assert!(e.to_string().contains("insn 7"));
    }
}
