//! kbpf → eBPF lowering.
//!
//! The kbpf ISA was designed as a close cousin of eBPF, but two gaps make
//! naïve transliteration unsound, and this module closes both:
//!
//! 1. **Semantics.** kbpf arithmetic *saturates* (matching the DSL spec);
//!    real eBPF *wraps*. The emitter therefore re-runs the shared interval
//!    analysis ([`policysmith_kbpf::analyze`]) and applies a **provability
//!    gate** at every instruction that can saturate: the result interval
//!    (computed with saturating transfer functions, so any reachable
//!    saturation necessarily pins an endpoint to `i64::MIN`/`MAX`) must
//!    stay strictly inside the rails. When it does, wrapping and
//!    saturating execution coincide on every reachable input, so the
//!    emitted program is *provably* decision-identical to the kbpf VM —
//!    not hopefully identical. When it does not, emission fails with
//!    [`EmitError::SaturationUnprovable`]; a kernel artifact whose
//!    semantics we cannot prove is an artifact we refuse to produce.
//!    Signed division gets the analogous exact check (`i64::MIN / -1` is
//!    the only saturating case), and shift amounts the analysis cannot
//!    bound to `[0, 63]` get an explicit clamp sequence so the eBPF shift
//!    matches kbpf's clamping semantics.
//! 2. **Registers.** kbpf has 11 general registers plus a context array
//!    and scratch map; eBPF has 10 usable registers (`r10` is the
//!    read-only frame pointer), a context *pointer*, and a 512-byte
//!    stack. The allocator pins `r6` as the saved context base and
//!    `r8`/`r9` as reload temporaries, maps kbpf `r0` to eBPF `r0`, hands
//!    the six remaining registers to the most-used kbpf registers, and
//!    spills the rest — together with the program's live scratch-map
//!    slots — to the frame.
//!
//! The scratch-map subtlety: kbpf's map persists across invocations while
//! an eBPF stack frame is fresh per call. Lowered programs only use the
//! map for expression spills (every load is preceded by a store on all
//! paths), so the translation is exact; the model verifier
//! ([`crate::check`]) independently rejects any emitted program that
//! could read an uninitialized frame slot, turning the assumption into a
//! checked obligation.

use crate::isa::{
    EbpfInsn, EbpfProgram, BPF_ADD, BPF_ARSH, BPF_DIV, BPF_JEQ, BPF_JNE, BPF_JSGE, BPF_JSGT,
    BPF_JSLE, BPF_JSLT, BPF_LSH, BPF_MOD, BPF_MUL, BPF_NEG, BPF_SUB, SIGNED_DIV_OFF,
};
use policysmith_kbpf::{analyze, AbsState, Insn, Interval, Op, Program, VerifyEnv, VerifyError};
use std::collections::BTreeMap;
use std::fmt;

/// eBPF stack frame budget (the kernel's hard limit).
pub const EBPF_STACK_BYTES: usize = 512;

/// Saved context-pointer register (`r1` on entry, preserved in `r6`).
const CTX_REG: u8 = 6;
/// Reload temporary for destination operands.
const TEMP0: u8 = 8;
/// Reload temporary for source operands / wide immediates / clamps.
const TEMP1: u8 = 9;
/// Allocatable registers for kbpf `r1..r10`, in assignment order.
const POOL: [u8; 6] = [1, 2, 3, 4, 5, 7];

/// Why emission failed.
#[derive(Debug, Clone, PartialEq)]
pub enum EmitError {
    /// The program did not pass the kbpf verifier — nothing may be
    /// emitted for an unverified program.
    Verify(VerifyError),
    /// The interval analysis could not prove the instruction's saturating
    /// result stays inside `(i64::MIN, i64::MAX)`, so wrapping eBPF
    /// arithmetic might diverge from the kbpf VM.
    SaturationUnprovable { pc: usize, insn: String, lo: i64, hi: i64 },
    /// `i64::MIN / -1` (the one saturating division) could not be ruled
    /// out; eBPF `sdiv` wraps where kbpf saturates.
    SdivOverflowPossible { pc: usize, insn: String },
    /// Spilled registers + live map slots exceed the 512-byte eBPF frame.
    StackOverflow { bytes: usize },
    /// A branch span exceeded the 16-bit eBPF jump offset after expansion.
    JumpOffsetOverflow { pc: usize },
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmitError::Verify(e) => write!(f, "emit: program not verified: {e}"),
            EmitError::SaturationUnprovable { pc, insn, lo, hi } => write!(
                f,
                "emit: insn {pc} `{insn}`: result range [{lo}, {hi}] may saturate; \
                 wrapping eBPF arithmetic would diverge from the saturating VM"
            ),
            EmitError::SdivOverflowPossible { pc, insn } => write!(
                f,
                "emit: insn {pc} `{insn}`: cannot rule out i64::MIN / -1 \
                 (sdiv wraps where the VM saturates)"
            ),
            EmitError::StackOverflow { bytes } => {
                write!(f, "emit: frame needs {bytes} bytes, eBPF stack is {EBPF_STACK_BYTES}")
            }
            EmitError::JumpOffsetOverflow { pc } => {
                write!(f, "emit: jump at slot {pc} exceeds the 16-bit offset range")
            }
        }
    }
}

impl std::error::Error for EmitError {}

/// Where a kbpf register lives in the target frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(u8),
    Stack(i16),
}

/// A materialized second operand.
enum Operand {
    Imm(i32),
    Reg(u8),
}

/// Lower a verified kbpf program to eBPF against its declared environment.
///
/// Runs the shared interval analysis first (emission of an unverifiable
/// program is refused), then performs register allocation and two-pass
/// encoding with jump fix-ups. On success the artifact is *provably*
/// semantics-identical to the kbpf VM for every context within the
/// declared ranges — the saturation gate is what licenses the wrapping
/// target arithmetic.
pub fn emit(prog: &Program, env: &VerifyEnv) -> Result<EbpfProgram, EmitError> {
    let analysis = analyze(prog, env).map_err(EmitError::Verify)?;

    // --- register allocation: rank kbpf r1..r10 by static use count ----
    let mut uses = [0usize; 11];
    let mut map_slots: BTreeMap<i64, i16> = BTreeMap::new();
    for insn in &prog.insns {
        if insn.op.reads_dst() || insn.op.writes_dst() {
            uses[insn.dst as usize] += 1;
        }
        if insn.op.reads_src() {
            uses[insn.src as usize] += 1;
        }
        if matches!(insn.op, Op::LdMap | Op::StMap) {
            map_slots.insert(insn.imm, 0);
        }
    }
    let mut ranked: Vec<u8> = (1u8..11).filter(|&k| uses[k as usize] > 0).collect();
    ranked.sort_by_key(|&k| (std::cmp::Reverse(uses[k as usize]), k));

    let mut loc = [Loc::Reg(0); 11]; // kbpf r0 is pinned to eBPF r0
    let mut next_off: i16 = 0;
    let take_slot = |next_off: &mut i16| {
        *next_off -= 8;
        *next_off
    };
    for (i, &k) in ranked.iter().enumerate() {
        loc[k as usize] = match POOL.get(i) {
            Some(&r) => Loc::Reg(r),
            None => Loc::Stack(take_slot(&mut next_off)),
        };
    }
    for off in map_slots.values_mut() {
        *off = take_slot(&mut next_off);
    }
    let stack_bytes = (-next_off) as usize;
    if stack_bytes > EBPF_STACK_BYTES {
        return Err(EmitError::StackOverflow { bytes: stack_bytes });
    }

    // --- pass 1: per-insn emission with the saturation gate -------------
    let mut e = Emitter {
        out: Vec::with_capacity(prog.insns.len() * 2 + 2),
        loc,
        map_off: map_slots,
        kpc2slot: vec![0; prog.insns.len()],
        fixups: Vec::new(),
    };
    e.push(EbpfInsn::mov_x(CTX_REG, 1)); // prologue: save ctx pointer

    for (pc, &insn) in prog.insns.iter().enumerate() {
        e.kpc2slot[pc] = e.out.len();
        let state = analysis.in_states[pc].as_ref();
        if let Some(st) = state {
            gate(pc, insn, st)?;
        }
        e.insn(insn, pc, state);
    }

    // --- pass 2: jump fix-ups -------------------------------------------
    for &(slot, target_kpc) in &e.fixups {
        let off = e.kpc2slot[target_kpc] as i64 - slot as i64 - 1;
        if off < 0 || off > i16::MAX as i64 {
            return Err(EmitError::JumpOffsetOverflow { pc: slot });
        }
        e.out[slot].off = off as i16;
    }

    Ok(EbpfProgram { insns: e.out, ctx_ranges: env.ctx_ranges.clone(), stack_bytes })
}

/// The per-instruction provability gate: saturating transfer functions pin
/// any reachable saturation to an interval endpoint at `i64::MIN`/`MAX`,
/// so a result interval strictly inside the rails proves wrapping and
/// saturating execution identical for this instruction.
fn gate(pc: usize, insn: Insn, st: &AbsState) -> Result<(), EmitError> {
    let reg = |r: u8| st.regs[r as usize].expect("verified program reads initialized registers");
    use Op::*;
    let result = match insn.op {
        AddImm => reg(insn.dst).add(Interval::exact(insn.imm)),
        AddReg => reg(insn.dst).add(reg(insn.src)),
        SubImm => reg(insn.dst).sub(Interval::exact(insn.imm)),
        SubReg => reg(insn.dst).sub(reg(insn.src)),
        MulImm => reg(insn.dst).mul(Interval::exact(insn.imm)),
        MulReg => reg(insn.dst).mul(reg(insn.src)),
        Neg => reg(insn.dst).neg(),
        LshImm => reg(insn.dst).shl(Interval::exact(insn.imm)),
        LshReg => reg(insn.dst).shl(reg(insn.src)),
        DivImm | DivReg => {
            // div_sat saturates only for MIN / -1; check exactly that.
            let divisor_may_be_neg1 = match insn.op {
                DivImm => insn.imm == -1,
                _ => reg(insn.src).contains(-1),
            };
            if reg(insn.dst).contains(i64::MIN) && divisor_may_be_neg1 {
                return Err(EmitError::SdivOverflowPossible { pc, insn: insn.to_string() });
            }
            return Ok(());
        }
        // Rem (defined at MIN % -1 = 0 in both semantics), Rsh (cannot
        // overflow), moves, loads, stores, jumps: never saturate.
        _ => return Ok(()),
    };
    if result.touches_rails() {
        return Err(EmitError::SaturationUnprovable {
            pc,
            insn: insn.to_string(),
            lo: result.lo,
            hi: result.hi,
        });
    }
    Ok(())
}

struct Emitter {
    out: Vec<EbpfInsn>,
    loc: [Loc; 11],
    map_off: BTreeMap<i64, i16>,
    kpc2slot: Vec<usize>,
    fixups: Vec<(usize, usize)>,
}

impl Emitter {
    fn push(&mut self, i: EbpfInsn) {
        self.out.push(i);
    }

    fn push2(&mut self, pair: [EbpfInsn; 2]) {
        self.out.extend_from_slice(&pair);
    }

    /// Bring kbpf register `k`'s value into an eBPF register (its home, or
    /// a reload into `temp` for stacked registers). Returns the register.
    fn read(&mut self, k: u8, temp: u8) -> u8 {
        match self.loc[k as usize] {
            Loc::Reg(r) => r,
            Loc::Stack(off) => {
                self.push(EbpfInsn::ldx_dw(temp, 10, off));
                temp
            }
        }
    }

    /// Commit register `r` as the new value of kbpf register `k`.
    fn write_back(&mut self, k: u8, r: u8) {
        match self.loc[k as usize] {
            Loc::Reg(home) => {
                if home != r {
                    self.push(EbpfInsn::mov_x(home, r));
                }
            }
            Loc::Stack(off) => self.push(EbpfInsn::stx_dw(10, off, r)),
        }
    }

    /// Materialize a kbpf 64-bit immediate as an ALU operand: inline when
    /// it fits the 32-bit `imm` field, else a `LDDW` into [`TEMP1`].
    fn imm_operand(&mut self, imm: i64) -> Operand {
        match i32::try_from(imm) {
            Ok(v) => Operand::Imm(v),
            Err(_) => {
                self.push2(EbpfInsn::lddw(TEMP1, imm));
                Operand::Reg(TEMP1)
            }
        }
    }

    /// Read-modify-write ALU: `kdst = kdst <op> operand`.
    fn alu(&mut self, kdst: u8, op: u8, operand: Operand, off: i16) {
        let d = self.read(kdst, TEMP0);
        let mut i = match operand {
            Operand::Imm(v) => EbpfInsn::alu_k(op, d, v),
            Operand::Reg(s) => EbpfInsn::alu_x(op, d, s),
        };
        i.off = off;
        self.push(i);
        self.write_back(kdst, d);
    }

    /// Register-form shift. When the analysis proved the amount within
    /// `[0, 63]` the hardware shift is already equivalent to kbpf's
    /// clamping semantics; otherwise an explicit clamp sequence is emitted
    /// on a scratch copy (the source register must not be clobbered).
    fn shift_reg(&mut self, op: u8, kdst: u8, ksrc: u8, amount_in_range: bool) {
        if amount_in_range {
            let s = self.read(ksrc, TEMP1);
            let d = self.read(kdst, TEMP0);
            self.push(EbpfInsn::alu_x(op, d, s));
            self.write_back(kdst, d);
            return;
        }
        let s = self.read(ksrc, TEMP1);
        if s != TEMP1 {
            self.push(EbpfInsn::mov_x(TEMP1, s));
        }
        // clamp TEMP1 to [0, 63], mirroring shl_sat/shr_arith
        self.push(EbpfInsn::jmp_k(BPF_JSGE, TEMP1, 0, 1));
        self.push(EbpfInsn::mov_k(TEMP1, 0));
        self.push(EbpfInsn::jmp_k(BPF_JSLE, TEMP1, 63, 1));
        self.push(EbpfInsn::mov_k(TEMP1, 63));
        let d = self.read(kdst, TEMP0);
        self.push(EbpfInsn::alu_x(op, d, TEMP1));
        self.write_back(kdst, d);
    }

    /// Conditional jump against a materialized operand; offset patched in
    /// pass 2.
    fn jump(&mut self, op: u8, kdst: u8, operand: Operand, target_kpc: usize) {
        let d = self.read(kdst, TEMP0);
        let i = match operand {
            Operand::Imm(v) => EbpfInsn::jmp_k(op, d, v, 0),
            Operand::Reg(s) => EbpfInsn::jmp_x(op, d, s, 0),
        };
        self.fixups.push((self.out.len(), target_kpc));
        self.push(i);
    }

    fn insn(&mut self, insn: Insn, pc: usize, state: Option<&AbsState>) {
        use Op::*;
        let target = || pc + 1 + insn.off as usize;
        match insn.op {
            MovImm => match (i32::try_from(insn.imm), self.loc[insn.dst as usize]) {
                (Ok(v), Loc::Reg(r)) => self.push(EbpfInsn::mov_k(r, v)),
                (Ok(v), Loc::Stack(_)) => {
                    self.push(EbpfInsn::mov_k(TEMP0, v));
                    self.write_back(insn.dst, TEMP0);
                }
                (Err(_), Loc::Reg(r)) => self.push2(EbpfInsn::lddw(r, insn.imm)),
                (Err(_), Loc::Stack(_)) => {
                    self.push2(EbpfInsn::lddw(TEMP0, insn.imm));
                    self.write_back(insn.dst, TEMP0);
                }
            },
            MovReg => {
                let s = self.read(insn.src, TEMP0);
                self.write_back(insn.dst, s);
            }
            AddImm => {
                let o = self.imm_operand(insn.imm);
                self.alu(insn.dst, BPF_ADD, o, 0);
            }
            AddReg => {
                let s = Operand::Reg(self.read(insn.src, TEMP1));
                self.alu(insn.dst, BPF_ADD, s, 0);
            }
            SubImm => {
                let o = self.imm_operand(insn.imm);
                self.alu(insn.dst, BPF_SUB, o, 0);
            }
            SubReg => {
                let s = Operand::Reg(self.read(insn.src, TEMP1));
                self.alu(insn.dst, BPF_SUB, s, 0);
            }
            MulImm => {
                let o = self.imm_operand(insn.imm);
                self.alu(insn.dst, BPF_MUL, o, 0);
            }
            MulReg => {
                let s = Operand::Reg(self.read(insn.src, TEMP1));
                self.alu(insn.dst, BPF_MUL, s, 0);
            }
            DivImm => {
                let o = self.imm_operand(insn.imm);
                self.alu(insn.dst, BPF_DIV, o, SIGNED_DIV_OFF);
            }
            DivReg => {
                let s = Operand::Reg(self.read(insn.src, TEMP1));
                self.alu(insn.dst, BPF_DIV, s, SIGNED_DIV_OFF);
            }
            RemImm => {
                let o = self.imm_operand(insn.imm);
                self.alu(insn.dst, BPF_MOD, o, SIGNED_DIV_OFF);
            }
            RemReg => {
                let s = Operand::Reg(self.read(insn.src, TEMP1));
                self.alu(insn.dst, BPF_MOD, s, SIGNED_DIV_OFF);
            }
            Neg => {
                let d = self.read(insn.dst, TEMP0);
                self.push(EbpfInsn::alu_k(BPF_NEG, d, 0));
                self.write_back(insn.dst, d);
            }
            // Immediate shift amounts clamp at compile time — exactly
            // shl_sat/shr_arith's treatment of out-of-range amounts.
            LshImm => self.alu(insn.dst, BPF_LSH, Operand::Imm(insn.imm.clamp(0, 63) as i32), 0),
            RshImm => self.alu(insn.dst, BPF_ARSH, Operand::Imm(insn.imm.clamp(0, 63) as i32), 0),
            LshReg | RshReg => {
                let op = if insn.op == LshReg { BPF_LSH } else { BPF_ARSH };
                let in_range = state
                    .and_then(|st| st.regs[insn.src as usize])
                    .is_some_and(|a| a.lo >= 0 && a.hi <= 63);
                self.shift_reg(op, insn.dst, insn.src, in_range);
            }
            Ja => {
                self.fixups.push((self.out.len(), target()));
                self.push(EbpfInsn::ja(0));
            }
            JeqImm | JneImm | JltImm | JleImm | JgtImm | JgeImm => {
                let op = cond_op(insn.op);
                let o = self.imm_operand(insn.imm);
                self.jump(op, insn.dst, o, target());
            }
            JeqReg | JneReg | JltReg | JleReg | JgtReg | JgeReg => {
                let op = cond_op(insn.op);
                let s = Operand::Reg(self.read(insn.src, TEMP1));
                self.jump(op, insn.dst, s, target());
            }
            LdCtx => {
                let off = (insn.imm * 8) as i16;
                match self.loc[insn.dst as usize] {
                    Loc::Reg(r) => self.push(EbpfInsn::ldx_dw(r, CTX_REG, off)),
                    Loc::Stack(_) => {
                        self.push(EbpfInsn::ldx_dw(TEMP0, CTX_REG, off));
                        self.write_back(insn.dst, TEMP0);
                    }
                }
            }
            LdMap => {
                let off = self.map_off[&insn.imm];
                match self.loc[insn.dst as usize] {
                    Loc::Reg(r) => self.push(EbpfInsn::ldx_dw(r, 10, off)),
                    Loc::Stack(_) => {
                        self.push(EbpfInsn::ldx_dw(TEMP0, 10, off));
                        self.write_back(insn.dst, TEMP0);
                    }
                }
            }
            StMap => {
                let off = self.map_off[&insn.imm];
                let s = self.read(insn.src, TEMP1);
                self.push(EbpfInsn::stx_dw(10, off, s));
            }
            Exit => self.push(EbpfInsn::exit()),
        }
    }
}

/// kbpf conditional → signed eBPF jump opcode (kbpf comparisons are
/// signed `i64` throughout).
fn cond_op(op: Op) -> u8 {
    use Op::*;
    match op {
        JeqImm | JeqReg => BPF_JEQ,
        JneImm | JneReg => BPF_JNE,
        JltImm | JltReg => BPF_JSLT,
        JleImm | JleReg => BPF_JSLE,
        JgtImm | JgtReg => BPF_JSGT,
        JgeImm | JgeReg => BPF_JSGE,
        _ => unreachable!("not a conditional jump"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policysmith_dsl::{parse, Mode};
    use policysmith_kbpf::CompiledPolicy;

    fn emit_source(src: &str) -> Result<EbpfProgram, EmitError> {
        let e = parse(src).unwrap();
        let p = CompiledPolicy::compile(&e, Mode::Kernel).unwrap();
        emit(p.program(), &p.layout().verify_env())
    }

    #[test]
    fn aimd_policy_emits() {
        let prog = emit_source("if(loss, max(cwnd >> 1, 2), cwnd + 1)").unwrap();
        // prologue saves the ctx pointer
        assert_eq!(prog.insns[0], EbpfInsn::mov_x(CTX_REG, 1));
        assert_eq!(prog.insns.last().unwrap(), &EbpfInsn::exit());
        assert!(prog.byte_len() >= prog.insns.len() * 8);
    }

    #[test]
    fn unverified_programs_are_refused() {
        // hand-built: exit without r0
        let prog = Program { insns: vec![Insn::new(Op::Exit, 0, 0, 0)] };
        let env = VerifyEnv::opaque(0, 0);
        assert!(matches!(emit(&prog, &env), Err(EmitError::Verify(_))));
    }

    #[test]
    fn saturation_gate_rejects_unbounded_arithmetic() {
        // ctx[0] is TOP: TOP + TOP may saturate.
        let prog = Program {
            insns: vec![
                Insn::new(Op::LdCtx, 0, 0, 0),
                Insn::new(Op::AddImm, 0, 0, 1),
                Insn::new(Op::Exit, 0, 0, 0),
            ],
        };
        let env = VerifyEnv::opaque(1, 0);
        let err = emit(&prog, &env).unwrap_err();
        assert!(matches!(err, EmitError::SaturationUnprovable { pc: 1, .. }), "{err}");
        assert!(err.to_string().contains("saturate"), "{err}");

        // Same program with a bounded slot emits fine.
        let env = VerifyEnv { ctx_ranges: vec![(0, 1 << 24)], map_slots: 0 };
        emit(&prog, &env).unwrap();
    }

    #[test]
    fn sdiv_overflow_gate_is_exact() {
        // ctx[0] ∈ [MIN, 0], divide by -1: exactly the MIN/-1 hazard.
        let prog = Program {
            insns: vec![
                Insn::new(Op::LdCtx, 0, 0, 0),
                Insn::new(Op::DivImm, 0, 0, -1),
                Insn::new(Op::Exit, 0, 0, 0),
            ],
        };
        let env = VerifyEnv { ctx_ranges: vec![(i64::MIN, 0)], map_slots: 0 };
        assert!(matches!(emit(&prog, &env), Err(EmitError::SdivOverflowPossible { pc: 1, .. })));
        // Excluding MIN from the dividend clears it.
        let env = VerifyEnv { ctx_ranges: vec![(i64::MIN + 1, 0)], map_slots: 0 };
        emit(&prog, &env).unwrap();
    }

    #[test]
    fn wide_immediates_use_lddw() {
        let prog = Program {
            insns: vec![Insn::new(Op::MovImm, 0, 0, 1 << 40), Insn::new(Op::Exit, 0, 0, 0)],
        };
        let out = emit(&prog, &VerifyEnv::opaque(0, 0)).unwrap();
        assert!(out.insns.iter().any(|i| i.code == 0x18), "{out}");
    }

    #[test]
    fn frame_stays_within_the_kernel_budget() {
        // A deep expression forces register spills and map-slot usage.
        let deep = "cwnd + (srtt + (min_rtt + (mss + (acked + (ssthresh + \
                    (inflight + (last_rtt + (prev_cwnd + (loss + 1)))))))))";
        let prog = emit_source(deep).unwrap();
        assert!(prog.stack_bytes <= EBPF_STACK_BYTES);
    }

    #[test]
    fn searched_style_policies_all_emit() {
        for src in [
            "if(loss, max(cwnd >> 1, 2), cwnd + max(acked / max(mss, 1), 1))",
            "clamp(cwnd * srtt / max(min_rtt, 1), 2, 1024)",
            "if(srtt - min_rtt > 15000, max(cwnd - 1, 4), cwnd + 1)",
            "min(cwnd + acked / max(mss, 1), 4096)",
        ] {
            let prog = emit_source(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert!(!prog.is_empty());
        }
    }
}
