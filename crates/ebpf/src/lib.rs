//! # policysmith-ebpf — kernel offload for verified cc policies
//!
//! The congestion-control case study (§5 of the paper) deploys generated
//! decision logic *in the kernel* by compiling it to eBPF and registering
//! it as a `tcp_congestion_ops` via struct_ops. This crate is that last
//! mile: it takes a [`CompiledPolicy`] the kbpf pipeline already
//! verified and produces loadable kernel artifacts, then re-proves and
//! re-executes them without trusting the emitter:
//!
//! * [`emit`](crate::emit::emit) / [`emit_policy`] — lower kbpf bytecode
//!   to raw eBPF ([`EbpfProgram`]): register allocation from 11 kbpf
//!   registers onto the 10-register + 512-byte-stack eBPF machine, and a
//!   **saturation-provability gate** that re-runs the shared interval
//!   analysis and refuses to emit any instruction whose saturating
//!   (kbpf) and wrapping (eBPF) results are not provably identical —
//!   emitted artifacts are decision-identical to the kbpf VM by
//!   construction, not by testing alone;
//! * [`check`] — a model of the in-kernel verifier that
//!   abstractly interprets the *emitted* instructions (termination via
//!   forward-only jumps, memory safety, non-zero divisors, bounded shift
//!   amounts, typed `r0`), catching emitter bugs rather than assuming
//!   their absence;
//! * [`interp`] — an emulated struct_ops execution engine
//!   with kernel semantics (wrapping ALU, fresh stack, masked shifts)
//!   that hosts like `cc::EbpfCc` drive per-ACK on simulated traces,
//!   making the equivalence claim falsifiable end to end;
//! * [`c_src`] — a struct_ops C renderer producing a
//!   host-compilable translation unit with `#ifdef`-gated kernel
//!   scaffolding (`SEC(".struct_ops")`, `tcp_sock` feature fills,
//!   per-socket scratch).
//!
//! The full offload pipeline in one sitting:
//!
//! ```
//! use policysmith_dsl::{parse, Mode};
//! use policysmith_kbpf::CompiledPolicy;
//! use policysmith_ebpf::{emit_policy, model_check, run, render_struct_ops};
//!
//! // 1. a searched policy, compiled + verified by the kbpf pipeline
//! let expr = parse("if(loss, max(cwnd >> 1, 2), cwnd + 1)").unwrap();
//! let policy = CompiledPolicy::compile(&expr, Mode::Kernel).unwrap();
//!
//! // 2. lower to raw eBPF (the gate proves wrap == saturate on the way)
//! let prog = emit_policy(&policy).unwrap();
//! assert_eq!(prog.encode().len(), prog.byte_len()); // loadable bytes
//!
//! // 3. the model verifier re-proves safety on the emitted artifact
//! let stats = model_check(&prog).unwrap();
//! assert!(stats.branches > 0 && stats.r0.0 > i64::MIN);
//!
//! // 4. emulated struct_ops execution matches the kbpf VM's decision
//! //    (ctx slots are in first-use order: loss, then cwnd)
//! assert_eq!(run(&prog, &[1, 10]).unwrap(), 5); // loss: 10 >> 1
//! assert_eq!(run(&prog, &[0, 10]).unwrap(), 11); // no loss: 10 + 1
//!
//! // 5. and the same bytecode renders as a struct_ops C file
//! let c = render_struct_ops(policy.program(), policy.layout().features(), "aimd");
//! assert!(c.contains("struct tcp_congestion_ops"));
//! ```

pub mod c_src;
pub mod check;
pub mod emit;
pub mod interp;
pub mod isa;

pub use c_src::render_struct_ops;
pub use check::{model_check, AbsVal, CheckError, CheckStats};
pub use emit::{emit, EmitError, EBPF_STACK_BYTES};
pub use interp::{run, EbpfVmError};
pub use isa::{EbpfInsn, EbpfProgram};

use policysmith_kbpf::CompiledPolicy;

/// Lower a compiled-and-verified policy to eBPF against its own context
/// ABI — the convenience entry point hosts use (see the crate example).
pub fn emit_policy(policy: &CompiledPolicy) -> Result<EbpfProgram, EmitError> {
    emit::emit(policy.program(), &policy.layout().verify_env())
}
