//! Emulated execution of emitted eBPF — the "kernel side" of the
//! struct_ops harness, minus the kernel.
//!
//! [`run`] interprets instruction slots exactly as a JIT-less kernel
//! would execute them: **wrapping** two's-complement ALU, hardware shift
//! masking (`amount & 63`), a fresh 512-byte-max stack frame per
//! invocation, and a read-only context pointer in `r1`. This is the
//! execution model the differential tests pit against the kbpf VM: the
//! emitter's saturation gate claims the two agree decision-for-decision,
//! and this interpreter is what makes that claim falsifiable.
//!
//! One deliberate divergence from silicon: division or modulus by zero
//! **faults** here instead of producing the kernel's defined `0`/`dst`
//! result. The fault is unreachable for model-checked programs (the
//! divisor interval excludes zero), and keeping it as an error preserves
//! fidelity with the host-side fault latching in `KbpfCc` — a divide
//! fault in either engine must trip the same fallback path.

use crate::isa::{
    EbpfProgram, BPF_ADD, BPF_ALU64, BPF_ARSH, BPF_DIV, BPF_DW, BPF_EXIT, BPF_JA, BPF_JEQ, BPF_JMP,
    BPF_JNE, BPF_JSGE, BPF_JSGT, BPF_JSLE, BPF_JSLT, BPF_LD, BPF_LDX, BPF_LSH, BPF_MEM, BPF_MOD,
    BPF_MOV, BPF_MUL, BPF_NEG, BPF_STX, BPF_SUB, BPF_X,
};
use std::fmt;

/// Runtime fault during emulated execution. Model-checked programs can
/// only hit [`EbpfVmError::DivByZero`], and only when the host feeds
/// context values outside the declared ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EbpfVmError {
    /// `sdiv`/`smod` with a zero divisor (see module docs).
    DivByZero { pc: usize },
    /// Read of a never-written register.
    UninitRead { pc: usize, reg: u8 },
    /// Load from a frame slot before any store.
    UninitStackRead { pc: usize, off: i16 },
    /// Out-of-bounds or wrong-base memory access.
    BadMemAccess { pc: usize },
    /// Context slot beyond the supplied context array.
    CtxOutOfBounds { pc: usize, slot: usize },
    /// Jump outside the program.
    BadJump { pc: usize },
    /// Opcode outside the emitted subset.
    UnsupportedInsn { pc: usize, code: u8 },
    /// Executed more slots than the program has — impossible for
    /// forward-jump programs, kept as a defensive backstop.
    OutOfFuel,
    /// Control flow ran off the end without `exit`.
    FellOffEnd,
}

impl fmt::Display for EbpfVmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EbpfVmError::DivByZero { pc } => write!(f, "ebpf-vm: insn {pc}: division by zero"),
            EbpfVmError::UninitRead { pc, reg } => {
                write!(f, "ebpf-vm: insn {pc}: r{reg} read uninitialized")
            }
            EbpfVmError::UninitStackRead { pc, off } => {
                write!(f, "ebpf-vm: insn {pc}: frame slot [r10{off:+}] read uninitialized")
            }
            EbpfVmError::BadMemAccess { pc } => write!(f, "ebpf-vm: insn {pc}: bad memory access"),
            EbpfVmError::CtxOutOfBounds { pc, slot } => {
                write!(f, "ebpf-vm: insn {pc}: context slot {slot} out of bounds")
            }
            EbpfVmError::BadJump { pc } => write!(f, "ebpf-vm: insn {pc}: jump out of range"),
            EbpfVmError::UnsupportedInsn { pc, code } => {
                write!(f, "ebpf-vm: insn {pc}: unsupported opcode {code:#04x}")
            }
            EbpfVmError::OutOfFuel => write!(f, "ebpf-vm: out of fuel"),
            EbpfVmError::FellOffEnd => write!(f, "ebpf-vm: fell off the end of the program"),
        }
    }
}

impl std::error::Error for EbpfVmError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    Uninit,
    Scalar(i64),
    CtxPtr,
    FramePtr,
}

/// Execute an emitted program against a context array (one `i64` per
/// 8-byte slot, matching the `CtxLayout` ABI). Returns `r0`.
pub fn run(prog: &EbpfProgram, ctx: &[i64]) -> Result<i64, EbpfVmError> {
    let n = prog.insns.len();
    let mut regs = [Val::Uninit; 11];
    regs[1] = Val::CtxPtr;
    regs[10] = Val::FramePtr;
    let stack_slots = prog.stack_bytes / 8;
    let mut stack: Vec<Option<i64>> = vec![None; stack_slots];

    let mut pc = 0usize;
    // Forward-only control flow executes each slot at most once.
    let mut fuel = n + 1;

    while pc < n {
        if fuel == 0 {
            return Err(EbpfVmError::OutOfFuel);
        }
        fuel -= 1;
        let insn = prog.insns[pc];
        if insn.dst > 10 || insn.src > 10 {
            return Err(EbpfVmError::UnsupportedInsn { pc, code: insn.code });
        }
        let scalar = |regs: &[Val; 11], reg: u8| -> Result<i64, EbpfVmError> {
            match regs[reg as usize] {
                Val::Scalar(v) => Ok(v),
                Val::Uninit => Err(EbpfVmError::UninitRead { pc, reg }),
                _ => Err(EbpfVmError::BadMemAccess { pc }),
            }
        };
        let jump_to = |pc: usize, off: i16| -> Result<usize, EbpfVmError> {
            let t = pc as i64 + 1 + off as i64;
            if t < 0 || t as usize > n {
                return Err(EbpfVmError::BadJump { pc });
            }
            Ok(t as usize)
        };

        match insn.class() {
            BPF_ALU64 => {
                let op = insn.code & 0xf0;
                if op == BPF_MOV {
                    regs[insn.dst as usize] = if insn.code & BPF_X != 0 {
                        match regs[insn.src as usize] {
                            Val::Uninit => {
                                return Err(EbpfVmError::UninitRead { pc, reg: insn.src })
                            }
                            v => v,
                        }
                    } else {
                        Val::Scalar(insn.imm as i64)
                    };
                } else if op == BPF_NEG {
                    let d = scalar(&regs, insn.dst)?;
                    regs[insn.dst as usize] = Val::Scalar(d.wrapping_neg());
                } else {
                    let d = scalar(&regs, insn.dst)?;
                    let s = if insn.code & BPF_X != 0 {
                        scalar(&regs, insn.src)?
                    } else {
                        insn.imm as i64
                    };
                    let v = match op {
                        BPF_ADD => d.wrapping_add(s),
                        BPF_SUB => d.wrapping_sub(s),
                        BPF_MUL => d.wrapping_mul(s),
                        BPF_DIV => {
                            if s == 0 {
                                return Err(EbpfVmError::DivByZero { pc });
                            }
                            d.wrapping_div(s)
                        }
                        BPF_MOD => {
                            if s == 0 {
                                return Err(EbpfVmError::DivByZero { pc });
                            }
                            d.wrapping_rem(s)
                        }
                        BPF_LSH => d.wrapping_shl((s & 63) as u32),
                        BPF_ARSH => d.wrapping_shr((s & 63) as u32),
                        _ => return Err(EbpfVmError::UnsupportedInsn { pc, code: insn.code }),
                    };
                    regs[insn.dst as usize] = Val::Scalar(v);
                }
                pc += 1;
            }
            BPF_JMP => {
                let op = insn.code & 0xf0;
                match op {
                    BPF_JA => pc = jump_to(pc, insn.off)?,
                    BPF_EXIT => return scalar(&regs, 0),
                    _ => {
                        let d = scalar(&regs, insn.dst)?;
                        let s = if insn.code & BPF_X != 0 {
                            scalar(&regs, insn.src)?
                        } else {
                            insn.imm as i64
                        };
                        let taken = match op {
                            BPF_JEQ => d == s,
                            BPF_JNE => d != s,
                            BPF_JSLT => d < s,
                            BPF_JSLE => d <= s,
                            BPF_JSGT => d > s,
                            BPF_JSGE => d >= s,
                            _ => return Err(EbpfVmError::UnsupportedInsn { pc, code: insn.code }),
                        };
                        pc = if taken { jump_to(pc, insn.off)? } else { pc + 1 };
                    }
                }
            }
            BPF_LDX => {
                if insn.code != BPF_LDX | BPF_MEM | BPF_DW {
                    return Err(EbpfVmError::UnsupportedInsn { pc, code: insn.code });
                }
                let v = match regs[insn.src as usize] {
                    Val::CtxPtr => {
                        let off = insn.off as i64;
                        if off < 0 || off % 8 != 0 {
                            return Err(EbpfVmError::BadMemAccess { pc });
                        }
                        let slot = (off / 8) as usize;
                        *ctx.get(slot).ok_or(EbpfVmError::CtxOutOfBounds { pc, slot })?
                    }
                    Val::FramePtr => {
                        let slot = frame_slot(insn.off, stack_slots)
                            .ok_or(EbpfVmError::BadMemAccess { pc })?;
                        stack[slot].ok_or(EbpfVmError::UninitStackRead { pc, off: insn.off })?
                    }
                    Val::Uninit => return Err(EbpfVmError::UninitRead { pc, reg: insn.src }),
                    Val::Scalar(_) => return Err(EbpfVmError::BadMemAccess { pc }),
                };
                regs[insn.dst as usize] = Val::Scalar(v);
                pc += 1;
            }
            BPF_STX => {
                if insn.code != BPF_STX | BPF_MEM | BPF_DW {
                    return Err(EbpfVmError::UnsupportedInsn { pc, code: insn.code });
                }
                if regs[insn.dst as usize] != Val::FramePtr {
                    return Err(EbpfVmError::BadMemAccess { pc });
                }
                let v = scalar(&regs, insn.src)?;
                let slot =
                    frame_slot(insn.off, stack_slots).ok_or(EbpfVmError::BadMemAccess { pc })?;
                stack[slot] = Some(v);
                pc += 1;
            }
            BPF_LD => {
                if insn.code != BPF_LD | crate::isa::BPF_IMM | BPF_DW
                    || pc + 1 >= n
                    || prog.insns[pc + 1].code != 0
                {
                    return Err(EbpfVmError::UnsupportedInsn { pc, code: insn.code });
                }
                let hi = prog.insns[pc + 1].imm;
                let v = (insn.imm as u32 as u64 | ((hi as u32 as u64) << 32)) as i64;
                regs[insn.dst as usize] = Val::Scalar(v);
                pc += 2;
            }
            _ => return Err(EbpfVmError::UnsupportedInsn { pc, code: insn.code }),
        }
    }
    Err(EbpfVmError::FellOffEnd)
}

fn frame_slot(off: i16, stack_slots: usize) -> Option<usize> {
    let off = off as i64;
    if off >= -8 * stack_slots as i64 && off <= -8 && off % 8 == 0 {
        Some((-off / 8 - 1) as usize)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::emit;
    use crate::isa::EbpfInsn;
    use policysmith_dsl::{parse, Mode};
    use policysmith_kbpf::CompiledPolicy;

    /// Emit a policy and check the eBPF interpreter agrees with the kbpf
    /// VM slot-for-slot over a grid of context values.
    fn assert_agrees(src: &str, grid: &[i64]) {
        let e = parse(src).unwrap();
        let p = CompiledPolicy::compile(&e, Mode::Kernel).unwrap();
        let prog = emit(p.program(), &p.layout().verify_env()).unwrap();
        let n = p.layout().verify_env().ctx_ranges.len();
        let mut map = vec![0i64; policysmith_kbpf::SPILL_SLOTS];
        for &base in grid {
            let mut ctx: Vec<i64> = (0..n as i64).map(|k| base + k).collect();
            // clamp into declared ranges, as hosts do
            for (v, &(lo, hi)) in ctx.iter_mut().zip(&p.layout().verify_env().ctx_ranges) {
                *v = (*v).clamp(lo, hi);
            }
            let vm = p.run(&ctx, &mut map).unwrap();
            let eb = run(&prog, &ctx).unwrap();
            assert_eq!(vm, eb, "{src} diverged at base {base}: vm={vm} ebpf={eb}");
        }
    }

    #[test]
    fn emitted_policies_match_the_kbpf_vm() {
        let grid = [0, 1, 2, 7, 100, 1 << 14, (1 << 20) - 3];
        assert_agrees("if(loss, max(cwnd >> 1, 2), cwnd + 1)", &grid);
        assert_agrees("if(loss, max(cwnd >> 1, 2), cwnd + max(acked / max(mss, 1), 1))", &grid);
        assert_agrees("clamp(cwnd * srtt / max(min_rtt, 1), 2, 1024)", &grid);
        assert_agrees("min(cwnd + acked / max(mss, 1), 4096)", &grid);
    }

    #[test]
    fn spilled_registers_round_trip_through_the_frame() {
        assert_agrees(
            "cwnd + (srtt + (min_rtt + (mss + (acked + (ssthresh + \
             (inflight + (last_rtt + (prev_cwnd + (loss + 1)))))))))",
            &[0, 5, 999],
        );
    }

    #[test]
    fn division_by_zero_faults() {
        let mut prog = EbpfProgram {
            insns: vec![
                EbpfInsn::mov_k(0, 7),
                EbpfInsn::mov_k(2, 0),
                EbpfInsn::alu_x(BPF_DIV, 0, 2),
                EbpfInsn::exit(),
            ],
            ctx_ranges: vec![],
            stack_bytes: 0,
        };
        prog.insns[2].off = crate::isa::SIGNED_DIV_OFF;
        assert_eq!(run(&prog, &[]), Err(EbpfVmError::DivByZero { pc: 2 }));
    }

    #[test]
    fn uninit_register_read_faults() {
        let prog =
            EbpfProgram { insns: vec![EbpfInsn::exit()], ctx_ranges: vec![], stack_bytes: 0 };
        assert_eq!(run(&prog, &[]), Err(EbpfVmError::UninitRead { pc: 0, reg: 0 }));
    }

    #[test]
    fn wide_immediates_execute() {
        let v = (1i64 << 40) | 5;
        let mut insns = EbpfInsn::lddw(0, v).to_vec();
        insns.push(EbpfInsn::exit());
        let prog = EbpfProgram { insns, ctx_ranges: vec![], stack_bytes: 0 };
        assert_eq!(run(&prog, &[]), Ok(v));
    }
}
