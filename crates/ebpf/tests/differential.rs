//! Property tests for the kbpf → eBPF pipeline: random kernel-mode
//! expressions are compiled, emitted, model-checked, and executed on both
//! engines — any divergence anywhere in the chain fails the property.
//!
//! 1. **Gate honesty.** Emission either succeeds or fails with a
//!    *semantics* error (`SaturationUnprovable` / `SdivOverflowPossible`)
//!    — never an internal error. Rejection is a legitimate outcome: the
//!    DSL's shift/arith saturate by spec, so a verified policy can
//!    genuinely saturate (e.g. `x << 63`), and such a policy has no
//!    faithful wrapping-eBPF translation. Realistic cc policies (bounded
//!    features, small constants) pass; the library-wide emit guarantee is
//!    asserted over real policies in `crates/cc`'s differential suite.
//! 2. **Model-verifier totality.** Every emitted program passes
//!    [`model_check`] — the independent re-proof never disagrees with the
//!    emitter about its own output.
//! 3. **Decision identity.** On random in-range contexts the emulated
//!    eBPF returns bit-for-bit the kbpf VM's result, and the model
//!    verifier's `r0` bounds contain it. Saturating vs wrapping, 11 vs 10
//!    registers, persistent map vs fresh stack — all proven away.

use policysmith_dsl::env::MapEnv;
use policysmith_dsl::{BinOp, CmpOp, Expr, Feature, Mode};
use policysmith_ebpf::{emit_policy, model_check, run};
use policysmith_kbpf::{CompiledPolicy, SPILL_SLOTS};
use proptest::prelude::*;

fn kernel_features() -> Vec<Feature> {
    vec![
        Feature::Cwnd,
        Feature::PrevCwnd,
        Feature::MinRttUs,
        Feature::SrttUs,
        Feature::LastRttUs,
        Feature::InflightPkts,
        Feature::Mss,
        Feature::LossEvent,
        Feature::AckedBytes,
        Feature::Ssthresh,
        Feature::HistRtt(0),
        Feature::HistDelivered(2),
        Feature::HistLoss(1),
        Feature::HistQdelay(0),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Min),
        Just(BinOp::Max),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ]
}

fn arb_cmpop() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1_000i64..1_000).prop_map(Expr::Int),
        proptest::sample::select(kernel_features()).prop_map(Expr::Feat),
    ];
    leaf.prop_recursive(5, 48, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (arb_cmpop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::cmp(op, a, b)),
            inner.clone().prop_map(|a| Expr::Neg(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Abs(Box::new(a))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| Expr::ite(a, b, c)),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Clamp(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn arb_env() -> impl Strategy<Value = MapEnv> {
    let features = kernel_features();
    let ranges: Vec<_> = features
        .iter()
        .map(|f| {
            let (lo, hi) = f.range();
            lo.max(0)..=hi.min(1_000_000)
        })
        .collect();
    ranges.prop_map(move |vs| {
        let mut env = MapEnv::new();
        for (f, v) in features.iter().zip(vs) {
            env.set(*f, v);
        }
        env
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn emitted_ebpf_matches_the_kbpf_vm_decision_for_decision(
        e in arb_expr(),
        env in arb_env(),
    ) {
        // Only fully verified kernel policies reach deployment; anything
        // the pipeline rejects is discarded upstream.
        let Ok(policy) = CompiledPolicy::compile(&e, Mode::Kernel) else {
            return Ok(());
        };

        // (1) emission fails only through the semantics gate
        let prog = match emit_policy(&policy) {
            Ok(p) => p,
            Err(
                policysmith_ebpf::EmitError::SaturationUnprovable { .. }
                | policysmith_ebpf::EmitError::SdivOverflowPossible { .. },
            ) => return Ok(()), // genuinely saturating policy: no faithful translation
            Err(err) => {
                return Err(TestCaseError::fail(format!(
                    "verified policy failed to emit with a non-gate error: {err}\n{}",
                    policy.program()
                )))
            }
        };

        // (2) the emitted artifact passes the independent model verifier
        let stats = match model_check(&prog) {
            Ok(s) => s,
            Err(err) => {
                return Err(TestCaseError::fail(format!(
                    "emitted program failed model check: {err}\n{prog}"
                )))
            }
        };

        // (3) decision identity on an in-range context
        let mut ctx = Vec::new();
        policy.layout().fill(&env, &mut ctx);
        // hosts clamp into declared ranges before invoking the kernel ABI
        for (v, &(lo, hi)) in ctx.iter_mut().zip(&policy.layout().verify_env().ctx_ranges) {
            *v = (*v).clamp(lo, hi);
        }
        let mut map = vec![0i64; SPILL_SLOTS];
        let vm = policy.run(&ctx, &mut map);
        let eb = run(&prog, &ctx);
        match (vm, eb) {
            (Ok(v), Ok(b)) => {
                prop_assert_eq!(v, b, "engines disagree\nkbpf:\n{}\nebpf:\n{}", policy.program(), prog);
                prop_assert!(
                    stats.r0.0 <= v && v <= stats.r0.1,
                    "r0 = {} outside model-checked bounds [{}, {}]\n{}",
                    v, stats.r0.0, stats.r0.1, prog
                );
            }
            (vm, eb) => {
                // kernel-mode compiles are fully verified: neither engine
                // may fault on in-range contexts
                return Err(TestCaseError::fail(format!(
                    "unexpected fault: kbpf={vm:?} ebpf={eb:?}\n{prog}"
                )));
            }
        }
    }

    #[test]
    fn struct_ops_c_renders_for_every_verified_policy(e in arb_expr()) {
        let Ok(policy) = CompiledPolicy::compile(&e, Mode::Kernel) else {
            return Ok(());
        };
        let c = policysmith_ebpf::render_struct_ops(
            policy.program(),
            policy.layout().features(),
            "prop_policy",
        );
        prop_assert!(c.contains("static s64 prop_policy_policy"));
        prop_assert!(c.contains("return r0;"));
        // labels and gotos must be consistent (no dangling targets)
        for line in c.lines() {
            let t = line.trim();
            if let Some(rest) = t.strip_prefix("goto L") {
                let label = rest.trim_end_matches(';');
                prop_assert!(
                    c.lines().any(|l| l.trim_end() == format!("L{label}:")),
                    "dangling goto L{label}"
                );
            }
        }
    }
}
