//! Active queue management: the bottleneck's drop/mark decision point.
//!
//! The [`Bottleneck`](crate::link::Bottleneck) consults an [`AqmPolicy`] at
//! two hooks — once when a packet is offered ([`AqmPolicy::on_enqueue`],
//! after the drop-tail byte bound has admitted it) and once per head-of-line
//! packet before serialization starts ([`AqmPolicy::on_dequeue`]). Both
//! hooks see the same flat [`AqmView`] snapshot: packet sojourn time, queue
//! occupancy, a smoothed drain-rate estimate, and drop history. This is the
//! classical AQM decision surface — CoDel is a dequeue-side policy keyed on
//! sojourn time, PIE an enqueue-side policy keyed on an estimated queueing
//! delay — and exactly the feature surface `Mode::Aqm` exposes to
//! synthesized policies.
//!
//! Decisions are [`AqmDecision`]: `Pass` forwards, `Mark` sets the packet's
//! ECN CE bit (the receiver echoes it; the sender reacts once per window,
//! like a loss without the retransmit), `Drop` discards the packet. The
//! default policy is [`DropTail`], which never drops or marks — byte-bound
//! tail drop is enforced by the queue itself, so a `DropTail` bottleneck
//! behaves bit-for-bit like the pre-AQM link.
//!
//! Everything here is deterministic: PIE's random early drop uses an
//! internal xorshift generator seeded from a constant, so identical runs
//! make identical decisions.

/// Snapshot of bottleneck state offered to an [`AqmPolicy`] hook. All
/// values are plain scalars so the same view feeds both the man-made
/// baselines and the kbpf context fill of synthesized policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AqmView {
    /// Current virtual time, µs.
    pub now_us: u64,
    /// Size of the packet under decision, bytes.
    pub pkt_size: u32,
    /// Time the packet has spent queued so far, µs (0 at the enqueue hook).
    pub sojourn_us: u64,
    /// Bytes currently enqueued (including the packet under decision at the
    /// dequeue hook; excluding it at the enqueue hook, where it has not been
    /// admitted yet).
    pub backlog_bytes: u64,
    /// Packets currently enqueued (same inclusion rule as `backlog_bytes`).
    pub backlog_pkts: u64,
    /// Configured drop-tail byte bound of the queue.
    pub capacity_bytes: u64,
    /// EWMA-smoothed drain-rate estimate, bits/sec (≥ 1; initialized to the
    /// configured line rate).
    pub drain_rate_bps: u64,
    /// EWMA-smoothed packet sojourn time over forwarded packets, µs.
    pub ewma_sojourn_us: u64,
    /// Time since the AQM last dropped or marked, µs (equal to `now_us`
    /// while no drop/mark has happened yet).
    pub since_drop_us: u64,
    /// Packets dropped or marked by the AQM so far.
    pub drops: u64,
}

/// What to do with the packet under decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AqmDecision {
    /// Forward normally.
    Pass,
    /// Set the ECN CE bit and forward (congestion signal without loss).
    Mark,
    /// Discard the packet.
    Drop,
}

/// An active-queue-management policy plugged into the bottleneck.
pub trait AqmPolicy {
    /// Display name.
    fn name(&self) -> &str;

    /// A packet (already admitted by the byte bound) is being enqueued.
    /// `Drop` refuses it; `Mark` admits it with CE set. PIE-style policies
    /// decide here. `view.sojourn_us` is always 0 at this hook.
    fn on_enqueue(&mut self, view: &AqmView) -> AqmDecision;

    /// The head-of-line packet is about to be serialized. `Drop` discards
    /// it and the hook is consulted again for the next head; `Mark` sets CE
    /// and serializes. CoDel-style policies decide here.
    fn on_dequeue(&mut self, view: &AqmView) -> AqmDecision;
}

/// The do-nothing policy: plain drop-tail FIFO (the pre-AQM behaviour and
/// the latched-fault fallback for synthesized policies).
#[derive(Debug, Clone, Copy, Default)]
pub struct DropTail;

impl AqmPolicy for DropTail {
    fn name(&self) -> &str {
        "drop-tail"
    }
    fn on_enqueue(&mut self, _view: &AqmView) -> AqmDecision {
        AqmDecision::Pass
    }
    fn on_dequeue(&mut self, _view: &AqmView) -> AqmDecision {
        AqmDecision::Pass
    }
}

/// CoDel (Controlled Delay, Nichols & Jacobson 2012): dequeue-side AQM
/// keyed on packet sojourn time. While sojourn stays above `target_us` for
/// a full `interval_us`, enter the dropping state and drop at intervals
/// shrinking with the square root of the drop count (the sqrt control law);
/// leave as soon as sojourn falls below target or the queue drains below
/// one MTU.
#[derive(Debug, Clone, Copy)]
pub struct CoDel {
    /// Acceptable standing sojourn, µs (canonical 5 ms).
    pub target_us: u64,
    /// Sliding window before reacting, µs (canonical 100 ms).
    pub interval_us: u64,
    /// When `Drop` would be returned, return `Mark` instead (ECN mode).
    pub ecn: bool,
    first_above_us: Option<u64>,
    dropping: bool,
    drop_next_us: u64,
    count: u64,
}

/// Bytes below which CoDel always exits dropping (one full-size packet).
const CODEL_MTU_BYTES: u64 = 1500;

impl CoDel {
    /// Canonical parameters: 5 ms target, 100 ms interval, hard drops.
    pub fn new() -> Self {
        Self::with_params(5_000, 100_000, false)
    }

    /// Explicit parameters.
    pub fn with_params(target_us: u64, interval_us: u64, ecn: bool) -> Self {
        CoDel {
            target_us,
            interval_us,
            ecn,
            first_above_us: None,
            dropping: false,
            drop_next_us: 0,
            count: 0,
        }
    }

    /// `interval / sqrt(count)` — the control law's next-drop spacing.
    fn control_law(&self, from_us: u64) -> u64 {
        from_us + (self.interval_us as f64 / (self.count.max(1) as f64).sqrt()) as u64
    }

    /// Has the sojourn been above target continuously for an interval?
    fn should_drop(&mut self, view: &AqmView) -> bool {
        if view.sojourn_us < self.target_us || view.backlog_bytes <= CODEL_MTU_BYTES {
            self.first_above_us = None;
            return false;
        }
        match self.first_above_us {
            None => {
                self.first_above_us = Some(view.now_us + self.interval_us);
                false
            }
            Some(t) => view.now_us >= t,
        }
    }

    fn signal(&self) -> AqmDecision {
        if self.ecn {
            AqmDecision::Mark
        } else {
            AqmDecision::Drop
        }
    }
}

impl Default for CoDel {
    fn default() -> Self {
        Self::new()
    }
}

impl AqmPolicy for CoDel {
    fn name(&self) -> &str {
        "codel"
    }

    fn on_enqueue(&mut self, _view: &AqmView) -> AqmDecision {
        AqmDecision::Pass
    }

    fn on_dequeue(&mut self, view: &AqmView) -> AqmDecision {
        let ok_to_drop = self.should_drop(view);
        if self.dropping {
            if !ok_to_drop {
                self.dropping = false;
                return AqmDecision::Pass;
            }
            if view.now_us >= self.drop_next_us {
                self.count += 1;
                self.drop_next_us = self.control_law(self.drop_next_us);
                return self.signal();
            }
            AqmDecision::Pass
        } else if ok_to_drop {
            self.dropping = true;
            // Resume close to the previous drop rate if we re-enter soon
            // after leaving it (the "count memory" of the reference
            // pseudocode, simplified: halve the count).
            self.count = if self.count > 2 { self.count - 2 } else { 1 };
            self.drop_next_us = self.control_law(view.now_us);
            self.signal()
        } else {
            AqmDecision::Pass
        }
    }
}

/// PIE (Proportional Integral controller Enhanced, RFC 8033): enqueue-side
/// AQM that drops incoming packets with a probability steered by a PI
/// controller on the estimated queueing delay (`backlog / drain_rate`).
#[derive(Debug, Clone, Copy)]
pub struct Pie {
    /// Delay reference the controller steers toward, µs (RFC default 15 ms).
    pub target_us: u64,
    /// Controller update period, µs (RFC default 15 ms).
    pub t_update_us: u64,
    /// When `Drop` would be returned, return `Mark` instead (ECN mode).
    pub ecn: bool,
    drop_prob: f64,
    qdelay_old_us: u64,
    next_update_us: u64,
    /// Bytes allowed through unconditionally at start-of-congestion
    /// (RFC 8033 §4.1 burst allowance, expressed in µs of drain time left).
    burst_allowance_us: u64,
    rng: u64,
}

impl Pie {
    /// RFC 8033 defaults: 15 ms target, 15 ms update period, hard drops.
    pub fn new() -> Self {
        Self::with_params(15_000, 15_000, false)
    }

    /// Explicit parameters.
    pub fn with_params(target_us: u64, t_update_us: u64, ecn: bool) -> Self {
        Pie {
            target_us,
            t_update_us,
            ecn,
            drop_prob: 0.0,
            qdelay_old_us: 0,
            next_update_us: t_update_us,
            burst_allowance_us: 150_000, // max_burst = 150 ms
            rng: 0x9e3779b97f4a7c15,
        }
    }

    /// Deterministic xorshift64 in [0, 1).
    fn next_uniform(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Estimated queueing delay from occupancy and drain rate, µs.
    fn qdelay_est_us(view: &AqmView) -> u64 {
        view.backlog_bytes * 8 * 1_000_000 / view.drain_rate_bps.max(1)
    }

    /// Lazy controller update: catch up on every `t_update` boundary passed
    /// since the last decision (the sim is event-driven, not timer-driven).
    fn update(&mut self, view: &AqmView) {
        while view.now_us >= self.next_update_us {
            let qdelay = Self::qdelay_est_us(view);
            // RFC 8033 §4.2: p += alpha*(qdelay - target) + beta*(qdelay -
            // qdelay_old), with alpha/beta auto-scaled down while p is small
            // so the controller is gentle near zero.
            let alpha = 0.125 / 1_000_000.0; // per µs of error
            let beta = 1.25 / 1_000_000.0;
            let scale = if self.drop_prob < 0.000_001 {
                1.0 / 2048.0
            } else if self.drop_prob < 0.00001 {
                1.0 / 512.0
            } else if self.drop_prob < 0.0001 {
                1.0 / 128.0
            } else if self.drop_prob < 0.001 {
                1.0 / 32.0
            } else if self.drop_prob < 0.01 {
                1.0 / 8.0
            } else if self.drop_prob < 0.1 {
                1.0 / 2.0
            } else {
                1.0
            };
            let err = alpha * (qdelay as f64 - self.target_us as f64)
                + beta * (qdelay as f64 - self.qdelay_old_us as f64);
            self.drop_prob = (self.drop_prob + err * scale).clamp(0.0, 1.0);
            // decay toward zero when the queue is idle
            if qdelay == 0 && self.qdelay_old_us == 0 {
                self.drop_prob *= 0.98;
            }
            self.qdelay_old_us = qdelay;
            self.burst_allowance_us = self.burst_allowance_us.saturating_sub(self.t_update_us);
            self.next_update_us += self.t_update_us;
        }
    }

    fn signal(&self) -> AqmDecision {
        if self.ecn {
            AqmDecision::Mark
        } else {
            AqmDecision::Drop
        }
    }
}

impl Default for Pie {
    fn default() -> Self {
        Self::new()
    }
}

impl AqmPolicy for Pie {
    fn name(&self) -> &str {
        "pie"
    }

    fn on_enqueue(&mut self, view: &AqmView) -> AqmDecision {
        self.update(view);
        if self.burst_allowance_us > 0 {
            return AqmDecision::Pass;
        }
        // RFC 8033 §4.1 safeguards: never drop when the queue is nearly
        // empty or the controller is essentially off.
        let qdelay = Self::qdelay_est_us(view);
        if self.drop_prob < 0.000_2 || qdelay < self.target_us / 2 || view.backlog_pkts < 2 {
            return AqmDecision::Pass;
        }
        if self.next_uniform() < self.drop_prob {
            self.signal()
        } else {
            AqmDecision::Pass
        }
    }

    fn on_dequeue(&mut self, _view: &AqmView) -> AqmDecision {
        AqmDecision::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(now: u64, sojourn: u64, backlog: u64) -> AqmView {
        AqmView {
            now_us: now,
            pkt_size: 1500,
            sojourn_us: sojourn,
            backlog_bytes: backlog,
            backlog_pkts: backlog / 1500,
            capacity_bytes: 240_000,
            drain_rate_bps: 12_000_000,
            ewma_sojourn_us: sojourn,
            since_drop_us: now,
            drops: 0,
        }
    }

    #[test]
    fn droptail_never_acts() {
        let mut dt = DropTail;
        let v = view(1_000_000, 500_000, 200_000);
        assert_eq!(dt.on_enqueue(&v), AqmDecision::Pass);
        assert_eq!(dt.on_dequeue(&v), AqmDecision::Pass);
    }

    #[test]
    fn codel_ignores_short_excursions() {
        let mut cd = CoDel::new();
        // sojourn above target, but for less than one interval
        for t in (0..90_000).step_by(1_000) {
            assert_eq!(cd.on_dequeue(&view(t, 8_000, 30_000)), AqmDecision::Pass);
        }
        // dips below target → window resets
        assert_eq!(cd.on_dequeue(&view(95_000, 2_000, 30_000)), AqmDecision::Pass);
        for t in (96_000..180_000).step_by(1_000) {
            assert_eq!(cd.on_dequeue(&view(t, 8_000, 30_000)), AqmDecision::Pass);
        }
    }

    #[test]
    fn codel_drops_after_sustained_excess_then_recovers() {
        let mut cd = CoDel::new();
        let mut drops = 0;
        for t in (0..400_000).step_by(1_000) {
            if cd.on_dequeue(&view(t, 9_000, 30_000)) == AqmDecision::Drop {
                drops += 1;
            }
        }
        assert!(drops >= 2, "sustained excess must trigger repeated drops, got {drops}");
        // control law accelerates: gaps shrink
        assert!(cd.count >= 2);
        // queue drains → exit dropping state immediately
        assert_eq!(cd.on_dequeue(&view(401_000, 1_000, 1_500)), AqmDecision::Pass);
        assert!(!cd.dropping);
    }

    #[test]
    fn codel_never_drops_below_one_mtu() {
        let mut cd = CoDel::new();
        for t in (0..1_000_000).step_by(1_000) {
            assert_eq!(cd.on_dequeue(&view(t, 50_000, 1_500)), AqmDecision::Pass);
        }
    }

    #[test]
    fn codel_ecn_mode_marks_instead() {
        let mut cd = CoDel::with_params(5_000, 100_000, true);
        let mut marks = 0;
        for t in (0..400_000).step_by(1_000) {
            match cd.on_dequeue(&view(t, 9_000, 30_000)) {
                AqmDecision::Mark => marks += 1,
                AqmDecision::Drop => panic!("ECN mode must never hard-drop"),
                AqmDecision::Pass => {}
            }
        }
        assert!(marks >= 2);
    }

    #[test]
    fn pie_ramps_drop_probability_under_standing_queue() {
        let mut pie = Pie::new();
        // standing queue of ~20 pkts → qdelay ≈ 20 ms > 15 ms target
        let mut drops = 0;
        for t in (0..2_000_000).step_by(1_000) {
            if pie.on_enqueue(&view(t, 0, 30_000)) == AqmDecision::Drop {
                drops += 1;
            }
        }
        assert!(pie.drop_prob > 0.0, "controller must have engaged");
        assert!(drops > 0, "standing queue above target must cause drops");
    }

    #[test]
    fn pie_idle_queue_decays_to_zero_drops() {
        let mut pie = Pie::new();
        for t in (0..2_000_000).step_by(1_000) {
            pie.on_enqueue(&view(t, 0, 30_000));
        }
        let engaged = pie.drop_prob;
        assert!(engaged > 0.0);
        for t in (2_000_000..6_000_000).step_by(1_000) {
            assert_eq!(pie.on_enqueue(&view(t, 0, 0)), AqmDecision::Pass, "empty queue");
        }
        assert!(pie.drop_prob < engaged / 2.0, "idle decay must shrink p");
    }

    #[test]
    fn pie_burst_allowance_passes_initial_burst() {
        let mut pie = Pie::new();
        // within the first 150 ms everything passes regardless of queue
        for t in (0..100_000).step_by(1_000) {
            assert_eq!(pie.on_enqueue(&view(t, 0, 200_000)), AqmDecision::Pass);
        }
    }

    #[test]
    fn pie_decisions_are_deterministic() {
        let run = || {
            let mut pie = Pie::new();
            (0..2_000_000)
                .step_by(1_000)
                .map(|t| pie.on_enqueue(&view(t, 0, 30_000)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
