//! TCP-like reliable transport and the congestion-control plug-in point.
//!
//! The sender is window-limited: it keeps `cwnd` packets in flight, detects
//! losses via SACK-style triple-duplicate evidence (the network is FIFO, so
//! any ACK for a later packet while an earlier one is outstanding is
//! reordering-free loss evidence) with a NewReno-style recovery window (one
//! congestion event per window), and falls back to a coarse RTO. RTT
//! estimation follows RFC 6298 (srtt/rttvar EWMAs, Karn's rule on
//! retransmits); a delivery-rate estimator and the paper's 10-interval
//! smoothed history arrays (\[66\]) complete the §5.0.1 feature surface that
//! [`CcView`] exposes to policies.

use std::collections::BTreeMap;

/// Length of each history ring (§5.0.1: "the last 10 RTT intervals").
pub const HIST_LEN: usize = 10;

/// Smoothed per-RTT-interval history, most recent first.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Mean RTT per interval, µs.
    pub rtt_us: [i64; HIST_LEN],
    /// Bytes delivered per interval.
    pub delivered: [i64; HIST_LEN],
    /// Loss events per interval.
    pub losses: [i64; HIST_LEN],
    /// Mean cwnd per interval, packets.
    pub cwnd: [i64; HIST_LEN],
    /// Mean queuing-delay estimate (`srtt − min_rtt`) per interval, µs.
    pub qdelay_us: [i64; HIST_LEN],
}

impl History {
    fn push(&mut self, rtt: i64, delivered: i64, losses: i64, cwnd: i64, qdelay: i64) {
        for ring in [
            &mut self.rtt_us,
            &mut self.delivered,
            &mut self.losses,
            &mut self.cwnd,
            &mut self.qdelay_us,
        ] {
            ring.rotate_right(1);
        }
        self.rtt_us[0] = rtt;
        self.delivered[0] = delivered;
        self.losses[0] = losses;
        self.cwnd[0] = cwnd;
        self.qdelay_us[0] = qdelay;
    }
}

/// Everything a `cong_control` invocation may read (§5.0.1's feature set).
#[derive(Debug)]
pub struct CcView<'a> {
    pub now_us: u64,
    pub cwnd: u64,
    pub prev_cwnd: u64,
    pub min_rtt_us: u64,
    pub srtt_us: u64,
    pub last_rtt_us: u64,
    pub inflight_bytes: u64,
    pub inflight_pkts: u64,
    pub mss: u32,
    pub delivered_bytes: u64,
    pub delivery_rate_bps: u64,
    pub acked_bytes: u64,
    pub ssthresh: u64,
    pub history: &'a History,
}

/// A congestion-control algorithm: returns the new cwnd (packets) on each
/// ACK batch or loss event. The harness clamps the result to
/// `[MIN_CWND, MAX_CWND]`, mirroring the kernel scaffold's own guardrails.
pub trait CongestionControl {
    /// Display name.
    fn name(&self) -> &str;
    /// New data was cumulatively acknowledged.
    fn on_ack(&mut self, view: &CcView<'_>) -> u64;
    /// A loss event was detected (triple-dup or RTO).
    fn on_loss(&mut self, view: &CcView<'_>) -> u64;
}

/// Floor for cwnd, packets.
pub const MIN_CWND: u64 = 2;
/// Ceiling for cwnd, packets.
pub const MAX_CWND: u64 = 1 << 20;

/// Per-packet bookkeeping at the sender.
#[derive(Debug, Clone, Copy)]
struct SentPacket {
    sent_us: u64,
    size: u32,
    retransmitted: bool,
    dup_evidence: u8,
}

/// The sending endpoint of one flow.
pub struct Sender {
    pub cc: Box<dyn CongestionControl>,
    pub mss: u32,
    pub cwnd: u64,
    pub prev_cwnd: u64,
    pub ssthresh: u64,
    next_seq: u64,
    unacked: BTreeMap<u64, SentPacket>,
    inflight_bytes: u64,
    // RTT estimation
    pub srtt_us: u64,
    rttvar_us: u64,
    pub min_rtt_us: u64,
    pub last_rtt_us: u64,
    // delivery accounting
    pub delivered_bytes: u64,
    pub delivery_rate_bps: u64,
    rate_window_start_us: u64,
    rate_window_bytes: u64,
    // recovery state: loss events are collapsed until this seq is acked
    recovery_until: u64,
    // ECN reaction state: ECE echoes are collapsed until this seq is acked
    // (RFC 3168: at most one cwnd reduction per window of data)
    ecn_recovery_until: u64,
    // history interval accumulation
    pub history: History,
    interval_start_us: u64,
    interval_delivered: u64,
    interval_losses: u64,
    interval_rtt_sum: u64,
    interval_rtt_n: u64,
    interval_cwnd_sum: u64,
    interval_cwnd_n: u64,
    // counters
    pub retransmits: u64,
    pub loss_events: u64,
    /// ECN congestion events (ECE echoes reacted to), counted separately
    /// from `loss_events` — no packet was lost.
    pub ecn_events: u64,
}

/// What the sender wants the simulator to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendAction {
    /// Transmit a (possibly re-) packet with this seq and size.
    Transmit { seq: u64, size: u32 },
}

/// Build a [`CcView`] borrowing only `history`, leaving `self.cc` free for
/// the simultaneous `&mut` the callback needs.
macro_rules! cc_view {
    ($self:ident, $now:expr, $acked:expr) => {
        CcView {
            now_us: $now,
            cwnd: $self.cwnd,
            prev_cwnd: $self.prev_cwnd,
            min_rtt_us: if $self.min_rtt_us == u64::MAX { 0 } else { $self.min_rtt_us },
            srtt_us: $self.srtt_us,
            last_rtt_us: $self.last_rtt_us,
            inflight_bytes: $self.inflight_bytes,
            inflight_pkts: $self.unacked.len() as u64,
            mss: $self.mss,
            delivered_bytes: $self.delivered_bytes,
            delivery_rate_bps: $self.delivery_rate_bps,
            acked_bytes: $acked,
            ssthresh: $self.ssthresh,
            history: &$self.history,
        }
    };
}

impl Sender {
    /// New sender with an initial window of 10 segments (RFC 6928).
    pub fn new(cc: Box<dyn CongestionControl>, mss: u32) -> Self {
        Sender {
            cc,
            mss,
            cwnd: 10,
            prev_cwnd: 10,
            ssthresh: MAX_CWND,
            next_seq: 0,
            unacked: BTreeMap::new(),
            inflight_bytes: 0,
            srtt_us: 0,
            rttvar_us: 0,
            min_rtt_us: u64::MAX,
            last_rtt_us: 0,
            delivered_bytes: 0,
            delivery_rate_bps: 0,
            rate_window_start_us: 0,
            rate_window_bytes: 0,
            recovery_until: 0,
            ecn_recovery_until: 0,
            history: History::default(),
            interval_start_us: 0,
            interval_delivered: 0,
            interval_losses: 0,
            interval_rtt_sum: 0,
            interval_rtt_n: 0,
            interval_cwnd_sum: 0,
            interval_cwnd_n: 0,
            retransmits: 0,
            loss_events: 0,
            ecn_events: 0,
        }
    }

    /// Packets currently in flight.
    pub fn inflight_pkts(&self) -> u64 {
        self.unacked.len() as u64
    }

    /// Produce as many transmissions as the window allows (greedy source).
    pub fn pump(&mut self, now_us: u64) -> Vec<SendAction> {
        let mut out = Vec::new();
        while (self.unacked.len() as u64) < self.cwnd {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.unacked.insert(
                seq,
                SentPacket {
                    sent_us: now_us,
                    size: self.mss,
                    retransmitted: false,
                    dup_evidence: 0,
                },
            );
            self.inflight_bytes += self.mss as u64;
            out.push(SendAction::Transmit { seq, size: self.mss });
        }
        out
    }

    // NOTE: constructed via `cc_view!` so `self.cc` stays mutably borrowable.

    fn set_cwnd(&mut self, new: u64) {
        self.prev_cwnd = self.cwnd;
        self.cwnd = new.clamp(MIN_CWND, MAX_CWND);
    }

    fn update_rtt(&mut self, sample_us: u64) {
        self.last_rtt_us = sample_us;
        self.min_rtt_us = self.min_rtt_us.min(sample_us);
        if self.srtt_us == 0 {
            self.srtt_us = sample_us;
            self.rttvar_us = sample_us / 2;
        } else {
            let diff = self.srtt_us.abs_diff(sample_us);
            self.rttvar_us = (3 * self.rttvar_us + diff) / 4;
            self.srtt_us = (7 * self.srtt_us + sample_us) / 8;
        }
    }

    fn roll_interval(&mut self, now_us: u64) {
        let interval = self.srtt_us.max(1_000);
        if now_us.saturating_sub(self.interval_start_us) >= interval {
            let mean_rtt = (self.interval_rtt_sum.checked_div(self.interval_rtt_n))
                .unwrap_or(self.srtt_us) as i64;
            let mean_cwnd = (self.interval_cwnd_sum.checked_div(self.interval_cwnd_n))
                .unwrap_or(self.cwnd) as i64;
            let min_rtt = if self.min_rtt_us == u64::MAX { 0 } else { self.min_rtt_us };
            let qdelay = (self.srtt_us.saturating_sub(min_rtt)) as i64;
            self.history.push(
                mean_rtt,
                self.interval_delivered as i64,
                self.interval_losses as i64,
                mean_cwnd,
                qdelay,
            );
            self.interval_start_us = now_us;
            self.interval_delivered = 0;
            self.interval_losses = 0;
            self.interval_rtt_sum = 0;
            self.interval_rtt_n = 0;
            self.interval_cwnd_sum = 0;
            self.interval_cwnd_n = 0;
        }
    }

    /// Handle an ACK for `seq` arriving at `now_us`; `ece` is the ECN-Echo
    /// flag (the receiver saw CE on the corresponding data packet). Returns
    /// retransmission actions triggered by dup evidence (at most one per
    /// loss event).
    pub fn on_ack(&mut self, seq: u64, now_us: u64, ece: bool) -> Vec<SendAction> {
        let Some(pkt) = self.unacked.remove(&seq) else {
            return Vec::new(); // duplicate/stale ack
        };
        self.inflight_bytes = self.inflight_bytes.saturating_sub(pkt.size as u64);
        self.delivered_bytes += pkt.size as u64;

        // Karn's rule: no RTT sample from retransmitted packets.
        if !pkt.retransmitted {
            self.update_rtt(now_us.saturating_sub(pkt.sent_us));
        }

        // Delivery-rate estimate over a sliding srtt-sized window.
        self.rate_window_bytes += pkt.size as u64;
        let win = self.srtt_us.max(1_000);
        if now_us.saturating_sub(self.rate_window_start_us) >= win {
            let dt = now_us - self.rate_window_start_us;
            self.delivery_rate_bps = self.rate_window_bytes * 8 * 1_000_000 / dt.max(1);
            self.rate_window_start_us = now_us;
            self.rate_window_bytes = 0;
        }

        // interval accumulation
        self.interval_delivered += pkt.size as u64;
        if !pkt.retransmitted {
            self.interval_rtt_sum += self.last_rtt_us;
            self.interval_rtt_n += 1;
        }
        self.interval_cwnd_sum += self.cwnd;
        self.interval_cwnd_n += 1;
        self.roll_interval(now_us);

        // SACK-style dup evidence for every older outstanding packet.
        // Retransmission and congestion signalling are decoupled, as in
        // NewReno: every packet whose evidence crosses the threshold is
        // retransmitted, but at most one congestion event is charged per
        // recovery window (burst drops are one event).
        let mut to_retx: Vec<u64> = Vec::new();
        let mut new_loss_event = false;
        let rtt_guard = self.srtt_us / 2;
        for (&s, p) in self.unacked.range_mut(..seq) {
            p.dup_evidence = p.dup_evidence.saturating_add(1);
            // The guard suppresses spurious re-retransmission of a packet
            // that was retransmitted less than ~half an RTT ago (evidence
            // from acks of packets sent before the retransmission).
            if p.dup_evidence == 3 && now_us.saturating_sub(p.sent_us) >= rtt_guard {
                to_retx.push(s);
                if s >= self.recovery_until {
                    new_loss_event = true;
                }
            }
        }

        let mut actions = Vec::new();
        if new_loss_event {
            self.loss_events += 1;
            self.interval_losses += 1;
            self.recovery_until = self.next_seq;
            self.ssthresh = (self.cwnd / 2).max(MIN_CWND);
            let view = cc_view!(self, now_us, 0);
            let new = self.cc.on_loss(&view);
            self.set_cwnd(new);
        } else if ece && seq >= self.ecn_recovery_until {
            // RFC 3168 reaction: treat the mark as a congestion signal
            // (ssthresh + cc.on_loss) but with nothing to retransmit, at
            // most once per window of data.
            self.ecn_events += 1;
            self.ecn_recovery_until = self.next_seq;
            self.ssthresh = (self.cwnd / 2).max(MIN_CWND);
            let view = cc_view!(self, now_us, 0);
            let new = self.cc.on_loss(&view);
            self.set_cwnd(new);
        } else if to_retx.is_empty() {
            let view = cc_view!(self, now_us, pkt.size as u64);
            let new = self.cc.on_ack(&view);
            self.set_cwnd(new);
        }
        for s in to_retx {
            actions.extend(self.retransmit(s, now_us));
        }
        actions
    }

    fn retransmit(&mut self, seq: u64, now_us: u64) -> Vec<SendAction> {
        let Some(p) = self.unacked.get_mut(&seq) else {
            return Vec::new();
        };
        p.sent_us = now_us;
        p.retransmitted = true;
        p.dup_evidence = 0;
        let size = p.size;
        self.retransmits += 1;
        vec![SendAction::Transmit { seq, size }]
    }

    /// Current retransmission timeout (RFC 6298 flavoured, floored).
    pub fn rto_us(&self) -> u64 {
        if self.srtt_us == 0 {
            1_000_000
        } else {
            (self.srtt_us + 4 * self.rttvar_us).max(200_000)
        }
    }

    /// Periodic timer: retransmit the oldest packet if it has outlived the
    /// RTO (tail-loss recovery when dup evidence cannot accumulate).
    pub fn on_timer(&mut self, now_us: u64) -> Vec<SendAction> {
        let Some((&seq, p)) = self.unacked.iter().next() else {
            return Vec::new();
        };
        if now_us.saturating_sub(p.sent_us) >= self.rto_us() {
            self.loss_events += 1;
            self.interval_losses += 1;
            self.recovery_until = self.next_seq;
            self.ssthresh = (self.cwnd / 2).max(MIN_CWND);
            let view = cc_view!(self, now_us, 0);
            let new = self.cc.on_loss(&view);
            self.set_cwnd(new);
            return self.retransmit(seq, now_us);
        }
        Vec::new()
    }

    /// A transmission was tail-dropped at the bottleneck before entering
    /// the wire; the packet stays outstanding and will be recovered by dup
    /// evidence or RTO.
    pub fn on_local_drop(&mut self, _seq: u64) {}
}

/// The receiving endpoint: per-packet ACKs, first-receipt accounting.
#[derive(Debug, Default)]
pub struct Receiver {
    seen: std::collections::HashSet<u64>,
    /// Unique payload bytes received.
    pub unique_bytes: u64,
    /// Total packets received (including spurious retransmits).
    pub packets: u64,
    /// Packets received with the ECN CE bit set.
    pub ce_packets: u64,
}

impl Receiver {
    /// New empty receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Process a data packet; returns the seq to acknowledge. A CE-marked
    /// packet (`ecn_ce`) is counted and must be echoed as ECE on its ACK.
    pub fn on_data(&mut self, seq: u64, size: u32, ecn_ce: bool) -> u64 {
        self.packets += 1;
        if ecn_ce {
            self.ce_packets += 1;
        }
        if self.seen.insert(seq) {
            self.unique_bytes += size as u64;
        }
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixed-window CC for transport-mechanics tests.
    struct FixedCc(u64);
    impl CongestionControl for FixedCc {
        fn name(&self) -> &str {
            "fixed"
        }
        fn on_ack(&mut self, _v: &CcView<'_>) -> u64 {
            self.0
        }
        fn on_loss(&mut self, _v: &CcView<'_>) -> u64 {
            self.0
        }
    }

    fn sender(w: u64) -> Sender {
        let mut s = Sender::new(Box::new(FixedCc(w)), 1500);
        s.cwnd = w;
        s
    }

    #[test]
    fn pump_fills_window() {
        let mut s = sender(5);
        let sends = s.pump(0);
        assert_eq!(sends.len(), 5);
        assert_eq!(s.inflight_pkts(), 5);
        assert_eq!(s.pump(1).len(), 0, "window full");
    }

    #[test]
    fn ack_frees_window_and_updates_rtt() {
        let mut s = sender(3);
        s.pump(0);
        s.on_ack(0, 40_000, false);
        assert_eq!(s.inflight_pkts(), 2);
        assert_eq!(s.last_rtt_us, 40_000);
        assert_eq!(s.srtt_us, 40_000);
        assert_eq!(s.min_rtt_us, 40_000);
        assert_eq!(s.delivered_bytes, 1500);
        // window has room again
        assert_eq!(s.pump(41_000).len(), 1);
    }

    #[test]
    fn triple_dup_triggers_single_loss_event() {
        let mut s = sender(8);
        s.pump(0);
        // acks for 1,2 — packet 0 accumulates dup evidence
        assert!(s.on_ack(1, 40_000, false).is_empty());
        assert!(s.on_ack(2, 41_000, false).is_empty());
        let actions = s.on_ack(3, 42_000, false);
        assert_eq!(actions, vec![SendAction::Transmit { seq: 0, size: 1500 }]);
        assert_eq!(s.loss_events, 1);
        // further acks in the same window do not re-trigger
        assert!(s.on_ack(4, 43_000, false).is_empty());
        assert!(s.on_ack(5, 43_500, false).is_empty());
        assert_eq!(s.loss_events, 1);
    }

    #[test]
    fn karns_rule_skips_retransmit_rtt() {
        let mut s = sender(8);
        s.pump(0);
        s.on_ack(1, 40_000, false);
        s.on_ack(2, 41_000, false);
        s.on_ack(3, 42_000, false); // retransmits 0
        let srtt_before = s.srtt_us;
        s.on_ack(0, 43_000, false); // acked after retransmit: no RTT sample
        assert_eq!(s.srtt_us, srtt_before);
    }

    #[test]
    fn rto_fires_and_is_floored() {
        let mut s = sender(2);
        s.pump(0);
        assert!(s.on_timer(100_000).is_empty(), "before RTO");
        let actions = s.on_timer(1_100_000);
        assert_eq!(actions.len(), 1, "RTO must retransmit the oldest");
        assert_eq!(s.loss_events, 1);
        assert!(s.rto_us() >= 200_000);
    }

    #[test]
    fn history_rolls_intervals() {
        let mut s = sender(4);
        s.pump(0);
        s.on_ack(0, 40_000, false);
        // force several intervals
        for (i, t) in [(1u64, 90_000u64), (2, 140_000), (3, 190_000)] {
            s.on_ack(i, t, false);
        }
        assert!(s.history.rtt_us[0] > 0, "history must have rolled");
        assert!(s.history.delivered[0] >= 0);
    }

    #[test]
    fn ece_reacts_once_per_window_without_retransmit() {
        let mut s = sender(8);
        s.pump(0);
        let cwnd_before = s.cwnd;
        let actions = s.on_ack(0, 40_000, true);
        assert!(actions.is_empty(), "ECN reaction must not retransmit");
        assert_eq!(s.ecn_events, 1);
        assert_eq!(s.loss_events, 0, "a mark is not a loss");
        assert_eq!(s.ssthresh, (cwnd_before / 2).max(MIN_CWND));
        // further ECE echoes within the same window are collapsed
        s.on_ack(1, 41_000, true);
        s.on_ack(2, 42_000, true);
        assert_eq!(s.ecn_events, 1);
        // a new window (packets sent after the reaction) re-arms the signal
        s.pump(43_000);
        for seq in 3..8 {
            s.on_ack(seq, 44_000 + seq * 100, false);
        }
        s.on_ack(8, 46_000, true);
        assert_eq!(s.ecn_events, 2);
    }

    #[test]
    fn receiver_counts_ce_packets() {
        let mut r = Receiver::new();
        r.on_data(0, 1500, true);
        r.on_data(1, 1500, false);
        r.on_data(2, 1500, true);
        assert_eq!(r.ce_packets, 2);
        assert_eq!(r.unique_bytes, 4500);
    }

    #[test]
    fn receiver_dedups_bytes() {
        let mut r = Receiver::new();
        assert_eq!(r.on_data(0, 1500, false), 0);
        assert_eq!(r.on_data(0, 1500, false), 0); // spurious retransmit
        assert_eq!(r.unique_bytes, 1500);
        assert_eq!(r.packets, 2);
    }
}
