//! # policysmith-netsim — deterministic discrete-event network emulation
//!
//! The congestion-control case study (§5 of the paper) evaluates candidates
//! "on a 12 Mbps, 20 ms delay emulated link" built with Mahimahi \[42\]. This
//! crate rebuilds that substrate (substitution S4b in DESIGN.md) as a
//! discrete-event simulator:
//!
//! * [`link`] — a bottleneck with a serialization rate, one-way propagation
//!   delay, and a drop-tail byte-bounded queue (`mm-link` + `mm-delay`
//!   equivalent), with a pluggable [`AqmPolicy`] decision point at
//!   enqueue/dequeue;
//! * [`aqm`] — the AQM trait plus the man-made baselines (CoDel, PIE) and
//!   the default [`DropTail`]; `Mark` decisions flow through the ECN path
//!   (CE bit → receiver echo → one sender reaction per window);
//! * [`transport`] — a TCP-like reliable transport: window-limited sender,
//!   per-packet ACKs, SACK-style triple-dup loss detection with a NewReno
//!   recovery window, RTO fallback, RTT estimation (EWMA srtt/rttvar +
//!   min-RTT), delivery-rate estimation, and the 10-interval smoothed
//!   **history arrays** of §5.0.1 — plus the [`CongestionControl`] trait
//!   that both the classical baselines and kbpf-backed synthesized policies
//!   implement (in `policysmith-cc`);
//! * [`sim`] — the event loop gluing flows to the shared bottleneck and
//!   collecting utilization / queuing-delay / loss metrics.
//!
//! Everything is integer-microsecond virtual time; runs are bit-for-bit
//! reproducible.

pub mod aqm;
pub mod link;
pub mod sim;
pub mod transport;

pub use aqm::{AqmDecision, AqmPolicy, AqmView, CoDel, DropTail, Pie};
pub use link::{Bottleneck, LinkCfg};
pub use sim::{FlowMetrics, SimConfig, Simulation};
pub use transport::{CcView, CongestionControl, History, HIST_LEN};
