//! The event loop: flows × bottleneck × virtual time.
//!
//! A binary-heap agenda of `(time, seq, event)` drives the system; ties
//! break on insertion order, so runs are fully deterministic. The reverse
//! (ACK) path is delay-only — the paper's `mm-delay 20` both ways with the
//! `mm-link` bottleneck on data only.

use crate::aqm::AqmPolicy;
use crate::link::{Bottleneck, LinkCfg, QueuedPacket};
use crate::transport::{CongestionControl, Receiver, SendAction, Sender};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    pub link: LinkCfg,
    /// Wall-clock duration to simulate, µs.
    pub duration_us: u64,
    /// Sender maximum segment size, bytes.
    pub mss: u32,
    /// Sender housekeeping timer period (RTO checks), µs.
    pub timer_period_us: u64,
}

impl SimConfig {
    /// The paper's §5.0.3 scenario: 12 Mbps / 20 ms / 1-BDP buffer, 30 s.
    pub fn paper_scenario() -> SimConfig {
        SimConfig {
            link: LinkCfg::paper_link(),
            duration_us: 30_000_000,
            mss: 1500,
            timer_period_us: 5_000,
        }
    }
}

/// Per-flow outcome metrics (the quantities §5.0.3 reports).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowMetrics {
    /// Unique payload bytes delivered.
    pub delivered_bytes: u64,
    /// Goodput as a fraction of link capacity (0..1).
    pub utilization: f64,
    /// Mean RTT observed by the sender, µs (srtt at end).
    pub srtt_us: u64,
    /// Minimum RTT observed, µs.
    pub min_rtt_us: u64,
    /// Loss events (triple-dup + RTO).
    pub loss_events: u64,
    /// Retransmitted packets.
    pub retransmits: u64,
    /// ECN congestion events the sender reacted to (marks, not losses).
    pub ecn_events: u64,
    /// Final cwnd, packets.
    pub final_cwnd: u64,
}

#[derive(Debug)]
enum Event {
    /// Bottleneck finished serializing its head packet.
    TxDone,
    /// Data packet reaches the receiver.
    Arrive { pkt: QueuedPacket },
    /// ACK reaches the sender; `ece` echoes the data packet's CE mark.
    Ack { flow: usize, seq: u64, ece: bool },
    /// Per-flow housekeeping timer.
    Timer { flow: usize },
}

/// A running simulation over one shared bottleneck.
pub struct Simulation {
    cfg: SimConfig,
    link: Bottleneck,
    senders: Vec<Sender>,
    receivers: Vec<Receiver>,
    agenda: BinaryHeap<Reverse<(u64, u64, usize)>>,
    events: Vec<Option<Event>>,
    now_us: u64,
    seq_counter: u64,
}

impl Simulation {
    /// Build a simulation with one flow per congestion controller and a
    /// plain drop-tail bottleneck.
    pub fn new(cfg: SimConfig, ccs: Vec<Box<dyn CongestionControl>>) -> Self {
        Self::with_aqm(cfg, ccs, Box::new(crate::aqm::DropTail))
    }

    /// Build a simulation whose bottleneck is managed by `aqm`.
    pub fn with_aqm(
        cfg: SimConfig,
        ccs: Vec<Box<dyn CongestionControl>>,
        aqm: Box<dyn AqmPolicy>,
    ) -> Self {
        assert!(!ccs.is_empty(), "need at least one flow");
        let n = ccs.len();
        let mut sim = Simulation {
            link: Bottleneck::with_aqm(cfg.link, aqm),
            senders: ccs.into_iter().map(|cc| Sender::new(cc, cfg.mss)).collect(),
            receivers: (0..n).map(|_| Receiver::new()).collect(),
            agenda: BinaryHeap::new(),
            events: Vec::new(),
            now_us: 0,
            seq_counter: 0,
            cfg,
        };
        for f in 0..n {
            // Stagger timer phases so identical flows do not share every
            // event timestamp (deterministic tie-breaking would otherwise
            // systematically favour the lower-numbered flow).
            sim.schedule(cfg.timer_period_us + f as u64 * 997, Event::Timer { flow: f });
        }
        sim
    }

    fn schedule(&mut self, at_us: u64, ev: Event) {
        let idx = self.events.len();
        self.events.push(Some(ev));
        self.seq_counter += 1;
        self.agenda.push(Reverse((at_us, self.seq_counter, idx)));
    }

    fn transmit(&mut self, flow: usize, actions: Vec<SendAction>) {
        for SendAction::Transmit { seq, size } in actions {
            let pkt = QueuedPacket { flow, seq, size, enq_us: self.now_us, ecn_ce: false };
            if self.link.enqueue(pkt) {
                if let Some(delay) = self.link.start_tx(self.now_us) {
                    self.schedule(self.now_us + delay, Event::TxDone);
                }
            } else {
                self.senders[flow].on_local_drop(seq);
            }
        }
    }

    /// Run to completion; returns per-flow metrics.
    pub fn run(&mut self) -> Vec<FlowMetrics> {
        // kick off all flows
        for f in 0..self.senders.len() {
            let sends = self.senders[f].pump(0);
            self.transmit(f, sends);
        }

        while let Some(Reverse((t, _, idx))) = self.agenda.pop() {
            if t > self.cfg.duration_us {
                break;
            }
            self.now_us = t;
            let ev = self.events[idx].take().expect("event consumed twice");
            match ev {
                Event::TxDone => {
                    let pkt = self.link.tx_done(self.now_us);
                    self.schedule(self.now_us + self.cfg.link.delay_us, Event::Arrive { pkt });
                    if let Some(delay) = self.link.start_tx(self.now_us) {
                        self.schedule(self.now_us + delay, Event::TxDone);
                    }
                }
                Event::Arrive { pkt } => {
                    let ack_seq = self.receivers[pkt.flow].on_data(pkt.seq, pkt.size, pkt.ecn_ce);
                    self.schedule(
                        self.now_us + self.cfg.link.delay_us,
                        Event::Ack { flow: pkt.flow, seq: ack_seq, ece: pkt.ecn_ce },
                    );
                }
                Event::Ack { flow, seq, ece } => {
                    let retx = self.senders[flow].on_ack(seq, self.now_us, ece);
                    self.transmit(flow, retx);
                    let sends = self.senders[flow].pump(self.now_us);
                    self.transmit(flow, sends);
                }
                Event::Timer { flow } => {
                    let retx = self.senders[flow].on_timer(self.now_us);
                    self.transmit(flow, retx);
                    let sends = self.senders[flow].pump(self.now_us);
                    self.transmit(flow, sends);
                    self.schedule(self.now_us + self.cfg.timer_period_us, Event::Timer { flow });
                }
            }
        }

        let capacity_bytes =
            self.cfg.link.rate_bps as f64 / 8.0 * self.cfg.duration_us as f64 / 1e6;
        (0..self.senders.len())
            .map(|f| {
                let s = &self.senders[f];
                let r = &self.receivers[f];
                FlowMetrics {
                    delivered_bytes: r.unique_bytes,
                    utilization: (r.unique_bytes as f64 / capacity_bytes).min(1.0),
                    srtt_us: s.srtt_us,
                    min_rtt_us: if s.min_rtt_us == u64::MAX { 0 } else { s.min_rtt_us },
                    loss_events: s.loss_events,
                    retransmits: s.retransmits,
                    ecn_events: s.ecn_events,
                    final_cwnd: s.cwnd,
                }
            })
            .collect()
    }

    /// Mean bottleneck queuing delay over the run, µs.
    pub fn mean_qdelay_us(&self) -> f64 {
        self.link.mean_qdelay_us()
    }

    /// Maximum bottleneck queuing delay, µs.
    pub fn max_qdelay_us(&self) -> u64 {
        self.link.max_qdelay_us()
    }

    /// Packets tail-dropped at the bottleneck.
    pub fn drops(&self) -> u64 {
        self.link.drops
    }

    /// Packets dropped or CE-marked by the AQM policy.
    pub fn aqm_drops(&self) -> u64 {
        self.link.aqm_drops()
    }

    /// Packets CE-marked by the AQM policy.
    pub fn ecn_marks(&self) -> u64 {
        self.link.ecn_marks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::CcView;

    /// Fixed-window controller.
    struct FixedCc(u64);
    impl CongestionControl for FixedCc {
        fn name(&self) -> &str {
            "fixed"
        }
        fn on_ack(&mut self, _v: &CcView<'_>) -> u64 {
            self.0
        }
        fn on_loss(&mut self, _v: &CcView<'_>) -> u64 {
            self.0
        }
    }

    /// Additive-increase / multiplicative-decrease reference controller:
    /// slow start below ssthresh, +1 segment per RTT above (ack counting).
    struct SimpleAimd {
        acks: u64,
    }
    impl SimpleAimd {
        fn new() -> Self {
            SimpleAimd { acks: 0 }
        }
    }
    impl CongestionControl for SimpleAimd {
        fn name(&self) -> &str {
            "aimd"
        }
        fn on_ack(&mut self, v: &CcView<'_>) -> u64 {
            if v.cwnd < v.ssthresh {
                return v.cwnd + 1; // slow start
            }
            self.acks += 1;
            if self.acks >= v.cwnd {
                self.acks = 0;
                v.cwnd + 1
            } else {
                v.cwnd
            }
        }
        fn on_loss(&mut self, v: &CcView<'_>) -> u64 {
            self.acks = 0;
            v.cwnd / 2
        }
    }

    fn run_one(cc: Box<dyn CongestionControl>, dur_us: u64) -> (FlowMetrics, f64, u64) {
        let mut cfg = SimConfig::paper_scenario();
        cfg.duration_us = dur_us;
        let mut sim = Simulation::new(cfg, vec![cc]);
        let m = sim.run().remove(0);
        (m, sim.mean_qdelay_us(), sim.drops())
    }

    #[test]
    fn tiny_window_underutilizes() {
        // 2 pkts per 40 ms RTT = 600 kbps on a 12 Mbps link ≈ 5%.
        let (m, qd, drops) = run_one(Box::new(FixedCc(2)), 10_000_000);
        assert!(m.utilization > 0.02 && m.utilization < 0.10, "util {}", m.utilization);
        assert_eq!(drops, 0);
        assert!(qd < 2_000.0, "near-empty queue expected, got {qd}");
        assert_eq!(m.loss_events, 0);
        // min RTT ≈ 2×20 ms + serialization
        assert!(m.min_rtt_us >= 40_000 && m.min_rtt_us < 45_000, "{}", m.min_rtt_us);
    }

    #[test]
    fn bdp_window_fills_link_without_queueing() {
        // BDP = 60 kB = 40 pkts: full utilization, minimal standing queue.
        let (m, qd, _) = run_one(Box::new(FixedCc(40)), 10_000_000);
        assert!(m.utilization > 0.9, "util {}", m.utilization);
        assert!(qd < 10_000.0, "qdelay {qd}");
    }

    #[test]
    fn oversized_window_builds_queue_and_drops() {
        let (m, qd, drops) = run_one(Box::new(FixedCc(200)), 10_000_000);
        assert!(m.utilization > 0.9);
        assert!(drops > 0, "buffer must overflow");
        assert!(m.loss_events > 0, "loss must be detected");
        assert!(m.retransmits > 0);
        assert!(qd > 10_000.0, "standing queue expected, got {qd}");
    }

    #[test]
    fn aimd_achieves_high_utilization_with_bounded_delay() {
        let (m, qd, _) = run_one(Box::new(SimpleAimd::new()), 30_000_000);
        assert!(m.utilization > 0.8, "AIMD util {}", m.utilization);
        assert!(m.loss_events > 0, "AIMD probes until loss");
        // queue bounded by 1 BDP → qdelay ≤ 40 ms
        assert!(qd <= 40_000.0, "qdelay {qd}");
    }

    #[test]
    fn deterministic_runs() {
        let a = run_one(Box::new(SimpleAimd::new()), 5_000_000);
        let b = run_one(Box::new(SimpleAimd::new()), 5_000_000);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn two_flows_share_the_link() {
        let mut cfg = SimConfig::paper_scenario();
        cfg.duration_us = 20_000_000;
        let mut sim =
            Simulation::new(cfg, vec![Box::new(SimpleAimd::new()), Box::new(SimpleAimd::new())]);
        let ms = sim.run();
        let total: f64 = ms.iter().map(|m| m.utilization).sum();
        assert!(total > 0.8, "aggregate util {total}");
        // rough fairness: neither flow starves
        for m in &ms {
            assert!(m.utilization > 0.15, "flow starved: {}", m.utilization);
        }
    }

    #[test]
    fn delivered_bytes_consistent_with_utilization() {
        let (m, _, _) = run_one(Box::new(FixedCc(40)), 10_000_000);
        let capacity = 12_000_000.0 / 8.0 * 10.0; // bytes in 10 s
        assert!((m.delivered_bytes as f64 / capacity - m.utilization).abs() < 1e-9);
    }

    /// Paper link with a 4×BDP buffer: deep enough that an AIMD flow builds
    /// a standing queue drop-tail never trims.
    fn deep_buffer_cfg() -> SimConfig {
        let mut cfg = SimConfig::paper_scenario();
        cfg.link.queue_bytes = 4 * cfg.link.bdp_bytes();
        cfg
    }

    fn run_aqm(aqm: Box<dyn AqmPolicy>) -> (FlowMetrics, f64, u64, u64) {
        let mut sim =
            Simulation::with_aqm(deep_buffer_cfg(), vec![Box::new(SimpleAimd::new())], aqm);
        let m = sim.run().remove(0);
        (m, sim.mean_qdelay_us(), sim.aqm_drops(), sim.ecn_marks())
    }

    #[test]
    fn droptail_builds_standing_queue_in_deep_buffer() {
        let (m, qd, aqm_drops, _) = run_aqm(Box::new(crate::aqm::DropTail));
        assert!(m.utilization > 0.8, "util {}", m.utilization);
        assert_eq!(aqm_drops, 0);
        // AIMD in a 4-BDP buffer saws between ~2.5 and 5 BDP of RTT:
        // mean sojourn far above CoDel's 5 ms target.
        assert!(qd > 30_000.0, "drop-tail should queue heavily, got {qd}");
    }

    #[test]
    fn codel_holds_sojourn_near_target() {
        let (m, qd, aqm_drops, _) = run_aqm(Box::new(crate::aqm::CoDel::new()));
        assert!(aqm_drops > 0, "CoDel must engage under a standing queue");
        assert!(
            qd > 1_000.0 && qd < 15_000.0,
            "CoDel should hold mean sojourn near its 5 ms target, got {qd}"
        );
        assert!(m.utilization > 0.7, "CoDel must not tank utilization: {}", m.utilization);
        assert_eq!(m.ecn_events, 0, "hard-drop CoDel sends no marks");
    }

    #[test]
    fn pie_bounds_delay_near_its_target() {
        let (m, qd, aqm_drops, _) = run_aqm(Box::new(crate::aqm::Pie::new()));
        assert!(aqm_drops > 0, "PIE must engage under a standing queue");
        assert!(qd < 40_000.0, "PIE should bound mean delay near 15 ms, got {qd}");
        assert!(m.utilization > 0.7, "PIE must not tank utilization: {}", m.utilization);
    }

    #[test]
    fn ecn_codel_marks_instead_of_dropping() {
        let (m, qd, aqm_drops, marks) =
            run_aqm(Box::new(crate::aqm::CoDel::with_params(5_000, 100_000, true)));
        assert!(aqm_drops > 0);
        assert_eq!(marks, aqm_drops, "ECN mode only marks");
        assert!(m.ecn_events > 0, "sender must react to echoed marks");
        assert_eq!(m.retransmits, 0, "marks lose nothing, so nothing to retransmit");
        assert!(qd < 20_000.0, "marking should still control the queue, got {qd}");
        assert!(m.utilization > 0.7, "util {}", m.utilization);
    }

    #[test]
    fn aqm_runs_are_deterministic() {
        let a = run_aqm(Box::new(crate::aqm::Pie::new()));
        let b = run_aqm(Box::new(crate::aqm::Pie::new()));
        assert_eq!(a, b);
    }
}
