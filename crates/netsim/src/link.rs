//! The bottleneck link: serialization rate + one-way propagation delay +
//! drop-tail byte queue. Equivalent to Mahimahi's `mm-link RATE` nested in
//! `mm-delay MS` (the paper's §5.0.3 testbed shape).

/// Static link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkCfg {
    /// Serialization rate, bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay, µs (applied in both directions, so the
    /// minimum RTT is `2 * delay_us` plus one serialization time).
    pub delay_us: u64,
    /// Drop-tail queue bound, bytes.
    pub queue_bytes: u64,
}

impl LinkCfg {
    /// The paper's evaluation link: 12 Mbps, 20 ms delay, 1-BDP buffer.
    pub fn paper_link() -> LinkCfg {
        let rate_bps = 12_000_000;
        let delay_us = 20_000;
        // BDP = rate × RTT = 12 Mbps × 40 ms = 60 kB
        let bdp_bytes = rate_bps / 8 * (2 * delay_us) / 1_000_000;
        LinkCfg { rate_bps, delay_us, queue_bytes: bdp_bytes }
    }

    /// Time to serialize `bytes` onto the wire, µs (at least 1).
    pub fn tx_time_us(&self, bytes: u32) -> u64 {
        ((bytes as u64 * 8 * 1_000_000) / self.rate_bps).max(1)
    }

    /// Bandwidth-delay product in bytes (using min RTT).
    pub fn bdp_bytes(&self) -> u64 {
        self.rate_bps / 8 * (2 * self.delay_us) / 1_000_000
    }
}

/// A queued packet: opaque to the link beyond size and identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedPacket {
    pub flow: usize,
    pub seq: u64,
    pub size: u32,
    /// Enqueue time, for queuing-delay accounting.
    pub enq_us: u64,
}

/// The shared bottleneck with drop-tail queueing.
#[derive(Debug)]
pub struct Bottleneck {
    pub cfg: LinkCfg,
    queue: std::collections::VecDeque<QueuedPacket>,
    queued_bytes: u64,
    /// Is the transmitter currently serializing a packet?
    busy: bool,
    // counters
    pub drops: u64,
    pub forwarded: u64,
    qdelay_sum_us: u64,
    qdelay_samples: u64,
    qdelay_max_us: u64,
}

impl Bottleneck {
    /// New idle link.
    pub fn new(cfg: LinkCfg) -> Self {
        Bottleneck {
            cfg,
            queue: std::collections::VecDeque::new(),
            queued_bytes: 0,
            busy: false,
            drops: 0,
            forwarded: 0,
            qdelay_sum_us: 0,
            qdelay_samples: 0,
            qdelay_max_us: 0,
        }
    }

    /// Offer a packet. Returns `true` if accepted; on acceptance, if the
    /// transmitter was idle the caller must schedule the first completion
    /// ([`Bottleneck::start_tx`]).
    pub fn enqueue(&mut self, pkt: QueuedPacket) -> bool {
        if self.queued_bytes + pkt.size as u64 > self.cfg.queue_bytes {
            self.drops += 1;
            return false;
        }
        self.queued_bytes += pkt.size as u64;
        self.queue.push_back(pkt);
        true
    }

    /// Begin serializing the head packet if idle; returns the completion
    /// delay (µs) to schedule, if transmission started.
    pub fn start_tx(&mut self) -> Option<u64> {
        if self.busy {
            return None;
        }
        let head = self.queue.front()?;
        self.busy = true;
        Some(self.cfg.tx_time_us(head.size))
    }

    /// Serialization of the head packet finished at `now`; returns the
    /// departed packet. Caller schedules its arrival after the propagation
    /// delay, then calls [`Bottleneck::start_tx`] again for the next one.
    pub fn tx_done(&mut self, now: u64) -> QueuedPacket {
        debug_assert!(self.busy);
        self.busy = false;
        let pkt = self.queue.pop_front().expect("tx_done with empty queue");
        self.queued_bytes -= pkt.size as u64;
        self.forwarded += 1;
        // queuing delay = waiting + serialization
        let qd = now.saturating_sub(pkt.enq_us);
        self.qdelay_sum_us += qd;
        self.qdelay_samples += 1;
        self.qdelay_max_us = self.qdelay_max_us.max(qd);
        pkt
    }

    /// Bytes currently enqueued.
    pub fn backlog_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Mean queuing delay over all forwarded packets, µs.
    pub fn mean_qdelay_us(&self) -> f64 {
        if self.qdelay_samples == 0 {
            0.0
        } else {
            self.qdelay_sum_us as f64 / self.qdelay_samples as f64
        }
    }

    /// Maximum observed queuing delay, µs.
    pub fn max_qdelay_us(&self) -> u64 {
        self.qdelay_max_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64, size: u32, enq: u64) -> QueuedPacket {
        QueuedPacket { flow: 0, seq, size, enq_us: enq }
    }

    #[test]
    fn paper_link_parameters() {
        let l = LinkCfg::paper_link();
        assert_eq!(l.rate_bps, 12_000_000);
        assert_eq!(l.delay_us, 20_000);
        assert_eq!(l.bdp_bytes(), 60_000);
        assert_eq!(l.queue_bytes, 60_000);
        // 1500 B at 12 Mbps = 1 ms
        assert_eq!(l.tx_time_us(1500), 1_000);
    }

    #[test]
    fn fifo_order_and_accounting() {
        let mut b = Bottleneck::new(LinkCfg::paper_link());
        assert!(b.enqueue(pkt(1, 1500, 0)));
        assert!(b.enqueue(pkt(2, 1500, 0)));
        let d = b.start_tx().unwrap();
        assert_eq!(d, 1_000);
        let p = b.tx_done(1_000);
        assert_eq!(p.seq, 1);
        assert_eq!(b.backlog_bytes(), 1500);
        let d = b.start_tx().unwrap();
        let p = b.tx_done(1_000 + d);
        assert_eq!(p.seq, 2);
        assert_eq!(b.backlog_bytes(), 0);
        assert!(b.start_tx().is_none());
        assert_eq!(b.forwarded, 2);
    }

    #[test]
    fn drop_tail_when_full() {
        let cfg = LinkCfg { rate_bps: 1_000_000, delay_us: 1_000, queue_bytes: 3_000 };
        let mut b = Bottleneck::new(cfg);
        assert!(b.enqueue(pkt(1, 1500, 0)));
        assert!(b.enqueue(pkt(2, 1500, 0)));
        assert!(!b.enqueue(pkt(3, 1500, 0)), "third packet must be tail-dropped");
        assert_eq!(b.drops, 1);
        assert_eq!(b.backlog_bytes(), 3_000);
    }

    #[test]
    fn qdelay_accounting() {
        let mut b = Bottleneck::new(LinkCfg::paper_link());
        b.enqueue(pkt(1, 1500, 0));
        b.start_tx().unwrap();
        b.tx_done(1_000); // waited 0 + tx 1000
        b.enqueue(pkt(2, 1500, 1_000));
        b.start_tx().unwrap();
        b.tx_done(3_000); // waited 1000 + tx 1000
        assert_eq!(b.mean_qdelay_us(), 1_500.0);
        assert_eq!(b.max_qdelay_us(), 2_000);
    }

    #[test]
    fn busy_transmitter_not_restarted() {
        let mut b = Bottleneck::new(LinkCfg::paper_link());
        b.enqueue(pkt(1, 1500, 0));
        assert!(b.start_tx().is_some());
        b.enqueue(pkt(2, 1500, 10));
        assert!(b.start_tx().is_none(), "must not preempt in-flight serialization");
    }
}
