//! The bottleneck link: serialization rate + one-way propagation delay +
//! drop-tail byte queue, with a pluggable AQM decision point. Equivalent to
//! Mahimahi's `mm-link RATE` nested in `mm-delay MS` (the paper's §5.0.3
//! testbed shape); with the default [`DropTail`] policy the behaviour is
//! identical to a plain drop-tail link.

use crate::aqm::{AqmDecision, AqmPolicy, AqmView, DropTail};

/// Static link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkCfg {
    /// Serialization rate, bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay, µs (applied in both directions, so the
    /// minimum RTT is `2 * delay_us` plus one serialization time).
    pub delay_us: u64,
    /// Drop-tail queue bound, bytes.
    pub queue_bytes: u64,
}

impl LinkCfg {
    /// The paper's evaluation link: 12 Mbps, 20 ms delay, 1-BDP buffer.
    pub fn paper_link() -> LinkCfg {
        let rate_bps = 12_000_000;
        let delay_us = 20_000;
        // BDP = rate × RTT = 12 Mbps × 40 ms = 60 kB
        let bdp_bytes = rate_bps / 8 * (2 * delay_us) / 1_000_000;
        LinkCfg { rate_bps, delay_us, queue_bytes: bdp_bytes }
    }

    /// Time to serialize `bytes` onto the wire, µs (at least 1).
    pub fn tx_time_us(&self, bytes: u32) -> u64 {
        ((bytes as u64 * 8 * 1_000_000) / self.rate_bps).max(1)
    }

    /// Bandwidth-delay product in bytes (using min RTT).
    pub fn bdp_bytes(&self) -> u64 {
        self.rate_bps / 8 * (2 * self.delay_us) / 1_000_000
    }
}

/// A queued packet: opaque to the link beyond size and identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedPacket {
    pub flow: usize,
    pub seq: u64,
    pub size: u32,
    /// Enqueue time, for queuing-delay accounting.
    pub enq_us: u64,
    /// ECN Congestion Experienced: set by the AQM's `Mark` decision, echoed
    /// by the receiver, reacted to by the sender once per window.
    pub ecn_ce: bool,
}

/// The shared bottleneck with drop-tail queueing and a pluggable AQM.
pub struct Bottleneck {
    pub cfg: LinkCfg,
    queue: std::collections::VecDeque<QueuedPacket>,
    queued_bytes: u64,
    /// Is the transmitter currently serializing a packet?
    busy: bool,
    aqm: Box<dyn AqmPolicy>,
    // AQM-visible smoothed state
    drain_rate_bps: u64,
    ewma_sojourn_us: u64,
    last_drop_us: Option<u64>,
    last_departure_us: Option<u64>,
    // counters
    pub drops: u64,
    pub forwarded: u64,
    aqm_drops: u64,
    ecn_marks: u64,
    qdelay_sum_us: u64,
    qdelay_samples: u64,
    qdelay_max_us: u64,
}

impl std::fmt::Debug for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bottleneck")
            .field("cfg", &self.cfg)
            .field("aqm", &self.aqm.name())
            .field("queued_bytes", &self.queued_bytes)
            .field("busy", &self.busy)
            .field("drops", &self.drops)
            .field("aqm_drops", &self.aqm_drops)
            .field("ecn_marks", &self.ecn_marks)
            .field("forwarded", &self.forwarded)
            .finish_non_exhaustive()
    }
}

impl Bottleneck {
    /// New idle link with plain drop-tail behaviour.
    pub fn new(cfg: LinkCfg) -> Self {
        Self::with_aqm(cfg, Box::new(DropTail))
    }

    /// New idle link managed by `aqm`.
    pub fn with_aqm(cfg: LinkCfg, aqm: Box<dyn AqmPolicy>) -> Self {
        Bottleneck {
            cfg,
            queue: std::collections::VecDeque::new(),
            queued_bytes: 0,
            busy: false,
            aqm,
            drain_rate_bps: cfg.rate_bps.max(1),
            ewma_sojourn_us: 0,
            last_drop_us: None,
            last_departure_us: None,
            drops: 0,
            forwarded: 0,
            aqm_drops: 0,
            ecn_marks: 0,
            qdelay_sum_us: 0,
            qdelay_samples: 0,
            qdelay_max_us: 0,
        }
    }

    /// Snapshot the AQM-visible state for a decision about a packet of
    /// `pkt_size` bytes that has been queued since `enq_us` (equal to `now`
    /// at the enqueue hook, so its sojourn is 0 there).
    fn aqm_view(&self, now: u64, pkt_size: u32, enq_us: u64) -> AqmView {
        AqmView {
            now_us: now,
            pkt_size,
            sojourn_us: now.saturating_sub(enq_us),
            backlog_bytes: self.queued_bytes,
            backlog_pkts: self.queue.len() as u64,
            capacity_bytes: self.cfg.queue_bytes,
            drain_rate_bps: self.drain_rate_bps,
            ewma_sojourn_us: self.ewma_sojourn_us,
            since_drop_us: now.saturating_sub(self.last_drop_us.unwrap_or(0)),
            drops: self.aqm_drops,
        }
    }

    fn record_aqm_signal(&mut self, now: u64, marked: bool) {
        self.aqm_drops += 1;
        if marked {
            self.ecn_marks += 1;
        }
        self.last_drop_us = Some(now);
    }

    /// Offer a packet. Returns `true` if accepted; on acceptance, if the
    /// transmitter was idle the caller must schedule the first completion
    /// ([`Bottleneck::start_tx`]). The byte bound is checked first (a full
    /// buffer tail-drops regardless of policy), then the AQM's enqueue hook
    /// may refuse or CE-mark the packet.
    pub fn enqueue(&mut self, mut pkt: QueuedPacket) -> bool {
        if self.queued_bytes + pkt.size as u64 > self.cfg.queue_bytes {
            self.drops += 1;
            return false;
        }
        let view = self.aqm_view(pkt.enq_us, pkt.size, pkt.enq_us);
        match self.aqm.on_enqueue(&view) {
            AqmDecision::Drop => {
                self.record_aqm_signal(pkt.enq_us, false);
                return false;
            }
            AqmDecision::Mark => {
                self.record_aqm_signal(pkt.enq_us, true);
                pkt.ecn_ce = true;
            }
            AqmDecision::Pass => {}
        }
        self.queued_bytes += pkt.size as u64;
        self.queue.push_back(pkt);
        true
    }

    /// Begin serializing the head packet if idle; returns the completion
    /// delay (µs) to schedule, if transmission started. The AQM's dequeue
    /// hook is consulted per head: `Drop` discards it and moves to the next
    /// head, `Mark` sets CE and serializes.
    pub fn start_tx(&mut self, now: u64) -> Option<u64> {
        if self.busy {
            return None;
        }
        loop {
            let head = self.queue.front()?;
            let view = self.aqm_view(now, head.size, head.enq_us);
            match self.aqm.on_dequeue(&view) {
                AqmDecision::Drop => {
                    let dropped = self.queue.pop_front().expect("head vanished");
                    self.queued_bytes -= dropped.size as u64;
                    self.record_aqm_signal(now, false);
                }
                AqmDecision::Mark => {
                    self.record_aqm_signal(now, true);
                    let head = self.queue.front_mut().expect("head vanished");
                    head.ecn_ce = true;
                    self.busy = true;
                    return Some(self.cfg.tx_time_us(head.size));
                }
                AqmDecision::Pass => {
                    self.busy = true;
                    return Some(self.cfg.tx_time_us(head.size));
                }
            }
        }
    }

    /// Serialization of the head packet finished at `now`; returns the
    /// departed packet. Caller schedules its arrival after the propagation
    /// delay, then calls [`Bottleneck::start_tx`] again for the next one.
    pub fn tx_done(&mut self, now: u64) -> QueuedPacket {
        debug_assert!(self.busy);
        self.busy = false;
        let pkt = self.queue.pop_front().expect("tx_done with empty queue");
        self.queued_bytes -= pkt.size as u64;
        self.forwarded += 1;
        // queuing delay = waiting + serialization
        let qd = now.saturating_sub(pkt.enq_us);
        self.qdelay_sum_us += qd;
        self.qdelay_samples += 1;
        self.qdelay_max_us = self.qdelay_max_us.max(qd);
        self.ewma_sojourn_us = (7 * self.ewma_sojourn_us + qd) / 8;
        // drain-rate EWMA from the inter-departure gap
        if let Some(prev) = self.last_departure_us {
            let dt = now.saturating_sub(prev).max(1);
            let sample = pkt.size as u64 * 8 * 1_000_000 / dt;
            self.drain_rate_bps = ((7 * self.drain_rate_bps + sample) / 8).max(1);
        }
        self.last_departure_us = Some(now);
        pkt
    }

    /// Bytes currently enqueued.
    pub fn backlog_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Packets currently enqueued (instantaneous occupancy).
    pub fn backlog_pkts(&self) -> u64 {
        self.queue.len() as u64
    }

    /// Sojourn time of the head-of-line packet at `now`, µs (`None` when
    /// the queue is empty) — the per-packet delay signal AQMs key on.
    pub fn head_sojourn_us(&self, now: u64) -> Option<u64> {
        self.queue.front().map(|p| now.saturating_sub(p.enq_us))
    }

    /// EWMA-smoothed packet sojourn time over forwarded packets, µs.
    pub fn ewma_sojourn_us(&self) -> u64 {
        self.ewma_sojourn_us
    }

    /// EWMA-smoothed drain-rate estimate, bits/sec.
    pub fn drain_rate_bps(&self) -> u64 {
        self.drain_rate_bps
    }

    /// Packets dropped or CE-marked by the AQM policy (excludes byte-bound
    /// tail drops, which are in [`Bottleneck::drops`]).
    pub fn aqm_drops(&self) -> u64 {
        self.aqm_drops
    }

    /// Packets CE-marked by the AQM policy.
    pub fn ecn_marks(&self) -> u64 {
        self.ecn_marks
    }

    /// Mean queuing delay over all forwarded packets, µs.
    pub fn mean_qdelay_us(&self) -> f64 {
        if self.qdelay_samples == 0 {
            0.0
        } else {
            self.qdelay_sum_us as f64 / self.qdelay_samples as f64
        }
    }

    /// Maximum observed queuing delay, µs.
    pub fn max_qdelay_us(&self) -> u64 {
        self.qdelay_max_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64, size: u32, enq: u64) -> QueuedPacket {
        QueuedPacket { flow: 0, seq, size, enq_us: enq, ecn_ce: false }
    }

    #[test]
    fn paper_link_parameters() {
        let l = LinkCfg::paper_link();
        assert_eq!(l.rate_bps, 12_000_000);
        assert_eq!(l.delay_us, 20_000);
        assert_eq!(l.bdp_bytes(), 60_000);
        assert_eq!(l.queue_bytes, 60_000);
        // 1500 B at 12 Mbps = 1 ms
        assert_eq!(l.tx_time_us(1500), 1_000);
    }

    #[test]
    fn fifo_order_and_accounting() {
        let mut b = Bottleneck::new(LinkCfg::paper_link());
        assert!(b.enqueue(pkt(1, 1500, 0)));
        assert!(b.enqueue(pkt(2, 1500, 0)));
        let d = b.start_tx(0).unwrap();
        assert_eq!(d, 1_000);
        let p = b.tx_done(1_000);
        assert_eq!(p.seq, 1);
        assert_eq!(b.backlog_bytes(), 1500);
        let d = b.start_tx(1_000).unwrap();
        let p = b.tx_done(1_000 + d);
        assert_eq!(p.seq, 2);
        assert_eq!(b.backlog_bytes(), 0);
        assert!(b.start_tx(2_000).is_none());
        assert_eq!(b.forwarded, 2);
    }

    #[test]
    fn drop_tail_when_full() {
        let cfg = LinkCfg { rate_bps: 1_000_000, delay_us: 1_000, queue_bytes: 3_000 };
        let mut b = Bottleneck::new(cfg);
        assert!(b.enqueue(pkt(1, 1500, 0)));
        assert!(b.enqueue(pkt(2, 1500, 0)));
        assert!(!b.enqueue(pkt(3, 1500, 0)), "third packet must be tail-dropped");
        assert_eq!(b.drops, 1);
        assert_eq!(b.aqm_drops(), 0, "tail drop is not an AQM drop");
        assert_eq!(b.backlog_bytes(), 3_000);
    }

    #[test]
    fn qdelay_accounting() {
        let mut b = Bottleneck::new(LinkCfg::paper_link());
        b.enqueue(pkt(1, 1500, 0));
        b.start_tx(0).unwrap();
        b.tx_done(1_000); // waited 0 + tx 1000
        b.enqueue(pkt(2, 1500, 1_000));
        b.start_tx(1_000).unwrap();
        b.tx_done(3_000); // waited 1000 + tx 1000
        assert_eq!(b.mean_qdelay_us(), 1_500.0);
        assert_eq!(b.max_qdelay_us(), 2_000);
    }

    #[test]
    fn busy_transmitter_not_restarted() {
        let mut b = Bottleneck::new(LinkCfg::paper_link());
        b.enqueue(pkt(1, 1500, 0));
        assert!(b.start_tx(0).is_some());
        b.enqueue(pkt(2, 1500, 10));
        assert!(b.start_tx(10).is_none(), "must not preempt in-flight serialization");
    }

    #[test]
    fn occupancy_and_sojourn_accessors() {
        let mut b = Bottleneck::new(LinkCfg::paper_link());
        assert_eq!(b.backlog_pkts(), 0);
        assert_eq!(b.head_sojourn_us(0), None, "empty queue has no head");
        b.enqueue(pkt(1, 1500, 100));
        b.enqueue(pkt(2, 500, 300));
        assert_eq!(b.backlog_pkts(), 2);
        assert_eq!(b.backlog_bytes(), 2_000);
        // head is packet 1, enqueued at 100
        assert_eq!(b.head_sojourn_us(100), Some(0));
        assert_eq!(b.head_sojourn_us(2_600), Some(2_500));
        b.start_tx(2_600).unwrap();
        b.tx_done(3_600);
        // head is now packet 2, enqueued at 300
        assert_eq!(b.backlog_pkts(), 1);
        assert_eq!(b.head_sojourn_us(3_600), Some(3_300));
    }

    #[test]
    fn ewma_sojourn_tracks_forwarded_packets() {
        let mut b = Bottleneck::new(LinkCfg::paper_link());
        assert_eq!(b.ewma_sojourn_us(), 0);
        for i in 0..20 {
            b.enqueue(pkt(i, 1500, i * 1_000));
            b.start_tx(i * 1_000).unwrap();
            b.tx_done(i * 1_000 + 8_000); // constant 8 ms sojourn
        }
        let e = b.ewma_sojourn_us();
        assert!(e > 6_000 && e <= 8_000, "EWMA should converge near 8 ms, got {e}");
    }

    #[test]
    fn drain_rate_converges_to_line_rate() {
        let mut b = Bottleneck::new(LinkCfg::paper_link());
        assert_eq!(b.drain_rate_bps(), 12_000_000, "initialized to the line rate");
        let mut now = 0;
        for i in 0..50 {
            b.enqueue(pkt(i, 1500, now));
            let d = b.start_tx(now).unwrap();
            now += d;
            b.tx_done(now); // back-to-back departures at exactly line rate
        }
        let r = b.drain_rate_bps();
        assert!(
            (r as i64 - 12_000_000i64).abs() < 1_000_000,
            "drain rate should track 12 Mbps, got {r}"
        );
    }

    /// Policy that drops every `n`-th dequeue and marks every `m`-th.
    struct EveryNth {
        n: u64,
        seen: u64,
    }
    impl AqmPolicy for EveryNth {
        fn name(&self) -> &str {
            "every-nth"
        }
        fn on_enqueue(&mut self, _v: &AqmView) -> AqmDecision {
            AqmDecision::Pass
        }
        fn on_dequeue(&mut self, _v: &AqmView) -> AqmDecision {
            self.seen += 1;
            if self.seen.is_multiple_of(self.n) {
                AqmDecision::Drop
            } else {
                AqmDecision::Pass
            }
        }
    }

    #[test]
    fn dequeue_drop_skips_to_next_head() {
        // A policy that drops the first head but passes the second: the
        // dequeue loop must discard and re-consult in one start_tx call.
        let mut b = Bottleneck::with_aqm(
            LinkCfg::paper_link(),
            Box::new(EveryNth { n: 2, seen: 1 }), // consults 2, 4, … drop
        );
        b.enqueue(pkt(1, 1500, 0));
        b.enqueue(pkt(2, 1500, 0));
        let d = b.start_tx(1_000);
        assert!(d.is_some(), "second head must serialize after first is dropped");
        assert_eq!(b.aqm_drops(), 1);
        assert_eq!(b.tx_done(2_000).seq, 2, "head 1 was AQM-dropped");
        assert_eq!(b.backlog_bytes(), 0);
    }

    #[test]
    fn dequeue_drop_can_drain_whole_queue() {
        let mut b =
            Bottleneck::with_aqm(LinkCfg::paper_link(), Box::new(EveryNth { n: 1, seen: 0 }));
        for i in 0..5 {
            b.enqueue(pkt(i, 1500, 0));
        }
        assert!(b.start_tx(1_000).is_none(), "all heads dropped, nothing to send");
        assert_eq!(b.aqm_drops(), 5);
        assert_eq!(b.backlog_bytes(), 0);
    }

    /// Policy that marks everything on enqueue.
    struct MarkAll;
    impl AqmPolicy for MarkAll {
        fn name(&self) -> &str {
            "mark-all"
        }
        fn on_enqueue(&mut self, _v: &AqmView) -> AqmDecision {
            AqmDecision::Mark
        }
        fn on_dequeue(&mut self, _v: &AqmView) -> AqmDecision {
            AqmDecision::Pass
        }
    }

    #[test]
    fn mark_sets_ce_bit() {
        let mut b = Bottleneck::with_aqm(LinkCfg::paper_link(), Box::new(MarkAll));
        assert!(b.enqueue(pkt(1, 1500, 0)));
        b.start_tx(0).unwrap();
        let p = b.tx_done(1_000);
        assert!(p.ecn_ce, "CE must survive to departure");
        assert_eq!(b.ecn_marks(), 1);
        assert_eq!(b.aqm_drops(), 1, "marks count as AQM signals");
        assert_eq!(b.forwarded, 1, "marked packets still forward");
    }
}
