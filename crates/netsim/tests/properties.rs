//! Property tests on the network simulator: for *any* congestion
//! controller — including adversarially erratic ones — the transport and
//! link must uphold conservation and bounds invariants.

use policysmith_netsim::{CcView, CongestionControl, LinkCfg, SimConfig, Simulation};
use proptest::prelude::*;

/// A controller that replays an arbitrary cwnd sequence — the worst case
/// for transport invariants (wild oscillation, window collapse, bursts).
struct ErraticCc {
    seq: Vec<u64>,
    i: usize,
}

impl CongestionControl for ErraticCc {
    fn name(&self) -> &str {
        "erratic"
    }
    fn on_ack(&mut self, _v: &CcView<'_>) -> u64 {
        self.i = (self.i + 1) % self.seq.len();
        self.seq[self.i]
    }
    fn on_loss(&mut self, _v: &CcView<'_>) -> u64 {
        self.i = (self.i + 1) % self.seq.len();
        self.seq[self.i] / 2
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transport_invariants_hold_for_any_controller(
        seq in proptest::collection::vec(1u64..300, 1..12),
        rate_mbps in 2u64..50,
        delay_ms in 1u64..60,
        buf_frac in 1u64..4,
    ) {
        let link = LinkCfg {
            rate_bps: rate_mbps * 1_000_000,
            delay_us: delay_ms * 1_000,
            queue_bytes: (rate_mbps * 1_000_000 / 8 * 2 * delay_ms / 1_000).max(3_000) / buf_frac,
        };
        let cfg = SimConfig { link, duration_us: 3_000_000, mss: 1_500, timer_period_us: 5_000 };
        let mut sim = Simulation::new(cfg, vec![Box::new(ErraticCc { seq, i: 0 })]);
        let m = sim.run().remove(0);

        // conservation / bounds. Serialization times floor to whole µs, so
        // the effective rate can exceed nominal by up to one µs per packet
        // (~mss/tx_time relative) — allow that rounding in the bound.
        prop_assert!(m.utilization >= 0.0 && m.utilization <= 1.0);
        let capacity_bytes = link.rate_bps / 8 * cfg.duration_us / 1_000_000;
        let tx_us = link.tx_time_us(1_500);
        let slop = capacity_bytes / tx_us.max(1) + 3 * 1_500;
        prop_assert!(
            m.delivered_bytes <= capacity_bytes + slop,
            "delivered {} > capacity {} + slop {}", m.delivered_bytes, capacity_bytes, slop
        );
        // queuing delay can never exceed buffer drain time + one packet tx
        let max_qdelay_bound =
            link.queue_bytes * 8 * 1_000_000 / link.rate_bps + link.tx_time_us(1_500) + 1;
        prop_assert!(
            sim.mean_qdelay_us() <= max_qdelay_bound as f64,
            "mean qdelay {} > bound {}", sim.mean_qdelay_us(), max_qdelay_bound
        );
        prop_assert!(sim.max_qdelay_us() <= max_qdelay_bound);
        // RTT can never be observed below the propagation floor
        if m.min_rtt_us > 0 {
            prop_assert!(m.min_rtt_us >= 2 * link.delay_us);
        }
    }

    #[test]
    fn simulation_is_deterministic(
        seq in proptest::collection::vec(2u64..100, 1..6),
    ) {
        let run = |seq: Vec<u64>| {
            let mut cfg = SimConfig::paper_scenario();
            cfg.duration_us = 2_000_000;
            let mut sim = Simulation::new(cfg, vec![Box::new(ErraticCc { seq, i: 0 })]);
            (sim.run().remove(0), sim.drops())
        };
        prop_assert_eq!(run(seq.clone()), run(seq));
    }
}
