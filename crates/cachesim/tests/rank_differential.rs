//! Differential property tests for the eviction-ranking optimization: the
//! slab + lazy-deletion heap must be observationally identical to the
//! original `BTreeSet` index — same minima after every operation, and
//! byte-identical eviction sequences when both rank the priority-template
//! host on randomized traces (including `(score, id)` tie-breaks and the
//! latched-fault keep-previous-score path).

use policysmith_cachesim::engine::{Cache, CacheView, ObjId, Policy};
use policysmith_cachesim::rank::{BTreeRank, EvictionRank, HeapRank};
use policysmith_cachesim::PriorityPolicy;
use policysmith_traces::{OpKind, Request, Trace};
use proptest::prelude::*;

/// Arbitrary well-formed trace: bounded object universe so reuse and
/// re-insertion after eviction both happen; sizes stable per object.
fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    proptest::collection::vec(0u64..48, 8..max_len).prop_map(|objs| {
        let requests = objs
            .into_iter()
            .enumerate()
            .map(|(i, obj)| Request {
                time_us: i as u64 * 100,
                obj,
                size: 64 + (obj as u32 * 131) % 512,
                op: OpKind::Read,
            })
            .collect();
        Trace::new("rank-diff", requests)
    })
}

/// The hosted expressions under differential test. `1` makes every score a
/// tie (pure id-order eviction); the `cache.objects` division exercises
/// the latched-fault path (the object keeps its previous score, new
/// objects get `i64::MIN`).
const EXPRS: &[&str] = &[
    "1",
    "obj.last_access",
    "obj.count * 20 - obj.age / 300 - obj.size / 500",
    "if(hist.contains, hist.count * 10 + 50, 0) + obj.last_access",
    "100 / (cache.objects - 3)",
];

/// Policy wrapper recording the exact eviction order.
struct EvictLog<P: Policy> {
    inner: P,
    log: Vec<ObjId>,
}

impl<P: Policy> Policy for EvictLog<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn on_hit(&mut self, id: ObjId, view: &CacheView<'_>) {
        self.inner.on_hit(id, view)
    }
    fn on_miss(&mut self, id: ObjId, view: &CacheView<'_>) {
        self.inner.on_miss(id, view)
    }
    fn victim(&mut self, view: &CacheView<'_>) -> ObjId {
        self.inner.victim(view)
    }
    fn on_evict(&mut self, id: ObjId, view: &CacheView<'_>) {
        self.log.push(id);
        self.inner.on_evict(id, view)
    }
    fn on_insert(&mut self, id: ObjId, view: &CacheView<'_>) {
        self.inner.on_insert(id, view)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Structure level: drive both indexes with one op sequence and
    /// demand identical observable state after every step.
    #[test]
    fn rank_ops_agree_with_reference(
        ops in proptest::collection::vec((0u8..3, 0u64..24, -50i64..50), 1..300),
    ) {
        let mut heap = HeapRank::new();
        let mut btree = BTreeRank::new();
        for (op, id, score) in ops {
            match op {
                0 => {
                    heap.set(id, score);
                    btree.set(id, score);
                }
                1 => {
                    prop_assert_eq!(heap.remove(id), btree.remove(id));
                }
                _ => {
                    // evict-min, the host's victim step
                    if let Some((_, victim)) = btree.peek_min() {
                        prop_assert_eq!(heap.peek_min(), btree.peek_min());
                        heap.remove(victim);
                        btree.remove(victim);
                    }
                }
            }
            prop_assert_eq!(heap.peek_min(), btree.peek_min());
            prop_assert_eq!(heap.len(), btree.len());
            prop_assert_eq!(heap.get(id), btree.get(id));
        }
        // full drain: the complete eviction order must match
        while let Some(min) = btree.peek_min() {
            prop_assert_eq!(heap.peek_min(), Some(min));
            heap.remove(min.1);
            btree.remove(min.1);
        }
        prop_assert!(heap.is_empty());
    }

    /// Host level: whole-trace replays through the heap-ranked and
    /// BTree-ranked template hosts produce byte-identical eviction
    /// sequences and simulation results.
    #[test]
    fn eviction_sequences_identical_on_randomized_traces(
        trace in arb_trace(400),
        cap_objs in 2u64..16,
        expr_ix in 0usize..EXPRS.len(),
    ) {
        let expr = policysmith_dsl::parse(EXPRS[expr_ix]).unwrap();
        let capacity = cap_objs * 300;
        let run = |btree: bool| {
            let host = PriorityPolicy::from_expr("diff", &expr);
            let host = if btree { host.use_btree_ranking() } else { host };
            let mut cache = Cache::new(capacity, EvictLog { inner: host, log: Vec::new() });
            let result = cache.run(&trace);
            let faulted = cache.policy.inner.first_error().is_some();
            (result, cache.policy.log, faulted)
        };
        let (heap_res, heap_log, heap_fault) = run(false);
        let (btree_res, btree_log, btree_fault) = run(true);
        prop_assert_eq!(heap_res, btree_res, "results diverged on `{}`", EXPRS[expr_ix]);
        prop_assert_eq!(heap_log, btree_log, "eviction order diverged on `{}`", EXPRS[expr_ix]);
        prop_assert_eq!(heap_fault, btree_fault);
    }
}
