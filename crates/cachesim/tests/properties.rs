//! Property tests on the cache engine and every baseline policy:
//!
//! 1. **No panics, exact accounting** on arbitrary request streams — the
//!    engine panics if a policy ever returns a non-resident victim, so
//!    completing a run proves the victim contract for every policy.
//! 2. **Capacity is never exceeded.**
//! 3. **Determinism** — same stream, same result.
//! 4. The **template host** upholds the same contract for arbitrary
//!    checker-clean priority expressions (including ones that fault at
//!    runtime: the latched-error path must not corrupt the simulation).

use policysmith_cachesim::{policies, Cache, PriorityPolicy};
use policysmith_traces::{OpKind, Request, Trace};
use proptest::prelude::*;

/// Arbitrary well-formed trace: bounded object universe so reuse happens,
/// sizes in a realistic band, monotone timestamps.
fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0u64..60, 64u32..4_096), 1..max_len).prop_map(|reqs| {
        let requests = reqs
            .into_iter()
            .enumerate()
            .map(|(i, (obj, size_seed))| Request {
                time_us: i as u64 * 100,
                obj,
                // size stable per object (engine requirement in practice)
                size: 64 + (obj as u32 * 131) % size_seed.max(65),
                op: OpKind::Read,
            })
            .collect();
        Trace::new("prop", requests)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_baseline_upholds_engine_invariants(
        trace in arb_trace(400),
        cap_objs in 2u64..20,
    ) {
        let capacity = cap_objs * 1_000;
        for name in policies::all_baseline_names() {
            let mut cache = Cache::new(capacity, policies::by_name(name).unwrap());
            let r = cache.run(&trace);
            prop_assert_eq!(r.requests, trace.len() as u64, "{}", name);
            prop_assert_eq!(r.hits + r.misses, r.requests, "{}", name);
            prop_assert!(cache.used_bytes() <= capacity, "{} over capacity", name);
            prop_assert!(r.miss_ratio() <= 1.0, "{}", name);
        }
    }

    #[test]
    fn baselines_are_deterministic(trace in arb_trace(300)) {
        for name in ["LeCaR", "CACHEUS", "LHD", "S3-FIFO"] {
            let run = || {
                Cache::new(5_000, policies::by_name(name).unwrap()).run(&trace)
            };
            prop_assert_eq!(run(), run(), "{}", name);
        }
    }

    #[test]
    fn template_host_upholds_invariants_even_when_faulting(
        trace in arb_trace(300),
        use_faulty in any::<bool>(),
    ) {
        // A valid heuristic and one that can divide by zero at runtime.
        let src = if use_faulty {
            "obj.count * 100 / max(cache.objects - 3, 0 - 10)" // hits 0 at 3 residents
        } else {
            "obj.count * 20 - obj.age / 300 - obj.size / 500"
        };
        let expr = policysmith_dsl::parse(src).unwrap();
        let mut cache = Cache::new(4_000, PriorityPolicy::from_expr("prop", &expr));
        let r = cache.run(&trace);
        prop_assert_eq!(r.requests, trace.len() as u64);
        prop_assert!(cache.used_bytes() <= 4_000);
    }

    #[test]
    fn hit_counts_agree_with_reference_lru(trace in arb_trace(300)) {
        // Cross-validate the intrusive-list LRU against a simple
        // VecDeque reference model.
        let capacity = 3_000u64;
        let fast = Cache::new(capacity, policies::Lru::new()).run(&trace);

        let mut order: Vec<u64> = Vec::new(); // front = MRU
        let mut sizes: std::collections::HashMap<u64, u64> = Default::default();
        let mut used = 0u64;
        let mut hits = 0u64;
        for req in &trace.requests {
            if sizes.contains_key(&req.obj) {
                hits += 1;
                order.retain(|&o| o != req.obj);
                order.insert(0, req.obj);
            } else if (req.size as u64) <= capacity {
                while used + req.size as u64 > capacity {
                    let victim = order.pop().unwrap();
                    used -= sizes.remove(&victim).unwrap();
                }
                order.insert(0, req.obj);
                sizes.insert(req.obj, req.size as u64);
                used += req.size as u64;
            }
        }
        prop_assert_eq!(fast.hits, hits);
    }
}
