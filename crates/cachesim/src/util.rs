//! Shared policy building blocks.
//!
//! * [`LinkedQueue`] — an arena-backed intrusive doubly-linked list with a
//!   key index: O(1) push/pop/remove/move at either end, plus neighbour
//!   queries for hand-based policies (SIEVE, Clock). This is the workhorse
//!   of every recency-ordered baseline.
//! * [`OrderedF64`] — total order for non-NaN floats, for priority-ordered
//!   policies (GDSF, LHD).
//! * [`IdMap`] — a `HashMap` with a fast deterministic hasher for object
//!   ids, used on every per-request path.

use std::collections::HashMap;

/// splitmix64-finalizing hasher for `u64` object ids. The simulator hashes
/// ids several times per request (engine object table, ranking index,
/// aggregate/history trackers); the std SipHash is a measurable fraction
/// of that hot path and its DoS resistance buys nothing against trace
/// files. Deterministic across runs and platforms, so simulations stay
/// reproducible. Only used with integer keys — the byte-stream fallback
/// exists for trait completeness.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        let mut x = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = x ^ (x >> 31);
    }
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`IdHasher`].
pub type IdBuildHasher = std::hash::BuildHasherDefault<IdHasher>;

/// A `HashMap` keyed by object ids with the fast deterministic hasher.
pub type IdMap<K, V> = HashMap<K, V, IdBuildHasher>;

/// Arena node.
#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    prev: Option<usize>,
    next: Option<usize>,
}

/// A doubly-linked queue of unique `u64` keys with O(1) membership,
/// removal, and repositioning. "Front" and "back" are arbitrary ends —
/// policies document their own orientation (e.g. LRU: front = most recent).
#[derive(Debug, Default, Clone)]
pub struct LinkedQueue {
    nodes: Vec<Node>,
    free: Vec<usize>,
    index: IdMap<u64, usize>,
    head: Option<usize>,
    tail: Option<usize>,
}

impl LinkedQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Is `key` present?
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Key at the front, if any.
    pub fn front(&self) -> Option<u64> {
        self.head.map(|i| self.nodes[i].key)
    }

    /// Key at the back, if any.
    pub fn back(&self) -> Option<u64> {
        self.tail.map(|i| self.nodes[i].key)
    }

    fn alloc(&mut self, key: u64) -> usize {
        let node = Node { key, prev: None, next: None };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    /// Insert `key` at the front. Panics if already present.
    pub fn push_front(&mut self, key: u64) {
        assert!(!self.contains(key), "duplicate key {key}");
        let i = self.alloc(key);
        self.nodes[i].next = self.head;
        if let Some(h) = self.head {
            self.nodes[h].prev = Some(i);
        }
        self.head = Some(i);
        if self.tail.is_none() {
            self.tail = Some(i);
        }
        self.index.insert(key, i);
    }

    /// Insert `key` at the back. Panics if already present.
    pub fn push_back(&mut self, key: u64) {
        assert!(!self.contains(key), "duplicate key {key}");
        let i = self.alloc(key);
        self.nodes[i].prev = self.tail;
        if let Some(t) = self.tail {
            self.nodes[t].next = Some(i);
        }
        self.tail = Some(i);
        if self.head.is_none() {
            self.head = Some(i);
        }
        self.index.insert(key, i);
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        match prev {
            Some(p) => self.nodes[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(nx) => self.nodes[nx].prev = prev,
            None => self.tail = prev,
        }
        self.nodes[i].prev = None;
        self.nodes[i].next = None;
    }

    /// Remove `key`; returns whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.index.remove(&key) {
            Some(i) => {
                self.unlink(i);
                self.free.push(i);
                true
            }
            None => false,
        }
    }

    /// Remove and return the front key.
    pub fn pop_front(&mut self) -> Option<u64> {
        let key = self.front()?;
        self.remove(key);
        Some(key)
    }

    /// Remove and return the back key.
    pub fn pop_back(&mut self) -> Option<u64> {
        let key = self.back()?;
        self.remove(key);
        Some(key)
    }

    /// Move an existing key to the front. Panics if absent.
    pub fn move_to_front(&mut self, key: u64) {
        let i = *self.index.get(&key).expect("move_to_front of absent key");
        if self.head == Some(i) {
            return;
        }
        self.unlink(i);
        self.nodes[i].next = self.head;
        if let Some(h) = self.head {
            self.nodes[h].prev = Some(i);
        }
        self.head = Some(i);
        if self.tail.is_none() {
            self.tail = Some(i);
        }
    }

    /// Move an existing key to the back. Panics if absent.
    pub fn move_to_back(&mut self, key: u64) {
        let i = *self.index.get(&key).expect("move_to_back of absent key");
        if self.tail == Some(i) {
            return;
        }
        self.unlink(i);
        self.nodes[i].prev = self.tail;
        if let Some(t) = self.tail {
            self.nodes[t].next = Some(i);
        }
        self.tail = Some(i);
        if self.head.is_none() {
            self.head = Some(i);
        }
    }

    /// Neighbour of `key` toward the front.
    pub fn prev_of(&self, key: u64) -> Option<u64> {
        let i = *self.index.get(&key)?;
        self.nodes[i].prev.map(|p| self.nodes[p].key)
    }

    /// Neighbour of `key` toward the back.
    pub fn next_of(&self, key: u64) -> Option<u64> {
        let i = *self.index.get(&key)?;
        self.nodes[i].next.map(|nx| self.nodes[nx].key)
    }

    /// Iterate keys front → back.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        LinkedQueueIter { q: self, cur: self.head }
    }
}

struct LinkedQueueIter<'a> {
    q: &'a LinkedQueue,
    cur: Option<usize>,
}

impl Iterator for LinkedQueueIter<'_> {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        let i = self.cur?;
        self.cur = self.q.nodes[i].next;
        Some(self.q.nodes[i].key)
    }
}

/// A totally-ordered `f64` (panics on NaN at construction). Lets priority
/// policies keep `BTreeSet<(OrderedF64, ObjId)>` rankings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wrap a non-NaN float.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "OrderedF64 cannot hold NaN");
        OrderedF64(v)
    }

    /// Unwrap.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("no NaN by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_orientation() {
        let mut q = LinkedQueue::new();
        q.push_front(1);
        q.push_front(2);
        q.push_back(3);
        // order: 2, 1, 3
        assert_eq!(q.front(), Some(2));
        assert_eq!(q.back(), Some(3));
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![2, 1, 3]);
        assert_eq!(q.pop_front(), Some(2));
        assert_eq!(q.pop_back(), Some(3));
        assert_eq!(q.pop_back(), Some(1));
        assert_eq!(q.pop_back(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn remove_and_reuse() {
        let mut q = LinkedQueue::new();
        for k in 0..10 {
            q.push_back(k);
        }
        assert!(q.remove(5));
        assert!(!q.remove(5));
        assert!(!q.contains(5));
        assert_eq!(q.len(), 9);
        // arena slot is recycled
        q.push_back(100);
        assert_eq!(q.len(), 10);
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 6, 7, 8, 9, 100]);
    }

    #[test]
    fn move_operations() {
        let mut q = LinkedQueue::new();
        for k in 0..5 {
            q.push_back(k);
        }
        q.move_to_front(3);
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![3, 0, 1, 2, 4]);
        q.move_to_back(3);
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![0, 1, 2, 4, 3]);
        // no-ops on already-positioned keys
        q.move_to_front(0);
        q.move_to_back(3);
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![0, 1, 2, 4, 3]);
    }

    #[test]
    fn neighbours() {
        let mut q = LinkedQueue::new();
        for k in [10, 20, 30] {
            q.push_back(k);
        }
        assert_eq!(q.prev_of(20), Some(10));
        assert_eq!(q.next_of(20), Some(30));
        assert_eq!(q.prev_of(10), None);
        assert_eq!(q.next_of(30), None);
        assert_eq!(q.prev_of(99), None);
    }

    #[test]
    fn singleton_edge_cases() {
        let mut q = LinkedQueue::new();
        q.push_back(7);
        q.move_to_front(7);
        q.move_to_back(7);
        assert_eq!(q.front(), Some(7));
        assert_eq!(q.back(), Some(7));
        assert_eq!(q.pop_front(), Some(7));
        assert!(q.is_empty());
        assert_eq!(q.front(), None);
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn duplicate_panics() {
        let mut q = LinkedQueue::new();
        q.push_back(1);
        q.push_front(1);
    }

    #[test]
    fn ordered_f64_ordering() {
        let mut v = [OrderedF64::new(3.5), OrderedF64::new(-1.0), OrderedF64::new(0.0)];
        v.sort();
        assert_eq!(v.iter().map(|x| x.get()).collect::<Vec<_>>(), vec![-1.0, 0.0, 3.5]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ordered_f64_rejects_nan() {
        OrderedF64::new(f64::NAN);
    }
}
