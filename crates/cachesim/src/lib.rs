//! # policysmith-cachesim — the web-cache simulation substrate
//!
//! A from-scratch, libCacheSim-style cache simulator (substitution S3 in
//! DESIGN.md): the paper's §4 prototype evaluates candidate heuristics by
//! replaying block-I/O traces through an event-driven cache, comparing
//! against fourteen baseline eviction algorithms.
//!
//! * [`engine`] — residency + byte accounting + the [`Policy`] trait; one
//!   simulation is a pure function of `(trace, capacity, policy)`.
//! * [`policies`] — sixteen from-scratch baselines (the paper's fourteen
//!   plus ARC and 2Q).
//! * [`psq`] — the PolicySmith priority-queue **template host**: runs a
//!   synthesized `priority()` expression over the Table-1 feature set.
//! * [`rank`] — the host's eviction-ranking index: a slab + lazy-deletion
//!   heap on the hot path, with the original `BTreeSet` kept as the
//!   differential reference.
//! * [`features`] — percentile aggregates and eviction history backing the
//!   template.
//! * [`paper_a`] — the paper's Listing 1 embedded as a runnable policy.
//!
//! ```
//! use policysmith_cachesim::{simulate, policies::Lru};
//! use policysmith_traces::{generate, WorkloadParams};
//!
//! let trace = generate("demo", &WorkloadParams::default(), 7, 5_000);
//! let cap = policysmith_traces::footprint_bytes(&trace) / 10;
//! let result = simulate(&trace, cap.max(1), Lru::new());
//! assert!(result.miss_ratio() > 0.0 && result.miss_ratio() <= 1.0);
//! ```

pub mod engine;
pub mod features;
pub mod paper_a;
pub mod policies;
pub mod psq;
pub mod rank;
pub mod util;

pub use engine::{simulate, Cache, CacheView, ObjId, ObjMeta, Policy, SimResult};
pub use paper_a::{paper_heuristic_a, LISTING1_SOURCE};
pub use psq::{lfu_seed, lru_seed, PriorityPolicy};

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_hit(&mut self, id: ObjId, view: &CacheView<'_>) {
        (**self).on_hit(id, view)
    }
    fn on_miss(&mut self, id: ObjId, view: &CacheView<'_>) {
        (**self).on_miss(id, view)
    }
    fn victim(&mut self, view: &CacheView<'_>) -> ObjId {
        (**self).victim(view)
    }
    fn on_evict(&mut self, id: ObjId, view: &CacheView<'_>) {
        (**self).on_evict(id, view)
    }
    fn on_insert(&mut self, id: ObjId, view: &CacheView<'_>) {
        (**self).on_insert(id, view)
    }
}
