//! Table-1 feature infrastructure for the template host: percentile
//! aggregates over the resident set and the recent-eviction history.
//!
//! §4.1.2 of the paper requires the `priority()` function to see
//! "percentiles over access counts, ages, or sizes of all objects in
//! cache". Maintaining exact order statistics under every access would
//! dominate runtime, so the tracker keeps a deterministic random sample of
//! residents and refreshes sorted snapshots every
//! `AggregateTracker::refresh_interval` accesses — the same
//! approximation a production host would make (the paper itself flags the
//! template's overhead question in §4.1.2). Ages are derived from
//! last-access snapshots at *query* time, so they stay current between
//! refreshes.

use crate::engine::{CacheView, ObjId};
use crate::util::IdMap;
use std::collections::VecDeque;

/// Maximum residents sampled per snapshot refresh.
const SNAPSHOT_SAMPLE: usize = 256;

/// Sampled percentile snapshots over the resident population.
#[derive(Debug, Default, Clone)]
pub struct AggregateTracker {
    residents: Vec<ObjId>,
    slot: IdMap<ObjId, usize>,
    /// Sorted access counts of the sampled residents.
    counts: Vec<u64>,
    /// Sorted last-access vtimes of the sampled residents.
    last_access: Vec<u64>,
    /// Sorted sizes of the sampled residents.
    sizes: Vec<u64>,
    accesses_since_refresh: u64,
    refresh_interval: u64,
    rng_state: u64,
}

impl AggregateTracker {
    /// Tracker refreshing every `refresh_interval` accesses.
    pub fn new(refresh_interval: u64) -> Self {
        AggregateTracker {
            refresh_interval: refresh_interval.max(1),
            rng_state: 0xa0761d6478bd642f,
            ..Default::default()
        }
    }

    /// Number of tracked residents.
    pub fn len(&self) -> usize {
        self.residents.len()
    }

    /// Is the tracker empty?
    pub fn is_empty(&self) -> bool {
        self.residents.is_empty()
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Record an insertion.
    pub fn insert(&mut self, id: ObjId) {
        self.slot.insert(id, self.residents.len());
        self.residents.push(id);
    }

    /// Record an eviction.
    pub fn remove(&mut self, id: ObjId) {
        if let Some(ix) = self.slot.remove(&id) {
            let last = *self.residents.last().unwrap();
            self.residents.swap_remove(ix);
            if last != id {
                self.slot.insert(last, ix);
            }
        }
    }

    /// Tick on every access; refreshes snapshots when due.
    pub fn on_access(&mut self, view: &CacheView<'_>) {
        self.accesses_since_refresh += 1;
        if self.accesses_since_refresh >= self.refresh_interval || self.counts.is_empty() {
            self.refresh(view);
            self.accesses_since_refresh = 0;
        }
    }

    fn refresh(&mut self, view: &CacheView<'_>) {
        self.counts.clear();
        self.last_access.clear();
        self.sizes.clear();
        let n = self.residents.len();
        if n == 0 {
            return;
        }
        let take = SNAPSHOT_SAMPLE.min(n);
        for _ in 0..take {
            let r = self.next_rand();
            let id = self.residents[(r % n as u64) as usize];
            if let Some(m) = view.meta(id) {
                self.counts.push(m.access_count);
                self.last_access.push(m.last_vtime);
                self.sizes.push(m.size as u64);
            }
        }
        self.counts.sort_unstable();
        self.last_access.sort_unstable();
        self.sizes.sort_unstable();
    }

    fn pct_of(sorted: &[u64], p: u8) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let rank = (p as usize * (sorted.len() - 1)).div_euclid(100);
        sorted[rank.min(sorted.len() - 1)]
    }

    /// p-th percentile of resident access counts.
    pub fn counts_pct(&self, p: u8) -> u64 {
        Self::pct_of(&self.counts, p)
    }

    /// p-th percentile of resident object ages (`now - last_access`).
    ///
    /// The p-th *oldest* age corresponds to the (100-p)-th last-access
    /// snapshot, translated by the current clock at query time.
    pub fn ages_pct(&self, p: u8, now_vtime: u64) -> u64 {
        if self.last_access.is_empty() {
            return 0;
        }
        let la = Self::pct_of(&self.last_access, 100 - p.min(100));
        now_vtime.saturating_sub(la)
    }

    /// p-th percentile of resident sizes, bytes.
    pub fn sizes_pct(&self, p: u8) -> u64 {
        Self::pct_of(&self.sizes, p)
    }
}

/// One remembered eviction — the paper's "list of recently evicted
/// objects, along with (timestamp, access count, age) at eviction".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionRecord {
    pub evict_vtime: u64,
    pub access_count: u64,
    /// `evict_time - last_access` at eviction.
    pub age_at_evict: u64,
}

/// Bounded history of recent evictions, keyed for `hist.contains` lookups.
#[derive(Debug, Clone)]
pub struct EvictionHistory {
    map: IdMap<ObjId, EvictionRecord>,
    fifo: VecDeque<ObjId>,
    capacity: usize,
}

impl EvictionHistory {
    /// History remembering the last `capacity` evictions.
    pub fn new(capacity: usize) -> Self {
        EvictionHistory { map: IdMap::default(), fifo: VecDeque::new(), capacity: capacity.max(1) }
    }

    /// Record an eviction (most recent record wins for repeated ids).
    pub fn record(&mut self, id: ObjId, rec: EvictionRecord) {
        if self.map.insert(id, rec).is_none() {
            self.fifo.push_back(id);
        }
        while self.fifo.len() > self.capacity {
            let old = self.fifo.pop_front().unwrap();
            self.map.remove(&old);
        }
    }

    /// Lookup by object id.
    pub fn get(&self, id: ObjId) -> Option<&EvictionRecord> {
        self.map.get(&id)
    }

    /// Number of remembered evictions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the history empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_indexing() {
        let sorted = vec![10, 20, 30, 40, 50];
        assert_eq!(AggregateTracker::pct_of(&sorted, 0), 10);
        assert_eq!(AggregateTracker::pct_of(&sorted, 50), 30);
        assert_eq!(AggregateTracker::pct_of(&sorted, 100), 50);
        assert_eq!(AggregateTracker::pct_of(&sorted, 75), 40);
        assert_eq!(AggregateTracker::pct_of(&[], 50), 0);
    }

    #[test]
    fn history_bounded_and_overwrites() {
        let mut h = EvictionHistory::new(3);
        for i in 0..5u64 {
            h.record(i, EvictionRecord { evict_vtime: i, access_count: 1, age_at_evict: 0 });
        }
        assert_eq!(h.len(), 3);
        assert!(h.get(0).is_none() && h.get(1).is_none());
        assert!(h.get(4).is_some());
        // re-record an existing id: updates in place, no duplicate
        h.record(4, EvictionRecord { evict_vtime: 99, access_count: 7, age_at_evict: 5 });
        assert_eq!(h.len(), 3);
        assert_eq!(h.get(4).unwrap().access_count, 7);
    }

    #[test]
    fn resident_tracking() {
        let mut t = AggregateTracker::new(100);
        for i in 0..10 {
            t.insert(i);
        }
        t.remove(3);
        t.remove(9);
        t.remove(42); // absent: no-op
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn ages_percentile_uses_query_clock() {
        let mut t = AggregateTracker::new(1);
        t.last_access = vec![10, 20, 30, 40, 50];
        // p75 oldest age ↔ 25th percentile of last_access = 20
        assert_eq!(t.ages_pct(75, 100), 80);
        // same snapshot, later clock: ages grow
        assert_eq!(t.ages_pct(75, 200), 180);
        // youngest (p0) age ↔ newest last_access
        assert_eq!(t.ages_pct(0, 100), 50);
    }
}
