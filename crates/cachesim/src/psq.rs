//! The PolicySmith cache template host (§4.1.2 of the paper).
//!
//! Object metadata lives in a priority structure; a synthesized
//! `priority()` candidate — hosted as a verified, compiled
//! [`CompiledPolicy`] — is executed **on each access or insertion** to
//! (re)score the accessed object, and the lowest-scored object is evicted
//! when space is needed. Each evaluation fills a flat, reusable context
//! slab with exactly the Table-1 features the candidate reads and runs the
//! kbpf program: no per-decision allocation, no AST walking. The DSL
//! interpreter survives only behind [`PriorityPolicy::interpreted`] as the
//! differential oracle. Priorities of untouched objects are *not*
//! recomputed (the paper's design: scores update on access), so the host
//! costs O(log N) per access as §4.1.2 advertises.
//!
//! Runtime faults (division by zero — the classic generated-code bug; the
//! compile pipeline marks such candidates `may_fault` instead of rejecting
//! them, because this host has a defined fallback) do not crash the host:
//! the first fault is latched into [`PriorityPolicy::first_error`], the
//! object keeps its previous score, and the evaluator downgrades the
//! candidate (§4.1.3's Checker catches most, the Evaluator the rest).

use crate::engine::{CacheView, ObjId, Policy};
use crate::features::{AggregateTracker, EvictionHistory, EvictionRecord};
use crate::rank::{BTreeRank, EvictionRank, HeapRank, Rank};
use policysmith_dsl::{eval, Expr, Feature, FeatureEnv, Mode};
use policysmith_kbpf::{CompiledPolicy, RuntimeFault, SPILL_SLOTS};

/// Default eviction-history length (entries).
pub const DEFAULT_HISTORY: usize = 1024;
/// Default aggregate snapshot refresh interval (accesses).
pub const DEFAULT_REFRESH: u64 = 512;

/// Does `feats` read any percentile-aggregate feature? (Gates the
/// [`AggregateTracker`] upkeep; shared by construction and
/// [`PriorityPolicy::swap_policy`] so the two can never drift apart.)
fn reads_aggregates(feats: &[Feature]) -> bool {
    feats
        .iter()
        .any(|f| matches!(f, Feature::CountsPct(_) | Feature::AgesPct(_) | Feature::SizesPct(_)))
}

/// Does `feats` read any eviction-history feature? (Gates the
/// [`EvictionHistory`] upkeep.)
fn reads_history(feats: &[Feature]) -> bool {
    feats.iter().any(|f| {
        matches!(
            f,
            Feature::HistContains
                | Feature::HistCount
                | Feature::HistAgeAtEvict
                | Feature::HistTimeSinceEvict
        )
    })
}

/// A cache policy driven by a synthesized priority expression.
pub struct PriorityPolicy {
    name: String,
    engine: Engine,
    /// (score, id) index — min score evicted first. Slab + lazy heap in
    /// production; the `BTreeSet` reference behind
    /// [`PriorityPolicy::use_btree_ranking`].
    rank: Rank,
    aggregates: AggregateTracker,
    history: EvictionHistory,
    /// Does the hosted expression read any percentile aggregate? If not,
    /// the sampled snapshots would never be consulted, so the tracker is
    /// not maintained at all — score-identical, measurably cheaper.
    uses_aggregates: bool,
    /// Same gate for the eviction-history features.
    uses_history: bool,
    /// First runtime fault, if any (latched).
    first_error: Option<RuntimeFault>,
    evaluations: u64,
}

enum Engine {
    /// The production path: compiled bytecode + reusable ctx slab/map.
    Compiled { policy: CompiledPolicy, ctx: Vec<i64>, map: Vec<i64> },
    /// The reference oracle, for differential tests and benchmarks.
    Interpreted { expr: Expr },
}

impl PriorityPolicy {
    /// Host a compiled (checked, lowered, verified) priority policy.
    pub fn new(name: impl Into<String>, policy: CompiledPolicy) -> Self {
        debug_assert_eq!(policy.mode(), Mode::Cache, "cache host needs a Mode::Cache policy");
        Self::build(
            name,
            Engine::Compiled {
                ctx: Vec::with_capacity(policy.layout().len()),
                map: vec![0; SPILL_SLOTS],
                policy,
            },
            DEFAULT_HISTORY,
            DEFAULT_REFRESH,
        )
    }

    /// Compile `expr` for `Mode::Cache` and host it. Expressions the
    /// compile pipeline rejects outright (float literals; nothing else is
    /// rejectable for checked cache source) fall back to the interpreter
    /// so hosting stays total.
    pub fn from_expr(name: impl Into<String>, expr: &Expr) -> Self {
        match CompiledPolicy::compile(expr, Mode::Cache) {
            Ok(policy) => Self::new(name, policy),
            Err(_) => Self::interpreted(name, expr.clone()),
        }
    }

    /// Host via the reference interpreter — the differential oracle.
    pub fn interpreted(name: impl Into<String>, expr: Expr) -> Self {
        Self::build(name, Engine::Interpreted { expr }, DEFAULT_HISTORY, DEFAULT_REFRESH)
    }

    /// Host with explicit history length and snapshot refresh interval.
    pub fn with_config(
        name: impl Into<String>,
        policy: CompiledPolicy,
        history_len: usize,
        refresh_interval: u64,
    ) -> Self {
        Self::build(
            name,
            Engine::Compiled {
                ctx: Vec::with_capacity(policy.layout().len()),
                map: vec![0; SPILL_SLOTS],
                policy,
            },
            history_len,
            refresh_interval,
        )
    }

    fn build(
        name: impl Into<String>,
        engine: Engine,
        history_len: usize,
        refresh_interval: u64,
    ) -> Self {
        let feats = match &engine {
            Engine::Compiled { policy, .. } => policy.expr().features(),
            Engine::Interpreted { expr } => expr.features(),
        };
        let uses_aggregates = reads_aggregates(&feats);
        let uses_history = reads_history(&feats);
        PriorityPolicy {
            name: name.into(),
            engine,
            rank: Rank::Heap(HeapRank::new()),
            aggregates: AggregateTracker::new(refresh_interval),
            history: EvictionHistory::new(history_len),
            uses_aggregates,
            uses_history,
            first_error: None,
            evaluations: 0,
        }
    }

    /// Flip to the pre-optimization reference host: `BTreeSet` ranking
    /// plus unconditional aggregate/history maintenance (the original host
    /// tracked both whether or not the expression read them). Kept for
    /// differential tests and as the throughput baseline — scores are
    /// identical to the production host by construction; only the cost
    /// differs. Must be called before the first request.
    pub fn use_btree_ranking(mut self) -> Self {
        assert!(self.rank.is_empty(), "ranking swap only valid on an empty host");
        self.rank = Rank::BTree(BTreeRank::new());
        self.uses_aggregates = true;
        self.uses_history = true;
        self
    }

    /// Keep the feature trackers (percentile aggregates + eviction
    /// history) maintained whether or not the *current* expression reads
    /// them. Costs the upkeep the access-gated default elides; required
    /// for hosts that may [`swap_policy`](Self::swap_policy) mid-run,
    /// since a policy swapped in later may read features the deposed one
    /// never touched — and a tracker only engaged at swap time would
    /// start empty. Must be called before the first request.
    pub fn track_everything(mut self) -> Self {
        assert!(self.rank.is_empty(), "tracking switch only valid on an empty host");
        self.uses_aggregates = true;
        self.uses_history = true;
        self
    }

    /// Hot-swap the hosted policy mid-run — the cache half of the serving
    /// runtime's publish step.
    ///
    /// Follows the template's own update discipline (§4.1.2: scores update
    /// **on access**): resident objects keep the priority the deposed
    /// policy last gave them and are re-scored by the new policy on their
    /// next access or insertion, so the swap itself touches no per-object
    /// state and completes in O(layout) — no stop-the-world rescore, no
    /// allocation beyond the new context slab. Any latched runtime fault
    /// belonged to the deposed policy and is cleared; construct the host
    /// with [`track_everything`](Self::track_everything) when swaps are
    /// possible, so aggregate/history features the new policy reads have
    /// been maintained all along.
    pub fn swap_policy(&mut self, policy: CompiledPolicy) {
        debug_assert_eq!(policy.mode(), Mode::Cache, "cache host needs a Mode::Cache policy");
        let feats = policy.expr().features();
        // A tracker engaged only now would be cold: already-resident
        // objects were never inserted, so percentile/history reads would
        // be silently wrong. Refuse instead — swap-capable hosts opt into
        // `track_everything` up front.
        assert!(
            self.uses_aggregates || !reads_aggregates(&feats),
            "swapped-in policy reads percentile aggregates but the tracker was never \
             maintained; construct the host with track_everything()"
        );
        assert!(
            self.uses_history || !reads_history(&feats),
            "swapped-in policy reads eviction history but the tracker was never \
             maintained; construct the host with track_everything()"
        );
        self.engine = Engine::Compiled {
            ctx: Vec::with_capacity(policy.layout().len()),
            map: vec![0; SPILL_SLOTS],
            policy,
        };
        self.first_error = None;
    }

    /// Parse `src` and host it. Returns the parse error on bad source.
    pub fn from_source(
        name: impl Into<String>,
        src: &str,
    ) -> Result<Self, policysmith_dsl::ParseError> {
        Ok(PriorityPolicy::from_expr(name, &policysmith_dsl::parse(src)?))
    }

    /// First runtime fault observed, if any.
    pub fn first_error(&self) -> Option<&RuntimeFault> {
        self.first_error.as_ref()
    }

    /// Number of priority evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// The hosted expression (the compiled engine retains it as the
    /// reference semantics of its bytecode).
    pub fn expr(&self) -> &Expr {
        match &self.engine {
            Engine::Compiled { policy, .. } => policy.expr(),
            Engine::Interpreted { expr } => expr,
        }
    }

    /// Is this host running compiled bytecode (vs the interpreter oracle)?
    pub fn is_compiled(&self) -> bool {
        matches!(self.engine, Engine::Compiled { .. })
    }

    fn rescore(&mut self, id: ObjId, view: &CacheView<'_>) {
        let Some(meta) = view.meta(id) else { return };
        let env = PsqEnv { id, meta, view, aggregates: &self.aggregates, history: &self.history };
        self.evaluations += 1;
        let result = match &mut self.engine {
            Engine::Compiled { policy, ctx, map } => {
                policy.run_with_env(&env, ctx, map).map_err(RuntimeFault::Vm)
            }
            Engine::Interpreted { expr } => eval(expr, &env).map_err(RuntimeFault::Interp),
        };
        let new_score = match result {
            Ok(v) => v,
            Err(e) => {
                if self.first_error.is_none() {
                    self.first_error = Some(e);
                }
                // keep previous score; new objects get the minimum
                self.rank.get(id).unwrap_or(i64::MIN)
            }
        };
        self.rank.set(id, new_score);
    }
}

impl Policy for PriorityPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_hit(&mut self, id: ObjId, view: &CacheView<'_>) {
        if self.uses_aggregates {
            self.aggregates.on_access(view);
        }
        self.rescore(id, view);
    }

    fn victim(&mut self, _view: &CacheView<'_>) -> ObjId {
        self.rank.peek_min().expect("priority victim from empty cache").1
    }

    fn on_evict(&mut self, id: ObjId, view: &CacheView<'_>) {
        self.rank.remove(id);
        if self.uses_aggregates {
            self.aggregates.remove(id);
        }
        if self.uses_history {
            if let Some(m) = view.meta(id) {
                self.history.record(
                    id,
                    EvictionRecord {
                        evict_vtime: view.vtime,
                        access_count: m.access_count,
                        age_at_evict: view.vtime.saturating_sub(m.last_vtime),
                    },
                );
            }
        }
    }

    fn on_insert(&mut self, id: ObjId, view: &CacheView<'_>) {
        if self.uses_aggregates {
            self.aggregates.insert(id);
            self.aggregates.on_access(view);
        }
        self.rescore(id, view);
    }
}

/// The Table-1 feature environment for one evaluation.
struct PsqEnv<'a> {
    id: ObjId,
    meta: &'a crate::engine::ObjMeta,
    view: &'a CacheView<'a>,
    aggregates: &'a AggregateTracker,
    history: &'a EvictionHistory,
}

impl FeatureEnv for PsqEnv<'_> {
    fn feature(&self, f: Feature) -> i64 {
        use Feature::*;
        let now = self.view.vtime;
        let v: u64 = match f {
            Now => now,
            ObjCount => self.meta.access_count,
            ObjLastAccess => self.meta.last_vtime,
            ObjInsertTime => self.meta.insert_vtime,
            ObjSize => self.meta.size as u64,
            ObjAge => now.saturating_sub(self.meta.last_vtime),
            ObjTimeInCache => now.saturating_sub(self.meta.insert_vtime),
            CountsPct(p) => self.aggregates.counts_pct(p),
            AgesPct(p) => self.aggregates.ages_pct(p, now),
            SizesPct(p) => self.aggregates.sizes_pct(p),
            HistContains => self.history.get(self.id).is_some() as u64,
            HistCount => self.history.get(self.id).map(|r| r.access_count).unwrap_or(0),
            HistAgeAtEvict => self.history.get(self.id).map(|r| r.age_at_evict).unwrap_or(0),
            HistTimeSinceEvict => {
                self.history.get(self.id).map(|r| now.saturating_sub(r.evict_vtime)).unwrap_or(0)
            }
            CacheObjects => self.view.num_objects() as u64,
            CacheUsedBytes => self.view.used_bytes,
            CacheCapacity => self.view.capacity_bytes,
            // kernel features are rejected by the checker in cache mode;
            // be total anyway
            _ => 0,
        };
        v.min(i64::MAX as u64) as i64
    }
}

/// LRU expressed in the template (one of the paper's two search seeds):
/// highest priority = most recently accessed.
pub fn lru_seed() -> Expr {
    policysmith_dsl::parse("obj.last_access").expect("seed parses")
}

/// LFU expressed in the template (the other seed).
pub fn lfu_seed() -> Expr {
    policysmith_dsl::parse("obj.count").expect("seed parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Cache;
    use policysmith_traces::{OpKind, Request};

    fn req(t: u64, obj: u64) -> Request {
        Request { time_us: t, obj, size: 100, op: OpKind::Read }
    }

    fn run_ids(policy: PriorityPolicy, ids: &[u64], cap: u64) -> Cache<PriorityPolicy> {
        let mut c = Cache::new(cap, policy);
        for (i, &id) in ids.iter().enumerate() {
            c.request(&req(i as u64, id));
        }
        c
    }

    #[test]
    fn lru_seed_behaves_like_lru() {
        use crate::policies::basic::Lru;
        let ids: Vec<u64> = (0..8_000u64).map(|i| (i * 2654435761) % 120).collect();
        let cap = 2_000;
        let host = PriorityPolicy::from_expr("psq-lru", &lru_seed());
        assert!(host.is_compiled());
        let psq = run_ids(host, &ids, cap).result();
        let lru = {
            let mut c = Cache::new(cap, Lru::new());
            for (i, &id) in ids.iter().enumerate() {
                c.request(&req(i as u64, id));
            }
            c.result()
        };
        assert_eq!(psq.hits, lru.hits, "template-hosted LRU must equal native LRU");
    }

    #[test]
    fn lfu_seed_behaves_like_lfu_modulo_ties() {
        use crate::policies::basic::Lfu;
        // Distinct counts avoid tie-breaking differences.
        let mut ids = Vec::new();
        for r in 0..50u64 {
            for id in 0..10u64 {
                if r % (id + 1) == 0 {
                    ids.push(id);
                }
            }
        }
        let cap = 500;
        let psq = run_ids(PriorityPolicy::from_expr("psq-lfu", &lfu_seed()), &ids, cap).result();
        let lfu = {
            let mut c = Cache::new(cap, Lfu::new());
            for (i, &id) in ids.iter().enumerate() {
                c.request(&req(i as u64, id));
            }
            c.result()
        };
        // Tie-breaking differs (native LFU breaks ties FIFO, the template
        // by object id), so behaviour matches only approximately.
        let diff = (psq.hits as f64 - lfu.hits as f64).abs();
        assert!(diff <= 0.3 * lfu.hits.max(1) as f64, "psq {} vs lfu {}", psq.hits, lfu.hits);
    }

    #[test]
    fn history_features_visible_after_eviction() {
        let expr = policysmith_dsl::parse("if(hist.contains, 1000, 0) + obj.last_access").unwrap();
        let mut c = Cache::new(300, PriorityPolicy::from_expr("hist", &expr));
        let mut t = 0;
        let mut go = |c: &mut Cache<PriorityPolicy>, id: u64| {
            t += 1;
            c.request(&req(t, id));
        };
        go(&mut c, 1);
        go(&mut c, 2);
        go(&mut c, 3);
        go(&mut c, 4); // evicts 1 (lowest last_access)
        assert!(!c.contains(1));
        go(&mut c, 1); // re-inserted; hist.contains → big bonus
        assert!(c.policy.history.get(1).is_some());
        // now 1 is protected by its history bonus; 2 should be next victim
        go(&mut c, 5);
        assert!(c.contains(1));
    }

    #[test]
    fn runtime_fault_is_latched_not_fatal() {
        // cache.objects - 3 hits zero when 3 objects are resident
        let expr = policysmith_dsl::parse("100 / (cache.objects - 3)").unwrap();
        let host = PriorityPolicy::from_expr("faulty", &expr);
        assert!(host.is_compiled(), "may-fault candidates still run compiled");
        let c = run_ids(host, &[1, 2, 3, 4, 5, 6], 300);
        assert!(c.policy.first_error().is_some());
        // simulation completed anyway
        assert_eq!(c.result().requests, 6);
    }

    #[test]
    fn ranking_consistent() {
        let ids: Vec<u64> = (0..10_000u64).map(|i| (i * 31) % 200).collect();
        let expr =
            policysmith_dsl::parse("obj.count * 20 - obj.age / 300 - obj.size / 500").unwrap();
        let c = run_ids(PriorityPolicy::from_expr("mix", &expr), &ids, 2_500);
        assert_eq!(c.policy.rank.len(), c.num_objects());
        assert!(c.policy.first_error().is_none());
        assert!(c.policy.evaluations() >= ids.len() as u64);
    }

    #[test]
    fn btree_reference_host_matches_the_heap_host() {
        // spot check behind the ranking swap; the exhaustive randomized
        // differential lives in tests/rank_differential.rs
        let ids: Vec<u64> = (0..20_000u64).map(|i| (i * 2654435761) % 300).collect();
        let expr = policysmith_dsl::parse("obj.count * 20 - obj.age / 300").unwrap();
        let heap = run_ids(PriorityPolicy::from_expr("heap", &expr), &ids, 4_000);
        let btree =
            run_ids(PriorityPolicy::from_expr("btree", &expr).use_btree_ranking(), &ids, 4_000);
        assert_eq!(heap.result(), btree.result(), "ranking structures diverged");
    }

    #[test]
    fn percentile_features_flow_through() {
        let expr =
            policysmith_dsl::parse("if(obj.size > sizes.p50, 0 - obj.age, obj.count)").unwrap();
        let mut c = Cache::new(10_000, PriorityPolicy::from_expr("pct", &expr));
        for i in 0..2_000u64 {
            let size = if i % 2 == 0 { 50 } else { 200 };
            c.request(&Request { time_us: i, obj: i % 150, size, op: OpKind::Read });
        }
        assert!(c.policy.first_error().is_none());
        assert!(c.result().hits > 0);
    }

    #[test]
    fn swap_policy_rescoring_applies_on_access() {
        // LRU host: highest last_access survives. Fill 3 objects, then swap
        // to anti-LRU (0 - obj.last_access) and re-touch them: the rescored
        // priorities must invert the eviction order.
        let lru = CompiledPolicy::compile(&lru_seed(), Mode::Cache).unwrap();
        let mut c = Cache::new(300, PriorityPolicy::new("swap", lru).track_everything());
        c.request(&req(1, 1));
        c.request(&req(2, 2));
        c.request(&req(3, 3));
        let anti = policysmith_dsl::parse("0 - obj.last_access").unwrap();
        c.policy.swap_policy(CompiledPolicy::compile(&anti, Mode::Cache).unwrap());
        // re-touch in the same order: scores update on access (§4.1.2)
        c.request(&req(4, 1));
        c.request(&req(5, 2));
        c.request(&req(6, 3));
        // next insertion must evict object 3 (most recent ⇒ lowest
        // anti-LRU priority), not object 1 as LRU would
        c.request(&req(7, 4));
        assert!(c.contains(1), "anti-LRU protects the oldest");
        assert!(!c.contains(3), "anti-LRU evicts the most recent");
        assert!(c.policy.first_error().is_none());
    }

    #[test]
    fn swap_policy_clears_the_latched_fault() {
        let faulty = policysmith_dsl::parse("100 / (cache.objects - 3)").unwrap();
        let host = PriorityPolicy::new(
            "swap-fault",
            CompiledPolicy::compile(&faulty, Mode::Cache).unwrap(),
        )
        .track_everything();
        let mut c = Cache::new(600, host);
        for (i, id) in (1..=6u64).enumerate() {
            c.request(&req(i as u64, id));
        }
        assert!(c.policy.first_error().is_some(), "deposed policy faulted");
        let sane = CompiledPolicy::compile(&lru_seed(), Mode::Cache).unwrap();
        c.policy.swap_policy(sane);
        assert!(c.policy.first_error().is_none(), "new policy starts with a clean slate");
        for (i, id) in (1..=6u64).enumerate() {
            c.request(&req(100 + i as u64, id));
        }
        assert!(c.policy.first_error().is_none());
    }

    #[test]
    fn compiled_host_matches_the_interpreter_oracle_on_whole_traces() {
        // the differential check behind the host redesign: same trace,
        // same expression, compiled vs interpreted → identical outcomes
        let ids: Vec<u64> = (0..20_000u64).map(|i| (i * 2654435761) % 400).collect();
        for src in [
            "obj.count * 20 - obj.age / 300 - obj.size / 500",
            "if(hist.contains, hist.count * 10 + 50, 0) + obj.last_access",
            "if(obj.size > sizes.p75, 0 - obj.age, obj.count * counts.p50)",
        ] {
            let expr = policysmith_dsl::parse(src).unwrap();
            let compiled = PriorityPolicy::from_expr("vm", &expr);
            assert!(compiled.is_compiled());
            let oracle = PriorityPolicy::interpreted("interp", expr.clone());
            let a = run_ids(compiled, &ids, 8_000);
            let b = run_ids(oracle, &ids, 8_000);
            assert_eq!(a.result(), b.result(), "engines diverged for `{src}`");
            assert!(a.policy.first_error().is_none());
            assert!(b.policy.first_error().is_none());
        }
    }
}
