//! ARC — Adaptive Replacement Cache (FAST '03 \[36\]).
//!
//! Two resident LRU lists — `T1` (seen once recently) and `T2` (seen at
//! least twice) — shadowed by ghost lists `B1`/`B2`. The adaptation target
//! `p` (bytes granted to `T1`) grows on `B1` ghost hits (recency helping)
//! and shrinks on `B2` ghost hits (frequency helping), so ARC continuously
//! self-tunes between LRU-like and LFU-like behaviour — the §2 example of
//! a heuristic that "balances new and old objects".
//!
//! Byte-capacity adaptation of the original unit-size algorithm: `p` and
//! all list budgets are in bytes, and ghost lists are bounded to capacity
//! worth of bytes each.

use crate::engine::{CacheView, ObjId, Policy};
use crate::util::LinkedQueue;
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    T1,
    T2,
}

#[derive(Debug, Default)]
struct GhostList {
    fifo: VecDeque<(ObjId, u32)>, // front = oldest
    set: HashMap<ObjId, u32>,
    bytes: u64,
}

impl GhostList {
    fn push(&mut self, id: ObjId, size: u32, limit: u64) {
        if self.set.insert(id, size).is_none() {
            self.fifo.push_back((id, size));
            self.bytes += size as u64;
        }
        while self.bytes > limit {
            let Some((old, sz)) = self.fifo.pop_front() else { break };
            // May be stale (removed on promotion); only uncount live ones.
            if self.set.remove(&old).is_some() {
                self.bytes -= sz as u64;
            }
        }
    }

    fn take(&mut self, id: ObjId) -> bool {
        match self.set.remove(&id) {
            Some(sz) => {
                self.bytes -= sz as u64;
                // lazy removal from the fifo (see push)
                if let Some(pos) = self.fifo.iter().position(|(x, _)| *x == id) {
                    self.fifo.remove(pos);
                }
                true
            }
            None => false,
        }
    }

    fn contains(&self, id: ObjId) -> bool {
        self.set.contains_key(&id)
    }
}

/// ARC eviction policy.
#[derive(Debug, Default)]
pub struct Arc {
    t1: LinkedQueue, // front = MRU
    t2: LinkedQueue, // front = MRU
    loc: HashMap<ObjId, Loc>,
    t1_bytes: u64,
    b1: GhostList,
    b2: GhostList,
    /// Adaptation target for T1, in bytes.
    p: u64,
    /// Where the pending insertion should land (decided in `on_miss`).
    insert_to_t2: bool,
}

impl Arc {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for Arc {
    fn name(&self) -> &str {
        "ARC"
    }

    fn on_hit(&mut self, id: ObjId, view: &CacheView<'_>) {
        match self.loc.get(&id).copied() {
            Some(Loc::T1) => {
                // Second recent access: promote to frequency list.
                let size = view.meta(id).map(|m| m.size as u64).unwrap_or(0);
                self.t1.remove(id);
                self.t1_bytes -= size;
                self.t2.push_front(id);
                self.loc.insert(id, Loc::T2);
            }
            Some(Loc::T2) => self.t2.move_to_front(id),
            None => debug_assert!(false, "ARC hit on unknown {id}"),
        }
    }

    fn on_miss(&mut self, id: ObjId, view: &CacheView<'_>) {
        let c = view.capacity_bytes;
        let size = 1.max(c / 100); // adaptation step ~1% of capacity
        if self.b1.contains(id) {
            // Recency ghost hit: grow T1's share.
            self.p = (self.p + size).min(c);
            self.b1.take(id);
            self.insert_to_t2 = true;
        } else if self.b2.contains(id) {
            // Frequency ghost hit: shrink T1's share.
            self.p = self.p.saturating_sub(size);
            self.b2.take(id);
            self.insert_to_t2 = true;
        } else {
            self.insert_to_t2 = false;
        }
    }

    fn victim(&mut self, _view: &CacheView<'_>) -> ObjId {
        // REPLACE: evict from T1 if it exceeds its target p, else from T2.
        let from_t1 = !self.t1.is_empty() && (self.t1_bytes > self.p || self.t2.is_empty());
        if from_t1 {
            self.t1.back().expect("T1 victim")
        } else if let Some(b) = self.t2.back() {
            b
        } else {
            self.t1.back().expect("ARC victim from empty cache")
        }
    }

    fn on_evict(&mut self, id: ObjId, view: &CacheView<'_>) {
        let size = view.meta(id).map(|m| m.size).unwrap_or(0);
        let limit = view.capacity_bytes;
        match self.loc.remove(&id) {
            Some(Loc::T1) => {
                self.t1.remove(id);
                self.t1_bytes -= size as u64;
                self.b1.push(id, size, limit);
            }
            Some(Loc::T2) => {
                self.t2.remove(id);
                self.b2.push(id, size, limit);
            }
            None => {}
        }
    }

    fn on_insert(&mut self, id: ObjId, view: &CacheView<'_>) {
        let size = view.meta(id).map(|m| m.size as u64).unwrap_or(0);
        if self.insert_to_t2 {
            self.t2.push_front(id);
            self.loc.insert(id, Loc::T2);
        } else {
            self.t1.push_front(id);
            self.t1_bytes += size;
            self.loc.insert(id, Loc::T1);
        }
        self.insert_to_t2 = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Cache;
    use crate::policies::basic::Lru;
    use policysmith_traces::{OpKind, Request};

    fn req(t: u64, obj: u64) -> Request {
        Request { time_us: t, obj, size: 100, op: OpKind::Read }
    }

    fn run<P: Policy>(policy: P, ids: &[u64], cap: u64) -> Cache<P> {
        let mut c = Cache::new(cap, policy);
        for (i, &id) in ids.iter().enumerate() {
            c.request(&req(i as u64, id));
        }
        c
    }

    #[test]
    fn second_access_promotes_to_t2() {
        let mut c = Cache::new(1_000, Arc::new());
        c.request(&req(1, 1));
        assert_eq!(c.policy.loc.get(&1), Some(&Loc::T1));
        c.request(&req(2, 1));
        assert_eq!(c.policy.loc.get(&1), Some(&Loc::T2));
    }

    #[test]
    fn ghost_hit_adapts_p() {
        let mut c = Cache::new(1_000, Arc::new());
        let mut t = 0;
        let mut go = |c: &mut Cache<Arc>, id: u64| {
            t += 1;
            c.request(&req(t, id));
        };
        // Evict some T1 objects into B1 via a scan.
        for id in 0..25 {
            go(&mut c, id);
        }
        let p_before = c.policy.p;
        // Ghost hit on an object still remembered by B1 raises p.
        let g = (0..25)
            .find(|&id| c.policy.b1.contains(id))
            .expect("B1 must remember a recent eviction");
        go(&mut c, g);
        assert!(c.policy.p > p_before, "B1 hit must grow p");
        assert_eq!(c.policy.loc.get(&g), Some(&Loc::T2));
    }

    #[test]
    fn frequency_ghost_shrinks_p() {
        let mut c = Cache::new(1_000, Arc::new());
        let mut t = 0;
        let mut go = |c: &mut Cache<Arc>, id: u64| {
            t += 1;
            c.request(&req(t, id));
        };
        // Build T2 entries then evict them into B2.
        for id in 0..8 {
            go(&mut c, id);
            go(&mut c, id); // promote to T2
        }
        // grow p so T1 is preferred for eviction... first raise p via B1:
        for id in 100..130 {
            go(&mut c, id);
        }
        let g1 = (100..130)
            .find(|&id| c.policy.b1.contains(id))
            .expect("B1 must remember a recent T1 eviction");
        go(&mut c, g1); // b1 ghost hit, p grows
        let p_grown = c.policy.p;
        assert!(p_grown > 0);
        // Now force T2 evictions (p large → T1 kept) and revisit: B2 hit.
        for id in 200..240 {
            go(&mut c, id);
        }
        // find an early-T2 object that has been evicted
        let ghost = (0..8).find(|id| !c.contains(*id));
        if let Some(g) = ghost {
            let before = c.policy.p;
            go(&mut c, g);
            assert!(c.policy.p <= before, "B2 hit must not grow p");
        }
    }

    #[test]
    fn beats_lru_on_mixed_workload() {
        // Mixed hot-set + scan workload: ARC's adaptation should at least
        // match LRU.
        let mut ids = Vec::new();
        let mut scan = 10_000u64;
        for _ in 0..400 {
            for p in 0..5 {
                ids.push(p);
            }
            for _ in 0..4 {
                ids.push(scan);
                scan += 1;
            }
        }
        let cap = 800;
        let arc = run(Arc::new(), &ids, cap).result().hits;
        let lru = run(Lru::new(), &ids, cap).result().hits;
        assert!(arc >= lru, "ARC ({arc}) should be ≥ LRU ({lru})");
    }

    #[test]
    fn accounting_consistent() {
        let ids: Vec<u64> = (0..15_000u64).map(|i| (i * 37) % 250).collect();
        let c = run(Arc::new(), &ids, 2_000);
        assert_eq!(c.policy.t1.len() + c.policy.t2.len(), c.num_objects());
        let t1_bytes: u64 = c.policy.t1.iter().map(|_| 100u64).sum();
        assert_eq!(c.policy.t1_bytes, t1_bytes);
    }
}
