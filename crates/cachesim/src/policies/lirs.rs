//! LIRS — Low Inter-reference Recency Set (SIGMETRICS '02 \[30\]).
//!
//! Partitions residents into **LIR** (low inter-reference recency, ~99% of
//! capacity) and **HIR** blocks. A recency stack `S` holds LIR blocks,
//! resident HIR blocks, and *non-resident* HIR ghosts; a small queue `Q`
//! holds resident HIR blocks, which are the eviction victims. A HIR block
//! re-referenced while still on the stack has proven low IRR and is
//! promoted to LIR, demoting the stack-bottom LIR block. Classic stack
//! pruning keeps the bottom of `S` LIR.
//!
//! Adaptations for a byte-capacity cache (LIRS is object-count based in the
//! original): the LIR target is 99% of capacity in *bytes*, promotion may
//! demote several LIR blocks to rebalance, and the non-resident ghost
//! population is bounded by `GHOST_FACTOR ×` the resident count.

use crate::engine::{CacheView, ObjId, Policy};
use crate::util::LinkedQueue;
use std::collections::{HashMap, VecDeque};

/// Fraction of capacity reserved for the LIR set.
const LIR_FRAC: f64 = 0.99;
/// Ghost entries allowed per resident object.
const GHOST_FACTOR: usize = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Lir,
    HirResident,
    HirGhost,
}

/// LIRS eviction policy.
pub struct Lirs {
    /// Recency stack; front = most recent. Holds LIR + HIR (incl. ghosts).
    stack: LinkedQueue,
    /// Resident-HIR queue; front = oldest (victim end).
    queue: LinkedQueue,
    status: HashMap<ObjId, Status>,
    lir_bytes: u64,
    /// Insertion-ordered ghost candidates for bounding (may be stale).
    ghost_fifo: VecDeque<ObjId>,
    ghost_count: usize,
}

impl Lirs {
    pub fn new() -> Self {
        Lirs {
            stack: LinkedQueue::new(),
            queue: LinkedQueue::new(),
            status: HashMap::new(),
            lir_bytes: 0,
            ghost_fifo: VecDeque::new(),
            ghost_count: 0,
        }
    }

    fn lir_target(view: &CacheView<'_>) -> u64 {
        ((view.capacity_bytes as f64) * LIR_FRAC) as u64
    }

    /// Remove non-LIR entries from the stack bottom (classic pruning).
    fn prune(&mut self) {
        while let Some(bottom) = self.stack.back() {
            match self.status.get(&bottom) {
                Some(Status::Lir) => break,
                Some(Status::HirGhost) => {
                    self.stack.remove(bottom);
                    self.status.remove(&bottom);
                    self.ghost_count = self.ghost_count.saturating_sub(1);
                }
                Some(Status::HirResident) => {
                    // Resident HIR falls off the stack but stays in Q.
                    self.stack.remove(bottom);
                }
                None => {
                    self.stack.remove(bottom);
                }
            }
        }
    }

    /// Demote the stack-bottom LIR block to resident HIR. Prunes first so
    /// the bottom really is a LIR block (an eviction may have turned the
    /// previous bottom into a ghost since the last prune).
    fn demote_bottom_lir(&mut self, view: &CacheView<'_>) {
        self.prune();
        let Some(bottom) = self.stack.back() else { return };
        debug_assert_eq!(self.status.get(&bottom), Some(&Status::Lir));
        let size = view.meta(bottom).map(|m| m.size as u64).unwrap_or(0);
        self.status.insert(bottom, Status::HirResident);
        self.lir_bytes = self.lir_bytes.saturating_sub(size);
        self.stack.remove(bottom);
        self.queue.push_back(bottom);
        self.prune();
    }

    /// Rebalance after the LIR set grew past its target.
    fn rebalance(&mut self, view: &CacheView<'_>) {
        let target = Self::lir_target(view);
        // Keep at least one LIR block.
        while self.lir_bytes > target && self.count_is_multiple_lir() {
            self.demote_bottom_lir(view);
        }
    }

    fn count_is_multiple_lir(&self) -> bool {
        // Cheap check: stack bottom is LIR (post-prune invariant) and there
        // is at least one more LIR above it iff lir_bytes spans >1 block.
        // We approximate by requiring a non-empty stack.
        !self.stack.is_empty()
    }

    fn bound_ghosts(&mut self) {
        let limit = GHOST_FACTOR * (self.status.len() - self.ghost_count).max(16);
        while self.ghost_count > limit {
            let Some(candidate) = self.ghost_fifo.pop_front() else { break };
            if self.status.get(&candidate) == Some(&Status::HirGhost) {
                self.stack.remove(candidate);
                self.status.remove(&candidate);
                self.ghost_count -= 1;
            }
        }
    }

    /// Move (or insert) `id` to the stack top.
    fn stack_to_top(&mut self, id: ObjId) {
        if self.stack.contains(id) {
            self.stack.move_to_front(id);
        } else {
            self.stack.push_front(id);
        }
    }
}

impl Default for Lirs {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for Lirs {
    fn name(&self) -> &str {
        "LIRS"
    }

    fn on_hit(&mut self, id: ObjId, view: &CacheView<'_>) {
        match self.status.get(&id).copied() {
            Some(Status::Lir) => {
                let was_bottom = self.stack.back() == Some(id);
                self.stack_to_top(id);
                if was_bottom {
                    self.prune();
                }
            }
            Some(Status::HirResident) => {
                if self.stack.contains(id) {
                    // Proven low IRR: promote to LIR.
                    let size = view.meta(id).map(|m| m.size as u64).unwrap_or(0);
                    self.status.insert(id, Status::Lir);
                    self.lir_bytes += size;
                    self.queue.remove(id);
                    self.stack.move_to_front(id);
                    self.rebalance(view);
                } else {
                    // Recency too long to judge: stay HIR, refresh both
                    // structures.
                    self.stack_to_top(id);
                    self.queue.move_to_back(id);
                }
            }
            _ => {
                // Defensive: a hit must be on a resident block.
                debug_assert!(false, "LIRS hit on non-resident {id}");
            }
        }
    }

    fn on_miss(&mut self, _id: ObjId, _view: &CacheView<'_>) {}

    fn victim(&mut self, view: &CacheView<'_>) -> ObjId {
        // Scrub stale queue entries (belt-and-suspenders: the engine is
        // the residency oracle, and the victim contract is hard).
        while let Some(front) = self.queue.front() {
            if view.meta(front).is_some() {
                return front;
            }
            self.queue.remove(front);
            if !self.stack.contains(front) {
                self.status.remove(&front);
            }
        }
        // No resident HIR: demote the coldest LIR and evict it.
        self.demote_bottom_lir(view);
        let candidate = self.queue.front().expect("LIRS victim from empty cache");
        debug_assert!(view.meta(candidate).is_some());
        candidate
    }

    fn on_evict(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.queue.remove(id);
        if self.stack.contains(id) {
            // Stays on the stack as a ghost: its next reference (if soon)
            // proves low IRR.
            self.status.insert(id, Status::HirGhost);
            self.ghost_count += 1;
            self.ghost_fifo.push_back(id);
            self.bound_ghosts();
        } else {
            self.status.remove(&id);
        }
    }

    fn on_insert(&mut self, id: ObjId, view: &CacheView<'_>) {
        let size = view.meta(id).map(|m| m.size as u64).unwrap_or(0);
        match self.status.get(&id).copied() {
            Some(Status::HirGhost) => {
                // Ghost hit: the block's reuse distance fits the stack →
                // promote straight to LIR.
                self.ghost_count = self.ghost_count.saturating_sub(1);
                self.status.insert(id, Status::Lir);
                self.lir_bytes += size;
                self.stack.move_to_front(id);
                self.rebalance(view);
            }
            _ => {
                if self.lir_bytes + size <= Self::lir_target(view) {
                    // Cold start: LIR set not yet full.
                    self.status.insert(id, Status::Lir);
                    self.lir_bytes += size;
                    self.stack_to_top(id);
                } else {
                    self.status.insert(id, Status::HirResident);
                    self.stack_to_top(id);
                    self.queue.push_back(id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Cache;
    use crate::policies::basic::Lru;
    use policysmith_traces::{OpKind, Request};

    fn req(t: u64, obj: u64) -> Request {
        Request { time_us: t, obj, size: 100, op: OpKind::Read }
    }

    fn run_ids<P: Policy>(policy: P, ids: &[u64], cap: u64) -> Cache<P> {
        let mut c = Cache::new(cap, policy);
        for (i, &id) in ids.iter().enumerate() {
            c.request(&req(i as u64, id));
        }
        c
    }

    #[test]
    fn basic_fill_and_evict() {
        let c = run_ids(Lirs::new(), &[1, 2, 3, 4, 5, 6], 400);
        assert_eq!(c.num_objects(), 4);
        assert!(c.used_bytes() <= 400);
    }

    #[test]
    fn stack_invariant_bottom_is_lir() {
        let ids: Vec<u64> = (0..3_000u64).map(|i| (i * 13) % 60).collect();
        let c = run_ids(Lirs::new(), &ids, 1_000);
        if let Some(bottom) = c.policy.stack.back() {
            assert_eq!(c.policy.status.get(&bottom), Some(&Status::Lir));
        }
    }

    #[test]
    fn ghost_promotion_gives_loops_a_chance() {
        // A loop slightly larger than the cache devastates LRU (0% hits in
        // steady state) but LIRS keeps a LIR core resident.
        let mut ids = Vec::new();
        for _ in 0..60 {
            for x in 0..12u64 {
                ids.push(x);
            }
        }
        let cap = 1_000; // 10 of the 12 loop objects fit
        let lirs_hits = run_ids(Lirs::new(), &ids, cap).result().hits;
        let lru_hits = run_ids(Lru::new(), &ids, cap).result().hits;
        assert!(lirs_hits > lru_hits, "LIRS ({lirs_hits}) should beat LRU ({lru_hits}) on loops");
    }

    #[test]
    fn hot_objects_stay_lir() {
        let mut ids = Vec::new();
        for cold in 1_000u64..1_500 {
            ids.push(1);
            ids.push(2);
            ids.push(cold);
        }
        let c = run_ids(Lirs::new(), &ids, 800);
        assert!(c.contains(1) && c.contains(2));
        assert_eq!(c.policy.status.get(&1), Some(&Status::Lir));
        assert_eq!(c.policy.status.get(&2), Some(&Status::Lir));
    }

    #[test]
    fn ghost_population_bounded() {
        let ids: Vec<u64> = (0..50_000u64).collect(); // pure scan: all ghosts
        let c = run_ids(Lirs::new(), &ids, 2_000);
        let residents = c.num_objects();
        assert!(
            c.policy.ghost_count <= GHOST_FACTOR * residents.max(16) + 1,
            "ghosts {} vs residents {}",
            c.policy.ghost_count,
            residents
        );
    }

    #[test]
    fn bookkeeping_consistent_under_churn() {
        let ids: Vec<u64> = (0..20_000u64).map(|i| (i * 2654435761) % 400).collect();
        let c = run_ids(Lirs::new(), &ids, 3_000);
        // every queue entry is a resident HIR
        for id in c.policy.queue.iter() {
            assert_eq!(c.policy.status.get(&id), Some(&Status::HirResident));
            assert!(c.contains(id));
        }
        // every LIR is resident
        let lir_count = c.policy.status.iter().filter(|(_, s)| **s == Status::Lir).count();
        assert!(lir_count <= c.num_objects());
    }
}
