//! Reference-bit policies: FIFO-Reinsertion (a.k.a. Clock / second chance)
//! and SIEVE (NSDI '24 \[69\]).
//!
//! Both keep FIFO's O(1) bookkeeping but give re-accessed objects another
//! round. The difference — and the reason SIEVE wins on skewed web
//! workloads — is *where survivors sit*: FIFO-Re moves them to the tail
//! (recirculates), while SIEVE leaves them in place and moves a hand, so
//! long-lived popular objects gravitate toward the head and stop being
//! examined at all ("lazy promotion, quick demotion").

use crate::engine::{CacheView, ObjId, Policy};
use crate::util::LinkedQueue;
use std::collections::HashSet;

/// FIFO with reinsertion (Corbató's second-chance clock, §4.2.2's
/// "FIFO-Re"). Queue orientation: front = oldest.
#[derive(Debug, Default)]
pub struct FifoReinsertion {
    queue: LinkedQueue,
    visited: HashSet<ObjId>,
}

impl FifoReinsertion {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for FifoReinsertion {
    fn name(&self) -> &str {
        "FIFO-Re"
    }
    fn on_hit(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.visited.insert(id);
    }
    fn victim(&mut self, _view: &CacheView<'_>) -> ObjId {
        // Recirculate visited objects (clearing the bit) until an
        // unvisited one surfaces. Terminates: each pass clears one bit.
        loop {
            let front = self.queue.front().expect("clock victim from empty cache");
            if self.visited.remove(&front) {
                self.queue.move_to_back(front);
            } else {
                return front;
            }
        }
    }
    fn on_evict(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.queue.remove(id);
        self.visited.remove(&id);
    }
    fn on_insert(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.queue.push_back(id);
    }
}

/// SIEVE \[69\]. Queue orientation: front = newest (insertions), back =
/// oldest. The hand starts at the back and moves toward the front, evicting
/// the first unvisited object and clearing bits as it passes.
#[derive(Debug, Default)]
pub struct Sieve {
    queue: LinkedQueue,
    visited: HashSet<ObjId>,
    /// Current hand position (an object id), or `None` = start from back.
    hand: Option<ObjId>,
}

impl Sieve {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for Sieve {
    fn name(&self) -> &str {
        "SIEVE"
    }
    fn on_hit(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.visited.insert(id);
    }
    fn victim(&mut self, _view: &CacheView<'_>) -> ObjId {
        let mut hand = match self.hand {
            Some(h) if self.queue.contains(h) => h,
            _ => self.queue.back().expect("SIEVE victim from empty cache"),
        };
        // Sweep toward the head, clearing visited bits; wrap to the back
        // when the head is passed. Terminates: bits only get cleared.
        loop {
            if self.visited.remove(&hand) {
                hand = match self.queue.prev_of(hand) {
                    Some(prev) => prev,
                    None => self.queue.back().expect("queue cannot empty mid-sweep"),
                };
            } else {
                // Advance the hand past the victim before it disappears.
                self.hand = self.queue.prev_of(hand);
                return hand;
            }
        }
    }
    fn on_evict(&mut self, id: ObjId, _view: &CacheView<'_>) {
        if self.hand == Some(id) {
            self.hand = self.queue.prev_of(id);
        }
        self.queue.remove(id);
        self.visited.remove(&id);
    }
    fn on_insert(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.queue.push_front(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Cache;
    use policysmith_traces::{OpKind, Request};

    fn req(t: u64, obj: u64) -> Request {
        Request { time_us: t, obj, size: 100, op: OpKind::Read }
    }

    fn run<P: Policy>(policy: P, ids: &[u64], cap: u64) -> Cache<P> {
        let mut c = Cache::new(cap, policy);
        for (i, &id) in ids.iter().enumerate() {
            c.request(&req(i as u64, id));
        }
        c
    }

    #[test]
    fn fifo_re_gives_second_chance() {
        // 1,2,3 fill; hit 1; insert 4: clock passes visited 1 (reinserts),
        // evicts 2.
        let c = run(FifoReinsertion::new(), &[1, 2, 3, 1, 4], 300);
        assert!(c.contains(1), "visited object survives");
        assert!(!c.contains(2), "unvisited oldest is the victim");
        assert!(c.contains(3) && c.contains(4));
    }

    #[test]
    fn fifo_re_clears_bit_after_reinsertion() {
        let mut c = run(FifoReinsertion::new(), &[1, 2, 3, 1, 4], 300);
        // queue now (oldest→newest): 3, 1(bit cleared), 4
        c.request(&req(10, 5)); // evicts 3
        assert!(!c.contains(3));
        c.request(&req(11, 6)); // evicts 1: bit was cleared
        assert!(!c.contains(1));
    }

    #[test]
    fn sieve_keeps_visited_in_place() {
        // 1,2,3 fill (front→back: 3,2,1); hit 2; insert 4:
        // hand starts at back (1): unvisited → evict 1, hand stays before it.
        let mut c = run(Sieve::new(), &[1, 2, 3, 2, 4], 300);
        assert!(!c.contains(1));
        assert!(c.contains(2) && c.contains(3) && c.contains(4));
        // Next eviction: hand at 2 (visited → cleared, move on), evicts 3.
        c.request(&req(10, 5));
        assert!(!c.contains(3));
        assert!(c.contains(2), "popular object survives without moving");
    }

    #[test]
    fn sieve_hand_wraps_after_head() {
        let mut c = run(Sieve::new(), &[1, 2, 3], 300);
        // visit everything: sweep must clear all bits then wrap and evict
        c.request(&req(4, 1));
        c.request(&req(5, 2));
        c.request(&req(6, 3));
        c.request(&req(7, 9)); // forces eviction with all bits set
        assert_eq!(c.result().evictions, 1);
        assert_eq!(c.num_objects(), 3);
    }

    #[test]
    fn sieve_scan_resistance_beats_lru() {
        // Popular set {0..5} hit repeatedly + one-touch scan ids: SIEVE
        // should retain more of the popular set than LRU.
        let mut ids = Vec::new();
        let mut scan = 1_000u64;
        for round in 0..200u64 {
            for p in 0..5 {
                ids.push(p);
            }
            if round % 2 == 0 {
                for _ in 0..3 {
                    ids.push(scan);
                    scan += 1;
                }
            }
        }
        let cap = 700; // room for 7 objects
        let sieve_hits = run(Sieve::new(), &ids, cap).result().hits;
        let lru_hits = run(crate::policies::basic::Lru::new(), &ids, cap).result().hits;
        assert!(
            sieve_hits > lru_hits,
            "SIEVE ({sieve_hits}) should beat LRU ({lru_hits}) under scan pollution"
        );
    }

    #[test]
    fn sieve_invariants_under_churn() {
        // Exercise hand maintenance across many evictions; a hot object is
        // mixed in so the visited path is taken constantly.
        let ids: Vec<u64> =
            (0..5_000u64).map(|i| if i % 3 == 0 { 0 } else { (i * 7919) % 50 }).collect();
        let c = run(Sieve::new(), &ids, 1_000);
        assert_eq!(c.num_objects(), 10);
        assert!(c.result().hits > 0);
        assert!(c.contains(0), "hot object must survive the sieve");
    }
}
