//! LHD — Least Hit Density (NSDI '18 \[7\]), sampling variant.
//!
//! LHD estimates, for each object, its *hit density*: the probability of a
//! future hit divided by the expected cache space-time the object will
//! consume, and evicts the lowest-density object among a random sample.
//! Following the paper's implementation we:
//!
//! * bucket object age (time since last access) into coarse power-of-two
//!   bins and object frequency into a few classes,
//! * maintain per-(class, age-bin) hit/eviction event counts with periodic
//!   exponential decay (so the estimator tracks workload drift),
//! * recompute hit densities every `RECONFIG_INTERVAL` requests,
//! * evict the minimum-density object among `SAMPLE` randomly-sampled
//!   residents (O(1) instead of a full priority structure).
//!
//! Simplifications vs. the original (documented per DESIGN.md): age is in
//! requests rather than a tuned "coarsened" clock, and the class function
//! is `min(log2(freq), 3)` rather than the paper's app-id × reuse classes.

use crate::engine::{CacheView, ObjId, Policy};
use std::collections::HashMap;

/// Number of log-spaced age bins.
const AGE_BINS: usize = 24;
/// Number of frequency classes.
const CLASSES: usize = 4;
/// Residents sampled per eviction.
const SAMPLE: usize = 32;
/// Requests between density recomputations.
const RECONFIG_INTERVAL: u64 = 10_000;
/// Exponential decay applied to event counts at each reconfiguration.
const DECAY: f64 = 0.9;

fn age_bin(age: u64) -> usize {
    (64 - age.max(1).leading_zeros() as usize).min(AGE_BINS - 1)
}

fn class_of(freq: u64) -> usize {
    (64 - freq.max(1).leading_zeros() as usize - 1).min(CLASSES - 1)
}

/// LHD eviction policy.
pub struct Lhd {
    /// hits[class][age_bin], evictions[class][age_bin]
    hits: [[f64; AGE_BINS]; CLASSES],
    evictions: [[f64; AGE_BINS]; CLASSES],
    /// Precomputed density table, refreshed at reconfiguration.
    density: [[f64; AGE_BINS]; CLASSES],
    /// Swap-remove vector of residents + index for O(1) sampling.
    residents: Vec<ObjId>,
    slot: HashMap<ObjId, usize>,
    /// Deterministic sampling state (xorshift).
    rng_state: u64,
    requests_seen: u64,
}

impl Lhd {
    pub fn new() -> Self {
        let mut lhd = Lhd {
            hits: [[0.0; AGE_BINS]; CLASSES],
            evictions: [[0.0; AGE_BINS]; CLASSES],
            density: [[0.0; AGE_BINS]; CLASSES],
            residents: Vec::new(),
            slot: HashMap::new(),
            rng_state: 0x9e3779b97f4a7c15,
            requests_seen: 0,
        };
        lhd.reconfigure();
        lhd
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Recompute `density[c][a]` = expected hits at ages ≥ a divided by the
    /// expected remaining lifetime — the discrete form of the paper's hit
    /// density, computed from the tail sums of the event histograms.
    fn reconfigure(&mut self) {
        for c in 0..CLASSES {
            let mut hits_tail = 0.0;
            let mut events_time_tail = 0.0;
            // sweep from oldest age bin to youngest so tails accumulate
            for a in (0..AGE_BINS).rev() {
                hits_tail += self.hits[c][a];
                let events = self.hits[c][a] + self.evictions[c][a];
                // each event at bin `a` represents ~2^a requests of tenancy
                events_time_tail += events * (1u64 << a.min(40)) as f64;
                self.density[c][a] = if events_time_tail > 0.0 {
                    hits_tail / events_time_tail
                } else {
                    // unknown territory: optimistic for young ages, so new
                    // objects get a chance to prove themselves
                    1e-6
                };
                self.hits[c][a] *= DECAY;
                self.evictions[c][a] *= DECAY;
            }
        }
    }

    fn density_of(&self, freq: u64, age: u64) -> f64 {
        self.density[class_of(freq)][age_bin(age)]
    }

    fn add_resident(&mut self, id: ObjId) {
        self.slot.insert(id, self.residents.len());
        self.residents.push(id);
    }

    fn remove_resident(&mut self, id: ObjId) {
        if let Some(ix) = self.slot.remove(&id) {
            let last = *self.residents.last().unwrap();
            self.residents.swap_remove(ix);
            if last != id {
                self.slot.insert(last, ix);
            }
        }
    }
}

impl Default for Lhd {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for Lhd {
    fn name(&self) -> &str {
        "LHD"
    }

    fn on_hit(&mut self, id: ObjId, view: &CacheView<'_>) {
        self.requests_seen += 1;
        if let Some(m) = view.meta(id) {
            // meta.last_vtime was just updated to now; age at hit is the
            // gap to the *previous* access, which we approximate by the
            // current hit age bucket of 1 (a hit resets age). Record the
            // event in the bin of the object's tenancy age instead.
            let age = view.vtime.saturating_sub(m.insert_vtime).max(1);
            self.hits[class_of(m.access_count)][age_bin(age)] += 1.0;
        }
        if self.requests_seen.is_multiple_of(RECONFIG_INTERVAL) {
            self.reconfigure();
        }
    }

    fn on_miss(&mut self, _id: ObjId, _view: &CacheView<'_>) {
        self.requests_seen += 1;
        if self.requests_seen.is_multiple_of(RECONFIG_INTERVAL) {
            self.reconfigure();
        }
    }

    fn victim(&mut self, view: &CacheView<'_>) -> ObjId {
        debug_assert!(!self.residents.is_empty());
        let mut best: Option<(f64, ObjId)> = None;
        let n = self.residents.len();
        for _ in 0..SAMPLE.min(n) {
            let r = self.next_rand();
            let id = self.residents[(r % n as u64) as usize];
            let m = match view.meta(id) {
                Some(m) => m,
                None => continue,
            };
            let age = view.vtime.saturating_sub(m.last_vtime).max(1);
            // density per byte: hit density divided by object size
            let d = self.density_of(m.access_count, age) / m.size.max(1) as f64;
            if best.map(|(bd, _)| d < bd).unwrap_or(true) {
                best = Some((d, id));
            }
        }
        best.map(|(_, id)| id).unwrap_or_else(|| self.residents[0])
    }

    fn on_evict(&mut self, id: ObjId, view: &CacheView<'_>) {
        if let Some(m) = view.meta(id) {
            let age = view.vtime.saturating_sub(m.last_vtime).max(1);
            self.evictions[class_of(m.access_count)][age_bin(age)] += 1.0;
        }
        self.remove_resident(id);
    }

    fn on_insert(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.add_resident(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Cache;
    use crate::policies::basic::Fifo;
    use policysmith_traces::{OpKind, Request};

    fn req(t: u64, obj: u64, size: u32) -> Request {
        Request { time_us: t, obj, size, op: OpKind::Read }
    }

    #[test]
    fn binning_is_monotone_and_bounded() {
        let mut prev = 0;
        for age in [1u64, 2, 5, 100, 10_000, 1 << 30, u64::MAX] {
            let b = age_bin(age);
            assert!(b >= prev && b < AGE_BINS);
            prev = b;
        }
        assert_eq!(class_of(1), 0);
        assert_eq!(class_of(2), 1);
        assert_eq!(class_of(4), 2);
        assert!(class_of(1 << 60) < CLASSES);
    }

    #[test]
    fn resident_tracking_consistent() {
        let ids: Vec<u64> = (0..5_000u64).map(|i| (i * 17) % 100).collect();
        let mut c = Cache::new(1_500, Lhd::new());
        for (i, &id) in ids.iter().enumerate() {
            c.request(&req(i as u64, id, 100));
        }
        assert_eq!(c.policy.residents.len(), c.num_objects());
        for &r in &c.policy.residents {
            assert!(c.contains(r));
        }
    }

    #[test]
    fn deterministic_runs() {
        let ids: Vec<u64> = (0..8_000u64).map(|i| (i * 31) % 150).collect();
        let run = || {
            let mut c = Cache::new(2_000, Lhd::new());
            for (i, &id) in ids.iter().enumerate() {
                c.request(&req(i as u64, id, 100));
            }
            c.result()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn learns_to_keep_hot_objects() {
        // Hot set of 8 objects hit constantly + cold noise: after the
        // estimator warms up, LHD should beat FIFO.
        let mut ids = Vec::new();
        let mut cold = 10_000u64;
        for round in 0..8_000u64 {
            ids.push(round % 8);
            if round % 2 == 0 {
                ids.push(cold);
                cold += 1;
            }
        }
        let cap = 1_200; // 12 objects
        let lhd = {
            let mut c = Cache::new(cap, Lhd::new());
            for (i, &id) in ids.iter().enumerate() {
                c.request(&req(i as u64, id, 100));
            }
            c.result().hits
        };
        let fifo = {
            let mut c = Cache::new(cap, Fifo::new());
            for (i, &id) in ids.iter().enumerate() {
                c.request(&req(i as u64, id, 100));
            }
            c.result().hits
        };
        assert!(lhd > fifo, "LHD ({lhd}) should out-hit FIFO ({fifo}) on hot/cold mix");
    }
}
