//! The four classical baselines: FIFO, LRU, MRU, LFU.
//!
//! These are both paper baselines (§4.2.2) and the seeds/foils of the
//! search: the paper's Generator is seeded with one-line LRU and LFU
//! priority functions, and every Figure-2 number is reported as improvement
//! over FIFO.

use crate::engine::{CacheView, ObjId, Policy};
use crate::util::LinkedQueue;
use std::collections::{BTreeSet, HashMap};

/// First-in first-out. Queue orientation: front = oldest.
#[derive(Debug, Default)]
pub struct Fifo {
    queue: LinkedQueue,
}

impl Fifo {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for Fifo {
    fn name(&self) -> &str {
        "FIFO"
    }
    fn on_hit(&mut self, _id: ObjId, _view: &CacheView<'_>) {}
    fn victim(&mut self, _view: &CacheView<'_>) -> ObjId {
        self.queue.front().expect("FIFO victim from empty cache")
    }
    fn on_evict(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.queue.remove(id);
    }
    fn on_insert(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.queue.push_back(id);
    }
}

/// Least-recently-used. Orientation: front = most recent, back = LRU.
#[derive(Debug, Default)]
pub struct Lru {
    queue: LinkedQueue,
}

impl Lru {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for Lru {
    fn name(&self) -> &str {
        "LRU"
    }
    fn on_hit(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.queue.move_to_front(id);
    }
    fn victim(&mut self, _view: &CacheView<'_>) -> ObjId {
        self.queue.back().expect("LRU victim from empty cache")
    }
    fn on_evict(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.queue.remove(id);
    }
    fn on_insert(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.queue.push_front(id);
    }
}

/// Most-recently-used — a niche baseline that wins on pure looping
/// workloads and loses almost everywhere else (the paper keeps it for
/// exactly that contrast).
#[derive(Debug, Default)]
pub struct Mru {
    queue: LinkedQueue,
}

impl Mru {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for Mru {
    fn name(&self) -> &str {
        "MRU"
    }
    fn on_hit(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.queue.move_to_front(id);
    }
    fn victim(&mut self, _view: &CacheView<'_>) -> ObjId {
        self.queue.front().expect("MRU victim from empty cache")
    }
    fn on_evict(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.queue.remove(id);
    }
    fn on_insert(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.queue.push_front(id);
    }
}

/// Least-frequently-used with FIFO tie-breaking (in-cache frequency, i.e.
/// counts reset on eviction — "perfect LFU" would need unbounded history).
#[derive(Debug, Default)]
pub struct Lfu {
    /// (count, insertion sequence, id) — min element is the victim.
    ranking: BTreeSet<(u64, u64, ObjId)>,
    entry: HashMap<ObjId, (u64, u64)>,
    seq: u64,
}

impl Lfu {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for Lfu {
    fn name(&self) -> &str {
        "LFU"
    }
    fn on_hit(&mut self, id: ObjId, _view: &CacheView<'_>) {
        let (count, seq) = self.entry[&id];
        self.ranking.remove(&(count, seq, id));
        self.ranking.insert((count + 1, seq, id));
        self.entry.insert(id, (count + 1, seq));
    }
    fn victim(&mut self, _view: &CacheView<'_>) -> ObjId {
        self.ranking.first().expect("LFU victim from empty cache").2
    }
    fn on_evict(&mut self, id: ObjId, _view: &CacheView<'_>) {
        if let Some((count, seq)) = self.entry.remove(&id) {
            self.ranking.remove(&(count, seq, id));
        }
    }
    fn on_insert(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.seq += 1;
        self.entry.insert(id, (1, self.seq));
        self.ranking.insert((1, self.seq, id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Cache;
    use policysmith_traces::{OpKind, Request};

    fn req(t: u64, obj: u64) -> Request {
        Request { time_us: t, obj, size: 100, op: OpKind::Read }
    }

    /// Run the id sequence through a 3-object cache, return final residents.
    fn residents<P: Policy>(policy: P, ids: &[u64]) -> Vec<u64> {
        let mut c = Cache::new(300, policy);
        for (i, &id) in ids.iter().enumerate() {
            c.request(&req(i as u64, id));
        }
        let mut v: Vec<u64> = (0..100).filter(|&x| c.contains(x)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn fifo_evicts_oldest_regardless_of_hits() {
        // 1,2,3 inserted; 1 re-accessed; 4 inserted → 1 still evicted.
        assert_eq!(residents(Fifo::new(), &[1, 2, 3, 1, 4]), vec![2, 3, 4]);
    }

    #[test]
    fn lru_spares_recently_used() {
        // re-access of 1 saves it; 2 is the LRU victim.
        assert_eq!(residents(Lru::new(), &[1, 2, 3, 1, 4]), vec![1, 3, 4]);
    }

    #[test]
    fn mru_evicts_most_recent() {
        // 1,2,3 resident; access 1 (now MRU); insert 4 → 1 evicted.
        assert_eq!(residents(Mru::new(), &[1, 2, 3, 1, 4]), vec![2, 3, 4]);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        // counts: 1→3, 2→2, 3→1; insert 4 → 3 evicted.
        assert_eq!(residents(Lfu::new(), &[1, 2, 3, 1, 2, 1, 4]), vec![1, 2, 4]);
    }

    #[test]
    fn lfu_tie_break_is_fifo() {
        // all counts 1 → evict the earliest inserted (1).
        assert_eq!(residents(Lfu::new(), &[1, 2, 3, 4]), vec![2, 3, 4]);
    }

    #[test]
    fn lru_sequence_classic() {
        // classic LRU stack behaviour over a longer run
        assert_eq!(residents(Lru::new(), &[1, 2, 3, 4, 2, 5]), vec![2, 4, 5]);
    }

    #[test]
    fn lfu_count_resets_after_eviction() {
        let mut c = Cache::new(300, Lfu::new());
        for (i, id) in [1, 1, 1, 2, 3, 4].iter().enumerate() {
            c.request(&req(i as u64, *id));
        }
        // 1 has count 3; 2,3 count 1 → inserting 4 evicts 2
        assert!(c.contains(1) && c.contains(3) && c.contains(4));
        // bring 2 back: its count starts from 1 again → victim over 1
        c.request(&req(10, 2)); // evicts 3 (count 1, older than 4)
        c.request(&req(11, 5));
        assert!(!c.contains(2) || !c.contains(4)); // one of the count-1 objects went
        assert!(c.contains(1), "frequent object must survive");
    }
}
