//! 2Q (VLDB '94 \[31\]).
//!
//! Three structures: `A1in`, a FIFO holding first-time objects (25% of
//! capacity); `A1out`, a ghost FIFO remembering recently demoted ids (worth
//! 50% of capacity); and `Am`, an LRU for proven-warm objects. A miss that
//! hits `A1out` skips probation and enters `Am` directly. One-hit wonders
//! thus never touch the LRU — the paper's §2 cites 2Q as the classic
//! "quickly remove low-value objects" design for small caches.

use crate::engine::{CacheView, ObjId, Policy};
use crate::util::LinkedQueue;
use std::collections::{HashMap, HashSet, VecDeque};

/// Byte share of capacity for the probationary `A1in` queue.
const KIN_FRAC: f64 = 0.25;
/// `A1out` remembers ids worth this share of capacity.
const KOUT_FRAC: f64 = 0.5;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    A1In,
    Am,
}

/// 2Q eviction policy.
#[derive(Debug, Default)]
pub struct TwoQ {
    a1in: LinkedQueue, // front = oldest
    am: LinkedQueue,   // front = MRU, back = LRU
    loc: HashMap<ObjId, Loc>,
    a1in_bytes: u64,
    /// Ghost FIFO with byte accounting.
    a1out: VecDeque<(ObjId, u32)>,
    a1out_set: HashSet<ObjId>,
    a1out_bytes: u64,
    /// Set during `on_miss` when the id is remembered by `A1out`.
    insert_to_am: bool,
}

impl TwoQ {
    pub fn new() -> Self {
        Self::default()
    }

    fn a1out_push(&mut self, id: ObjId, size: u32, capacity: u64) {
        if self.a1out_set.insert(id) {
            self.a1out.push_back((id, size));
            self.a1out_bytes += size as u64;
        }
        let limit = (capacity as f64 * KOUT_FRAC) as u64;
        while self.a1out_bytes > limit {
            let Some((old, sz)) = self.a1out.pop_front() else { break };
            self.a1out_set.remove(&old);
            self.a1out_bytes -= sz as u64;
        }
    }
}

impl Policy for TwoQ {
    fn name(&self) -> &str {
        "TwoQ"
    }

    fn on_hit(&mut self, id: ObjId, _view: &CacheView<'_>) {
        match self.loc.get(&id) {
            // 2Q leaves A1in hits in place (a second access during
            // probation is not yet proof of warmth).
            Some(Loc::A1In) => {}
            Some(Loc::Am) => self.am.move_to_front(id),
            None => debug_assert!(false, "2Q hit on unknown {id}"),
        }
    }

    fn on_miss(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.insert_to_am = self.a1out_set.contains(&id);
    }

    fn victim(&mut self, view: &CacheView<'_>) -> ObjId {
        let kin = (view.capacity_bytes as f64 * KIN_FRAC) as u64;
        if self.a1in_bytes > kin || self.am.is_empty() {
            if let Some(front) = self.a1in.front() {
                return front;
            }
        }
        self.am.back().expect("2Q victim from empty cache")
    }

    fn on_evict(&mut self, id: ObjId, view: &CacheView<'_>) {
        let size = view.meta(id).map(|m| m.size).unwrap_or(0);
        match self.loc.remove(&id) {
            Some(Loc::A1In) => {
                self.a1in.remove(id);
                self.a1in_bytes -= size as u64;
                self.a1out_push(id, size, view.capacity_bytes);
            }
            Some(Loc::Am) => {
                self.am.remove(id);
            }
            None => {}
        }
    }

    fn on_insert(&mut self, id: ObjId, view: &CacheView<'_>) {
        let size = view.meta(id).map(|m| m.size).unwrap_or(0);
        if self.insert_to_am {
            // Remembered by A1out: proven reuse → straight to Am.
            self.a1out_set.remove(&id);
            if let Some(pos) = self.a1out.iter().position(|(x, _)| *x == id) {
                let (_, sz) = self.a1out.remove(pos).unwrap();
                self.a1out_bytes -= sz as u64;
            }
            self.am.push_front(id);
            self.loc.insert(id, Loc::Am);
        } else {
            self.a1in.push_back(id);
            self.a1in_bytes += size as u64;
            self.loc.insert(id, Loc::A1In);
        }
        self.insert_to_am = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Cache;
    use crate::policies::basic::Lru;
    use policysmith_traces::{OpKind, Request};

    fn req(t: u64, obj: u64) -> Request {
        Request { time_us: t, obj, size: 100, op: OpKind::Read }
    }

    fn run<P: Policy>(policy: P, ids: &[u64], cap: u64) -> Cache<P> {
        let mut c = Cache::new(cap, policy);
        for (i, &id) in ids.iter().enumerate() {
            c.request(&req(i as u64, id));
        }
        c
    }

    #[test]
    fn reuse_promotes_via_a1out() {
        let mut c = Cache::new(1_000, TwoQ::new());
        let mut t = 0;
        let mut go = |c: &mut Cache<TwoQ>, id: u64| {
            t += 1;
            c.request(&req(t, id));
        };
        go(&mut c, 1);
        // push 1 out of A1in (kin = 250 → 3 objects overflow it)
        for w in 100..110 {
            go(&mut c, w);
        }
        assert!(!c.contains(1));
        // 1 is remembered in A1out → re-insert goes to Am
        go(&mut c, 1);
        assert_eq!(c.policy.loc.get(&1), Some(&Loc::Am));
    }

    #[test]
    fn one_hit_wonders_never_reach_am() {
        let ids: Vec<u64> = (0..200u64).collect(); // pure scan
        let c = run(TwoQ::new(), &ids, 1_000);
        assert!(c.policy.am.is_empty(), "scan objects must stay in A1in");
    }

    #[test]
    fn am_behaves_as_lru() {
        let mut c = Cache::new(1_000, TwoQ::new());
        let mut t = 0;
        let mut go = |c: &mut Cache<TwoQ>, id: u64| {
            t += 1;
            c.request(&req(t, id));
        };
        // Promote 1, 2, 3 into Am via the ghost path.
        for id in [1, 2, 3] {
            go(&mut c, id);
            for w in 0..10 {
                go(&mut c, 1_000 + id * 100 + w);
            }
            go(&mut c, id); // ghost hit → Am
            assert_eq!(c.policy.loc.get(&id), Some(&Loc::Am), "id {id}");
        }
        // Touch 1 so 2 becomes Am-LRU; force Am evictions by filling A1in
        // under its share — victim comes from Am only when A1in is small,
        // so shrink A1in pressure by hitting capacity with Am residents.
        go(&mut c, 1);
        // fill the rest of capacity with scans to force evictions
        for w in 5_000..5_040 {
            go(&mut c, w);
        }
        // Am victim order: 2 before 1 (LRU)
        let ev2 = !c.contains(2);
        let ev1 = !c.contains(1);
        assert!(ev2 || !ev1, "2 must not outlive 1 in Am");
    }

    #[test]
    fn beats_lru_under_scan_pollution() {
        let mut ids = Vec::new();
        let mut scan = 10_000u64;
        // warm a popular set into Am
        for p in 0..4u64 {
            ids.push(p);
        }
        for _ in 0..10 {
            for s in 0..6 {
                ids.push(scan + s);
            }
            scan += 6;
            for p in 0..4u64 {
                ids.push(p);
            }
        }
        for _ in 0..300 {
            for p in 0..4 {
                ids.push(p);
            }
            for _ in 0..5 {
                ids.push(scan);
                scan += 1;
            }
        }
        let cap = 900;
        let twoq = run(TwoQ::new(), &ids, cap).result().hits;
        let lru = run(Lru::new(), &ids, cap).result().hits;
        assert!(twoq > lru, "2Q ({twoq}) should beat LRU ({lru}) under scans");
    }

    #[test]
    fn ghost_bytes_bounded() {
        let ids: Vec<u64> = (0..20_000u64).collect();
        let c = run(TwoQ::new(), &ids, 1_000);
        assert!(c.policy.a1out_bytes <= 500);
        assert_eq!(c.policy.a1out_set.len(), c.policy.a1out.len());
    }
}
