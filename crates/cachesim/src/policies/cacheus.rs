//! The CACHEUS family (FAST '21 \[48\]): the SR (scan-resistant) and CR
//! (churn-resistant) lightweight experts, and CACHEUS itself — an adaptive
//! two-expert combination with a self-tuning learning rate.
//!
//! The PolicySmith paper lists the experts as **SR-LFU** and **CR-LRU**
//! (§4.2.2). We implement them under those names with the CACHEUS designs:
//!
//! * **SR-LFU** — LFU with scan resistance: first-time objects enter a
//!   probationary LRU region (a fixed byte share); scans churn through
//!   probation without disturbing the LFU core, and only a re-access
//!   graduates an object into the frequency-ranked region.
//! * **CR-LRU** — LRU with churn resistance: when one-hit objects cycle
//!   rapidly, plain LRU degenerates to FIFO over them; CR-LRU gives
//!   multi-access objects a second chance on eviction, so a churning tail
//!   cannot flush the proven set.
//! * **CACHEUS** — LeCaR-style multiplicative-weight arbitration between
//!   the two experts, with the adaptive learning rate of the CACHEUS paper
//!   (rate grows while the loser keeps losing, resets on reversal).

use crate::engine::{CacheView, ObjId, Policy};
use crate::util::LinkedQueue;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Byte share of the probationary region in SR-LFU.
const PROBATION_FRAC: f64 = 0.1;

/// Scan-resistant LFU.
#[derive(Debug, Default)]
pub struct SrLfu {
    /// Probation (first-timers), front = oldest.
    probation: LinkedQueue,
    probation_bytes: u64,
    /// Protected frequency ranking.
    rank: BTreeSet<(u64, u64, ObjId)>,
    entry: HashMap<ObjId, (u64, u64)>,
    seq: u64,
}

impl SrLfu {
    pub fn new() -> Self {
        Self::default()
    }

    fn protect(&mut self, id: ObjId, size: u64) {
        self.probation.remove(id);
        self.probation_bytes -= size;
        self.seq += 1;
        // graduates with its accumulated count of 2 (insert + this hit)
        self.entry.insert(id, (2, self.seq));
        self.rank.insert((2, self.seq, id));
    }
}

impl Policy for SrLfu {
    fn name(&self) -> &str {
        "SR-LFU"
    }

    fn on_hit(&mut self, id: ObjId, view: &CacheView<'_>) {
        if self.probation.contains(id) {
            let size = view.meta(id).map(|m| m.size as u64).unwrap_or(0);
            self.protect(id, size);
        } else if let Some(&(count, seq)) = self.entry.get(&id) {
            self.rank.remove(&(count, seq, id));
            self.rank.insert((count + 1, seq, id));
            self.entry.insert(id, (count + 1, seq));
        }
    }

    fn victim(&mut self, view: &CacheView<'_>) -> ObjId {
        let probation_target = (view.capacity_bytes as f64 * PROBATION_FRAC) as u64;
        // Scans die here: prefer probation once it outgrows its share, and
        // always prefer it over a non-empty protected region when the
        // protected region would otherwise be emptied.
        if self.probation_bytes > probation_target || self.rank.is_empty() {
            if let Some(front) = self.probation.front() {
                return front;
            }
        }
        match self.rank.first() {
            Some(&(_, _, id)) => id,
            None => self.probation.front().expect("SR-LFU victim from empty cache"),
        }
    }

    fn on_evict(&mut self, id: ObjId, view: &CacheView<'_>) {
        if self.probation.remove(id) {
            let size = view.meta(id).map(|m| m.size as u64).unwrap_or(0);
            self.probation_bytes -= size;
        } else if let Some((count, seq)) = self.entry.remove(&id) {
            self.rank.remove(&(count, seq, id));
        }
    }

    fn on_insert(&mut self, id: ObjId, view: &CacheView<'_>) {
        let size = view.meta(id).map(|m| m.size as u64).unwrap_or(0);
        self.probation.push_back(id);
        self.probation_bytes += size;
    }
}

/// Churn-resistant LRU.
///
/// Two mechanisms cooperate: (a) objects that are *hit* gain a second
/// chance, so multi-access objects recirculate once instead of being
/// evicted; (b) a ghost list remembers recent evictions, and a re-inserted
/// ghost arrives *with* a chance — this is what breaks the churn death
/// spiral where a warm object's reuse distance slightly exceeds capacity
/// and plain LRU (or hit-only second chances) never lets it survive to its
/// second access.
#[derive(Debug, Default)]
pub struct CrLru {
    /// front = MRU, back = LRU.
    queue: LinkedQueue,
    /// Objects currently holding a second chance.
    second_chance: HashSet<ObjId>,
    /// Ghost memory of recent evictions.
    ghost_fifo: VecDeque<ObjId>,
    ghost_set: HashSet<ObjId>,
}

impl CrLru {
    pub fn new() -> Self {
        Self::default()
    }

    fn remember(&mut self, id: ObjId, residents: usize) {
        if self.ghost_set.insert(id) {
            self.ghost_fifo.push_back(id);
        }
        let bound = (2 * residents).max(32);
        while self.ghost_fifo.len() > bound {
            let old = self.ghost_fifo.pop_front().unwrap();
            self.ghost_set.remove(&old);
        }
    }
}

impl Policy for CrLru {
    fn name(&self) -> &str {
        "CR-LRU"
    }

    fn on_hit(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.queue.move_to_front(id);
        self.second_chance.insert(id);
    }

    fn victim(&mut self, _view: &CacheView<'_>) -> ObjId {
        // Sweep from the LRU end; chance-holders spend their chance and
        // recirculate once. Terminates: chances only get spent.
        loop {
            let back = self.queue.back().expect("CR-LRU victim from empty cache");
            if self.second_chance.remove(&back) {
                self.queue.move_to_front(back);
            } else {
                return back;
            }
        }
    }

    fn on_evict(&mut self, id: ObjId, view: &CacheView<'_>) {
        self.queue.remove(id);
        self.second_chance.remove(&id);
        self.remember(id, view.num_objects());
    }

    fn on_insert(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.queue.push_front(id);
        // A returning ghost is churn evidence: shield it once.
        if self.ghost_set.remove(&id) {
            if let Some(pos) = self.ghost_fifo.iter().position(|&x| x == id) {
                self.ghost_fifo.remove(pos);
            }
            self.second_chance.insert(id);
        }
    }
}

/// CACHEUS: adaptive arbitration between [`SrLfu`] and [`CrLru`].
pub struct Cacheus {
    sr: SrLfu,
    cr: CrLru,
    w_sr: f64,
    /// Adaptive learning rate (the CACHEUS paper's key addition to LeCaR).
    lr: f64,
    lr_direction: i8,
    /// Ghost history: id -> which expert evicted it.
    history: HashMap<ObjId, Which>,
    history_fifo: VecDeque<ObjId>,
    rng_state: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Which {
    Sr,
    Cr,
}

impl Cacheus {
    pub fn new() -> Self {
        Cacheus {
            sr: SrLfu::new(),
            cr: CrLru::new(),
            w_sr: 0.5,
            lr: 0.1,
            lr_direction: 0,
            history: HashMap::new(),
            history_fifo: VecDeque::new(),
            rng_state: 0xda3e39cb94b95bdb,
        }
    }

    /// Current SR-LFU weight (test/diagnostic hook).
    pub fn weight_sr(&self) -> f64 {
        self.w_sr
    }

    fn next_unit(&mut self) -> f64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn update_weights(&mut self, losing: Which) {
        // Adaptive LR: consecutive regret in the same direction grows the
        // step; a reversal shrinks it (simplified from CACHEUS's
        // gradient-style schedule).
        let dir = match losing {
            Which::Sr => -1,
            Which::Cr => 1,
        };
        if dir == self.lr_direction {
            self.lr = (self.lr * 1.5).min(1.0);
        } else {
            self.lr = (self.lr * 0.5).max(0.01);
        }
        self.lr_direction = dir;
        match losing {
            Which::Sr => self.w_sr /= self.lr.exp(),
            Which::Cr => self.w_sr *= self.lr.exp(),
        }
        self.w_sr = self.w_sr.clamp(0.01, 0.99);
    }
}

impl Default for Cacheus {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for Cacheus {
    fn name(&self) -> &str {
        "CACHEUS"
    }

    fn on_hit(&mut self, id: ObjId, view: &CacheView<'_>) {
        self.sr.on_hit(id, view);
        self.cr.on_hit(id, view);
    }

    fn on_miss(&mut self, id: ObjId, view: &CacheView<'_>) {
        self.sr.on_miss(id, view);
        self.cr.on_miss(id, view);
        if let Some(which) = self.history.remove(&id) {
            if let Some(pos) = self.history_fifo.iter().position(|&x| x == id) {
                self.history_fifo.remove(pos);
            }
            self.update_weights(which);
        }
    }

    fn victim(&mut self, view: &CacheView<'_>) -> ObjId {
        if self.next_unit() < self.w_sr {
            self.sr.victim(view)
        } else {
            self.cr.victim(view)
        }
    }

    fn on_evict(&mut self, id: ObjId, view: &CacheView<'_>) {
        // Attribute the ghost to the expert whose victim it was.
        let sr_choice = {
            // SR's victim is whatever its victim() would return, but we
            // avoid mutating: approximate by membership — probation front
            // or rank min.
            self.sr.probation.front() == Some(id) || self.sr.rank.first().map(|e| e.2) == Some(id)
        };
        let cr_choice = self.cr.queue.back() == Some(id);
        let tag = match (sr_choice, cr_choice) {
            (true, false) => Some(Which::Sr),
            (false, true) => Some(Which::Cr),
            _ => None,
        };
        self.sr.on_evict(id, view);
        self.cr.on_evict(id, view);
        if let Some(t) = tag {
            if self.history.insert(id, t).is_none() {
                self.history_fifo.push_back(id);
            }
            let bound = view.num_objects().max(32);
            while self.history_fifo.len() > bound {
                let old = self.history_fifo.pop_front().unwrap();
                self.history.remove(&old);
            }
        }
    }

    fn on_insert(&mut self, id: ObjId, view: &CacheView<'_>) {
        self.sr.on_insert(id, view);
        self.cr.on_insert(id, view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Cache;
    use crate::policies::basic::{Lfu, Lru};
    use policysmith_traces::{OpKind, Request};

    fn req(t: u64, obj: u64) -> Request {
        Request { time_us: t, obj, size: 100, op: OpKind::Read }
    }

    fn run<P: Policy>(policy: P, ids: &[u64], cap: u64) -> Cache<P> {
        let mut c = Cache::new(cap, policy);
        for (i, &id) in ids.iter().enumerate() {
            c.request(&req(i as u64, id));
        }
        c
    }

    fn scan_workload() -> Vec<u64> {
        let mut ids = Vec::new();
        let mut scan = 10_000u64;
        for _ in 0..300 {
            for p in 0..5 {
                ids.push(p);
            }
            for _ in 0..4 {
                ids.push(scan);
                scan += 1;
            }
        }
        ids
    }

    fn churn_workload() -> Vec<u64> {
        // A warm quartet re-accessed every round + six one-hit wonders per
        // round. Plain LRU lets the churn flush part of the warm set every
        // round; second chances keep it resident.
        let mut ids = Vec::new();
        let mut churn = 50_000u64;
        for _ in 0..800u64 {
            for w in 0..4 {
                ids.push(w);
            }
            for _ in 0..6 {
                ids.push(churn);
                churn += 1;
            }
        }
        ids
    }

    #[test]
    fn sr_lfu_survives_scans_better_than_lfu() {
        let ids = scan_workload();
        let cap = 800;
        let sr = run(SrLfu::new(), &ids, cap).result().hits;
        let lfu = run(Lfu::new(), &ids, cap).result().hits;
        assert!(sr >= lfu, "SR-LFU ({sr}) should be ≥ LFU ({lfu}) under scans");
    }

    #[test]
    fn sr_lfu_probation_accounting() {
        let ids: Vec<u64> = (0..10_000u64).map(|i| (i * 13) % 200).collect();
        let c = run(SrLfu::new(), &ids, 1_500);
        let bytes: u64 = c.policy.probation.iter().map(|_| 100u64).sum();
        assert_eq!(c.policy.probation_bytes, bytes);
        assert_eq!(c.policy.probation.len() + c.policy.rank.len(), c.num_objects());
    }

    #[test]
    fn cr_lru_protects_warm_objects_under_churn() {
        let ids = churn_workload();
        let cap = 800;
        let cr = run(CrLru::new(), &ids, cap).result().hits;
        let lru = run(Lru::new(), &ids, cap).result().hits;
        assert!(cr > lru, "CR-LRU ({cr}) should beat LRU ({lru}) under churn");
    }

    #[test]
    fn cr_lru_chance_is_single_use() {
        let mut c = Cache::new(300, CrLru::new());
        let mut t = 0;
        let mut go = |c: &mut Cache<CrLru>, id: u64| {
            t += 1;
            c.request(&req(t, id));
        };
        go(&mut c, 1);
        go(&mut c, 1); // hit → chance
        go(&mut c, 2);
        go(&mut c, 3);
        go(&mut c, 4); // LRU end is 1, has chance → recirculates; 2 evicted
        assert!(c.contains(1));
        assert!(!c.contains(2));
        go(&mut c, 5); // 3 is LRU victim now
        assert!(!c.contains(3));
        go(&mut c, 6); // 1 is at the back again, chance spent → evicted
        assert!(!c.contains(1));
    }

    #[test]
    fn cr_lru_ghost_grants_chance_on_return() {
        let mut c = Cache::new(300, CrLru::new());
        let mut t = 0;
        let mut go = |c: &mut Cache<CrLru>, id: u64| {
            t += 1;
            c.request(&req(t, id));
        };
        go(&mut c, 1);
        go(&mut c, 2);
        go(&mut c, 3);
        go(&mut c, 4); // evicts 1 → ghost
        assert!(!c.contains(1));
        go(&mut c, 1); // returns with a chance (evicts 2)
        go(&mut c, 5); // back is 3 (no chance) → evicted, 1 shielded
        go(&mut c, 6); // back is 1 with chance → recirculates; 4 evicted
        assert!(c.contains(1), "returning ghost must get one shield");
        assert!(!c.contains(4));
    }

    #[test]
    fn cacheus_weights_respond() {
        let c = run(Cacheus::new(), &scan_workload(), 800);
        // weights must remain valid and some learning must have occurred
        assert!(c.policy.w_sr > 0.0 && c.policy.w_sr < 1.0);
        assert!(c.policy.lr >= 0.01 && c.policy.lr <= 1.0);
    }

    #[test]
    fn cacheus_competitive_on_both_regimes() {
        let cap = 800;
        for (name, ids) in [("scan", scan_workload()), ("churn", churn_workload())] {
            let cacheus = run(Cacheus::new(), &ids, cap).result().hits;
            let lru = run(Lru::new(), &ids, cap).result().hits;
            assert!(
                cacheus as f64 >= lru as f64 * 0.9,
                "CACHEUS ({cacheus}) collapsed vs LRU ({lru}) on {name}"
            );
        }
    }

    #[test]
    fn cacheus_deterministic() {
        let ids = churn_workload();
        let a = run(Cacheus::new(), &ids, 900).result();
        let b = run(Cacheus::new(), &ids, 900).result();
        assert_eq!(a, b);
    }

    #[test]
    fn experts_track_residents() {
        let ids: Vec<u64> = (0..15_000u64).map(|i| (i * 2654435761) % 250).collect();
        let c = run(Cacheus::new(), &ids, 2_000);
        assert_eq!(c.policy.cr.queue.len(), c.num_objects());
        assert_eq!(c.policy.sr.probation.len() + c.policy.sr.rank.len(), c.num_objects());
    }
}
