//! S3-FIFO (SOSP '23 \[64\]): "FIFO queues are all you need for cache
//! eviction".
//!
//! Three FIFO queues: a **small** probationary queue (10% of capacity), a
//! **main** queue (90%), and a **ghost** queue of recently-evicted ids
//! sized to main's object count. One-hit wonders die quickly in small;
//! objects re-referenced while in small (or remembered by ghost) enter
//! main, where a lazy frequency counter (capped at 3) grants reinsertions.

use crate::engine::{CacheView, ObjId, Policy};
use crate::util::LinkedQueue;
use std::collections::{HashMap, VecDeque};

/// Fraction of capacity given to the small queue (paper's default).
const SMALL_FRAC: f64 = 0.1;
/// Frequency counter cap.
const FREQ_MAX: u8 = 3;

/// Which queue a resident object currently occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Small,
    Main,
}

/// S3-FIFO eviction policy.
#[derive(Debug)]
pub struct S3Fifo {
    small: LinkedQueue, // front = oldest
    main: LinkedQueue,  // front = oldest
    loc: HashMap<ObjId, Loc>,
    freq: HashMap<ObjId, u8>,
    small_bytes: u64,
    /// Ghost: ids evicted from small, bounded by main's object count.
    ghost: VecDeque<ObjId>,
    ghost_set: HashMap<ObjId, u32>, // id -> generation count in ghost deque
    /// Set when the current miss hit the ghost queue: insert to main.
    insert_to_main: bool,
}

impl S3Fifo {
    pub fn new() -> Self {
        S3Fifo {
            small: LinkedQueue::new(),
            main: LinkedQueue::new(),
            loc: HashMap::new(),
            freq: HashMap::new(),
            small_bytes: 0,
            ghost: VecDeque::new(),
            ghost_set: HashMap::new(),
            insert_to_main: false,
        }
    }

    fn ghost_push(&mut self, id: ObjId) {
        self.ghost.push_back(id);
        *self.ghost_set.entry(id).or_insert(0) += 1;
        // Bound ghost by main's length (≥ 1 to stay useful when main is
        // still warming up).
        let bound = self.main.len().max(16);
        while self.ghost.len() > bound {
            let old = self.ghost.pop_front().unwrap();
            if let Some(n) = self.ghost_set.get_mut(&old) {
                *n -= 1;
                if *n == 0 {
                    self.ghost_set.remove(&old);
                }
            }
        }
    }

    fn ghost_contains(&self, id: ObjId) -> bool {
        self.ghost_set.contains_key(&id)
    }

    /// Migrate the oldest small-queue object to main (promotion).
    fn promote_to_main(&mut self, id: ObjId, size: u64) {
        self.small.remove(id);
        self.small_bytes -= size;
        self.main.push_back(id);
        self.loc.insert(id, Loc::Main);
        self.freq.insert(id, 0);
    }
}

impl Default for S3Fifo {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for S3Fifo {
    fn name(&self) -> &str {
        "S3-FIFO"
    }

    fn on_hit(&mut self, id: ObjId, _view: &CacheView<'_>) {
        let f = self.freq.entry(id).or_insert(0);
        *f = (*f + 1).min(FREQ_MAX);
    }

    fn on_miss(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.insert_to_main = self.ghost_contains(id);
    }

    fn victim(&mut self, view: &CacheView<'_>) -> ObjId {
        let small_target = (view.capacity_bytes as f64 * SMALL_FRAC) as u64;
        // Prefer evicting from small once it exceeds its share.
        if self.small_bytes > small_target || self.main.is_empty() {
            // Pop small: promote objects with freq > 1, evict the first
            // cold one. Terminates: each promotion shrinks small.
            while let Some(front) = self.small.front() {
                let size = view.meta(front).map(|m| m.size as u64).unwrap_or(0);
                if self.freq.get(&front).copied().unwrap_or(0) > 1 {
                    self.promote_to_main(front, size);
                } else {
                    return front;
                }
            }
        }
        // Evict from main: reinsert while freq > 0 (decrementing).
        loop {
            let front = match self.main.front() {
                Some(f) => f,
                // Small exhausted its promotions into main concurrently —
                // fall back to whatever small still holds.
                None => return self.small.front().expect("S3-FIFO victim from empty cache"),
            };
            let f = self.freq.get(&front).copied().unwrap_or(0);
            if f > 0 {
                self.freq.insert(front, f - 1);
                self.main.move_to_back(front);
            } else {
                return front;
            }
        }
    }

    fn on_evict(&mut self, id: ObjId, view: &CacheView<'_>) {
        match self.loc.remove(&id) {
            Some(Loc::Small) => {
                let size = view.meta(id).map(|m| m.size as u64).unwrap_or(0);
                self.small.remove(id);
                self.small_bytes -= size;
                // Only small-queue evictions enter ghost (the paper's
                // design: ghost tracks "demoted too early" candidates).
                self.ghost_push(id);
            }
            Some(Loc::Main) => {
                self.main.remove(id);
            }
            None => {}
        }
        self.freq.remove(&id);
    }

    fn on_insert(&mut self, id: ObjId, view: &CacheView<'_>) {
        let size = view.meta(id).map(|m| m.size as u64).unwrap_or(0);
        if self.insert_to_main {
            self.main.push_back(id);
            self.loc.insert(id, Loc::Main);
        } else {
            self.small.push_back(id);
            self.loc.insert(id, Loc::Small);
            self.small_bytes += size;
        }
        self.freq.insert(id, 0);
        self.insert_to_main = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Cache;
    use crate::policies::basic::Lru;
    use policysmith_traces::{OpKind, Request};

    fn req(t: u64, obj: u64) -> Request {
        Request { time_us: t, obj, size: 100, op: OpKind::Read }
    }

    fn run<P: Policy>(policy: P, ids: &[u64], cap: u64) -> Cache<P> {
        let mut c = Cache::new(cap, policy);
        for (i, &id) in ids.iter().enumerate() {
            c.request(&req(i as u64, id));
        }
        c
    }

    #[test]
    fn one_hit_wonders_die_in_small() {
        // Popular pair hit often; a stream of one-hit wonders must not
        // displace them.
        let mut ids = vec![1, 2, 1, 2, 1, 2, 1, 2];
        for w in 100..140 {
            ids.push(w);
            ids.push(1);
            ids.push(2);
        }
        let c = run(S3Fifo::new(), &ids, 1_000);
        assert!(c.contains(1) && c.contains(2), "popular objects must survive");
    }

    #[test]
    fn ghost_rescues_prematurely_evicted() {
        let mut c = Cache::new(1_000, S3Fifo::new());
        let mut t = 0u64;
        let mut go = |c: &mut Cache<S3Fifo>, id: u64| {
            t += 1;
            c.request(&req(t, id));
        };
        // Fill small past its share so 50 gets evicted to ghost.
        go(&mut c, 50);
        for w in 200..215 {
            go(&mut c, w);
        }
        assert!(!c.contains(50), "50 should have been pushed out of small");
        // Re-request 50: ghost hit → goes straight to main.
        go(&mut c, 50);
        assert!(c.contains(50));
        assert_eq!(c.policy.loc.get(&50), Some(&Loc::Main));
    }

    #[test]
    fn main_reinsertion_respects_frequency() {
        // An object promoted to main with hits gets recirculated, not
        // evicted, while cold main objects go first.
        let mut ids = vec![];
        // make 1 hot (hits in small → freq > 1 → promoted)
        ids.extend([1, 1, 1]);
        // push small past its share so promotion happens
        for w in 300..340 {
            ids.push(w);
        }
        // hit 1 some more, then force main evictions
        ids.extend([1, 1]);
        for w in 400..440 {
            ids.push(w);
        }
        let c = run(S3Fifo::new(), &ids, 1_000);
        assert!(c.contains(1), "frequent main object should persist");
    }

    #[test]
    fn beats_lru_under_scan() {
        // Scan pollution: S3-FIFO should out-hit LRU.
        let mut ids = Vec::new();
        let mut scan = 10_000u64;
        for _ in 0..300 {
            for p in 0..6 {
                ids.push(p);
            }
            for _ in 0..4 {
                ids.push(scan);
                scan += 1;
            }
        }
        let cap = 800;
        let s3 = run(S3Fifo::new(), &ids, cap).result().hits;
        let lru = run(Lru::new(), &ids, cap).result().hits;
        assert!(s3 > lru, "S3-FIFO ({s3}) should beat LRU ({lru}) under scans");
    }

    #[test]
    fn accounting_stays_consistent() {
        let ids: Vec<u64> = (0..20_000u64).map(|i| (i * 2654435761) % 300).collect();
        let c = run(S3Fifo::new(), &ids, 2_500);
        // internal byte accounting must match queue membership
        let small_bytes_check: u64 = c.policy.small.iter().map(|_| 100u64).sum();
        assert_eq!(c.policy.small_bytes, small_bytes_check);
        assert_eq!(c.policy.small.len() + c.policy.main.len(), c.num_objects());
    }
}
