//! LeCaR — Learning Cache Replacement (HotStorage '18 \[60\]).
//!
//! Runs two experts — LRU and LFU — as shadow orderings over the *same*
//! resident set, and keeps a weight per expert. Each eviction samples an
//! expert by weight and uses its victim. Every eviction is remembered in a
//! ghost history tagged with the evicting expert; when a miss hits the
//! ghost of expert E, E is "regretted" and the *other* expert's weight is
//! multiplicatively boosted. Weights thus track which philosophy (recency
//! vs frequency) is currently losing the workload.

use crate::engine::{CacheView, ObjId, Policy};
use crate::util::LinkedQueue;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Learning rate of the multiplicative-weights update.
const LEARNING_RATE: f64 = 0.45;
/// Discount applied per request to the regret reward (older mistakes count
/// less), as in the original paper.
const DISCOUNT_BASE: f64 = 0.005;
/// Ghost history bound, in entries per resident object.
const HISTORY_FACTOR: usize = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expert {
    Lru,
    Lfu,
}

/// LeCaR eviction policy.
pub struct Lecar {
    // LRU expert ordering: front = MRU.
    lru: LinkedQueue,
    // LFU expert ordering.
    lfu_rank: BTreeSet<(u64, u64, ObjId)>,
    lfu_entry: HashMap<ObjId, (u64, u64)>,
    seq: u64,
    // weights
    w_lru: f64,
    w_lfu: f64,
    // ghost history: id -> (expert, eviction vtime)
    history: HashMap<ObjId, (Expert, u64)>,
    history_fifo: VecDeque<ObjId>,
    // deterministic expert sampling
    rng_state: u64,
    requests: u64,
}

impl Lecar {
    pub fn new() -> Self {
        Lecar {
            lru: LinkedQueue::new(),
            lfu_rank: BTreeSet::new(),
            lfu_entry: HashMap::new(),
            seq: 0,
            w_lru: 0.5,
            w_lfu: 0.5,
            history: HashMap::new(),
            history_fifo: VecDeque::new(),
            rng_state: 0x853c49e6748fea9b,
            requests: 0,
        }
    }

    /// Current LRU-expert weight (test/diagnostic hook).
    pub fn weight_lru(&self) -> f64 {
        self.w_lru
    }

    fn next_unit(&mut self) -> f64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn normalize(&mut self) {
        let total = self.w_lru + self.w_lfu;
        self.w_lru /= total;
        self.w_lfu /= total;
        // keep both experts alive
        self.w_lru = self.w_lru.clamp(0.01, 0.99);
        self.w_lfu = 1.0 - self.w_lru;
    }

    /// Regret update: the expert that evicted this ghost was wrong.
    fn regret(&mut self, expert: Expert, evict_vtime: u64, now: u64) {
        let age = now.saturating_sub(evict_vtime) as f64;
        let reward = DISCOUNT_BASE.powf(age / 1_000.0); // ∈ (0, 1]
        match expert {
            Expert::Lru => self.w_lfu *= (LEARNING_RATE * reward).exp(),
            Expert::Lfu => self.w_lru *= (LEARNING_RATE * reward).exp(),
        }
        self.normalize();
    }

    fn lfu_touch(&mut self, id: ObjId) {
        if let Some(&(count, seq)) = self.lfu_entry.get(&id) {
            self.lfu_rank.remove(&(count, seq, id));
            self.lfu_rank.insert((count + 1, seq, id));
            self.lfu_entry.insert(id, (count + 1, seq));
        }
    }

    fn history_insert(&mut self, id: ObjId, expert: Expert, vtime: u64, residents: usize) {
        if self.history.insert(id, (expert, vtime)).is_none() {
            self.history_fifo.push_back(id);
        }
        let bound = (HISTORY_FACTOR * residents).max(32);
        while self.history_fifo.len() > bound {
            let old = self.history_fifo.pop_front().unwrap();
            self.history.remove(&old);
        }
    }
}

impl Default for Lecar {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for Lecar {
    fn name(&self) -> &str {
        "LeCaR"
    }

    fn on_hit(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.requests += 1;
        self.lru.move_to_front(id);
        self.lfu_touch(id);
    }

    fn on_miss(&mut self, id: ObjId, view: &CacheView<'_>) {
        self.requests += 1;
        if let Some((expert, evict_vtime)) = self.history.remove(&id) {
            if let Some(pos) = self.history_fifo.iter().position(|&x| x == id) {
                self.history_fifo.remove(pos);
            }
            self.regret(expert, evict_vtime, view.vtime);
        }
    }

    fn victim(&mut self, _view: &CacheView<'_>) -> ObjId {
        let use_lru = self.next_unit() < self.w_lru;
        let (primary, fallback) = if use_lru {
            (self.lru.back(), self.lfu_rank.first().map(|e| e.2))
        } else {
            (self.lfu_rank.first().map(|e| e.2), self.lru.back())
        };
        primary.or(fallback).expect("LeCaR victim from empty cache")
    }

    fn on_evict(&mut self, id: ObjId, view: &CacheView<'_>) {
        // Tag the ghost with the expert that would have chosen it. If both
        // agree, no regret is learnable — tag by the sampled side anyway
        // (original LeCaR tags by the acting expert; we reconstruct it from
        // which ordering had the object at its victim position).
        let was_lru_choice = self.lru.back() == Some(id);
        let was_lfu_choice = self.lfu_rank.first().map(|e| e.2) == Some(id);
        let expert = match (was_lru_choice, was_lfu_choice) {
            (true, false) => Some(Expert::Lru),
            (false, true) => Some(Expert::Lfu),
            _ => None, // agreement (or neither): no learning signal
        };
        self.lru.remove(id);
        if let Some((count, seq)) = self.lfu_entry.remove(&id) {
            self.lfu_rank.remove(&(count, seq, id));
        }
        if let Some(e) = expert {
            self.history_insert(id, e, view.vtime, view.num_objects());
        }
    }

    fn on_insert(&mut self, id: ObjId, _view: &CacheView<'_>) {
        self.lru.push_front(id);
        self.seq += 1;
        self.lfu_entry.insert(id, (1, self.seq));
        self.lfu_rank.insert((1, self.seq, id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Cache;
    use policysmith_traces::{OpKind, Request};

    fn req(t: u64, obj: u64) -> Request {
        Request { time_us: t, obj, size: 100, op: OpKind::Read }
    }

    fn run(ids: &[u64], cap: u64) -> Cache<Lecar> {
        let mut c = Cache::new(cap, Lecar::new());
        for (i, &id) in ids.iter().enumerate() {
            c.request(&req(i as u64, id));
        }
        c
    }

    #[test]
    fn weights_stay_normalized() {
        let ids: Vec<u64> = (0..20_000u64).map(|i| (i * 2654435761) % 300).collect();
        let c = run(&ids, 2_000);
        let w = c.policy.w_lru + c.policy.w_lfu;
        assert!((w - 1.0).abs() < 1e-9);
        assert!(c.policy.w_lru >= 0.01 && c.policy.w_lru <= 0.99);
    }

    #[test]
    fn shadow_structures_track_residents() {
        let ids: Vec<u64> = (0..10_000u64).map(|i| (i * 7) % 120).collect();
        let c = run(&ids, 1_500);
        assert_eq!(c.policy.lru.len(), c.num_objects());
        assert_eq!(c.policy.lfu_rank.len(), c.num_objects());
        assert_eq!(c.policy.lfu_entry.len(), c.num_objects());
    }

    #[test]
    fn frequency_workload_shifts_weight_to_lfu() {
        // Workload where LRU's choices keep coming back (classic LFU-win):
        // a few very hot objects plus a churning tail that LRU keeps
        // caching at the hot set's expense.
        let mut ids = Vec::new();
        for r in 0..4_000u64 {
            ids.push(r % 3); // hot trio
            ids.push(10_000 + r); // one-hit wonder
            if r % 7 == 0 {
                // re-touch a recently evicted hot object pattern
                ids.push((r / 7) % 3);
            }
        }
        let c = run(&ids, 600);
        // LFU should not have lost weight catastrophically; in most runs it
        // gains. Assert it holds a meaningful share.
        assert!(c.policy.w_lfu > 0.3, "LFU weight collapsed to {}", c.policy.w_lfu);
    }

    #[test]
    fn deterministic() {
        let ids: Vec<u64> = (0..5_000u64).map(|i| (i * 31) % 100).collect();
        let a = run(&ids, 1_000).result();
        let b = run(&ids, 1_000).result();
        assert_eq!(a, b);
    }

    #[test]
    fn history_bounded() {
        let ids: Vec<u64> = (0..30_000u64).collect(); // scan: heavy evictions
        let c = run(&ids, 1_000);
        assert!(c.policy.history.len() <= (c.num_objects()).max(32) + 1);
        assert_eq!(c.policy.history.len(), c.policy.history_fifo.len());
    }
}
