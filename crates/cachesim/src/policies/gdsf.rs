//! GreedyDual-Size-Frequency (Cherkasova \[15\]).
//!
//! Priority `H(o) = L + freq(o) * cost / size(o)` with uniform cost; `L`
//! (the "inflation clock") is raised to the priority of each evicted
//! object, which ages everything else implicitly. GDSF is the strongest
//! classical baseline in the paper's Figure 2 — the synthesized heuristics
//! are explicitly compared against it — because it is the only classical
//! policy that combines frequency *and* size.

use crate::engine::{CacheView, ObjId, Policy};
use crate::util::OrderedF64;
use std::collections::{BTreeSet, HashMap};

/// GDSF eviction policy.
#[derive(Debug, Default)]
pub struct Gdsf {
    /// (priority, id) ranking; min = victim.
    ranking: BTreeSet<(OrderedF64, ObjId)>,
    prio: HashMap<ObjId, f64>,
    freq: HashMap<ObjId, u64>,
    /// Inflation clock L.
    clock: f64,
}

impl Gdsf {
    pub fn new() -> Self {
        Self::default()
    }

    fn reprioritize(&mut self, id: ObjId, size: u32) {
        let freq = *self.freq.get(&id).unwrap_or(&1);
        if let Some(old) = self.prio.remove(&id) {
            self.ranking.remove(&(OrderedF64::new(old), id));
        }
        let h = self.clock + freq as f64 / size.max(1) as f64;
        self.prio.insert(id, h);
        self.ranking.insert((OrderedF64::new(h), id));
    }
}

impl Policy for Gdsf {
    fn name(&self) -> &str {
        "GDSF"
    }

    fn on_hit(&mut self, id: ObjId, view: &CacheView<'_>) {
        *self.freq.entry(id).or_insert(1) += 1;
        let size = view.meta(id).map(|m| m.size).unwrap_or(1);
        self.reprioritize(id, size);
    }

    fn victim(&mut self, _view: &CacheView<'_>) -> ObjId {
        self.ranking.first().expect("GDSF victim from empty cache").1
    }

    fn on_evict(&mut self, id: ObjId, _view: &CacheView<'_>) {
        if let Some(h) = self.prio.remove(&id) {
            // The clock only moves forward.
            self.clock = self.clock.max(h);
            self.ranking.remove(&(OrderedF64::new(h), id));
        }
        self.freq.remove(&id);
    }

    fn on_insert(&mut self, id: ObjId, view: &CacheView<'_>) {
        self.freq.insert(id, 1);
        let size = view.meta(id).map(|m| m.size).unwrap_or(1);
        self.reprioritize(id, size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Cache;
    use policysmith_traces::{OpKind, Request};

    fn req(t: u64, obj: u64, size: u32) -> Request {
        Request { time_us: t, obj, size, op: OpKind::Read }
    }

    #[test]
    fn prefers_evicting_large_cold_objects() {
        let mut c = Cache::new(1_000, Gdsf::new());
        c.request(&req(1, 1, 400)); // large
        c.request(&req(2, 2, 100)); // small
        c.request(&req(3, 3, 100)); // small
        c.request(&req(4, 4, 500)); // forces eviction
                                    // equal freq → large object 1 has the lowest H
        assert!(!c.contains(1));
        assert!(c.contains(2) && c.contains(3) && c.contains(4));
    }

    #[test]
    fn frequency_rescues_large_objects() {
        let mut c = Cache::new(1_000, Gdsf::new());
        c.request(&req(1, 1, 400));
        for t in 2..12 {
            c.request(&req(t, 1, 400)); // freq(1) = 11
        }
        c.request(&req(20, 2, 100));
        c.request(&req(21, 3, 100));
        c.request(&req(22, 4, 500)); // must free 100 bytes
                                     // 1 has H = 11/400 ≈ 0.0275 > 2,3's 1/100 = 0.01 → a cold small
                                     // object goes first (2 by id tie-break), the hot large one stays.
        assert!(c.contains(1), "hot large object survives");
        assert!(!c.contains(2));
        assert!(c.contains(3) && c.contains(4));
    }

    #[test]
    fn clock_inflation_ages_old_entries() {
        let mut c = Cache::new(300, Gdsf::new());
        // Object 1: very frequent early on.
        for t in 0..20 {
            c.request(&req(t, 1, 100));
        }
        // Long stream of fresh objects pushes the clock up; eventually the
        // aged object 1 must be evictable even though its freq was high.
        for (t, id) in (100..).zip(2..500u64) {
            c.request(&req(t, id, 100));
            if !c.contains(1) {
                break;
            }
        }
        assert!(!c.contains(1), "inflation must eventually age out stale-hot objects");
    }

    #[test]
    fn ranking_consistent_after_churn() {
        let ids: Vec<u64> = (0..10_000u64).map(|i| (i * 31) % 200).collect();
        let mut c = Cache::new(2_000, Gdsf::new());
        for (i, &id) in ids.iter().enumerate() {
            c.request(&req(i as u64, id, 50 + (id % 7) as u32 * 33));
        }
        assert_eq!(c.policy.ranking.len(), c.num_objects());
        assert_eq!(c.policy.prio.len(), c.num_objects());
    }
}
