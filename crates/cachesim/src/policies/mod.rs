//! Baseline eviction policies.
//!
//! The paper's §4.2.2 evaluates fourteen baselines; this module provides
//! those plus ARC and 2Q (both discussed in the paper's §2), all
//! implemented from scratch against the [`crate::engine::Policy`] trait:
//!
//! | name | module | one-liner |
//! |------|--------|-----------|
//! | FIFO, LRU, MRU, LFU | [`basic`] | the classics |
//! | FIFO-Re | [`clock`] | second-chance clock |
//! | SIEVE | [`clock`] | lazy-promotion sieve hand |
//! | S3-FIFO | [`s3fifo`] | small/main/ghost FIFO trio |
//! | GDSF | [`gdsf`] | inflation clock + freq/size priority |
//! | LHD | [`lhd`] | sampled least hit density |
//! | LIRS | [`lirs`] | inter-reference recency stack |
//! | TwoQ | [`twoq`] | probation FIFO + proven LRU |
//! | ARC | [`arc`] | self-tuning recency/frequency split |
//! | LeCaR | [`lecar`] | regret-weighted LRU+LFU experts |
//! | SR-LFU, CR-LRU, CACHEUS | [`cacheus`] | CACHEUS experts + arbiter |

pub mod arc;
pub mod basic;
pub mod cacheus;
pub mod clock;
pub mod gdsf;
pub mod lecar;
pub mod lhd;
pub mod lirs;
pub mod s3fifo;
pub mod twoq;

pub use arc::Arc;
pub use basic::{Fifo, Lfu, Lru, Mru};
pub use cacheus::{Cacheus, CrLru, SrLfu};
pub use clock::{FifoReinsertion, Sieve};
pub use gdsf::Gdsf;
pub use lecar::Lecar;
pub use lhd::Lhd;
pub use lirs::Lirs;
pub use s3fifo::S3Fifo;
pub use twoq::TwoQ;

use crate::engine::Policy;

/// Construct a baseline by its display name (as printed in experiment
/// tables). Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<Box<dyn Policy>> {
    Some(match name {
        "FIFO" => Box::new(Fifo::new()),
        "LRU" => Box::new(Lru::new()),
        "MRU" => Box::new(Mru::new()),
        "LFU" => Box::new(Lfu::new()),
        "FIFO-Re" => Box::new(FifoReinsertion::new()),
        "SIEVE" => Box::new(Sieve::new()),
        "S3-FIFO" => Box::new(S3Fifo::new()),
        "GDSF" => Box::new(Gdsf::new()),
        "LHD" => Box::new(Lhd::new()),
        "LIRS" => Box::new(Lirs::new()),
        "TwoQ" => Box::new(TwoQ::new()),
        "ARC" => Box::new(Arc::new()),
        "LeCaR" => Box::new(Lecar::new()),
        "SR-LFU" => Box::new(SrLfu::new()),
        "CR-LRU" => Box::new(CrLru::new()),
        "CACHEUS" => Box::new(Cacheus::new()),
        _ => return None,
    })
}

/// The paper's fourteen §4.2.2 baselines, in its listing order.
pub fn paper_baseline_names() -> &'static [&'static str] {
    &[
        "GDSF", "S3-FIFO", "SIEVE", "LIRS", "LHD", "CACHEUS", "FIFO-Re", "LeCaR", "SR-LFU",
        "CR-LRU", "LRU", "MRU", "FIFO", "LFU",
    ]
}

/// All sixteen built-in baselines (paper set + ARC + TwoQ).
pub fn all_baseline_names() -> &'static [&'static str] {
    &[
        "GDSF", "S3-FIFO", "SIEVE", "LIRS", "LHD", "CACHEUS", "FIFO-Re", "LeCaR", "SR-LFU",
        "CR-LRU", "LRU", "MRU", "FIFO", "LFU", "ARC", "TwoQ",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_every_listed_name() {
        for name in all_baseline_names() {
            let p = by_name(name).unwrap_or_else(|| panic!("unknown baseline {name}"));
            assert_eq!(&p.name(), name);
        }
        assert!(by_name("BELADY").is_none());
    }

    #[test]
    fn paper_set_has_fourteen() {
        assert_eq!(paper_baseline_names().len(), 14);
        assert_eq!(all_baseline_names().len(), 16);
        for n in paper_baseline_names() {
            assert!(all_baseline_names().contains(n));
        }
    }
}
