//! Eviction-ranking structures for the priority-template host.
//!
//! The host needs one ordered index over `(score, id)` pairs: rescore the
//! accessed object on every access, pop the exact minimum on eviction.
//! [`HeapRank`] is the production structure — a dense slab (object → small
//! slot index, freed slots reused) holding the *current* score, plus a
//! binary min-heap with lazy deletion: rescoring pushes a new heap entry
//! instead of deleting the old one, and [`EvictionRank::peek_min`] discards
//! entries whose `(score, id)` no longer matches the slab. That turns the
//! old `BTreeSet` remove+insert (two tree walks with node traffic per
//! access) into one slab store and one heap push, while preserving the
//! exact `(score, id)` eviction order.
//!
//! [`BTreeRank`] keeps the original `BTreeSet + HashMap` implementation as
//! the differential reference: the property tests drive both structures
//! with identical op sequences and demand identical minima, and the
//! `rank` micro-benchmark tracks the rescore/evict cost of each so future
//! host changes have a baseline.

use crate::engine::ObjId;
use crate::util::IdMap;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// An ordered index over `(score, id)` pairs with exact min-order pops.
///
/// The contract all implementations share (and the property tests check):
/// the minimum is the smallest `(score, id)` tuple over *currently set*
/// objects — score first, object id as the tie-break.
pub trait EvictionRank {
    /// Insert `id` or update its score.
    fn set(&mut self, id: ObjId, score: i64);
    /// Current score of `id`, if set.
    fn get(&self, id: ObjId) -> Option<i64>;
    /// Remove `id`; returns whether it was present.
    fn remove(&mut self, id: ObjId) -> bool;
    /// The minimum `(score, id)` pair. `&mut` because lazy implementations
    /// compact stale entries while peeking.
    fn peek_min(&mut self) -> Option<(i64, ObjId)>;
    /// Number of objects currently set.
    fn len(&self) -> usize;
    /// Is the index empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One slab slot. `live` distinguishes freed slots during compaction scans.
#[derive(Debug, Clone, Copy)]
struct Slot {
    id: ObjId,
    score: i64,
    live: bool,
}

/// The production ranking: dense slab + lazy-deletion binary heap.
#[derive(Debug, Default)]
pub struct HeapRank {
    /// ObjId → slab slot.
    index: IdMap<ObjId, u32>,
    /// Current scores, contiguous; freed slots are recycled via `free`.
    slab: Vec<Slot>,
    free: Vec<u32>,
    /// Min-heap of every score ever assigned and not yet discarded. Each
    /// entry carries the slab slot it described; an entry is live iff that
    /// slot still holds its `(score, id)` — an array read, not a hash
    /// lookup, on the victim path. The slot is ordered *after* `(score,
    /// id)`, so duplicates of one logical key never reorder evictions.
    heap: BinaryHeap<Reverse<(i64, ObjId, u32)>>,
}

impl HeapRank {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop stale heap entries once they outnumber live ones 2:1 — bounds
    /// heap growth to O(live) amortized without a per-op index update.
    fn maybe_compact(&mut self) {
        if self.heap.len() > 2 * self.index.len() + 64 {
            self.heap = self
                .slab
                .iter()
                .enumerate()
                .filter(|(_, s)| s.live)
                .map(|(ix, s)| Reverse((s.score, s.id, ix as u32)))
                .collect();
        }
    }
}

impl EvictionRank for HeapRank {
    fn set(&mut self, id: ObjId, score: i64) {
        let ix = match self.index.entry(id) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let ix = *e.get();
                let slot = &mut self.slab[ix as usize];
                if slot.score == score {
                    // the live heap entry for (score, id, ix) is still valid
                    return;
                }
                slot.score = score;
                ix
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let slot = Slot { id, score, live: true };
                let ix = match self.free.pop() {
                    Some(ix) => {
                        self.slab[ix as usize] = slot;
                        ix
                    }
                    None => {
                        self.slab.push(slot);
                        (self.slab.len() - 1) as u32
                    }
                };
                e.insert(ix);
                ix
            }
        };
        self.heap.push(Reverse((score, id, ix)));
        self.maybe_compact();
    }

    fn get(&self, id: ObjId) -> Option<i64> {
        self.index.get(&id).map(|&ix| self.slab[ix as usize].score)
    }

    fn remove(&mut self, id: ObjId) -> bool {
        match self.index.remove(&id) {
            Some(ix) => {
                self.slab[ix as usize].live = false;
                self.free.push(ix);
                true
            }
            None => false,
        }
    }

    fn peek_min(&mut self) -> Option<(i64, ObjId)> {
        while let Some(&Reverse((score, id, ix))) = self.heap.peek() {
            let slot = &self.slab[ix as usize];
            if slot.live && slot.id == id && slot.score == score {
                return Some((score, id));
            }
            self.heap.pop();
        }
        None
    }

    fn len(&self) -> usize {
        self.index.len()
    }
}

/// The original `BTreeSet + HashMap` ranking — the differential reference.
#[derive(Debug, Default)]
pub struct BTreeRank {
    set: BTreeSet<(i64, ObjId)>,
    score: HashMap<ObjId, i64>,
}

impl BTreeRank {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EvictionRank for BTreeRank {
    fn set(&mut self, id: ObjId, score: i64) {
        if let Some(old) = self.score.insert(id, score) {
            self.set.remove(&(old, id));
        }
        self.set.insert((score, id));
    }

    fn get(&self, id: ObjId) -> Option<i64> {
        self.score.get(&id).copied()
    }

    fn remove(&mut self, id: ObjId) -> bool {
        match self.score.remove(&id) {
            Some(old) => {
                self.set.remove(&(old, id));
                true
            }
            None => false,
        }
    }

    fn peek_min(&mut self) -> Option<(i64, ObjId)> {
        self.set.first().copied()
    }

    fn len(&self) -> usize {
        self.score.len()
    }
}

/// Either ranking behind one dispatch point, so the host can be flipped to
/// the reference structure for differential tests and baseline benchmarks
/// without a generic parameter leaking into its public type.
#[derive(Debug)]
pub enum Rank {
    /// The production slab + lazy heap.
    Heap(HeapRank),
    /// The reference `BTreeSet` index.
    BTree(BTreeRank),
}

impl EvictionRank for Rank {
    fn set(&mut self, id: ObjId, score: i64) {
        match self {
            Rank::Heap(r) => r.set(id, score),
            Rank::BTree(r) => r.set(id, score),
        }
    }

    fn get(&self, id: ObjId) -> Option<i64> {
        match self {
            Rank::Heap(r) => r.get(id),
            Rank::BTree(r) => r.get(id),
        }
    }

    fn remove(&mut self, id: ObjId) -> bool {
        match self {
            Rank::Heap(r) => r.remove(id),
            Rank::BTree(r) => r.remove(id),
        }
    }

    fn peek_min(&mut self) -> Option<(i64, ObjId)> {
        match self {
            Rank::Heap(r) => r.peek_min(),
            Rank::BTree(r) => r.peek_min(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Rank::Heap(r) => r.len(),
            Rank::BTree(r) => r.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<R: EvictionRank>(r: &mut R) -> Vec<(i64, ObjId)> {
        let mut out = Vec::new();
        while let Some((s, id)) = r.peek_min() {
            out.push((s, id));
            r.remove(id);
        }
        out
    }

    #[test]
    fn min_order_with_ties_matches_reference() {
        let mut h = HeapRank::new();
        let mut b = BTreeRank::new();
        for (id, score) in [(3u64, 5i64), (1, 5), (2, 4), (9, 4), (7, 6)] {
            h.set(id, score);
            b.set(id, score);
            assert_eq!(h.peek_min(), b.peek_min());
        }
        assert_eq!(drain(&mut h), drain(&mut b));
    }

    #[test]
    fn rescore_discards_stale_entries() {
        let mut h = HeapRank::new();
        h.set(1, 10);
        h.set(2, 20);
        h.set(1, 30); // stale (10, 1) must not surface
        assert_eq!(h.peek_min(), Some((20, 2)));
        h.set(1, 10); // back to the old value: old entry is valid again
        assert_eq!(h.peek_min(), Some((10, 1)));
        assert_eq!(h.get(1), Some(10));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn remove_then_reinsert_same_score() {
        let mut h = HeapRank::new();
        h.set(1, 7);
        h.set(2, 9);
        assert!(h.remove(1));
        assert_eq!(h.peek_min(), Some((9, 2)));
        h.set(1, 7); // slot recycled, old heap entry may or may not linger
        assert_eq!(h.peek_min(), Some((7, 1)));
        assert!(!h.remove(42));
    }

    #[test]
    fn compaction_bounds_heap_growth() {
        let mut h = HeapRank::new();
        for round in 0..1_000i64 {
            for id in 0..8u64 {
                h.set(id, round * 8 + id as i64);
            }
        }
        assert!(h.heap.len() <= 2 * h.len() + 64, "heap grew to {}", h.heap.len());
        assert_eq!(h.peek_min(), Some((999 * 8, 0)));
    }
}
