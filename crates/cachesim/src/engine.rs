//! The cache engine: residency, byte accounting, and the [`Policy`] trait.
//!
//! Mirrors libCacheSim's event-driven design (the substrate the paper's §4
//! prototype builds on): the engine owns the object table and capacity
//! bookkeeping; a pluggable eviction policy owns the *decision* state and is
//! driven by callbacks. One `simulate` run is a pure function of
//! `(trace, capacity, policy)`.
//!
//! Virtual time is the request index (`vtime`), the convention libCacheSim
//! uses for age-based features; wall-clock microseconds from the trace are
//! also available in [`ObjMeta`] for policies that want them.

use crate::util::IdMap;
use policysmith_traces::{Request, Trace};

/// Object identifier (trace object id).
pub type ObjId = u64;

/// Engine-owned metadata for a resident object — the "per object" feature
/// block of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjMeta {
    /// Object size in bytes.
    pub size: u32,
    /// Virtual time (request index) of insertion.
    pub insert_vtime: u64,
    /// Virtual time of the most recent access.
    pub last_vtime: u64,
    /// Wall time (µs) of the most recent access.
    pub last_us: u64,
    /// Accesses since insertion, counting the inserting miss.
    pub access_count: u64,
}

/// Read-only view of engine state passed to policy callbacks.
pub struct CacheView<'a> {
    objects: &'a IdMap<ObjId, ObjMeta>,
    pub vtime: u64,
    pub now_us: u64,
    pub used_bytes: u64,
    pub capacity_bytes: u64,
}

impl<'a> CacheView<'a> {
    /// Metadata of a resident object.
    pub fn meta(&self, id: ObjId) -> Option<&ObjMeta> {
        self.objects.get(&id)
    }

    /// Number of resident objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }
}

/// An eviction policy. The engine guarantees the callback discipline:
///
/// * `on_hit(id)` — `id` is resident; meta already updated for this access.
/// * `on_miss(id)` — `id` is not resident (ghost bookkeeping hook); called
///   before any insertion/eviction for this request.
/// * `victim()` — must return a currently-resident object; called once per
///   eviction (repeatedly for one insertion if space demands). May mutate
///   internal structures (hand movement, queue migration, …).
/// * `on_evict(id)` — the engine is evicting `id` (meta still readable).
/// * `on_insert(id)` — `id` just became resident.
pub trait Policy {
    /// Display name (stable; used in experiment tables).
    fn name(&self) -> &str;

    /// A resident object was accessed.
    fn on_hit(&mut self, id: ObjId, view: &CacheView<'_>);

    /// A non-resident object was requested (before insertion).
    fn on_miss(&mut self, _id: ObjId, _view: &CacheView<'_>) {}

    /// Choose the object to evict.
    fn victim(&mut self, view: &CacheView<'_>) -> ObjId;

    /// The engine is evicting `id`.
    fn on_evict(&mut self, id: ObjId, view: &CacheView<'_>);

    /// `id` just became resident.
    fn on_insert(&mut self, id: ObjId, view: &CacheView<'_>);
}

/// Aggregate counters of one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimResult {
    pub requests: u64,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Requests whose object exceeds the whole capacity (never cached).
    pub bypasses: u64,
    pub hit_bytes: u64,
    pub miss_bytes: u64,
}

impl SimResult {
    /// Object miss ratio — the paper's §4 objective.
    pub fn miss_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.misses as f64 / self.requests as f64
        }
    }

    /// Byte miss ratio.
    pub fn byte_miss_ratio(&self) -> f64 {
        let total = self.hit_bytes + self.miss_bytes;
        if total == 0 {
            0.0
        } else {
            self.miss_bytes as f64 / total as f64
        }
    }
}

/// The cache engine.
pub struct Cache<P: Policy> {
    pub policy: P,
    objects: IdMap<ObjId, ObjMeta>,
    used_bytes: u64,
    capacity_bytes: u64,
    vtime: u64,
    now_us: u64,
    result: SimResult,
}

/// Construct a `CacheView` borrowing only the engine's data fields, leaving
/// `self.policy` free for the simultaneous `&mut` the callbacks need.
macro_rules! engine_view {
    ($self:ident) => {
        CacheView {
            objects: &$self.objects,
            vtime: $self.vtime,
            now_us: $self.now_us,
            used_bytes: $self.used_bytes,
            capacity_bytes: $self.capacity_bytes,
        }
    };
}

impl<P: Policy> Cache<P> {
    /// Create a cache of `capacity_bytes` driven by `policy`.
    pub fn new(capacity_bytes: u64, policy: P) -> Self {
        assert!(capacity_bytes > 0, "capacity must be positive");
        Cache {
            policy,
            objects: IdMap::default(),
            used_bytes: 0,
            capacity_bytes,
            vtime: 0,
            now_us: 0,
            result: SimResult::default(),
        }
    }

    /// Snapshot view for assertions; the hot path uses `engine_view!` to
    /// split borrows with `self.policy`.
    #[cfg(test)]
    fn view(&self) -> CacheView<'_> {
        CacheView {
            objects: &self.objects,
            vtime: self.vtime,
            now_us: self.now_us,
            used_bytes: self.used_bytes,
            capacity_bytes: self.capacity_bytes,
        }
    }

    /// Process one request; returns `true` on hit.
    pub fn request(&mut self, req: &Request) -> bool {
        self.vtime += 1;
        self.now_us = req.time_us;
        self.result.requests += 1;

        if let Some(meta) = self.objects.get_mut(&req.obj) {
            meta.access_count += 1;
            meta.last_vtime = self.vtime;
            meta.last_us = req.time_us;
            self.result.hits += 1;
            self.result.hit_bytes += meta.size as u64;
            let view = engine_view!(self);
            self.policy.on_hit(req.obj, &view);
            return true;
        }

        self.result.misses += 1;
        self.result.miss_bytes += req.size as u64;
        let view = engine_view!(self);
        self.policy.on_miss(req.obj, &view);

        if req.size as u64 > self.capacity_bytes {
            self.result.bypasses += 1;
            return false;
        }

        // Make room.
        while self.used_bytes + req.size as u64 > self.capacity_bytes {
            let view = engine_view!(self);
            let victim = self.policy.victim(&view);
            let meta = self.objects.get(&victim).copied().unwrap_or_else(|| {
                panic!("policy {} evicted non-resident {victim}", self.policy.name())
            });
            let view = engine_view!(self);
            self.policy.on_evict(victim, &view);
            self.objects.remove(&victim);
            self.used_bytes -= meta.size as u64;
            self.result.evictions += 1;
        }

        self.objects.insert(
            req.obj,
            ObjMeta {
                size: req.size,
                insert_vtime: self.vtime,
                last_vtime: self.vtime,
                last_us: req.time_us,
                access_count: 1,
            },
        );
        self.used_bytes += req.size as u64;
        let view = engine_view!(self);
        self.policy.on_insert(req.obj, &view);
        false
    }

    /// Run a whole trace.
    pub fn run(&mut self, trace: &Trace) -> SimResult {
        for req in &trace.requests {
            self.request(req);
        }
        self.result
    }

    /// Counters so far.
    pub fn result(&self) -> SimResult {
        self.result
    }

    /// Residency check (tests / invariants).
    pub fn contains(&self, id: ObjId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Bytes currently used.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Configured capacity.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Number of resident objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }
}

/// Convenience: simulate `trace` at `capacity_bytes` under `policy`.
pub fn simulate<P: Policy>(trace: &Trace, capacity_bytes: u64, policy: P) -> SimResult {
    Cache::new(capacity_bytes, policy).run(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use policysmith_traces::{OpKind, Request};

    /// FIFO test double local to the engine tests.
    struct TestFifo {
        queue: std::collections::VecDeque<ObjId>,
    }

    impl Policy for TestFifo {
        fn name(&self) -> &str {
            "test-fifo"
        }
        fn on_hit(&mut self, _id: ObjId, _view: &CacheView<'_>) {}
        fn victim(&mut self, _view: &CacheView<'_>) -> ObjId {
            *self.queue.front().expect("victim from empty queue")
        }
        fn on_evict(&mut self, id: ObjId, _view: &CacheView<'_>) {
            let pos = self.queue.iter().position(|&x| x == id).unwrap();
            self.queue.remove(pos);
        }
        fn on_insert(&mut self, id: ObjId, _view: &CacheView<'_>) {
            self.queue.push_back(id);
        }
    }

    fn req(t: u64, obj: u64, size: u32) -> Request {
        Request { time_us: t, obj, size, op: OpKind::Read }
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = Cache::new(1000, TestFifo { queue: Default::default() });
        assert!(!c.request(&req(1, 1, 100))); // miss
        assert!(c.request(&req(2, 1, 100))); // hit
        assert!(!c.request(&req(3, 2, 100))); // miss
        let r = c.result();
        assert_eq!(r.requests, 3);
        assert_eq!(r.hits, 1);
        assert_eq!(r.misses, 2);
        assert_eq!(c.used_bytes(), 200);
        assert_eq!(c.num_objects(), 2);
    }

    #[test]
    fn eviction_when_full() {
        let mut c = Cache::new(250, TestFifo { queue: Default::default() });
        c.request(&req(1, 1, 100));
        c.request(&req(2, 2, 100));
        c.request(&req(3, 3, 100)); // evicts obj 1 (FIFO)
        assert!(!c.contains(1));
        assert!(c.contains(2) && c.contains(3));
        assert_eq!(c.result().evictions, 1);
        assert!(c.used_bytes() <= 250);
    }

    #[test]
    fn multi_eviction_for_large_insert() {
        let mut c = Cache::new(300, TestFifo { queue: Default::default() });
        c.request(&req(1, 1, 100));
        c.request(&req(2, 2, 100));
        c.request(&req(3, 3, 100));
        c.request(&req(4, 4, 250)); // needs to evict 1 and 2 and 3
        assert_eq!(c.result().evictions, 3);
        assert!(c.contains(4));
        assert_eq!(c.num_objects(), 1);
    }

    #[test]
    fn oversized_object_bypasses() {
        let mut c = Cache::new(100, TestFifo { queue: Default::default() });
        c.request(&req(1, 1, 500));
        assert_eq!(c.result().bypasses, 1);
        assert_eq!(c.num_objects(), 0);
        // and again: still a miss, never cached
        c.request(&req(2, 1, 500));
        assert_eq!(c.result().misses, 2);
    }

    #[test]
    fn meta_updated_on_access() {
        let mut c = Cache::new(1000, TestFifo { queue: Default::default() });
        c.request(&req(10, 1, 100));
        c.request(&req(20, 2, 100));
        c.request(&req(30, 1, 100));
        let view = c.view();
        let m = view.meta(1).unwrap();
        assert_eq!(m.access_count, 2);
        assert_eq!(m.insert_vtime, 1);
        assert_eq!(m.last_vtime, 3);
        assert_eq!(m.last_us, 30);
    }

    #[test]
    fn miss_ratio_math() {
        let r = SimResult { requests: 10, hits: 4, misses: 6, ..Default::default() };
        assert!((r.miss_ratio() - 0.6).abs() < 1e-12);
        assert_eq!(SimResult::default().miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Cache::new(0, TestFifo { queue: Default::default() });
    }
}
