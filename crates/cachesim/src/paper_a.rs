//! The paper's Listing 1 — "Heuristic A", the best CloudPhysics heuristic
//! PolicySmith discovered — embedded as a built-in policy.
//!
//! The listing is pseudo-C; the translation below is faithful with one
//! typed correction: the original line `if (obj_info.last_accessed <
//! ages.percentile(0.75)) score -= 30;` compares a *timestamp* to an *age*
//! (LLM-generated code…). The evident intent — penalize objects older than
//! the 75th-percentile age — is what we encode (`obj.age > ages.p75`).
//! Constants are unchanged.

use crate::psq::PriorityPolicy;

/// Listing 1 in this crate's DSL syntax.
pub const LISTING1_SOURCE: &str = "\
obj.count * 20 \
- obj.age / 300 \
- obj.size / 500 \
+ if(hist.contains, hist.count * 15 + hist.age_at_evict / 150, -40) \
+ if(obj.age > ages.p75, -30, 0) \
+ if(obj.size > sizes.p75, -25, 10) \
+ if(obj.count > counts.p70, 50, -5) \
+ if(obj.age < 1000, 25, 0) \
+ if(obj.count < 3, -15, 0)";

/// Build Heuristic A as a runnable policy.
pub fn paper_heuristic_a() -> PriorityPolicy {
    PriorityPolicy::from_source("PS-A(paper)", LISTING1_SOURCE)
        .expect("Listing 1 translation parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, Cache};
    use policysmith_dsl::{check, Mode};
    use policysmith_traces::cloudphysics;

    #[test]
    fn listing1_parses_and_checks() {
        let e = policysmith_dsl::parse(LISTING1_SOURCE).unwrap();
        check(&e, Mode::Cache).unwrap();
        // uses all three Table-1 feature families
        let feats = e.features();
        assert!(feats.iter().any(|f| matches!(f, policysmith_dsl::Feature::HistContains)));
        assert!(feats.iter().any(|f| matches!(f, policysmith_dsl::Feature::AgesPct(_))));
        assert!(feats.iter().any(|f| matches!(f, policysmith_dsl::Feature::ObjSize)));
    }

    #[test]
    fn heuristic_a_runs_clean_on_cloudphysics() {
        // Must simulate without runtime faults. NOTE: it is *not* asserted
        // to beat FIFO here — the listing's constants are tuned to the real
        // CloudPhysics w89 timescales and do not transfer to our synthetic
        // stand-in (EXPERIMENTS.md LST1 discusses this; it is itself a
        // demonstration of the paper's instance-optimality thesis).
        let trace = cloudphysics().trace(89, 30_000);
        let footprint = policysmith_traces::footprint_bytes(&trace);
        let cap = (footprint / 10).max(1);
        let mut cache = Cache::new(cap, paper_heuristic_a());
        let a = cache.run(&trace);
        assert!(cache.policy.first_error().is_none());
        assert_eq!(a.requests, trace.len() as u64);
        let fifo = simulate(&trace, cap, crate::policies::Fifo::new());
        assert!(a.miss_ratio() > 0.0 && fifo.miss_ratio() > 0.0);
    }
}
