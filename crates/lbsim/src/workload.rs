//! Workload synthesis: arrival processes × service-demand distributions.
//!
//! Load-balancing policies differentiate under exactly two stresses, and
//! the generators here produce both:
//!
//! * **heavy-tailed sizes** — one elephant behind a short queue beats a
//!   long queue of mice, so queue *length* and work *left* diverge; the
//!   bounded-Pareto sampler controls how hard;
//! * **burstiness** — a Poisson stream at moderate load barely separates
//!   policies, while an MMPP on/off process overflows bounded queues
//!   during bursts and rewards dispatchers that spread the spike.
//!
//! Generation is a pure function of `(cfg, seed)`.

use crate::model::LbRequest;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Bounded Pareto service-demand distribution (work units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    /// Tail exponent (lower = heavier tail; web traffic ≈ 1.1–1.5).
    pub alpha: f64,
    /// Minimum size, work units (≥ 1).
    pub min: u64,
    /// Maximum size, work units.
    pub max: u64,
}

impl BoundedPareto {
    /// Classic heavy-tailed request mix: α = 1.5 over [2, 10 000].
    pub fn web_default() -> Self {
        BoundedPareto { alpha: 1.5, min: 2, max: 10_000 }
    }

    /// Draw one size by inverse-CDF.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        assert!(self.min >= 1 && self.min < self.max, "degenerate size range");
        let (l, h, a) = (self.min as f64, self.max as f64, self.alpha);
        let u: f64 = rng.random_range(0.0..1.0);
        let la = l.powf(-a);
        let ha = h.powf(-a);
        let x = (la - u * (la - ha)).powf(-1.0 / a);
        (x as u64).clamp(self.min, self.max)
    }

    /// Analytic mean of the distribution, work units.
    pub fn mean(&self) -> f64 {
        let (l, h, a) = (self.min as f64, self.max as f64, self.alpha);
        if (a - 1.0).abs() < 1e-9 {
            // α = 1: E = ln(H/L) · L / (1 − L/H)
            return l * (h / l).ln() / (1.0 - l / h);
        }
        l.powf(a) / (1.0 - (l / h).powf(a)) * a / (a - 1.0) * (l.powf(1.0 - a) - h.powf(1.0 - a))
    }
}

/// Arrival process of the request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant rate.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_per_sec: f64,
    },
    /// Markov-modulated on/off process: exponential dwell times in a calm
    /// state and a burst state, each with its own Poisson rate — the
    /// standard model for flash crowds.
    Mmpp {
        /// Arrival rate in the calm state, requests per second.
        calm_rate_per_sec: f64,
        /// Arrival rate during bursts, requests per second.
        burst_rate_per_sec: f64,
        /// Mean dwell time in the calm state, µs.
        mean_calm_us: f64,
        /// Mean dwell time in the burst state, µs.
        mean_burst_us: f64,
    },
    /// Deterministic day/night modulation: a square wave alternating
    /// between a low-rate ("night") and a high-rate ("day") Poisson regime,
    /// each occupying half of every period. Unlike [`Mmpp`](Self::Mmpp),
    /// the regime boundaries are fixed instants — the compressed diurnal
    /// cycle every dispatch tier rides.
    Diurnal {
        /// Arrival rate in the low half-period, requests per second.
        low_rate_per_sec: f64,
        /// Arrival rate in the high half-period, requests per second.
        high_rate_per_sec: f64,
        /// Full cycle length, µs (each regime dwells `period_us / 2`).
        period_us: u64,
    },
}

impl ArrivalProcess {
    /// Long-run mean arrival rate, requests per second.
    pub fn mean_rate_per_sec(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::Mmpp {
                calm_rate_per_sec,
                burst_rate_per_sec,
                mean_calm_us,
                mean_burst_us,
            } => {
                let total = mean_calm_us + mean_burst_us;
                (calm_rate_per_sec * mean_calm_us + burst_rate_per_sec * mean_burst_us) / total
            }
            ArrivalProcess::Diurnal { low_rate_per_sec, high_rate_per_sec, .. } => {
                // the two regimes dwell exactly half a period each
                (low_rate_per_sec + high_rate_per_sec) / 2.0
            }
        }
    }
}

/// One workload: an arrival process, a size distribution, and a length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadCfg {
    pub arrivals: ArrivalProcess,
    pub sizes: BoundedPareto,
    /// Number of requests to generate.
    pub n: usize,
}

/// Exponential draw with the given mean, µs (≥ 1).
fn exp_us(rng: &mut StdRng, mean_us: f64) -> u64 {
    let u: f64 = rng.random_range(0.0..1.0);
    let x = -mean_us * (1.0 - u).max(1e-300).ln();
    (x as u64).max(1)
}

/// Generate the request stream. Pure in `(cfg, seed)`.
pub fn generate(cfg: &WorkloadCfg, seed: u64) -> Vec<LbRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(cfg.n);
    let mut now_us: u64 = 0;

    match cfg.arrivals {
        ArrivalProcess::Poisson { rate_per_sec } => {
            assert!(rate_per_sec > 0.0, "arrival rate must be positive");
            let mean_iat = 1e6 / rate_per_sec;
            for _ in 0..cfg.n {
                now_us += exp_us(&mut rng, mean_iat);
                out.push(LbRequest { arrival_us: now_us, size: cfg.sizes.sample(&mut rng) });
            }
        }
        ArrivalProcess::Mmpp {
            calm_rate_per_sec,
            burst_rate_per_sec,
            mean_calm_us,
            mean_burst_us,
        } => {
            assert!(calm_rate_per_sec > 0.0 && burst_rate_per_sec > 0.0);
            let mut bursting = false;
            let mut phase_ends_us = exp_us(&mut rng, mean_calm_us);
            while out.len() < cfg.n {
                let rate = if bursting { burst_rate_per_sec } else { calm_rate_per_sec };
                let next = now_us + exp_us(&mut rng, 1e6 / rate);
                if next >= phase_ends_us {
                    // state flip; re-draw the arrival in the new state from
                    // the flip instant (memorylessness makes this exact)
                    now_us = phase_ends_us;
                    bursting = !bursting;
                    let dwell = if bursting { mean_burst_us } else { mean_calm_us };
                    phase_ends_us = now_us + exp_us(&mut rng, dwell);
                    continue;
                }
                now_us = next;
                out.push(LbRequest { arrival_us: now_us, size: cfg.sizes.sample(&mut rng) });
            }
        }
        ArrivalProcess::Diurnal { low_rate_per_sec, high_rate_per_sec, period_us } => {
            assert!(low_rate_per_sec > 0.0 && high_rate_per_sec > 0.0);
            assert!(period_us >= 2, "diurnal period must hold two regimes");
            let half = period_us / 2;
            while out.len() < cfg.n {
                // even half-periods are the low regime, odd ones the high
                let phase = now_us / half;
                let rate =
                    if phase.is_multiple_of(2) { low_rate_per_sec } else { high_rate_per_sec };
                let next = now_us + exp_us(&mut rng, 1e6 / rate);
                let phase_ends_us = (phase + 1) * half;
                if next >= phase_ends_us {
                    // regime flip at a fixed instant; memorylessness lets us
                    // re-draw the arrival from the boundary (as in Mmpp)
                    now_us = phase_ends_us;
                    continue;
                }
                now_us = next;
                out.push(LbRequest { arrival_us: now_us, size: cfg.sizes.sample(&mut rng) });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadCfg {
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 1_000.0 },
            sizes: BoundedPareto::web_default(),
            n: 5_000,
        };
        assert_eq!(generate(&cfg, 7), generate(&cfg, 7));
        assert_ne!(generate(&cfg, 7), generate(&cfg, 8));
    }

    #[test]
    fn poisson_rate_is_respected() {
        let cfg = WorkloadCfg {
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 2_000.0 },
            sizes: BoundedPareto::web_default(),
            n: 40_000,
        };
        let reqs = generate(&cfg, 3);
        let span_s = reqs.last().unwrap().arrival_us as f64 / 1e6;
        let rate = reqs.len() as f64 / span_s;
        assert!((rate - 2_000.0).abs() < 100.0, "empirical rate {rate}");
        assert!(reqs.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
    }

    #[test]
    fn pareto_sizes_are_heavy_tailed_and_bounded() {
        let p = BoundedPareto::web_default();
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<u64> = (0..200_000).map(|_| p.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| (p.min..=p.max).contains(&x)));
        let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        assert!(
            (mean - p.mean()).abs() / p.mean() < 0.15,
            "empirical mean {mean} vs analytic {}",
            p.mean()
        );
        // heavy tail: the top 1% carries a disproportionate share
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let top1: u64 = sorted[sorted.len() - sorted.len() / 100..].iter().sum();
        let share = top1 as f64 / xs.iter().sum::<u64>() as f64;
        assert!(share > 0.2, "top-1% share {share}");
    }

    #[test]
    fn mmpp_bursts_modulate_local_rate() {
        let cfg = WorkloadCfg {
            arrivals: ArrivalProcess::Mmpp {
                calm_rate_per_sec: 500.0,
                burst_rate_per_sec: 8_000.0,
                mean_calm_us: 400_000.0,
                mean_burst_us: 60_000.0,
            },
            sizes: BoundedPareto::web_default(),
            n: 30_000,
        };
        let reqs = generate(&cfg, 11);
        // windowed rates must show both regimes: some 50 ms windows far
        // above the long-run mean, some far below
        let mean_rate = cfg.arrivals.mean_rate_per_sec();
        let window_us = 50_000u64;
        let end = reqs.last().unwrap().arrival_us;
        let mut counts = vec![0u32; (end / window_us + 1) as usize];
        for r in &reqs {
            counts[(r.arrival_us / window_us) as usize] += 1;
        }
        let to_rate = |c: u32| c as f64 / (window_us as f64 / 1e6);
        let hot = counts.iter().filter(|&&c| to_rate(c) > 2.0 * mean_rate).count();
        let cold = counts.iter().filter(|&&c| to_rate(c) < 0.7 * mean_rate).count();
        assert!(hot > 0, "no burst windows observed");
        assert!(cold > counts.len() / 4, "no calm windows observed");
    }

    #[test]
    fn mmpp_mean_rate_formula() {
        let a = ArrivalProcess::Mmpp {
            calm_rate_per_sec: 100.0,
            burst_rate_per_sec: 1_000.0,
            mean_calm_us: 900_000.0,
            mean_burst_us: 100_000.0,
        };
        assert!((a.mean_rate_per_sec() - 190.0).abs() < 1e-9);
    }

    #[test]
    fn diurnal_halves_alternate_around_the_mean() {
        let cfg = WorkloadCfg {
            arrivals: ArrivalProcess::Diurnal {
                low_rate_per_sec: 500.0,
                high_rate_per_sec: 4_000.0,
                period_us: 200_000,
            },
            sizes: BoundedPareto::web_default(),
            n: 30_000,
        };
        let reqs = generate(&cfg, 17);
        assert!(reqs.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
        // count arrivals per half-period: the regime boundaries are fixed,
        // so even halves must run far below odd halves
        let half = 100_000u64;
        let end = reqs.last().unwrap().arrival_us;
        let mut counts = vec![0u32; (end / half + 1) as usize];
        for r in &reqs {
            counts[(r.arrival_us / half) as usize] += 1;
        }
        let full: &[u32] = &counts[..counts.len() - 1]; // last half is partial
        let evens: f64 = full.iter().step_by(2).map(|&c| c as f64).sum();
        let odds: f64 = full.iter().skip(1).step_by(2).map(|&c| c as f64).sum();
        assert!(odds > evens * 3.0, "high halves {odds} vs low halves {evens}");
        // long-run rate matches the analytic mean of the two regimes
        let rate = reqs.len() as f64 / (end as f64 / 1e6);
        let mean = cfg.arrivals.mean_rate_per_sec();
        assert!((rate - mean).abs() / mean < 0.1, "empirical {rate} vs analytic {mean}");
    }

    #[test]
    fn diurnal_generation_is_deterministic() {
        let cfg = WorkloadCfg {
            arrivals: ArrivalProcess::Diurnal {
                low_rate_per_sec: 900.0,
                high_rate_per_sec: 4_950.0,
                period_us: 300_000,
            },
            sizes: BoundedPareto::web_default(),
            n: 10_000,
        };
        assert_eq!(generate(&cfg, 21), generate(&cfg, 21));
        assert_ne!(generate(&cfg, 21), generate(&cfg, 22));
    }

    #[test]
    fn pareto_mean_alpha_one_branch() {
        let p = BoundedPareto { alpha: 1.0, min: 2, max: 1_000 };
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..100_000).map(|_| p.sample(&mut rng) as f64).sum::<f64>() / 100_000.0;
        assert!((mean - p.mean()).abs() / p.mean() < 0.1, "{mean} vs {}", p.mean());
    }
}
