//! The PolicySmith template host for load balancing.
//!
//! A synthesized candidate arrives as a verified [`CompiledPolicy`] in
//! [`Mode::Lb`]; the host scores the fleet and sends the request to the
//! **lowest-scoring** server (argmin, ties to the lower index), the mirror
//! image of the cache host's highest-priority-stays rule. Four scan
//! engines implement that rule at different points on the cost curve:
//!
//! * **Batched** (the default, [`ExprDispatcher::new`]) — fills one
//!   structure-of-arrays [`BatchCtx`] column per feature slot and makes a
//!   single [`CompiledPolicy::run_batch_argmin`] call per pick: no per-row
//!   fill plan, no per-server VM call, a column-major inner loop the
//!   compiler can vectorize.
//! * **Scalar** ([`ExprDispatcher::scalar`]) — the legacy one-`run`-per-
//!   server loop, kept as the measured baseline (`exp_batch`) and as a
//!   second reference implementation in the differential tests.
//! * **Power-of-d** ([`ExprDispatcher::power_of_d`]) — score only `d`
//!   seeded distinct samples per pick: O(d) instead of O(fleet), the
//!   classical sampling tradeoff, batched under the hood.
//! * **Argmin tree** ([`ExprDispatcher::argmin_tree`]) — cache every
//!   server's score in a tournament tree and rescore only the servers the
//!   engine marked dirty ([`DispatchView::dirty`]) since the last pick:
//!   O(changed · log fleet) per pick, decision-identical to the full scan
//!   for event-driven policies (pinned on all presets by
//!   `tests/batch_dispatch.rs`). Policies reading time-derived signals
//!   (`now`, `req.size`, `server.work_left`) are not eligible — their
//!   scores move without a dirty mark — and silently fall back to the
//!   batched full scan.
//!
//! The DSL interpreter is *not* on any of these hot paths. It survives
//! behind [`ExprDispatcher::interpreted`] as the differential oracle: the
//! study integration tests replay whole scenarios through both engines and
//! demand identical picks.
//!
//! Runtime faults (division by zero despite the checker's warning; the
//! compile pipeline marks such candidates `may_fault`) follow the
//! cache-study contract: the first error is **latched**, the dispatch
//! falls back to round-robin so the simulation still completes with exact
//! accounting, and the study scores the candidate as a hard failure. The
//! batched argmin preserves the scalar loop's fault order (it aborts at
//! the lowest faulting row), so the latched fault and the fallback
//! sequence are engine-independent.

use crate::dispatch::{DispatchView, Dispatcher, ServerView};
use policysmith_dsl::{eval, Expr, Feature, FeatureEnv, Mode};
use policysmith_kbpf::{BatchCtx, BatchScratch, CompiledPolicy, RuntimeFault, SPILL_SLOTS};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Dispatcher backed by a `Mode::Lb` scoring policy.
pub struct ExprDispatcher {
    name: String,
    engine: Engine,
    first_error: Option<RuntimeFault>,
    fallback_next: usize,
    /// Policy score evaluations performed so far — the denominator of the
    /// "score-calls per pick" sublinearity statistic `exp_batch` reports.
    score_calls: u64,
    picks: u64,
}

enum Engine {
    /// The production path: one structure-of-arrays batch per pick, one
    /// fused argmin call over the whole fleet.
    Batched {
        policy: CompiledPolicy,
        batch: BatchCtx,
        scratch: BatchScratch,
        map: Vec<i64>,
        /// Per-request invariant slots, broadcast once per pick.
        invariant_slots: FillPlan<InvariantField>,
        /// Per-server feature slots, filled column-major.
        server_slots: FillPlan<ServerField>,
    },
    /// The legacy path: compiled bytecode + reusable ctx slab/map, one
    /// scalar `run` per server. Kept as the benchmark baseline and as a
    /// second reference in the differential tests.
    Scalar {
        policy: CompiledPolicy,
        ctx: Vec<i64>,
        map: Vec<i64>,
        invariant_slots: FillPlan<InvariantField>,
        server_slots: FillPlan<ServerField>,
    },
    /// Power-of-d sampling: score `d` seeded distinct servers, batched.
    PowerOfD {
        policy: CompiledPolicy,
        batch: BatchCtx,
        scratch: BatchScratch,
        map: Vec<i64>,
        invariant_slots: FillPlan<InvariantField>,
        server_slots: FillPlan<ServerField>,
        d: usize,
        rng: StdRng,
        /// Sampled indices, ascending (so the batched argmin's lowest-row
        /// tie-break is the lowest *server index* of the sample).
        sample: Vec<usize>,
    },
    /// Incremental argmin tree over cached scores; only dirty servers are
    /// rescored. Constructed only for tree-eligible layouts (event-driven
    /// per-server features exclusively).
    Tree {
        policy: CompiledPolicy,
        ctx: Vec<i64>,
        map: Vec<i64>,
        server_slots: FillPlan<ServerField>,
        scores: Vec<i64>,
        tree: ArgminTree,
        /// False until the first full rescore (and again after a faulting
        /// one): the cached scores cannot be trusted.
        ready: bool,
    },
    /// The reference oracle: `dsl::eval` over a flat field-read
    /// environment, kept only for differential testing and the
    /// interpreter-vs-VM benchmarks.
    Interpreted { expr: Expr },
}

/// `(ctx slot, field to write there)` pairs, precomputed per layout.
type FillPlan<F> = Vec<(usize, F)>;

#[derive(Clone, Copy)]
enum InvariantField {
    Now,
    ReqSize,
}

#[derive(Clone, Copy)]
enum ServerField {
    QueueLen,
    Inflight,
    Speed,
    EwmaLatency,
    WorkLeft,
}

/// Split a layout into the two fill plans.
fn fill_plans(policy: &CompiledPolicy) -> (FillPlan<InvariantField>, FillPlan<ServerField>) {
    let mut invariant = Vec::new();
    let mut server = Vec::new();
    for (slot, f) in policy.layout().features().iter().enumerate() {
        match f {
            Feature::Now => invariant.push((slot, InvariantField::Now)),
            Feature::ReqSize => invariant.push((slot, InvariantField::ReqSize)),
            Feature::ServerQueueLen => server.push((slot, ServerField::QueueLen)),
            Feature::ServerInflight => server.push((slot, ServerField::Inflight)),
            Feature::ServerSpeed => server.push((slot, ServerField::Speed)),
            Feature::ServerEwmaLatency => server.push((slot, ServerField::EwmaLatency)),
            Feature::ServerWorkLeft => server.push((slot, ServerField::WorkLeft)),
            // non-lb features cannot survive the Mode::Lb check
            _ => unreachable!("non-lb feature in a Mode::Lb layout"),
        }
    }
    (invariant, server)
}

fn invariant_value(field: InvariantField, view: &DispatchView<'_>) -> i64 {
    match field {
        InvariantField::Now => view.now_us as i64,
        InvariantField::ReqSize => view.req_size as i64,
    }
}

fn server_value(field: ServerField, s: &ServerView) -> i64 {
    match field {
        ServerField::QueueLen => s.queue_len as i64,
        ServerField::Inflight => s.inflight as i64,
        ServerField::Speed => s.speed as i64,
        ServerField::EwmaLatency => s.ewma_latency_us as i64,
        ServerField::WorkLeft => s.work_left_us as i64,
    }
}

/// Is the policy's feature surface purely event-driven? Queue length,
/// inflight, speed and EWMA latency change only at admissions,
/// completions, and reconfigures — exactly the events [`LbEngine`] marks
/// dirty. `now`/`req.size` change per request and `work_left` drains with
/// wall time, so any of them invalidates score caching.
///
/// [`LbEngine`]: crate::sim::LbEngine
fn tree_eligible(policy: &CompiledPolicy) -> bool {
    policy.layout().features().iter().all(|f| {
        matches!(
            f,
            Feature::ServerQueueLen
                | Feature::ServerInflight
                | Feature::ServerSpeed
                | Feature::ServerEwmaLatency
        )
    })
}

/// A tournament (segment) tree over per-server scores: leaf `i` holds
/// server `i`'s score, each internal node the minimum of its children.
/// The merge prefers the **left** child on equal scores and padding
/// leaves sit to the right of the real servers at `(i64::MAX, u32::MAX)`,
/// so the root's winner is always the lowest server index among the
/// minima — the same tie-break as the full scan's strict-`<` loop.
struct ArgminTree {
    /// Leaf count, a power of two (0 until the first rebuild).
    size: usize,
    /// `2 * size` nodes, 1-indexed; `nodes[1]` is the root, leaf `i` is
    /// `nodes[size + i]`. Each node is `(score, server index)`.
    nodes: Vec<(i64, u32)>,
}

impl ArgminTree {
    fn new() -> Self {
        ArgminTree { size: 0, nodes: Vec::new() }
    }

    fn merge(l: (i64, u32), r: (i64, u32)) -> (i64, u32) {
        if r.0 < l.0 {
            r
        } else {
            l
        }
    }

    /// Rebuild from scratch over `scores` (O(n)).
    fn rebuild(&mut self, scores: &[i64]) {
        let n = scores.len();
        let mut size = 1usize;
        while size < n {
            size <<= 1;
        }
        self.size = size;
        self.nodes.clear();
        self.nodes.resize(2 * size, (i64::MAX, u32::MAX));
        for (i, &s) in scores.iter().enumerate() {
            self.nodes[size + i] = (s, i as u32);
        }
        for i in (1..size).rev() {
            self.nodes[i] = Self::merge(self.nodes[2 * i], self.nodes[2 * i + 1]);
        }
    }

    /// Replace leaf `ix`'s score and repair its root path (O(log n)).
    fn update(&mut self, ix: usize, score: i64) {
        let mut i = self.size + ix;
        self.nodes[i] = (score, ix as u32);
        while i > 1 {
            i >>= 1;
            self.nodes[i] = Self::merge(self.nodes[2 * i], self.nodes[2 * i + 1]);
        }
    }

    /// The current argmin (lowest index among equal minima).
    fn best(&self) -> usize {
        self.nodes[1].1 as usize
    }
}

impl ExprDispatcher {
    /// Host a compiled (checked, lowered, verified) scoring policy on the
    /// batched full-scan engine — the default production path, adopted by
    /// every `new` caller (the serving runtime included) without further
    /// opt-in.
    pub fn new(name: &str, policy: CompiledPolicy) -> Self {
        debug_assert_eq!(policy.mode(), Mode::Lb, "lb host needs a Mode::Lb policy");
        let (invariant_slots, server_slots) = fill_plans(&policy);
        ExprDispatcher {
            name: name.to_string(),
            engine: Engine::Batched {
                batch: BatchCtx::new(policy.layout().len()),
                scratch: BatchScratch::new(),
                map: vec![0; SPILL_SLOTS],
                policy,
                invariant_slots,
                server_slots,
            },
            first_error: None,
            fallback_next: 0,
            score_calls: 0,
            picks: 0,
        }
    }

    /// Host on the legacy scalar loop: one `CompiledPolicy::run` per
    /// server per pick. Decision-identical to [`new`](Self::new); kept as
    /// the measured baseline and differential reference.
    pub fn scalar(name: &str, policy: CompiledPolicy) -> Self {
        debug_assert_eq!(policy.mode(), Mode::Lb, "lb host needs a Mode::Lb policy");
        let (invariant_slots, server_slots) = fill_plans(&policy);
        ExprDispatcher {
            name: name.to_string(),
            engine: Engine::Scalar {
                ctx: vec![0; policy.layout().len()],
                map: vec![0; SPILL_SLOTS],
                policy,
                invariant_slots,
                server_slots,
            },
            first_error: None,
            fallback_next: 0,
            score_calls: 0,
            picks: 0,
        }
    }

    /// Host on power-of-d sampling: each pick scores `d` distinct servers
    /// drawn from a seeded RNG and dispatches to the best of the sample —
    /// O(d) score calls per pick regardless of fleet size, at a bounded
    /// quality cost. `d ≥ fleet` degenerates to the batched full scan
    /// (decision-identical to [`new`](Self::new)).
    ///
    /// # Panics
    /// If `d == 0`.
    pub fn power_of_d(name: &str, policy: CompiledPolicy, d: usize, seed: u64) -> Self {
        assert!(d > 0, "power-of-d needs at least one sample");
        debug_assert_eq!(policy.mode(), Mode::Lb, "lb host needs a Mode::Lb policy");
        let (invariant_slots, server_slots) = fill_plans(&policy);
        ExprDispatcher {
            name: name.to_string(),
            engine: Engine::PowerOfD {
                batch: BatchCtx::new(policy.layout().len()),
                scratch: BatchScratch::new(),
                map: vec![0; SPILL_SLOTS],
                policy,
                invariant_slots,
                server_slots,
                d,
                rng: StdRng::seed_from_u64(seed),
                sample: Vec::with_capacity(d),
            },
            first_error: None,
            fallback_next: 0,
            score_calls: 0,
            picks: 0,
        }
    }

    /// Host on the incremental argmin tree: scores are cached per server
    /// and only the servers the engine marked dirty since the last pick
    /// are rescored — O(changed · log fleet) per pick, decision-identical
    /// to the full scan.
    ///
    /// Only policies whose features are purely event-driven qualify (see
    /// the module docs); anything else falls back to the batched full
    /// scan, observable via [`scan_kind`](Self::scan_kind).
    pub fn argmin_tree(name: &str, policy: CompiledPolicy) -> Self {
        debug_assert_eq!(policy.mode(), Mode::Lb, "lb host needs a Mode::Lb policy");
        if !tree_eligible(&policy) {
            return Self::new(name, policy);
        }
        let (invariant_slots, server_slots) = fill_plans(&policy);
        debug_assert!(invariant_slots.is_empty(), "eligible layouts have no invariant slots");
        let _ = invariant_slots;
        ExprDispatcher {
            name: name.to_string(),
            engine: Engine::Tree {
                ctx: vec![0; policy.layout().len()],
                map: vec![0; SPILL_SLOTS],
                policy,
                server_slots,
                scores: Vec::new(),
                tree: ArgminTree::new(),
                ready: false,
            },
            first_error: None,
            fallback_next: 0,
            score_calls: 0,
            picks: 0,
        }
    }

    /// Compile `expr` for `Mode::Lb` and host it. Expressions the compile
    /// pipeline rejects outright (float literals; every other rejection is
    /// impossible for checked lb source) fall back to the interpreter so
    /// hosting stays total.
    pub fn from_expr(name: &str, expr: &Expr) -> Self {
        match CompiledPolicy::compile(expr, Mode::Lb) {
            Ok(policy) => Self::new(name, policy),
            Err(_) => Self::interpreted(name, expr.clone()),
        }
    }

    /// Host via the reference interpreter — the differential oracle.
    pub fn interpreted(name: &str, expr: Expr) -> Self {
        ExprDispatcher {
            name: name.to_string(),
            engine: Engine::Interpreted { expr },
            first_error: None,
            fallback_next: 0,
            score_calls: 0,
            picks: 0,
        }
    }

    /// The first runtime fault, if any occurred — the study's hard-failure
    /// signal (same contract as the cache host's `first_error`).
    pub fn first_error(&self) -> Option<&RuntimeFault> {
        self.first_error.as_ref()
    }

    /// Is this host running compiled bytecode (vs the interpreter oracle)?
    pub fn is_compiled(&self) -> bool {
        !matches!(self.engine, Engine::Interpreted { .. })
    }

    /// Which scan engine actually answers picks — the post-construction
    /// truth (an ineligible [`argmin_tree`](Self::argmin_tree) request
    /// reads back as `"batched"`).
    pub fn scan_kind(&self) -> &'static str {
        match self.engine {
            Engine::Batched { .. } => "batched",
            Engine::Scalar { .. } => "scalar",
            Engine::PowerOfD { .. } => "power-of-d",
            Engine::Tree { .. } => "argmin-tree",
            Engine::Interpreted { .. } => "interpreted",
        }
    }

    /// Total policy score evaluations across all picks so far.
    pub fn score_calls(&self) -> u64 {
        self.score_calls
    }

    /// Total picks served so far (fallback picks included).
    pub fn picks(&self) -> u64 {
        self.picks
    }

    fn fallback(&mut self, n: usize) -> usize {
        let ix = self.fallback_next % n;
        self.fallback_next = (self.fallback_next + 1) % n;
        ix
    }
}

impl Dispatcher for ExprDispatcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        let n = view.servers.len();
        self.picks += 1;
        if self.first_error.is_some() {
            // latched failure: degrade to round-robin, keep the run exact
            return self.fallback(n);
        }
        let mut best = 0usize;
        let mut scored = 0u64;
        let fault = match &mut self.engine {
            Engine::Batched { policy, batch, scratch, map, invariant_slots, server_slots } => {
                batch.set_rows(n);
                for &(slot, field) in invariant_slots.iter() {
                    batch.broadcast(slot, invariant_value(field, view));
                }
                for &(slot, field) in server_slots.iter() {
                    let col = batch.column_mut(slot);
                    for (ix, s) in view.servers.iter().enumerate() {
                        col[ix] = server_value(field, s);
                    }
                }
                scored = n as u64;
                match policy.run_batch_argmin(batch, scratch, map) {
                    Ok(ix) => {
                        best = ix;
                        None
                    }
                    // the fused argmin aborts at the lowest faulting row —
                    // the same fault the scalar scan would latch first
                    Err(bf) => Some(RuntimeFault::Vm(bf.fault)),
                }
            }
            Engine::Scalar { policy, ctx, map, invariant_slots, server_slots } => {
                // per-dispatch invariants once, per-server slots in the loop
                for &(slot, field) in invariant_slots.iter() {
                    ctx[slot] = invariant_value(field, view);
                }
                let mut best_score = i64::MAX;
                let mut fault = None;
                for (ix, s) in view.servers.iter().enumerate() {
                    for &(slot, field) in server_slots.iter() {
                        ctx[slot] = server_value(field, s);
                    }
                    scored += 1;
                    match policy.run(ctx, map) {
                        Ok(score) => {
                            if score < best_score {
                                best_score = score;
                                best = ix;
                            }
                        }
                        Err(e) => {
                            fault = Some(RuntimeFault::Vm(e));
                            break;
                        }
                    }
                }
                fault
            }
            Engine::PowerOfD {
                policy,
                batch,
                scratch,
                map,
                invariant_slots,
                server_slots,
                d,
                rng,
                sample,
            } => {
                let k = (*d).min(n);
                sample.clear();
                if k == n {
                    sample.extend(0..n);
                } else {
                    // distinct draws by rejection: k ≪ n makes retries rare
                    while sample.len() < k {
                        let c = rng.random_range(0..n);
                        if !sample.contains(&c) {
                            sample.push(c);
                        }
                    }
                    // ascending, so the argmin's lowest-row tie-break is
                    // the lowest server index of the sample
                    sample.sort_unstable();
                }
                batch.set_rows(k);
                for &(slot, field) in invariant_slots.iter() {
                    batch.broadcast(slot, invariant_value(field, view));
                }
                for &(slot, field) in server_slots.iter() {
                    let col = batch.column_mut(slot);
                    for (row, &six) in sample.iter().enumerate() {
                        col[row] = server_value(field, &view.servers[six]);
                    }
                }
                scored = k as u64;
                match policy.run_batch_argmin(batch, scratch, map) {
                    Ok(row) => {
                        best = sample[row];
                        None
                    }
                    Err(bf) => Some(RuntimeFault::Vm(bf.fault)),
                }
            }
            Engine::Tree { policy, ctx, map, server_slots, scores, tree, ready } => {
                // full rescore when the cache can't be trusted: first pick,
                // fleet resize, or a view without dirty provenance
                let full = !*ready || scores.len() != n || view.dirty.is_none();
                let mut fault = None;
                if full {
                    scores.clear();
                    for s in view.servers.iter() {
                        for &(slot, field) in server_slots.iter() {
                            ctx[slot] = server_value(field, s);
                        }
                        scored += 1;
                        match policy.run(ctx, map) {
                            Ok(v) => scores.push(v),
                            Err(e) => {
                                fault = Some(RuntimeFault::Vm(e));
                                break;
                            }
                        }
                    }
                    if fault.is_none() {
                        tree.rebuild(scores);
                        *ready = true;
                    } else {
                        *ready = false;
                    }
                } else {
                    for &six in view.dirty.unwrap_or(&[]) {
                        let s = &view.servers[six];
                        for &(slot, field) in server_slots.iter() {
                            ctx[slot] = server_value(field, s);
                        }
                        scored += 1;
                        match policy.run(ctx, map) {
                            Ok(v) => {
                                scores[six] = v;
                                tree.update(six, v);
                            }
                            Err(e) => {
                                fault = Some(RuntimeFault::Vm(e));
                                *ready = false;
                                break;
                            }
                        }
                    }
                }
                if fault.is_none() {
                    best = tree.best();
                }
                fault
            }
            Engine::Interpreted { expr } => {
                let mut best_score = i64::MAX;
                let mut fault = None;
                for (ix, s) in view.servers.iter().enumerate() {
                    let env = OracleEnv { now_us: view.now_us, req_size: view.req_size, server: s };
                    scored += 1;
                    match eval(expr, &env) {
                        Ok(score) => {
                            if score < best_score {
                                best_score = score;
                                best = ix;
                            }
                        }
                        Err(e) => {
                            fault = Some(RuntimeFault::Interp(e));
                            break;
                        }
                    }
                }
                fault
            }
        };
        self.score_calls += scored;
        match fault {
            None => best,
            Some(f) => {
                self.first_error = Some(f);
                self.fallback(n)
            }
        }
    }
}

/// The oracle's per-`(dispatch, server)` feature environment: plain field
/// reads off the borrowed views — no hash map, no per-pick allocation —
/// the same dense treatment the compiled engine's fill plans get, so the
/// interpreter-vs-VM comparison measures the engines, not the plumbing.
struct OracleEnv<'a> {
    now_us: u64,
    req_size: u64,
    server: &'a ServerView,
}

impl FeatureEnv for OracleEnv<'_> {
    fn feature(&self, f: Feature) -> i64 {
        match f {
            Feature::Now => self.now_us as i64,
            Feature::ReqSize => self.req_size as i64,
            Feature::ServerQueueLen => self.server.queue_len as i64,
            Feature::ServerInflight => self.server.inflight as i64,
            Feature::ServerSpeed => self.server.speed as i64,
            Feature::ServerEwmaLatency => self.server.ewma_latency_us as i64,
            Feature::ServerWorkLeft => self.server.work_left_us as i64,
            // non-lb features cannot survive the Mode::Lb check; be total
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::ServerView;
    use policysmith_dsl::parse;

    fn sv(queue_len: usize, inflight: usize, speed: u32, ewma: u64) -> ServerView {
        ServerView { queue_len, inflight, speed, ewma_latency_us: ewma, work_left_us: 0 }
    }

    fn host(src: &str) -> ExprDispatcher {
        let e = parse(src).unwrap();
        let policy = CompiledPolicy::compile(&e, Mode::Lb).unwrap();
        ExprDispatcher::new("test", policy)
    }

    fn view<'a>(servers: &'a [ServerView]) -> DispatchView<'a> {
        DispatchView { now_us: 0, req_size: 10, servers, dirty: None }
    }

    #[test]
    fn argmin_on_queue_len_is_jsq() {
        let servers = [sv(4, 5, 4, 0), sv(1, 2, 4, 0), sv(2, 3, 4, 0)];
        let mut d = host("server.queue_len");
        assert!(d.is_compiled(), "study candidates must run compiled");
        assert_eq!(d.scan_kind(), "batched", "the default host is the batched scan");
        assert_eq!(d.pick(&view(&servers)), 1);
        assert_eq!((d.picks(), d.score_calls()), (1, 3));
    }

    #[test]
    fn speed_normalized_score_prefers_fast_servers() {
        // equal backlog, unequal speed → normalized load picks the fast one
        let servers = [sv(3, 4, 1, 0), sv(3, 4, 8, 0)];
        assert_eq!(host("server.inflight * 1000 / server.speed").pick(&view(&servers)), 1);
    }

    #[test]
    fn work_left_scores_see_the_residual_backlog() {
        let mut a = sv(1, 2, 4, 0);
        a.work_left_us = 9_000;
        let mut b = sv(3, 4, 4, 0);
        b.work_left_us = 2_000; // more requests but less actual work
        let servers = [a, b];
        assert_eq!(host("server.work_left").pick(&view(&servers)), 1);
        assert_eq!(host("server.queue_len").pick(&view(&servers)), 0);
    }

    #[test]
    fn ties_break_to_the_lower_index() {
        let servers = [sv(2, 2, 4, 0), sv(2, 2, 4, 0)];
        assert_eq!(host("server.queue_len").pick(&view(&servers)), 0);
    }

    #[test]
    fn scalar_host_agrees_with_the_batched_default() {
        let e = parse("server.inflight * 1000 / server.speed + server.queue_len * 50").unwrap();
        let policy = CompiledPolicy::compile(&e, Mode::Lb).unwrap();
        let mut batched = ExprDispatcher::new("b", policy.clone());
        let mut scalar = ExprDispatcher::scalar("s", policy);
        assert_eq!(scalar.scan_kind(), "scalar");
        let fleets = [
            vec![sv(4, 5, 4, 10), sv(1, 2, 4, 0), sv(2, 3, 8, 900)],
            vec![sv(0, 0, 1, 0); 5],
            vec![sv(7, 8, 2, 50), sv(7, 8, 2, 50)],
        ];
        for servers in &fleets {
            assert_eq!(batched.pick(&view(servers)), scalar.pick(&view(servers)));
        }
    }

    #[test]
    fn power_of_d_covering_the_fleet_is_the_full_scan() {
        let e = parse("server.queue_len").unwrap();
        let policy = CompiledPolicy::compile(&e, Mode::Lb).unwrap();
        let mut pd = ExprDispatcher::power_of_d("pd", policy, 16, 7);
        assert_eq!(pd.scan_kind(), "power-of-d");
        let servers = [sv(4, 5, 4, 0), sv(1, 2, 4, 0), sv(2, 3, 4, 0)];
        assert_eq!(pd.pick(&view(&servers)), 1, "d ≥ fleet degenerates to argmin");
    }

    #[test]
    fn argmin_tree_rejects_time_derived_features() {
        let e = parse("server.work_left + req.size").unwrap();
        let policy = CompiledPolicy::compile(&e, Mode::Lb).unwrap();
        let d = ExprDispatcher::argmin_tree("t", policy);
        assert_eq!(d.scan_kind(), "batched", "ineligible layouts fall back to the full scan");

        let e = parse("server.inflight * 1000 / server.speed").unwrap();
        let policy = CompiledPolicy::compile(&e, Mode::Lb).unwrap();
        let d = ExprDispatcher::argmin_tree("t", policy);
        assert_eq!(d.scan_kind(), "argmin-tree");
    }

    #[test]
    fn argmin_tree_rescores_all_without_dirty_provenance() {
        let e = parse("server.queue_len").unwrap();
        let policy = CompiledPolicy::compile(&e, Mode::Lb).unwrap();
        let mut d = ExprDispatcher::argmin_tree("t", policy);
        let a = [sv(4, 5, 4, 0), sv(1, 2, 4, 0)];
        assert_eq!(d.pick(&view(&a)), 1);
        // state changed behind its back; dirty: None must force a rescore
        let b = [sv(0, 0, 4, 0), sv(1, 2, 4, 0)];
        assert_eq!(d.pick(&view(&b)), 0);
    }

    #[test]
    fn runtime_fault_latches_and_degrades_to_round_robin() {
        // queue_len is 0 on an idle server → division by zero at runtime;
        // the compile pipeline flags it, the VM guard catches it
        let servers = [sv(0, 0, 4, 0), sv(0, 0, 4, 0)];
        let mut d = host("1000 / server.queue_len");
        assert!(d.first_error().is_none());
        let picks: Vec<usize> = (0..4).map(|_| d.pick(&view(&servers))).collect();
        assert!(d.first_error().is_some(), "fault must latch");
        assert_eq!(picks, vec![0, 1, 0, 1], "fallback is round-robin");
    }

    #[test]
    fn full_simulation_with_expr_host_matches_jsq_ordering() {
        // end-to-end: the expr host with the JSQ expression must land at
        // exactly the inflight-argmin decisions the native Jsq makes
        let servers =
            vec![crate::model::ServerCfg::new(4, 32), crate::model::ServerCfg::new(4, 32)];
        let cfg = crate::workload::WorkloadCfg {
            arrivals: crate::workload::ArrivalProcess::Poisson { rate_per_sec: 900.0 },
            sizes: crate::workload::BoundedPareto::web_default(),
            n: 4_000,
        };
        let reqs = crate::workload::generate(&cfg, 5);
        let expr_m = crate::sim::run(&servers, &reqs, &mut host("server.inflight"));
        let jsq_m = crate::sim::run(&servers, &reqs, &mut crate::dispatch::Jsq::new());
        assert_eq!(expr_m, jsq_m, "server.inflight argmin IS join-shortest-queue");
    }

    #[test]
    fn compiled_host_matches_the_interpreter_oracle_on_whole_scenarios() {
        // the differential check behind the host redesign: same scenario,
        // same expression, compiled (batched) vs interpreted → identical
        // metrics
        for src in [
            "server.inflight * 1000 / server.speed + server.queue_len * 50",
            "server.work_left + req.size * 1000 / server.speed",
            "if(server.queue_len > 8, 100000, server.ewma_latency / 100 + server.inflight * 10)",
        ] {
            let e = parse(src).unwrap();
            for sc in crate::scenario::all_presets() {
                let reqs = sc.requests();
                let mut compiled =
                    ExprDispatcher::new("vm", CompiledPolicy::compile(&e, Mode::Lb).unwrap());
                let mut oracle = ExprDispatcher::interpreted("interp", e.clone());
                let vm_m = crate::sim::run(&sc.servers, &reqs, &mut compiled);
                let or_m = crate::sim::run(&sc.servers, &reqs, &mut oracle);
                assert_eq!(vm_m, or_m, "engines diverged on {} for `{src}`", sc.name);
                assert!(compiled.first_error().is_none());
                assert!(oracle.first_error().is_none());
            }
        }
    }

    #[test]
    fn faulting_candidates_latch_identically_in_both_engines() {
        let e = parse("req.size / server.inflight").unwrap(); // idle → /0
        let sc = crate::scenario::uniform_fleet();
        let reqs = sc.requests();
        let mut compiled = ExprDispatcher::from_expr("vm", &e);
        let mut oracle = ExprDispatcher::interpreted("interp", e.clone());
        let vm_m = crate::sim::run(&sc.servers, &reqs, &mut compiled);
        let or_m = crate::sim::run(&sc.servers, &reqs, &mut oracle);
        assert!(compiled.first_error().is_some());
        assert!(oracle.first_error().is_some());
        assert_eq!(vm_m, or_m, "latched fallback must be engine-independent");
    }
}
