//! The PolicySmith template host for load balancing.
//!
//! A synthesized candidate is a DSL expression in [`Mode::Lb`]; the host
//! evaluates it once per server at dispatch time and sends the request to
//! the **lowest-scoring** server (argmin, ties to the lower index) — the
//! mirror image of the cache host's highest-priority-stays rule, chosen so
//! "score = estimated cost" reads naturally.
//!
//! Runtime faults (division by zero despite the checker's warning) follow
//! the cache-study contract: the first error is **latched**, the dispatch
//! falls back to round-robin so the simulation still completes with exact
//! accounting, and the study scores the candidate as a hard failure.

use crate::dispatch::{DispatchView, Dispatcher};
use policysmith_dsl::env::MapEnv;
use policysmith_dsl::{eval, EvalError, Expr, Feature};

/// Dispatcher backed by a `Mode::Lb` scoring expression.
pub struct ExprDispatcher {
    name: String,
    expr: Expr,
    first_error: Option<EvalError>,
    fallback_next: usize,
}

impl ExprDispatcher {
    /// Host the given (parsed, checked) scoring expression.
    pub fn new(name: &str, expr: Expr) -> Self {
        ExprDispatcher { name: name.to_string(), expr, first_error: None, fallback_next: 0 }
    }

    /// The first runtime fault, if any occurred — the study's hard-failure
    /// signal (same contract as the cache host's `first_error`).
    pub fn first_error(&self) -> Option<&EvalError> {
        self.first_error.as_ref()
    }
}

impl Dispatcher for ExprDispatcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        if self.first_error.is_some() {
            // latched failure: degrade to round-robin, keep the run exact
            let ix = self.fallback_next % view.servers.len();
            self.fallback_next = (self.fallback_next + 1) % view.servers.len();
            return ix;
        }
        let mut best = 0usize;
        let mut best_score = i64::MAX;
        let mut env = MapEnv::new();
        env.set(Feature::Now, view.now_us as i64);
        env.set(Feature::ReqSize, view.req_size as i64);
        for (ix, s) in view.servers.iter().enumerate() {
            env.set(Feature::ServerQueueLen, s.queue_len as i64);
            env.set(Feature::ServerInflight, s.inflight as i64);
            env.set(Feature::ServerSpeed, s.speed as i64);
            env.set(Feature::ServerEwmaLatency, s.ewma_latency_us as i64);
            match eval(&self.expr, &env) {
                Ok(score) => {
                    if score < best_score {
                        best_score = score;
                        best = ix;
                    }
                }
                Err(e) => {
                    self.first_error = Some(e);
                    let ix = self.fallback_next % view.servers.len();
                    self.fallback_next = (self.fallback_next + 1) % view.servers.len();
                    return ix;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::ServerView;
    use policysmith_dsl::{check, parse, Mode};

    fn sv(queue_len: usize, inflight: usize, speed: u32, ewma: u64) -> ServerView {
        ServerView { queue_len, inflight, speed, ewma_latency_us: ewma }
    }

    fn host(src: &str) -> ExprDispatcher {
        let e = parse(src).unwrap();
        check(&e, Mode::Lb).unwrap();
        ExprDispatcher::new("test", e)
    }

    #[test]
    fn argmin_on_queue_len_is_jsq() {
        let servers = [sv(4, 5, 4, 0), sv(1, 2, 4, 0), sv(2, 3, 4, 0)];
        let view = DispatchView { now_us: 0, req_size: 10, servers: &servers };
        assert_eq!(host("server.queue_len").pick(&view), 1);
    }

    #[test]
    fn speed_normalized_score_prefers_fast_servers() {
        // equal backlog, unequal speed → normalized load picks the fast one
        let servers = [sv(3, 4, 1, 0), sv(3, 4, 8, 0)];
        let view = DispatchView { now_us: 0, req_size: 10, servers: &servers };
        assert_eq!(host("server.inflight * 1000 / server.speed").pick(&view), 1);
    }

    #[test]
    fn ties_break_to_the_lower_index() {
        let servers = [sv(2, 2, 4, 0), sv(2, 2, 4, 0)];
        let view = DispatchView { now_us: 0, req_size: 10, servers: &servers };
        assert_eq!(host("server.queue_len").pick(&view), 0);
    }

    #[test]
    fn runtime_fault_latches_and_degrades_to_round_robin() {
        // queue_len is 0 on an idle server → division by zero at runtime
        let servers = [sv(0, 0, 4, 0), sv(0, 0, 4, 0)];
        let view = DispatchView { now_us: 0, req_size: 10, servers: &servers };
        let mut d = host("1000 / server.queue_len");
        assert!(d.first_error().is_none());
        let picks: Vec<usize> = (0..4).map(|_| d.pick(&view)).collect();
        assert!(d.first_error().is_some(), "fault must latch");
        assert_eq!(picks, vec![0, 1, 0, 1], "fallback is round-robin");
    }

    #[test]
    fn full_simulation_with_expr_host_matches_jsq_ordering() {
        // end-to-end: the expr host with the JSQ expression must land at
        // exactly the inflight-argmin decisions the native Jsq makes
        let servers =
            vec![crate::model::ServerCfg::new(4, 32), crate::model::ServerCfg::new(4, 32)];
        let cfg = crate::workload::WorkloadCfg {
            arrivals: crate::workload::ArrivalProcess::Poisson { rate_per_sec: 900.0 },
            sizes: crate::workload::BoundedPareto::web_default(),
            n: 4_000,
        };
        let reqs = crate::workload::generate(&cfg, 5);
        let expr_m = crate::sim::run(&servers, &reqs, &mut host("server.inflight"));
        let jsq_m = crate::sim::run(&servers, &reqs, &mut crate::dispatch::Jsq::new());
        assert_eq!(expr_m, jsq_m, "server.inflight argmin IS join-shortest-queue");
    }
}
