//! The PolicySmith template host for load balancing.
//!
//! A synthesized candidate arrives as a verified [`CompiledPolicy`] in
//! [`Mode::Lb`]; the host executes its kbpf program once per server at
//! dispatch time — filling a flat, reusable context slab, no allocation,
//! no tree-walking — and sends the request to the **lowest-scoring**
//! server (argmin, ties to the lower index), the mirror image of the cache
//! host's highest-priority-stays rule.
//!
//! The DSL interpreter is *not* on this hot path. It survives behind
//! [`ExprDispatcher::interpreted`] as the differential oracle: the study
//! integration tests replay whole scenarios through both engines and
//! demand identical picks.
//!
//! Runtime faults (division by zero despite the checker's warning; the
//! compile pipeline marks such candidates `may_fault`) follow the
//! cache-study contract: the first error is **latched**, the dispatch
//! falls back to round-robin so the simulation still completes with exact
//! accounting, and the study scores the candidate as a hard failure.

use crate::dispatch::{DispatchView, Dispatcher, ServerView};
use policysmith_dsl::{eval, Expr, Feature, FeatureEnv, Mode};
use policysmith_kbpf::{CompiledPolicy, RuntimeFault, SPILL_SLOTS};

/// Dispatcher backed by a `Mode::Lb` scoring policy.
pub struct ExprDispatcher {
    name: String,
    engine: Engine,
    first_error: Option<RuntimeFault>,
    fallback_next: usize,
}

enum Engine {
    /// The production path: compiled bytecode + reusable ctx slab/map,
    /// with the layout pre-split into a fill plan (which slot gets which
    /// per-dispatch / per-server value) so the hot loop does no feature
    /// matching at all.
    Compiled {
        policy: CompiledPolicy,
        ctx: Vec<i64>,
        map: Vec<i64>,
        /// Per-request invariant slots, filled once per pick.
        invariant_slots: FillPlan<InvariantField>,
        /// Per-server feature slots, filled in the argmin loop.
        server_slots: FillPlan<ServerField>,
    },
    /// The reference oracle: `dsl::eval` over a flat field-read
    /// environment, kept only for differential testing and the
    /// interpreter-vs-VM benchmarks.
    Interpreted { expr: Expr },
}

/// `(ctx slot, field to write there)` pairs, precomputed per layout.
type FillPlan<F> = Vec<(usize, F)>;

#[derive(Clone, Copy)]
enum InvariantField {
    Now,
    ReqSize,
}

#[derive(Clone, Copy)]
enum ServerField {
    QueueLen,
    Inflight,
    Speed,
    EwmaLatency,
    WorkLeft,
}

/// Split a layout into the two fill plans.
fn fill_plans(policy: &CompiledPolicy) -> (FillPlan<InvariantField>, FillPlan<ServerField>) {
    let mut invariant = Vec::new();
    let mut server = Vec::new();
    for (slot, f) in policy.layout().features().iter().enumerate() {
        match f {
            Feature::Now => invariant.push((slot, InvariantField::Now)),
            Feature::ReqSize => invariant.push((slot, InvariantField::ReqSize)),
            Feature::ServerQueueLen => server.push((slot, ServerField::QueueLen)),
            Feature::ServerInflight => server.push((slot, ServerField::Inflight)),
            Feature::ServerSpeed => server.push((slot, ServerField::Speed)),
            Feature::ServerEwmaLatency => server.push((slot, ServerField::EwmaLatency)),
            Feature::ServerWorkLeft => server.push((slot, ServerField::WorkLeft)),
            // non-lb features cannot survive the Mode::Lb check
            _ => unreachable!("non-lb feature in a Mode::Lb layout"),
        }
    }
    (invariant, server)
}

impl ExprDispatcher {
    /// Host a compiled (checked, lowered, verified) scoring policy.
    pub fn new(name: &str, policy: CompiledPolicy) -> Self {
        debug_assert_eq!(policy.mode(), Mode::Lb, "lb host needs a Mode::Lb policy");
        let (invariant_slots, server_slots) = fill_plans(&policy);
        ExprDispatcher {
            name: name.to_string(),
            engine: Engine::Compiled {
                ctx: vec![0; policy.layout().len()],
                map: vec![0; SPILL_SLOTS],
                policy,
                invariant_slots,
                server_slots,
            },
            first_error: None,
            fallback_next: 0,
        }
    }

    /// Compile `expr` for `Mode::Lb` and host it. Expressions the compile
    /// pipeline rejects outright (float literals; every other rejection is
    /// impossible for checked lb source) fall back to the interpreter so
    /// hosting stays total.
    pub fn from_expr(name: &str, expr: &Expr) -> Self {
        match CompiledPolicy::compile(expr, Mode::Lb) {
            Ok(policy) => Self::new(name, policy),
            Err(_) => Self::interpreted(name, expr.clone()),
        }
    }

    /// Host via the reference interpreter — the differential oracle.
    pub fn interpreted(name: &str, expr: Expr) -> Self {
        ExprDispatcher {
            name: name.to_string(),
            engine: Engine::Interpreted { expr },
            first_error: None,
            fallback_next: 0,
        }
    }

    /// The first runtime fault, if any occurred — the study's hard-failure
    /// signal (same contract as the cache host's `first_error`).
    pub fn first_error(&self) -> Option<&RuntimeFault> {
        self.first_error.as_ref()
    }

    /// Is this host running compiled bytecode (vs the interpreter oracle)?
    pub fn is_compiled(&self) -> bool {
        matches!(self.engine, Engine::Compiled { .. })
    }

    fn fallback(&mut self, n: usize) -> usize {
        let ix = self.fallback_next % n;
        self.fallback_next = (self.fallback_next + 1) % n;
        ix
    }
}

impl Dispatcher for ExprDispatcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        let n = view.servers.len();
        if self.first_error.is_some() {
            // latched failure: degrade to round-robin, keep the run exact
            return self.fallback(n);
        }
        let mut best = 0usize;
        let mut best_score = i64::MAX;
        let fault = match &mut self.engine {
            Engine::Compiled { policy, ctx, map, invariant_slots, server_slots } => {
                // per-dispatch invariants once, per-server slots in the loop
                for &(slot, field) in invariant_slots.iter() {
                    ctx[slot] = match field {
                        InvariantField::Now => view.now_us as i64,
                        InvariantField::ReqSize => view.req_size as i64,
                    };
                }
                let mut fault = None;
                for (ix, s) in view.servers.iter().enumerate() {
                    for &(slot, field) in server_slots.iter() {
                        ctx[slot] = match field {
                            ServerField::QueueLen => s.queue_len as i64,
                            ServerField::Inflight => s.inflight as i64,
                            ServerField::Speed => s.speed as i64,
                            ServerField::EwmaLatency => s.ewma_latency_us as i64,
                            ServerField::WorkLeft => s.work_left_us as i64,
                        };
                    }
                    match policy.run(ctx, map) {
                        Ok(score) => {
                            if score < best_score {
                                best_score = score;
                                best = ix;
                            }
                        }
                        Err(e) => {
                            fault = Some(RuntimeFault::Vm(e));
                            break;
                        }
                    }
                }
                fault
            }
            Engine::Interpreted { expr } => {
                let mut fault = None;
                for (ix, s) in view.servers.iter().enumerate() {
                    let env = OracleEnv { now_us: view.now_us, req_size: view.req_size, server: s };
                    match eval(expr, &env) {
                        Ok(score) => {
                            if score < best_score {
                                best_score = score;
                                best = ix;
                            }
                        }
                        Err(e) => {
                            fault = Some(RuntimeFault::Interp(e));
                            break;
                        }
                    }
                }
                fault
            }
        };
        match fault {
            None => best,
            Some(f) => {
                self.first_error = Some(f);
                self.fallback(n)
            }
        }
    }
}

/// The oracle's per-`(dispatch, server)` feature environment: plain field
/// reads off the borrowed views — no hash map, no per-pick allocation —
/// the same dense treatment the compiled engine's fill plans get, so the
/// interpreter-vs-VM comparison measures the engines, not the plumbing.
struct OracleEnv<'a> {
    now_us: u64,
    req_size: u64,
    server: &'a ServerView,
}

impl FeatureEnv for OracleEnv<'_> {
    fn feature(&self, f: Feature) -> i64 {
        match f {
            Feature::Now => self.now_us as i64,
            Feature::ReqSize => self.req_size as i64,
            Feature::ServerQueueLen => self.server.queue_len as i64,
            Feature::ServerInflight => self.server.inflight as i64,
            Feature::ServerSpeed => self.server.speed as i64,
            Feature::ServerEwmaLatency => self.server.ewma_latency_us as i64,
            Feature::ServerWorkLeft => self.server.work_left_us as i64,
            // non-lb features cannot survive the Mode::Lb check; be total
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::ServerView;
    use policysmith_dsl::parse;

    fn sv(queue_len: usize, inflight: usize, speed: u32, ewma: u64) -> ServerView {
        ServerView { queue_len, inflight, speed, ewma_latency_us: ewma, work_left_us: 0 }
    }

    fn host(src: &str) -> ExprDispatcher {
        let e = parse(src).unwrap();
        let policy = CompiledPolicy::compile(&e, Mode::Lb).unwrap();
        ExprDispatcher::new("test", policy)
    }

    #[test]
    fn argmin_on_queue_len_is_jsq() {
        let servers = [sv(4, 5, 4, 0), sv(1, 2, 4, 0), sv(2, 3, 4, 0)];
        let view = DispatchView { now_us: 0, req_size: 10, servers: &servers };
        let mut d = host("server.queue_len");
        assert!(d.is_compiled(), "study candidates must run compiled");
        assert_eq!(d.pick(&view), 1);
    }

    #[test]
    fn speed_normalized_score_prefers_fast_servers() {
        // equal backlog, unequal speed → normalized load picks the fast one
        let servers = [sv(3, 4, 1, 0), sv(3, 4, 8, 0)];
        let view = DispatchView { now_us: 0, req_size: 10, servers: &servers };
        assert_eq!(host("server.inflight * 1000 / server.speed").pick(&view), 1);
    }

    #[test]
    fn work_left_scores_see_the_residual_backlog() {
        let mut a = sv(1, 2, 4, 0);
        a.work_left_us = 9_000;
        let mut b = sv(3, 4, 4, 0);
        b.work_left_us = 2_000; // more requests but less actual work
        let servers = [a, b];
        let view = DispatchView { now_us: 0, req_size: 10, servers: &servers };
        assert_eq!(host("server.work_left").pick(&view), 1);
        assert_eq!(host("server.queue_len").pick(&view), 0);
    }

    #[test]
    fn ties_break_to_the_lower_index() {
        let servers = [sv(2, 2, 4, 0), sv(2, 2, 4, 0)];
        let view = DispatchView { now_us: 0, req_size: 10, servers: &servers };
        assert_eq!(host("server.queue_len").pick(&view), 0);
    }

    #[test]
    fn runtime_fault_latches_and_degrades_to_round_robin() {
        // queue_len is 0 on an idle server → division by zero at runtime;
        // the compile pipeline flags it, the VM guard catches it
        let servers = [sv(0, 0, 4, 0), sv(0, 0, 4, 0)];
        let view = DispatchView { now_us: 0, req_size: 10, servers: &servers };
        let mut d = host("1000 / server.queue_len");
        assert!(d.first_error().is_none());
        let picks: Vec<usize> = (0..4).map(|_| d.pick(&view)).collect();
        assert!(d.first_error().is_some(), "fault must latch");
        assert_eq!(picks, vec![0, 1, 0, 1], "fallback is round-robin");
    }

    #[test]
    fn full_simulation_with_expr_host_matches_jsq_ordering() {
        // end-to-end: the expr host with the JSQ expression must land at
        // exactly the inflight-argmin decisions the native Jsq makes
        let servers =
            vec![crate::model::ServerCfg::new(4, 32), crate::model::ServerCfg::new(4, 32)];
        let cfg = crate::workload::WorkloadCfg {
            arrivals: crate::workload::ArrivalProcess::Poisson { rate_per_sec: 900.0 },
            sizes: crate::workload::BoundedPareto::web_default(),
            n: 4_000,
        };
        let reqs = crate::workload::generate(&cfg, 5);
        let expr_m = crate::sim::run(&servers, &reqs, &mut host("server.inflight"));
        let jsq_m = crate::sim::run(&servers, &reqs, &mut crate::dispatch::Jsq::new());
        assert_eq!(expr_m, jsq_m, "server.inflight argmin IS join-shortest-queue");
    }

    #[test]
    fn compiled_host_matches_the_interpreter_oracle_on_whole_scenarios() {
        // the differential check behind the host redesign: same scenario,
        // same expression, compiled vs interpreted → identical metrics
        for src in [
            "server.inflight * 1000 / server.speed + server.queue_len * 50",
            "server.work_left + req.size * 1000 / server.speed",
            "if(server.queue_len > 8, 100000, server.ewma_latency / 100 + server.inflight * 10)",
        ] {
            let e = parse(src).unwrap();
            for sc in crate::scenario::all_presets() {
                let reqs = sc.requests();
                let mut compiled =
                    ExprDispatcher::new("vm", CompiledPolicy::compile(&e, Mode::Lb).unwrap());
                let mut oracle = ExprDispatcher::interpreted("interp", e.clone());
                let vm_m = crate::sim::run(&sc.servers, &reqs, &mut compiled);
                let or_m = crate::sim::run(&sc.servers, &reqs, &mut oracle);
                assert_eq!(vm_m, or_m, "engines diverged on {} for `{src}`", sc.name);
                assert!(compiled.first_error().is_none());
                assert!(oracle.first_error().is_none());
            }
        }
    }

    #[test]
    fn faulting_candidates_latch_identically_in_both_engines() {
        let e = parse("req.size / server.inflight").unwrap(); // idle → /0
        let sc = crate::scenario::uniform_fleet();
        let reqs = sc.requests();
        let mut compiled = ExprDispatcher::from_expr("vm", &e);
        let mut oracle = ExprDispatcher::interpreted("interp", e.clone());
        let vm_m = crate::sim::run(&sc.servers, &reqs, &mut compiled);
        let or_m = crate::sim::run(&sc.servers, &reqs, &mut oracle);
        assert!(compiled.first_error().is_some());
        assert!(oracle.first_error().is_some());
        assert_eq!(vm_m, or_m, "latched fallback must be engine-independent");
    }
}
