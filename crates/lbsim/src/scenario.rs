//! Scenario presets — the "contexts" of the load-balancing study.
//!
//! Each preset fixes a fleet, a workload, and a seed, so a scenario names
//! a reproducible context exactly the way a trace index does in the cache
//! study. Offered-load figures below use the bounded-Pareto mean of ≈ 5.9
//! work units per request against the fleet's aggregate speed (work units
//! per second = Σ speed × 1000).

use crate::model::{LbRequest, ServerCfg};
use crate::workload::{self, ArrivalProcess, BoundedPareto, WorkloadCfg};

/// A named, reproducible load-balancing context.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Context identifier (e.g. `lb/flash-crowd`).
    pub name: String,
    /// The server fleet.
    pub servers: Vec<ServerCfg>,
    /// The offered workload.
    pub workload: WorkloadCfg,
    /// Workload generation seed.
    pub seed: u64,
}

impl Scenario {
    /// Generate this scenario's request stream (pure in the scenario).
    pub fn requests(&self) -> Vec<LbRequest> {
        workload::generate(&self.workload, self.seed)
    }

    /// Aggregate fleet speed, work units per second.
    pub fn fleet_capacity_per_sec(&self) -> f64 {
        self.servers.iter().map(|s| s.speed as f64 * 1000.0).sum()
    }

    /// Long-run offered load as a fraction of fleet capacity.
    pub fn offered_load(&self) -> f64 {
        self.workload.arrivals.mean_rate_per_sec() * self.workload.sizes.mean()
            / self.fleet_capacity_per_sec()
    }
}

fn fleet(specs: &[(usize, u32, usize)]) -> Vec<ServerCfg> {
    specs
        .iter()
        .flat_map(|&(count, speed, cap)| std::iter::repeat_n(ServerCfg::new(speed, cap), count))
        .collect()
}

/// Homogeneous fleet at ~72% load under Poisson arrivals: the benign
/// context where JSQ-family policies are near-optimal. 8 × speed-4.
pub fn uniform_fleet() -> Scenario {
    Scenario {
        name: "lb/uniform-fleet".into(),
        servers: fleet(&[(8, 4, 32)]),
        workload: WorkloadCfg {
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 3_900.0 },
            sizes: BoundedPareto::web_default(),
            n: 30_000,
        },
        seed: 0xA1,
    }
}

/// Two-tier fleet (4 × speed-8 + 4 × speed-2) at ~72% load: queue length
/// alone misleads, speed normalization pays. The classic "new hardware
/// generation behind one VIP" shape.
pub fn two_tier_fleet() -> Scenario {
    Scenario {
        name: "lb/two-tier".into(),
        servers: fleet(&[(4, 8, 32), (4, 2, 32)]),
        workload: WorkloadCfg {
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 4_900.0 },
            sizes: BoundedPareto::web_default(),
            n: 30_000,
        },
        seed: 0xB2,
    }
}

/// Flash crowd on a heterogeneous fleet: calm ~55% load punctuated by
/// MMPP bursts at ~2.4× capacity that overflow the shallow queues of
/// speed-blind dispatchers. The headline search context.
pub fn flash_crowd() -> Scenario {
    Scenario {
        name: "lb/flash-crowd".into(),
        servers: fleet(&[(2, 8, 24), (2, 4, 24), (2, 2, 24)]),
        workload: WorkloadCfg {
            arrivals: ArrivalProcess::Mmpp {
                calm_rate_per_sec: 2_600.0,
                burst_rate_per_sec: 11_500.0,
                mean_calm_us: 350_000.0,
                mean_burst_us: 90_000.0,
            },
            sizes: BoundedPareto::web_default(),
            n: 30_000,
        },
        seed: 0xC3,
    }
}

/// Slow-node degradation: a nominally uniform 6 × speed-4 fleet where one
/// node runs at speed 1 (failing disk, noisy neighbour). Oblivious
/// policies keep feeding the sick node its full share.
pub fn slow_node() -> Scenario {
    let mut servers = fleet(&[(6, 4, 32)]);
    servers[3] = ServerCfg::new(1, 32);
    Scenario {
        name: "lb/slow-node".into(),
        servers,
        workload: WorkloadCfg {
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 2_400.0 },
            sizes: BoundedPareto::web_default(),
            n: 30_000,
        },
        seed: 0xD4,
    }
}

/// All scenario presets, benign first.
pub fn all_presets() -> Vec<Scenario> {
    vec![uniform_fleet(), two_tier_fleet(), flash_crowd(), slow_node()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{by_name, lb_baseline_names};
    use crate::sim::simulate;

    #[test]
    fn presets_are_distinct_and_reproducible() {
        let names: std::collections::HashSet<String> =
            all_presets().into_iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 4);
        assert_eq!(flash_crowd().requests(), flash_crowd().requests());
    }

    #[test]
    fn offered_loads_are_in_the_documented_bands() {
        let uf = uniform_fleet();
        assert!((0.6..0.85).contains(&uf.offered_load()), "{}", uf.offered_load());
        let tt = two_tier_fleet();
        assert!((0.6..0.85).contains(&tt.offered_load()), "{}", tt.offered_load());
        let fc = flash_crowd();
        assert!((0.6..0.95).contains(&fc.offered_load()), "{}", fc.offered_load());
        let sn = slow_node();
        assert!((0.6..0.85).contains(&sn.offered_load()), "{}", sn.offered_load());
    }

    #[test]
    fn every_baseline_completes_every_preset() {
        for sc in all_presets() {
            for name in lb_baseline_names() {
                let mut d = by_name(name).unwrap();
                let m = simulate(&sc, &mut d);
                assert_eq!(m.offered, sc.workload.n as u64, "{}/{name}", sc.name);
                assert_eq!(m.completed + m.dropped, m.offered, "{}/{name}", sc.name);
                assert!(m.mean_slowdown() >= 1.0 || m.offered == 0, "{}/{name}", sc.name);
            }
        }
    }

    #[test]
    fn flash_crowd_punishes_speed_blind_dispatch() {
        let sc = flash_crowd();
        let mut jsq = by_name("jsq").unwrap();
        let mut ll = by_name("least-loaded").unwrap();
        let mj = simulate(&sc, &mut jsq);
        let ml = simulate(&sc, &mut ll);
        assert!(
            ml.mean_slowdown() < mj.mean_slowdown(),
            "least-loaded {} must beat jsq {} on the flash crowd",
            ml.mean_slowdown(),
            mj.mean_slowdown()
        );
    }

    #[test]
    fn slow_node_hurts_round_robin_most() {
        let sc = slow_node();
        let mut rr = by_name("round-robin").unwrap();
        let mut jsq = by_name("jsq").unwrap();
        let mr = simulate(&sc, &mut rr);
        let mj = simulate(&sc, &mut jsq);
        assert!(
            mj.mean_slowdown() < mr.mean_slowdown(),
            "jsq {} must beat rr {} when one node is sick",
            mj.mean_slowdown(),
            mr.mean_slowdown()
        );
    }
}
