//! Scenario presets — the "contexts" of the load-balancing study.
//!
//! Each preset fixes a fleet, a workload, and a seed, so a scenario names
//! a reproducible context exactly the way a trace index does in the cache
//! study. Offered-load figures below use the bounded-Pareto mean of ≈ 5.9
//! work units per request against the fleet's aggregate speed (work units
//! per second = Σ speed × 1000).
//!
//! Seven presets ship ([`all_presets`]), spanning the stress axes the
//! cross-scenario generalization matrix sweeps: fleet heterogeneity
//! ([`two_tier_fleet`]), burstiness ([`flash_crowd`], [`diurnal_load`]),
//! and partial failure ([`slow_node`], [`slow_node_onset`],
//! [`correlated_failures`]). [`slow_node_onset_phases`] additionally packs
//! the onset preset into a two-phase sequence for
//! [`run_phased`](crate::sim::run_phased) — the mid-run shift that drives
//! the drift-triggered re-synthesis story.

use crate::model::{LbRequest, ServerCfg};
use crate::workload::{self, ArrivalProcess, BoundedPareto, WorkloadCfg};

/// A named, reproducible load-balancing context.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Context identifier (e.g. `lb/flash-crowd`).
    pub name: String,
    /// The server fleet.
    pub servers: Vec<ServerCfg>,
    /// The offered workload.
    pub workload: WorkloadCfg,
    /// Workload generation seed.
    pub seed: u64,
}

impl Scenario {
    /// Generate this scenario's request stream (pure in the scenario).
    pub fn requests(&self) -> Vec<LbRequest> {
        workload::generate(&self.workload, self.seed)
    }

    /// Aggregate fleet speed, work units per second.
    pub fn fleet_capacity_per_sec(&self) -> f64 {
        self.servers.iter().map(|s| s.speed as f64 * 1000.0).sum()
    }

    /// Long-run offered load as a fraction of fleet capacity.
    pub fn offered_load(&self) -> f64 {
        self.workload.arrivals.mean_rate_per_sec() * self.workload.sizes.mean()
            / self.fleet_capacity_per_sec()
    }

    /// The same context with a different workload seed — how a serving
    /// runtime shards one preset across thread-confined worker engines
    /// (each worker replays its own statistically-identical stream).
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }
}

fn fleet(specs: &[(usize, u32, usize)]) -> Vec<ServerCfg> {
    specs
        .iter()
        .flat_map(|&(count, speed, cap)| std::iter::repeat_n(ServerCfg::new(speed, cap), count))
        .collect()
}

/// Homogeneous fleet at ~72% load under Poisson arrivals: the benign
/// context where JSQ-family policies are near-optimal. 8 × speed-4.
pub fn uniform_fleet() -> Scenario {
    Scenario {
        name: "lb/uniform-fleet".into(),
        servers: fleet(&[(8, 4, 32)]),
        workload: WorkloadCfg {
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 3_900.0 },
            sizes: BoundedPareto::web_default(),
            n: 30_000,
        },
        seed: 0xA1,
    }
}

/// Two-tier fleet (4 × speed-8 + 4 × speed-2) at ~72% load: queue length
/// alone misleads, speed normalization pays. The classic "new hardware
/// generation behind one VIP" shape.
pub fn two_tier_fleet() -> Scenario {
    Scenario {
        name: "lb/two-tier".into(),
        servers: fleet(&[(4, 8, 32), (4, 2, 32)]),
        workload: WorkloadCfg {
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 4_900.0 },
            sizes: BoundedPareto::web_default(),
            n: 30_000,
        },
        seed: 0xB2,
    }
}

/// Flash crowd on a heterogeneous fleet: calm ~55% load punctuated by
/// MMPP bursts at ~2.4× capacity that overflow the shallow queues of
/// speed-blind dispatchers. The headline search context.
pub fn flash_crowd() -> Scenario {
    Scenario {
        name: "lb/flash-crowd".into(),
        servers: fleet(&[(2, 8, 24), (2, 4, 24), (2, 2, 24)]),
        workload: WorkloadCfg {
            arrivals: ArrivalProcess::Mmpp {
                calm_rate_per_sec: 2_600.0,
                burst_rate_per_sec: 11_500.0,
                mean_calm_us: 350_000.0,
                mean_burst_us: 90_000.0,
            },
            sizes: BoundedPareto::web_default(),
            n: 30_000,
        },
        seed: 0xC3,
    }
}

/// Slow-node degradation: a nominally uniform 6 × speed-4 fleet where one
/// node runs at speed 1 (failing disk, noisy neighbour). Oblivious
/// policies keep feeding the sick node its full share.
pub fn slow_node() -> Scenario {
    let mut servers = fleet(&[(6, 4, 32)]);
    servers[3] = ServerCfg::new(1, 32);
    Scenario {
        name: "lb/slow-node".into(),
        servers,
        workload: WorkloadCfg {
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 2_400.0 },
            sizes: BoundedPareto::web_default(),
            n: 30_000,
        },
        seed: 0xD4,
    }
}

/// Correlated failures: a 10 × speed-4 fleet loses one failure domain —
/// three adjacent servers (a rack, an AZ) degrade to speed 1 at once. The
/// workload stays provisioned for the *healthy* fleet (~72%), so effective
/// load on the degraded fleet is ~93%: the regime where spreading load
/// away from the whole sick domain (not just one node) decides survival.
pub fn correlated_failures() -> Scenario {
    let mut servers = fleet(&[(10, 4, 32)]);
    for s in servers.iter_mut().skip(4).take(3) {
        *s = ServerCfg::new(1, 32);
    }
    Scenario {
        name: "lb/correlated-failures".into(),
        servers,
        workload: WorkloadCfg {
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 4_850.0 },
            sizes: BoundedPareto::web_default(),
            n: 30_000,
        },
        seed: 0xE5,
    }
}

/// Diurnal load on a uniform 6 × speed-4 fleet: a deterministic day/night
/// square wave (150 ms halves, compressed) alternating ~22% and ~122%
/// offered load. Nights drain what days overload; policies that spread
/// the daytime peak across the fleet keep the morning backlog short.
pub fn diurnal_load() -> Scenario {
    Scenario {
        name: "lb/diurnal-load".into(),
        servers: fleet(&[(6, 4, 32)]),
        workload: WorkloadCfg {
            arrivals: ArrivalProcess::Diurnal {
                low_rate_per_sec: 900.0,
                high_rate_per_sec: 4_950.0,
                period_us: 300_000,
            },
            sizes: BoundedPareto::web_default(),
            n: 30_000,
        },
        seed: 0xF6,
    }
}

/// Slow-node onset, post-shift regime: an 8 × speed-4 fleet provisioned
/// at ~78% after server 5 has degraded to speed 1. Unlike [`slow_node`]
/// (whose load was sized to its degraded fleet), the workload here was
/// sized for the *healthy* fleet, so the onset pushes effective load to
/// ~86%: the context a policy deployed on the healthy fleet suddenly
/// finds itself in. See [`slow_node_onset_phases`] for the two-phase
/// mid-run version.
pub fn slow_node_onset() -> Scenario {
    let mut servers = fleet(&[(8, 4, 32)]);
    servers[5] = ServerCfg::new(1, 32);
    Scenario {
        name: "lb/slow-node-onset".into(),
        servers,
        workload: WorkloadCfg {
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 4_200.0 },
            sizes: BoundedPareto::web_default(),
            n: 20_000,
        },
        seed: 0x17,
    }
}

/// The mid-run shift behind [`slow_node_onset`], as a phase sequence for
/// [`run_phased`](crate::sim::run_phased): phase 0 is the healthy 8 ×
/// speed-4 fleet under the same arrival rate, phase 1 is the onset — the
/// same tier after server 5 drops to speed 1, with the queues and
/// in-flight work of phase 0 still on board. A policy synthesized for
/// phase 0 meets phase 1 with no warning; the drift monitor's job is to
/// notice.
pub fn slow_node_onset_phases() -> Vec<Scenario> {
    let healthy = Scenario {
        name: "lb/slow-node-onset/healthy".into(),
        servers: fleet(&[(8, 4, 32)]),
        workload: WorkloadCfg {
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 4_200.0 },
            sizes: BoundedPareto::web_default(),
            n: 10_000,
        },
        seed: 0x16,
    };
    vec![healthy, slow_node_onset()]
}

/// All scenario presets, benign first.
pub fn all_presets() -> Vec<Scenario> {
    vec![
        uniform_fleet(),
        two_tier_fleet(),
        flash_crowd(),
        slow_node(),
        correlated_failures(),
        diurnal_load(),
        slow_node_onset(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{by_name, lb_baseline_names};
    use crate::sim::simulate;

    #[test]
    fn presets_are_distinct_and_reproducible() {
        let names: std::collections::HashSet<String> =
            all_presets().into_iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 7);
        assert_eq!(flash_crowd().requests(), flash_crowd().requests());
    }

    #[test]
    fn offered_loads_are_in_the_documented_bands() {
        let uf = uniform_fleet();
        assert!((0.6..0.85).contains(&uf.offered_load()), "{}", uf.offered_load());
        let tt = two_tier_fleet();
        assert!((0.6..0.85).contains(&tt.offered_load()), "{}", tt.offered_load());
        let fc = flash_crowd();
        assert!((0.6..0.95).contains(&fc.offered_load()), "{}", fc.offered_load());
        let sn = slow_node();
        assert!((0.6..0.85).contains(&sn.offered_load()), "{}", sn.offered_load());
        // the failure presets run hot by design: load was provisioned for
        // the healthy fleet, the degraded fleet has to carry it anyway
        let cf = correlated_failures();
        assert!((0.8..0.98).contains(&cf.offered_load()), "{}", cf.offered_load());
        let so = slow_node_onset();
        assert!((0.7..0.9).contains(&so.offered_load()), "{}", so.offered_load());
        let dl = diurnal_load();
        assert!((0.6..0.85).contains(&dl.offered_load()), "{}", dl.offered_load());
    }

    #[test]
    fn onset_phases_share_the_tier_and_split_the_fleet_health() {
        let phases = slow_node_onset_phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].servers.len(), phases[1].servers.len());
        assert!(phases[0].servers.iter().all(|s| s.speed == 4), "phase 0 is healthy");
        assert_eq!(phases[1], slow_node_onset());
        assert_eq!(phases[1].servers.iter().filter(|s| s.speed == 1).count(), 1);
        // same provisioning either side of the shift: the workload does
        // not know the fleet got sick
        assert_eq!(phases[0].workload.arrivals, phases[1].workload.arrivals);
    }

    #[test]
    fn every_baseline_completes_every_preset() {
        for sc in all_presets() {
            for name in lb_baseline_names() {
                let mut d = by_name(name).unwrap();
                let m = simulate(&sc, &mut d);
                assert_eq!(m.offered, sc.workload.n as u64, "{}/{name}", sc.name);
                assert_eq!(m.completed + m.dropped, m.offered, "{}/{name}", sc.name);
                assert!(m.mean_slowdown() >= 1.0 || m.offered == 0, "{}/{name}", sc.name);
            }
        }
    }

    #[test]
    fn flash_crowd_punishes_speed_blind_dispatch() {
        let sc = flash_crowd();
        let mut jsq = by_name("jsq").unwrap();
        let mut ll = by_name("least-loaded").unwrap();
        let mj = simulate(&sc, &mut jsq);
        let ml = simulate(&sc, &mut ll);
        assert!(
            ml.mean_slowdown() < mj.mean_slowdown(),
            "least-loaded {} must beat jsq {} on the flash crowd",
            ml.mean_slowdown(),
            mj.mean_slowdown()
        );
    }

    #[test]
    fn slow_node_hurts_round_robin_most() {
        let sc = slow_node();
        let mut rr = by_name("round-robin").unwrap();
        let mut jsq = by_name("jsq").unwrap();
        let mr = simulate(&sc, &mut rr);
        let mj = simulate(&sc, &mut jsq);
        assert!(
            mj.mean_slowdown() < mr.mean_slowdown(),
            "jsq {} must beat rr {} when one node is sick",
            mj.mean_slowdown(),
            mr.mean_slowdown()
        );
    }
}
