//! # policysmith-lbsim — load-balancing simulation substrate
//!
//! The third PolicySmith workload, beyond the paper's two case studies: a
//! deterministic discrete-event simulator of a **multi-server dispatch
//! tier** — the setting where decades of man-made heuristics (round-robin,
//! join-shortest-queue, least-work-left, power-of-d-choices) compete, and
//! exactly the kind of "systems controller" §2 of the paper argues should
//! be searched for rather than hand-written.
//!
//! * [`model`] — servers (heterogeneous speeds, bounded FIFO queues) and
//!   requests (heavy-tailed service demands);
//! * [`workload`] — Poisson and bursty (MMPP on/off) arrival processes ×
//!   bounded-Pareto sizes, all pure functions of a seed;
//! * [`dispatch`] — the [`Dispatcher`] trait plus the classical baselines:
//!   round-robin, random, JSQ, least-loaded, power-of-two-choices;
//! * [`policy`] — the PolicySmith **template host**: a synthesized DSL
//!   expression scores every server at dispatch time and the request goes
//!   to the argmin (runtime faults are latched, as in the cache host);
//! * [`scenario`] — four presets (uniform fleet, two-tier fleet, flash
//!   crowd, slow-node degradation) with documented load factors;
//! * [`sim`] — the event loop and the metrics the study scores (mean
//!   slowdown, drops, utilization).
//!
//! Everything is integer-microsecond virtual time; a run is a pure
//! function of `(scenario, dispatcher)` — bit-for-bit reproducible.
//!
//! ```
//! use policysmith_lbsim::{simulate, dispatch::Jsq, scenario};
//!
//! let sc = scenario::uniform_fleet();
//! let m = simulate(&sc, &mut Jsq::new());
//! assert!(m.mean_slowdown() >= 1.0 && m.drop_fraction() < 0.05);
//! ```

pub mod dispatch;
pub mod model;
pub mod policy;
pub mod scenario;
pub mod sim;
pub mod workload;

pub use dispatch::{by_name, lb_baseline_names, DispatchView, Dispatcher, ServerView};
pub use model::{LbRequest, ServerCfg};
pub use policy::ExprDispatcher;
pub use scenario::Scenario;
pub use sim::{simulate, LbMetrics};
pub use workload::{ArrivalProcess, BoundedPareto, WorkloadCfg};
