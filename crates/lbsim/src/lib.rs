//! # policysmith-lbsim — load-balancing simulation substrate
//!
//! The third PolicySmith workload, beyond the paper's two case studies: a
//! deterministic discrete-event simulator of a **multi-server dispatch
//! tier** — the setting where decades of man-made heuristics (round-robin,
//! join-shortest-queue, least-work-left, power-of-d-choices) compete, and
//! exactly the kind of "systems controller" §2 of the paper argues should
//! be searched for rather than hand-written.
//!
//! * [`model`] — servers (heterogeneous speeds, bounded FIFO queues) and
//!   requests (heavy-tailed service demands);
//! * [`workload`] — Poisson, bursty (MMPP on/off), and diurnal
//!   (day/night square wave) arrival processes × bounded-Pareto sizes,
//!   all pure functions of a seed;
//! * [`dispatch`] — the [`Dispatcher`] trait plus the classical baselines:
//!   round-robin, random, JSQ, least-loaded, power-of-two-choices;
//! * [`policy`] — the PolicySmith **template host**: a synthesized DSL
//!   expression scores the fleet at dispatch time and the request goes
//!   to the argmin (runtime faults are latched, as in the cache host).
//!   Four scan engines share the rule: the default **batched**
//!   structure-of-arrays full scan (one fused `run_batch_argmin` call
//!   per pick), the legacy **scalar** per-server loop, and two sublinear
//!   modes — **power-of-d** sampling and an incremental **argmin tree**
//!   driven by the engine's dirty marks;
//! * [`scenario`] — seven presets (uniform fleet, two-tier fleet, flash
//!   crowd, slow-node degradation, correlated failures, diurnal load,
//!   slow-node onset) with documented load factors, plus the
//!   [`scenario::slow_node_onset_phases`] mid-run shift sequence;
//! * [`sim`] — the event loop ([`LbEngine`], incremental) and the metrics
//!   the study scores (mean slowdown, drops, utilization); [`run_phased`]
//!   plays a phase sequence through one live fleet for the
//!   drift-triggered re-synthesis story. The engine tracks which servers'
//!   event-driven state changed between picks and hands the indices to
//!   dispatchers as [`DispatchView::dirty`] — the hook behind the
//!   argmin-tree's sublinear rescoring.
//!
//! Everything is integer-microsecond virtual time; a run is a pure
//! function of `(scenario, dispatcher)` — bit-for-bit reproducible.
//!
//! ```
//! use policysmith_lbsim::{simulate, dispatch::Jsq, scenario};
//!
//! let sc = scenario::uniform_fleet();
//! let m = simulate(&sc, &mut Jsq::new());
//! assert!(m.mean_slowdown() >= 1.0 && m.drop_fraction() < 0.05);
//! ```

pub mod dispatch;
pub mod model;
pub mod policy;
pub mod scenario;
pub mod sim;
pub mod workload;

pub use dispatch::{by_name, lb_baseline_names, DispatchView, Dispatcher, ServerView};
pub use model::{LbRequest, ServerCfg};
pub use policy::ExprDispatcher;
pub use scenario::Scenario;
pub use sim::{run_phased, run_phased_windowed, simulate, LbEngine, LbMetrics, PhasedMetrics};
pub use workload::{ArrivalProcess, BoundedPareto, WorkloadCfg};
