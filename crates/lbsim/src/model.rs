//! Core domain types: servers and requests.

/// Static configuration of one backend server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerCfg {
    /// Processing speed in work units per millisecond (≥ 1). A request of
    /// `size` work units occupies the server for `size * 1000 / speed` µs.
    pub speed: u32,
    /// Maximum requests waiting in the FIFO queue (excluding the one in
    /// service). An arrival dispatched to a full server is **dropped**.
    pub queue_cap: usize,
}

impl ServerCfg {
    /// A server with the given speed and queue bound.
    pub fn new(speed: u32, queue_cap: usize) -> Self {
        assert!(speed >= 1, "speed must be at least 1 work unit/ms");
        ServerCfg { speed, queue_cap }
    }

    /// Service time of `size` work units on this server, µs (≥ 1).
    pub fn service_us(&self, size: u64) -> u64 {
        (size * 1000 / self.speed as u64).max(1)
    }
}

/// One request offered to the dispatch tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LbRequest {
    /// Arrival time at the dispatcher, µs.
    pub arrival_us: u64,
    /// Service demand in work units (≥ 1).
    pub size: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_scales_with_speed() {
        let slow = ServerCfg::new(1, 16);
        let fast = ServerCfg::new(8, 16);
        assert_eq!(slow.service_us(6), 6_000);
        assert_eq!(fast.service_us(6), 750);
        assert_eq!(fast.service_us(0), 1, "service time is never zero");
    }

    #[test]
    #[should_panic(expected = "speed")]
    fn zero_speed_rejected() {
        ServerCfg::new(0, 16);
    }
}
