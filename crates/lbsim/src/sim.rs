//! The discrete-event engine and the metrics the study scores.
//!
//! Two event sources drive the system: request arrivals (offered in time
//! order) and service completions (a min-heap). Completions at or before
//! an arrival instant are applied first, so the dispatcher always sees
//! up-to-date queues; ties inside the heap break on server index.
//! A run is a pure function of `(servers, requests, dispatcher)`.
//!
//! Three entry points share one engine:
//!
//! * [`run`] — the one-shot batch API: offer a whole request stream, drain,
//!   return the totals;
//! * [`run_phased`] — the mid-run scenario-shift API: a sequence of
//!   [`Scenario`] phases plays back-to-back through one live fleet (queues
//!   and in-flight work carry across the boundary — nothing drains between
//!   phases), the fleet is [`LbEngine::reconfigure`]d at each boundary, and
//!   per-phase metrics come back alongside the combined totals;
//! * [`LbEngine`] — the incremental engine both are built on, for hosts
//!   that need to stream arrivals in windows and observe a live quality
//!   signal between them (the drift-monitor loop of the adaptation story).

use crate::dispatch::{DispatchView, Dispatcher, ServerView};
use crate::model::{LbRequest, ServerCfg};
use crate::scenario::Scenario;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Mean-slowdown penalty charged per dropped request — an SLO-style cost
/// standing in for the retry/timeout a real client would suffer. Large
/// enough that overflowing bounded queues can never pay off.
pub const DROP_SLOWDOWN_PENALTY: f64 = 100.0;

/// EWMA weight (1/8 new sample, like TCP's srtt) for per-server latency.
const EWMA_SHIFT: u32 = 3;

/// Outcome of one simulation run (or of one interval of an incremental
/// run — see [`LbEngine::take_interval`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LbMetrics {
    /// Requests offered to the dispatcher.
    pub offered: u64,
    /// Requests that completed service.
    pub completed: u64,
    /// Requests dropped at a full queue.
    pub dropped: u64,
    /// Sum of per-request slowdowns over completed requests.
    pub sum_slowdown: f64,
    /// Sum of response times over completed requests, µs.
    pub sum_response_us: u64,
    /// Busy time per server, µs (index-aligned with the fleet).
    pub busy_us: Vec<u64>,
    /// Virtual time of the last event, µs.
    pub duration_us: u64,
    /// Deepest queue observed on any server.
    pub max_queue_seen: usize,
}

impl LbMetrics {
    fn zero(n_servers: usize) -> LbMetrics {
        LbMetrics {
            offered: 0,
            completed: 0,
            dropped: 0,
            sum_slowdown: 0.0,
            sum_response_us: 0,
            busy_us: vec![0; n_servers],
            duration_us: 0,
            max_queue_seen: 0,
        }
    }

    /// Fold another interval's delta into this one (window → phase totals
    /// in [`run_phased_windowed`]).
    fn accumulate(&mut self, d: &LbMetrics) {
        self.offered += d.offered;
        self.completed += d.completed;
        self.dropped += d.dropped;
        self.sum_slowdown += d.sum_slowdown;
        self.sum_response_us += d.sum_response_us;
        for (b, &db) in self.busy_us.iter_mut().zip(&d.busy_us) {
            *b += db;
        }
        self.duration_us += d.duration_us;
        self.max_queue_seen = self.max_queue_seen.max(d.max_queue_seen);
    }

    /// Mean slowdown over all offered requests; a completed request
    /// contributes `response / ideal` (ideal = its service time on an
    /// unloaded fastest server), a dropped one contributes
    /// [`DROP_SLOWDOWN_PENALTY`]. Lower is better; 1.0 is unreachable
    /// perfection.
    pub fn mean_slowdown(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.sum_slowdown + self.dropped as f64 * DROP_SLOWDOWN_PENALTY) / self.offered as f64
    }

    /// Mean slowdown over the requests *resolved* (completed or dropped)
    /// in this metrics window — the live quality signal a drift monitor
    /// samples between windows of an incremental run, robust to arrivals
    /// that are still queued when the window closes.
    ///
    /// A window that offered work but resolved *nothing* is a stall —
    /// every server is stuck mid-service and queues are absorbing the
    /// arrivals — and scores [`DROP_SLOWDOWN_PENALTY`], the worst signal
    /// value, so the monitor sees the outage rather than a spuriously
    /// perfect `0.0`. A genuinely idle window (no arrivals either) scores
    /// `0.0`: no load, no evidence of degradation.
    pub fn resolved_slowdown(&self) -> f64 {
        let resolved = self.completed + self.dropped;
        if resolved == 0 {
            return if self.offered == 0 { 0.0 } else { DROP_SLOWDOWN_PENALTY };
        }
        (self.sum_slowdown + self.dropped as f64 * DROP_SLOWDOWN_PENALTY) / resolved as f64
    }

    /// Mean response time over completed requests, µs.
    pub fn mean_response_us(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.sum_response_us as f64 / self.completed as f64
    }

    /// Fraction of offered requests dropped.
    pub fn drop_fraction(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.dropped as f64 / self.offered as f64
    }

    /// Mean busy fraction across the fleet.
    ///
    /// Meaningful on *cumulative* (batch / whole-run) metrics. On a
    /// [`LbEngine::take_interval`] delta it can exceed 1.0, because a
    /// request's full service time is credited to the window in which its
    /// service *starts* (a heavy-tailed job longer than the window
    /// overfills it).
    pub fn utilization(&self) -> f64 {
        if self.duration_us == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy_us.iter().sum();
        busy as f64 / (self.duration_us as f64 * self.busy_us.len() as f64)
    }
}

/// One request's bookkeeping while it waits or runs: fixed at dispatch
/// time, so a mid-run [`LbEngine::reconfigure`] never rewrites work that
/// was already admitted under the old fleet configuration.
#[derive(Debug, Clone, Copy)]
struct Admitted {
    arrival_us: u64,
    /// Service time on the server it was dispatched to, µs.
    service_us: u64,
    /// Service time on an unloaded fastest server, µs (the slowdown
    /// denominator).
    ideal_us: u64,
}

struct ServerState {
    cfg: ServerCfg,
    /// Waiting requests, FIFO.
    queue: VecDeque<Admitted>,
    /// In-service request and its finish time, µs.
    in_service: Option<(Admitted, u64)>,
    /// Sum of the queued requests' service times, µs (excludes in-service).
    queued_work_us: u64,
    ewma_latency_us: u64,
}

impl ServerState {
    fn view(&self, now: u64) -> ServerView {
        // residual work: what remains of the in-service request at `now`
        // (completions ≤ now have already been applied) plus the queue
        let in_service_left =
            self.in_service.map(|(_, finish)| finish.saturating_sub(now)).unwrap_or(0);
        ServerView {
            queue_len: self.queue.len(),
            inflight: self.queue.len() + usize::from(self.in_service.is_some()),
            speed: self.cfg.speed,
            ewma_latency_us: self.ewma_latency_us,
            work_left_us: self.queued_work_us + in_service_left,
        }
    }
}

/// The incremental discrete-event engine behind [`run`] and [`run_phased`].
///
/// Offer arrivals in time order (singly or in windows), read the
/// cumulative [`metrics`](Self::metrics) or per-window
/// [`take_interval`](Self::take_interval) deltas between offers, swap the
/// fleet configuration mid-run with [`reconfigure`](Self::reconfigure),
/// and [`drain`](Self::drain) at the end. The batch [`run`] is exactly
/// `new → offer* → drain`, so incremental and one-shot runs agree
/// bit-for-bit on the same stream.
///
/// The slowdown denominator (service time on an unloaded fastest server)
/// is fixed from the fleet the engine was *constructed* with, so scores
/// stay comparable across phases of a reconfigured run.
pub struct LbEngine {
    fleet: Vec<ServerState>,
    /// Completion agenda: (finish time, server index).
    completions: BinaryHeap<Reverse<(u64, usize)>>,
    /// The slowdown reference server (fastest initial speed, unbounded
    /// queue).
    ideal: ServerCfg,
    m: LbMetrics,
    /// Snapshot of `m` at the last [`take_interval`](Self::take_interval).
    mark: LbMetrics,
    /// Deepest queue seen since the last interval mark.
    interval_max_queue: usize,
    views: Vec<ServerView>,
    last_arrival: u64,
    /// Servers whose event-driven state changed since the previous pick —
    /// handed to the dispatcher as [`DispatchView::dirty`] so incremental
    /// dispatchers rescore only what moved. Deduplicated via
    /// `dirty_flags`; cleared after every pick.
    dirty: Vec<usize>,
    dirty_flags: Vec<bool>,
}

impl LbEngine {
    /// A fresh engine over `servers` (panics on an empty fleet).
    pub fn new(servers: &[ServerCfg]) -> LbEngine {
        assert!(!servers.is_empty(), "need at least one server");
        let vmax = servers.iter().map(|s| s.speed).max().unwrap();
        LbEngine {
            fleet: servers
                .iter()
                .map(|&cfg| ServerState {
                    cfg,
                    queue: VecDeque::new(),
                    in_service: None,
                    queued_work_us: 0,
                    ewma_latency_us: 0,
                })
                .collect(),
            completions: BinaryHeap::new(),
            ideal: ServerCfg::new(vmax, usize::MAX >> 1),
            m: LbMetrics::zero(servers.len()),
            mark: LbMetrics::zero(servers.len()),
            interval_max_queue: 0,
            views: Vec::with_capacity(servers.len()),
            last_arrival: 0,
            dirty: Vec::with_capacity(servers.len()),
            dirty_flags: vec![false; servers.len()],
        }
    }

    /// Record that server `six`'s event-driven state changed (free
    /// function over the split fields so callers holding a fleet borrow
    /// can still mark).
    fn mark_dirty(dirty: &mut Vec<usize>, flags: &mut [bool], six: usize) {
        if !flags[six] {
            flags[six] = true;
            dirty.push(six);
        }
    }

    /// Apply every completion due at or before `t`.
    ///
    /// This advances the engine's clock: the fleet state now reflects
    /// everything that happened up to `t`, so later [`offer`](Self::offer)s
    /// must arrive at or after `t` (earlier arrivals would dispatch against
    /// a future fleet state and panic the time-order assert). In
    /// particular, after [`drain`](Self::drain) the engine accepts no
    /// further arrivals.
    pub fn complete_until(&mut self, t: u64) {
        self.last_arrival = self.last_arrival.max(t);
        while let Some(&Reverse((finish, six))) = self.completions.peek() {
            if finish > t {
                break;
            }
            self.completions.pop();
            // a completion changes queue_len/inflight/EWMA (and may promote
            // a queued request) — the picked-next-time scores must move
            Self::mark_dirty(&mut self.dirty, &mut self.dirty_flags, six);
            let s = &mut self.fleet[six];
            let (req, _) = s.in_service.take().expect("completion without service");
            let response = finish - req.arrival_us;
            self.m.completed += 1;
            self.m.sum_response_us += response;
            self.m.sum_slowdown += response as f64 / req.ideal_us as f64;
            self.m.duration_us = self.m.duration_us.max(finish);
            s.ewma_latency_us = if s.ewma_latency_us == 0 {
                response
            } else {
                s.ewma_latency_us - (s.ewma_latency_us >> EWMA_SHIFT) + (response >> EWMA_SHIFT)
            };
            if let Some(next) = s.queue.pop_front() {
                s.queued_work_us -= next.service_us;
                s.in_service = Some((next, finish + next.service_us));
                self.m.busy_us[six] += next.service_us;
                self.completions.push(Reverse((finish + next.service_us, six)));
            }
        }
    }

    /// Offer one arrival to `dispatcher` and admit (or drop) it.
    ///
    /// # Panics
    /// If arrivals go backwards in time or the dispatcher returns an
    /// out-of-range index.
    pub fn offer(&mut self, req: &LbRequest, dispatcher: &mut dyn Dispatcher) {
        assert!(req.arrival_us >= self.last_arrival, "requests must be time-ordered");
        self.last_arrival = req.arrival_us;
        self.complete_until(req.arrival_us);
        self.m.offered += 1;
        self.m.duration_us = self.m.duration_us.max(req.arrival_us);

        self.views.clear();
        self.views.extend(self.fleet.iter().map(|s| s.view(req.arrival_us)));
        let view = DispatchView {
            now_us: req.arrival_us,
            req_size: req.size,
            servers: &self.views,
            dirty: Some(&self.dirty),
        };
        let six = dispatcher.pick(&view);
        assert!(six < self.fleet.len(), "dispatcher returned server {six} of {}", self.fleet.len());

        // the dispatcher has now observed (or rescored) everything marked —
        // start accumulating changes for the *next* pick
        for ix in self.dirty.drain(..) {
            self.dirty_flags[ix] = false;
        }

        let s = &mut self.fleet[six];
        let admitted = Admitted {
            arrival_us: req.arrival_us,
            service_us: s.cfg.service_us(req.size),
            ideal_us: self.ideal.service_us(req.size),
        };
        if s.in_service.is_none() {
            let finish = req.arrival_us + admitted.service_us;
            s.in_service = Some((admitted, finish));
            self.m.busy_us[six] += admitted.service_us;
            self.completions.push(Reverse((finish, six)));
            Self::mark_dirty(&mut self.dirty, &mut self.dirty_flags, six);
        } else if s.queue.len() < s.cfg.queue_cap {
            s.queue.push_back(admitted);
            s.queued_work_us += admitted.service_us;
            self.m.max_queue_seen = self.m.max_queue_seen.max(s.queue.len());
            self.interval_max_queue = self.interval_max_queue.max(s.queue.len());
            Self::mark_dirty(&mut self.dirty, &mut self.dirty_flags, six);
        } else {
            // a drop observes the queue at capacity: record the depth even
            // though nothing was pushed, so an interval whose queues were
            // filled in an earlier window still reports them (the overload
            // regime is exactly when the monitor reads this)
            self.m.max_queue_seen = self.m.max_queue_seen.max(s.queue.len());
            self.interval_max_queue = self.interval_max_queue.max(s.queue.len());
            self.m.dropped += 1;
        }
    }

    /// Run every outstanding completion (the end of a simulation).
    pub fn drain(&mut self) {
        self.complete_until(u64::MAX);
    }

    /// Swap the fleet configuration mid-run — the scenario-shift primitive.
    ///
    /// The server count must be preserved (it is the same dispatch tier
    /// under changed conditions). New speeds and queue bounds apply to
    /// requests dispatched *from now on*; work already admitted keeps the
    /// service time it was admitted with, and the slowdown denominator
    /// stays the construction-time ideal so phases score comparably.
    pub fn reconfigure(&mut self, servers: &[ServerCfg]) {
        assert_eq!(
            servers.len(),
            self.fleet.len(),
            "reconfigure must keep the server count (same tier, new conditions)"
        );
        for (six, (state, &cfg)) in self.fleet.iter_mut().zip(servers).enumerate() {
            state.cfg = cfg;
            // a speed/cap change moves every score built on it
            Self::mark_dirty(&mut self.dirty, &mut self.dirty_flags, six);
        }
    }

    /// Number of servers in the fleet (fixed for the engine's lifetime;
    /// [`reconfigure`](Self::reconfigure) preserves it).
    pub fn fleet_size(&self) -> usize {
        self.fleet.len()
    }

    /// Cumulative metrics since construction.
    pub fn metrics(&self) -> &LbMetrics {
        &self.m
    }

    /// Metrics accumulated since the previous `take_interval` (or since
    /// construction), then reset the mark — the windowed quality signal of
    /// the drift-monitor loop. Offers and drops are attributed to the
    /// interval of their *arrival*, completions to the interval in which
    /// they finish; `max_queue_seen` is interval-local.
    pub fn take_interval(&mut self) -> LbMetrics {
        let d = LbMetrics {
            offered: self.m.offered - self.mark.offered,
            completed: self.m.completed - self.mark.completed,
            dropped: self.m.dropped - self.mark.dropped,
            sum_slowdown: self.m.sum_slowdown - self.mark.sum_slowdown,
            sum_response_us: self.m.sum_response_us - self.mark.sum_response_us,
            busy_us: self
                .m
                .busy_us
                .iter()
                .zip(&self.mark.busy_us)
                .map(|(&now, &then)| now - then)
                .collect(),
            duration_us: self.m.duration_us - self.mark.duration_us,
            max_queue_seen: self.interval_max_queue,
        };
        self.mark = self.m.clone();
        self.interval_max_queue = 0;
        d
    }
}

/// Run `requests` (time-ordered) against `servers` under `dispatcher`.
///
/// # Panics
/// If the fleet is empty, requests are out of order, or the dispatcher
/// returns an out-of-range index.
pub fn run(
    servers: &[ServerCfg],
    requests: &[LbRequest],
    dispatcher: &mut dyn Dispatcher,
) -> LbMetrics {
    let mut engine = LbEngine::new(servers);
    for req in requests {
        engine.offer(req, dispatcher);
    }
    engine.drain();
    engine.m
}

/// Run a [`Scenario`] end to end (generates its workload, then [`run`]s).
pub fn simulate<D: Dispatcher>(scenario: &Scenario, dispatcher: &mut D) -> LbMetrics {
    run(&scenario.servers, &scenario.requests(), dispatcher)
}

/// Outcome of a phased run: combined totals plus per-phase attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedMetrics {
    /// Totals across all phases (what a single [`run`] over the stitched
    /// stream would report).
    pub combined: LbMetrics,
    /// Per-phase deltas, one per input phase: arrivals/drops attributed to
    /// the phase they arrive in, completions to the phase they finish in
    /// (the final phase absorbs the drain tail).
    pub per_phase: Vec<LbMetrics>,
    /// Virtual start time of each phase, µs (first entry is 0).
    pub boundaries_us: Vec<u64>,
}

impl PhasedMetrics {
    /// The post-shift quality signal for phase `i`: mean slowdown over the
    /// requests resolved during that phase.
    pub fn phase_slowdown(&self, i: usize) -> f64 {
        self.per_phase[i].resolved_slowdown()
    }
}

/// Play a sequence of [`Scenario`] phases back-to-back through one live
/// fleet — the mid-run scenario-shift mechanism.
///
/// Each phase's request stream is generated from its own workload and
/// seed, then shifted to start where the previous phase's arrivals ended.
/// At every boundary the engine is [`reconfigure`](LbEngine::reconfigure)d
/// to the next phase's fleet (server counts must match); queues and
/// in-flight work carry across — nothing drains between phases, which is
/// exactly why a policy synthesized for phase 0 can be caught limping in
/// phase 1.
///
/// # Panics
/// If `phases` is empty or a phase changes the server count.
pub fn run_phased<D: Dispatcher>(phases: &[Scenario], dispatcher: &mut D) -> PhasedMetrics {
    run_phased_windowed(phases, dispatcher, usize::MAX, &mut |_, _| {})
}

/// [`run_phased`] with a live monitoring tap: within each phase, arrivals
/// are offered in windows of `window` requests, and after every window
/// `on_window(phase_ix, interval)` receives that window's
/// [`take_interval`](LbEngine::take_interval) delta — the cadence at which
/// a drift monitor samples [`LbMetrics::resolved_slowdown`]. A phase's
/// final window additionally absorbs the completions due by the phase
/// boundary (or, for the last phase, the drain tail), so the window deltas
/// of a phase sum to its `per_phase` entry.
pub fn run_phased_windowed<D: Dispatcher>(
    phases: &[Scenario],
    dispatcher: &mut D,
    window: usize,
    on_window: &mut dyn FnMut(usize, &LbMetrics),
) -> PhasedMetrics {
    assert!(!phases.is_empty(), "need at least one phase");
    assert!(window > 0, "window must hold at least one request");
    let mut engine = LbEngine::new(&phases[0].servers);
    let mut per_phase = Vec::with_capacity(phases.len());
    let mut boundaries_us = Vec::with_capacity(phases.len());
    let mut offset = 0u64;

    for (i, phase) in phases.iter().enumerate() {
        if i > 0 {
            // shift the fleet into the new regime at the boundary instant
            engine.reconfigure(&phase.servers);
        }
        boundaries_us.push(offset);
        let requests = phase.requests();
        let last = i == phases.len() - 1;
        let next_offset = offset + requests.last().map(|r| r.arrival_us).unwrap_or(0);
        let mut phase_total = LbMetrics::zero(engine.fleet.len());
        // an empty phase still closes with one (empty) window
        let chunks: Vec<&[LbRequest]> = if requests.is_empty() {
            vec![&requests[..]]
        } else {
            requests.chunks(window).collect()
        };
        let n_chunks = chunks.len();
        for (c, chunk) in chunks.into_iter().enumerate() {
            for req in chunk {
                let shifted = LbRequest { arrival_us: offset + req.arrival_us, size: req.size };
                engine.offer(&shifted, dispatcher);
            }
            if c == n_chunks - 1 {
                // close the phase: run it to its boundary (or to the end)
                if last {
                    engine.drain();
                } else {
                    engine.complete_until(next_offset);
                }
            }
            let interval = engine.take_interval();
            phase_total.accumulate(&interval);
            on_window(i, &interval);
        }
        per_phase.push(phase_total);
        offset = next_offset;
    }
    PhasedMetrics { combined: engine.m, per_phase, boundaries_us }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{Jsq, LeastLoaded, Random, RoundRobin};
    use crate::model::LbRequest;

    fn uniform_servers(n: usize, speed: u32, cap: usize) -> Vec<ServerCfg> {
        (0..n).map(|_| ServerCfg::new(speed, cap)).collect()
    }

    /// Back-to-back equal requests onto one server: pure queueing math.
    #[test]
    fn single_server_fifo_math() {
        let servers = uniform_servers(1, 1, 16);
        // size 5 → 5 ms service; arrivals every 1 ms
        let reqs: Vec<LbRequest> =
            (0..4).map(|i| LbRequest { arrival_us: 1_000 * (i + 1), size: 5 }).collect();
        let m = run(&servers, &reqs, &mut RoundRobin::new());
        assert_eq!(m.completed, 4);
        assert_eq!(m.dropped, 0);
        // completions at 6, 11, 16, 21 ms → responses 5, 9, 13, 17 ms
        assert_eq!(m.sum_response_us, (5 + 9 + 13 + 17) * 1_000);
        assert_eq!(m.duration_us, 21_000);
        assert_eq!(m.busy_us[0], 20_000);
    }

    #[test]
    fn bounded_queue_drops_overflow() {
        let servers = uniform_servers(1, 1, 2);
        // 5 simultaneous-ish arrivals: 1 in service + 2 queued + 2 dropped
        let reqs: Vec<LbRequest> =
            (0..5).map(|i| LbRequest { arrival_us: 10 + i, size: 1_000 }).collect();
        let m = run(&servers, &reqs, &mut RoundRobin::new());
        assert_eq!(m.completed, 3);
        assert_eq!(m.dropped, 2);
        assert!(m.mean_slowdown() > DROP_SLOWDOWN_PENALTY * 2.0 / 5.0);
    }

    #[test]
    fn conservation_and_determinism() {
        let servers = vec![ServerCfg::new(4, 8), ServerCfg::new(2, 8), ServerCfg::new(1, 8)];
        let cfg = crate::workload::WorkloadCfg {
            arrivals: crate::workload::ArrivalProcess::Poisson { rate_per_sec: 900.0 },
            sizes: crate::workload::BoundedPareto::web_default(),
            n: 8_000,
        };
        let reqs = crate::workload::generate(&cfg, 42);
        let run_once = || run(&servers, &reqs, &mut Jsq::new());
        let (a, b) = (run_once(), run_once());
        assert_eq!(a, b, "simulation must be deterministic");
        assert_eq!(a.completed + a.dropped, a.offered);
        assert!(a.utilization() > 0.0 && a.utilization() <= 1.0);
        assert!(a.mean_response_us() > 0.0);
    }

    #[test]
    fn jsq_beats_random_on_a_uniform_fleet() {
        let servers = uniform_servers(8, 4, 32);
        let cfg = crate::workload::WorkloadCfg {
            arrivals: crate::workload::ArrivalProcess::Poisson { rate_per_sec: 3_800.0 },
            sizes: crate::workload::BoundedPareto::web_default(),
            n: 20_000,
        };
        let reqs = crate::workload::generate(&cfg, 7);
        let jsq = run(&servers, &reqs, &mut Jsq::new());
        let rnd = run(&servers, &reqs, &mut Random::new(3));
        assert!(
            jsq.mean_slowdown() < rnd.mean_slowdown() * 0.8,
            "jsq {} vs random {}",
            jsq.mean_slowdown(),
            rnd.mean_slowdown()
        );
    }

    #[test]
    fn speed_awareness_wins_on_a_heterogeneous_fleet() {
        // 2 fast + 4 slow: JSQ sends equal shares to unequal servers
        let mut servers = uniform_servers(2, 8, 32);
        servers.extend(uniform_servers(4, 1, 32));
        let cfg = crate::workload::WorkloadCfg {
            arrivals: crate::workload::ArrivalProcess::Poisson { rate_per_sec: 2_200.0 },
            sizes: crate::workload::BoundedPareto::web_default(),
            n: 20_000,
        };
        let reqs = crate::workload::generate(&cfg, 11);
        let jsq = run(&servers, &reqs, &mut Jsq::new());
        let ll = run(&servers, &reqs, &mut LeastLoaded::new());
        assert!(
            ll.mean_slowdown() < jsq.mean_slowdown(),
            "least-loaded {} vs jsq {}",
            ll.mean_slowdown(),
            jsq.mean_slowdown()
        );
    }

    #[test]
    fn ewma_latency_tracks_congestion() {
        // saturate one server and keep another idle; a latency-aware view
        // must separate them. Dispatch by fixed pattern: all to server 0.
        struct AllToZero;
        impl Dispatcher for AllToZero {
            fn name(&self) -> &str {
                "all-to-zero"
            }
            fn pick(&mut self, _v: &DispatchView<'_>) -> usize {
                0
            }
        }
        let servers = uniform_servers(2, 1, 512);
        let reqs: Vec<LbRequest> =
            (0..200).map(|i| LbRequest { arrival_us: i * 100, size: 10 }).collect();
        let m = run(&servers, &reqs, &mut AllToZero);
        assert_eq!(m.completed, 200);
        assert!(m.busy_us[1] == 0, "server 1 must stay idle");
        assert!(m.max_queue_seen > 50, "server 0 must build a deep queue");
    }

    #[test]
    fn work_left_tracks_residual_service_exactly() {
        // Single server, speed 1: size-5 requests take 5 ms each. Record
        // the work_left the dispatcher observes at every arrival.
        struct Recorder(Vec<u64>);
        impl Dispatcher for Recorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn pick(&mut self, v: &DispatchView<'_>) -> usize {
                self.0.push(v.servers[0].work_left_us);
                0
            }
        }
        let servers = uniform_servers(1, 1, 16);
        // arrivals at 1, 2, 3, 4 ms; each needs 5 ms of service
        let reqs: Vec<LbRequest> =
            (0..4).map(|i| LbRequest { arrival_us: 1_000 * (i + 1), size: 5 }).collect();
        let mut rec = Recorder(Vec::new());
        let m = run(&servers, &reqs, &mut rec);
        // at t=1ms: idle (0). t=2ms: in-service started at 1ms, finishes at
        // 6ms → 4ms left. t=3ms: 3ms left + one queued 5ms. t=4ms: 2ms
        // left + two queued.
        assert_eq!(rec.0, vec![0, 4_000, 3_000 + 5_000, 2_000 + 10_000]);
        assert_eq!(m.completed, 4);
    }

    #[test]
    fn work_left_drains_back_to_zero_between_bursts() {
        struct Probe {
            last: u64,
        }
        impl Dispatcher for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn pick(&mut self, v: &DispatchView<'_>) -> usize {
                self.last = v.servers[0].work_left_us;
                0
            }
        }
        let servers = uniform_servers(1, 1, 16);
        // burst at 0..3ms, then a straggler long after the drain
        let mut reqs: Vec<LbRequest> =
            (0..3).map(|i| LbRequest { arrival_us: i * 1_000, size: 4 }).collect();
        reqs.push(LbRequest { arrival_us: 1_000_000, size: 4 });
        let mut p = Probe { last: u64::MAX };
        run(&servers, &reqs, &mut p);
        assert_eq!(p.last, 0, "work_left must read 0 once the backlog drained");
    }

    #[test]
    #[should_panic(expected = "dispatcher returned server")]
    fn out_of_range_pick_panics() {
        struct Bad;
        impl Dispatcher for Bad {
            fn name(&self) -> &str {
                "bad"
            }
            fn pick(&mut self, _v: &DispatchView<'_>) -> usize {
                usize::MAX
            }
        }
        let servers = uniform_servers(1, 1, 4);
        let reqs = vec![LbRequest { arrival_us: 1, size: 1 }];
        run(&servers, &reqs, &mut Bad);
    }

    #[test]
    fn incremental_engine_matches_batch_run() {
        // the refactor's contract: offering one-by-one with interval takes
        // in between must reproduce the one-shot totals bit-for-bit
        let servers = vec![ServerCfg::new(4, 8), ServerCfg::new(2, 8), ServerCfg::new(1, 8)];
        let cfg = crate::workload::WorkloadCfg {
            arrivals: crate::workload::ArrivalProcess::Poisson { rate_per_sec: 900.0 },
            sizes: crate::workload::BoundedPareto::web_default(),
            n: 6_000,
        };
        let reqs = crate::workload::generate(&cfg, 9);
        let batch = run(&servers, &reqs, &mut Jsq::new());

        let mut engine = LbEngine::new(&servers);
        let mut jsq = Jsq::new();
        let mut intervals = Vec::new();
        for chunk in reqs.chunks(500) {
            for req in chunk {
                engine.offer(req, &mut jsq);
            }
            intervals.push(engine.take_interval());
        }
        engine.drain();
        intervals.push(engine.take_interval());
        assert_eq!(*engine.metrics(), batch);

        // interval deltas partition the totals exactly (integer fields)
        let offered: u64 = intervals.iter().map(|d| d.offered).sum();
        let completed: u64 = intervals.iter().map(|d| d.completed).sum();
        let dropped: u64 = intervals.iter().map(|d| d.dropped).sum();
        let resp: u64 = intervals.iter().map(|d| d.sum_response_us).sum();
        assert_eq!(offered, batch.offered);
        assert_eq!(completed, batch.completed);
        assert_eq!(dropped, batch.dropped);
        assert_eq!(resp, batch.sum_response_us);
        let slow: f64 = intervals.iter().map(|d| d.sum_slowdown).sum();
        assert!((slow - batch.sum_slowdown).abs() < 1e-6 * batch.sum_slowdown.max(1.0));
    }

    #[test]
    fn reconfigure_applies_to_new_dispatches_only() {
        // one server, speed 4: a size-8 request takes 2 ms. Degrade to
        // speed 1 mid-run: the admitted request keeps its 2 ms, the next
        // one takes 8 ms.
        let servers = uniform_servers(1, 4, 16);
        let mut engine = LbEngine::new(&servers);
        let mut rr = RoundRobin::new();
        engine.offer(&LbRequest { arrival_us: 1_000, size: 8 }, &mut rr);
        engine.reconfigure(&uniform_servers(1, 1, 16));
        engine.offer(&LbRequest { arrival_us: 1_500, size: 8 }, &mut rr);
        engine.drain();
        let m = engine.metrics();
        assert_eq!(m.completed, 2);
        // first: 1000→3000 (2 ms at speed 4). second: queued, starts at
        // 3000, runs 8 ms at speed 1 → finishes 11000 (response 9500)
        assert_eq!(m.sum_response_us, 2_000 + 9_500);
        assert_eq!(m.duration_us, 11_000);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn offering_before_the_completion_clock_panics() {
        // complete_until advances the engine clock; an earlier arrival
        // would dispatch against a future fleet state and must be rejected
        let mut engine = LbEngine::new(&uniform_servers(1, 4, 16));
        engine.complete_until(10_000);
        engine.offer(&LbRequest { arrival_us: 5_000, size: 1 }, &mut RoundRobin::new());
    }

    #[test]
    #[should_panic(expected = "server count")]
    fn reconfigure_rejects_fleet_resizes() {
        let mut engine = LbEngine::new(&uniform_servers(2, 4, 16));
        engine.reconfigure(&uniform_servers(3, 4, 16));
    }

    #[test]
    fn phased_run_stitches_phases_and_carries_backlog() {
        let phases = crate::scenario::slow_node_onset_phases();
        let p = run_phased(&phases, &mut Jsq::new());
        assert_eq!(p.per_phase.len(), 2);
        assert_eq!(p.boundaries_us.len(), 2);
        assert_eq!(p.boundaries_us[0], 0);
        assert!(p.boundaries_us[1] > 0);
        // conservation across the whole phased run
        assert_eq!(p.combined.completed + p.combined.dropped, p.combined.offered);
        let offered: u64 = p.per_phase.iter().map(|d| d.offered).sum();
        assert_eq!(offered, p.combined.offered);
        // arrivals per phase match the phase workloads
        assert_eq!(p.per_phase[0].offered, phases[0].workload.n as u64);
        assert_eq!(p.per_phase[1].offered, phases[1].workload.n as u64);
        // determinism
        assert_eq!(p, run_phased(&phases, &mut Jsq::new()));
    }

    #[test]
    fn windowed_phased_run_partitions_the_phase_totals() {
        let phases = crate::scenario::slow_node_onset_phases();
        let coarse = run_phased(&phases, &mut Jsq::new());
        let mut windows: Vec<(usize, LbMetrics)> = Vec::new();
        let fine = run_phased_windowed(&phases, &mut Jsq::new(), 500, &mut |phase, d| {
            windows.push((phase, d.clone()));
        });
        // same combined totals, same arrival attribution per phase
        assert_eq!(fine.combined, coarse.combined);
        assert_eq!(fine.boundaries_us, coarse.boundaries_us);
        for (f, c) in fine.per_phase.iter().zip(&coarse.per_phase) {
            assert_eq!(f.offered, c.offered);
            assert_eq!(f.completed, c.completed);
            assert_eq!(f.dropped, c.dropped);
            assert_eq!(f.sum_response_us, c.sum_response_us);
            assert!((f.sum_slowdown - c.sum_slowdown).abs() < 1e-6 * c.sum_slowdown.max(1.0));
        }
        // windows partition the phases: counts and integer fields add up
        for (i, p) in fine.per_phase.iter().enumerate() {
            let offered: u64 =
                windows.iter().filter(|(w, _)| *w == i).map(|(_, d)| d.offered).sum();
            assert_eq!(offered, p.offered, "phase {i}");
        }
        assert_eq!(windows.iter().filter(|(w, _)| *w == 0).count(), 20, "10k pre arrivals / 500");
    }

    #[test]
    fn dirty_marks_admissions_completions_and_reconfigures() {
        struct Probe(Vec<Vec<usize>>);
        impl Dispatcher for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn pick(&mut self, v: &DispatchView<'_>) -> usize {
                self.0.push(v.dirty.expect("engine views carry dirty").to_vec());
                0
            }
        }
        let mut engine = LbEngine::new(&uniform_servers(3, 1, 16));
        let mut p = Probe(Vec::new());
        // t=1ms: nothing has happened yet
        engine.offer(&LbRequest { arrival_us: 1_000, size: 2 }, &mut p);
        // t=2ms: only the admission to server 0 (service runs to 3ms)
        engine.offer(&LbRequest { arrival_us: 2_000, size: 2 }, &mut p);
        // t=10ms: both queued-then-served requests completed on server 0
        engine.offer(&LbRequest { arrival_us: 10_000, size: 2 }, &mut p);
        // immediately again: only the previous admission
        engine.offer(&LbRequest { arrival_us: 10_000, size: 2 }, &mut p);
        assert_eq!(p.0, vec![vec![], vec![0], vec![0], vec![0]]);

        // a reconfigure invalidates every cached score
        engine.reconfigure(&uniform_servers(3, 2, 16));
        engine.offer(&LbRequest { arrival_us: 20_000, size: 2 }, &mut p);
        let last = p.0.last().unwrap();
        for six in 0..3 {
            assert!(last.contains(&six), "reconfigure must dirty server {six}");
        }
    }

    #[test]
    fn single_phase_run_equals_batch_run() {
        let sc = crate::scenario::uniform_fleet();
        let phased = run_phased(std::slice::from_ref(&sc), &mut Jsq::new());
        let batch = simulate(&sc, &mut Jsq::new());
        assert_eq!(phased.combined, batch);
        assert_eq!(phased.per_phase[0], batch);
    }
}
